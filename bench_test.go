package repro

// One benchmark per experiment table (E1–E18, see EXPERIMENTS.md), plus
// microbenchmarks for the substrates. Run with:
//
//	go test -bench=. -benchmem

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/heap"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/serial"
	"repro/internal/stackm"
)

// benchScenario runs one attack scenario per iteration and asserts the
// expected outcome, so a regression in attack behaviour fails the bench.
func benchScenario(b *testing.B, id string, cfg defense.Config, wantStatus string) {
	b.Helper()
	s, err := attack.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := s.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if o.Status() != wantStatus {
			b.Fatalf("%s under %s: status = %s, want %s", id, cfg.Name, o.Status(), wantStatus)
		}
	}
}

func BenchmarkE01BssOverflow(b *testing.B) {
	benchScenario(b, "bss-overflow", defense.None, "SUCCESS")
}

func BenchmarkE02HeapOverflow(b *testing.B) {
	benchScenario(b, "heap-overflow", defense.None, "SUCCESS")
}

func BenchmarkE03StackRet(b *testing.B) {
	b.Run("plain", func(b *testing.B) { benchScenario(b, "stack-ret", defense.None, "SUCCESS") })
	b.Run("canary", func(b *testing.B) { benchScenario(b, "stack-ret", defense.StackGuardOnly, "detected") })
	b.Run("canary-skip", func(b *testing.B) { benchScenario(b, "canary-skip", defense.StackGuardOnly, "SUCCESS") })
}

func BenchmarkE04ArcCode(b *testing.B) {
	b.Run("arc", func(b *testing.B) { benchScenario(b, "arc-injection", defense.None, "SUCCESS") })
	b.Run("code", func(b *testing.B) { benchScenario(b, "code-injection", defense.None, "SUCCESS") })
	b.Run("code-nx", func(b *testing.B) { benchScenario(b, "code-injection", defense.NXOnly, "prevented") })
}

func BenchmarkE05GlobalVar(b *testing.B) {
	benchScenario(b, "var-bss", defense.None, "SUCCESS")
}

func BenchmarkE06LocalVar(b *testing.B) {
	benchScenario(b, "var-stack", defense.None, "SUCCESS")
}

func BenchmarkE07MemberVar(b *testing.B) {
	benchScenario(b, "member-var", defense.None, "SUCCESS")
}

func BenchmarkE08Vptr(b *testing.B) {
	b.Run("bss", func(b *testing.B) { benchScenario(b, "vptr-bss", defense.None, "SUCCESS") })
	b.Run("stack", func(b *testing.B) { benchScenario(b, "vptr-stack", defense.None, "SUCCESS") })
}

func BenchmarkE09FuncPtr(b *testing.B) {
	benchScenario(b, "funcptr", defense.None, "SUCCESS")
}

func BenchmarkE10VarPtr(b *testing.B) {
	benchScenario(b, "varptr", defense.None, "SUCCESS")
}

func BenchmarkE11TwoStep(b *testing.B) {
	b.Run("stack", func(b *testing.B) { benchScenario(b, "array-2step-stack", defense.None, "SUCCESS") })
	b.Run("bss", func(b *testing.B) { benchScenario(b, "array-2step-bss", defense.None, "SUCCESS") })
}

func BenchmarkE12InfoLeak(b *testing.B) {
	b.Run("array", func(b *testing.B) { benchScenario(b, "infoleak-array", defense.None, "SUCCESS") })
	b.Run("object", func(b *testing.B) { benchScenario(b, "infoleak-object", defense.None, "SUCCESS") })
	b.Run("sanitized", func(b *testing.B) { benchScenario(b, "infoleak-array", defense.SanitizeOnly, "no-effect") })
}

func BenchmarkE13DoS(b *testing.B) {
	benchScenario(b, "dos-loop", defense.None, "SUCCESS")
}

func BenchmarkE14MemLeak(b *testing.B) {
	b.Run("leaky", func(b *testing.B) { benchScenario(b, "memleak", defense.None, "SUCCESS") })
	b.Run("placement-delete", func(b *testing.B) { benchScenario(b, "memleak", defense.DeleteOnly, "no-effect") })
}

func BenchmarkE15DefenseMatrix(b *testing.B) {
	configs := defense.Catalog()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix, err := attack.RunMatrix(configs)
		if err != nil {
			b.Fatal(err)
		}
		if len(matrix) != len(attack.Catalog()) {
			b.Fatalf("matrix rows = %d", len(matrix))
		}
	}
}

func BenchmarkE16Analyzer(b *testing.B) {
	corpus := analyzer.Corpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range corpus {
			if _, err := analyzer.Analyze(e.Src, analyzer.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE16Baseline(b *testing.B) {
	corpus := analyzer.Corpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range corpus {
			if _, err := analyzer.Baseline(e.Src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E17: defense overhead microbenchmarks ---------------------------------

func benchWorld(b *testing.B) (*mem.Image, *layout.Class) {
	b.Helper()
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		b.Fatal(err)
	}
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	if _, err := layout.Of(student, layout.ILP32i386); err != nil {
		b.Fatal(err)
	}
	return img, student
}

func BenchmarkE17PlacementNewUnchecked(b *testing.B) {
	img, student := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlacementNew(img.Mem, layout.ILP32i386, img.BSS.Base, student); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17PlacementNewChecked(b *testing.B) {
	img, student := benchWorld(b)
	arena := core.Arena{Base: img.BSS.Base, Size: 64, Label: "pool"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckedPlacementNew(img.Mem, layout.ILP32i386, arena, student); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17Sanitize(b *testing.B) {
	img, _ := benchWorld(b)
	arena := core.Arena{Base: img.BSS.Base, Size: 1024}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Sanitize(img.Mem, arena); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCall(b *testing.B, opts machine.Options) {
	b.Helper()
	p, err := machine.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.DefineFunc("f", []stackm.LocalSpec{{Name: "x", Type: layout.Int}},
		func(*machine.Process, *stackm.Frame) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Call("f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17CallPlain(b *testing.B) {
	benchCall(b, machine.Options{})
}

func BenchmarkE17CallStackGuard(b *testing.B) {
	benchCall(b, machine.Options{StackGuard: true})
}

func BenchmarkE17CallShadowStack(b *testing.B) {
	benchCall(b, machine.Options{ShadowStack: true})
}

// --- substrate microbenchmarks ----------------------------------------------

func BenchmarkLayoutOf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		student := layout.NewClass("Student").
			AddField("gpa", layout.Double).
			AddField("year", layout.Int).
			AddField("semester", layout.Int)
		grad := layout.NewClass("GradStudent", student).
			AddField("ssn", layout.ArrayOf(layout.Int, 3))
		if _, err := layout.Of(grad, layout.ILP32i386); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	img, _ := benchWorld(b)
	a, err := heap.NewOnImage(img)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialParse(b *testing.B) {
	wire := "GradStudent{gpa=4.0,year=2009,semester=1,ssn=[111,222,333]}"
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := serial.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVirtualDispatch(b *testing.B) {
	p, err := machine.New(machine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cls := layout.NewClass("Poly").AddVirtual("f").AddField("x", layout.Int)
	g, err := p.DefineGlobal("obj", cls, false)
	if err != nil {
		b.Fatal(err)
	}
	o, err := p.Construct(cls, g.Addr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.VirtualCall(o, "f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18ModelGenerality(b *testing.B) {
	for _, m := range []layout.Model{layout.ILP32i386, layout.ILP32, layout.LP64} {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			cfg := defense.Config{Name: "none-" + m.Name, Model: m}
			benchScenarioCfg(b, "stack-ret", cfg, "SUCCESS")
		})
	}
}

// benchScenarioCfg is benchScenario for ad-hoc configurations.
func benchScenarioCfg(b *testing.B, id string, cfg defense.Config, wantStatus string) {
	b.Helper()
	s, err := attack.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := s.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if o.Status() != wantStatus {
			b.Fatalf("%s under %s: status = %s, want %s", id, cfg.Name, o.Status(), wantStatus)
		}
	}
}
