// Command pnattack runs the paper's attack scenarios against a simulated
// victim process under a chosen defense configuration.
//
// Usage:
//
//	pnattack [-scenario id|all] [-defense name|all] [-timeout d] [-v]
//	pnattack -list
//
// With -defense all it prints the full §5 attack x defense matrix
// (experiment E15).
//
// Scenario execution is supervised: every run carries a deadline (the
// -timeout flag) so a wedged scenario cannot hang the CLI, and an
// unexpected infrastructure fault exits nonzero with a structured
// one-line error (scenario=... defense=... status=... fault=...).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/resilience"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnattack:", err)
		os.Exit(1)
	}
}

// scenarioError is the structured one-line failure report for a
// scenario that returned an unexpected fault, panicked, or timed out.
type scenarioError struct {
	scenario string
	defense  string
	res      *resilience.Result
}

func (e *scenarioError) Error() string {
	msg := fmt.Sprintf("scenario=%s defense=%s status=%s", e.scenario, e.defense, e.res.Status)
	if n := len(e.res.Crashes); n > 0 {
		last := e.res.Crashes[n-1]
		msg += fmt.Sprintf(" kind=%s", last.Kind)
		if last.FaultKind != "" {
			msg += fmt.Sprintf(" fault=%s fault_addr=%#x", last.FaultKind, last.FaultAddr)
		}
		msg += fmt.Sprintf(" err=%q", last.Message)
	} else if e.res.Err != "" {
		msg += fmt.Sprintf(" err=%q", e.res.Err)
	}
	return msg
}

// supervised runs fn under a single-attempt supervisor with the given
// deadline and unwraps the typed result.
func supervised[T any](scenarioID, defenseName string, timeout time.Duration, fn func() (T, error)) (T, error) {
	var zero T
	sup := resilience.NewSupervisor(resilience.Policy{Timeout: timeout, MaxAttempts: 1})
	res := sup.Run(resilience.Job{
		ID: scenarioID + "/" + defenseName,
		Run: func(ctx context.Context, attempt int) (any, error) {
			return fn()
		},
	})
	if res.Status != resilience.StatusOK {
		return zero, &scenarioError{scenario: scenarioID, defense: defenseName, res: res}
	}
	return res.Value.(T), nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnattack", flag.ContinueOnError)
	scenario := fs.String("scenario", "all", "scenario id (see -list) or all")
	defName := fs.String("defense", "none", "defense configuration name or all")
	timeout := fs.Duration("timeout", 30*time.Second, "deadline per supervised scenario batch; a wedged scenario cannot hang the CLI")
	verbose := fs.Bool("v", false, "print per-scenario details and metrics")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON outcomes")
	list := fs.Bool("list", false, "list scenarios and defenses")
	explain := fs.String("explain", "", "print methodology notes and defense outcomes for one scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *explain != "" {
		return explainScenario(out, *explain)
	}

	if *list {
		t := report.NewTable("Attack scenarios", "id", "paper ref", "title")
		for _, s := range attack.Catalog() {
			t.AddRow(s.ID, s.Ref, s.Title)
		}
		fmt.Fprint(out, t.String(), "\n")
		d := report.NewTable("Defense configurations", "name")
		for _, c := range defense.Catalog() {
			d.AddRow(c.Name)
		}
		fmt.Fprint(out, d.String())
		return nil
	}

	if *defName == "all" {
		configs := defense.Catalog()
		matrix, err := supervised(*scenario, "all", *timeout, func() (map[string]map[string]*attack.Outcome, error) {
			return attack.RunMatrix(configs)
		})
		if err != nil {
			return err
		}
		headers := []string{"scenario"}
		for _, c := range configs {
			headers = append(headers, c.Name)
		}
		t := report.NewTable("Attack x defense matrix (E15)", headers...)
		for _, s := range attack.Catalog() {
			if *scenario != "all" && s.ID != *scenario {
				continue
			}
			row := []string{s.ID}
			for _, c := range configs {
				row = append(row, matrix[s.ID][c.Name].Status())
			}
			t.AddRow(row...)
		}
		fmt.Fprint(out, t.String(), "\n")
		fmt.Fprint(out, experiments.MatrixSummary(matrix, configs).String())
		return nil
	}

	cfg, err := findDefense(*defName)
	if err != nil {
		return err
	}
	var outcomes []*attack.Outcome
	if *scenario == "all" {
		outcomes, err = supervised("all", cfg.Name, *timeout, func() ([]*attack.Outcome, error) {
			return attack.RunAll(cfg)
		})
		if err != nil {
			return err
		}
	} else {
		s, err := attack.ByID(*scenario)
		if err != nil {
			return err
		}
		o, err := supervised(s.ID, cfg.Name, *timeout, func() (*attack.Outcome, error) {
			return s.Run(cfg)
		})
		if err != nil {
			return err
		}
		outcomes = append(outcomes, o)
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(outcomes)
	}

	t := report.NewTable(fmt.Sprintf("Outcomes under defense %q", cfg.Name),
		"scenario", "status", "prevented by", "detected by")
	for _, o := range outcomes {
		t.AddRow(o.Scenario, o.Status(), o.PreventedBy, o.DetectedBy)
	}
	fmt.Fprint(out, t.String())
	if *verbose {
		for _, o := range outcomes {
			fmt.Fprintf(out, "\n%s:\n", o.Scenario)
			for _, d := range o.Details {
				fmt.Fprintf(out, "  %s\n", d)
			}
			for k, v := range o.Metrics {
				fmt.Fprintf(out, "  metric %s = %s\n", k, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
	}
	return nil
}

// explainScenario prints the methodology notes for one scenario and its
// live outcome under every defense configuration.
func explainScenario(out io.Writer, id string) error {
	s, err := attack.ByID(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s — %s\n%s\n\n", s.ID, s.Ref, s.Title)
	if m := attack.Methodology(id); m != "" {
		fmt.Fprintln(out, m)
		fmt.Fprintln(out)
	}
	t := report.NewTable("Outcome under each defense", "defense", "status", "by")
	for _, cfg := range defense.Catalog() {
		o, err := s.Run(cfg)
		if err != nil {
			return err
		}
		by := o.PreventedBy
		if by == "" {
			by = o.DetectedBy
		}
		t.AddRow(cfg.Name, o.Status(), by)
	}
	fmt.Fprint(out, t.String())
	return nil
}

func findDefense(name string) (defense.Config, error) {
	for _, c := range defense.Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return defense.Config{}, fmt.Errorf("unknown defense %q (try -list)", name)
}
