package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/attack"
)

// attackCatalog and attackMethodology adapt the library API for the
// coverage test below.
func attackCatalog() []string {
	var out []string
	for _, s := range attack.Catalog() {
		out = append(out, s.ID)
	}
	return out
}

func attackMethodology(id string) string { return attack.Methodology(id) }

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestList(t *testing.T) {
	out := runCapture(t, "-list")
	for _, want := range []string{"stack-ret", "canary-skip", "§3.6.1", "hardened", "Defense configurations"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestSingleScenario(t *testing.T) {
	out := runCapture(t, "-scenario", "stack-ret", "-defense", "none", "-v")
	if !strings.Contains(out, "SUCCESS") {
		t.Errorf("stack-ret under none not successful:\n%s", out)
	}
	if !strings.Contains(out, "metric ret_ssn_index") {
		t.Errorf("verbose output missing metrics:\n%s", out)
	}
}

func TestScenarioUnderDefense(t *testing.T) {
	out := runCapture(t, "-scenario", "stack-ret", "-defense", "checked-pnew")
	if !strings.Contains(out, "prevented") || !strings.Contains(out, "checked-placement") {
		t.Errorf("defended run wrong:\n%s", out)
	}
}

func TestAllScenariosOneDefense(t *testing.T) {
	out := runCapture(t, "-defense", "stackguard")
	if !strings.Contains(out, "canary-skip") || !strings.Contains(out, "detected") {
		t.Errorf("batch output wrong:\n%s", out)
	}
}

func TestMatrixMode(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow")
	}
	out := runCapture(t, "-defense", "all")
	for _, want := range []string{"Attack x defense matrix", "hardened", "E15 summary"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q", want)
		}
	}
}

func TestExplainMode(t *testing.T) {
	out := runCapture(t, "-explain", "canary-skip")
	for _, want := range []string{"§5.2", "StackGuard", "Outcome under each defense", "shadowstack", "prevented"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-explain", "no-such"}, &sb); err == nil {
		t.Error("explain of unknown scenario succeeded")
	}
}

func TestMethodologyCoversCatalogue(t *testing.T) {
	for _, s := range attackCatalog() {
		if attackMethodology(s) == "" {
			t.Errorf("scenario %s has no methodology notes", s)
		}
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "nope"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-defense", "nope"}, &sb); err == nil {
		t.Error("unknown defense accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestTimeoutProducesStructuredError(t *testing.T) {
	// An absurdly small deadline forces the supervisor to time out; the
	// CLI must surface that as a structured one-line error instead of
	// hanging or succeeding.
	var sb strings.Builder
	err := run([]string{"-scenario", "stack-ret", "-defense", "none", "-timeout", "1ns"}, &sb)
	if err == nil {
		t.Fatal("1ns timeout did not fail")
	}
	msg := err.Error()
	for _, want := range []string{"scenario=stack-ret", "defense=none", "status=timeout"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("structured error is not one line: %q", msg)
	}
}

func TestGenerousTimeoutStillSucceeds(t *testing.T) {
	out := runCapture(t, "-scenario", "stack-ret", "-defense", "none", "-timeout", "30s")
	if !strings.Contains(out, "SUCCESS") {
		t.Errorf("supervised run changed outcome:\n%s", out)
	}
}

func TestJSONMode(t *testing.T) {
	out := runCapture(t, "-scenario", "memleak", "-defense", "none", "-json")
	var outcomes []map[string]any
	if err := json.Unmarshal([]byte(out), &outcomes); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	o := outcomes[0]
	if o["Scenario"] != "memleak" || o["Succeeded"] != true {
		t.Errorf("outcome = %v", o)
	}
	metrics, ok := o["Metrics"].(map[string]any)
	if !ok || metrics["leak_per_iteration"] != 12.0 {
		t.Errorf("metrics = %v", o["Metrics"])
	}
}
