package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/compile"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/report"
)

// The -compile mode measures the compiled tier (internal/compile)
// against the interpreted path it was recorded from: every catalogue
// scenario runs under defense.None through both paths with a shared
// image template pool, and the artifact records ns/run per scenario,
// per scenario class, and in aggregate, plus the one-time compile
// cost. The -min-speedup gate enforces the compiled tier's headline
// contract (>= 5x aggregate on single runs).
//
// Two regression sentinels ride along:
//
//   - layout.Resolutions is sampled around the compiled timed region;
//     a non-zero delta means layout setup leaked into the measured
//     loop (compiled programs carry preresolved offsets, so the delta
//     must be exactly zero), and the bench fails outright.
//   - PROGRAMS.txt is the deterministic dump of every compiled
//     program; CI compiles twice and byte-compares the dumps.

// CompileSchema identifies the BENCH_COMPILE.json layout.
const CompileSchema = "pnbench-compile/v1"

// compileScenarioRow is one scenario's paired measurement.
type compileScenarioRow struct {
	ID            string  `json:"id"`
	Class         string  `json:"class"`
	InterpretedNS int64   `json:"interpreted_ns_per_run"`
	CompiledNS    int64   `json:"compiled_ns_per_run"`
	Speedup       float64 `json:"speedup"`
	Ops           int     `json:"ops"`
}

// compileClassRow aggregates one scenario class.
type compileClassRow struct {
	Class         string  `json:"class"`
	Scenarios     int     `json:"scenarios"`
	InterpretedNS int64   `json:"interpreted_ns_per_run"`
	CompiledNS    int64   `json:"compiled_ns_per_run"`
	Speedup       float64 `json:"speedup"`
}

// benchCompile is the BENCH_COMPILE.json artifact.
type benchCompile struct {
	Schema    string               `json:"schema"`
	Defense   string               `json:"defense"`
	Scenarios []compileScenarioRow `json:"scenarios"`
	Classes   []compileClassRow    `json:"classes"`
	// Aggregate totals: sum of per-run costs across the catalogue.
	InterpretedNS int64   `json:"aggregate_interpreted_ns"`
	CompiledNS    int64   `json:"aggregate_compiled_ns"`
	Speedup       float64 `json:"speedup"`
	// CompileNS is the total one-time recording+lowering cost.
	CompileNS int64 `json:"compile_ns_total"`
	Programs  int   `json:"programs"`
	OpsTotal  int   `json:"ops_total"`
	// ResolutionsInCompiledRegion is the setup-cost sentinel: layout
	// resolutions observed inside the compiled timed region (must be 0).
	ResolutionsInCompiledRegion uint64 `json:"resolutions_in_compiled_region"`
}

// scenarioClass buckets a scenario ID into its benchmark class.
func scenarioClass(id string) string {
	switch {
	case strings.HasPrefix(id, "vptr") || strings.HasPrefix(id, "type-confusion"):
		return "vptr"
	case strings.HasPrefix(id, "funcptr") || strings.HasPrefix(id, "varptr") ||
		strings.HasPrefix(id, "member-var") || strings.HasPrefix(id, "var-"):
		return "pointer"
	case strings.HasPrefix(id, "array-") || strings.HasPrefix(id, "infoleak-"):
		return "array"
	case strings.HasPrefix(id, "dos-") || strings.HasPrefix(id, "memleak") ||
		strings.HasPrefix(id, "dangling-write"):
		return "lifecycle"
	}
	return "overflow"
}

// measureNS times fn adaptively until the run spans minSpan, returning
// nanoseconds per call.
func measureNS(minSpan time.Duration, fn func() error) (int64, error) {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start)
		if elapsed >= minSpan || iters >= 1<<20 {
			return elapsed.Nanoseconds() / int64(iters), nil
		}
		iters *= 2
	}
}

// compileBenchPrograms compiles the whole catalogue under the dump
// configs and returns the deterministic PROGRAMS.txt content.
func compileBenchPrograms(cat []attack.Scenario) (string, error) {
	var sb strings.Builder
	for _, cfg := range []defense.Config{defense.None, defense.Hardened} {
		for _, s := range cat {
			sp, err := compile.CompileScenario(s, cfg)
			if err != nil {
				return "", fmt.Errorf("compile %s under %s: %w", s.ID, cfg.Name, err)
			}
			sb.WriteString(sp.Prog.Dump())
		}
	}
	return sb.String(), nil
}

// runCompileBench measures, writes dir/BENCH_COMPILE.json and
// dir/PROGRAMS.txt, then enforces the sentinel and the speedup gate
// (0 disables the gate). Artifacts land before any gate fires so CI
// uploads numbers even on a failing run.
func runCompileBench(dir string, minSpeedup float64, out io.Writer) error {
	rep := benchCompile{Schema: CompileSchema, Defense: defense.None.Name}
	cat := attack.Catalog()
	pool := mem.NewImagePool()
	if err := pool.Prewarm(mem.ImageConfig{}, mem.ImageConfig{ExecStack: true}); err != nil {
		return err
	}

	// Setup phase: compile every scenario once (the one-time cost the
	// program cache amortizes in serving), outside every timed region.
	type prepared struct {
		s  attack.Scenario
		sp *compile.ScenarioProgram
	}
	var progs []prepared
	compileStart := time.Now()
	for _, s := range cat {
		cfg := defense.None
		cfg.Pool = pool
		sp, err := compile.CompileScenario(s, cfg)
		if err != nil {
			return fmt.Errorf("compile %s: %w", s.ID, err)
		}
		progs = append(progs, prepared{s: s, sp: sp})
	}
	rep.CompileNS = time.Since(compileStart).Nanoseconds()
	rep.Programs = len(progs)

	// Interpreted timed region: the full scenario machinery per run.
	const minSpan = 20 * time.Millisecond
	interp := make(map[string]int64, len(cat))
	for _, p := range progs {
		cfg := defense.None
		cfg.Pool = pool
		ns, err := measureNS(minSpan, func() error {
			_, err := p.s.Run(cfg)
			return err
		})
		if err != nil {
			return fmt.Errorf("interpreted %s: %w", p.s.ID, err)
		}
		interp[p.s.ID] = ns
	}

	// Compiled timed region, bracketed by the setup-cost sentinel: a
	// replay performs zero layout resolutions, or the measurement is
	// rejected as polluted.
	res0 := layout.Resolutions()
	compiled := make(map[string]int64, len(cat))
	for _, p := range progs {
		ns, err := measureNS(minSpan, func() error {
			_, _, err := p.sp.Run(pool)
			return err
		})
		if err != nil {
			return fmt.Errorf("compiled %s: %w", p.s.ID, err)
		}
		compiled[p.s.ID] = ns
	}
	rep.ResolutionsInCompiledRegion = layout.Resolutions() - res0

	// Rows, classes, aggregates.
	classAgg := map[string]*compileClassRow{}
	for _, p := range progs {
		in, cn := interp[p.s.ID], compiled[p.s.ID]
		cls := scenarioClass(p.s.ID)
		ops := p.sp.Prog.NumOps()
		rep.OpsTotal += ops
		rep.Scenarios = append(rep.Scenarios, compileScenarioRow{
			ID: p.s.ID, Class: cls,
			InterpretedNS: in, CompiledNS: cn,
			Speedup: float64(in) / float64(cn), Ops: ops,
		})
		ca := classAgg[cls]
		if ca == nil {
			ca = &compileClassRow{Class: cls}
			classAgg[cls] = ca
		}
		ca.Scenarios++
		ca.InterpretedNS += in
		ca.CompiledNS += cn
		rep.InterpretedNS += in
		rep.CompiledNS += cn
	}
	for _, cls := range sortedKeys(classAgg) {
		ca := classAgg[cls]
		ca.Speedup = float64(ca.InterpretedNS) / float64(ca.CompiledNS)
		rep.Classes = append(rep.Classes, *ca)
	}
	rep.Speedup = float64(rep.InterpretedNS) / float64(rep.CompiledNS)

	// Deterministic program dump (independent of the measurements).
	dump, err := compileBenchPrograms(cat)
	if err != nil {
		return err
	}

	// Artifacts first, gates after.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, "BENCH_COMPILE.json"), data, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "PROGRAMS.txt"), []byte(dump), 0o644); err != nil {
		return err
	}

	t := report.NewTable("compiled vs interpreted scenario execution (defense: none)",
		"class", "scenarios", "interpreted ns/run", "compiled ns/run", "speedup")
	for _, c := range rep.Classes {
		t.AddRow(c.Class, fmt.Sprint(c.Scenarios),
			fmt.Sprint(c.InterpretedNS), fmt.Sprint(c.CompiledNS),
			fmt.Sprintf("%.1fx", c.Speedup))
	}
	t.AddRow("TOTAL", fmt.Sprint(len(rep.Scenarios)),
		fmt.Sprint(rep.InterpretedNS), fmt.Sprint(rep.CompiledNS),
		fmt.Sprintf("%.1fx", rep.Speedup))
	fmt.Fprint(out, t.String())
	fmt.Fprintf(out, "compile cost: %d programs, %d ops, %s total\n",
		rep.Programs, rep.OpsTotal, time.Duration(rep.CompileNS))

	if rep.ResolutionsInCompiledRegion != 0 {
		return fmt.Errorf("compile bench sentinel: %d layout resolutions inside the compiled timed region (want 0: setup leaked into the measurement)",
			rep.ResolutionsInCompiledRegion)
	}
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		return fmt.Errorf("compile bench gate: aggregate speedup %.2fx < required %.2fx",
			rep.Speedup, minSpeedup)
	}
	return nil
}

func sortedKeys(m map[string]*compileClassRow) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
