package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/attack"
	"repro/internal/compile"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/mem"
)

// TestCompiledReplayDoesNoLayoutResolution is the setup-cost sentinel
// regression test: an interpreted scenario run resolves class layouts
// (the counter must advance — proving the sentinel itself is live),
// while a compiled replay must perform exactly zero resolutions. A
// non-zero delta means setup work leaked back into the compiled
// dispatch loop — the regression the -compile bench guards against,
// and the same class of bug as the scenario sweeps that used to
// rebuild the catalogue inside their timed region.
func TestCompiledReplayDoesNoLayoutResolution(t *testing.T) {
	s := attack.Catalog()[0]

	before := layout.Resolutions()
	if _, err := s.Run(defense.None); err != nil {
		t.Fatalf("interpreted run: %v", err)
	}
	if layout.Resolutions() == before {
		t.Fatal("sentinel is dead: an interpreted run advanced no layout resolutions")
	}

	sp, err := compile.CompileScenario(s, defense.None)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pool := mem.NewImagePool()
	before = layout.Resolutions()
	for i := 0; i < 5; i++ {
		if _, _, err := sp.Run(pool); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
	if delta := layout.Resolutions() - before; delta != 0 {
		t.Fatalf("compiled replay performed %d layout resolutions, want 0", delta)
	}
}

func TestScenarioClassCoversCatalogue(t *testing.T) {
	valid := map[string]bool{"vptr": true, "pointer": true, "array": true, "lifecycle": true, "overflow": true}
	seen := map[string]bool{}
	for _, s := range attack.Catalog() {
		cls := scenarioClass(s.ID)
		if !valid[cls] {
			t.Errorf("scenario %s mapped to unknown class %q", s.ID, cls)
		}
		seen[cls] = true
	}
	if len(seen) < 3 {
		t.Errorf("class mapping collapsed: only %v populated", seen)
	}
}

// TestRunCompileBenchArtifacts smokes the full -compile mode into a
// temp dir: both artifacts written, schema and sentinel correct, and
// the program dump deterministic across a second compile.
func TestRunCompileBenchArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("timed benchmark; skipped in -short")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := runCompileBench(dir, 0, &out); err != nil {
		t.Fatalf("runCompileBench: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_COMPILE.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep benchCompile
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != CompileSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, CompileSchema)
	}
	if len(rep.Scenarios) != len(attack.Catalog()) {
		t.Errorf("scenario rows = %d, want %d", len(rep.Scenarios), len(attack.Catalog()))
	}
	if rep.ResolutionsInCompiledRegion != 0 {
		t.Errorf("sentinel: %d resolutions in compiled region", rep.ResolutionsInCompiledRegion)
	}
	if rep.Speedup <= 1 {
		t.Errorf("aggregate speedup %.2fx <= 1x", rep.Speedup)
	}

	dump1, err := os.ReadFile(filepath.Join(dir, "PROGRAMS.txt"))
	if err != nil {
		t.Fatal(err)
	}
	dump2, err := compileBenchPrograms(attack.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump1, []byte(dump2)) {
		t.Error("PROGRAMS.txt not deterministic across independent compiles")
	}
}
