package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analyzer"
	"repro/internal/foundry"
	"repro/internal/shrink"
)

// The -foundry mode benchmarks the property-based triage pipeline
// end to end on a seeded corpus:
//
//   - per-plane precision/recall/F1 against the generator's ground
//     truth (the live version of the E16 detection matrix, measured on
//     a corpus nobody hand-picked)
//   - triage throughput: programs fully triaged (four planes, two
//     machine executions each) per second
//   - shrink effectiveness: how many statements the greedy shrinker
//     strips from statically-detected programs while the analyzer
//     still flags them — the minimal-repro quality measure
//
// The artifact lands in BENCH_FOUNDRY.json before any gate fires, so
// CI uploads numbers even on a failing run. The gate itself is the
// corpus gate: zero divergent programs and 1.0 scoped recall on every
// plane.

// FoundrySchema identifies the BENCH_FOUNDRY.json layout.
const FoundrySchema = "pnbench-foundry/v1"

// foundryPlane is one plane's corpus-level score.
type foundryPlane struct {
	Precision    float64 `json:"precision"`
	Recall       float64 `json:"recall"`
	F1           float64 `json:"f1"`
	ScopedRecall float64 `json:"scoped_recall"`
	ScopedDen    int     `json:"scoped_den"`
}

// benchFoundry is the BENCH_FOUNDRY.json artifact.
type benchFoundry struct {
	Schema     string                  `json:"schema"`
	Seed       int64                   `json:"seed"`
	Count      int                     `json:"count"`
	Vulnerable int                     `json:"vulnerable"`
	Planes     map[string]foundryPlane `json:"planes"`
	KnownGaps  map[string]int          `json:"known_gaps"`
	Divergent  int                     `json:"divergent"`
	// Throughput.
	TriageNS       int64   `json:"triage_ns"`
	ProgramsPerSec float64 `json:"programs_per_sec"`
	// Shrink effectiveness over statically-detected programs.
	ShrinkPrograms   int      `json:"shrink_programs"`
	ShrinkStmtsIn    int      `json:"shrink_stmts_in"`
	ShrinkStmtsOut   int      `json:"shrink_stmts_out"`
	ShrinkAvgRemoved float64  `json:"shrink_avg_removed"`
	GateOK           bool     `json:"gate_ok"`
	GateDetails      []string `json:"gate_details,omitempty"`
}

// shrinkStatic greedily drops statements while the analyzer still
// draws an overflow diagnostic on the rendered candidate.
func shrinkStatic(sp *foundry.Spec) (before, after int) {
	failing := func(stmts []foundry.Stmt) bool {
		cand := *sp
		cand.Stmts = stmts
		res, err := analyzer.Analyze(foundry.Render(&cand), analyzer.Options{Model: foundry.Model})
		if err != nil {
			return false
		}
		return res.HasCode("PN001") || res.HasCode("PN002")
	}
	min := shrink.Greedy(sp.Stmts, failing)
	return len(sp.Stmts), len(min)
}

// maxShrinkPrograms bounds the shrink-effectiveness sample: the greedy
// pass is quadratic in statement count, and a fixed sample keeps the
// benchmark's wall clock flat as corpora grow.
const maxShrinkPrograms = 25

func runFoundryBench(dir string, seed int64, count int, out io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	start := time.Now()
	rep, err := foundry.TriageCorpus(seed, count, foundry.TriageOptions{})
	if err != nil {
		return err
	}
	triageNS := time.Since(start).Nanoseconds()

	art := benchFoundry{
		Schema: FoundrySchema, Seed: seed, Count: count,
		Vulnerable: rep.Vulnerable,
		Planes:     map[string]foundryPlane{},
		KnownGaps:  rep.KnownGaps,
		Divergent:  rep.Divergent,
		TriageNS:   triageNS,
		GateOK:     rep.GateOK, GateDetails: rep.GateDetails,
	}
	if triageNS > 0 {
		art.ProgramsPerSec = float64(count) / (float64(triageNS) / 1e9)
	}
	for name, st := range rep.Planes {
		art.Planes[name] = foundryPlane{
			Precision: st.Precision, Recall: st.Recall, F1: st.F1,
			ScopedRecall: st.ScopedRecall, ScopedDen: st.ScopedDen,
		}
	}

	// Shrink effectiveness: statically-detected programs reduced to the
	// smallest statement list the analyzer still flags.
	for i := 0; i < count && art.ShrinkPrograms < maxShrinkPrograms; i++ {
		g, err := foundry.Generate(seed, i)
		if err != nil {
			return err
		}
		if !g.Labels.ExpectStatic {
			continue
		}
		before, after := shrinkStatic(g.Spec)
		if after == before {
			continue
		}
		art.ShrinkPrograms++
		art.ShrinkStmtsIn += before
		art.ShrinkStmtsOut += after
	}
	if art.ShrinkStmtsIn > 0 {
		art.ShrinkAvgRemoved = float64(art.ShrinkStmtsIn-art.ShrinkStmtsOut) / float64(art.ShrinkPrograms)
	}

	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	path := filepath.Join(dir, "BENCH_FOUNDRY.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "foundry bench: %d programs (seed %d) in %.2fs (%.1f/s), %d divergent, shrink -%.1f stmts avg -> %s\n",
		count, seed, float64(triageNS)/1e9, art.ProgramsPerSec, art.Divergent, art.ShrinkAvgRemoved, path)

	if !rep.GateOK {
		return fmt.Errorf("foundry gate failed: %v", rep.GateDetails)
	}
	return nil
}
