package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFoundryBenchWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-foundry", dir, "-foundry-seed", "42", "-foundry-count", "60"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_FOUNDRY.json"))
	if err != nil {
		t.Fatal(err)
	}
	var art benchFoundry
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != FoundrySchema {
		t.Fatalf("schema = %q, want %q", art.Schema, FoundrySchema)
	}
	if art.Count != 60 || art.Seed != 42 {
		t.Fatalf("seed/count = %d/%d", art.Seed, art.Count)
	}
	if !art.GateOK || art.Divergent != 0 {
		t.Fatalf("gate ok=%v divergent=%d details=%v", art.GateOK, art.Divergent, art.GateDetails)
	}
	for _, plane := range []string{"static", "baseline", "runtime", "shadow"} {
		p, ok := art.Planes[plane]
		if !ok {
			t.Fatalf("missing plane %s", plane)
		}
		if p.ScopedRecall != 1.0 {
			t.Errorf("plane %s scoped recall = %v, want 1.0", plane, p.ScopedRecall)
		}
	}
	// The paper's asymmetry must show in the live numbers.
	if art.Planes["baseline"].Recall >= art.Planes["static"].Recall {
		t.Errorf("baseline recall %v >= static %v", art.Planes["baseline"].Recall, art.Planes["static"].Recall)
	}
	if art.ProgramsPerSec <= 0 || art.TriageNS <= 0 {
		t.Errorf("throughput fields empty: %v/s over %dns", art.ProgramsPerSec, art.TriageNS)
	}
	if art.ShrinkPrograms == 0 || art.ShrinkAvgRemoved <= 0 {
		t.Errorf("shrink effectiveness empty: %d programs, avg removed %v",
			art.ShrinkPrograms, art.ShrinkAvgRemoved)
	}
}
