// Command pnbench regenerates the experiment tables indexed in
// EXPERIMENTS.md.
//
// Usage:
//
//	pnbench [-exp E1|E2|...|all] [-markdown]
//	pnbench -exp E8 -json out/        # also write out/BENCH_E8.json
//	pnbench -mem out/ -min-cow-speedup 1.0   # checkpoint micro-bench -> out/BENCH_MEM.json
//	pnbench -shadow out/ -max-disabled-overhead 1.5   # sanitizer micro-bench -> out/BENCH_SHADOW.json
//	pnbench -foundry out/ -foundry-seed 42 -foundry-count 200   # triage bench -> out/BENCH_FOUNDRY.json
//	pnbench -compile out/ -min-speedup 5.0   # compiled-vs-interpreted bench -> out/BENCH_COMPILE.json + PROGRAMS.txt
//	pnbench -trajectory BENCH_TRAJECTORY.json -bench-dir out/ -commit $SHA
//	pnbench -list
//
// -trajectory harvests the key scalars out of whichever benchmark
// artifacts exist in -bench-dir (BENCH_MEM.json, BENCH_SHADOW.json,
// BENCH_SERVE.json, BENCH_TENANT.json, BENCH_COMPILE.json), appends
// them as one
// schema-versioned row, and fails when a gated metric regresses more
// than -max-regression past the rolling median of the last five rows
// (metrics with fewer than three prior samples auto-pass).
//
// With -json DIR each selected experiment additionally runs under full
// observability instrumentation (see internal/obs) and writes a
// machine-readable BENCH_<ID>.json into DIR: wall-clock run latency,
// the result table as plain data, and the complete metrics snapshot
// (per-segment access volume, defense verdicts, machine events, …).
// Those files track the perf and behaviour trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnbench:", err)
		os.Exit(1)
	}
}

// benchReport is the schema of one BENCH_<ID>.json artifact.
type benchReport struct {
	Schema  string            `json:"schema"` // "pnbench/v1"
	ID      string            `json:"id"`
	Ref     string            `json:"ref"`
	Title   string            `json:"title"`
	RunNS   int64             `json:"run_ns"` // instrumented wall-clock latency
	Ticks   uint64            `json:"ticks"`  // logical clock at finalize (deterministic)
	Table   report.TableData  `json:"table"`
	Metrics []obs.MetricPoint `json:"metrics"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (E1..E17) or all")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured Markdown tables")
	csv := fs.Bool("csv", false, "emit CSV (one table per experiment, title omitted)")
	jsonDir := fs.String("json", "", "directory to write BENCH_<ID>.json artifacts into (created if missing)")
	memDir := fs.String("mem", "", "run the checkpoint/restore micro-benchmark and write BENCH_MEM.json into this directory")
	minCowSpeedup := fs.Float64("min-cow-speedup", 0,
		"with -mem: fail unless the COW path beats the deep copy by at least this factor on the sparse workload")
	shadowDir := fs.String("shadow", "", "run the shadow-memory sanitizer micro-benchmark and write BENCH_SHADOW.json into this directory")
	foundryDir := fs.String("foundry", "", "run the foundry triage benchmark and write BENCH_FOUNDRY.json into this directory")
	compileDir := fs.String("compile", "", "run the compiled-vs-interpreted scenario benchmark and write BENCH_COMPILE.json and PROGRAMS.txt into this directory")
	minSpeedup := fs.Float64("min-speedup", 0,
		"with -compile: fail unless the compiled path beats the interpreted path by at least this aggregate factor")
	foundrySeed := fs.Int64("foundry-seed", 42, "with -foundry: corpus seed")
	foundryCount := fs.Int("foundry-count", 200, "with -foundry: corpus size")
	maxDisabledOverhead := fs.Float64("max-disabled-overhead", 0,
		"with -shadow: fail if the disabled (nil-checker) write path exceeds this multiple of the no-seam baseline")
	maxArmedOverhead := fs.Float64("max-armed-overhead", 0,
		"with -shadow: fail if the armed clean write path exceeds this multiple of the no-seam baseline")
	trajectory := fs.String("trajectory", "",
		"append the current benchmark artifacts' key metrics as one row of this trajectory file and gate on regression vs the rolling median")
	benchDir := fs.String("bench-dir", ".",
		"with -trajectory: directory holding BENCH_MEM/SHADOW/SERVE/TENANT.json")
	commit := fs.String("commit", "unknown", "with -trajectory: commit SHA recorded in the row")
	date := fs.String("date", "", "with -trajectory: date recorded in the row (default today UTC)")
	maxRegression := fs.Float64("max-regression", 0.25,
		"with -trajectory: allowed fractional slip from the rolling median before the gate fails")
	list := fs.Bool("list", false, "list experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprint(out, experiments.ListTable().String())
		return nil
	}
	if *trajectory != "" {
		d := *date
		if d == "" {
			d = time.Now().UTC().Format("2006-01-02")
		}
		return runTrajectory(out, *trajectory, *benchDir, *commit, d, *maxRegression)
	}
	if *memDir != "" {
		return runMemBench(*memDir, *minCowSpeedup, out)
	}
	if *shadowDir != "" {
		return runShadowBench(*shadowDir, *maxDisabledOverhead, *maxArmedOverhead, out)
	}
	if *foundryDir != "" {
		return runFoundryBench(*foundryDir, *foundrySeed, *foundryCount, out)
	}
	if *compileDir != "" {
		return runCompileBench(*compileDir, *minSpeedup, out)
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			return err
		}
		selected = []experiments.Experiment{e}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return err
		}
	}
	for i, e := range selected {
		var (
			t   *report.Table
			err error
		)
		if *jsonDir == "" {
			t, err = e.Run()
		} else {
			t, err = runAndDump(e, *jsonDir)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		switch {
		case *markdown:
			fmt.Fprint(out, t.Markdown())
		case *csv:
			fmt.Fprint(out, t.CSV())
		default:
			fmt.Fprint(out, t.String())
		}
	}
	return nil
}

// runAndDump runs e instrumented, writes dir/BENCH_<ID>.json, and
// returns the experiment's table for the usual rendering.
func runAndDump(e experiments.Experiment, dir string) (*report.Table, error) {
	start := time.Now()
	col, t, err := experiments.RunInstrumented(e)
	elapsed := time.Since(start)
	if err != nil {
		return t, err
	}
	rep := benchReport{
		Schema:  "pnbench/v1",
		ID:      e.ID,
		Ref:     e.Ref,
		Title:   e.Title,
		RunNS:   elapsed.Nanoseconds(),
		Ticks:   uint64(col.Tracer.Now()),
		Metrics: col.Metrics.Snapshot(),
	}
	if t != nil {
		rep.Table = t.Data()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return t, err
	}
	data = append(data, '\n')
	name := filepath.Join(dir, "BENCH_"+e.ID+".json")
	if err := os.WriteFile(name, data, 0o644); err != nil {
		return t, err
	}
	return t, nil
}
