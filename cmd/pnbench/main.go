// Command pnbench regenerates the experiment tables indexed in
// EXPERIMENTS.md.
//
// Usage:
//
//	pnbench [-exp E1|E2|...|all] [-markdown]
//	pnbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (E1..E17) or all")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured Markdown tables")
	csv := fs.Bool("csv", false, "emit CSV (one table per experiment, title omitted)")
	list := fs.Bool("list", false, "list experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		t := report.NewTable("Experiments", "id", "paper ref", "title")
		for _, e := range experiments.All() {
			t.AddRow(e.ID, e.Ref, e.Title)
		}
		fmt.Fprint(out, t.String())
		return nil
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			return err
		}
		selected = []experiments.Experiment{e}
	}
	for i, e := range selected {
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		switch {
		case *markdown:
			fmt.Fprint(out, t.Markdown())
		case *csv:
			fmt.Fprint(out, t.CSV())
		default:
			fmt.Fprint(out, t.String())
		}
	}
	return nil
}
