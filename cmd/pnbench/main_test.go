package main

import (
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestListExperiments(t *testing.T) {
	out := runCapture(t, "-list")
	for _, id := range []string{"E1", "E15", "E17"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	out := runCapture(t, "-exp", "E3")
	for _, want := range []string{"ssn[0]", "ssn[1]", "ssn[2]", "canary skip"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownMode(t *testing.T) {
	out := runCapture(t, "-exp", "E1", "-markdown")
	if !strings.Contains(out, "| quantity | paper | measured |") {
		t.Errorf("markdown table missing:\n%s", out)
	}
}

func TestCSVMode(t *testing.T) {
	out := runCapture(t, "-exp", "E1", "-csv")
	if !strings.Contains(out, "quantity,paper,measured") {
		t.Errorf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "attack succeeds,yes,yes") {
		t.Errorf("csv row missing:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}
