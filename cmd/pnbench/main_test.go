package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestListExperiments(t *testing.T) {
	out := runCapture(t, "-list")
	for _, id := range []string{"E1", "E15", "E17"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	out := runCapture(t, "-exp", "E3")
	for _, want := range []string{"ssn[0]", "ssn[1]", "ssn[2]", "canary skip"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownMode(t *testing.T) {
	out := runCapture(t, "-exp", "E1", "-markdown")
	if !strings.Contains(out, "| quantity | paper | measured |") {
		t.Errorf("markdown table missing:\n%s", out)
	}
}

func TestCSVMode(t *testing.T) {
	out := runCapture(t, "-exp", "E1", "-csv")
	if !strings.Contains(out, "quantity,paper,measured") {
		t.Errorf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "attack succeeds,yes,yes") {
		t.Errorf("csv row missing:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestJSONArtifact(t *testing.T) {
	dir := t.TempDir()
	out := runCapture(t, "-exp", "E8", "-json", dir)
	if !strings.Contains(out, "vtable") {
		t.Errorf("table output suppressed by -json:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_E8.json"))
	if err != nil {
		t.Fatalf("artifact missing: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if rep.Schema != "pnbench/v1" || rep.ID != "E8" {
		t.Errorf("schema/id = %q/%q", rep.Schema, rep.ID)
	}
	if rep.RunNS <= 0 {
		t.Errorf("run_ns = %d, want > 0", rep.RunNS)
	}
	if rep.Ticks == 0 {
		t.Error("ticks = 0, want logical clock to have advanced")
	}
	if len(rep.Table.Rows) == 0 {
		t.Error("table rows missing")
	}
	var sawWrites bool
	for _, p := range rep.Metrics {
		if p.Name == "pn_mem_writes_total" && p.Value > 0 {
			sawWrites = true
		}
	}
	if !sawWrites {
		t.Error("metrics snapshot missing nonzero pn_mem_writes_total")
	}
}
