package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/mem"
	"repro/internal/report"
)

// The -mem mode measures the checkpoint/restore cycle that dominates
// the chaos campaign and the serving layer's template pool: snapshot
// the canonical process image, dirty it, roll back. Each workload runs
// under both strategies — the deep copy (Checkpoint/Restore, O(address
// space)) and the copy-on-write dirty-page path (CowCheckpoint/
// RestoreDirty, O(dirty bytes)) — and the artifact records ns/cycle
// and the speedup. The -min-cow-speedup gate makes CI fail if the COW
// path ever regresses below the deep copy on the sparse workload.

// MemSchema identifies the BENCH_MEM.json layout.
const MemSchema = "pnbench-mem/v1"

// benchMem is the BENCH_MEM.json artifact.
type benchMem struct {
	Schema    string        `json:"schema"`
	PageSize  uint64        `json:"page_size"`
	Workloads []memWorkload `json:"workloads"`
}

// memWorkload is one workload's deep-vs-COW comparison.
type memWorkload struct {
	Name       string  `json:"name"`
	ImageBytes uint64  `json:"image_bytes"` // mapped address-space size
	DirtyPages int     `json:"dirty_pages"` // pages written per cycle
	TotalPages int     `json:"total_pages"`
	DeepNS     int64   `json:"deep_ns_per_cycle"`
	CowNS      int64   `json:"cow_ns_per_cycle"`
	Speedup    float64 `json:"speedup"` // deep / cow
}

// memWorkloads defines the two shapes: sparse is one simulated run's
// scattered write set (the chaos-campaign case the COW path targets),
// dense rewrites data+heap+stack wholesale (COW's worst case).
func memWorkloads() []struct {
	name  string
	dirty func(img *mem.Image) error
} {
	sparse := func(img *mem.Image) error {
		for _, w := range []struct {
			addr mem.Addr
			val  byte
		}{
			{img.Data.Base.Add(8), 0x11},
			{img.Data.Base.Add(3 * mem.PageSize), 0x22},
			{img.BSS.Base.Add(64), 0x33},
			{img.Heap.Base.Add(128), 0x44},
			{img.Stack.End().Add(-16), 0x55},
		} {
			if err := img.Mem.Poke(w.addr, []byte{w.val, w.val ^ 0xFF}); err != nil {
				return err
			}
		}
		return nil
	}
	dense := func(img *mem.Image) error {
		for _, s := range []*mem.Segment{img.Data, img.Heap, img.Stack} {
			if err := img.Mem.Memset(s.Base, 0xA5, s.Size()); err != nil {
				return err
			}
		}
		return nil
	}
	return []struct {
		name  string
		dirty func(img *mem.Image) error
	}{{"sparse", sparse}, {"dense", dense}}
}

// measureCycle times checkpoint → dirty → restore, adaptively choosing
// an iteration count so the measurement spans at least minSpan.
func measureCycle(img *mem.Image, dirty func(*mem.Image) error, cow bool) (int64, error) {
	cycle := func() error {
		var cp *mem.Checkpoint
		if cow {
			cp = img.Mem.CowCheckpoint()
		} else {
			cp = img.Mem.Checkpoint()
		}
		if err := dirty(img); err != nil {
			return err
		}
		if cow {
			_, err := img.Mem.RestoreDirty(cp)
			return err
		}
		return img.Mem.Restore(cp)
	}
	// Warm up (first cycle pays one-time COW copies of prior state).
	for i := 0; i < 3; i++ {
		if err := cycle(); err != nil {
			return 0, err
		}
	}
	const minSpan = 50 * time.Millisecond
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := cycle(); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start)
		if elapsed >= minSpan || iters >= 1<<16 {
			return elapsed.Nanoseconds() / int64(iters), nil
		}
		iters *= 2
	}
}

// runMemBench measures every workload, writes dir/BENCH_MEM.json, and
// enforces the sparse-workload speedup gate when minSpeedup > 0.
func runMemBench(dir string, minSpeedup float64, out io.Writer) error {
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		return err
	}
	var imageBytes uint64
	for _, s := range img.Mem.Segments() {
		imageBytes += s.Size()
	}

	rep := benchMem{Schema: MemSchema, PageSize: mem.PageSize}
	t := report.NewTable("checkpoint+restore cycle, deep copy vs copy-on-write",
		"workload", "dirty pages", "total pages", "deep ns/cycle", "cow ns/cycle", "speedup")
	for _, w := range memWorkloads() {
		// Count the workload's dirty-page footprint once, via the
		// tracker the COW path consults.
		d := img.Mem.Dirty()
		d.Reset()
		if err := w.dirty(img); err != nil {
			return fmt.Errorf("mem bench %s: %w", w.name, err)
		}
		dirtyPages := d.DirtyPageCount()

		deepNS, err := measureCycle(img, w.dirty, false)
		if err != nil {
			return fmt.Errorf("mem bench %s (deep): %w", w.name, err)
		}
		cowNS, err := measureCycle(img, w.dirty, true)
		if err != nil {
			return fmt.Errorf("mem bench %s (cow): %w", w.name, err)
		}
		speedup := float64(deepNS) / float64(cowNS)
		rep.Workloads = append(rep.Workloads, memWorkload{
			Name:       w.name,
			ImageBytes: imageBytes,
			DirtyPages: dirtyPages,
			TotalPages: d.PageCount(),
			DeepNS:     deepNS,
			CowNS:      cowNS,
			Speedup:    speedup,
		})
		t.AddRow(w.name, fmt.Sprint(dirtyPages), fmt.Sprint(d.PageCount()),
			fmt.Sprint(deepNS), fmt.Sprint(cowNS), fmt.Sprintf("%.2fx", speedup))
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, "BENCH_MEM.json"), data, 0o644); err != nil {
		return err
	}
	fmt.Fprint(out, t.String())

	if minSpeedup > 0 {
		for _, w := range rep.Workloads {
			if w.Name != "sparse" {
				continue
			}
			if w.Speedup < minSpeedup {
				return fmt.Errorf("mem bench gate: sparse COW speedup %.2fx < required %.2fx", w.Speedup, minSpeedup)
			}
		}
	}
	return nil
}
