package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemBenchWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-mem", dir, "-min-cow-speedup", "1.0"}, &out); err != nil {
		t.Fatalf("run -mem: %v (out: %s)", err, out.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_MEM.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep benchMem
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_MEM.json is not valid JSON: %v", err)
	}
	if rep.Schema != MemSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, MemSchema)
	}
	if rep.PageSize == 0 {
		t.Fatal("artifact omits page size")
	}
	byName := map[string]memWorkload{}
	for _, w := range rep.Workloads {
		byName[w.Name] = w
	}
	sparse, ok := byName["sparse"]
	if !ok {
		t.Fatalf("workloads = %+v, want a sparse entry", rep.Workloads)
	}
	dense, ok := byName["dense"]
	if !ok {
		t.Fatalf("workloads = %+v, want a dense entry", rep.Workloads)
	}
	if sparse.DeepNS <= 0 || sparse.CowNS <= 0 || sparse.Speedup <= 0 {
		t.Fatalf("sparse timings not populated: %+v", sparse)
	}
	if sparse.DirtyPages == 0 || sparse.DirtyPages >= sparse.TotalPages {
		t.Fatalf("sparse dirty pages = %d of %d, want a small nonzero fraction",
			sparse.DirtyPages, sparse.TotalPages)
	}
	if dense.DirtyPages <= sparse.DirtyPages {
		t.Fatalf("dense dirty pages (%d) must exceed sparse (%d)", dense.DirtyPages, sparse.DirtyPages)
	}
	// The structural claim behind the whole PR, asserted functionally
	// rather than as a flaky timing threshold: the sparse gate at 1.0
	// passed above, i.e. COW is at least not slower when little is dirty.
	if !strings.Contains(out.String(), "sparse") || !strings.Contains(out.String(), "speedup") {
		t.Fatalf("table output missing workloads: %s", out.String())
	}
}

func TestMemBenchGateFails(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	// An absurd required speedup must trip the gate — after writing the
	// artifact, so CI still uploads it for inspection.
	err := run([]string{"-mem", dir, "-min-cow-speedup", "1e12"}, &out)
	if err == nil || !strings.Contains(err.Error(), "gate") {
		t.Fatalf("err = %v, want speedup-gate failure", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "BENCH_MEM.json")); statErr != nil {
		t.Fatal("artifact must be written even when the gate fails")
	}
}
