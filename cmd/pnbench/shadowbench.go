package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/shadow"
)

// The -shadow mode measures the cost of the byte-granular shadow-memory
// sanitizer on the write path, which is where all of its per-access
// cost lives (reads are unchecked by design):
//
//   - baseline:        a memory that never had a checker attached
//   - disabled:        a checker attached, then detached — the nil-check
//     path every write pays once the seam exists
//   - armed-clean:     the sanitizer attached with nothing poisoned
//   - armed-poisoned:  the sanitizer attached with a realistic poison
//     population (red zones + quarantine elsewhere); writes stay clean
//   - scenario sweep:  the full attack catalogue under `none` vs
//     `shadow`, end to end
//
// The -max-disabled-overhead gate enforces the zero-cost-when-disabled
// contract (see mem.SetShadow); -max-armed-overhead bounds the armed
// write tax. Both artifacts land in BENCH_SHADOW.json before any gate
// fires, so CI uploads numbers even on a failing run.

// ShadowSchema identifies the BENCH_SHADOW.json layout.
const ShadowSchema = "pnbench-shadow/v1"

// benchShadow is the BENCH_SHADOW.json artifact.
type benchShadow struct {
	Schema string `json:"schema"`
	// Per-write costs, nanoseconds.
	BaselineNS      float64 `json:"baseline_ns_per_write"`
	DisabledNS      float64 `json:"disabled_ns_per_write"`
	ArmedCleanNS    float64 `json:"armed_clean_ns_per_write"`
	ArmedPoisonedNS float64 `json:"armed_poisoned_ns_per_write"`
	// Ratios against baseline.
	DisabledOverhead      float64 `json:"disabled_overhead"`
	ArmedCleanOverhead    float64 `json:"armed_clean_overhead"`
	ArmedPoisonedOverhead float64 `json:"armed_poisoned_overhead"`
	// Full attack-catalogue sweep, nanoseconds per pass.
	SweepNoneNS     int64   `json:"sweep_none_ns"`
	SweepShadowNS   int64   `json:"sweep_shadow_ns"`
	SweepOverhead   float64 `json:"sweep_overhead"`
	SweepScenarios  int     `json:"sweep_scenarios"`
	SweepDetections int     `json:"sweep_detections"`
}

// measureWrites times n-byte writes at rotating in-bounds offsets of
// the image's data segment, adaptively spanning at least 50ms.
func measureWrites(m *mem.Memory, base mem.Addr, span uint64) (float64, error) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	slots := int64(span-uint64(len(payload))) / 16
	if slots < 1 {
		slots = 1
	}
	const minSpan = 50 * time.Millisecond
	iters := 1024
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := m.Write(base.Add(int64(i)%slots*16), payload); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start)
		if elapsed >= minSpan || iters >= 1<<24 {
			return float64(elapsed.Nanoseconds()) / float64(iters), nil
		}
		iters *= 2
	}
}

// shadowWriteImage maps a fresh canonical image and returns its memory
// plus the data-segment write window.
func shadowWriteImage() (*mem.Memory, mem.Addr, uint64, error) {
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		return nil, 0, 0, err
	}
	return img.Mem, img.Data.Base, img.Data.Size(), nil
}

// measureSweep times one full catalogue pass under cfg. The catalogue
// is resolved once, outside the timed region: rebuilding the scenario
// slice per pass was setup cost leaking into the measurement (see the
// setup-cost sentinel in compilebench_test.go for the analogous
// compiled-path guarantee).
func measureSweep(cfg defense.Config) (nsPerPass int64, detections int, err error) {
	cat := attack.Catalog()
	pass := func() (int, error) {
		det := 0
		for _, s := range cat {
			o, err := s.Run(cfg)
			if err != nil {
				return 0, fmt.Errorf("scenario %s under %s: %w", s.ID, cfg.Name, err)
			}
			if o.Detected {
				det++
			}
		}
		return det, nil
	}
	// Warm-up pass also yields the detection count (deterministic).
	if detections, err = pass(); err != nil {
		return 0, 0, err
	}
	const minSpan = 100 * time.Millisecond
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := pass(); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		if elapsed >= minSpan || iters >= 1<<10 {
			return elapsed.Nanoseconds() / int64(iters), detections, nil
		}
		iters *= 2
	}
}

// runShadowBench measures all configurations, writes dir/BENCH_SHADOW.json,
// then enforces the overhead gates (0 disables a gate).
func runShadowBench(dir string, maxDisabled, maxArmed float64, out io.Writer) error {
	rep := benchShadow{Schema: ShadowSchema}

	// Baseline: the seam was never exercised.
	m, base, span, err := shadowWriteImage()
	if err != nil {
		return err
	}
	if rep.BaselineNS, err = measureWrites(m, base, span); err != nil {
		return err
	}

	// Disabled: attach then detach — the permanent cost of the seam.
	m, base, span, err = shadowWriteImage()
	if err != nil {
		return err
	}
	m.SetShadow(shadow.New())
	m.SetShadow(nil)
	if rep.DisabledNS, err = measureWrites(m, base, span); err != nil {
		return err
	}

	// Armed, nothing poisoned.
	m, base, span, err = shadowWriteImage()
	if err != nil {
		return err
	}
	m.SetShadow(shadow.New())
	if rep.ArmedCleanNS, err = measureWrites(m, base, span); err != nil {
		return err
	}

	// Armed with a realistic poison population away from the write
	// window: red zones and quarantine in other segments.
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		return err
	}
	s := shadow.New()
	for i := 0; i < 64; i++ {
		s.Poison(shadow.KindRedzone, img.Heap.Base.Add(int64(i)*64), 16, "bench red zone")
		s.Quarantine(img.BSS.Base.Add(int64(i)*64), 32, "bench quarantine")
	}
	img.Mem.SetShadow(s)
	if rep.ArmedPoisonedNS, err = measureWrites(img.Mem, img.Data.Base, img.Data.Size()); err != nil {
		return err
	}

	rep.DisabledOverhead = rep.DisabledNS / rep.BaselineNS
	rep.ArmedCleanOverhead = rep.ArmedCleanNS / rep.BaselineNS
	rep.ArmedPoisonedOverhead = rep.ArmedPoisonedNS / rep.BaselineNS

	// Scenario sweep: the whole catalogue, undefended vs sanitized.
	rep.SweepScenarios = len(attack.Catalog())
	noneNS, _, err := measureSweep(defense.None)
	if err != nil {
		return err
	}
	shadowNS, detections, err := measureSweep(defense.ShadowMemOnly)
	if err != nil {
		return err
	}
	rep.SweepNoneNS, rep.SweepShadowNS = noneNS, shadowNS
	rep.SweepOverhead = float64(shadowNS) / float64(noneNS)
	rep.SweepDetections = detections

	t := report.NewTable("shadow-memory sanitizer write overhead",
		"configuration", "ns/write", "overhead vs baseline")
	t.AddRow("baseline (no seam use)", fmt.Sprintf("%.1f", rep.BaselineNS), "1.00x")
	t.AddRow("disabled (nil checker)", fmt.Sprintf("%.1f", rep.DisabledNS), fmt.Sprintf("%.2fx", rep.DisabledOverhead))
	t.AddRow("armed, clean", fmt.Sprintf("%.1f", rep.ArmedCleanNS), fmt.Sprintf("%.2fx", rep.ArmedCleanOverhead))
	t.AddRow("armed, poisoned elsewhere", fmt.Sprintf("%.1f", rep.ArmedPoisonedNS), fmt.Sprintf("%.2fx", rep.ArmedPoisonedOverhead))
	t.AddRow(fmt.Sprintf("catalogue sweep (%d scenarios, %d detected)", rep.SweepScenarios, rep.SweepDetections),
		fmt.Sprintf("%d ns/pass vs %d", rep.SweepShadowNS, rep.SweepNoneNS), fmt.Sprintf("%.2fx", rep.SweepOverhead))

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, "BENCH_SHADOW.json"), data, 0o644); err != nil {
		return err
	}
	fmt.Fprint(out, t.String())

	if maxDisabled > 0 && rep.DisabledOverhead > maxDisabled {
		return fmt.Errorf("shadow bench gate: disabled-path overhead %.2fx > allowed %.2fx (zero-cost-when-disabled contract)",
			rep.DisabledOverhead, maxDisabled)
	}
	if maxArmed > 0 && rep.ArmedCleanOverhead > maxArmed {
		return fmt.Errorf("shadow bench gate: armed write overhead %.2fx > allowed %.2fx",
			rep.ArmedCleanOverhead, maxArmed)
	}
	return nil
}
