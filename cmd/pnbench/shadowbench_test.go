package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShadowBenchWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	// Generous gates: the structural claims (artifact shape, detection
	// count, ordering of costs) are asserted exactly; the timing gates
	// only have to hold loosely under test-runner noise.
	if err := run([]string{"-shadow", dir, "-max-disabled-overhead", "3.0"}, &out); err != nil {
		t.Fatalf("run -shadow: %v (out: %s)", err, out.String())
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_SHADOW.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep benchShadow
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_SHADOW.json is not valid JSON: %v", err)
	}
	if rep.Schema != ShadowSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, ShadowSchema)
	}
	if rep.BaselineNS <= 0 || rep.DisabledNS <= 0 || rep.ArmedCleanNS <= 0 || rep.ArmedPoisonedNS <= 0 {
		t.Fatalf("timings not populated: %+v", rep)
	}
	if rep.SweepNoneNS <= 0 || rep.SweepShadowNS <= 0 {
		t.Fatalf("sweep timings not populated: %+v", rep)
	}
	// Deterministic facts, not timings: the sweep covers the whole
	// catalogue and the sanitizer detects exactly the in-scope set.
	if rep.SweepScenarios != 29 {
		t.Errorf("sweep covered %d scenarios, want 29", rep.SweepScenarios)
	}
	if rep.SweepDetections != 25 {
		t.Errorf("sweep detected %d scenarios under shadow, want 25", rep.SweepDetections)
	}
	if !strings.Contains(out.String(), "armed, clean") || !strings.Contains(out.String(), "catalogue sweep") {
		t.Fatalf("table output missing rows: %s", out.String())
	}
}

func TestShadowBenchGateFails(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	// An impossible armed-overhead ceiling must trip the gate — after
	// the artifact is written, so CI still uploads it for inspection.
	err := run([]string{"-shadow", dir, "-max-armed-overhead", "1e-9"}, &out)
	if err == nil || !strings.Contains(err.Error(), "gate") {
		t.Fatalf("err = %v, want overhead-gate failure", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "BENCH_SHADOW.json")); statErr != nil {
		t.Fatal("artifact must be written even when the gate fails")
	}
}
