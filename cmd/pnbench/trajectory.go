package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// TrajectorySchema tags BENCH_TRAJECTORY.json. The file is an
// append-only series: one row per CI run, each row the key scalars
// harvested from that run's benchmark artifacts. The regression gate
// compares a new row against the rolling median of the previous rows,
// so a single noisy run neither poisons the baseline nor slips a real
// regression through.
const TrajectorySchema = "pnbench-trajectory/v1"

// trajectoryWindow is how many trailing rows the rolling median spans.
const trajectoryWindow = 5

// trajectoryMinHistory is the fewest prior samples of a metric that
// make the gate binding; with less history the metric auto-passes.
const trajectoryMinHistory = 3

// trajectoryRow is one benchmark run.
type trajectoryRow struct {
	Commit  string             `json:"commit"`
	Date    string             `json:"date"`
	Metrics map[string]float64 `json:"metrics"`
}

// trajectoryFile is the whole artifact.
type trajectoryFile struct {
	Schema string          `json:"schema"`
	Rows   []trajectoryRow `json:"rows"`
}

// trajectoryHigherBetter maps each gated metric to its direction:
// true = regressions are decreases, false = regressions are increases.
// Metrics absent from this map are recorded but never gated.
var trajectoryHigherBetter = map[string]bool{
	"mem_cow_speedup_max":           true,
	"shadow_disabled_overhead":      false,
	"shadow_armed_clean_overhead":   false,
	"serve_peak_throughput_rps":     true,
	"serve_p99_ms":                  false,
	"serve_cache_hit_rate":          true,
	"tenant_wellbehaved_fair_share": true,
	"tenant_starvation_ratio":       false,
	"compile_speedup":               true,
}

// readBenchJSON decodes one artifact into a generic tree; missing
// files are not an error — the row simply omits those metrics (CI jobs
// produce different artifact subsets).
func readBenchJSON(dir, name string) (map[string]any, bool) {
	blob, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, false
	}
	var tree map[string]any
	if json.Unmarshal(blob, &tree) != nil {
		return nil, false
	}
	return tree, true
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

// harvestTrajectory extracts the key scalars from whichever benchmark
// artifacts exist in dir.
func harvestTrajectory(dir string) map[string]float64 {
	m := make(map[string]float64)

	if tree, ok := readBenchJSON(dir, "BENCH_MEM.json"); ok {
		best := 0.0
		if ws, ok := tree["workloads"].([]any); ok {
			for _, w := range ws {
				if wm, ok := w.(map[string]any); ok {
					if s, ok := asFloat(wm["speedup"]); ok && s > best {
						best = s
					}
				}
			}
		}
		if best > 0 {
			m["mem_cow_speedup_max"] = best
		}
	}

	if tree, ok := readBenchJSON(dir, "BENCH_SHADOW.json"); ok {
		if v, ok := asFloat(tree["disabled_overhead"]); ok {
			m["shadow_disabled_overhead"] = v
		}
		if v, ok := asFloat(tree["armed_clean_overhead"]); ok {
			m["shadow_armed_clean_overhead"] = v
		}
	}

	if tree, ok := readBenchJSON(dir, "BENCH_SERVE.json"); ok {
		if levels, ok := tree["levels"].([]any); ok && len(levels) > 0 {
			peak := 0.0
			for _, l := range levels {
				if lm, ok := l.(map[string]any); ok {
					if rps, ok := asFloat(lm["throughput_rps"]); ok && rps > peak {
						peak = rps
					}
				}
			}
			if peak > 0 {
				m["serve_peak_throughput_rps"] = peak
			}
			// p99 at the deepest concurrency level: the tail under the
			// heaviest load the sweep applied.
			if lm, ok := levels[len(levels)-1].(map[string]any); ok {
				if lat, ok := lm["latency"].(map[string]any); ok {
					if p99, ok := asFloat(lat["p99_ms"]); ok {
						m["serve_p99_ms"] = p99
					}
				}
			}
		}
		if totals, ok := tree["totals"].(map[string]any); ok {
			if hr, ok := asFloat(totals["cache_hit_rate"]); ok {
				m["serve_cache_hit_rate"] = hr
			}
		}
	}

	if tree, ok := readBenchJSON(dir, "BENCH_COMPILE.json"); ok {
		if v, ok := asFloat(tree["speedup"]); ok {
			m["compile_speedup"] = v
		}
	}

	if tree, ok := readBenchJSON(dir, "BENCH_TENANT.json"); ok {
		if tenants, ok := tree["tenants"].([]any); ok {
			for _, tn := range tenants {
				if tm, ok := tn.(map[string]any); ok && tm["name"] == "wellbehaved" {
					if fs, ok := asFloat(tm["fair_share"]); ok {
						m["tenant_wellbehaved_fair_share"] = fs
					}
				}
			}
		}
		if sr, ok := asFloat(tree["starvation_ratio"]); ok {
			m["tenant_starvation_ratio"] = sr
		}
	}

	return m
}

func median(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// gateTrajectory compares row against the rolling median of the last
// trajectoryWindow prior rows, metric by metric, and returns every
// violation. A metric with fewer than trajectoryMinHistory prior
// samples auto-passes: the gate needs a baseline before it can bind.
func gateTrajectory(prior []trajectoryRow, row trajectoryRow, maxRegression float64) []string {
	var violations []string
	names := make([]string, 0, len(row.Metrics))
	for name := range row.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		higherBetter, gated := trajectoryHigherBetter[name]
		if !gated {
			continue
		}
		var history []float64
		for i := len(prior) - 1; i >= 0 && len(history) < trajectoryWindow; i-- {
			if v, ok := prior[i].Metrics[name]; ok {
				history = append(history, v)
			}
		}
		if len(history) < trajectoryMinHistory {
			continue
		}
		med := median(history)
		v := row.Metrics[name]
		const eps = 1e-9
		if higherBetter {
			floor := med * (1 - maxRegression)
			if v < floor-eps {
				violations = append(violations, fmt.Sprintf(
					"%s regressed: %.4f below %.4f (median %.4f of last %d runs - %.0f%%)",
					name, v, floor, med, len(history), maxRegression*100))
			}
		} else {
			ceil := med * (1 + maxRegression)
			if v > ceil+eps {
				violations = append(violations, fmt.Sprintf(
					"%s regressed: %.4f above %.4f (median %.4f of last %d runs + %.0f%%)",
					name, v, ceil, med, len(history), maxRegression*100))
			}
		}
	}
	return violations
}

// runTrajectory harvests the current benchmark artifacts in benchDir
// into one row, appends it to the trajectory file, and applies the
// rolling-median regression gate. The row is appended even when the
// gate fails, so the series records the regression it rejected.
func runTrajectory(out io.Writer, path, benchDir, commit, date string, maxRegression float64) error {
	if maxRegression < 0 || math.IsNaN(maxRegression) {
		return fmt.Errorf("-max-regression must be >= 0")
	}
	metrics := harvestTrajectory(benchDir)
	if len(metrics) == 0 {
		return fmt.Errorf("no benchmark artifacts (BENCH_MEM/SHADOW/SERVE/TENANT/COMPILE.json) found in %s", benchDir)
	}

	tf := trajectoryFile{Schema: TrajectorySchema}
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &tf); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", path, err)
		}
		if tf.Schema != TrajectorySchema {
			return fmt.Errorf("%s has schema %q, this build writes %q", path, tf.Schema, TrajectorySchema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	row := trajectoryRow{Commit: commit, Date: date, Metrics: metrics}
	violations := gateTrajectory(tf.Rows, row, maxRegression)
	tf.Rows = append(tf.Rows, row)

	blob, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}

	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "%-30s %.4f\n", name, metrics[name])
	}
	fmt.Fprintf(out, "appended row %d to %s\n", len(tf.Rows), path)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(out, "REGRESSION:", v)
		}
		return fmt.Errorf("%d metric(s) regressed past the rolling-median gate", len(violations))
	}
	return nil
}
