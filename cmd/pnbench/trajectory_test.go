package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenchFixtures populates dir with one of each benchmark
// artifact, parameterized by the scalars the harvester extracts.
func writeBenchFixtures(t *testing.T, dir string, rps, p99 float64) {
	t.Helper()
	files := map[string]any{
		"BENCH_MEM.json": map[string]any{
			"schema": "pnbench-mem/v1",
			"workloads": []any{
				map[string]any{"name": "sparse", "speedup": 12.5},
				map[string]any{"name": "dense", "speedup": 1.2},
			},
		},
		"BENCH_SHADOW.json": map[string]any{
			"schema":               "pnbench-shadow/v1",
			"disabled_overhead":    1.05,
			"armed_clean_overhead": 2.4,
		},
		"BENCH_SERVE.json": map[string]any{
			"schema": "pnserve-load/v2",
			"levels": []any{
				map[string]any{"concurrency": 1, "throughput_rps": rps / 2,
					"latency": map[string]any{"p99_ms": p99 / 2}},
				map[string]any{"concurrency": 8, "throughput_rps": rps,
					"latency": map[string]any{"p99_ms": p99}},
			},
			"totals": map[string]any{"cache_hit_rate": 0.9},
		},
		"BENCH_TENANT.json": map[string]any{
			"schema_version": "pnserve-tenant/v1",
			"tenants": []any{
				map[string]any{"name": "greedy", "fair_share": 0.4},
				map[string]any{"name": "wellbehaved", "fair_share": 0.95},
			},
			"starvation_ratio": 0.0,
		},
	}
	for name, tree := range files {
		blob, err := json.MarshalIndent(tree, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func appendRow(t *testing.T, path, dir, commit string, wantErr bool) string {
	t.Helper()
	var out bytes.Buffer
	err := run([]string{
		"-trajectory", path, "-bench-dir", dir,
		"-commit", commit, "-date", "2026-08-07",
	}, &out)
	if wantErr && err == nil {
		t.Fatalf("commit %s: gate passed, wanted a regression failure\n%s", commit, out.String())
	}
	if !wantErr && err != nil {
		t.Fatalf("commit %s: %v\n%s", commit, err, out.String())
	}
	return out.String()
}

func TestTrajectoryAppendAndGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_TRAJECTORY.json")

	// Three healthy rows build the baseline; with under three prior
	// samples the gate must auto-pass whatever the numbers are.
	writeBenchFixtures(t, dir, 1000, 40)
	appendRow(t, path, dir, "c1", false)
	writeBenchFixtures(t, dir, 200, 400) // wild early swing: still auto-pass
	appendRow(t, path, dir, "c2", false)
	writeBenchFixtures(t, dir, 1100, 42)
	appendRow(t, path, dir, "c3", false)

	// Healthy fourth row: within tolerance of the median.
	writeBenchFixtures(t, dir, 1050, 45)
	appendRow(t, path, dir, "c4", false)

	// Throughput collapse: far below median * (1 - 0.25) -> gate fails,
	// and the row is still recorded so the series shows the regression.
	writeBenchFixtures(t, dir, 100, 45)
	msg := appendRow(t, path, dir, "c5", true)
	if !strings.Contains(msg, "serve_peak_throughput_rps") {
		t.Fatalf("violation did not name the collapsed metric:\n%s", msg)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf trajectoryFile
	if err := json.Unmarshal(blob, &tf); err != nil {
		t.Fatal(err)
	}
	if tf.Schema != TrajectorySchema {
		t.Fatalf("schema = %q, want %q", tf.Schema, TrajectorySchema)
	}
	if len(tf.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (failed rows are recorded too)", len(tf.Rows))
	}
	last := tf.Rows[4]
	if last.Commit != "c5" || last.Date != "2026-08-07" {
		t.Fatalf("last row = %+v", last)
	}
	if last.Metrics["mem_cow_speedup_max"] != 12.5 {
		t.Fatalf("mem metric = %v, want the best workload speedup 12.5", last.Metrics["mem_cow_speedup_max"])
	}
	if last.Metrics["serve_p99_ms"] != 45 {
		t.Fatalf("p99 metric = %v, want the deepest level's 45", last.Metrics["serve_p99_ms"])
	}
	if last.Metrics["tenant_wellbehaved_fair_share"] != 0.95 {
		t.Fatalf("fair-share metric = %v", last.Metrics["tenant_wellbehaved_fair_share"])
	}
}

func TestTrajectoryLowerBetterGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_TRAJECTORY.json")
	for i, commit := range []string{"c1", "c2", "c3"} {
		writeBenchFixtures(t, dir, 1000, 40+float64(i))
		appendRow(t, path, dir, commit, false)
	}
	// p99 doubling is a lower-is-better violation even with throughput
	// steady.
	writeBenchFixtures(t, dir, 1000, 90)
	msg := appendRow(t, path, dir, "c4", true)
	if !strings.Contains(msg, "serve_p99_ms") {
		t.Fatalf("violation did not name serve_p99_ms:\n%s", msg)
	}
}

func TestTrajectoryPartialArtifacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_TRAJECTORY.json")
	// Only the tenant artifact exists: the row carries just its
	// metrics, and no error for missing files.
	blob, _ := json.Marshal(map[string]any{
		"schema_version": "pnserve-tenant/v1",
		"tenants": []any{
			map[string]any{"name": "wellbehaved", "fair_share": 0.97},
		},
		"starvation_ratio": 0.0,
	})
	if err := os.WriteFile(filepath.Join(dir, "BENCH_TENANT.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	appendRow(t, path, dir, "c1", false)

	var tf trajectoryFile
	raw, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatal(err)
	}
	m := tf.Rows[0].Metrics
	if m["tenant_wellbehaved_fair_share"] != 0.97 {
		t.Fatalf("metrics = %v", m)
	}
	if _, ok := m["serve_peak_throughput_rps"]; ok {
		t.Fatal("absent artifact should not contribute metrics")
	}
}

func TestTrajectoryEmptyDirFails(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-trajectory", filepath.Join(dir, "t.json"), "-bench-dir", dir}, &out)
	if err == nil || !strings.Contains(err.Error(), "no benchmark artifacts") {
		t.Fatalf("err = %v, want a no-artifacts failure", err)
	}
}
