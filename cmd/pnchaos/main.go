// Command pnchaos replays the attack x defense matrix under
// deterministic fault injection with supervised crash recovery — the
// chaos campaign (experiment E19).
//
// Usage:
//
//	pnchaos [--seed N] [--runs N] [--faults kinds] [--prob p]
//	        [--timeout d] [--attempts n] [--max-faults n]
//	        [--scenario id,...|all] [--defense name,...|all]
//	        [--table] [--no-verify]
//
// Output is a deterministic JSON report by default: two invocations
// with the same flags produce byte-identical bytes, which is the
// campaign's reproducibility contract. --table renders the human
// summary instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnchaos", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "campaign seed; equal seeds give byte-identical reports")
	runs := fs.Int("runs", 3, "seeded replays of the matrix")
	faults := fs.String("faults", "all", "fault kinds to inject (comma list: bitflip,dropwrite,tornwrite,permfault,unmap; or all)")
	prob := fs.Float64("prob", 0.005, "per-access injection probability")
	timeout := fs.Duration("timeout", 10*time.Second, "per-attempt job deadline")
	attempts := fs.Int("attempts", 4, "bounded retry: attempts per job")
	maxFaults := fs.Int("max-faults", 3, "fault budget per job (-1 = unlimited)")
	scenario := fs.String("scenario", "all", "scenario ids (comma list) or all")
	defName := fs.String("defense", "all", "defense names (comma list) or all")
	table := fs.Bool("table", false, "print a human-readable summary table instead of JSON")
	noVerify := fs.Bool("no-verify", false, "skip the internal determinism replay check")
	if err := fs.Parse(args); err != nil {
		return err
	}

	kinds, err := chaos.ParseKinds(*faults)
	if err != nil {
		return err
	}
	cfg := experiments.ChaosConfig{
		Seed:            *seed,
		Runs:            *runs,
		Prob:            *prob,
		Kinds:           kinds,
		MaxAttempts:     *attempts,
		MaxFaultsPerJob: *maxFaults,
		Timeout:         *timeout,
		Scenarios:       splitList(*scenario),
		Defenses:        splitList(*defName),
		SkipReplayCheck: *noVerify,
	}

	rep, err := experiments.RunChaosCampaign(cfg)
	if err != nil {
		return err
	}

	if *table {
		printSummary(out, rep)
	} else {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}

	if !rep.Deterministic {
		return fmt.Errorf("determinism violated: replay of run 0 diverged from its first execution (seed %d)", rep.Seed)
	}
	return nil
}

// splitList parses a comma list; "all" or "" selects everything (nil).
func splitList(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printSummary(out io.Writer, rep *experiments.ChaosReport) {
	t := report.NewTable(
		fmt.Sprintf("Chaos campaign (seed %d): %d scenarios x %d defenses x %d runs",
			rep.Seed, len(rep.Scenarios), len(rep.Defenses), rep.Runs),
		"quantity", "value")
	t.AddRow("fault kinds", rep.Kinds)
	t.AddRow("injection probability", strconv.FormatFloat(rep.Prob, 'g', -1, 64))
	t.AddRow("injected-fault crashes", strconv.Itoa(rep.TotalCrashes))
	t.AddRow("jobs recovered by retry", strconv.Itoa(rep.RecoveredJobs))
	t.AddRow("jobs dead after retries", strconv.Itoa(rep.DeadJobs))
	t.AddRow("deterministic (replay check)", boolWord(rep.Deterministic))
	t.AddRow("campaign digest", rep.Digest)
	for _, rr := range rep.RunReports {
		t.AddRow(fmt.Sprintf("run %d", rr.Run),
			fmt.Sprintf("digest %s  recovered %d  dead %d", rr.Digest[:16], rr.Recovered, rr.Dead))
	}
	fmt.Fprint(out, t.String())

	if rep.Partial != nil {
		pt := report.NewTable("\n"+rep.Partial.Title, rep.Partial.Headers...)
		for _, r := range rep.Partial.Rows {
			pt.AddRow(r...)
		}
		fmt.Fprint(out, pt.String())
	}
}

func boolWord(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
