package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// quickArgs keeps CLI tests fast: a small matrix, two runs.
func quickArgs(extra ...string) []string {
	args := []string{
		"--seed", "42", "--runs", "2", "--prob", "0.01",
		"--scenario", "bss-overflow,stack-ret,memleak",
		"--defense", "none,stackguard,hardened",
	}
	return append(args, extra...)
}

func TestJSONOutputIsByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(quickArgs(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(quickArgs(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two invocations with identical flags produced different JSON")
	}
	var rep experiments.ChaosReport
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !rep.Deterministic {
		t.Fatal("report flags nondeterminism")
	}
	if rep.Seed != 42 || rep.Runs != 2 {
		t.Fatalf("report echoes wrong config: %+v", rep)
	}
}

func TestSeedChangesOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(quickArgs(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(append(quickArgs()[2:], "--seed", "43"), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("different seeds produced identical output")
	}
}

func TestTableOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(quickArgs("--table"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Chaos campaign", "deterministic (replay check)", "yes", "fault kinds"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestFaultKindSelection(t *testing.T) {
	var out bytes.Buffer
	if err := run(quickArgs("--faults", "bitflip,unmap"), &out); err != nil {
		t.Fatal(err)
	}
	var rep experiments.ChaosReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kinds != "bitflip,unmap" {
		t.Fatalf("kinds = %q", rep.Kinds)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"--faults", "quantum"}, &out); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if err := run([]string{"--scenario", "no-such", "--runs", "1"}, &out); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"--defense", "no-such", "--runs", "1"}, &out); err == nil {
		t.Error("unknown defense accepted")
	}
}
