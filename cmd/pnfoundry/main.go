// Command pnfoundry drives the property-based program foundry: it
// generates seeded corpora of labeled mini-C++ programs, triages them
// differentially across all four detection planes, and shrinks any
// divergence to a minimal repro.
//
// Usage:
//
//	pnfoundry generate -seed 42 -count 200 -dir corpus/
//	pnfoundry triage -seed 42 -count 200 [-out triage.json] [-shrink]
//	         [-min-recall 1.0] [-max-divergences 0]
//	pnfoundry shrink -seed 42 -index 17
//
// Everything is a pure function of (seed, count): the corpus files and
// the triage JSON are byte-identical across runs, which is what the CI
// double-run gate checks with cmp.
//
// triage exits non-zero when the gate fails: more divergent programs
// than -max-divergences, or any plane below -min-recall on the
// programs inside its own scope.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/foundry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnfoundry:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pnfoundry generate|triage|shrink [flags]")
	}
	switch args[0] {
	case "generate":
		return runGenerate(args[1:], out)
	case "triage":
		return runTriage(args[1:], out)
	case "shrink":
		return runShrink(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want generate, triage, or shrink)", args[0])
}

// manifestEntry is one corpus program in MANIFEST.json.
type manifestEntry struct {
	Index  int            `json:"index"`
	File   string         `json:"file"`
	Labels foundry.Labels `json:"labels"`
}

type manifest struct {
	Schema   string          `json:"schema"` // "pnfoundry-corpus/v1"
	Seed     int64           `json:"seed"`
	Count    int             `json:"count"`
	Programs []manifestEntry `json:"programs"`
}

func runGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnfoundry generate", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "corpus seed")
	count := fs.Int("count", 100, "number of programs")
	dir := fs.String("dir", "", "output directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("generate: -dir is required")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	m := manifest{Schema: "pnfoundry-corpus/v1", Seed: *seed, Count: *count}
	for i := 0; i < *count; i++ {
		g, err := foundry.Generate(*seed, i)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("prog_%04d.cc", i)
		if err := os.WriteFile(filepath.Join(*dir, name), []byte(g.Src), 0o644); err != nil {
			return err
		}
		m.Programs = append(m.Programs, manifestEntry{Index: i, File: name, Labels: g.Labels})
	}
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	mj = append(mj, '\n')
	if err := os.WriteFile(filepath.Join(*dir, "MANIFEST.json"), mj, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d programs + MANIFEST.json to %s\n", *count, *dir)
	return nil
}

func runTriage(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnfoundry triage", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "corpus seed")
	count := fs.Int("count", 100, "number of programs")
	outPath := fs.String("out", "", "write the triage report JSON here (default stdout)")
	doShrink := fs.Bool("shrink", false, "shrink divergent programs to minimal repros")
	minRecall := fs.Float64("min-recall", 1.0, "per-plane scoped-recall gate")
	maxDiv := fs.Int("max-divergences", 0, "divergent-program gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := foundry.TriageCorpus(*seed, *count, foundry.TriageOptions{
		Shrink:          *doShrink,
		MinScopedRecall: *minRecall,
		MaxDivergent:    *maxDiv,
	})
	if err != nil {
		return err
	}
	rj, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	rj = append(rj, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, rj, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "triaged %d programs (seed %d): %d divergent, gate ok=%v -> %s\n",
			rep.Count, rep.Seed, rep.Divergent, rep.GateOK, *outPath)
	} else {
		if _, err := out.Write(rj); err != nil {
			return err
		}
	}
	if !rep.GateOK {
		return fmt.Errorf("triage gate failed: %v", rep.GateDetails)
	}
	return nil
}

func runShrink(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnfoundry shrink", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "corpus seed")
	index := fs.Int("index", 0, "program index to shrink")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := foundry.Generate(*seed, *index)
	if err != nil {
		return err
	}
	tr, err := foundry.TriageProgram(g)
	if err != nil {
		return err
	}
	if tr.Verdict != foundry.VerdictDivergence {
		fmt.Fprintf(out, "%s: verdict %s — nothing to shrink\n", tr.Name, tr.Verdict)
		return nil
	}
	rep := foundry.Shrink(g.Spec)
	rj, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	rj = append(rj, '\n')
	_, err = out.Write(rj)
	return err
}
