package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/foundry"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestGenerateWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	out := runCapture(t, "generate", "-seed", "42", "-count", "12", "-dir", dir)
	if !strings.Contains(out, "wrote 12 programs") {
		t.Fatalf("output = %q", out)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 13 { // 12 programs + MANIFEST.json
		t.Fatalf("corpus dir has %d entries, want 13", len(files))
	}
	mj, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(mj, &m); err != nil {
		t.Fatal(err)
	}
	if m.Schema != "pnfoundry-corpus/v1" || m.Count != 12 || len(m.Programs) != 12 {
		t.Fatalf("manifest = %+v", m)
	}
	// The manifest labels must match an independent regeneration.
	g, err := foundry.Generate(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Programs[3].Labels.Name != g.Labels.Name || m.Programs[3].Labels.Kind != g.Labels.Kind {
		t.Fatalf("manifest entry 3 = %+v, want labels of %s", m.Programs[3], g.Labels.Name)
	}
}

// The CLI's whole contract: two runs with the same seed produce
// byte-identical corpora and byte-identical triage JSON.
func TestByteDeterminism(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	runCapture(t, "generate", "-seed", "7", "-count", "10", "-dir", dirA)
	runCapture(t, "generate", "-seed", "7", "-count", "10", "-dir", dirB)
	files, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		a, err := os.ReadFile(filepath.Join(dirA, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs across runs", f.Name())
		}
	}

	outA := filepath.Join(dirA, "triage.json")
	outB := filepath.Join(dirB, "triage.json")
	runCapture(t, "triage", "-seed", "7", "-count", "10", "-out", outA)
	runCapture(t, "triage", "-seed", "7", "-count", "10", "-out", outB)
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("triage JSON differs across runs")
	}
}

func TestTriageGatePasses(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"triage", "-seed", "42", "-count", "40"}, &sb); err != nil {
		t.Fatalf("triage gate failed: %v", err)
	}
	var rep foundry.TriageReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("triage output is not a report: %v", err)
	}
	if rep.Schema != foundry.TriageSchema || !rep.GateOK || rep.Divergent != 0 {
		t.Fatalf("report: schema=%q gateOK=%v divergent=%d", rep.Schema, rep.GateOK, rep.Divergent)
	}
}

func TestShrinkOnCleanProgram(t *testing.T) {
	out := runCapture(t, "shrink", "-seed", "42", "-index", "0")
	if !strings.Contains(out, "nothing to shrink") {
		t.Fatalf("output = %q", out)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("expected an error for an unknown subcommand")
	}
}
