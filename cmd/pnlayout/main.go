// Command pnlayout prints the object-layout maps of the classes declared
// in mini-C++ sources — sizeof, alignment, vptr slots, field offsets and
// padding — plus the overflow geometry of every inheritance pair: how many
// bytes a derived instance overhangs its base's arena, the arithmetic at
// the heart of every attack in the paper.
//
// Usage:
//
//	pnlayout [-model ilp32|i386|lp64] file.cpp...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analyzer"
	"repro/internal/layout"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnlayout:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnlayout", flag.ContinueOnError)
	modelName := fs.String("model", "i386", "data model: ilp32, i386, or lp64")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var model layout.Model
	switch *modelName {
	case "ilp32":
		model = layout.ILP32
	case "i386":
		model = layout.ILP32i386
	case "lp64":
		model = layout.LP64
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input files")
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := describeFile(out, path, string(src), model); err != nil {
			return err
		}
	}
	return nil
}

func describeFile(out io.Writer, path, src string, model layout.Model) error {
	r, err := analyzer.Analyze(src, analyzer.Options{Model: model})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	classes, err := analyzer.ClassesOf(r.Prog, model)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(classes) == 0 {
		fmt.Fprintf(out, "%s: no classes declared\n", path)
		return nil
	}
	fmt.Fprintf(out, "%s (%s):\n\n", path, model.Name)
	for _, cls := range classes {
		l, err := layout.Of(cls, model)
		if err != nil {
			return err
		}
		fmt.Fprint(out, l.Describe())
	}

	// Overflow geometry of every inheritance pair.
	t := report.NewTable("\nplacement overhang (derived placed over base arena)",
		"derived", "base", "sizeof(derived)", "sizeof(base)", "overhang")
	for _, d := range classes {
		for _, b := range classes {
			if d == b || !d.DerivesFrom(b) {
				continue
			}
			dl, err := layout.Of(d, model)
			if err != nil {
				return err
			}
			bl, err := layout.Of(b, model)
			if err != nil {
				return err
			}
			over := int64(dl.Size) - int64(bl.Size)
			t.AddRow(d.Name(), b.Name(),
				fmt.Sprintf("%d", dl.Size), fmt.Sprintf("%d", bl.Size),
				fmt.Sprintf("%+d bytes", over))
		}
	}
	if t.NumRows() > 0 {
		fmt.Fprint(out, t.String())
	}
	return nil
}
