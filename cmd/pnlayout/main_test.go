package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const src = `
class Student {
 public:
  virtual char getInfo();
  double gpa;
  int year;
  int semester;
};
class GradStudent : public Student {
 public:
  int ssn[3];
};
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "classes.cpp")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestLayoutOutput(t *testing.T) {
	p := writeTemp(t, src)
	out := runCapture(t, p)
	for _, want := range []string{
		"class Student", "class GradStudent", "__vptr",
		"double gpa", "int[3] ssn", "placement overhang",
		"GradStudent", "+12 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestModelChangesLayout(t *testing.T) {
	p := writeTemp(t, src)
	out386 := runCapture(t, "-model", "i386", p)
	outLP64 := runCapture(t, "-model", "lp64", p)
	if out386 == outLP64 {
		t.Error("model flag had no effect")
	}
	if !strings.Contains(outLP64, "LP64") {
		t.Errorf("LP64 banner missing:\n%s", outLP64)
	}
}

func TestNoClasses(t *testing.T) {
	p := writeTemp(t, "int x = 1;")
	out := runCapture(t, p)
	if !strings.Contains(out, "no classes declared") {
		t.Errorf("output = %q", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no-args accepted")
	}
	if err := run([]string{"-model", "vax", "x.cpp"}, &sb); err == nil {
		t.Error("bad model accepted")
	}
	if err := run([]string{"/does/not/exist.cpp"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	p := writeTemp(t, "class {")
	if err := run([]string{p}, &sb); err == nil {
		t.Error("unparsable file accepted")
	}
}
