package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/service"
)

// ClusterSchema is the BENCH_CLUSTER.json schema tag.
const ClusterSchema = "pnserve-cluster/v1"

// clusterOpts shapes a cluster sweep.
type clusterOpts struct {
	url         string // external router ("" = in-process fleets)
	nodes       []int  // worker counts to sweep (in-process mode)
	keys        int    // distinct cache keys in the workload
	repeatBase  int    // smallest per-request measurement-loop count
	requests    int    // requests per phase
	concurrency int    // fixed client concurrency
	ringSeed    uint64
	retries     int
	maxSleep    time.Duration
	minScaling  float64 // gate: miss-phase rps(max nodes)/rps(1 node)
	outFile     string
}

// clusterNodeReport is one topology's two measurement phases: miss
// (every key cold — the execution-bound scaling phase) and hit (the
// same keys again — the routing-plus-cache phase).
type clusterNodeReport struct {
	Workers int         `json:"workers"`
	Miss    levelReport `json:"miss"`
	Hit     levelReport `json:"hit"`
}

// clusterScaling is the headline number: how much miss-phase
// throughput grew from the smallest to the largest topology.
type clusterScaling struct {
	BaselineWorkers int     `json:"baseline_workers"`
	MaxWorkers      int     `json:"max_workers"`
	BaselineRPS     float64 `json:"baseline_rps"`
	MaxRPS          float64 `json:"max_rps"`
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// benchCluster is the whole BENCH_CLUSTER.json artifact.
type benchCluster struct {
	Schema      string              `json:"schema"`
	Mode        string              `json:"mode"` // "in-process" or "external"
	URL         string              `json:"url,omitempty"`
	Keys        int                 `json:"keys"`
	RepeatBase  int                 `json:"repeat_base"`
	Requests    int                 `json:"requests_per_phase"`
	Concurrency int                 `json:"concurrency"`
	RingSeed    uint64              `json:"ring_seed"`
	Nodes       []clusterNodeReport `json:"nodes"`
	Scaling     *clusterScaling     `json:"scaling,omitempty"`
}

// clusterURLs builds the workload: keys distinct content addresses
// with honest execution weight. The repeat measurement loop serves
// both ends — repeat > 1 is part of the cache key (so the ring spreads
// the keys across shards) and multiplies the per-request compute (so
// the miss phase measures execution scaling, not HTTP overhead).
func clusterURLs(base string, o clusterOpts) []string {
	urls := make([]string, o.keys)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/run?scenario=stack-ret&repeat=%d",
			strings.TrimSuffix(base, "/"), o.repeatBase+i)
	}
	return urls
}

// runClusterPhase drives one closed-loop phase: c workers keep
// requests in flight round-robin over urls until n complete.
func runClusterPhase(client *http.Client, urls []string, o clusterOpts, tracePrefix string) levelReport {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		samples = make([]sample, 0, o.requests)
		wg      sync.WaitGroup
	)
	start := time.Now()
	wg.Add(o.concurrency)
	for w := 0; w < o.concurrency; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(o.requests) {
					return
				}
				traceID := fmt.Sprintf("%s-%d", tracePrefix, i)
				s := issue(client, urls[int(i)%len(urls)], traceID, o.retries, o.maxSleep)
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := levelReport{Concurrency: o.concurrency, Requests: o.requests,
		WallMS: float64(wall.Microseconds()) / 1000}
	lats := make([]float64, 0, o.requests)
	for _, s := range samples {
		switch {
		case s.ok:
			rep.OK++
			if s.cacheHit {
				rep.CacheHits++
			}
			lats = append(lats, s.latencyMS)
		case s.shed:
			rep.Shed++
		default:
			rep.Errors++
		}
		rep.Retries += s.retries
	}
	if rep.OK > 0 {
		rep.CacheHitRate = round4(float64(rep.CacheHits) / float64(rep.OK))
		rep.ThroughputRPS = round4(float64(rep.OK) / wall.Seconds())
	}
	if o.requests > 0 {
		rep.ShedRate = round4(float64(rep.Shed) / float64(o.requests))
	}
	rep.Latency = summarize(lats)
	return rep
}

// sweepTopology measures one router URL: a cold miss phase over the
// key set, then a hit phase over the same keys.
func sweepTopology(client *http.Client, base string, workers int, o clusterOpts) clusterNodeReport {
	urls := clusterURLs(base, o)
	return clusterNodeReport{
		Workers: workers,
		Miss:    runClusterPhase(client, urls, o, fmt.Sprintf("cl-%d-miss", workers)),
		Hit:     runClusterPhase(client, urls, o, fmt.Sprintf("cl-%d-hit", workers)),
	}
}

// externalWorkers asks the router how many healthy workers are on its
// ring.
func externalWorkers(client *http.Client, base string) (int, error) {
	resp, err := client.Get(strings.TrimSuffix(base, "/") + "/cluster/members")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Ring struct {
			Nodes []string `json:"nodes"`
		} `json:"ring"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return 0, err
	}
	return len(body.Ring.Nodes), nil
}

// runClusterSweep executes the cluster benchmark and writes
// BENCH_CLUSTER.json. With -url it measures the external router it is
// given (one topology — the CI smoke path, where workers are separate
// processes and one is killed mid-sweep). Without -url it builds an
// in-process fleet per node count — each worker a real serve.Server
// with a single-threaded execution pool behind a real listener, so
// miss-phase throughput scales with worker count and the scaling gate
// has meaning.
func runClusterSweep(out io.Writer, o clusterOpts, timeout time.Duration) error {
	if o.repeatBase < 2 {
		return fmt.Errorf("-cluster-repeat %d: want >= 2 (repeat 1 is normalized out of the cache key)", o.repeatBase)
	}
	if max := o.repeatBase + o.keys - 1; max > service.MaxRepeat {
		return fmt.Errorf("-cluster-keys %d with -cluster-repeat %d needs repeat up to %d, over the server cap %d",
			o.keys, o.repeatBase, max, service.MaxRepeat)
	}
	client := &http.Client{Timeout: timeout}
	rep := benchCluster{Schema: ClusterSchema, Keys: o.keys, RepeatBase: o.repeatBase,
		Requests: o.requests, Concurrency: o.concurrency, RingSeed: o.ringSeed}

	if o.url != "" {
		rep.Mode, rep.URL = "external", o.url
		workers, err := externalWorkers(client, o.url)
		if err != nil {
			return fmt.Errorf("cluster members from %s: %w", o.url, err)
		}
		rep.Nodes = append(rep.Nodes, sweepTopology(client, o.url, workers, o))
	} else {
		rep.Mode = "in-process"
		for _, n := range o.nodes {
			// One execution slot per worker: the pool, not the client or the
			// router, is the bottleneck, so adding workers adds capacity.
			f := cluster.NewFleet(n, serve.Config{
				Workers: 1, Queue: o.requests + o.concurrency,
				CacheSize: 4 * o.keys, CacheTTL: 10 * time.Minute,
				Deadline: timeout, MaxDeadline: timeout,
			}, cluster.RouterConfig{Seed: o.ringSeed})
			rep.Nodes = append(rep.Nodes, sweepTopology(client, f.URL(), n, o))
			f.Close()
		}
	}

	for _, nr := range rep.Nodes {
		fmt.Fprintf(out, "workers=%-2d miss: ok=%d err=%d rps=%.1f p50=%.2fms p99=%.2fms | hit: rps=%.1f hit_rate=%.2f\n",
			nr.Workers, nr.Miss.OK, nr.Miss.Errors, nr.Miss.ThroughputRPS,
			nr.Miss.Latency.P50, nr.Miss.Latency.P99, nr.Hit.ThroughputRPS, nr.Hit.CacheHitRate)
	}
	if len(rep.Nodes) > 1 {
		base, max := rep.Nodes[0], rep.Nodes[len(rep.Nodes)-1]
		sc := &clusterScaling{
			BaselineWorkers: base.Workers, MaxWorkers: max.Workers,
			BaselineRPS: base.Miss.ThroughputRPS, MaxRPS: max.Miss.ThroughputRPS,
		}
		if sc.BaselineRPS > 0 {
			sc.ThroughputRatio = round4(sc.MaxRPS / sc.BaselineRPS)
		}
		rep.Scaling = sc
		fmt.Fprintf(out, "scaling %d->%d workers: %.2fx\n",
			sc.BaselineWorkers, sc.MaxWorkers, sc.ThroughputRatio)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if o.outFile != "-" {
		if err := os.WriteFile(o.outFile, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.outFile)
	} else {
		out.Write(blob)
	}

	errors := 0
	for _, nr := range rep.Nodes {
		errors += nr.Miss.Errors + nr.Hit.Errors
	}
	if errors > 0 {
		return fmt.Errorf("%d cluster requests failed for non-shedding reasons", errors)
	}
	if o.minScaling > 0 {
		if rep.Scaling == nil {
			return fmt.Errorf("-min-scaling needs at least two node counts")
		}
		if rep.Scaling.ThroughputRatio < o.minScaling {
			return fmt.Errorf("throughput scaling %.2fx (%d->%d workers) below required %.2fx",
				rep.Scaling.ThroughputRatio, rep.Scaling.BaselineWorkers,
				rep.Scaling.MaxWorkers, o.minScaling)
		}
	}
	return nil
}
