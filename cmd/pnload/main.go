// Command pnload is a closed-loop load generator for pnserve: for each
// concurrency level in a sweep it keeps exactly C requests in flight
// until the level's request budget is spent, then records throughput,
// latency percentiles (p50/p95/p99), cache hit rate, and shed rate.
// The sweep is written to BENCH_SERVE.json — the serving-throughput
// benchmark artifact whose schema is stable across PRs so the
// trajectory can be compared.
//
// Usage:
//
//	pnload -url http://127.0.0.1:8099 [-ids E1,E3,E9] [-levels 1,2,4,8]
//	       [-requests 64] [-out BENCH_SERVE.json] [-warm]
//	       [-min-hit-rate 0.5] [-priority normal]
//	       [-no-cache] [-batch 8] [-retries 2]
//
// Tenant-soak mode:
//
//	pnload -tenants [-seed 42] [-soak-duration 10s]
//	       [-tenant-out BENCH_TENANT.json]
//	       [-min-fair-share 0.8] [-max-starvation 0]
//
// Cluster-sweep mode:
//
//	pnload -cluster [-nodes 1,2,4,8] [-requests 192]
//	       [-cluster-keys 48] [-cluster-repeat 8]
//	       [-cluster-concurrency 16] [-ring-seed 1]
//	       [-cluster-out BENCH_CLUSTER.json] [-min-scaling 3.0]
//	pnload -cluster -url http://127.0.0.1:8090 [...]
//
// -cluster benchmarks the sharded serving tier. Without -url it builds
// an in-process fleet per -nodes count — real workers with
// single-slot execution pools behind real listeners, a real router in
// front — and measures a cold miss phase (execution-bound: the
// scaling signal) then a hit phase (routing + cache) over the same
// key set, writing throughput, latency percentiles, and hit rate per
// node count to BENCH_CLUSTER.json. -min-scaling gates near-linear
// scaling of miss-phase throughput from the smallest to the largest
// topology. With -url it measures one external router (the CI smoke
// topology, where a worker is killed mid-sweep and zero failed
// requests is the gate).
//
// -tenants runs the adversarial multi-tenant admission-control soak
// (greedy, bursty, and well-behaved tenants against per-tenant quotas,
// weighted fair queueing with priority aging, and circuit breakers) as
// a deterministic discrete-event simulation — no server, no -url; the
// same seed always produces byte-identical BENCH_TENANT.json. Exit
// status is non-zero when the well-behaved tenant's completed fraction
// falls below -min-fair-share, when the starvation ratio exceeds
// -max-starvation, or when the greedy tenant was never rate-limited.
//
// -retries N retries shed requests (429/503) up to N times per
// request, honoring the server's Retry-After (and millisecond
// X-PN-Retry-After-MS) backoff hint, capped by -retry-max-sleep;
// retry counts are recorded per level.
//
// Each individual /run request is tagged with a unique X-PN-Trace-Id
// (disable with -trace=false) and the server's per-stage latency
// breakdown is harvested from the response, so every level reports
// stage percentiles — queue_wait p99 against execute p99 is the
// queueing-vs-execution split under rising concurrency.
//
// -no-cache forces execution on every request — a cache-miss-heavy
// sweep that measures the execution path (and the server's image
// template pool) instead of the result cache. -batch N groups requests
// into POST /runbatch calls of N, exercising the batched admission
// path; each item's recorded latency is its call's wall time.
//
// IDs matching E<number> are sent as experiment requests, anything
// else as scenario requests. Exit status is non-zero when any request
// failed for a non-shedding reason, or when -min-hit-rate is set and
// the workload's overall cache hit rate fell below it; shed requests
// (structured 429s) are the server working as designed and are
// reported, not failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnload:", err)
		os.Exit(1)
	}
}

// Schema is the BENCH_SERVE.json schema tag. v2 added per-stage
// latency percentiles (queue_wait, execute, ...) harvested from the
// server's stage breakdown in each /run response.
const Schema = "pnserve-load/v2"

// traceHeader tags every individual /run request with a unique
// client trace ID so server-side traces can be correlated with load
// samples (and the stage breakdown is returned per request).
const traceHeader = "X-PN-Trace-Id"

// latencyStats summarises one level's latency distribution in
// milliseconds.
type latencyStats struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// levelReport is one concurrency level of the sweep.
type levelReport struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	OK          int `json:"ok"`
	Shed        int `json:"shed"`
	Errors      int `json:"errors"`
	// Retries counts shed responses that were retried after honoring
	// the server's Retry-After hint.
	Retries   int `json:"retries,omitempty"`
	CacheHits int `json:"cache_hits"`
	// CacheHitRate is hits (hit + coalesced) over completed-OK requests.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ShedRate is shed over issued requests.
	ShedRate float64 `json:"shed_rate"`
	// ThroughputRPS is completed-OK requests per wall-clock second.
	ThroughputRPS float64      `json:"throughput_rps"`
	WallMS        float64      `json:"wall_ms"`
	Latency       latencyStats `json:"latency"`
	// Stages holds per-stage latency percentiles (queue_wait, execute,
	// clone, ...) aggregated from the server's per-request breakdown —
	// the split that shows whether overload latency is queueing or
	// execution. Individual /run calls only; /runbatch responses do not
	// carry per-item stages.
	Stages map[string]latencyStats `json:"stages,omitempty"`
}

// benchServe is the whole artifact.
type benchServe struct {
	Schema           string        `json:"schema"`
	URL              string        `json:"url"`
	IDs              []string      `json:"ids"`
	RequestsPerLevel int           `json:"requests_per_level"`
	Warmed           bool          `json:"warmed"`
	NoCache          bool          `json:"no_cache,omitempty"`
	Batch            int           `json:"batch,omitempty"`
	Levels           []levelReport `json:"levels"`
	Totals           struct {
		Requests     int     `json:"requests"`
		OK           int     `json:"ok"`
		Shed         int     `json:"shed"`
		Errors       int     `json:"errors"`
		Retries      int     `json:"retries,omitempty"`
		CacheHits    int     `json:"cache_hits"`
		CacheHitRate float64 `json:"cache_hit_rate"`
	} `json:"totals"`
}

var expIDPattern = regexp.MustCompile(`^E[0-9]+$`)

// runURL builds the /run request URL for one workload id.
func runURL(base, id, priority string, noCache bool) string {
	v := url.Values{}
	if expIDPattern.MatchString(id) {
		v.Set("experiment", id)
	} else {
		v.Set("scenario", id)
	}
	if priority != "" {
		v.Set("priority", priority)
	}
	if noCache {
		v.Set("no_cache", "true")
	}
	return strings.TrimSuffix(base, "/") + "/run?" + v.Encode()
}

// batchBody builds the POST /runbatch body for a slice of workload ids.
func batchBody(ids []string, priority string, noCache bool) []byte {
	type req struct {
		Experiment string `json:"experiment,omitempty"`
		Scenario   string `json:"scenario,omitempty"`
		Priority   string `json:"priority,omitempty"`
		NoCache    bool   `json:"no_cache,omitempty"`
	}
	var body struct {
		Requests []req `json:"requests"`
	}
	for _, id := range ids {
		r := req{Priority: priority, NoCache: noCache}
		if expIDPattern.MatchString(id) {
			r.Experiment = id
		} else {
			r.Scenario = id
		}
		body.Requests = append(body.Requests, r)
	}
	blob, _ := json.Marshal(body)
	return blob
}

// sample is one completed request.
type sample struct {
	ok        bool
	shed      bool
	cacheHit  bool
	latencyMS float64
	retries   int
	// stages is the server-reported per-stage latency breakdown for
	// this request (milliseconds), keyed by stage name.
	stages map[string]float64
}

// isDrainingReject reports whether a shed body carries the structured
// draining rejection — the one shedding reason a retry can never
// outwait (the node is going away; the router re-routes around it).
func isDrainingReject(body []byte) bool {
	var er struct {
		Reject *service.Rejection `json:"reject"`
	}
	if json.Unmarshal(body, &er) != nil {
		return false
	}
	return er.Reject != nil && er.Reject.Reason == service.ReasonDraining
}

// retryDelay reads the server's backoff hint: the millisecond
// X-PN-Retry-After-MS header when present, the standard whole-second
// Retry-After otherwise, a small default when neither parses. The
// result is capped so a pathological hint cannot stall the sweep.
func retryDelay(h http.Header, cap time.Duration) time.Duration {
	d := 50 * time.Millisecond
	if v := h.Get("X-PN-Retry-After-MS"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	} else if v := h.Get("Retry-After"); v != "" {
		if sec, err := strconv.ParseInt(v, 10, 64); err == nil && sec > 0 {
			d = time.Duration(sec) * time.Second
		}
	}
	if d > cap {
		d = cap
	}
	return d
}

// issue performs one request and classifies it, retrying shed
// responses (429/503) up to retries times with the server's own
// Retry-After backoff. The recorded latency spans all attempts — the
// time the client actually waited for an answer.
func issue(client *http.Client, u, traceID string, retries int, maxSleep time.Duration) sample {
	start := time.Now()
	var s sample
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, u, nil)
		if err != nil {
			return s
		}
		if traceID != "" {
			req.Header.Set(traceHeader, traceID)
		}
		resp, err := client.Do(req)
		if err != nil {
			s.latencyMS = float64(time.Since(start).Microseconds()) / 1000
			return s
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		s.latencyMS = float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			return s
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var rr struct {
				Cache  string             `json:"cache"`
				Stages map[string]float64 `json:"stages"`
			}
			if json.Unmarshal(body, &rr) != nil {
				return s
			}
			s.ok = true
			s.cacheHit = rr.Cache == "hit" || rr.Cache == "coalesced"
			s.stages = rr.Stages
			return s
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// A draining node never recovers for this request — retrying
			// it only burns the budget sleeping, so stop immediately.
			if attempt < retries && !isDrainingReject(body) {
				s.retries++
				time.Sleep(retryDelay(resp.Header, maxSleep))
				continue
			}
			s.shed = true
			return s
		default:
			return s
		}
	}
}

// issueBatch POSTs one /runbatch call for ids and classifies every item.
// Each item's latency is the whole call's wall time: that is what the
// client actually waited for each answer in a batched workload.
func issueBatch(client *http.Client, base string, ids []string, priority string, noCache bool) []sample {
	start := time.Now()
	out := make([]sample, len(ids))
	resp, err := client.Post(strings.TrimSuffix(base, "/")+"/runbatch",
		"application/json", strings.NewReader(string(batchBody(ids, priority, noCache))))
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	lat := float64(time.Since(start).Microseconds()) / 1000
	for i := range out {
		out[i].latencyMS = lat
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		return out
	}
	var br struct {
		Results []struct {
			Cache string `json:"cache"`
			Code  int    `json:"code"`
		} `json:"results"`
	}
	if json.Unmarshal(body, &br) != nil || len(br.Results) != len(ids) {
		return out
	}
	for i, it := range br.Results {
		switch it.Code {
		case http.StatusOK:
			out[i].ok = true
			out[i].cacheHit = it.Cache == "hit" || it.Cache == "coalesced"
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			out[i].shed = true
		}
	}
	return out
}

// levelOptions carry the per-request workload shape through a sweep.
type levelOptions struct {
	priority string
	noCache  bool // force execution: a cache-miss-heavy sweep
	batch    int  // >1: group requests into /runbatch calls of this size
	retries  int  // retry shed /run requests this many times
	maxSleep time.Duration
	// trace tags each /run request with a unique X-PN-Trace-Id. Note
	// that a client-supplied trace ID arms the server's detailed
	// per-write instrumentation for that request.
	trace bool
}

// runLevel drives one closed-loop level: c workers, n requests total,
// round-robin over ids. With opts.batch > 1 each worker claims up to
// batch consecutive request slots and issues them as one /runbatch
// call.
func runLevel(client *http.Client, base string, ids []string, opts levelOptions, c, n int) levelReport {
	var (
		next    atomic.Int64
		mu      sync.Mutex
		samples = make([]sample, 0, n)
		wg      sync.WaitGroup
	)
	k := opts.batch
	if k < 1 {
		k = 1
	}
	start := time.Now()
	wg.Add(c)
	for w := 0; w < c; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(int64(k)) - int64(k) // first claimed slot, 0-based
				if lo >= int64(n) {
					return
				}
				hi := lo + int64(k)
				if hi > int64(n) {
					hi = int64(n)
				}
				var got []sample
				if k == 1 {
					traceID := ""
					if opts.trace {
						traceID = fmt.Sprintf("load-c%d-s%d", c, lo)
					}
					got = []sample{issue(client, runURL(base, ids[int(lo)%len(ids)], opts.priority, opts.noCache), traceID, opts.retries, opts.maxSleep)}
				} else {
					claimed := make([]string, 0, hi-lo)
					for i := lo; i < hi; i++ {
						claimed = append(claimed, ids[int(i)%len(ids)])
					}
					got = issueBatch(client, base, claimed, opts.priority, opts.noCache)
				}
				mu.Lock()
				samples = append(samples, got...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := levelReport{Concurrency: c, Requests: n, WallMS: float64(wall.Microseconds()) / 1000}
	lats := make([]float64, 0, n)
	for _, s := range samples {
		switch {
		case s.ok:
			rep.OK++
			if s.cacheHit {
				rep.CacheHits++
			}
			lats = append(lats, s.latencyMS)
		case s.shed:
			rep.Shed++
		default:
			rep.Errors++
		}
		rep.Retries += s.retries
	}
	if rep.OK > 0 {
		rep.CacheHitRate = round4(float64(rep.CacheHits) / float64(rep.OK))
		rep.ThroughputRPS = round4(float64(rep.OK) / wall.Seconds())
	}
	if n > 0 {
		rep.ShedRate = round4(float64(rep.Shed) / float64(n))
	}
	rep.Latency = summarize(lats)
	stageLats := make(map[string][]float64)
	for _, s := range samples {
		if !s.ok {
			continue
		}
		for name, ms := range s.stages {
			stageLats[name] = append(stageLats[name], ms)
		}
	}
	if len(stageLats) > 0 {
		rep.Stages = make(map[string]latencyStats, len(stageLats))
		for name, ls := range stageLats {
			rep.Stages[name] = summarize(ls)
		}
	}
	return rep
}

func summarize(lats []float64) latencyStats {
	var st latencyStats
	if len(lats) == 0 {
		return st
	}
	sort.Float64s(lats)
	sum := 0.0
	for _, v := range lats {
		sum += v
	}
	st.P50 = round4(percentile(lats, 0.50))
	st.P95 = round4(percentile(lats, 0.95))
	st.P99 = round4(percentile(lats, 0.99))
	st.Mean = round4(sum / float64(len(lats)))
	st.Max = round4(lats[len(lats)-1])
	return st
}

// percentile returns the q-quantile of sorted values (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid concurrency level %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	return out, nil
}

func parseIDs(s string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no workload ids")
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnload", flag.ContinueOnError)
	base := fs.String("url", "", "pnserve base URL (e.g. http://127.0.0.1:8099)")
	idsFlag := fs.String("ids", "E1,E3,E9", "comma list of workload ids (E<n> = experiment, otherwise scenario)")
	levelsFlag := fs.String("levels", "1,2,4,8", "comma list of concurrency levels to sweep")
	requests := fs.Int("requests", 64, "requests per level")
	priority := fs.String("priority", "", "priority lane for every request (high, normal, low)")
	outFile := fs.String("out", "BENCH_SERVE.json", "artifact path ('-' = stdout only)")
	noCache := fs.Bool("no-cache", false, "set no_cache on every request: a cache-miss-heavy sweep that measures the execution (and template-pool) path")
	batch := fs.Int("batch", 0, "group requests into POST /runbatch calls of this size (0/1 = individual /run calls)")
	warm := fs.Bool("warm", true, "issue each id once before the sweep so the repeated-ID workload measures the cache")
	minHitRate := fs.Float64("min-hit-rate", -1, "fail unless the overall cache hit rate reaches this (negative = no check)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	trace := fs.Bool("trace", true, "tag each /run request with a unique X-PN-Trace-Id and harvest the per-stage latency breakdown")
	retries := fs.Int("retries", 0, "retry shed (429/503) /run requests this many times, honoring Retry-After")
	retryMaxSleep := fs.Duration("retry-max-sleep", 2*time.Second, "cap on a single Retry-After backoff sleep")
	clusterMode := fs.Bool("cluster", false, "run the cluster sweep: in-process fleets per -nodes count, or one external router when -url is set")
	nodesFlag := fs.String("nodes", "1,2,4,8", "cluster mode: comma list of in-process worker counts to sweep")
	clusterOut := fs.String("cluster-out", "BENCH_CLUSTER.json", "cluster artifact path ('-' = stdout only)")
	clusterKeys := fs.Int("cluster-keys", 48, "cluster mode: distinct cache keys in the workload")
	clusterRepeat := fs.Int("cluster-repeat", 8, "cluster mode: smallest per-request repeat count (execution weight)")
	clusterConc := fs.Int("cluster-concurrency", 16, "cluster mode: fixed client concurrency")
	ringSeed := fs.Uint64("ring-seed", 1, "cluster mode: consistent-hash placement seed for in-process fleets")
	minScaling := fs.Float64("min-scaling", -1, "cluster mode: fail unless miss-phase throughput scales by this factor from the smallest to the largest node count (negative = no check)")
	tenants := fs.Bool("tenants", false, "run the deterministic multi-tenant admission soak instead of an HTTP sweep (no -url needed)")
	seed := fs.Int64("seed", 42, "tenant-soak PRNG seed; equal seeds produce byte-identical reports")
	soakDuration := fs.Duration("soak-duration", 10*time.Second, "simulated tenant-soak duration")
	tenantOut := fs.String("tenant-out", "BENCH_TENANT.json", "tenant-soak artifact path ('-' = stdout only)")
	minFairShare := fs.Float64("min-fair-share", 0.8, "fail unless the well-behaved tenant completes at least this fraction of its offered load")
	maxStarvation := fs.Float64("max-starvation", 0, "fail when the low-priority starvation ratio exceeds this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants {
		return runTenantSoak(out, *seed, *soakDuration, *tenantOut, *minFairShare, *maxStarvation)
	}
	if *clusterMode {
		nodes, err := parseLevels(*nodesFlag)
		if err != nil {
			return fmt.Errorf("-nodes: %w", err)
		}
		return runClusterSweep(out, clusterOpts{
			url: *base, nodes: nodes, keys: *clusterKeys, repeatBase: *clusterRepeat,
			requests: *requests, concurrency: *clusterConc, ringSeed: *ringSeed,
			retries: *retries, maxSleep: *retryMaxSleep,
			minScaling: *minScaling, outFile: *clusterOut,
		}, *timeout)
	}
	if *base == "" {
		return fmt.Errorf("missing -url")
	}
	ids, err := parseIDs(*idsFlag)
	if err != nil {
		return err
	}
	levels, err := parseLevels(*levelsFlag)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	rep := benchServe{Schema: Schema, URL: *base, IDs: ids, RequestsPerLevel: *requests, Warmed: *warm,
		NoCache: *noCache, Batch: *batch}

	if *warm {
		for _, id := range ids {
			if s := issue(client, runURL(*base, id, *priority, false), "", *retries, *retryMaxSleep); !s.ok {
				return fmt.Errorf("warmup request for %s failed (server down or id invalid)", id)
			}
		}
	}

	opts := levelOptions{priority: *priority, noCache: *noCache, batch: *batch,
		retries: *retries, maxSleep: *retryMaxSleep, trace: *trace}
	for _, c := range levels {
		lr := runLevel(client, *base, ids, opts, c, *requests)
		rep.Levels = append(rep.Levels, lr)
		rep.Totals.Requests += lr.Requests
		rep.Totals.OK += lr.OK
		rep.Totals.Shed += lr.Shed
		rep.Totals.Errors += lr.Errors
		rep.Totals.Retries += lr.Retries
		rep.Totals.CacheHits += lr.CacheHits
		fmt.Fprintf(out, "c=%-3d ok=%d shed=%d err=%d hit=%.2f rps=%.1f p50=%.2fms p95=%.2fms p99=%.2fms\n",
			c, lr.OK, lr.Shed, lr.Errors, lr.CacheHitRate, lr.ThroughputRPS,
			lr.Latency.P50, lr.Latency.P95, lr.Latency.P99)
		if qw, ok := lr.Stages["queue_wait"]; ok {
			ex := lr.Stages["execute"]
			fmt.Fprintf(out, "      queue_wait p99=%.2fms execute p99=%.2fms\n", qw.P99, ex.P99)
		}
	}
	if rep.Totals.OK > 0 {
		rep.Totals.CacheHitRate = round4(float64(rep.Totals.CacheHits) / float64(rep.Totals.OK))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outFile != "-" {
		if err := os.WriteFile(*outFile, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outFile)
	} else {
		out.Write(blob)
	}

	if rep.Totals.Errors > 0 {
		return fmt.Errorf("%d requests failed for non-shedding reasons", rep.Totals.Errors)
	}
	if *minHitRate >= 0 && rep.Totals.CacheHitRate < *minHitRate {
		return fmt.Errorf("cache hit rate %.4f below required %.4f", rep.Totals.CacheHitRate, *minHitRate)
	}
	return nil
}

// runTenantSoak executes the deterministic three-tenant adversarial
// soak in-process (no server: the simulation drives the exact same
// admission components pnserve uses) and enforces the fairness gates
// the issue specifies. Equal seeds produce byte-identical artifacts,
// which is what lets CI diff two runs with cmp.
func runTenantSoak(out io.Writer, seed int64, duration time.Duration, outFile string, minFairShare, maxStarvation float64) error {
	cfg := service.DefaultSoakConfig(seed)
	if duration > 0 {
		cfg.Duration = duration
	}
	rep := service.RunTenantSoak(cfg)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if outFile != "-" {
		if err := os.WriteFile(outFile, blob, 0o644); err != nil {
			return err
		}
	} else {
		out.Write(blob)
	}

	for _, ts := range rep.Tenants {
		shed := 0
		for _, n := range ts.Shed {
			shed += n
		}
		fmt.Fprintf(out, "tenant=%-12s offered=%-5d completed=%-5d shed=%-5d fair_share=%.3f goodput=%.1frps p99=%.2fms\n",
			ts.Name, ts.Offered, ts.Completed, shed, ts.FairShare, ts.GoodputRPS, ts.P99MS)
	}
	fmt.Fprintf(out, "aged_promotions=%d starvation_ratio=%.3f breaker_opens=%d\n",
		rep.AgedPromotions, rep.StarvationRatio, rep.BreakerOpens)
	if outFile != "-" {
		fmt.Fprintf(out, "wrote %s\n", outFile)
	}

	well, err := rep.TenantByName("wellbehaved")
	if err != nil {
		return err
	}
	if well.FairShare < minFairShare {
		return fmt.Errorf("well-behaved fair share %.4f below required %.4f", well.FairShare, minFairShare)
	}
	if rep.StarvationRatio > maxStarvation {
		return fmt.Errorf("starvation ratio %.4f exceeds allowed %.4f (%d of %d low-priority requests starved)",
			rep.StarvationRatio, maxStarvation, rep.LowStarved, rep.LowAdmitted)
	}
	greedy, err := rep.TenantByName("greedy")
	if err != nil {
		return err
	}
	if greedy.Shed[service.ReasonQuota] == 0 {
		return fmt.Errorf("greedy tenant was never rate-limited; quotas are not biting")
	}
	return nil
}
