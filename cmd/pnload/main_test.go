package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServe is a minimal pnserve stand-in: the first request per id is
// a miss, repeats are hits; when shedEvery > 0 every shedEvery-th
// request is shed with a 429.
func fakeServe(shedEvery int64) http.Handler {
	var count atomic.Int64
	var mu sync.Mutex
	seen := map[string]bool{}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := count.Add(1)
		if shedEvery > 0 && n%shedEvery == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": "shed", "code": 429})
			return
		}
		id := r.URL.Query().Get("experiment")
		if id == "" {
			id = r.URL.Query().Get("scenario")
		}
		mu.Lock()
		cache := "hit"
		if !seen[id] {
			seen[id], cache = true, "miss"
		}
		mu.Unlock()
		resp := map[string]any{"id": id, "status": "ok", "cache": cache}
		if tid := r.Header.Get("X-PN-Trace-Id"); tid != "" {
			resp["trace_id"] = tid
			resp["stages"] = map[string]float64{"queue_wait": 0.5, "execute": 1.25}
		}
		json.NewEncoder(w).Encode(resp)
	})
}

func TestSweepWritesBenchServe(t *testing.T) {
	ts := httptest.NewServer(fakeServe(0))
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "BENCH_SERVE.json")
	var stdout strings.Builder
	if err := run([]string{
		"-url", ts.URL, "-ids", "E1,E3", "-levels", "1,2", "-requests", "10",
		"-out", outPath, "-min-hit-rate", "0.5",
	}, &stdout); err != nil {
		t.Fatalf("run: %v (stdout: %s)", err, stdout.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchServe
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_SERVE.json is not valid JSON: %v", err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, Schema)
	}
	if len(rep.Levels) != 2 || rep.Levels[0].Concurrency != 1 || rep.Levels[1].Concurrency != 2 {
		t.Fatalf("levels = %+v, want the 1,2 sweep", rep.Levels)
	}
	if rep.Totals.Requests != 20 || rep.Totals.OK != 20 || rep.Totals.Errors != 0 {
		t.Fatalf("totals = %+v, want 20 ok / 0 errors", rep.Totals)
	}
	// Warmup touched both ids, so the whole measured sweep hits.
	if rep.Totals.CacheHitRate < 0.99 {
		t.Fatalf("cache hit rate = %g, want ~1.0 after warmup", rep.Totals.CacheHitRate)
	}
	for _, lv := range rep.Levels {
		qw, ok := lv.Stages["queue_wait"]
		if !ok || qw.P99 != 0.5 {
			t.Fatalf("level %d stage percentiles = %+v, want queue_wait p99 0.5", lv.Concurrency, lv.Stages)
		}
		if ex := lv.Stages["execute"]; ex.P99 != 1.25 {
			t.Fatalf("level %d execute p99 = %+v, want 1.25", lv.Concurrency, lv.Stages["execute"])
		}
		if lv.Latency.P50 <= 0 || lv.Latency.P99 < lv.Latency.P50 {
			t.Fatalf("level %d latency stats = %+v", lv.Concurrency, lv.Latency)
		}
		if lv.ThroughputRPS <= 0 {
			t.Fatalf("level %d throughput = %g", lv.Concurrency, lv.ThroughputRPS)
		}
	}
}

func TestShedCountedNotFailed(t *testing.T) {
	ts := httptest.NewServer(fakeServe(5)) // every 5th request shed
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "BENCH_SERVE.json")
	var stdout strings.Builder
	if err := run([]string{
		"-url", ts.URL, "-ids", "E1", "-levels", "2", "-requests", "20",
		"-out", outPath, "-warm=false",
	}, &stdout); err != nil {
		t.Fatalf("run treated shed responses as failure: %v", err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchServe
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Shed == 0 {
		t.Fatalf("totals = %+v, want shed > 0", rep.Totals)
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("totals = %+v, want sheds excluded from errors", rep.Totals)
	}
	if rep.Totals.OK+rep.Totals.Shed != rep.Totals.Requests {
		t.Fatalf("totals don't add up: %+v", rep.Totals)
	}
}

func TestHitRateGateFails(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Pathological server: never a cache hit.
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "cache": "miss"})
	}))
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "BENCH_SERVE.json")
	var stdout strings.Builder
	err := run([]string{
		"-url", ts.URL, "-ids", "E1", "-levels", "1", "-requests", "5",
		"-out", outPath, "-min-hit-rate", "0.5",
	}, &stdout)
	if err == nil || !strings.Contains(err.Error(), "hit rate") {
		t.Fatalf("err = %v, want hit-rate gate failure", err)
	}
	if _, statErr := os.Stat(outPath); statErr != nil {
		t.Fatal("artifact must be written even when the gate fails")
	}
}

// TestRetriesHonorRetryAfter: with -retries, a shed response is retried
// after the server's millisecond backoff hint and the retry is recorded;
// without the flag (the default) the same workload keeps its shed count.
func TestRetriesHonorRetryAfter(t *testing.T) {
	var count atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count.Add(1)%2 == 1 { // every odd request shed, the retry succeeds
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-PN-Retry-After-MS", "5")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"error": "shed", "code": 429})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "cache": "miss"})
	}))
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "BENCH_SERVE.json")
	var stdout strings.Builder
	if err := run([]string{
		"-url", ts.URL, "-ids", "E1", "-levels", "1", "-requests", "6",
		"-out", outPath, "-warm=false", "-retries", "2",
	}, &stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchServe
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.OK != 6 || rep.Totals.Shed != 0 {
		t.Fatalf("totals = %+v, want every shed retried to success", rep.Totals)
	}
	if rep.Totals.Retries == 0 {
		t.Fatalf("totals = %+v, want retries recorded", rep.Totals)
	}
}

// TestRetryDelayPrefersMillisecondHint: the precise X-PN-Retry-After-MS
// header wins over whole-second Retry-After, and both are capped.
func TestRetryDelayPrefersMillisecondHint(t *testing.T) {
	h := http.Header{}
	h.Set("Retry-After", "3")
	h.Set("X-PN-Retry-After-MS", "250")
	if d := retryDelay(h, time.Second); d != 250*time.Millisecond {
		t.Fatalf("delay = %v, want the 250ms hint", d)
	}
	h.Del("X-PN-Retry-After-MS")
	if d := retryDelay(h, time.Second); d != time.Second {
		t.Fatalf("delay = %v, want the 3s hint capped at 1s", d)
	}
	if d := retryDelay(http.Header{}, time.Second); d != 50*time.Millisecond {
		t.Fatalf("delay = %v, want the default backoff", d)
	}
}

// TestShed503CountedNotFailed: overload 503s (limiter, breaker,
// draining) are shed like 429s, not errors.
func TestShed503CountedNotFailed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"error": "shed", "code": 503})
	}))
	defer ts.Close()

	var stdout strings.Builder
	if err := run([]string{
		"-url", ts.URL, "-ids", "E1", "-levels", "1", "-requests", "4",
		"-out", "-", "-warm=false",
	}, &stdout); err != nil {
		t.Fatalf("run treated 503 sheds as failure: %v", err)
	}
	if !strings.Contains(stdout.String(), `"shed": 4`) {
		t.Fatalf("stdout = %s, want 4 sheds", stdout.String())
	}
}

// TestTenantSoakMode: -tenants needs no -url, writes a byte-deterministic
// BENCH_TENANT.json, and passes the default fairness gates.
func TestTenantSoakMode(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) {
		t.Helper()
		var stdout strings.Builder
		if err := run([]string{
			"-tenants", "-seed", "42", "-soak-duration", "2s", "-tenant-out", path,
		}, &stdout); err != nil {
			t.Fatalf("tenant soak: %v (stdout: %s)", err, stdout.String())
		}
		if !strings.Contains(stdout.String(), "tenant=wellbehaved") {
			t.Fatalf("stdout missing per-tenant summary: %s", stdout.String())
		}
	}
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	runOnce(a)
	runOnce(b)

	blobA, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(blobA) != string(blobB) {
		t.Fatal("same seed produced different BENCH_TENANT.json bytes")
	}
	var rep map[string]any
	if err := json.Unmarshal(blobA, &rep); err != nil {
		t.Fatalf("BENCH_TENANT.json invalid: %v", err)
	}
	if rep["schema_version"] != "pnserve-tenant/v1" {
		t.Fatalf("schema_version = %v, want pnserve-tenant/v1", rep["schema_version"])
	}
}

// TestTenantSoakGateFails: an unattainable fair-share requirement makes
// the soak exit non-zero — the CI gate has teeth.
func TestTenantSoakGateFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_TENANT.json")
	var stdout strings.Builder
	err := run([]string{
		"-tenants", "-seed", "42", "-soak-duration", "1s", "-tenant-out", path,
		"-min-fair-share", "1.01",
	}, &stdout)
	if err == nil || !strings.Contains(err.Error(), "fair share") {
		t.Fatalf("err = %v, want fair-share gate failure", err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatal("artifact must be written even when the gate fails")
	}
}

func TestWorkloadIDKinds(t *testing.T) {
	if got := runURL("http://x", "E12", "", false); !strings.Contains(got, "experiment=E12") {
		t.Fatalf("E12 url = %s, want experiment param", got)
	}
	if got := runURL("http://x/", "bss-overflow", "low", false); !strings.Contains(got, "scenario=bss-overflow") ||
		!strings.Contains(got, "priority=low") || strings.Contains(got, "//run") {
		t.Fatalf("scenario url = %s", got)
	}
	if got := runURL("http://x", "E12", "", true); !strings.Contains(got, "no_cache=true") {
		t.Fatalf("no-cache url = %s, want no_cache param", got)
	}
}
