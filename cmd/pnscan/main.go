// Command pnscan runs the placement-new static analyzer (and optionally
// the traditional baseline scanner) over mini-C++ sources.
//
// Usage:
//
//	pnscan [-baseline] [-model ilp32|i386|lp64] file.cpp...
//	pnscan -corpus
//
// -corpus analyses the embedded listing corpus and prints the E16
// comparison table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analyzer"
	"repro/internal/experiments"
	"repro/internal/layout"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnscan:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnscan", flag.ContinueOnError)
	baseline := fs.Bool("baseline", false, "also run the traditional scanner")
	corpus := fs.Bool("corpus", false, "analyse the embedded listing corpus (E16)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	modelName := fs.String("model", "i386", "data model: ilp32, i386, or lp64")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var model layout.Model
	switch *modelName {
	case "ilp32":
		model = layout.ILP32
	case "i386":
		model = layout.ILP32i386
	case "lp64":
		model = layout.LP64
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}

	if *corpus {
		e, err := experiments.ByID("E16")
		if err != nil {
			return err
		}
		t, err := e.Run()
		if err != nil {
			return err
		}
		fmt.Fprint(out, t.String())
		return nil
	}

	if fs.NArg() == 0 {
		return fmt.Errorf("no input files (or use -corpus)")
	}
	exitDiags := 0
	var jsonFindings []jsonFinding
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		r, err := analyzer.Analyze(string(src), analyzer.Options{Model: model})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, d := range r.Diags {
			if *jsonOut {
				jsonFindings = append(jsonFindings, jsonFinding{
					File: path, Line: d.Pos.Line, Col: d.Pos.Col,
					Code: d.Code, Severity: d.Sev.String(),
					Message: d.Msg, Suggestion: d.Suggestion,
				})
			} else {
				fmt.Fprintf(out, "%s:%s\n", path, d)
				if d.Suggestion != "" {
					fmt.Fprintf(out, "    fix: %s\n", d.Suggestion)
				}
			}
			exitDiags++
		}
		if *baseline {
			bf, err := analyzer.Baseline(string(src))
			if err != nil {
				return err
			}
			for _, f := range bf {
				if *jsonOut {
					jsonFindings = append(jsonFindings, jsonFinding{
						File: path, Line: f.Pos.Line, Col: f.Pos.Col,
						Code: "BASELINE", Severity: "warning",
						Message: "risky call to " + f.Func + ": " + f.Msg,
					})
				} else {
					fmt.Fprintf(out, "%s:%s [baseline]\n", path, f)
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if jsonFindings == nil {
			jsonFindings = []jsonFinding{}
		}
		return enc.Encode(jsonFindings)
	}
	if exitDiags > 0 {
		fmt.Fprintf(out, "%d finding(s)\n", exitDiags)
	} else {
		fmt.Fprintln(out, "no placement-new findings")
	}
	return nil
}

// jsonFinding is the machine-readable diagnostic shape emitted by -json.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Code       string `json:"code"`
	Severity   string `json:"severity"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}
