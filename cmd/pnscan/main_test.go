package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const vulnSrc = `
class Student { public: double gpa; int year; int semester; };
class GradStudent : public Student { public: int ssn[3]; };
void addStudent() {
  Student stud;
  GradStudent *st = new (&stud) GradStudent();
}
`

func TestScanVulnerableFile(t *testing.T) {
	p := writeTemp(t, "vuln.cpp", vulnSrc)
	out := runCapture(t, p)
	if !strings.Contains(out, "PN001") {
		t.Errorf("PN001 not reported:\n%s", out)
	}
	if !strings.Contains(out, "1 finding(s)") {
		t.Errorf("findings count missing:\n%s", out)
	}
}

func TestScanCleanFile(t *testing.T) {
	p := writeTemp(t, "clean.cpp", `
class Student { public: int year; };
Student s;
void reinit() { Student *p = new (&s) Student(); }
`)
	out := runCapture(t, p)
	if !strings.Contains(out, "no placement-new findings") {
		t.Errorf("clean file reported findings:\n%s", out)
	}
}

func TestBaselineFlag(t *testing.T) {
	p := writeTemp(t, "classic.cpp", `
char dst[8];
void f(char *s) { strcpy(dst, s); }
`)
	out := runCapture(t, "-baseline", p)
	if !strings.Contains(out, "strcpy") || !strings.Contains(out, "[baseline]") {
		t.Errorf("baseline finding missing:\n%s", out)
	}
}

func TestCorpusMode(t *testing.T) {
	out := runCapture(t, "-corpus")
	if !strings.Contains(out, "TOTAL placement-new vulns detected") {
		t.Errorf("corpus table missing totals:\n%s", out)
	}
	// The baseline detects zero placement-new vulnerabilities regardless
	// of corpus size.
	if !regexp.MustCompile(`0/\d+\s*$`).MatchString(strings.TrimSpace(out)) {
		t.Errorf("baseline total missing:\n%s", out)
	}
}

func TestModelFlag(t *testing.T) {
	p := writeTemp(t, "vuln.cpp", vulnSrc)
	out386 := runCapture(t, "-model", "i386", p)
	outLP64 := runCapture(t, "-model", "lp64", p)
	if !strings.Contains(out386, "28 bytes") {
		t.Errorf("i386 sizes wrong:\n%s", out386)
	}
	if !strings.Contains(outLP64, "32 bytes") {
		t.Errorf("lp64 sizes wrong:\n%s", outLP64)
	}
}

func TestJSONMode(t *testing.T) {
	p := writeTemp(t, "vuln.cpp", vulnSrc)
	out := runCapture(t, "-json", p)
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	f := findings[0]
	if f["code"] != "PN001" || f["severity"] != "error" || f["suggestion"] == "" {
		t.Errorf("finding = %v", f)
	}
	// Clean file yields an empty array, not null.
	clean := writeTemp(t, "clean.cpp", "int x = 1;")
	out = runCapture(t, "-json", clean)
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean json = %q", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no-args accepted")
	}
	if err := run([]string{"-model", "pdp11", "x.cpp"}, &sb); err == nil {
		t.Error("bad model accepted")
	}
	if err := run([]string{"/does/not/exist.cpp"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "bad.cpp")
	if err := os.WriteFile(p, []byte("class {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{p}, &sb); err == nil {
		t.Error("unparsable file accepted")
	}
}
