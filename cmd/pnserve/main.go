// Command pnserve serves the experiment/attack corpus over HTTP: a
// bounded worker pool with priority lanes executes requests, a
// content-addressed result cache (LRU + TTL + singleflight) makes
// repeated work nearly free, and load beyond the admission queue is
// shed with structured 429 responses instead of queueing unboundedly.
//
// Endpoints:
//
//	POST /run          JSON service.Request body
//	POST /runbatch     {"requests":[...]} — up to 64 service.Request
//	                   objects admitted in one call, executed
//	                   concurrently with one shared template-pool
//	                   lookup; per-item status codes in the response
//	GET  /run          the same request as query parameters, e.g.
//	                   /run?experiment=E8
//	                   /run?scenario=bss-overflow&defense=stackguard&model=LP64
//	                   /run?scenario=stack-ret&chaos_prob=0.01&seed=7
//	GET  /experiments  the servable catalogue (experiments, scenarios,
//	                   defenses, models) as JSON
//	GET  /healthz      liveness: always 200 while the process runs (the
//	                   status field reads "draining" during shutdown)
//	GET  /readyz       readiness: 503 while draining or while the
//	                   adaptive concurrency limiter is fully closed
//	GET  /metrics      Prometheus text exposition (pn_serve_* plus
//	                   anything else registered)
//	GET  /watch        live event stream (SSE; Accept:
//	                   application/x-ndjson for raw NDJSON): span
//	                   start/end, metric deltas, heat-tile deltas,
//	                   admission transitions. Filters ?trace=, ?tenant=,
//	                   ?kind=a,b; resumable via Last-Event-ID against
//	                   the ring buffer. See docs/observability.md.
//	GET  /trace/{id}   finished per-request span tree with the
//	                   stage-latency breakdown as JSON; the trace ID is
//	                   minted at admission (or taken from the
//	                   X-PN-Trace-Id request header) and echoed in every
//	                   /run response
//
// Multi-tenant admission control: the X-PN-Tenant request header
// selects the tenant (default "default"); per-tenant token-bucket
// quotas (-tenant-rate/-tenant-burst), weighted fair queueing with
// priority aging (-aging), an adaptive concurrency limiter
// (-p99-target), and per-(tenant, scenario-class) circuit breakers
// (-breaker-threshold/-breaker-cooldown) shed overload with structured
// 429/503 responses carrying a machine-readable reason and an honest
// Retry-After.
//
// Capacity knobs: -workers, -queue (per priority lane), -cache-size,
// -cache-ttl, -deadline (default per-request budget, queueing
// included), -max-deadline. On SIGTERM/SIGINT the server drains
// gracefully: admission stops (503 + failing readiness), in-flight and
// queued work completes, then the listener shuts down.
//
// Usage:
//
//	pnserve [-addr :8099] [-workers 8] [-queue 64]
//	        [-cache-size 512] [-cache-ttl 10m]
//	        [-deadline 15s] [-max-deadline 60s] [-drain-timeout 10s]
//	        [-tenant-rate 200] [-tenant-burst 400] [-aging 1s]
//	        [-p99-target 0] [-breaker-threshold 5] [-breaker-cooldown 2s]
//	        [-trace-cap 256] [-deterministic]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnserve:", err)
		os.Exit(1)
	}
}

type serverConfig struct {
	workers      int
	queue        int
	cacheSize    int
	cacheTTL     time.Duration
	deadline     time.Duration
	maxDeadline  time.Duration
	drainTimeout time.Duration
	// Admission-control knobs.
	tenantRate       float64
	tenantBurst      float64
	aging            time.Duration
	p99Target        time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	// Observability knobs.
	traceCap      int
	deterministic bool
}

// server is the HTTP face of one service.Service.
type server struct {
	svc      *service.Service
	reg      *obs.Registry
	draining atomic.Bool
	now      func() time.Time
	started  time.Time
}

func newServer(cfg serverConfig) *server {
	reg := obs.NewRegistry()
	now := time.Now
	if cfg.deterministic {
		// The virtual clock makes every duration a count of clock reads:
		// synthetic, but byte-identical across double runs of the same
		// sequential request sequence — the /watch determinism gate.
		now = service.NewVirtualClock().Now
	}
	bus := obs.NewBus(0)
	bus.OnSubscribers = func(n int) { reg.Set(obs.MetricWatchSubscribers, float64(n)) }
	bus.OnDrop = func(n uint64) { reg.Add(obs.MetricWatchDropped, float64(n)) }
	describeServerMetrics(reg)
	s := &server{
		svc: service.New(service.Config{
			Workers:         cfg.workers,
			QueueDepth:      cfg.queue,
			CacheCapacity:   cfg.cacheSize,
			CacheTTL:        cfg.cacheTTL,
			DefaultDeadline: cfg.deadline,
			MaxDeadline:     cfg.maxDeadline,
			Quota:           service.QuotaConfig{Rate: cfg.tenantRate, Burst: cfg.tenantBurst},
			Limiter:         service.LimiterConfig{TargetP99: cfg.p99Target},
			Breaker:         service.BreakerConfig{Threshold: cfg.breakerThreshold, Cooldown: cfg.breakerCooldown},
			AgingThreshold:  cfg.aging,
			Now:             now,
			Registry:        reg,
			Bus:             bus,
			TraceCapacity:   cfg.traceCap,
		}),
		reg: reg,
		now: now,
	}
	s.started = s.now()
	reg.Set(obs.MetricBuildInfo, 1,
		obs.L("version", service.CodeVersion),
		obs.L("go_version", runtime.Version()),
		obs.L("commit", buildCommit()))
	return s
}

// describeServerMetrics declares the process-level families the HTTP
// layer owns (the service describes the serving ones).
func describeServerMetrics(reg *obs.Registry) {
	reg.Describe(obs.MetricBuildInfo, "build identity: constant 1 with version labels", obs.TypeGauge)
	reg.Describe(obs.MetricServeUptime, "seconds since the server started", obs.TypeGauge)
	reg.Describe(obs.MetricWatchSubscribers, "attached /watch subscribers", obs.TypeGauge)
	reg.Describe(obs.MetricWatchDropped, "events dropped on slow /watch subscribers", obs.TypeCounter)
}

// buildCommit extracts the VCS revision stamped into the binary, or
// "unknown" (test binaries, go run).
func buildCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/runbatch", s.handleRunBatch)
	mux.HandleFunc("/experiments", s.handleCatalog)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/watch", s.handleWatch)
	mux.HandleFunc("/trace/", s.handleTrace)
	return mux
}

// runResponse is the /run success envelope.
type runResponse struct {
	*service.Result
	// Cache is hit, miss, coalesced, or bypass.
	Cache string `json:"cache"`
	// ServeNS is this request's end-to-end time in the server,
	// queueing and cache lookup included.
	ServeNS int64 `json:"serve_ns"`
	// TraceID identifies this request's trace (also echoed in the
	// X-PN-Trace-Id response header); the finished span tree is at
	// /trace/{id}.
	TraceID string `json:"trace_id"`
	// Stages is the per-stage latency breakdown in milliseconds
	// (queue_wait, cache_lookup, clone, execute, shadow_check — stages
	// that did not occur are absent).
	Stages map[string]float64 `json:"stages,omitempty"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
	// Reject carries the structured load-shedding state for 429/503.
	Reject *service.Rejection `json:"reject,omitempty"`
	// Crashes carries supervised crash records for 500s.
	Crashes any `json:"crashes,omitempty"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: "server draining", Code: http.StatusServiceUnavailable,
			Reject: &service.Rejection{
				Code: 503, Reason: service.ReasonDraining,
				Tenant: service.NormalizeTenant(r.Header.Get(tenantHeader)),
			},
		})
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Code: http.StatusBadRequest})
		return
	}
	start := s.now()
	res, cacheTok, rt, err := s.svc.HandleTraced(r.Context(), req)
	if rt != nil {
		w.Header().Set(traceHeader, rt.TraceID)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		Result:  res,
		Cache:   cacheTok,
		ServeNS: s.now().Sub(start).Nanoseconds(),
		TraceID: rt.TraceID,
		Stages:  rt.StageMS,
	})
}

// batchRequest is the POST /runbatch body.
type batchRequest struct {
	Requests []service.Request `json:"requests"`
}

// batchItem is one request's outcome in a /runbatch response, in
// request order. Successful items carry the result and Code 200; failed
// items carry the structured error fields and their per-item status
// code — one bad request never fails its siblings.
type batchItem struct {
	*service.Result
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	Code  int    `json:"code"`
	// Reject carries the structured load-shedding state for shed items.
	Reject *service.Rejection `json:"reject,omitempty"`
}

// batchResponse is the POST /runbatch success envelope.
type batchResponse struct {
	Results []batchItem `json:"results"`
	OK      int         `json:"ok"`
	Failed  int         `json:"failed"`
	// ServeNS is the whole batch's end-to-end time in the server.
	ServeNS int64 `json:"serve_ns"`
}

// handleRunBatch admits up to service.MaxBatchSize requests in one
// call. Items execute concurrently through the normal per-request path
// (lanes, deadlines, cache, shedding per item) while sharing one
// template-pool lookup; see docs/serving.md for the schema.
func (s *server) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: "server draining", Code: http.StatusServiceUnavailable,
			Reject: &service.Rejection{
				Code: 503, Reason: service.ReasonDraining,
				Tenant: service.NormalizeTenant(r.Header.Get(tenantHeader)),
			},
		})
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("method %s not allowed on /runbatch (POST a JSON body)", r.Method),
			Code:  http.StatusBadRequest,
		})
		return
	}
	var breq batchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error(), Code: http.StatusBadRequest})
		return
	}
	if len(breq.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch", Code: http.StatusBadRequest})
		return
	}
	if len(breq.Requests) > service.MaxBatchSize {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d exceeds limit %d", len(breq.Requests), service.MaxBatchSize),
			Code:  http.StatusBadRequest,
		})
		return
	}

	// The batch's tenant comes from the header, like single requests:
	// bodies cannot impersonate other tenants.
	for i := range breq.Requests {
		breq.Requests[i].Tenant = r.Header.Get(tenantHeader)
	}

	start := time.Now()
	outcomes := s.svc.HandleBatch(r.Context(), breq.Requests)
	resp := batchResponse{Results: make([]batchItem, len(outcomes))}
	for i, o := range outcomes {
		if o.Err == nil {
			resp.Results[i] = batchItem{Result: o.Result, Cache: o.Cache, Code: http.StatusOK}
			resp.OK++
			continue
		}
		code, rej := errorStatus(o.Err)
		resp.Results[i] = batchItem{Error: o.Err.Error(), Code: code, Reject: rej}
		resp.Failed++
	}
	resp.ServeNS = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, resp)
}

// errorStatus maps a service error to its per-item status code (the
// same mapping writeError applies to whole responses).
func errorStatus(err error) (int, *service.Rejection) {
	var bad *service.BadRequest
	var rej *service.Rejection
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest, nil
	case errors.As(err, &rej):
		return rej.Code, rej
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, nil
	case errors.Is(err, context.Canceled):
		return 499, nil
	default:
		return http.StatusInternalServerError, nil
	}
}

// writeError maps service errors onto structured HTTP responses.
func (s *server) writeError(w http.ResponseWriter, err error) {
	var bad *service.BadRequest
	var rej *service.Rejection
	var exe *service.ExecError
	switch {
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Code: http.StatusBadRequest})
	case errors.As(err, &rej):
		// Standard Retry-After is whole seconds (rounded up); the
		// millisecond-precision hint rides alongside for clients (pnload)
		// that can use it.
		w.Header().Set("Retry-After", strconv.FormatInt((rej.RetryAfterMS+999)/1000, 10))
		w.Header().Set("X-PN-Retry-After-MS", strconv.FormatInt(rej.RetryAfterMS, 10))
		writeJSON(w, rej.Code, errorResponse{Error: err.Error(), Code: rej.Code, Reject: rej})
	case errors.As(err, &exe):
		writeJSON(w, http.StatusInternalServerError, errorResponse{
			Error: err.Error(), Code: http.StatusInternalServerError, Crashes: exe.Crashes,
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error(), Code: http.StatusGatewayTimeout})
	case errors.Is(err, context.Canceled):
		// 499: client closed request (nginx convention).
		writeJSON(w, 499, errorResponse{Error: err.Error(), Code: 499})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error(), Code: http.StatusInternalServerError})
	}
}

// tenantHeader selects the admission-control tenant. The body cannot
// set it (Request.Tenant is excluded from JSON), so quota identity is
// a transport-level property, like authentication would be.
const tenantHeader = "X-PN-Tenant"

// parseRequest accepts POST JSON or GET query parameters.
func parseRequest(r *http.Request) (service.Request, error) {
	req, err := parseRequestBody(r)
	if err != nil {
		return req, err
	}
	req.Tenant = r.Header.Get(tenantHeader)
	req.TraceID = r.Header.Get(traceHeader)
	return req, nil
}

func parseRequestBody(r *http.Request) (service.Request, error) {
	var req service.Request
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("invalid JSON body: %w", err)
		}
		return req, nil
	case http.MethodGet:
		q := r.URL.Query()
		req.Experiment = q.Get("experiment")
		req.Scenario = q.Get("scenario")
		req.Defense = q.Get("defense")
		req.Model = q.Get("model")
		req.Faults = q.Get("faults")
		req.Priority = q.Get("priority")
		var err error
		if v := q.Get("seed"); v != "" {
			if req.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				return req, fmt.Errorf("invalid seed: %w", err)
			}
		}
		if v := q.Get("chaos_prob"); v != "" {
			if req.ChaosProb, err = strconv.ParseFloat(v, 64); err != nil {
				return req, fmt.Errorf("invalid chaos_prob: %w", err)
			}
		}
		if v := q.Get("deadline_ms"); v != "" {
			if req.DeadlineMS, err = strconv.ParseInt(v, 10, 64); err != nil {
				return req, fmt.Errorf("invalid deadline_ms: %w", err)
			}
		}
		if v := q.Get("no_cache"); v != "" {
			if req.NoCache, err = strconv.ParseBool(v); err != nil {
				return req, fmt.Errorf("invalid no_cache: %w", err)
			}
		}
		return req, nil
	default:
		return req, fmt.Errorf("method %s not allowed on /run", r.Method)
	}
}

// catalog is the /experiments payload: everything servable.
type catalog struct {
	Experiments []catalogExperiment `json:"experiments"`
	Scenarios   []catalogScenario   `json:"scenarios"`
	Defenses    []string            `json:"defenses"`
	Models      []string            `json:"models"`
}

type catalogExperiment struct {
	ID    string `json:"id"`
	Ref   string `json:"ref"`
	Title string `json:"title"`
}

type catalogScenario struct {
	ID  string `json:"id"`
	Ref string `json:"ref"`
}

func (s *server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	var c catalog
	for _, e := range experiments.All() {
		c.Experiments = append(c.Experiments, catalogExperiment{ID: e.ID, Ref: e.Ref, Title: e.Title})
	}
	for _, sc := range attack.Catalog() {
		c.Scenarios = append(c.Scenarios, catalogScenario{ID: sc.ID, Ref: sc.Ref})
	}
	for _, d := range defense.Catalog() {
		c.Defenses = append(c.Defenses, d.Name)
	}
	c.Models = []string{layout.ILP32.Name, layout.ILP32i386.Name, layout.LP64.Name}
	writeJSON(w, http.StatusOK, c)
}

// handleHealth is liveness: 200 for the whole process lifetime, even
// while draining — a draining process is shutting down cleanly, not
// dead, and must not be killed by its supervisor.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// handleReady is readiness: 503 while draining or while the adaptive
// concurrency limiter has fully closed (limit at its floor with every
// slot taken) — both mean "route new traffic elsewhere".
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case s.svc.Scheduler().Limiter().Saturated():
		status, code = "saturated", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Set(obs.MetricServeUptime, s.now().Sub(s.started).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.reg.Exposition())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8099", "listen address")
	workers := fs.Int("workers", 8, "worker pool size")
	queue := fs.Int("queue", 64, "admission queue depth per priority lane")
	cacheSize := fs.Int("cache-size", 512, "result cache capacity (entries)")
	cacheTTL := fs.Duration("cache-ttl", 10*time.Minute, "result cache TTL (0 = never expire)")
	deadline := fs.Duration("deadline", 15*time.Second, "default per-request deadline (queueing included)")
	maxDeadline := fs.Duration("max-deadline", time.Minute, "cap on client-supplied deadlines")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget after SIGTERM")
	tenantRate := fs.Float64("tenant-rate", 200, "per-tenant sustained admission rate in req/s (0 disables quotas)")
	tenantBurst := fs.Float64("tenant-burst", 400, "per-tenant burst allowance (0 = 2x rate)")
	aging := fs.Duration("aging", time.Second, "queue wait at which any request outranks strict priority (negative disables)")
	p99Target := fs.Duration("p99-target", 0, "adaptive concurrency limiter latency objective (0 disables)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive execution deaths that open a (tenant, class) breaker (0 disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open-breaker fast-fail window before a half-open probe")
	traceCap := fs.Int("trace-cap", service.DefaultTraceCapacity, "finished traces retained for GET /trace/{id}")
	deterministic := fs.Bool("deterministic", false,
		"run on a virtual clock: durations become logical ticks and the /watch stream of a sequential request sequence is byte-identical across runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := newServer(serverConfig{
		workers: *workers, queue: *queue,
		cacheSize: *cacheSize, cacheTTL: *cacheTTL,
		deadline: *deadline, maxDeadline: *maxDeadline,
		drainTimeout: *drainTimeout,
		tenantRate:   *tenantRate, tenantBurst: *tenantBurst,
		aging: *aging, p99Target: *p99Target,
		breakerThreshold: *breakerThreshold, breakerCooldown: *breakerCooldown,
		traceCap: *traceCap, deterministic: *deterministic,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(out, "pnserve: listening on %s (%d workers, queue %d/lane, cache %d entries, ttl %s, tenant quota %g/%g)\n",
			*addr, *workers, *queue, *cacheSize, *cacheTTL, *tenantRate, *tenantBurst)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "pnserve: %s received, draining\n", sig)
		srv.draining.Store(true)
		srv.svc.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Fprintln(out, "pnserve: drained cleanly")
		return nil
	}
}
