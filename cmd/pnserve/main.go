// Command pnserve serves the experiment/attack corpus over HTTP. It
// runs in one of three modes:
//
//	pnserve              standalone server: the full endpoint set with
//	                     local admission control (the single-node
//	                     deployment and every pre-cluster behaviour)
//	pnserve -worker      a fleet worker: identical, plus it trusts the
//	                     router hop headers (X-PN-Admitted skips local
//	                     quota/limiter, X-PN-Fill-From arms cross-node
//	                     cache fill) and, with -join, push-heartbeats
//	                     the router so it is admitted to the ring
//	pnserve -router      the cluster front end: no local execution —
//	                     admission (tenant quotas + adaptive limiter)
//	                     runs here and requests forward to the
//	                     consistent-hash ring owner of their
//	                     content-addressed cache key; -workers lists
//	                     the initial backends
//
// Endpoints (standalone and worker; the router serves the same set,
// forwarding /run and /runbatch and fanning in /watch):
//
//	POST /run          JSON service.Request body
//	POST /runbatch     {"requests":[...]} — up to 64 service.Request
//	                   objects admitted in one call, executed
//	                   concurrently with one shared template-pool
//	                   lookup; per-item status codes in the response
//	GET  /run          the same request as query parameters, e.g.
//	                   /run?experiment=E8
//	                   /run?scenario=bss-overflow&defense=stackguard&model=LP64
//	                   /run?scenario=stack-ret&chaos_prob=0.01&seed=7
//	GET  /experiments  the servable catalogue (experiments, scenarios,
//	                   defenses, models) as JSON
//	GET  /healthz      liveness: always 200 while the process runs (the
//	                   status field reads "draining" during shutdown)
//	GET  /readyz       readiness: 503 while draining or while the
//	                   adaptive concurrency limiter is fully closed;
//	                   the JSON body carries {"draining":bool,
//	                   "saturated":bool} so routers and load drivers
//	                   can tell the two apart
//	GET  /metrics      Prometheus text exposition (pn_serve_* — plus
//	                   pn_cluster_* on a router)
//	GET  /watch        live event stream (SSE; Accept:
//	                   application/x-ndjson for raw NDJSON); filters
//	                   ?trace=, ?tenant=, ?kind=a,b; resumable via
//	                   Last-Event-ID. On a router, the fan-in of every
//	                   worker's stream. See docs/observability.md.
//	GET  /trace/{id}   finished per-request span tree; on a router the
//	                   worker's stages are grafted under the router's
//	                   forward span. See docs/cluster.md.
//	GET  /cache/{key}  peek at the local result cache by content
//	                   address (the cross-node cache-fill donor path)
//
// Router-only endpoints:
//
//	GET  /cluster/members  membership table and current ring
//	POST /cluster/join     worker push heartbeat {"id":"http://..."}
//
// Multi-tenant admission control: the X-PN-Tenant request header
// selects the tenant (default "default"); per-tenant token-bucket
// quotas (-tenant-rate/-tenant-burst), weighted fair queueing with
// priority aging (-aging), an adaptive concurrency limiter
// (-p99-target), and per-(tenant, scenario-class) circuit breakers
// (-breaker-threshold/-breaker-cooldown) shed overload with structured
// 429/503 responses. In a cluster, quotas and the limiter enforce at
// the router only; workers behind it skip both (never double-counted)
// while keeping their worker-local breakers.
//
// On SIGTERM/SIGINT every mode drains gracefully: admission stops
// (503 + failing readiness), in-flight and queued work completes, then
// the listener shuts down. A router notices a draining worker on its
// next probe or forward, ejects it from the ring, and re-routes its
// shard — cloning the drained worker's warm cache entries via
// /cache/{key} instead of recomputing them.
//
// Usage:
//
//	pnserve [-addr :8099] [-workers 8] [-queue 64]
//	        [-cache-size 512] [-cache-ttl 10m]
//	        [-deadline 15s] [-max-deadline 60s] [-drain-timeout 10s]
//	        [-tenant-rate 200] [-tenant-burst 400] [-aging 1s]
//	        [-p99-target 0] [-breaker-threshold 5] [-breaker-cooldown 2s]
//	        [-trace-cap 256] [-deterministic] [-compiled]
//	pnserve -worker [-advertise http://host:port] [-join http://router]
//	        [...the same serving flags]
//	pnserve -router -workers=http://w1:8099,http://w2:8099
//	        [-ring-seed 1] [-vnodes 64] [-heartbeat 500ms]
//	        [-fail-threshold 2] [-forward-timeout 30s]
//	        [-forward-retries 2] [-tenant-rate 200] [-tenant-burst 400]
//	        [-p99-target 0]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pnserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pnserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8099", "listen address")
	// -workers is mode-overloaded: a pool size when serving, a
	// comma-separated backend URL list under -router.
	workers := fs.String("workers", "8", "worker pool size; under -router, comma-separated worker base URLs")
	queue := fs.Int("queue", 64, "admission queue depth per priority lane")
	cacheSize := fs.Int("cache-size", 512, "result cache capacity (entries)")
	cacheTTL := fs.Duration("cache-ttl", 10*time.Minute, "result cache TTL (0 = never expire)")
	deadline := fs.Duration("deadline", 15*time.Second, "default per-request deadline (queueing included)")
	maxDeadline := fs.Duration("max-deadline", time.Minute, "cap on client-supplied deadlines")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget after SIGTERM")
	tenantRate := fs.Float64("tenant-rate", 200, "per-tenant sustained admission rate in req/s (0 disables quotas)")
	tenantBurst := fs.Float64("tenant-burst", 400, "per-tenant burst allowance (0 = 2x rate)")
	aging := fs.Duration("aging", time.Second, "queue wait at which any request outranks strict priority (negative disables)")
	p99Target := fs.Duration("p99-target", 0, "adaptive concurrency limiter latency objective (0 disables)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive execution deaths that open a (tenant, class) breaker (0 disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open-breaker fast-fail window before a half-open probe")
	traceCap := fs.Int("trace-cap", service.DefaultTraceCapacity, "finished traces retained for GET /trace/{id}")
	deterministic := fs.Bool("deterministic", false,
		"run on a virtual clock: durations become logical ticks and the /watch stream of a sequential request sequence is byte-identical across runs")
	compiled := fs.Bool("compiled", false,
		"arm the compiled-program tier: chaos-free, untraced scenario executions replay cached straight-line programs instead of interpreting")
	// Cluster modes.
	router := fs.Bool("router", false, "run as the cluster front end, forwarding to -workers")
	worker := fs.Bool("worker", false, "run as a fleet worker: trust router hop headers, optionally -join the router")
	advertise := fs.String("advertise", "", "worker: the base URL to join the ring as (default http://127.0.0.1{addr})")
	join := fs.String("join", "", "worker: router base URL to push heartbeats to")
	ringSeed := fs.Uint64("ring-seed", 1, "router: consistent-hash placement seed (same seed => same placement)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "router: virtual nodes per worker on the ring")
	heartbeat := fs.Duration("heartbeat", 500*time.Millisecond, "router: membership probe interval; worker: push-heartbeat interval")
	failThreshold := fs.Int("fail-threshold", 2, "router: consecutive missed probes that eject a worker")
	forwardTimeout := fs.Duration("forward-timeout", 30*time.Second, "router: per-forward timeout")
	forwardRetries := fs.Int("forward-retries", 2, "router: extra forward attempts after a failed or draining worker")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *router && *worker {
		return fmt.Errorf("-router and -worker are mutually exclusive")
	}

	if *router {
		return runRouter(routerArgs{
			addr: *addr, workers: *workers, drainTimeout: *drainTimeout,
			seed: *ringSeed, vnodes: *vnodes, heartbeat: *heartbeat,
			failThreshold: *failThreshold, forwardTimeout: *forwardTimeout,
			forwardRetries: *forwardRetries,
			tenantRate:     *tenantRate, tenantBurst: *tenantBurst, p99Target: *p99Target,
		}, out)
	}

	poolSize, err := strconv.Atoi(*workers)
	if err != nil || poolSize <= 0 {
		return fmt.Errorf("invalid -workers %q: want a positive pool size (URL lists are for -router)", *workers)
	}
	srv := serve.NewServer(serve.Config{
		Workers: poolSize, Queue: *queue,
		CacheSize: *cacheSize, CacheTTL: *cacheTTL,
		Deadline: *deadline, MaxDeadline: *maxDeadline,
		TenantRate: *tenantRate, TenantBurst: *tenantBurst,
		Aging: *aging, P99Target: *p99Target,
		BreakerThreshold: *breakerThreshold, BreakerCooldown: *breakerCooldown,
		TraceCap: *traceCap, Deterministic: *deterministic,
		TrustAdmitted: *worker, Compiled: *compiled,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	stopJoin := func() {}
	if *worker && *join != "" {
		self := *advertise
		if self == "" {
			self = "http://127.0.0.1" + *addr
		}
		stopJoin = startJoinLoop(*join, self, *heartbeat, out)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() {
		role := "standalone"
		if *worker {
			role = "worker"
		}
		fmt.Fprintf(out, "pnserve: %s listening on %s (%d workers, queue %d/lane, cache %d entries, ttl %s, tenant quota %g/%g)\n",
			role, *addr, poolSize, *queue, *cacheSize, *cacheTTL, *tenantRate, *tenantBurst)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		stopJoin()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "pnserve: %s received, draining\n", sig)
		stopJoin()
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Fprintln(out, "pnserve: drained cleanly")
		return nil
	}
}

type routerArgs struct {
	addr           string
	workers        string
	drainTimeout   time.Duration
	seed           uint64
	vnodes         int
	heartbeat      time.Duration
	failThreshold  int
	forwardTimeout time.Duration
	forwardRetries int
	tenantRate     float64
	tenantBurst    float64
	p99Target      time.Duration
}

func runRouter(a routerArgs, out io.Writer) error {
	var backends []string
	for _, w := range strings.Split(a.workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			if !strings.Contains(w, "://") {
				return fmt.Errorf("-router -workers wants base URLs, got %q", w)
			}
			backends = append(backends, strings.TrimRight(w, "/"))
		}
	}
	rt := cluster.NewRouter(cluster.RouterConfig{
		Workers: backends, Seed: a.seed, VNodes: a.vnodes,
		HeartbeatInterval: a.heartbeat, FailThreshold: a.failThreshold,
		ForwardTimeout: a.forwardTimeout, ForwardRetries: a.forwardRetries,
		TenantRate: a.tenantRate, TenantBurst: a.tenantBurst, P99Target: a.p99Target,
	})
	rt.StartHeartbeat()
	defer rt.Close()
	httpSrv := &http.Server{Addr: a.addr, Handler: rt.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(out, "pnserve: router listening on %s (%d workers, seed %d, %d vnodes)\n",
			a.addr, len(backends), a.seed, a.vnodes)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "pnserve: router %s received, draining\n", sig)
		rt.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), a.drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Fprintln(out, "pnserve: router drained cleanly")
		return nil
	}
}

// startJoinLoop push-heartbeats POST /cluster/join so the router
// admits this worker (and re-admits it quickly after a partition).
// Returns a stop function.
func startJoinLoop(routerURL, self string, interval time.Duration, out io.Writer) func() {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	body := []byte(fmt.Sprintf("{\"id\":%q}", self))
	client := &http.Client{Timeout: 2 * time.Second}
	stop := make(chan struct{})
	joined := false
	post := func() {
		resp, err := client.Post(strings.TrimRight(routerURL, "/")+"/cluster/join",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if !joined && resp.StatusCode == http.StatusOK {
			joined = true
			fmt.Fprintf(out, "pnserve: joined %s as %s\n", routerURL, self)
		}
	}
	go func() {
		post()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				post()
			}
		}
	}()
	return func() { close(stop) }
}
