package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/report"
)

// metricWatchEvents counts replayed stream events by kind in the
// follower's own registry.
const metricWatchEvents = "pn_watch_events_total"

// follower replays a pnwatch/v1 NDJSON stream into the same Collector
// sinks a local run feeds, so the six pntrace artifacts can be rebuilt
// from a live server instead of an in-process experiment. Spans nest
// per trace; with several traces interleaved on one stream the span
// tree is best-effort (the tracer parents under the innermost open
// span), which is why -follow is usually pointed at a ?trace= filter.
type follower struct {
	col   *obs.Collector
	table *report.Table
	// open maps trace ID -> its open request span.
	open      map[string]*obs.Span
	traceEnds int
}

func newFollower() *follower {
	col := obs.NewCollector()
	col.Metrics.Describe(metricWatchEvents, "stream events replayed, by kind", obs.TypeCounter)
	col.Metrics.Describe(obs.MetricServeRequests, "serving requests finished (replayed deltas)", obs.TypeCounter)
	col.Metrics.Describe(obs.MetricServeCache, "result-cache events (replayed deltas)", obs.TypeCounter)
	return &follower{
		col:   col,
		table: report.NewTable("Followed traces", "trace", "tenant", "status", "cache", "dur_ms"),
		open:  make(map[string]*obs.Span),
	}
}

// dataAttrs converts an event's data map to sorted span attributes,
// skipping keys already consumed by the caller.
func dataAttrs(ev obs.BusEvent, skip ...string) []obs.Attr {
	skipped := map[string]bool{}
	for _, k := range skip {
		skipped[k] = true
	}
	keys := make([]string, 0, len(ev.Data))
	for k := range ev.Data {
		if !skipped[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	attrs := make([]obs.Attr, 0, len(keys)+2)
	if ev.Trace != "" {
		attrs = append(attrs, obs.A("trace", ev.Trace))
	}
	if ev.Tenant != "" {
		attrs = append(attrs, obs.A("tenant", ev.Tenant))
	}
	for _, k := range keys {
		attrs = append(attrs, obs.A(k, ev.Data[k]))
	}
	return attrs
}

// replay folds one stream event into the collector. Returns true when
// the event was a trace-end marker.
func (f *follower) replay(ev obs.BusEvent) bool {
	f.col.Metrics.Inc(metricWatchEvents, obs.L("kind", ev.Kind))
	switch ev.Kind {
	case obs.KindSpanStart:
		f.open[ev.Trace] = f.col.Tracer.Start(obs.CatServe, ev.Data["span"], dataAttrs(ev, "span")...)
	case obs.KindSpanEnd:
		// Stages arrive as completed intervals; render each as an
		// instant child span carrying its measured offsets.
		f.col.Tracer.Start(obs.CatServe, ev.Data["span"], dataAttrs(ev, "span")...).Close()
	case obs.KindEvent:
		f.col.Tracer.Event(obs.CatMachine, ev.Data["event"], dataAttrs(ev, "event")...)
	case obs.KindAdmission:
		f.col.Tracer.Event(obs.CatServe, "admission:"+ev.Data["action"], dataAttrs(ev, "action")...)
	case obs.KindMetric:
		delta, err := strconv.ParseFloat(ev.Data["delta"], 64)
		if err != nil || ev.Data["name"] == "" {
			return false
		}
		// Labels come from the event data only: the trace/tenant
		// envelope is stream scoping, not metric identity.
		keys := make([]string, 0, len(ev.Data))
		for k := range ev.Data {
			if k != "name" && k != "delta" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		labels := make([]obs.Label, 0, len(keys))
		for _, k := range keys {
			labels = append(labels, obs.L(k, ev.Data[k]))
		}
		f.col.Metrics.Add(ev.Data["name"], delta, labels...)
	case obs.KindHeat:
		f.replayHeat(ev)
	case obs.KindHeatSegments:
		f.col.Heat.SetSegmentData(parseSegments(ev.Data["segments"]))
	case obs.KindGap:
		f.col.Tracer.Event(obs.CatServe, "stream-gap", dataAttrs(ev)...)
	case obs.KindTraceEnd:
		if span := f.open[ev.Trace]; span != nil {
			for _, a := range dataAttrs(ev) {
				span.SetAttr(a.Key, a.Value)
			}
			span.Close()
			delete(f.open, ev.Trace)
		}
		f.table.AddRow(ev.Trace, ev.Tenant, ev.Data["status"], ev.Data["cache"], ev.Data["dur_ms"])
		f.traceEnds++
		return true
	}
	return false
}

// replayHeat folds one coalesced heat-tile delta — a base address plus
// obs.HeatRowBytes comma-separated per-byte counts — into the heatmap.
func (f *follower) replayHeat(ev obs.BusEvent) {
	base, err := strconv.ParseUint(ev.Data["base"], 0, 64)
	if err != nil {
		return
	}
	for i, field := range strings.Split(ev.Data["counts"], ",") {
		c, err := strconv.ParseUint(field, 10, 64)
		if err != nil || c == 0 {
			continue
		}
		f.col.Heat.AddCount(mem.Addr(base+uint64(i)), c)
	}
}

// parseSegments decodes the "kind:0xbase:0xend;..." geometry string a
// heat-segments event carries.
func parseSegments(s string) []obs.HeatSegment {
	var segs []obs.HeatSegment
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			continue
		}
		base, err1 := strconv.ParseUint(fields[1], 0, 64)
		end, err2 := strconv.ParseUint(fields[2], 0, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		segs = append(segs, obs.HeatSegment{Kind: fields[0], Base: mem.Addr(base), End: mem.Addr(end)})
	}
	return segs
}

// followStream attaches to a pnserve /watch endpoint (NDJSON), replays
// events until count trace-end markers have arrived (or the stream
// closes), and emits the standard artifact set. Filters are passed
// through in the URL itself: -follow 'http://host/watch?trace=t-1'.
func followStream(out io.Writer, url, dir string, count int) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}

	f := newFollower()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawHello := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.BusEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("bad stream line %q: %w", line, err)
		}
		if !sawHello {
			if ev.Kind != obs.KindHello {
				return fmt.Errorf("stream did not open with a hello event (got %q)", ev.Kind)
			}
			if schema := ev.Data["schema"]; schema != obs.WatchSchema {
				return fmt.Errorf("stream schema %q, this build speaks %q", schema, obs.WatchSchema)
			}
			sawHello = true
			continue
		}
		if f.replay(ev) && f.traceEnds >= count {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawHello {
		return fmt.Errorf("stream closed before the hello event")
	}
	if f.traceEnds < count {
		fmt.Fprintf(out, "stream closed after %d of %d traces; rendering what arrived\n",
			f.traceEnds, count)
	}
	f.col.Finalize()
	return emit(out, dir, f.col, f.table)
}
