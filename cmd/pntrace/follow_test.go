package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// stubWatch serves a canned pnwatch/v1 NDJSON stream.
func stubWatch(t *testing.T, events []obs.BusEvent) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
			t.Errorf("follower did not request NDJSON (Accept=%q)", r.Header.Get("Accept"))
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func watchFixture() []obs.BusEvent {
	d := func(kvs ...string) map[string]string {
		m := make(map[string]string)
		for i := 0; i < len(kvs); i += 2 {
			m[kvs[i]] = kvs[i+1]
		}
		return m
	}
	return []obs.BusEvent{
		{Kind: obs.KindHello, Data: d("schema", obs.WatchSchema, "after", "0")},
		{Seq: 1, Tick: 1, Kind: obs.KindSpanStart, Trace: "t-1", Tenant: "default",
			Data: d("span", "request", "kind", "scenario", "id", "stack-ret")},
		{Seq: 2, Tick: 2, Kind: obs.KindAdmission, Trace: "t-1", Tenant: "default",
			Data: d("action", "admitted", "lane", "normal")},
		{Seq: 3, Tick: 3, Kind: obs.KindHeatSegments, Trace: "t-1", Tenant: "default",
			Data: d("segments", "stack:0x7f0000:0x7f4000;heap:0x600000:0x640000")},
		{Seq: 4, Tick: 4, Kind: obs.KindHeat, Trace: "t-1", Tenant: "default",
			Data: d("base", "0x7f0040", "counts", strings.TrimSuffix(strings.Repeat("3,", obs.HeatRowBytes-1), ",")+",9")},
		{Seq: 5, Tick: 5, Kind: obs.KindEvent, Trace: "t-1", Tenant: "default",
			Data: d("event", "control-hijack", "detail", "ret to 0x7f0040", "addr", "0x7f0040")},
		{Seq: 6, Tick: 6, Kind: obs.KindSpanEnd, Trace: "t-1", Tenant: "default",
			Data: d("span", "execute", "start_ms", "2", "dur_ms", "5")},
		{Seq: 7, Tick: 7, Kind: obs.KindMetric, Trace: "t-1", Tenant: "default",
			Data: d("name", obs.MetricServeRequests, "delta", "1", "lane", "normal", "outcome", "ok")},
		{Seq: 8, Tick: 8, Kind: obs.KindTraceEnd, Trace: "t-1", Tenant: "default",
			Data: d("status", "HIJACKED", "cache", "miss", "dur_ms", "9")},
	}
}

func TestFollowStreamArtifacts(t *testing.T) {
	ts := stubWatch(t, watchFixture())
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-follow", ts.URL, "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"trace.json", "metrics.prom", "heatmap.txt", "heatmap.json", "events.ndjson", "table.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact %s missing: %v", name, err)
		}
		if name != "table.txt" && len(data) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}

	heat, _ := os.ReadFile(filepath.Join(dir, "heatmap.txt"))
	if !strings.Contains(string(heat), "stack") {
		t.Errorf("heatmap lost the streamed segment annotation:\n%s", heat)
	}
	metrics, _ := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if !strings.Contains(string(metrics), `pn_serve_requests_total{lane="normal",outcome="ok"} 1`) {
		t.Errorf("replayed metric delta missing from exposition:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "pn_watch_events_total") {
		t.Errorf("follower event counters missing from exposition")
	}
	table, _ := os.ReadFile(filepath.Join(dir, "table.txt"))
	if !strings.Contains(string(table), "HIJACKED") {
		t.Errorf("trace table missing terminal status:\n%s", table)
	}
	trace, _ := os.ReadFile(filepath.Join(dir, "trace.json"))
	if !strings.Contains(string(trace), `"request"`) || !strings.Contains(string(trace), `"execute"`) {
		t.Errorf("chrome trace missing replayed spans:\n%s", trace)
	}
}

// TestFollowStreamDeterministic: the same stream renders to
// byte-identical artifacts.
func TestFollowStreamDeterministic(t *testing.T) {
	render := func() []byte {
		ts := stubWatch(t, watchFixture())
		var out bytes.Buffer
		if err := run([]string{"-follow", ts.URL}, &out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same stream rendered differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestFollowStreamRejectsWrongSchema(t *testing.T) {
	ts := stubWatch(t, []obs.BusEvent{
		{Kind: obs.KindHello, Data: map[string]string{"schema": "pnwatch/v999"}},
	})
	var out bytes.Buffer
	err := run([]string{"-follow", ts.URL}, &out)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema stream accepted (err=%v)", err)
	}
}
