// Command pntrace runs one experiment from the catalogue under full
// observability instrumentation — span tracing on a deterministic
// logical clock, a metrics registry, and address-space write-density
// heatmaps — and emits the artifacts:
//
//	trace.json     Chrome trace_event JSON (chrome://tracing, Perfetto)
//	metrics.prom   Prometheus text exposition
//	heatmap.txt    ASCII write-density heatmap with object annotations
//	heatmap.json   the same heatmap as plain data
//	events.ndjson  newline-delimited structured span/event/metric stream
//	table.txt      the experiment's own report table
//
// Usage:
//
//	pntrace -experiment E8 [-seed N] [-dir out/]
//	pntrace -experiment E1 -chaos-prob 0.01 -seed 7   # trace under fault injection
//	pntrace -follow http://127.0.0.1:8080/watch -count 3 -dir out/
//	pntrace -list
//
// -follow attaches to a running pnserve's /watch stream (NDJSON) and
// reconstructs the same artifact set from the live events: span
// start/end pairs become trace spans, heat-tile deltas rebuild the
// write-density heatmap, metric deltas rebuild counters. Stream
// filters pass through in the URL (?trace=, ?tenant=, ?kind=).
//
// Without -dir the artifacts print to stdout in delimited sections.
// Output is deterministic: two invocations with the same flags (same
// experiment, seed, chaos parameters) produce byte-identical artifacts
// — the same contract pnchaos makes, and CI gates it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pntrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pntrace", flag.ContinueOnError)
	expID := fs.String("experiment", "", "experiment id (E1..E19; see -list)")
	seed := fs.Int64("seed", 42, "seed for the optional chaos overlay; recorded in the trace")
	chaosProb := fs.Float64("chaos-prob", 0, "per-access fault probability for the chaos overlay (0 = no injection)")
	faults := fs.String("faults", "all", "fault kinds for the chaos overlay (comma list or all)")
	dir := fs.String("dir", "", "directory to write artifacts into (created if missing); default prints to stdout")
	list := fs.Bool("list", false, "list experiments")
	follow := fs.String("follow", "", "URL of a pnserve /watch endpoint: replay the live stream into artifacts instead of running locally")
	followCount := fs.Int("count", 1, "with -follow, number of finished traces to capture before rendering")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprint(out, experiments.ListTable().String())
		return nil
	}
	if *follow != "" {
		return followStream(out, *follow, *dir, *followCount)
	}
	if *expID == "" {
		return fmt.Errorf("missing -experiment (try -list)")
	}
	e, err := experiments.ByID(*expID)
	if err != nil {
		return err
	}
	kinds, err := chaos.ParseKinds(*faults)
	if err != nil {
		return err
	}

	// Build the collector and, when requested, a chaos overlay whose
	// schedule continues across every process the experiment builds.
	col := obs.NewCollector()
	var inj *chaos.Injector
	if *chaosProb > 0 {
		inj = chaos.New(chaos.Config{
			Seed:     *seed,
			Prob:     *chaosProb,
			Kinds:    kinds,
			OnInject: col.ChaosHook(),
		})
	}
	prevSeam := machine.OnNewProcess
	machine.OnNewProcess = func(p *machine.Process) {
		col.ObserveProcess(p)
		if inj != nil {
			inj.Arm(p.Mem)
		}
	}
	defer func() { machine.OnNewProcess = prevSeam }()
	restoreExp := experiments.SetCollector(col)
	defer restoreExp()

	root := col.Tracer.Start(obs.CatExperiment, e.ID,
		obs.A("ref", e.Ref), obs.A("title", e.Title),
		obs.AInt("seed", *seed),
		obs.A("chaos", fmt.Sprintf("prob=%g kinds=%s", *chaosProb, chaos.KindNames(kinds))))
	table, runErr := e.Run()
	if runErr != nil {
		root.SetAttr("error", runErr.Error())
	}
	root.Close()
	col.Finalize()

	if err := emit(out, *dir, col, table); err != nil {
		return err
	}
	if runErr != nil {
		return fmt.Errorf("%s: %w", e.ID, runErr)
	}
	return nil
}

// emit writes the five artifacts either into dir or to out as sections.
func emit(out io.Writer, dir string, col *obs.Collector, table *report.Table) error {
	traceJSON, err := obs.ChromeTrace(col.Tracer)
	if err != nil {
		return err
	}
	ndjson, err := obs.NDJSON(col.Tracer, col.Metrics)
	if err != nil {
		return err
	}
	heatJSON, err := obs.HeatmapJSON(col.Heat)
	if err != nil {
		return err
	}
	metrics := []byte(col.Metrics.Exposition())
	heatTxt := []byte(col.Heat.Render())
	var tableTxt []byte
	if table != nil {
		tableTxt = []byte(table.String())
	}

	artifacts := []struct {
		name string
		data []byte
	}{
		{"trace.json", traceJSON},
		{"metrics.prom", metrics},
		{"heatmap.txt", heatTxt},
		{"heatmap.json", heatJSON},
		{"events.ndjson", ndjson},
		{"table.txt", tableTxt},
	}

	if dir == "" {
		for _, a := range artifacts {
			fmt.Fprintf(out, "== %s ==\n", a.name)
			out.Write(a.data)
			if len(a.data) > 0 && a.data[len(a.data)-1] != '\n' {
				fmt.Fprintln(out)
			}
		}
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range artifacts {
		if err := os.WriteFile(filepath.Join(dir, a.name), a.data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %d artifacts to %s\n", len(artifacts), dir)
	return nil
}
