package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var artifactNames = []string{
	"trace.json", "metrics.prom", "heatmap.txt", "heatmap.json", "events.ndjson", "table.txt",
}

func runCapture(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(artifactNames))
	for _, name := range artifactNames {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		out[name] = data
	}
	return out
}

func TestList(t *testing.T) {
	out := runCapture(t, "-list")
	for _, id := range []string{"E1", "E8", "E19"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestStdoutSections(t *testing.T) {
	out := runCapture(t, "-experiment", "E8")
	for _, name := range artifactNames {
		if !strings.Contains(out, "== "+name+" ==") {
			t.Errorf("stdout missing section %s", name)
		}
	}
	if !strings.Contains(out, `"traceEvents"`) {
		t.Error("trace JSON missing")
	}
	if !strings.Contains(out, "pn_mem_writes_total") {
		t.Error("metrics missing")
	}
	if !strings.Contains(out, "__vptr") {
		t.Error("heatmap missing vptr annotation")
	}
}

func TestDirArtifacts(t *testing.T) {
	dir := t.TempDir()
	out := runCapture(t, "-experiment", "E8", "-dir", dir)
	if !strings.Contains(out, "wrote 6 artifacts") {
		t.Errorf("summary line missing: %q", out)
	}
	arts := readArtifacts(t, dir)
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(arts["trace.json"], &doc); err != nil {
		t.Fatalf("trace.json invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace.json has no events")
	}
	if !bytes.Contains(arts["table.txt"], []byte("vtable")) {
		t.Error("table.txt missing experiment rows")
	}
}

// TestDeterministic is the contract CI gates: same flags, byte-identical
// artifacts — with and without the chaos overlay.
func TestDeterministic(t *testing.T) {
	for _, args := range [][]string{
		{"-experiment", "E8", "-seed", "7"},
		{"-experiment", "E1", "-seed", "7", "-chaos-prob", "0.05"},
	} {
		d1, d2 := t.TempDir(), t.TempDir()
		runCapture(t, append(args, "-dir", d1)...)
		runCapture(t, append(args, "-dir", d2)...)
		a1, a2 := readArtifacts(t, d1), readArtifacts(t, d2)
		for _, name := range artifactNames {
			if !bytes.Equal(a1[name], a2[name]) {
				t.Errorf("%v: %s differs between identical invocations", args, name)
			}
		}
	}
}

func TestChaosOverlayChangesTrace(t *testing.T) {
	base, injected := t.TempDir(), t.TempDir()
	runCapture(t, "-experiment", "E1", "-seed", "7", "-dir", base)
	// At this probability the injected faults may fail the experiment
	// itself; pntrace still emits the artifacts before reporting it.
	var sb strings.Builder
	_ = run([]string{"-experiment", "E1", "-seed", "7", "-chaos-prob", "0.2", "-dir", injected}, &sb)
	m := readArtifacts(t, injected)["metrics.prom"]
	if !bytes.Contains(m, []byte("pn_chaos_faults_total")) {
		t.Errorf("chaos overlay injected nothing at prob 0.2:\n%s", m)
	}
	if bytes.Contains(readArtifacts(t, base)["metrics.prom"], []byte("pn_chaos_faults_total{")) {
		t.Error("baseline run reports chaos faults")
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                       // missing -experiment
		{"-experiment", "E99"},                   // unknown id
		{"-experiment", "E1", "-faults", "nope"}, // bad fault kind
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
