// Infoleak: the §4.3 Listing 21 information leak. A memory pool holds the
// password file; a short user string is placed over it with placement new
// (which sanitizes nothing); storing MAX_USERDATA bytes from the buffer
// ships the remnants to the attacker. The §5.1 remedy — memset before
// reuse — closes the leak.
//
//	go run ./examples/infoleak
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/machine"
)

const passwd = "root:x:0:0:root:/root:/bin/bash\nsvc:x:12:7:/usr/sbin\n"

func main() {
	log.SetFlags(0)

	proc, err := machine.New(machine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const poolSize, maxUserdata = 64, 48
	g, err := proc.DefineGlobal("mem_pool", layout.ArrayOf(layout.Char, poolSize), false)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := core.NewPool(proc.Mem, proc.Model, g.Addr, poolSize, "mem_pool")
	if err != nil {
		log.Fatal(err)
	}

	demo := func(title string, sanitize bool) {
		// mmap/read a password file to mem_pool.
		if err := pool.LoadBytes([]byte(passwd)); err != nil {
			log.Fatal(err)
		}
		pool.SanitizeOnPlace = sanitize
		userdata, err := pool.PlaceArray(layout.Char, maxUserdata)
		if err != nil {
			log.Fatal(err)
		}
		// The attacker supplies a deliberately short string.
		if err := userdata.StrNCpy("bob", 4); err != nil {
			log.Fatal(err)
		}
		// store(userdata): what leaves the process.
		fmt.Println(title)
		dump, err := proc.Mem.Hexdump(userdata.Addr, maxUserdata)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(dump, "\n")
	}

	demo("store(userdata) without sanitization (§4.3): the password file leaks past \"bob\":", false)
	demo("store(userdata) with memset-before-reuse (§5.1): nothing leaks:", true)
}
