package main

import "testing"

// TestMainSmoke runs the example end to end. The example is a
// terminating program that log.Fatals on any failure, so simply
// reaching the end of main is the pass condition; a regression in any
// layer it exercises kills the test binary.
func TestMainSmoke(t *testing.T) {
	main()
}
