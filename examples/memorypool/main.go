// Memorypool: the legitimate §2.1 use of placement new — an application
// memory pool — done with the §5.1 discipline: checked placements,
// sanitize-on-reuse, and placement delete, with the leak ledger showing
// the difference it makes against the Listing 23 bug.
//
//	go run ./examples/memorypool
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/machine"
)

func main() {
	log.SetFlags(0)

	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	proc, err := machine.New(machine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sSize := student.Size(proc.Model)
	gSize := grad.Size(proc.Model)

	// A disciplined pool: bounds-checked, sanitized on reuse.
	blk, err := proc.Heap.AllocTagged(gSize, "record pool")
	if err != nil {
		log.Fatal(err)
	}
	pool, err := core.NewPool(proc.Mem, proc.Model, blk, gSize, "record pool")
	if err != nil {
		log.Fatal(err)
	}
	pool.Checked = true
	pool.SanitizeOnPlace = true

	if _, err := pool.PlaceObject(grad); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GradStudent (%d bytes) placed in %d-byte pool: ok\n", gSize, pool.Size())
	if _, err := pool.PlaceObject(student); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Student (%d bytes) re-placed (pool sanitized first): ok\n", sSize)

	// A checked pool refuses what the unchecked one would overflow.
	small, err := proc.Heap.Alloc(sSize)
	if err != nil {
		log.Fatal(err)
	}
	tight, err := core.NewPool(proc.Mem, proc.Model, small, sSize, "tight pool")
	if err != nil {
		log.Fatal(err)
	}
	tight.Checked = true
	if _, err := tight.PlaceObject(grad); err != nil {
		fmt.Printf("GradStudent into %d-byte pool: %v\n\n", sSize, err)
	}

	// The Listing 23 lifecycle, with and without placement delete.
	lifecycle := func(title string, properDelete bool) {
		tracker := core.NewLeakTracker()
		const iters = 100
		for i := 0; i < iters; i++ {
			addr := blk // reusing the same arena each pass, as the listing does
			tracker.RecordPlacement(addr, "GradStudent", gSize)
			if properDelete {
				if err := tracker.PlacementDelete(addr); err != nil {
					log.Fatal(err)
				}
			} else if err := tracker.ReleaseSized(addr, sSize); err != nil {
				// released through a Student-typed pointer
				log.Fatal(err)
			}
		}
		fmt.Printf("%-42s leaked %4d bytes over %d iterations (%d/pass)\n",
			title, tracker.Leaked(), iters, tracker.Leaked()/iters)
	}
	lifecycle("release via Student* (Listing 23 bug):", false)
	lifecycle("release via placement delete (§5.1):", true)
}
