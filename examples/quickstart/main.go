// Quickstart: build a simulated victim process, demonstrate the core
// placement-new object overflow of §3.1, and show the §5.1 checked
// placement rejecting it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/machine"
)

func main() {
	log.SetFlags(0)

	// The paper's running example (Listing 1).
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	// A process modelled on the paper's testbed: 32-bit, i386 layout.
	proc, err := machine.New(machine.Options{})
	if err != nil {
		log.Fatal(err)
	}

	sl, err := layout.Of(student, proc.Model)
	if err != nil {
		log.Fatal(err)
	}
	gl, err := layout.Of(grad, proc.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sl.Describe())
	fmt.Print(gl.Describe())
	fmt.Printf("overhang: placing a GradStudent over a Student writes %d bytes past the arena\n\n",
		gl.Size-sl.Size)

	// Two adjacent globals in bss, as in Listing 11.
	if _, err := proc.DefineGlobal("stud", student, false); err != nil {
		log.Fatal(err)
	}
	secret, err := proc.DefineGlobal("secret", layout.UInt, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.Mem.WriteU32(secret.Addr, 0xcafe); err != nil {
		log.Fatal(err)
	}

	// The vulnerable placement: new (&stud) GradStudent().
	arena, err := proc.GlobalVar("stud")
	if err != nil {
		log.Fatal(err)
	}
	gs, err := proc.Construct(grad, arena.Addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unchecked placement new at %#x succeeded (no bounds are checked, §2.5)\n", uint64(arena.Addr))

	before, _ := proc.Mem.ReadU32(secret.Addr)
	if err := gs.SetIndex("ssn", 0, 0x41414141); err != nil {
		log.Fatal(err)
	}
	after, _ := proc.Mem.ReadU32(secret.Addr)
	fmt.Printf("adjacent global 'secret': %#x -> %#x (overwritten by ssn[0])\n\n", before, after)

	// The §5.1 remedy: check sizeof before placing.
	_, err = core.CheckedPlacementNew(proc.Mem, proc.Model,
		core.Arena{Base: arena.Addr, Size: sl.Size, Label: "stud"}, grad)
	fmt.Printf("checked placement new: %v\n", err)
}
