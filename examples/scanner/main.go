// Scanner: the §7 static-analysis tool used as a library. It analyses a
// vulnerable translation unit (Listing 13 plus an inter-procedural §3.3
// flow), prints the diagnostics with their §5.1 remediations, and shows
// the traditional scanner finding nothing — the paper's §1 claim about
// existing tools.
//
//	go run ./examples/scanner
package main

import (
	"fmt"
	"log"

	"repro/internal/analyzer"
)

const victim = `
class Student {
 public:
  double gpa;
  int year;
  int semester;
};
class GradStudent : public Student {
 public:
  int ssn[3];
};

char mem_pool[32];

void place(int count) {
  char *buf = new (mem_pool) char[count];
}

void addStudent(bool isGradStudent) {
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[0] >> gs->ssn[1] >> gs->ssn[2];
  }
  int n_unames = 0;
  cin >> n_unames;
  place(n_unames);
}
`

func main() {
	log.SetFlags(0)

	r, err := analyzer.Analyze(victim, analyzer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement-new analyzer: %d finding(s)\n", len(r.Diags))
	for _, d := range r.Diags {
		fmt.Printf("  %s\n", d)
		fmt.Printf("      fix: %s\n", d.Suggestion)
	}

	bf, err := analyzer.Baseline(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraditional scanner (strcpy/gets/sprintf patterns): %d finding(s)\n", len(bf))
	fmt.Println("\n\"None of the existing tools can detect buffer overflow vulnerabilities due to placement new.\" (§1)")
}
