// Webservice: the §3.2 remote-object attack end to end. A "service"
// receives serialized student records from clients and deserializes them
// into a pre-allocated arena with placement new — trusting the protocol,
// as the paper's victim programs do. A malicious client names a larger
// subclass on the wire and overflows the arena; the checked deserializer
// (§5.1) rejects the same message.
//
//	go run ./examples/webservice
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/serial"
)

func main() {
	log.SetFlags(0)

	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	reg := serial.NewRegistry(student, grad)

	proc, err := machine.New(machine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Server state: a record slot and the admin flag that happens to sit
	// right behind it in bss.
	slot, err := proc.DefineGlobal("record_slot", student, false)
	if err != nil {
		log.Fatal(err)
	}
	admin, err := proc.DefineGlobal("is_admin", layout.UInt, false)
	if err != nil {
		log.Fatal(err)
	}

	// An honest client:
	honest := serial.Encode(serial.NewMessage("Student").
		Set("gpa", serial.FloatValue(3.7)).
		Set("year", serial.IntValue(2010)).
		Set("semester", serial.IntValue(1)))
	fmt.Printf("honest wire message:    %s\n", honest)
	msg, err := serial.Parse(honest)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := serial.PlaceTrusting(proc.Mem, proc.Model, reg, slot.Addr, msg); err != nil {
		log.Fatal(err)
	}
	v, _ := proc.Mem.ReadU32(admin.Addr)
	fmt.Printf("after honest request:   is_admin = %d\n\n", v)

	// The attack: the wire names GradStudent and ssn[0] carries the value
	// that lands exactly on is_admin.
	evil := serial.Encode(serial.NewMessage("GradStudent").
		Set("gpa", serial.FloatValue(4.0)).
		Set("ssn", serial.ArrayValue(1, 0, 0)))
	fmt.Printf("malicious wire message: %s\n", evil)
	msg, err = serial.Parse(evil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := serial.PlaceTrusting(proc.Mem, proc.Model, reg, slot.Addr, msg); err != nil {
		log.Fatal(err)
	}
	v, _ = proc.Mem.ReadU32(admin.Addr)
	fmt.Printf("after trusting decode:  is_admin = %d  <-- privilege escalation\n\n", v)

	// The fix: bound the deserialization by the arena (§5.1).
	if err := proc.Mem.WriteU32(admin.Addr, 0); err != nil {
		log.Fatal(err)
	}
	arena := core.Arena{Base: slot.Addr, Size: student.Size(proc.Model), Label: "record_slot"}
	_, err = serial.PlaceChecked(proc.Mem, proc.Model, reg, arena, msg)
	fmt.Printf("checked decode:         %v\n", err)
	v, _ = proc.Mem.ReadU32(admin.Addr)
	fmt.Printf("after checked decode:   is_admin = %d\n", v)
}
