package analyzer

import (
	"fmt"
	"sort"

	"repro/internal/layout"
)

// Severity grades a diagnostic.
type Severity int

// Severities.
const (
	SevError Severity = iota + 1
	SevWarning
	SevInfo
)

// String returns the conventional lowercase name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code string
	Sev  Severity
	Pos  Pos
	Msg  string
	// Suggestion is the §5.1 remediation for the finding — the
	// "automatically addressing these vulnerabilities" half of the tool
	// the paper's conclusion describes.
	Suggestion string
}

// String renders "line:col: severity PNxxx: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s %s: %s", d.Pos, d.Sev, d.Code, d.Msg)
}

// suggestions maps diagnostic codes to their §5.1 remediations.
var suggestions = map[string]string{
	"PN001": "check sizeof() of the placed type against the arena before placing; fall back to non-placement new when it does not fit (§5.1)",
	"PN002": "validate the attacker-influenced length against the pool capacity immediately before the placement (§5.1)",
	"PN003": "pass a lexically identifiable allocation (named object, array, or sized pool) as the placement target so bounds can be established (§5.1)",
	"PN004": "establish the element count before the placement, or use a checked pool that enforces capacity (§5.1)",
	"PN005": "place only the arena's own class or a class derived from it; placement new performs no type checking itself (§2.5)",
	"PN006": "memset() the arena before reusing it for a smaller object so previous contents cannot leak (§5.1)",
	"PN007": "define a placement delete and invoke it before dropping the last pointer to the placed memory (§4.5/§5.1)",
}

// Options configures an analysis run.
type Options struct {
	// Model sets the data model used for sizeof arithmetic; the zero
	// value selects layout.ILP32i386, matching the simulated testbed.
	Model layout.Model
}

// Result is the output of Analyze.
type Result struct {
	Prog  *Program
	Diags []Diagnostic
}

// Codes returns the distinct diagnostic codes present, sorted.
func (r *Result) Codes() []string {
	set := map[string]bool{}
	for _, d := range r.Diags {
		set[d.Code] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// HasCode reports whether any diagnostic carries the code.
func (r *Result) HasCode(code string) bool {
	for _, d := range r.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// Analyze parses and checks a mini-C++ translation unit.
func Analyze(src string, opts Options) (*Result, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	model := opts.Model
	if model.PtrSize == 0 {
		model = layout.ILP32i386
	}
	sm, err := buildSema(prog, model)
	if err != nil {
		return nil, err
	}
	a := &checker{sema: sm, prog: prog}
	a.run()
	sort.SliceStable(a.diags, func(i, j int) bool {
		if a.diags[i].Pos.Line != a.diags[j].Pos.Line {
			return a.diags[i].Pos.Line < a.diags[j].Pos.Line
		}
		return a.diags[i].Pos.Col < a.diags[j].Pos.Col
	})
	// Deduplicate: the double analysis of loop bodies (loop-carried
	// facts) re-emits identical diagnostics.
	var diags []Diagnostic
	for _, d := range a.diags {
		if n := len(diags); n > 0 && diags[n-1] == d {
			continue
		}
		diags = append(diags, d)
	}
	return &Result{Prog: prog, Diags: diags}, nil
}

// taintSources are callee names whose return value is attacker-influenced
// (remote objects, network reads, environment).
var taintSources = map[string]bool{
	"recv": true, "getNames": true, "read_int": true, "atoi": true,
	"getenv": true, "receive": true, "getn": true,
}

// dirtySinks are calls whose first argument receives external data,
// marking the arena "dirty" for the PN006 information-leak check.
var dirtySinks = map[string]bool{
	"strncpy": true, "strcpy": true, "memcpy": true, "read": true,
	"fread": true, "read_file": true, "load": true, "mmap_file": true,
}

// varInfo is the checker's per-variable state.
type varInfo struct {
	decl *VarDecl
	// constVal holds the current statically known value, when known.
	constVal   int64
	constKnown bool
	// tainted marks attacker influence on the value.
	tainted bool
	// pointee records what a pointer currently points at, when resolvable.
	pointee *arena
	// placements counts live placement-new results stored in this pointer
	// without an intervening placement_delete (PN007).
	livePlacements int
}

// arena is a resolved placement destination.
type arena struct {
	label string
	size  uint64
	known bool
	class *layout.Class // non-nil when the arena is a class object
	// dirty marks that the arena held external/previous data (PN006).
	dirty bool
	// dirtyBytes is how much of the arena is known to be occupied.
	dirtyBytes uint64
}

type checker struct {
	sema  *sema
	prog  *Program
	diags []Diagnostic

	globals map[string]*varInfo
	arenas  map[string]*arena // per named variable that can serve as an arena
	locals  map[string]*varInfo
	// summaries carries the interprocedural parameter facts (see
	// interproc.go).
	summaries map[string]*funcSummary
}

func (c *checker) report(code string, sev Severity, pos Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Code: code, Sev: sev, Pos: pos,
		Msg:        fmt.Sprintf(format, args...),
		Suggestion: suggestions[code],
	})
}

func (c *checker) run() {
	c.summaries = make(map[string]*funcSummary, len(c.prog.Funcs))
	for _, fn := range c.prog.Funcs {
		c.summaries[fn.Name] = newSummary(fn)
	}
	collectCalledness(c.prog, c.summaries)

	// Fixpoint over the call graph: each pass re-analyses every function
	// under the current parameter facts and records new facts at call
	// sites. Facts move monotonically, so the loop terminates; the bound
	// is a backstop.
	maxPasses := 2*len(c.prog.Funcs) + 2
	for pass := 0; pass < maxPasses; pass++ {
		snapshot := cloneSummaries(c.summaries)
		c.diags = nil
		c.globals = make(map[string]*varInfo)
		c.arenas = make(map[string]*arena)
		for _, g := range c.prog.Globals {
			c.globals[g.Name] = &varInfo{decl: g}
			c.noteArenaFor(g)
		}
		for _, fn := range c.prog.Funcs {
			c.checkFunc(fn)
		}
		if equalSummaries(snapshot, c.summaries) {
			break
		}
	}
}

// noteArenaFor registers a variable as a potential placement arena.
func (c *checker) noteArenaFor(d *VarDecl) {
	a := &arena{label: d.Name}
	if !d.Type.IsPtr() {
		if n, ok := c.sema.sizeOfSrcType(d.Type); ok {
			a.size, a.known = n, true
		}
		if cls, ok := c.sema.classes[d.Type.Name]; ok && d.Type.ArrayLen == nil {
			a.class = cls
		}
	}
	c.arenas[d.Name] = a
}

func (c *checker) lookupVar(name string) *varInfo {
	if v, ok := c.locals[name]; ok {
		return v
	}
	if v, ok := c.globals[name]; ok {
		return v
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.locals = make(map[string]*varInfo)
	sum := c.summaries[fn.Name]
	for i, prm := range fn.Params {
		vi := &varInfo{decl: prm}
		switch {
		case sum == nil || !sum.called:
			// Never called inside the unit: an entry point reachable from
			// outside, so its parameters are attacker-influenced.
			vi.tainted = true
		default:
			vi.tainted = sum.taint[i]
			if v, ok := sum.consts[i].known(); ok {
				vi.constVal, vi.constKnown = v, true
			}
		}
		c.locals[prm.Name] = vi
		c.noteArenaFor(prm)
	}
	c.checkBlock(fn.Body)
	// PN007: placements still live in pointers that were overwritten.
	for name, vi := range c.locals {
		if vi.livePlacements > 1 {
			c.report("PN007", SevWarning, vi.decl.Pos,
				"pointer %s received %d placement-new results without placement delete; earlier placements leak",
				name, vi.livePlacements)
		}
	}
}

func (c *checker) checkBlock(b *Block) {
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		vi := &varInfo{decl: d}
		if d.Init != nil {
			c.checkExpr(d.Init)
			if n, ok := c.evalConst(d.Init); ok {
				vi.constVal, vi.constKnown = n, true
			}
			vi.tainted = c.isTainted(d.Init)
			if d.Type.IsPtr() {
				vi.pointee = c.pointeeOf(d.Init)
			}
			if _, ok := d.Init.(*New); ok {
				vi.livePlacements++
			}
		}
		c.locals[d.Name] = vi
		c.noteArenaFor(d)
	case *ExprStmt:
		if st.X != nil {
			c.checkExpr(st.X)
		}
	case *IfStmt:
		c.checkExpr(st.Cond)
		// The §5.1 correct-coding pattern guards a placement with a
		// statically decidable sizeof comparison; a branch that is dead
		// under constant folding is not analysed (no false PN001 on
		// `if (sizeof(B) <= sizeof(A)) { new (&a) B(); }`).
		if v, ok := c.evalConst(st.Cond); ok {
			if v != 0 {
				c.checkStmt(st.Then)
			} else if st.Else != nil {
				c.checkStmt(st.Else)
			}
			return
		}
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *WhileStmt:
		c.checkExpr(st.Cond)
		// Widen loop-carried variables first: a variable reassigned
		// inside the body takes a different value on every iteration, so
		// no single compile-time constant is sound at any site in the
		// body — `new (&pool[i]) C()` with i advancing per iteration must
		// resolve as unknown (PN003), not as the first iteration's
		// offset.
		for _, name := range assignedVars(st.Body) {
			if vi := c.lookupVar(name); vi != nil {
				vi.constKnown = false
			}
		}
		// Loop bodies are analysed twice so loop-carried facts (a value
		// tainted late in iteration k reaching a sink early in k+1) are
		// observed. Diagnostics are deduplicated afterwards.
		c.checkStmt(st.Body)
		c.checkStmt(st.Body)
	case *ForStmt:
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkExpr(st.Cond)
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.checkStmt(st.Body)
		c.checkStmt(st.Body)
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
	case *ReturnStmt:
		if st.X != nil {
			c.checkExpr(st.X)
		}
	}
}

// assignedVars collects the names assigned anywhere in a statement
// subtree — the loop-carried candidates a while body must widen.
func assignedVars(s Stmt) []string {
	var out []string
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		if a, ok := e.(*Assign); ok {
			if id, ok := a.L.(*Ident); ok {
				out = append(out, id.Name)
			}
			walkExpr(a.R)
		}
	}
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *ExprStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *WhileStmt:
			walk(st.Body)
		case *ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walk(st.Body)
		}
	}
	walk(s)
	return out
}

// checkExpr walks an expression, updating state and reporting placements.
func (c *checker) checkExpr(e Expr) {
	switch x := e.(type) {
	case *Assign:
		c.checkExpr(x.R)
		// Update LHS variable state.
		if id, ok := x.L.(*Ident); ok {
			if vi := c.lookupVar(id.Name); vi != nil {
				if n, ok := c.evalConst(x.R); ok && x.Op == "=" {
					vi.constVal, vi.constKnown = n, true
				} else {
					vi.constKnown = false
				}
				vi.tainted = c.isTainted(x.R)
				if vi.decl.Type.IsPtr() && x.Op == "=" {
					vi.pointee = c.pointeeOf(x.R)
					if _, ok := x.R.(*New); ok {
						vi.livePlacements++
					}
					if n, ok := x.R.(*Number); ok && n.Val == 0 && vi.livePlacements > 0 {
						// p = NULL while holding a live allocation: the
						// handle to the placed memory is lost (Listing 23).
						c.report("PN007", SevWarning, x.Pos,
							"pointer %s nulled while holding a live allocation; memory leaks", id.Name)
						vi.livePlacements = 0
					}
				}
			}
		} else {
			c.checkExpr(x.L)
			c.markWriteTo(x.L)
		}
	case *Binary:
		if x.Op == ">>" && isCin(x) {
			// cin >> target: every extraction target becomes tainted.
			c.taintCinTargets(x)
			return
		}
		c.checkExpr(x.L)
		c.checkExpr(x.R)
	case *Unary:
		c.checkExpr(x.X)
	case *Member:
		c.checkExpr(x.X)
	case *Index:
		c.checkExpr(x.X)
		c.checkExpr(x.I)
	case *Call:
		c.checkCall(x)
	case *New:
		c.checkNew(x)
	}
}

// isCin reports whether the leftmost operand of a >> chain is `cin`.
func isCin(b *Binary) bool {
	l := b.L
	for {
		switch x := l.(type) {
		case *Binary:
			if x.Op != ">>" {
				return false
			}
			l = x.L
		case *Ident:
			return x.Name == "cin"
		default:
			return false
		}
	}
}

// taintCinTargets marks every >> extraction target tainted.
func (c *checker) taintCinTargets(b *Binary) {
	c.taintLValue(b.R)
	if lb, ok := b.L.(*Binary); ok && lb.Op == ">>" {
		c.taintCinTargets(lb)
	}
}

func (c *checker) taintLValue(e Expr) {
	switch x := e.(type) {
	case *Ident:
		if vi := c.lookupVar(x.Name); vi != nil {
			vi.tainted = true
			vi.constKnown = false
		}
	case *Member:
		// Tainting a member taints the base object conservatively, and
		// the write makes its storage dirty for the PN006 check.
		c.taintLValue(rootOf(x))
		c.markWriteTo(x)
	case *Index:
		c.taintLValue(rootOf(x))
		c.markWriteTo(x)
	case *Unary:
		c.taintLValue(x.X)
	}
}

// markWriteTo records that the storage behind an lvalue now holds data,
// for the §4.3 reuse-without-sanitization check.
func (c *checker) markWriteTo(e Expr) {
	root, ok := rootOf(e).(*Ident)
	if !ok {
		return
	}
	var ar *arena
	if vi := c.lookupVar(root.Name); vi != nil && vi.decl.Type.IsPtr() {
		ar = vi.pointee
	} else {
		ar = c.arenas[root.Name]
	}
	if ar != nil && ar.known {
		ar.dirty = true
		ar.dirtyBytes = ar.size
	}
}

// rootOf returns the base identifier expression of a member/index chain.
func rootOf(e Expr) Expr {
	for {
		switch x := e.(type) {
		case *Member:
			e = x.X
		case *Index:
			e = x.X
		case *Unary:
			e = x.X
		default:
			return e
		}
	}
}

func (c *checker) checkCall(x *Call) {
	for _, a := range x.Args {
		c.checkExpr(a)
	}
	if x.Recv != nil {
		c.checkExpr(x.Recv)
		return
	}
	c.recordCallFacts(x)
	switch {
	case x.Name == "memset" && len(x.Args) >= 1:
		if ar := c.arenaOfExpr(x.Args[0]); ar != nil {
			ar.dirty = false
			ar.dirtyBytes = 0
		}
	case dirtySinks[x.Name] && len(x.Args) >= 1:
		if ar := c.arenaOfExpr(x.Args[0]); ar != nil {
			ar.dirty = true
			ar.dirtyBytes = ar.size
		}
	case (x.Name == "placement_delete" || x.Name == "delete") && len(x.Args) == 1:
		if id, ok := x.Args[0].(*Ident); ok {
			if vi := c.lookupVar(id.Name); vi != nil && vi.livePlacements > 0 {
				vi.livePlacements--
			}
		}
	}
}

// arenaOfExpr resolves the arena a placement (or sink) expression names.
func (c *checker) arenaOfExpr(e Expr) *arena {
	switch x := e.(type) {
	case *Ident:
		vi := c.lookupVar(x.Name)
		if vi != nil && vi.decl.Type.IsPtr() {
			if vi.pointee != nil {
				return vi.pointee
			}
			return nil
		}
		return c.arenas[x.Name]
	case *Unary:
		if x.Op == "&" {
			if id, ok := x.X.(*Ident); ok {
				return c.arenas[id.Name]
			}
			if m, ok := x.X.(*Member); ok {
				return c.memberArena(m)
			}
			if ix, ok := x.X.(*Index); ok {
				return c.indexedArena(ix)
			}
		}
		return nil
	case *Member:
		return c.memberArena(x)
	default:
		return nil
	}
}

// indexedArena resolves `&arr[i]` placements to the arena remaining past
// the element: the mid-pool placement §5.1 discusses ("placement new can
// be used to allocate chunks of this arena to objects/arrays"). A
// non-constant or tainted index leaves the arena unresolvable.
func (c *checker) indexedArena(ix *Index) *arena {
	id, ok := ix.X.(*Ident)
	if !ok {
		return nil
	}
	base := c.arenas[id.Name]
	if base == nil || !base.known {
		return nil
	}
	vi := c.lookupVar(id.Name)
	if vi == nil || vi.decl.Type.ArrayLen == nil {
		return nil
	}
	i, ok := c.evalConst(ix.I)
	if !ok || i < 0 || c.isTainted(ix.I) {
		return nil
	}
	elem, eok := c.sema.sizeOfSrcType(SrcType{Name: vi.decl.Type.Name, Stars: vi.decl.Type.Stars})
	if !eok {
		return nil
	}
	off := uint64(i) * elem
	if off > base.size {
		return &arena{label: fmt.Sprintf("%s[%d]", id.Name, i), known: true, size: 0}
	}
	a := &arena{
		label: fmt.Sprintf("%s[%d...]", id.Name, i),
		size:  base.size - off,
		known: true,
		dirty: base.dirty,
	}
	if base.dirtyBytes > off {
		a.dirtyBytes = base.dirtyBytes - off
	}
	return a
}

// memberArena resolves &obj.field arenas to the member's own size.
func (c *checker) memberArena(m *Member) *arena {
	rootID, ok := rootOf(m).(*Ident)
	if !ok {
		return nil
	}
	vi := c.lookupVar(rootID.Name)
	if vi == nil {
		return nil
	}
	cls, ok := c.sema.classes[vi.decl.Type.Name]
	if !ok {
		return nil
	}
	l, err := layout.Of(cls, c.sema.model)
	if err != nil {
		return nil
	}
	f, err := l.FieldOffset(m.Name)
	if err != nil {
		return nil
	}
	a := &arena{label: rootID.Name + "." + m.Name, size: f.Type.Size(c.sema.model), known: true}
	if fc, ok := f.Type.(*layout.Class); ok {
		a.class = fc
	}
	return a
}

// pointeeOf tracks simple pointer targets: &x, array names, placement and
// heap news.
func (c *checker) pointeeOf(e Expr) *arena {
	switch x := e.(type) {
	case *Unary:
		if x.Op == "&" {
			if id, ok := x.X.(*Ident); ok {
				return c.arenas[id.Name]
			}
		}
	case *Ident:
		// Array name decays to a pointer to the array.
		if ar, ok := c.arenas[x.Name]; ok {
			return ar
		}
	case *New:
		if x.ArrayLen != nil {
			if n, ok := c.evalConst(x.ArrayLen); ok {
				if es, esok := c.sema.sizeOfSrcType(SrcType{Name: x.Type.Name, Stars: x.Type.Stars}); esok {
					return &arena{label: "new " + x.Type.Name + "[]", size: uint64(n) * es, known: true}
				}
			}
			return &arena{label: "new " + x.Type.Name + "[]"}
		}
		if n, ok := c.sema.sizeOfSrcType(x.Type); ok {
			a := &arena{label: "new " + x.Type.Name, size: n, known: true}
			if cls, ok := c.sema.classes[x.Type.Name]; ok {
				a.class = cls
			}
			return a
		}
	}
	return nil
}

// evalConst folds constants, consulting tracked variable values.
func (c *checker) evalConst(e Expr) (int64, bool) {
	if v, ok := evalConstPure(e, c.sema); ok {
		return v, true
	}
	switch x := e.(type) {
	case *Ident:
		if vi := c.lookupVar(x.Name); vi != nil && vi.constKnown && !vi.tainted {
			return vi.constVal, true
		}
	case *Binary:
		l, lok := c.evalConst(x.L)
		r, rok := c.evalConst(x.R)
		if lok && rok {
			switch x.Op {
			case "+":
				return l + r, true
			case "-":
				return l - r, true
			case "*":
				return l * r, true
			case "/":
				if r != 0 {
					return l / r, true
				}
			case "<":
				return boolInt(l < r), true
			case "<=":
				return boolInt(l <= r), true
			case ">":
				return boolInt(l > r), true
			case ">=":
				return boolInt(l >= r), true
			case "==":
				return boolInt(l == r), true
			case "!=":
				return boolInt(l != r), true
			}
		}
	}
	return 0, false
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// isTainted reports attacker influence over an expression's value.
func (c *checker) isTainted(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		vi := c.lookupVar(x.Name)
		return vi != nil && vi.tainted
	case *Binary:
		return c.isTainted(x.L) || c.isTainted(x.R)
	case *Unary:
		return c.isTainted(x.X)
	case *Member, *Index:
		if id, ok := rootOf(x).(*Ident); ok {
			vi := c.lookupVar(id.Name)
			return vi != nil && vi.tainted
		}
		return false
	case *Call:
		if taintSources[x.Name] {
			return true
		}
		if x.Recv != nil && taintSources[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if c.isTainted(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// checkNew is the heart of the tool: every placement-new site is verified
// against what can be known statically (§5.1).
func (c *checker) checkNew(n *New) {
	if n.Placement != nil {
		c.checkExpr(n.Placement)
	}
	for _, a := range n.CtorArgs {
		c.checkExpr(a)
	}
	if n.ArrayLen != nil {
		c.checkExpr(n.ArrayLen)
	}
	if n.Placement == nil {
		return // ordinary new: out of scope
	}

	ar := c.arenaOfExpr(n.Placement)

	// Placed size.
	var placedSize uint64
	placedKnown := false
	var placedClass *layout.Class
	if n.ArrayLen != nil {
		elemSize, eok := c.sema.sizeOfSrcType(SrcType{Name: n.Type.Name, Stars: n.Type.Stars})
		if ln, ok := c.evalConst(n.ArrayLen); ok && eok && ln >= 0 {
			placedSize, placedKnown = uint64(ln)*elemSize, true
		}
		if c.isTainted(n.ArrayLen) {
			c.report("PN002", SevError, n.Pos,
				"placement array-new length is attacker-influenced (tainted); bounds cannot be trusted")
		} else if !placedKnown {
			c.report("PN004", SevWarning, n.Pos,
				"placement array-new length is not statically known")
		}
	} else {
		placedSize, placedKnown = c.sema.sizeOfSrcType(n.Type)
		placedClass = c.sema.classes[n.Type.Name]
	}

	if ar == nil {
		c.report("PN003", SevInfo, n.Pos,
			"placement destination cannot be resolved to an allocation; bounds are unverifiable")
		return
	}

	if ar.known && placedKnown && placedSize > ar.size {
		what := n.Type.Name
		if n.ArrayLen != nil {
			what += "[]"
		}
		c.report("PN001", SevError, n.Pos,
			"placement of %s (%d bytes) overflows %s (%d bytes)", what, placedSize, ar.label, ar.size)
	}

	// Placing a class over a related class (either direction) is the
	// intended reuse pattern; only unrelated classes draw PN005.
	if placedClass != nil && ar.class != nil &&
		!placedClass.SameOrDerivesFrom(ar.class) && !ar.class.SameOrDerivesFrom(placedClass) {
		c.report("PN005", SevWarning, n.Pos,
			"placing %s into an arena typed %s: classes are unrelated", placedClass.Name(), ar.class.Name())
	}

	// PN006: reuse of a dirty arena by a smaller placement leaks the tail.
	if ar.dirty && placedKnown && ar.known && placedSize < ar.size {
		c.report("PN006", SevWarning, n.Pos,
			"%s still holds %d bytes of previous data; placing %d bytes leaves %d bytes unsanitized",
			ar.label, ar.dirtyBytes, placedSize, ar.size-placedSize)
	}
	// A placement marks the arena as holding data for subsequent reuse.
	if ar.known {
		if placedKnown && placedSize > ar.dirtyBytes {
			ar.dirtyBytes = placedSize
			if ar.dirtyBytes > ar.size {
				ar.dirtyBytes = ar.size
			}
		}
		ar.dirty = true
	}
}
