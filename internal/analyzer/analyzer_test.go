package analyzer

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/layout"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	r, err := Analyze(src, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return r
}

func TestCorpusExpectations(t *testing.T) {
	for _, e := range Corpus() {
		t.Run(e.Name, func(t *testing.T) {
			r := analyze(t, e.Src)
			got := r.Codes()
			want := append([]string(nil), e.WantCodes...)
			sort.Strings(want)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("codes = %v, want %v\ndiags:\n%s", got, want, diagDump(r))
			}
		})
	}
}

func diagDump(r *Result) string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func TestPN001MessageAndPosition(t *testing.T) {
	src := `
class A { public: int x; };
class B : public A { public: int y[8]; };
A a;
void f() {
  B *b = new (&a) B();
}
`
	r := analyze(t, src)
	if len(r.Diags) != 1 {
		t.Fatalf("diags = %v", r.Diags)
	}
	d := r.Diags[0]
	if d.Code != "PN001" || d.Sev != SevError {
		t.Errorf("diag = %+v", d)
	}
	if d.Pos.Line != 6 {
		t.Errorf("line = %d, want 6", d.Pos.Line)
	}
	if !strings.Contains(d.Msg, "36 bytes") || !strings.Contains(d.Msg, "4 bytes") {
		t.Errorf("msg = %q, want concrete sizes", d.Msg)
	}
}

func TestSizeArithmeticUsesVPtr(t *testing.T) {
	// A virtual method adds a vptr: B(4+4+32=40? under i386: vptr 4 + x 4
	// + y 32 = 40) no longer fits where its non-virtual twin would.
	src := `
class A { public: virtual int getInfo(); int x; };
class B : public A { public: int y; };
A a;
void f() {
  B *b = new (&a) B();
}
`
	r := analyze(t, src)
	if !r.HasCode("PN001") {
		t.Errorf("vptr-bearing subclass placement not flagged: %v", r.Diags)
	}
}

func TestPN002TaintFlow(t *testing.T) {
	tests := []struct {
		name string
		body string
		want bool
	}{
		{"cin direct", "int n = 0; cin >> n; char *b = new (pool) char[n];", true},
		{"cin arithmetic", "int n = 0; cin >> n; char *b = new (pool) char[n * 8 + 1];", true},
		{"taint through assignment", "int n = 0; cin >> n; int m = n; char *b = new (pool) char[m];", true},
		{"taint from recv", "int n = recv(); char *b = new (pool) char[n];", true},
		{"constant", "int n = 4; char *b = new (pool) char[n];", false},
		{"constant arithmetic", "int n = 4; char *b = new (pool) char[n * 8];", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "char pool[64];\nvoid f() {\n" + tt.body + "\n}\n"
			r := analyze(t, src)
			if got := r.HasCode("PN002"); got != tt.want {
				t.Errorf("PN002 = %v, want %v; diags %v", got, tt.want, r.Diags)
			}
		})
	}
}

func TestPN001ConstantFoldedArrayLength(t *testing.T) {
	src := `
char pool[64];
void f() {
  int n = 16;
  char *b = new (pool) char[n * 8];
}
`
	r := analyze(t, src)
	if !r.HasCode("PN001") {
		t.Errorf("constant oversize array placement not flagged: %v", r.Diags)
	}
}

func TestPN003UnresolvableArena(t *testing.T) {
	src := `
class A { public: int x; };
void f(void *p) {
  A *a = new (p) A();
}
`
	r := analyze(t, src)
	if !r.HasCode("PN003") {
		t.Errorf("unresolvable arena not reported: %v", r.Diags)
	}
}

func TestPN004UnknownNonTaintedLength(t *testing.T) {
	src := `
char pool[64];
int config();
void f() {
  int n = config();
  char *b = new (pool) char[n];
}
`
	// config() is undeclared as a taint source; its value is unknown but
	// not attacker-controlled.
	r, err := Analyze(strings.Replace(src, "int config();\n", "", 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCode("PN004") {
		t.Errorf("unknown length not reported: %v", r.Diags)
	}
	if r.HasCode("PN002") {
		t.Errorf("non-tainted length misreported as tainted: %v", r.Diags)
	}
}

func TestPN006ClearedByMemset(t *testing.T) {
	dirty := `
char pool[64];
void f() {
  read_file(pool);
  char *u = new (pool) char[16];
}
`
	r := analyze(t, dirty)
	if !r.HasCode("PN006") {
		t.Errorf("dirty reuse not flagged: %v", r.Diags)
	}
	clean := strings.Replace(dirty, "read_file(pool);", "read_file(pool); memset(pool, 0, 64);", 1)
	r = analyze(t, clean)
	if r.HasCode("PN006") {
		t.Errorf("sanitized reuse flagged: %v", r.Diags)
	}
}

func TestPN006SequentialPlacements(t *testing.T) {
	// A larger placement followed by a smaller one into the same pool
	// leaks the tail of the first.
	src := `
class Big { public: int a; int b; int c; int d; };
class Small { public: int a; };
char pool[64];
void f() {
  Big *x = new (pool) Big();
  x->a = 1;
  Small *y = new (pool) Small();
}
`
	r := analyze(t, src)
	if !r.HasCode("PN006") {
		t.Errorf("sequential shrinking placement not flagged: %v", r.Diags)
	}
}

func TestPN007LeakPatterns(t *testing.T) {
	leak := `
class A { public: int x; };
void f() {
  A *p = new A();
  p = 0;
}
`
	r := analyze(t, leak)
	if !r.HasCode("PN007") {
		t.Errorf("nulled live allocation not flagged: %v", r.Diags)
	}
	freed := `
class A { public: int x; };
void f() {
  A *p = new A();
  delete p;
  p = 0;
}
`
	r = analyze(t, freed)
	if r.HasCode("PN007") {
		t.Errorf("deleted allocation flagged: %v", r.Diags)
	}
	double := `
class A { public: int x; };
A arena1;
A arena2;
void f() {
  A *p = new (&arena1) A();
  p = new (&arena2) A();
}
`
	r = analyze(t, double)
	if !r.HasCode("PN007") {
		t.Errorf("overwritten placement pointer not flagged: %v", r.Diags)
	}
}

func TestGuardedPlacementNotFlagged(t *testing.T) {
	src := `
class A { public: int x; };
class B : public A { public: int y; };
void f() {
  A a;
  if (sizeof(B) <= sizeof(A)) {
    B *b = new (&a) B();
  }
}
`
	r := analyze(t, src)
	if r.HasCode("PN001") {
		t.Errorf("statically dead guarded branch flagged: %v", r.Diags)
	}
}

func TestModelAffectsVerdict(t *testing.T) {
	// double alignment differs between i386 (4) and natural (8): under
	// ILP32 the arena A is 16 bytes with tail padding vs 12 under i386.
	src := `
class A { public: double d; int x; };
class B : public A { public: int y; };
A a;
void f() {
  B *b = new (&a) B();
}
`
	r386, err := Analyze(src, Options{Model: layout.ILP32i386})
	if err != nil {
		t.Fatal(err)
	}
	r32, err := Analyze(src, Options{Model: layout.ILP32})
	if err != nil {
		t.Fatal(err)
	}
	// B exceeds A under both, but the reported byte counts differ.
	if !r386.HasCode("PN001") || !r32.HasCode("PN001") {
		t.Fatalf("PN001 missing: %v / %v", r386.Diags, r32.Diags)
	}
	if r386.Diags[0].Msg == r32.Diags[0].Msg {
		t.Errorf("model change did not affect size arithmetic: %q", r386.Diags[0].Msg)
	}
}

func TestBaselineFindsClassicMissesPlacement(t *testing.T) {
	var classic, placement CorpusEntry
	for _, e := range Corpus() {
		switch e.Name {
		case "classic-strcpy":
			classic = e
		case "L4-construct-overflow":
			placement = e
		}
	}
	fs, err := Baseline(classic.Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Func != "strcpy" {
		t.Errorf("baseline on classic = %v, want one strcpy hit", fs)
	}
	fs, err = Baseline(placement.Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("baseline flagged placement-new code: %v", fs)
	}
}

// TestBaselineMissesEntireCorpus is the E16 headline: the traditional
// scanner finds zero placement-new vulnerabilities across the corpus.
func TestBaselineMissesEntireCorpus(t *testing.T) {
	for _, e := range Corpus() {
		if e.Name == "classic-strcpy" {
			continue
		}
		fs, err := Baseline(e.Src)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(fs) != 0 {
			t.Errorf("%s: baseline found %v", e.Name, fs)
		}
	}
}

func TestAnalyzerPrecisionRecallOnCorpus(t *testing.T) {
	var tp, fn, fp int
	for _, e := range Corpus() {
		r := analyze(t, e.Src)
		flagged := len(e.WantCodes) > 0 && func() bool {
			for _, c := range e.WantCodes {
				if !r.HasCode(c) {
					return false
				}
			}
			return true
		}()
		switch {
		case e.Vulnerable && len(e.WantCodes) > 0 && flagged:
			tp++
		case e.Vulnerable && len(e.WantCodes) > 0:
			fn++
		case !e.Vulnerable && len(r.Diags) > 0:
			fp++
		}
	}
	if fn != 0 {
		t.Errorf("false negatives: %d", fn)
	}
	if fp != 0 {
		t.Errorf("false positives on safe variants: %d", fp)
	}
	if tp == 0 {
		t.Error("no true positives")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"class {",
		"class A { int };",
		"void f( { }",
		"void f() { int ; }",
		"void f() { x = ; }",
		"void f() { if (x { } }",
		"void f() { /* unterminated",
		`void f() { char *s = "unterminated; }`,
		"void f() { new; }",
	}
	for _, src := range tests {
		if _, err := Analyze(src, Options{}); err == nil {
			t.Errorf("Analyze(%q) succeeded", src)
		}
	}
}

func TestParserAcceptsSubsetForms(t *testing.T) {
	src := `
// line comment
/* block
   comment */
class Base {
 public:
  virtual char getInfo();
  double gpa;
 private:
  int year, semester;
};
class Derived : public Base {
 public:
  Derived() { gpa = 0; }
  int arr[3];
};
int counter = 0;
char buffer[16];
void helper(int a, char *b) {
  for (int i = 0; i < a; i = i + 1) { counter = counter + i; }
  while (counter > 100) { counter = counter - 1; }
  if (a == 1) { counter = 0; } else { counter = 1; }
  return;
}
`
	r := analyze(t, src)
	if len(r.Prog.Classes) != 2 || len(r.Prog.Funcs) != 1 || len(r.Prog.Globals) != 2 {
		t.Errorf("parsed: %d classes, %d funcs, %d globals",
			len(r.Prog.Classes), len(r.Prog.Funcs), len(r.Prog.Globals))
	}
	base := r.Prog.Classes[0]
	if len(base.Virtuals) != 1 || base.Virtuals[0] != "getInfo" {
		t.Errorf("virtuals = %v", base.Virtuals)
	}
	if len(base.Fields) != 3 {
		t.Errorf("fields = %d, want 3 (gpa, year, semester)", len(base.Fields))
	}
	if len(r.Diags) != 0 {
		t.Errorf("clean program produced diags: %v", r.Diags)
	}
}

func TestEveryDiagnosticCarriesASuggestion(t *testing.T) {
	for _, e := range Corpus() {
		r := analyze(t, e.Src)
		for _, d := range r.Diags {
			if d.Suggestion == "" {
				t.Errorf("%s: %s has no remediation suggestion", e.Name, d.Code)
			}
		}
	}
	// The suggestion map covers every emitted code.
	for code := range suggestions {
		if len(code) != 5 || code[:2] != "PN" {
			t.Errorf("malformed code %q in suggestions", code)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "PN001", Sev: SevError, Pos: Pos{Line: 3, Col: 7}, Msg: "overflow"}
	if got := d.String(); got != "3:7: error PN001: overflow" {
		t.Errorf("String = %q", got)
	}
}

func TestSeverityString(t *testing.T) {
	if SevError.String() != "error" || SevWarning.String() != "warning" || SevInfo.String() != "info" {
		t.Error("severity names wrong")
	}
}
