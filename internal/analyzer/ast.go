package analyzer

// SrcType is a type as written in source: a base name ("int", "char",
// "Student"), pointer depth, and an optional array length expression
// attached by the declarator.
type SrcType struct {
	Name     string
	Stars    int
	ArrayLen Expr // nil unless declared as an array
}

// IsPtr reports pointer types.
func (t SrcType) IsPtr() bool { return t.Stars > 0 }

// Program is a parsed translation unit.
type Program struct {
	Classes []*ClassDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// ClassDecl is a class definition: fields and virtual method names.
type ClassDecl struct {
	Pos      Pos
	Name     string
	Bases    []string
	Fields   []*VarDecl
	Virtuals []string
}

// VarDecl declares a variable, field, parameter, or global.
type VarDecl struct {
	Pos  Pos
	Type SrcType
	Name string
	Init Expr // nil when absent
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Ret    SrcType
	Name   string
	Params []*VarDecl
	Body   *Block
}

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a for loop.
type ForStmt struct {
	Pos  Pos
	Init Stmt // nil when absent
	Cond Expr // nil when absent
	Post Expr // nil when absent
	Body Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for bare return
}

func (s *DeclStmt) stmtPos() Pos   { return s.Decl.Pos }
func (s *ExprStmt) stmtPos() Pos   { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *WhileStmt) stmtPos() Pos  { return s.Pos }
func (s *ForStmt) stmtPos() Pos    { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos { return s.Pos }
func (b *Block) stmtPos() Pos      { return b.Pos }

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// Ident is a name reference.
type Ident struct {
	Pos  Pos
	Name string
}

// Number is an integer or float literal.
type Number struct {
	Pos     Pos
	Text    string
	Val     int64
	Float   float64
	IsFloat bool
}

// StringLit is a string literal.
type StringLit struct {
	Pos Pos
	Val string
}

// Unary is a prefix operator expression (&x, *p, -n, !b).
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is an infix operator expression; ">>" with leftmost operand cin
// is the input-extraction idiom.
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Assign is L = R (and compound forms, with Op holding "=", "+=", ...).
type Assign struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Call is a function or method call; Recv is non-nil for obj.m(...) and
// obj->m(...).
type Call struct {
	Pos  Pos
	Recv Expr // nil for plain calls
	Name string
	Args []Expr
}

// Member is X.Name or X->Name.
type Member struct {
	Pos  Pos
	X    Expr
	Op   string // "." or "->"
	Name string
}

// Index is X[I].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

// New is a new-expression: `new T(...)`, `new T[n]`,
// `new (place) T(...)`, or `new (place) T[n]`.
type New struct {
	Pos       Pos
	Placement Expr // nil for ordinary new
	Type      SrcType
	ArrayLen  Expr // nil for object form
	CtorArgs  []Expr
}

// Sizeof is sizeof(T) or sizeof(expr); only the type form is resolved.
type Sizeof struct {
	Pos  Pos
	Type SrcType
}

func (e *Ident) exprPos() Pos     { return e.Pos }
func (e *Number) exprPos() Pos    { return e.Pos }
func (e *StringLit) exprPos() Pos { return e.Pos }
func (e *Unary) exprPos() Pos     { return e.Pos }
func (e *Binary) exprPos() Pos    { return e.Pos }
func (e *Assign) exprPos() Pos    { return e.Pos }
func (e *Call) exprPos() Pos      { return e.Pos }
func (e *Member) exprPos() Pos    { return e.Pos }
func (e *Index) exprPos() Pos     { return e.Pos }
func (e *New) exprPos() Pos       { return e.Pos }
func (e *Sizeof) exprPos() Pos    { return e.Pos }
