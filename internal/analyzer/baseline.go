package analyzer

import "fmt"

// BaselineFinding is one hit from the traditional scanner.
type BaselineFinding struct {
	Pos  Pos
	Func string
	Msg  string
}

// String renders "line:col: risky call ...".
func (f BaselineFinding) String() string {
	return fmt.Sprintf("%s: risky call to %s: %s", f.Pos, f.Func, f.Msg)
}

// riskyCalls is the classic ITS4/Flawfinder-style pattern list: unbounded
// string functions. Note what is absent: placement new is not a call and
// carries no recognisable sink name, which is the paper's §1 observation
// that "none of the existing tools can detect buffer overflow
// vulnerabilities due to placement new".
var riskyCalls = map[string]string{
	"strcpy":   "unbounded copy into destination buffer",
	"strcat":   "unbounded append into destination buffer",
	"gets":     "reads unbounded input",
	"sprintf":  "unbounded formatted write",
	"scanf":    "%s conversions read unbounded input",
	"vsprintf": "unbounded formatted write",
}

// Baseline runs the traditional scanner: a token-level sweep for calls to
// well-known dangerous C string functions. It is the comparator for
// experiment E16; it finds classic overflows and none of the
// placement-new ones.
func Baseline(src string) ([]BaselineFinding, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	var out []BaselineFinding
	for i := 0; i+1 < len(toks); i++ {
		t := toks[i]
		if t.Kind != TokIdent {
			continue
		}
		msg, risky := riskyCalls[t.Text]
		if !risky {
			continue
		}
		if toks[i+1].Kind == TokPunct && toks[i+1].Text == "(" {
			out = append(out, BaselineFinding{
				Pos:  Pos{Line: t.Line, Col: t.Col},
				Func: t.Text,
				Msg:  msg,
			})
		}
	}
	return out, nil
}
