package analyzer

// CorpusEntry is one program of the evaluation corpus: a mini-C++ source
// modelled on a paper listing, with the diagnostic codes the analyzer is
// expected to raise (empty for the safe variants).
type CorpusEntry struct {
	Name string
	Ref  string
	// Vulnerable marks entries that contain a real placement-new flaw.
	Vulnerable bool
	Src        string
	// WantCodes are the analyzer codes expected on this entry.
	WantCodes []string
}

// classPrelude is the running example of Listing 1.
const classPrelude = `
class Student {
 public:
  double gpa;
  int year;
  int semester;
};
class GradStudent : public Student {
 public:
  int ssn[3];
};
`

// Corpus returns the E16 evaluation corpus: the paper's listings encoded
// in the analyzable subset, plus safe variants exercising the §5.1
// correct-coding patterns.
func Corpus() []CorpusEntry {
	return []CorpusEntry{
		{
			Name: "L4-construct-overflow", Ref: "§3.1 Listing 4", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: classPrelude + `
void addStudent() {
  Student stud;
  GradStudent *st = new (&stud) GradStudent();
}
`,
		},
		{
			Name: "L11-bss-overflow", Ref: "§3.5 Listing 11", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: classPrelude + `
Student stud1;
Student stud2;
void addStudent(bool isGradStudent) {
  if (isGradStudent) {
    GradStudent *st = new (&stud1) GradStudent();
    cin >> st->ssn[0] >> st->ssn[1] >> st->ssn[2];
  } else {
    Student *st2 = new (&stud2) Student();
  }
}
`,
		},
		{
			Name: "L13-stack-ret", Ref: "§3.6.1 Listing 13", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: classPrelude + `
void addStudent(bool isGradStudent) {
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    int i = 0;
    int dssn = 0;
    while (i < 3) {
      cin >> dssn;
      if (dssn > 0) { gs->ssn[i] = dssn; }
      i = i + 1;
    }
  }
}
`,
		},
		{
			Name: "L16-member-var", Ref: "§3.8.1 Listing 16", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: classPrelude + `
void addStudent(bool isGradStudent) {
  Student first(3.9, 2008, 2);
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[0];
    cin >> gs->ssn[1];
  }
}
`,
		},
		{
			Name: "L10-internal-overflow", Ref: "§3.4 Listing 10", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: classPrelude + `
class MobilePlayer {
 public:
  Student stud1;
  Student stud2;
  int n;
};
MobilePlayer player;
void addStudentPlayer() {
  GradStudent *st = new (&player.stud1) GradStudent();
}
`,
		},
		{
			Name: "L19-two-step", Ref: "§4.1 Listing 19", Vulnerable: true,
			WantCodes: []string{"PN002"},
			Src: classPrelude + `
char mem_pool[32];
void sortAndAddUname(char *uname) {
  int n_unames = 0;
  cin >> n_unames;
  char *buf = new (mem_pool) char[n_unames * 8];
  strncpy(buf, uname, n_unames * 8);
}
`,
		},
		{
			Name: "L21-infoleak-array", Ref: "§4.3 Listing 21", Vulnerable: true,
			WantCodes: []string{"PN006"},
			Src: `
char mem_pool[64];
void handle() {
  read_file(mem_pool);
  char *userdata = new (mem_pool) char[32];
  store(userdata);
}
`,
		},
		{
			Name: "L22-infoleak-object", Ref: "§4.3 Listing 22", Vulnerable: true,
			WantCodes: []string{"PN006"},
			Src: classPrelude + `
void handle() {
  GradStudent *gst = new GradStudent();
  cin >> gst->ssn[0];
  Student *st = new (gst) Student();
  store(st);
}
`,
		},
		{
			Name: "L23-memleak", Ref: "§4.5 Listing 23", Vulnerable: true,
			WantCodes: []string{"PN007"},
			Src: classPrelude + `
void addStudent() {
  GradStudent *stud = new GradStudent();
  Student *st = new (stud) Student();
  stud = 0;
}
`,
		},
		{
			Name: "unknown-arena", Ref: "§5.1 (aliasing limits)", Vulnerable: true,
			WantCodes: []string{"PN003"},
			Src: classPrelude + `
void place(void *where) {
  GradStudent *gs = new (where) GradStudent();
}
`,
		},
		{
			Name: "unrelated-type", Ref: "§2.5(3)", Vulnerable: true,
			WantCodes: []string{"PN005"},
			Src: classPrelude + `
class Account {
 public:
  double balance;
  int id;
  int flags;
  int pad;
  int pad2;
  int pad3;
};
Account acct;
void misuse() {
  Student *st = new (&acct) Student();
}
`,
		},
		{
			Name: "vptr-sizeof", Ref: "§3.8.2 / §5.1 (\"compilers often add member variables such as the virtual table pointer\")", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: `
class Shape {
 public:
  virtual char draw();
  int color;
};
class Circle : public Shape {
 public:
  int radius;
};
Shape s;
void render() {
  Circle *c = new (&s) Circle();
}
`,
		},
		{
			Name: "interproc-tainted-size", Ref: "§3.3 (inter-procedural flow)", Vulnerable: true,
			WantCodes: []string{"PN002"},
			Src: `
char mem_pool[32];
void place(int n) {
  char *buf = new (mem_pool) char[n];
}
void handler() {
  int n = 0;
  cin >> n;
  place(n);
}
`,
		},
		{
			Name: "interproc-deep-chain", Ref: "§3.3 (inter-procedural flow)", Vulnerable: true,
			WantCodes: []string{"PN002"},
			Src: `
char mem_pool[32];
void inner(int k) {
  char *buf = new (mem_pool) char[k];
}
void middle(int m) {
  inner(m + 1);
}
void handler() {
  int n = 0;
  cin >> n;
  middle(n);
}
`,
		},
		{
			Name: "safe-interproc-constant", Ref: "§3.3 (constant propagation)", Vulnerable: false,
			Src: `
char mem_pool[64];
void place(int n) {
  char *buf = new (mem_pool) char[n];
}
void handler() {
  place(16);
  place(16);
}
`,
		},
		{
			Name: "interproc-constant-overflow", Ref: "§3.3 (constant propagation)", Vulnerable: true,
			WantCodes: []string{"PN001"},
			Src: `
char mem_pool[32];
void place(int n) {
  char *buf = new (mem_pool) char[n];
}
void handler() {
  place(128);
}
`,
		},
		{
			Name: "safe-guarded-placement", Ref: "§5.1 correct coding", Vulnerable: false,
			Src: classPrelude + `
void addStudent() {
  Student stud;
  if (sizeof(GradStudent) <= sizeof(Student)) {
    GradStudent *st = new (&stud) GradStudent();
  }
}
`,
		},
		{
			Name: "safe-same-type", Ref: "§5.1", Vulnerable: false,
			Src: classPrelude + `
Student stud;
void reinit() {
  Student *st = new (&stud) Student();
}
`,
		},
		{
			Name: "safe-sanitized-pool", Ref: "§5.1 sanitization", Vulnerable: false,
			Src: `
char mem_pool[64];
void handle() {
  read_file(mem_pool);
  memset(mem_pool, 0, 64);
  char *userdata = new (mem_pool) char[32];
  store(userdata);
}
`,
		},
		{
			Name: "safe-bounded-array", Ref: "§5.1", Vulnerable: false,
			Src: `
char mem_pool[64];
void handle(char *uname) {
  char *buf = new (mem_pool) char[32];
  strncpy(buf, uname, 32);
}
`,
		},
		{
			Name: "safe-placement-delete", Ref: "§5.1 placement delete", Vulnerable: false,
			Src: classPrelude + `
void addStudent() {
  GradStudent *stud = new GradStudent();
  placement_delete(stud);
  stud = 0;
}
`,
		},
		{
			Name: "classic-strcpy", Ref: "control for the baseline scanner", Vulnerable: true,
			// A traditional overflow: the analyzer's placement checks are
			// silent here, the baseline scanner is not.
			WantCodes: nil,
			Src: `
char dst[16];
void copy(char *src) {
  strcpy(dst, src);
}
`,
		},
	}
}
