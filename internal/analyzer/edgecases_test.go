package analyzer

import (
	"sort"
	"testing"
)

// Edge cases the foundry generator exercises, pinned as a table: each
// entry states exactly which overflow diagnostics the construct must
// (and must not) draw. The loop-index entries are the regression for a
// real bug the foundry bring-up surfaced: a loop-carried index used to
// be const-folded at its first-iteration value, so a placement walking
// an arena (`new (&pool[i]) C()` with i advancing) resolved at offset
// 0 and later-iteration overflows went unreported. Loop bodies now
// widen reassigned variables, so such destinations are honestly
// unresolvable (PN003).
func TestAnalyzerEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // exact sorted overflow/diagnostic codes
	}{
		{
			name: "placement in loop, loop-carried index",
			src: `class C0 { public: int f0; };
char pool[8];
void trigger() {
  int i = 0;
  while (i < 4) {
    C0 *p = new (&pool[i]) C0();
    i = i + 1;
  }
}
`,
			want: []string{"PN003"},
		},
		{
			name: "placement in loop, constant index, overflow",
			src: `class C0 { public: int f0; };
char pool[2];
void trigger() {
  int j = 0;
  while (j < 4) {
    C0 *p = new (&pool[0]) C0();
    j = j + 1;
  }
}
`,
			want: []string{"PN001"},
		},
		{
			name: "placement in loop, constant index, fits",
			src: `class C0 { public: int f0; };
char pool[64];
void trigger() {
  int j = 0;
  while (j < 4) {
    C0 *p = new (&pool[4]) C0();
    j = j + 1;
  }
}
`,
			want: nil,
		},
		{
			name: "index constant-propagated outside loops",
			src: `class C0 { public: int f0; };
char pool[4];
void trigger() {
  int i = 1;
  i = i + 1;
  C0 *p = new (&pool[i]) C0();
}
`,
			// i folds to 2; 4 bytes at offset 2 of a 4-byte pool.
			want: []string{"PN001"},
		},
		{
			name: "tainted length through two call hops",
			src: `char pool[8];
void inner(int n) {
  char *b = new (pool) char[n];
}
void middle(int m) {
  inner(m + 1);
}
void trigger() {
  int k = 0;
  cin >> k;
  middle(k);
}
`,
			want: []string{"PN002"},
		},
		{
			name: "constant length through two call hops",
			// Constants do not propagate across calls (no
			// interprocedural const folding), so the length is honestly
			// not statically known — PN004, never a false PN001.
			src: `char pool[8];
void inner(int n) {
  char *b = new (pool) char[n];
}
void middle(int m) {
  inner(m + 1);
}
void trigger() {
  int k = 4;
  middle(k);
}
`,
			want: []string{"PN004"},
		},
		{
			name: "zero-length placement array-new",
			src: `char pool[8];
void trigger() {
  char *b = new (pool) char[0];
}
`,
			want: nil, // zero bytes fit anywhere
		},
		{
			name: "zero-length array-new into zero pool",
			src: `char pool[0];
void trigger() {
  char *b = new (pool) char[0];
}
`,
			want: nil,
		},
		{
			name: "nonzero placement into zero pool",
			src: `char pool[0];
void trigger() {
  char *b = new (pool) char[4];
}
`,
			want: []string{"PN001"},
		},
	}
	overflowCodes := map[string]bool{"PN001": true, "PN002": true, "PN003": true, "PN004": true}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Analyze(tc.src, Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			var got []string
			for _, c := range res.Codes() {
				if overflowCodes[c] {
					got = append(got, c)
				}
			}
			sort.Strings(got)
			want := append([]string(nil), tc.want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("codes = %v, want %v (all: %v)", got, want, res.Codes())
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("codes = %v, want %v (all: %v)", got, want, res.Codes())
				}
			}
		})
	}
}
