package analyzer_test

import (
	"fmt"

	"repro/internal/analyzer"
)

// Analyse the paper's Listing 4 shape and print the diagnostic.
func ExampleAnalyze() {
	src := `
class Student {
 public:
  double gpa;
  int year;
  int semester;
};
class GradStudent : public Student {
 public:
  int ssn[3];
};
void addStudent() {
  Student stud;
  GradStudent *st = new (&stud) GradStudent();
}
`
	r, err := analyzer.Analyze(src, analyzer.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, d := range r.Diags {
		fmt.Println(d)
	}
	// Output:
	// 14:21: error PN001: placement of GradStudent (28 bytes) overflows stud (16 bytes)
}

// The traditional scanner flags classic string functions and nothing
// about placement new.
func ExampleBaseline() {
	src := `
char dst[8];
void f(char *s) {
  strcpy(dst, s);
  Student *p = new (&dst) Student();
}
`
	fs, err := analyzer.Baseline(src)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, f := range fs {
		fmt.Println(f)
	}
	// Output:
	// 4:3: risky call to strcpy: unbounded copy into destination buffer
}
