package analyzer

import "testing"

// FuzzAnalyze checks that arbitrary inputs never panic the front end or
// the checks: every input either parses and analyses or returns an error.
func FuzzAnalyze(f *testing.F) {
	for _, e := range Corpus() {
		f.Add(e.Src)
	}
	f.Add("class A {")
	f.Add("void f() { new (x) ; }")
	f.Add("int x = /* unterminated")
	f.Add(`void f() { char *s = "unterminated`)
	f.Add("class A : public A {};")
	f.Add("void f() { for(;;) {} }")
	f.Add("void f(void) { sizeof(int); }")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Analyze(src, Options{})
		if err != nil {
			return
		}
		// Accepted programs produce well-formed diagnostics.
		for _, d := range r.Diags {
			if d.Code == "" || d.Pos.Line < 1 {
				t.Fatalf("malformed diagnostic %+v", d)
			}
		}
	})
}

// FuzzBaseline checks the traditional scanner's robustness.
func FuzzBaseline(f *testing.F) {
	f.Add("strcpy(a, b);")
	f.Add("void f() { gets(buf); }")
	f.Add("\"unterminated")
	f.Fuzz(func(t *testing.T, src string) {
		fs, err := Baseline(src)
		if err != nil {
			return
		}
		for _, x := range fs {
			if x.Func == "" || x.Pos.Line < 1 {
				t.Fatalf("malformed finding %+v", x)
			}
		}
	})
}
