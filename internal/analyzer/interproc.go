package analyzer

// Interprocedural analysis (§3.3: "there is a data flow path
// (intra-procedural or inter-procedural) from remoteobj to another object
// obj"). Instead of conservatively tainting every parameter, the checker
// computes a fixpoint over the call graph:
//
//   - a parameter is tainted if any call site passes a tainted argument;
//   - a parameter has a known constant value if every call site passes
//     the same constant;
//   - functions never called inside the translation unit are entry points
//     reachable from outside (main, exported handlers): their parameters
//     are conservatively tainted.
//
// Both lattices are finite and movement is monotone (taint: false→true;
// consts: unknown → value → conflict), so iteration terminates.

// constLattice is the per-parameter constant-propagation state.
type constLattice struct {
	seen     bool // at least one call site analysed
	val      int64
	conflict bool // call sites disagree (or pass non-constants)
}

func (c *constLattice) mergeValue(v int64) {
	if !c.seen {
		c.seen, c.val = true, v
		return
	}
	if c.conflict || c.val != v {
		c.conflict = true
	}
}

func (c *constLattice) mergeUnknown() {
	c.seen = true
	c.conflict = true
}

// known reports the propagated constant, if any.
func (c *constLattice) known() (int64, bool) {
	return c.val, c.seen && !c.conflict
}

// funcSummary is the cross-pass state of one function's parameters.
type funcSummary struct {
	called bool
	taint  []bool
	consts []constLattice
}

func newSummary(fn *FuncDecl) *funcSummary {
	return &funcSummary{
		taint:  make([]bool, len(fn.Params)),
		consts: make([]constLattice, len(fn.Params)),
	}
}

// equalSummaries compares the monotone parts of two summary maps.
func equalSummaries(a, b map[string]*funcSummary) bool {
	for name, sa := range a {
		sb := b[name]
		if sb == nil || sa.called != sb.called {
			return false
		}
		for i := range sa.taint {
			if sa.taint[i] != sb.taint[i] || sa.consts[i] != sb.consts[i] {
				return false
			}
		}
	}
	return true
}

func cloneSummaries(in map[string]*funcSummary) map[string]*funcSummary {
	out := make(map[string]*funcSummary, len(in))
	for name, s := range in {
		cp := &funcSummary{called: s.called}
		cp.taint = append([]bool(nil), s.taint...)
		cp.consts = append([]constLattice(nil), s.consts...)
		out[name] = cp
	}
	return out
}

// collectCalledness walks every function body syntactically to find which
// program functions are called anywhere in the unit.
func collectCalledness(prog *Program, summaries map[string]*funcSummary) {
	var walkExpr func(Expr)
	var walkStmt func(Stmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Unary:
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Member:
			walkExpr(x.X)
		case *Index:
			walkExpr(x.X)
			walkExpr(x.I)
		case *Call:
			if x.Recv == nil {
				if s, ok := summaries[x.Name]; ok {
					s.called = true
				}
			} else {
				walkExpr(x.Recv)
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *New:
			if x.Placement != nil {
				walkExpr(x.Placement)
			}
			if x.ArrayLen != nil {
				walkExpr(x.ArrayLen)
			}
			for _, a := range x.CtorArgs {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *DeclStmt:
			if st.Decl.Init != nil {
				walkExpr(st.Decl.Init)
			}
		case *ExprStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walkStmt(st.Body)
		case *ReturnStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		}
	}
	for _, fn := range prog.Funcs {
		walkStmt(fn.Body)
	}
}

// recordCallFacts merges one analysed call site into the callee summary.
func (c *checker) recordCallFacts(x *Call) {
	s, ok := c.summaries[x.Name]
	if !ok || x.Recv != nil {
		return
	}
	for i := range s.taint {
		if i >= len(x.Args) {
			// Short call: remaining params see no new facts.
			break
		}
		if c.isTainted(x.Args[i]) {
			s.taint[i] = true
		}
		if v, ok := c.evalConst(x.Args[i]); ok {
			s.consts[i].mergeValue(v)
		} else {
			s.consts[i].mergeUnknown()
		}
	}
}
