package analyzer

import (
	"strings"
	"testing"
)

func TestInterprocTaintThroughCall(t *testing.T) {
	src := `
char pool[32];
void place(int n) {
  char *b = new (pool) char[n];
}
void handler() {
  int n = 0;
  cin >> n;
  place(n);
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("tainted argument not propagated into callee: %v", r.Diags)
	}
}

func TestInterprocTaintThroughDeepChain(t *testing.T) {
	src := `
char pool[32];
void level3(int c) { char *b = new (pool) char[c]; }
void level2(int bb) { level3(bb * 2); }
void level1(int a) { level2(a + 1); }
void handler() {
  int n = 0;
  cin >> n;
  level1(n);
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("taint not propagated through three-deep chain: %v", r.Diags)
	}
}

func TestInterprocConstantPropagation(t *testing.T) {
	safe := `
char pool[64];
void place(int n) { char *b = new (pool) char[n]; }
void handler() { place(16); }
`
	r := analyze(t, safe)
	if len(r.Diags) != 0 {
		t.Errorf("constant call site produced diagnostics: %v", r.Diags)
	}
	overflow := strings.Replace(safe, "place(16)", "place(128)", 1)
	r = analyze(t, overflow)
	if !r.HasCode("PN001") {
		t.Errorf("propagated constant overflow not flagged: %v", r.Diags)
	}
}

func TestInterprocConflictingConstantsFallBackToUnknown(t *testing.T) {
	src := `
char pool[64];
void place(int n) { char *b = new (pool) char[n]; }
void handler() {
  place(16);
  place(32);
}
`
	r := analyze(t, src)
	// Call sites disagree: the length is unknown but NOT tainted.
	if !r.HasCode("PN004") {
		t.Errorf("conflicting constants should yield PN004: %v", r.Diags)
	}
	if r.HasCode("PN002") || r.HasCode("PN001") {
		t.Errorf("conflicting constants misclassified: %v", r.Diags)
	}
}

func TestUncalledFunctionParamsAreEntryTainted(t *testing.T) {
	// A function with no in-unit callers is externally reachable: its
	// parameters stay conservatively tainted.
	src := `
char pool[32];
void exported_handler(int n) {
  char *b = new (pool) char[n];
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("entry-point parameter not treated as tainted: %v", r.Diags)
	}
}

func TestInterprocMixedTaintedAndConstantSites(t *testing.T) {
	// One tainted call site poisons the parameter for all sites.
	src := `
char pool[64];
void place(int n) { char *b = new (pool) char[n]; }
void handler() {
  place(16);
  int n = 0;
  cin >> n;
  place(n);
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("mixed call sites not treated as tainted: %v", r.Diags)
	}
}

func TestInterprocFixpointTerminatesOnRecursion(t *testing.T) {
	src := `
char pool[32];
void even(int n);
void odd(int n) { even(n - 1); }
void even2(int n) {
  char *b = new (pool) char[n];
  odd(n);
}
void handler() {
  int n = 0;
  cin >> n;
  even2(n);
}
`
	// The declaration-only "void even(int n);" form is not in the subset;
	// use a mutually recursive pair that is.
	src = `
char pool[32];
int depth = 0;
void pong(int n) {
  char *b = new (pool) char[n];
}
void ping(int n) {
  pong(n);
  ping(n - 1);
}
void handler() {
  int n = 0;
  cin >> n;
  ping(n);
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("recursive propagation failed: %v", r.Diags)
	}
}

func TestLoopCarriedTaint(t *testing.T) {
	// The taint is established late in the loop body; the placement early
	// in the body only sees it on the second conceptual iteration.
	src := `
char pool[32];
void serve() {
  int n = 8;
  while (n > 0) {
    char *b = new (pool) char[n];
    cin >> n;
  }
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("loop-carried taint missed: %v", r.Diags)
	}
	// And the diagnostics are deduplicated despite the double analysis.
	seen := map[string]int{}
	for _, d := range r.Diags {
		key := d.Code + d.Pos.String() + d.Msg
		seen[key]++
		if seen[key] > 1 {
			t.Errorf("duplicate diagnostic: %v", d)
		}
	}
}

func TestForLoopCarriedTaint(t *testing.T) {
	src := `
char pool[32];
void serve() {
  for (int i = 0; i < 4; i = i + 1) {
    char *b = new (pool) char[i * 8];
    cin >> i;
  }
}
`
	r := analyze(t, src)
	if !r.HasCode("PN002") {
		t.Errorf("for-loop carried taint missed: %v", r.Diags)
	}
}

func TestIndexedArenaResolution(t *testing.T) {
	// Placement mid-pool: the bound is the remaining capacity.
	over := `
char pool[64];
void f() {
  char *b = new (&pool[48]) char[32];
}
`
	r := analyze(t, over)
	if !r.HasCode("PN001") {
		t.Errorf("mid-pool overflow not flagged: %v", r.Diags)
	}
	fit := `
char pool[64];
void f() {
  char *b = new (&pool[48]) char[16];
}
`
	r = analyze(t, fit)
	if len(r.Diags) != 0 {
		t.Errorf("fitting mid-pool placement flagged: %v", r.Diags)
	}
	// A tainted index defeats resolution: unverifiable, not provably bad.
	tainted := `
char pool[64];
void f() {
  int i = 0;
  cin >> i;
  char *b = new (&pool[i]) char[16];
}
`
	r = analyze(t, tainted)
	if !r.HasCode("PN003") {
		t.Errorf("tainted index should be unresolvable: %v", r.Diags)
	}
}

func TestStructKeywordAccepted(t *testing.T) {
	src := `
struct Point {
 public:
  int x;
  int y;
};
Point p;
void f() {
  Point *q = new (&p) Point();
}
`
	r := analyze(t, src)
	if len(r.Diags) != 0 {
		t.Errorf("struct-based program produced diags: %v", r.Diags)
	}
	if len(r.Prog.Classes) != 1 || r.Prog.Classes[0].Name != "Point" {
		t.Errorf("struct not parsed as class: %+v", r.Prog.Classes)
	}
}

func TestConstLattice(t *testing.T) {
	var c constLattice
	if _, ok := c.known(); ok {
		t.Error("bottom reported known")
	}
	c.mergeValue(5)
	if v, ok := c.known(); !ok || v != 5 {
		t.Errorf("single value: %d %v", v, ok)
	}
	c.mergeValue(5)
	if _, ok := c.known(); !ok {
		t.Error("agreeing values lost")
	}
	c.mergeValue(6)
	if _, ok := c.known(); ok {
		t.Error("conflict still known")
	}
	var d constLattice
	d.mergeUnknown()
	if _, ok := d.known(); ok {
		t.Error("unknown reported known")
	}
}
