package analyzer

import "fmt"

// lexer produces tokens from mini-C++ source. // and /* */ comments are
// skipped.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("analyzer: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuation, longest first.
var multiPunct = []string{
	"<<=", ">>=", "->", "::", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peekByte()
	switch {
	case isAlpha(c):
		start := l.pos
		for l.pos < len(l.src) && (isAlpha(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: startLine, Col: startCol}, nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == 'x' || l.peekByte() == 'X' ||
			l.peekByte() >= 'a' && l.peekByte() <= 'f' || l.peekByte() >= 'A' && l.peekByte() <= 'F' || l.peekByte() == '.') {
			l.advance()
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: startLine, Col: startCol}, nil
	case c == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '"' {
			if l.peekByte() == '\\' {
				l.advance()
				if l.pos >= len(l.src) {
					break
				}
			}
			l.advance()
		}
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated string literal")
		}
		text := l.src[start:l.pos]
		l.advance() // closing quote
		return Token{Kind: TokString, Text: text, Line: startLine, Col: startCol}, nil
	case c == '\'':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '\'' {
			if l.peekByte() == '\\' {
				l.advance()
			}
			if l.pos < len(l.src) {
				l.advance()
			}
		}
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated character literal")
		}
		text := l.src[start:l.pos]
		l.advance()
		return Token{Kind: TokNumber, Text: text, Line: startLine, Col: startCol}, nil
	default:
		for _, mp := range multiPunct {
			if len(l.src)-l.pos >= len(mp) && l.src[l.pos:l.pos+len(mp)] == mp {
				for range mp {
					l.advance()
				}
				return Token{Kind: TokPunct, Text: mp, Line: startLine, Col: startCol}, nil
			}
		}
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Line: startLine, Col: startCol}, nil
	}
}

// lexAll tokenizes the whole input (including the trailing EOF token).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
