package analyzer

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []Token
	pos     int
	classes map[string]bool // class names seen so far, for decl/expr disambiguation
}

// ParseProgram parses a mini-C++ translation unit.
func ParseProgram(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, classes: make(map[string]bool)}
	return p.program()
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	if !p.at(text) {
		return Token{}, p.errf("expected %q, found %s", text, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("analyzer: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) posOf(t Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

var builtinTypes = map[string]bool{
	"bool": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "void": true, "unsigned": true,
}

// atType reports whether the current token begins a type.
func (p *parser) atType() bool {
	t := p.cur()
	switch t.Kind {
	case TokKeyword:
		return builtinTypes[t.Text]
	case TokIdent:
		return p.classes[t.Text]
	default:
		return false
	}
}

// typeName parses a base type name (possibly "unsigned int" etc.) and
// pointer stars.
func (p *parser) typeName() (SrcType, error) {
	t := p.cur()
	if !p.atType() {
		return SrcType{}, p.errf("expected type, found %s", t)
	}
	name := p.advance().Text
	if name == "unsigned" && p.atType() && p.cur().Kind == TokKeyword {
		name = "unsigned " + p.advance().Text
	}
	st := SrcType{Name: name}
	for p.accept("*") {
		st.Stars++
	}
	return st, nil
}

// program parses the translation unit.
func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		switch {
		case p.at("class") || p.at("struct"):
			cd, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, cd)
		default:
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			nameTok := p.cur()
			if nameTok.Kind != TokIdent {
				return nil, p.errf("expected declarator name, found %s", nameTok)
			}
			p.advance()
			if p.at("(") {
				fn, err := p.funcRest(ty, nameTok)
				if err != nil {
					return nil, err
				}
				prog.Funcs = append(prog.Funcs, fn)
				continue
			}
			decls, err := p.varRest(ty, nameTok)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, decls...)
		}
	}
	return prog, nil
}

// classDecl parses `class Name [: [public] Base, ...] { members };`.
func (p *parser) classDecl() (*ClassDecl, error) {
	kw := p.advance() // class / struct
	nameTok := p.cur()
	if nameTok.Kind != TokIdent {
		return nil, p.errf("expected class name")
	}
	p.advance()
	cd := &ClassDecl{Pos: p.posOf(kw), Name: nameTok.Text}
	p.classes[cd.Name] = true
	if p.accept(":") {
		for {
			p.accept("public")
			p.accept("private")
			p.accept("protected")
			base := p.cur()
			if base.Kind != TokIdent {
				return nil, p.errf("expected base class name")
			}
			p.advance()
			cd.Bases = append(cd.Bases, base.Text)
			if !p.accept(",") {
				break
			}
		}
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.at("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unterminated class body")
		}
		// Access specifiers.
		if p.at("public") || p.at("private") || p.at("protected") {
			p.advance()
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			continue
		}
		// Virtual method declarations.
		if p.accept("virtual") {
			if _, err := p.typeName(); err != nil {
				return nil, err
			}
			m := p.cur()
			if m.Kind != TokIdent {
				return nil, p.errf("expected virtual method name")
			}
			p.advance()
			if err := p.skipParens(); err != nil {
				return nil, err
			}
			if !p.accept(";") {
				if err := p.skipBraces(); err != nil {
					return nil, err
				}
			}
			cd.Virtuals = append(cd.Virtuals, m.Text)
			continue
		}
		// Constructor (name matches class): skip.
		if p.cur().Kind == TokIdent && p.cur().Text == cd.Name && p.toks[p.pos+1].Text == "(" {
			p.advance()
			if err := p.skipParens(); err != nil {
				return nil, err
			}
			// Optional member-initialiser list.
			if p.accept(":") {
				for !p.at("{") && !p.at(";") && p.cur().Kind != TokEOF {
					p.advance()
				}
			}
			if !p.accept(";") {
				if err := p.skipBraces(); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Field declaration(s).
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		nameTok := p.cur()
		if nameTok.Kind != TokIdent {
			return nil, p.errf("expected field name")
		}
		p.advance()
		// Non-virtual method definitions inside the class body: skip.
		if p.at("(") {
			if err := p.skipParens(); err != nil {
				return nil, err
			}
			if !p.accept(";") {
				if err := p.skipBraces(); err != nil {
					return nil, err
				}
			}
			continue
		}
		decls, err := p.varRest(ty, nameTok)
		if err != nil {
			return nil, err
		}
		cd.Fields = append(cd.Fields, decls...)
	}
	p.advance() // }
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return cd, nil
}

// varRest parses the remainder of a (possibly comma-separated) variable
// declaration, having consumed the type and the first name.
func (p *parser) varRest(ty SrcType, first Token) ([]*VarDecl, error) {
	var out []*VarDecl
	nameTok := first
	for {
		d := &VarDecl{Pos: p.posOf(nameTok), Type: ty, Name: nameTok.Text}
		if p.accept("[") {
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			d.Type.ArrayLen = n
		}
		if p.accept("=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		} else if p.at("(") {
			// Direct initialisation `Student s(3.9, 2008, 2);` — treat the
			// constructor call as the initialiser.
			p.advance()
			call := &Call{Pos: d.Pos, Name: ty.Name}
			for !p.at(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			d.Init = call
		}
		out = append(out, d)
		if !p.accept(",") {
			break
		}
		nameTok = p.cur()
		if nameTok.Kind != TokIdent {
			// `double gpa, int year` (the paper's loose style): allow a
			// fresh type before the next declarator.
			if p.atType() {
				var err error
				ty, err = p.typeName()
				if err != nil {
					return nil, err
				}
				nameTok = p.cur()
			}
			if nameTok.Kind != TokIdent {
				return nil, p.errf("expected declarator name")
			}
		}
		p.advance()
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return out, nil
}

// funcRest parses a function definition after its return type and name.
func (p *parser) funcRest(ret SrcType, nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: p.posOf(nameTok), Ret: ret, Name: nameTok.Text}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.at(")") {
		// `f(void)` — an empty parameter list, not a void-typed parameter.
		if p.at("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.advance()
			break
		}
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		pn := p.cur()
		if pn.Kind != TokIdent {
			return nil, p.errf("expected parameter name")
		}
		p.advance()
		prm := &VarDecl{Pos: p.posOf(pn), Type: ty, Name: pn.Text}
		if p.accept("[") {
			if !p.at("]") {
				n, err := p.expr()
				if err != nil {
					return nil, err
				}
				prm.Type.ArrayLen = n
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		fn.Params = append(fn.Params, prm)
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: p.posOf(open)}
	for !p.at("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance()
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at("{"):
		return p.block()
	case p.at("if"):
		p.advance()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: p.posOf(t), Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.at("while"):
		p.advance()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: p.posOf(t), Cond: cond, Body: body}, nil
	case p.at("for"):
		p.advance()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Pos: p.posOf(t)}
		if !p.accept(";") {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.at(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(")") {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.at("return"):
		p.advance()
		st := &ReturnStmt{Pos: p.posOf(t)}
		if !p.at(";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.X = x
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.at("break"), p.at("continue"):
		// Loop-control statements carry no analysable state; represent
		// them as empty statements.
		p.advance()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: p.posOf(t), X: nil}, nil
	case p.at("delete"):
		p.advance()
		if p.accept("[") {
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: p.posOf(t), X: &Call{Pos: p.posOf(t), Name: "delete", Args: []Expr{x}}}, nil
	case p.at(";"):
		p.advance()
		return &ExprStmt{Pos: p.posOf(t), X: nil}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt parses a declaration or expression without the trailing ';'.
func (p *parser) simpleStmt() (Stmt, error) {
	if p.atType() {
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		nameTok := p.cur()
		if nameTok.Kind != TokIdent {
			return nil, p.errf("expected declarator name")
		}
		p.advance()
		d := &VarDecl{Pos: p.posOf(nameTok), Type: ty, Name: nameTok.Text}
		if p.accept("[") {
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			d.Type.ArrayLen = n
		}
		if p.accept("=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		} else if p.at("(") {
			p.advance()
			call := &Call{Pos: d.Pos, Name: ty.Name}
			for !p.at(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			d.Init = call
		}
		return &DeclStmt{Decl: d}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: x.exprPos(), X: x}, nil
}

// --- expressions -----------------------------------------------------------

var binaryPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4, "<<": 4, ">>": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.assignment() }

func (p *parser) assignment() (Expr, error) {
	l, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/="} {
		if p.at(op) {
			t := p.advance()
			r, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &Assign{Pos: p.posOf(t), Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) binary(minPrec int) (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			break
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			break
		}
		p.advance()
		r, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: p.posOf(t), Op: t.Text, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "&", "*", "-", "!", "++", "--":
			p.advance()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Pos: p.posOf(t), Op: t.Text, X: x}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.at("."):
			p.advance()
			name := p.cur()
			if name.Kind != TokIdent {
				return nil, p.errf("expected member name")
			}
			p.advance()
			if p.at("(") {
				args, err := p.callArgs()
				if err != nil {
					return nil, err
				}
				x = &Call{Pos: p.posOf(t), Recv: x, Name: name.Text, Args: args}
			} else {
				x = &Member{Pos: p.posOf(t), X: x, Op: ".", Name: name.Text}
			}
		case p.at("->"):
			p.advance()
			name := p.cur()
			if name.Kind != TokIdent {
				return nil, p.errf("expected member name")
			}
			p.advance()
			if p.at("(") {
				args, err := p.callArgs()
				if err != nil {
					return nil, err
				}
				x = &Call{Pos: p.posOf(t), Recv: x, Name: name.Text, Args: args}
			} else {
				x = &Member{Pos: p.posOf(t), X: x, Op: "->", Name: name.Text}
			}
		case p.at("["):
			p.advance()
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{Pos: p.posOf(t), X: x, I: i}
		case p.at("++"), p.at("--"):
			op := p.advance()
			x = &Unary{Pos: p.posOf(op), Op: "post" + op.Text, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) callArgs() ([]Expr, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.at(")") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		n := &Number{Pos: p.posOf(t), Text: t.Text}
		if strings.ContainsAny(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad float literal %q", t.Text)
			}
			n.IsFloat, n.Float = true, f
		} else {
			v, err := strconv.ParseInt(t.Text, 0, 64)
			if err != nil {
				// character literal like 'a' arrives as Number text
				if len(t.Text) >= 1 {
					v = int64(t.Text[0])
				} else {
					return nil, p.errf("bad literal %q", t.Text)
				}
			}
			n.Val = v
		}
		return n, nil
	case t.Kind == TokString:
		p.advance()
		return &StringLit{Pos: p.posOf(t), Val: t.Text}, nil
	case p.at("("):
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case p.at("new"):
		return p.newExpr()
	case p.at("sizeof"):
		p.advance()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Sizeof{Pos: p.posOf(t), Type: ty}, nil
	case p.at("true"), p.at("false"):
		p.advance()
		v := int64(0)
		if t.Text == "true" {
			v = 1
		}
		return &Number{Pos: p.posOf(t), Text: t.Text, Val: v}, nil
	case t.Kind == TokIdent:
		p.advance()
		// Plain calls and constructor-call expressions `Student(...)`
		// parse identically.
		if p.at("(") {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Pos: p.posOf(t), Name: t.Text, Args: args}, nil
		}
		return &Ident{Pos: p.posOf(t), Name: t.Text}, nil
	default:
		return nil, p.errf("unexpected token %s", t)
	}
}

// newExpr parses `new [(place)] Type [\[len\] | (args)]`.
func (p *parser) newExpr() (Expr, error) {
	kw := p.advance() // new
	n := &New{Pos: p.posOf(kw)}
	if p.at("(") {
		// Could be placement `new (addr) T` — it always is in this subset,
		// since `new (T)` is not supported.
		p.advance()
		place, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		n.Placement = place
	}
	ty, err := p.typeName()
	if err != nil {
		return nil, err
	}
	n.Type = ty
	switch {
	case p.at("["):
		p.advance()
		ln, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		n.ArrayLen = ln
	case p.at("("):
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		n.CtorArgs = args
	}
	return n, nil
}

// --- token skipping helpers -------------------------------------------------

func (p *parser) skipParens() error {
	if _, err := p.expect("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.advance()
		switch {
		case t.Kind == TokEOF:
			return p.errf("unterminated parentheses")
		case t.Kind == TokPunct && t.Text == "(":
			depth++
		case t.Kind == TokPunct && t.Text == ")":
			depth--
		}
	}
	return nil
}

func (p *parser) skipBraces() error {
	if _, err := p.expect("{"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.advance()
		switch {
		case t.Kind == TokEOF:
			return p.errf("unterminated braces")
		case t.Kind == TokPunct && t.Text == "{":
			depth++
		case t.Kind == TokPunct && t.Text == "}":
			depth--
		}
	}
	return nil
}
