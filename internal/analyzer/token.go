// Package analyzer implements the static-analysis tool the paper's
// conclusion announces ("We are currently building a tool for static
// analysis of code and for detecting vulnerabilities due to placement
// new", §7): a front end for a mini-C++ subset and a set of checks that
// flag dangerous placement-new sites.
//
// The checks mirror §5.1's discussion of what static detection can and
// cannot do:
//
//	PN001  object/array placement provably larger than its arena
//	PN002  placement size influenced by tainted input (cin, recv, ...)
//	PN003  arena unresolvable ("placement new just operates on an
//	       address, not on a lexically declared array")
//	PN004  placement size not statically known
//	PN005  placed class incompatible with the arena's class
//	PN006  arena reused without sanitization (information leak)
//	PN007  placement without matching placement delete (memory leak)
//
// A deliberately traditional baseline scanner (Baseline) detects only the
// classic strcpy/gets/sprintf patterns, reproducing the paper's claim
// that existing tools miss every placement-new vulnerability.
package analyzer

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct // single/multi char punctuation, in Text
	TokKeyword
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

var keywords = map[string]bool{
	"class": true, "public": true, "private": true, "protected": true,
	"virtual": true, "new": true, "delete": true, "return": true,
	"if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true,
	"bool": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "void": true, "unsigned": true,
	"true": true, "false": true, "sizeof": true, "struct": true,
}
