package analyzer

import (
	"fmt"

	"repro/internal/layout"
)

// sema resolves source types against the class model and computes sizes
// under a data model.
type sema struct {
	model   layout.Model
	classes map[string]*layout.Class
	decls   map[string]*ClassDecl
}

func buildSema(prog *Program, model layout.Model) (*sema, error) {
	s := &sema{
		model:   model,
		classes: make(map[string]*layout.Class),
		decls:   make(map[string]*ClassDecl),
	}
	for _, cd := range prog.Classes {
		if _, dup := s.decls[cd.Name]; dup {
			return nil, fmt.Errorf("analyzer: %s: class %s redefined", cd.Pos, cd.Name)
		}
		s.decls[cd.Name] = cd
	}
	for _, cd := range prog.Classes {
		if _, err := s.classFor(cd.Name, map[string]bool{}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// classFor builds (and caches) the layout class for a declared class.
func (s *sema) classFor(name string, building map[string]bool) (*layout.Class, error) {
	if c, ok := s.classes[name]; ok {
		return c, nil
	}
	cd, ok := s.decls[name]
	if !ok {
		return nil, fmt.Errorf("analyzer: unknown class %s", name)
	}
	if building[name] {
		return nil, fmt.Errorf("analyzer: %s: inheritance cycle through %s", cd.Pos, name)
	}
	building[name] = true
	defer delete(building, name)

	var bases []*layout.Class
	for _, b := range cd.Bases {
		bc, err := s.classFor(b, building)
		if err != nil {
			return nil, err
		}
		bases = append(bases, bc)
	}
	c := layout.NewClass(name, bases...)
	for _, v := range cd.Virtuals {
		c.AddVirtual(v)
	}
	for _, f := range cd.Fields {
		ft, err := s.resolveType(f.Type, building)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %s: field %s: %w", f.Pos, f.Name, err)
		}
		c.AddField(f.Name, ft)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("analyzer: class %s: %w", name, err)
	}
	s.classes[name] = c
	return c, nil
}

// ClassesOf builds the layout classes declared by a parsed program, in
// declaration order. It is the bridge pnlayout uses between the mini-C++
// front end and the layout engine.
func ClassesOf(prog *Program, model layout.Model) ([]*layout.Class, error) {
	s, err := buildSema(prog, model)
	if err != nil {
		return nil, err
	}
	out := make([]*layout.Class, 0, len(prog.Classes))
	for _, cd := range prog.Classes {
		out = append(out, s.classes[cd.Name])
	}
	return out, nil
}

var scalarTypes = map[string]layout.Type{
	"bool": layout.Bool, "char": layout.Char, "short": layout.Short,
	"int": layout.Int, "long": layout.Long, "float": layout.Float,
	"double":        layout.Double,
	"unsigned char": layout.UChar, "unsigned short": layout.UShort,
	"unsigned int": layout.UInt, "unsigned long": layout.ULong,
	"unsigned": layout.UInt,
}

// resolveType maps a source type to a layout type. Array lengths must be
// constant; non-constant lengths yield an error (callers that tolerate
// unknown sizes handle them before resolution).
func (s *sema) resolveType(t SrcType, building map[string]bool) (layout.Type, error) {
	var base layout.Type
	if sc, ok := scalarTypes[t.Name]; ok {
		base = sc
	} else if t.Name == "void" {
		if t.Stars == 0 {
			return nil, fmt.Errorf("void is not an object type")
		}
		base = nil // void*
	} else {
		c, err := s.classFor(t.Name, building)
		if err != nil {
			return nil, err
		}
		base = c
	}
	out := base
	for i := 0; i < t.Stars; i++ {
		out = layout.PtrTo(out)
	}
	if t.ArrayLen != nil {
		n, ok := evalConstPure(t.ArrayLen, s)
		if !ok || n < 0 {
			return nil, fmt.Errorf("array length is not a constant expression")
		}
		out = layout.ArrayOf(out, uint64(n))
	}
	return out, nil
}

// sizeOfSrcType computes sizeof for a source type when statically known.
func (s *sema) sizeOfSrcType(t SrcType) (uint64, bool) {
	lt, err := s.resolveType(t, map[string]bool{})
	if err != nil || lt == nil {
		return 0, false
	}
	if c, ok := lt.(*layout.Class); ok {
		l, err := layout.Of(c, s.model)
		if err != nil {
			return 0, false
		}
		return l.Size, true
	}
	return lt.Size(s.model), true
}

// evalConstPure folds integer-constant expressions: literals, + - * / %,
// parentheses (structural), and sizeof(T).
func evalConstPure(e Expr, s *sema) (int64, bool) {
	switch x := e.(type) {
	case *Number:
		if x.IsFloat {
			return 0, false
		}
		return x.Val, true
	case *Unary:
		if x.Op == "-" {
			v, ok := evalConstPure(x.X, s)
			return -v, ok
		}
		return 0, false
	case *Binary:
		l, lok := evalConstPure(x.L, s)
		r, rok := evalConstPure(x.R, s)
		if !lok || !rok {
			return 0, false
		}
		switch x.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "%":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
		return 0, false
	case *Sizeof:
		if s == nil {
			return 0, false
		}
		n, ok := s.sizeOfSrcType(x.Type)
		return int64(n), ok
	default:
		return 0, false
	}
}
