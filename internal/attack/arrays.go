package attack

import (
	"strings"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stackm"
)

// Pool geometry of the §4 examples: n_students user names of
// UNAME_SIZE+1 bytes each.
const (
	nStudents = 4
	unameSlot = 8 // UNAME_SIZE+1
	poolBytes = nStudents * unameSlot
)

// sprayString builds a string that repeats the little-endian pointer
// pattern at the model's pointer width, so that whichever pointer-aligned
// word the copy reaches receives the target address.
func sprayString(target mem.Addr, ptrSize uint64, n int) string {
	word := make([]byte, ptrSize)
	for i := range word {
		word[i] = byte(uint64(target) >> (8 * i))
	}
	var sb strings.Builder
	for sb.Len() < n {
		sb.Write(word)
	}
	return sb.String()[:n]
}

// runArrayTwoStepStack reproduces §4.1 Listing 19: step one corrupts
// n_unames through the object overflow; step two lets a "perfectly
// secure" strncpy copy n_unames*(UNAME_SIZE+1) bytes into the now
// undersized stack pool, smashing the return address.
func runArrayTwoStepStack(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("array-2step-stack", cfg)
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	var placeErr error
	if _, err := w.p.DefineFunc("sortAndAddUname", []stackm.LocalSpec{
		{Name: "mem_pool", Type: layout.ArrayOf(layout.Char, poolBytes)},
		{Name: "n_unames", Type: layout.Int},
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		nu, err := f.Local("n_unames")
		if err != nil {
			return err
		}
		// cin >> n_unames, with the program's own bounds check: the
		// legitimate input passes it.
		p.SetInput(3)
		if v := p.Cin(); v <= nStudents {
			if err := p.Mem.WriteU32(nu.Addr, uint32(v)); err != nil {
				return err
			}
		}
		// Step 1: object overflow rewrites n_unames behind the check.
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
		} else {
			idx, err := ssnIndexFor(gs, uint64(nu.Addr))
			if err != nil {
				return err
			}
			o.Metrics["n_unames_ssn_index"] = float64(idx)
			p.SetInput(16) // 16*8 = 128 bytes: four times the pool
			if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
				return err
			}
		}
		// Step 2: the "secure" copy.
		nv, err := p.Mem.ReadUint(nu.Addr, 4)
		if err != nil {
			return err
		}
		o.Metrics["n_unames_after"] = float64(nv)
		pl, err := f.Local("mem_pool")
		if err != nil {
			return err
		}
		pool, err := core.NewPool(p.Mem, p.Model, pl.Addr, poolBytes, "mem_pool")
		if err != nil {
			return err
		}
		w.cfg.ApplyToPool(pool)
		buf, err := pool.PlaceArray(layout.Char, nv*unameSlot)
		if err != nil {
			placeErr = err
			return nil
		}
		uname := sprayString(shell.Addr, p.Model.PtrSize, int(nv*unameSlot))
		return buf.StrNCpy(uname, nv*unameSlot)
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("sortAndAddUname")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	if w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("two-step attack: n_unames corrupted, strncpy smashed the return address")
	}
	return o, nil
}

// runArrayTwoStepBss reproduces §4.2 Listing 20: the pool is a global and
// the oversized copy tramples the globals declared after it.
func runArrayTwoStepBss(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("array-2step-bss", cfg)
	if _, err := w.p.DefineGlobal("mem_pool", layout.ArrayOf(layout.Char, poolBytes), false); err != nil {
		return nil, err
	}
	nStaff, err := w.p.DefineGlobal("n_staff", layout.Int, false)
	if err != nil {
		return nil, err
	}
	poolArena, err := w.globalArena("mem_pool")
	if err != nil {
		return nil, err
	}

	var placeErr error
	if _, err := w.p.DefineFunc("sortAndAddUname", []stackm.LocalSpec{
		{Name: "n_unames", Type: layout.Int},
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		nu, err := f.Local("n_unames")
		if err != nil {
			return err
		}
		if err := p.Mem.WriteU32(nu.Addr, 3); err != nil {
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
		} else {
			idx, err := ssnIndexFor(gs, uint64(nu.Addr))
			if err != nil {
				return err
			}
			p.SetInput(16)
			if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
				return err
			}
		}
		nv, err := p.Mem.ReadUint(nu.Addr, 4)
		if err != nil {
			return err
		}
		o.Metrics["n_unames_after"] = float64(nv)
		pool, err := core.NewPool(p.Mem, p.Model, poolArena.Base, poolArena.Size, "mem_pool")
		if err != nil {
			return err
		}
		w.cfg.ApplyToPool(pool)
		buf, err := pool.PlaceArray(layout.Char, nv*unameSlot)
		if err != nil {
			placeErr = err
			return nil
		}
		return buf.StrNCpy(strings.Repeat("S", int(nv*unameSlot)), nv*unameSlot)
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("sortAndAddUname")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	got, err := w.p.Mem.ReadU32(nStaff.Addr)
	if err != nil {
		return nil, err
	}
	if got == 0x53535353 { // "SSSS"
		o.Succeeded = true
		o.note("global n_staff beyond the pool overwritten to %#x", got)
	}
	return o, nil
}
