// Package attack implements the paper's attack catalogue: one runnable
// scenario per demonstrated listing/section (§3–§4), each parameterised by
// a defense configuration so the identical attack code can be crossed
// against every protection technique of §5 (experiment E15).
//
// A scenario reports a structured Outcome rather than panicking or
// asserting: whether the attack achieved its goal, whether a defense
// prevented it up front or detected it after the fact, whether the victim
// process crashed, and any scenario-specific metrics (leaked bytes, loop
// amplification, leak rate, overwrite indexes).
package attack

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/heap"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/serial"
)

// Outcome is the structured result of one scenario run under one defense.
type Outcome struct {
	Scenario string
	Defense  string
	// Succeeded reports the attack achieved its stated goal.
	Succeeded bool
	// Prevented reports a defense stopped the attack before any damage
	// (rejected placement, runtime guard, NX fault before shellcode ran).
	Prevented   bool
	PreventedBy string
	// Detected reports a defense observed the damage and aborted the
	// process (canary, shadow stack) — damage done, exploitation stopped.
	Detected   bool
	DetectedBy string
	// Crashed reports the process died without any defense taking credit.
	Crashed bool
	// Details are human-readable notes in occurrence order.
	Details []string
	// Metrics carries scenario-specific numbers (bytes leaked, iteration
	// counts, the ssn index that hit the victim word, ...).
	Metrics map[string]float64
}

func newOutcome(scenario string, cfg defense.Config) *Outcome {
	return &Outcome{Scenario: scenario, Defense: cfg.Name, Metrics: make(map[string]float64)}
}

func (o *Outcome) note(format string, args ...any) {
	o.Details = append(o.Details, fmt.Sprintf(format, args...))
}

// Status renders the one-word cell used in the E15 matrix.
func (o *Outcome) Status() string {
	switch {
	case o.Prevented:
		return "prevented"
	case o.Detected:
		return "detected"
	case o.Succeeded:
		return "SUCCESS"
	case o.Crashed:
		return "crashed"
	default:
		return "no-effect"
	}
}

// classify folds an error from a placement or a call into the outcome.
// It returns true when the error was an expected defense/crash signal
// (and has been recorded), false when it is an infrastructure error the
// scenario must propagate.
func (o *Outcome) classify(err error) bool {
	if err == nil {
		return true
	}
	var be *core.BoundsError
	var ae *core.AlignError
	var te *core.TypeError
	var ee *serial.ElementsError
	var ge *machine.GuardError
	var rz *heap.RedZoneError
	switch {
	case errors.As(err, &te):
		o.Prevented = true
		o.PreventedBy = "typed-placement"
		o.note("placement rejected: %v", err)
		return true
	case errors.As(err, &be), errors.As(err, &ae), errors.As(err, &ee):
		o.Prevented = true
		o.PreventedBy = "checked-placement"
		o.note("placement rejected: %v", err)
		return true
	case errors.As(err, &ge):
		o.Prevented = true
		o.PreventedBy = "runtime-guard"
		o.note("placement rejected: %v", err)
		return true
	case errors.As(err, &rz):
		o.Detected = true
		o.DetectedBy = "heapguard"
		o.note("hardened allocator detected the overflow: %v", err)
		return true
	}
	if flt, ok := mem.IsFault(err); ok {
		switch flt.Kind {
		case mem.FaultGuard:
			o.Detected = true
			o.DetectedBy = "memguard"
			o.note("red zone caught the overflowing write: %v", err)
			return true
		case mem.FaultShadow:
			o.Detected = true
			o.DetectedBy = "shadow"
			o.note("shadow memory rejected the write before it landed: %v", err)
			return true
		}
	}
	var ab *machine.AbortError
	if errors.As(err, &ab) {
		switch ab.Kind {
		case machine.EvCanaryAbort:
			o.Detected = true
			o.DetectedBy = "stackguard"
		case machine.EvShadowAbort:
			o.Detected = true
			o.DetectedBy = "shadowstack"
		case machine.EvGuardAbort:
			o.Detected = true
			o.DetectedBy = "memguard"
		case machine.EvShadowViolation:
			o.Detected = true
			o.DetectedBy = "shadow"
		case machine.EvNXViolation:
			o.Prevented = true
			o.PreventedBy = "nx"
		default:
			o.Crashed = true
		}
		o.note("process aborted: %v", ab)
		return true
	}
	return false
}

// Scenario is one attack from the catalogue.
type Scenario struct {
	// ID is the stable short name used by the CLI and the matrix.
	ID string
	// Ref cites the paper section/listing the scenario reproduces.
	Ref string
	// Title is a one-line description.
	Title string
	// Run executes the attack under the given defense configuration.
	Run func(cfg defense.Config) (*Outcome, error)
}

// Catalog returns every scenario in paper order.
func Catalog() []Scenario {
	return []Scenario{
		{"construct-overflow", "§3.1 L4", "object overflow via construction", runConstructOverflow},
		{"remote-overflow", "§3.2 L5–7", "object overflow via serialized/remote object", runRemoteOverflow},
		{"remote-array", "§3.2 L5–6", "oversized remote array walks past declared member", runRemoteArray},
		{"indirect-overflow", "§3.3 L8–9", "object overflow via indirect construction", runIndirectOverflow},
		{"internal-overflow", "§3.4 L10", "internal overflow of enclosing object state", runInternalOverflow},
		{"bss-overflow", "§3.5 L11", "data/bss overflow rewrites sibling object", runBssOverflow},
		{"heap-overflow", "§3.5.1 L12", "heap overflow rewrites adjacent buffer", runHeapOverflow},
		{"stack-ret", "§3.6.1 L13", "return-address overwrite via object overflow", runStackRet},
		{"canary-skip", "§5.2", "selective overwrite bypasses StackGuard", runCanarySkip},
		{"arc-injection", "§3.6.2", "return-to-privileged-function (arc injection)", runArcInjection},
		{"code-injection", "§3.6.2", "stack shellcode execution (code injection)", runCodeInjection},
		{"var-bss", "§3.7.1 L14", "overwrite of global variable in data/bss", runVarBss},
		{"var-stack", "§3.7.2 L15", "overwrite of local variable on stack", runVarStack},
		{"member-var", "§3.8.1 L16", "overwrite of adjacent object's member", runMemberVar},
		{"vptr-bss", "§3.8.2", "vtable-pointer subterfuge via bss overflow", runVptrBss},
		{"vptr-stack", "§3.8.2", "vtable-pointer subterfuge via stack overflow", runVptrStack},
		{"vptr-crash", "§3.8.2", "invalid vtable pointer crashes the victim (DoS)", runVptrCrash},
		{"vptr-multi", "§3.8.2", "secondary vtable pointer subterfuge (multiple inheritance)", runVptrMulti},
		{"type-confusion", "§2.5(3)", "same-size type confusion defeats pure bounds checking", runTypeConfusion},
		{"funcptr", "§3.9 L17", "function-pointer subterfuge", runFuncPtr},
		{"varptr", "§3.10 L18", "variable-pointer subterfuge", runVarPtr},
		{"array-2step-stack", "§4.1 L19", "two-step array overflow smashes the stack", runArrayTwoStepStack},
		{"array-2step-bss", "§4.2 L20", "two-step array overflow past a global pool", runArrayTwoStepBss},
		{"infoleak-array", "§4.3 L21", "information leak through pool reuse (array)", runInfoLeakArray},
		{"infoleak-object", "§4.3 L22", "information leak through arena reuse (object)", runInfoLeakObject},
		{"dos-loop", "§4.4", "denial of service via loop-bound modification", runDoSLoop},
		{"dos-exhaust", "§4.4", "denial of service via resource exhaustion", runDoSExhaust},
		{"memleak", "§4.5 L23", "memory leak via undersized release", runMemLeak},
		{"dangling-write", "§4.5 L23", "stale store through a released placement", runDanglingWrite},
	}
}

// ByID resolves a scenario by its short name.
func ByID(id string) (Scenario, error) {
	for _, s := range Catalog() {
		if s.ID == id {
			return s, nil
		}
	}
	var known []string
	for _, s := range Catalog() {
		known = append(known, s.ID)
	}
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("attack: unknown scenario %q (known: %v)", id, known)
}

// RunAll executes every scenario under cfg.
func RunAll(cfg defense.Config) ([]*Outcome, error) {
	var out []*Outcome
	for _, s := range Catalog() {
		o, err := s.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("attack: scenario %s under %s: %w", s.ID, cfg.Name, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// RunMatrix crosses every scenario with every defense configuration —
// experiment E15.
func RunMatrix(configs []defense.Config) (map[string]map[string]*Outcome, error) {
	matrix := make(map[string]map[string]*Outcome)
	for _, s := range Catalog() {
		row := make(map[string]*Outcome, len(configs))
		for _, cfg := range configs {
			o, err := s.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("attack: scenario %s under %s: %w", s.ID, cfg.Name, err)
			}
			row[cfg.Name] = o
		}
		matrix[s.ID] = row
	}
	return matrix, nil
}

// --- shared scenario scaffolding ------------------------------------------

// world bundles a defended process with the paper's running-example
// classes (Listing 1), plus the polymorphic variants of §3.8.2.
type world struct {
	cfg defense.Config
	p   *machine.Process

	student *layout.Class // { double gpa; int year, semester; }
	grad    *layout.Class // : Student { int ssn[3]; }

	vstudent *layout.Class // adds virtual getInfo()
	vgrad    *layout.Class
}

func newWorld(cfg defense.Config) (*world, error) {
	p, err := cfg.NewProcess()
	if err != nil {
		return nil, err
	}
	w := &world{cfg: cfg, p: p}
	w.student = layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	w.grad = layout.NewClass("GradStudent", w.student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	w.vstudent = layout.NewClass("VStudent").
		AddVirtual("getInfo").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	w.vgrad = layout.NewClass("VGradStudent", w.vstudent).
		AddVirtual("getInfo").
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return w, nil
}

// sizes returns sizeof(Student) and sizeof(GradStudent) under the world's
// model.
func (w *world) sizes() (student, grad uint64) {
	return w.student.Size(w.p.Model), w.grad.Size(w.p.Model)
}
