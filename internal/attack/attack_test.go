package attack

import (
	"strings"
	"testing"

	"repro/internal/defense"
)

// runScenario is a test helper that executes one catalogue entry.
func runScenario(t *testing.T, id string, cfg defense.Config) *Outcome {
	t.Helper()
	s, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Run(cfg)
	if err != nil {
		t.Fatalf("%s under %s: %v", id, cfg.Name, err)
	}
	if o.Scenario != id || o.Defense != cfg.Name {
		t.Fatalf("outcome mislabeled: %+v", o)
	}
	return o
}

func TestCatalogIntegrity(t *testing.T) {
	cat := Catalog()
	if len(cat) != 29 {
		t.Errorf("catalogue has %d scenarios, want 29", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if s.ID == "" || s.Ref == "" || s.Title == "" || s.Run == nil {
			t.Errorf("incomplete scenario %+v", s)
		}
		if seen[s.ID] {
			t.Errorf("duplicate scenario id %q", s.ID)
		}
		seen[s.ID] = true
		if !strings.HasPrefix(s.Ref, "§") {
			t.Errorf("scenario %s ref %q lacks section citation", s.ID, s.Ref)
		}
	}
	if _, err := ByID("no-such"); err == nil {
		t.Error("unknown id resolved")
	}
}

// TestAllAttacksSucceedUndefended is the paper's headline claim: every
// demonstrated attack works on the undefended testbed.
func TestAllAttacksSucceedUndefended(t *testing.T) {
	for _, s := range Catalog() {
		t.Run(s.ID, func(t *testing.T) {
			o, err := s.Run(defense.None)
			if err != nil {
				t.Fatal(err)
			}
			if !o.Succeeded {
				t.Errorf("attack failed undefended: %s (details: %v)", o.Status(), o.Details)
			}
			if o.Prevented || o.Detected {
				t.Errorf("phantom defense fired: %+v", o)
			}
		})
	}
}

// TestCheckedPlacementStopsOverflows: §5.1 correct coding prevents every
// scenario whose root cause is an oversized placement.
func TestCheckedPlacementStopsOverflows(t *testing.T) {
	prevented := []string{
		"construct-overflow", "remote-overflow", "indirect-overflow",
		"internal-overflow", "bss-overflow", "heap-overflow", "stack-ret",
		"canary-skip", "arc-injection", "code-injection", "var-bss",
		"var-stack", "member-var", "vptr-bss", "vptr-stack", "funcptr",
		"varptr", "array-2step-stack", "array-2step-bss", "dos-loop",
	}
	for _, id := range prevented {
		t.Run(id, func(t *testing.T) {
			o := runScenario(t, id, defense.CheckedOnly)
			if !o.Prevented || o.PreventedBy != "checked-placement" {
				t.Errorf("status = %s (by %q), want prevented by checked-placement; %v",
					o.Status(), o.PreventedBy, o.Details)
			}
			if o.Succeeded {
				t.Error("attack still succeeded")
			}
		})
	}
}

// TestCheckedPlacementDoesNotStopLeaks: the §4.3 information leaks and the
// §4.5 leak are not bounds violations, so bounds checking alone cannot
// stop them — exactly the paper's point that sanitization and placement
// delete are separate remedies.
func TestCheckedPlacementDoesNotStopLeaks(t *testing.T) {
	for _, id := range []string{"infoleak-array", "infoleak-object", "memleak"} {
		t.Run(id, func(t *testing.T) {
			o := runScenario(t, id, defense.CheckedOnly)
			if !o.Succeeded {
				t.Errorf("leak unexpectedly stopped by bounds checking: %s %v", o.Status(), o.Details)
			}
		})
	}
}

// TestStackGuardMatrix: the canary detects linear stack smashes but (a)
// does nothing for data/bss/heap attacks and (b) is bypassed by the §5.2
// selective write.
func TestStackGuardMatrix(t *testing.T) {
	detected := []string{"stack-ret", "arc-injection", "code-injection", "array-2step-stack"}
	for _, id := range detected {
		t.Run("detects/"+id, func(t *testing.T) {
			o := runScenario(t, id, defense.StackGuardOnly)
			if !o.Detected || o.DetectedBy != "stackguard" {
				t.Errorf("status = %s (by %q), want detected by stackguard; %v", o.Status(), o.DetectedBy, o.Details)
			}
		})
	}
	unaffected := []string{"bss-overflow", "heap-overflow", "var-bss", "vptr-bss", "infoleak-array", "memleak", "varptr"}
	for _, id := range unaffected {
		t.Run("misses/"+id, func(t *testing.T) {
			o := runScenario(t, id, defense.StackGuardOnly)
			if !o.Succeeded {
				t.Errorf("non-stack attack stopped by canary: %s %v", o.Status(), o.Details)
			}
		})
	}
	t.Run("bypassed-by-canary-skip", func(t *testing.T) {
		o := runScenario(t, "canary-skip", defense.StackGuardOnly)
		if !o.Succeeded {
			t.Errorf("canary-skip failed against StackGuard: %s %v", o.Status(), o.Details)
		}
		if o.Detected {
			t.Error("StackGuard detected the selective write")
		}
	})
}

// TestShadowStackCatchesCanarySkip: the §5.2 return-address stack stops
// what StackGuard misses.
func TestShadowStackCatchesCanarySkip(t *testing.T) {
	o := runScenario(t, "canary-skip", defense.ShadowOnly)
	if !o.Detected || o.DetectedBy != "shadowstack" {
		t.Errorf("status = %s (by %q), want detected by shadowstack; %v", o.Status(), o.DetectedBy, o.Details)
	}
	for _, id := range []string{"stack-ret", "arc-injection"} {
		o := runScenario(t, id, defense.ShadowOnly)
		if !o.Detected || o.DetectedBy != "shadowstack" {
			t.Errorf("%s: status = %s, want shadow detection", id, o.Status())
		}
	}
}

// TestNXStopsCodeInjectionOnly: NX prevents executing stack bytes but not
// arc injection (ret2libc), the distinction §3.6.2 draws.
func TestNXStopsCodeInjectionOnly(t *testing.T) {
	o := runScenario(t, "code-injection", defense.NXOnly)
	if !o.Prevented || o.PreventedBy != "nx" {
		t.Errorf("code-injection: status = %s (by %q), want prevented by nx; %v", o.Status(), o.PreventedBy, o.Details)
	}
	o = runScenario(t, "arc-injection", defense.NXOnly)
	if !o.Succeeded {
		t.Errorf("arc-injection stopped by NX: %s %v", o.Status(), o.Details)
	}
}

// TestRuntimeGuardCoverage: the libsafe-style guard prevents placements it
// can bound but is blind to internal overflows (inference too coarse) and
// to the raw copy of the indirect attack — the §5.2 limitations.
func TestRuntimeGuardCoverage(t *testing.T) {
	prevented := []string{"construct-overflow", "remote-overflow", "bss-overflow",
		"heap-overflow", "stack-ret", "var-bss", "var-stack", "funcptr", "varptr"}
	for _, id := range prevented {
		t.Run("prevents/"+id, func(t *testing.T) {
			o := runScenario(t, id, defense.GuardOnly)
			if !o.Prevented {
				t.Errorf("status = %s, want prevented; %v", o.Status(), o.Details)
			}
		})
	}
	blind := []string{"internal-overflow", "indirect-overflow"}
	for _, id := range blind {
		t.Run("misses/"+id, func(t *testing.T) {
			o := runScenario(t, id, defense.GuardOnly)
			if !o.Succeeded {
				t.Errorf("guard unexpectedly stopped %s: %s %v", id, o.Status(), o.Details)
			}
		})
	}
}

// TestSanitizeStopsInfoLeaks: §5.1 memory sanitization zeroes the remnants.
func TestSanitizeStopsInfoLeaks(t *testing.T) {
	for _, id := range []string{"infoleak-array", "infoleak-object"} {
		t.Run(id, func(t *testing.T) {
			o := runScenario(t, id, defense.SanitizeOnly)
			if o.Succeeded {
				t.Errorf("leak survived sanitization: %v", o.Details)
			}
			if o.Metrics["leaked_bytes"] > 0 || o.Metrics["ssn_recovered"] > 0 {
				t.Errorf("metrics show residual leak: %v", o.Metrics)
			}
		})
	}
}

// TestMemGuardCoverage: placement-aware red zones detect every data/bss
// overflow at the offending write — including the indirect copy and the
// internal overflow that the runtime guard cannot see — while stack and
// heap arenas are out of its scope by design.
func TestMemGuardCoverage(t *testing.T) {
	detected := []string{
		"construct-overflow", "remote-overflow", "remote-array",
		"indirect-overflow", "internal-overflow", "bss-overflow",
		"var-bss", "vptr-bss", "vptr-crash", "vptr-multi", "varptr",
	}
	for _, id := range detected {
		t.Run("detects/"+id, func(t *testing.T) {
			o := runScenario(t, id, defense.MemGuardOnly)
			if !o.Detected || o.DetectedBy != "memguard" {
				t.Errorf("status = %s (by %q), want detected by memguard; %v",
					o.Status(), o.DetectedBy, o.Details)
			}
		})
	}
	outOfScope := []string{"stack-ret", "heap-overflow", "infoleak-array", "memleak", "type-confusion"}
	for _, id := range outOfScope {
		t.Run("misses/"+id, func(t *testing.T) {
			o := runScenario(t, id, defense.MemGuardOnly)
			if !o.Succeeded {
				t.Errorf("out-of-scope attack stopped by memguard: %s %v", o.Status(), o.Details)
			}
		})
	}
}

// TestTypeConfusionDefeatsPureBoundsChecking: §2.5(3) — a same-size
// unrelated class sails through the size check; only class-compatibility
// enforcement stops it.
func TestTypeConfusionDefeatsPureBoundsChecking(t *testing.T) {
	o := runScenario(t, "type-confusion", defense.None)
	if !o.Succeeded {
		t.Fatalf("undefended: %s %v", o.Status(), o.Details)
	}
	o = runScenario(t, "type-confusion", defense.CheckedOnly)
	if !o.Succeeded {
		t.Errorf("bounds checking unexpectedly stopped same-size confusion: %s %v", o.Status(), o.Details)
	}
	o = runScenario(t, "type-confusion", defense.TypedOnly)
	if !o.Prevented || o.PreventedBy != "typed-placement" {
		t.Errorf("typed placement did not stop confusion: %s (by %q) %v", o.Status(), o.PreventedBy, o.Details)
	}
	// Typed placement still allows the legitimate derived-into-base reuse.
	o = runScenario(t, "construct-overflow", defense.TypedOnly)
	if !o.Prevented || o.PreventedBy != "checked-placement" {
		t.Errorf("typed config lost the bounds check: %s (by %q)", o.Status(), o.PreventedBy)
	}
}

// TestHeapGuardDetectsHeapOverflowOnly: allocator red zones catch the
// §3.5.1 heap overflow at free time but are blind to everything that
// never crosses a heap block boundary.
func TestHeapGuardDetectsHeapOverflowOnly(t *testing.T) {
	o := runScenario(t, "heap-overflow", defense.HeapGuardOnly)
	if !o.Detected || o.DetectedBy != "heapguard" {
		t.Errorf("heap-overflow: status = %s (by %q), want detected by heapguard; %v",
			o.Status(), o.DetectedBy, o.Details)
	}
	for _, id := range []string{"bss-overflow", "stack-ret", "vptr-bss", "infoleak-array"} {
		o := runScenario(t, id, defense.HeapGuardOnly)
		if !o.Succeeded {
			t.Errorf("%s stopped by heapguard: %s %v", id, o.Status(), o.Details)
		}
	}
}

// TestPlacementDeleteStopsMemLeak: the §5.1 remedy for §4.5.
func TestPlacementDeleteStopsMemLeak(t *testing.T) {
	o := runScenario(t, "memleak", defense.DeleteOnly)
	if o.Succeeded || o.Metrics["leaked_bytes"] != 0 {
		t.Errorf("leak survived placement delete: %v %v", o.Metrics, o.Details)
	}
}

// TestHardenedStopsEverything: the full stack of defenses leaves no
// scenario successful.
func TestHardenedStopsEverything(t *testing.T) {
	for _, s := range Catalog() {
		t.Run(s.ID, func(t *testing.T) {
			o, err := s.Run(defense.Hardened)
			if err != nil {
				t.Fatal(err)
			}
			if o.Succeeded {
				t.Errorf("attack survived hardened config: %v", o.Details)
			}
		})
	}
}

func TestPaperGeometryMetrics(t *testing.T) {
	// §3.6.1: with neither canary nor... the default process saves the
	// frame pointer, so the return slot is ssn[1]; with StackGuard it is
	// ssn[2].
	o := runScenario(t, "stack-ret", defense.None)
	if got := o.Metrics["ret_ssn_index"]; got != 1 {
		t.Errorf("ret index under saved-FP = %v, want 1", got)
	}
	o = runScenario(t, "stack-ret", defense.StackGuardOnly)
	if got := o.Metrics["ret_ssn_index"]; got != 2 {
		t.Errorf("ret index under canary+FP = %v, want 2", got)
	}
	// §4.5: leak per iteration equals sizeof(GradStudent)-sizeof(Student).
	o = runScenario(t, "memleak", defense.None)
	if o.Metrics["leak_per_iteration"] != o.Metrics["expected_per_iteration"] {
		t.Errorf("leak per iteration %v != expected %v",
			o.Metrics["leak_per_iteration"], o.Metrics["expected_per_iteration"])
	}
	// §4.4: amplification is huge.
	o = runScenario(t, "dos-loop", defense.None)
	if o.Metrics["amplification"] < 1000 {
		t.Errorf("amplification = %v", o.Metrics["amplification"])
	}
	if o.Metrics["validation_bypassed"] != 1 {
		t.Error("starvation variant did not bypass validation")
	}
}

func TestHeapOverflowBeforeAfterDemo(t *testing.T) {
	// Listing 12 prints the neighbour before and after; reproduce the demo
	// output shape.
	o := runScenario(t, "heap-overflow", defense.None)
	if !o.Succeeded {
		t.Fatalf("heap overflow failed: %v", o.Details)
	}
	if o.Metrics["heap_metadata_corrupt"] != 1 {
		t.Error("allocator metadata survived the overflow untouched")
	}
}

func TestRunAllAndMatrix(t *testing.T) {
	outs, err := RunAll(defense.None)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(Catalog()) {
		t.Fatalf("RunAll returned %d outcomes", len(outs))
	}
	matrix, err := RunMatrix([]defense.Config{defense.None, defense.CheckedOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(matrix) != len(Catalog()) {
		t.Fatalf("matrix rows = %d", len(matrix))
	}
	for id, row := range matrix {
		if len(row) != 2 {
			t.Errorf("row %s has %d cells", id, len(row))
		}
		for cfg, o := range row {
			if o.Scenario != id || o.Defense != cfg {
				t.Errorf("cell mislabeled: %+v", o)
			}
		}
	}
}

func TestOutcomeStatusStrings(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Outcome{Succeeded: true}, "SUCCESS"},
		{Outcome{Prevented: true}, "prevented"},
		{Outcome{Detected: true}, "detected"},
		{Outcome{Crashed: true}, "crashed"},
		{Outcome{}, "no-effect"},
	}
	for _, tt := range tests {
		if got := tt.o.Status(); got != tt.want {
			t.Errorf("Status() = %q, want %q", got, tt.want)
		}
	}
}
