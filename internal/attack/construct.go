package attack

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/object"
	"repro/internal/serial"
)

// globalArena returns the checked-placement arena for a named global.
func (w *world) globalArena(name string) (core.Arena, error) {
	g, err := w.p.GlobalVar(name)
	if err != nil {
		return core.Arena{}, err
	}
	return core.Arena{Base: g.Addr, Size: g.Type.Size(w.p.Model), Label: "global " + name}, nil
}

// ssnIndexFor computes which ssn[] word of an object placed at base lands
// on victim: the attacker's offline layout arithmetic (§3.6.1).
func ssnIndexFor(gs *object.Object, victim uint64) (int64, error) {
	ssnBase, err := gs.FieldAddr("ssn")
	if err != nil {
		return 0, err
	}
	d := int64(victim) - int64(ssnBase)
	if d%4 != 0 {
		return 0, fmt.Errorf("attack: victim %#x not word-aligned with ssn[] at %#x", victim, uint64(ssnBase))
	}
	return d / 4, nil
}

// runConstructOverflow reproduces §3.1 Listing 4: construct a GradStudent
// over a Student arena; the ssn[] overhang rewrites the adjacent word.
func runConstructOverflow(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("construct-overflow", cfg)
	if _, err := w.p.DefineGlobal("stud", w.student, false); err != nil {
		return nil, err
	}
	victim, err := w.p.DefineGlobal("victim", layout.UInt, false)
	if err != nil {
		return nil, err
	}
	arena, err := w.globalArena("stud")
	if err != nil {
		return nil, err
	}
	sSize, gSize := w.sizes()
	o.Metrics["sizeof_student"] = float64(sSize)
	o.Metrics["sizeof_gradstudent"] = float64(gSize)

	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	idx, err := ssnIndexFor(gs, uint64(victim.Addr))
	if err != nil {
		return nil, err
	}
	o.Metrics["ssn_index"] = float64(idx)
	if err := gs.SetIndex("ssn", idx, 0x41414141); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	got, err := w.p.Mem.ReadU32(victim.Addr)
	if err != nil {
		return nil, err
	}
	if got == 0x41414141 {
		o.Succeeded = true
		o.note("adjacent global rewritten to %#x via ssn[%d]", got, idx)
	}
	return o, nil
}

// runRemoteOverflow reproduces §3.2 Listings 5–7: a serialized object
// arriving from an untrusted peer names a larger class than the receiver's
// arena holds.
func runRemoteOverflow(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("remote-overflow", cfg)
	if _, err := w.p.DefineGlobal("stud", w.student, false); err != nil {
		return nil, err
	}
	victim, err := w.p.DefineGlobal("victim", layout.UInt, false)
	if err != nil {
		return nil, err
	}
	arena, err := w.globalArena("stud")
	if err != nil {
		return nil, err
	}
	reg := serial.NewRegistry(w.student, w.grad)

	// The attacker's wire message: a GradStudent whose ssn words spray the
	// marker value.
	wire := serial.Encode(serial.NewMessage("GradStudent").
		Set("gpa", serial.FloatValue(4.0)).
		Set("ssn", serial.ArrayValue(0x42424242, 0x42424242, 0x42424242)))
	msg, err := serial.Parse(wire)
	if err != nil {
		return nil, err
	}
	o.note("received %d-byte message naming class %s", len(wire), msg.Class)

	// An instrumented build wraps the deserializer's placement too.
	cfg.GuardArena(w.p, arena)
	cfg.ShadowArena(w.p, arena)

	switch {
	case cfg.CheckedPlacement:
		_, err = serial.PlaceChecked(w.p.Mem, w.p.Model, reg, arena, msg)
	case cfg.RuntimeGuard:
		// The guard interposes on the placement address and bounds it
		// from runtime metadata.
		if inferred, ok := w.p.InferArena(arena.Base); ok {
			_, err = serial.PlaceChecked(w.p.Mem, w.p.Model, reg, inferred, msg)
		} else {
			_, err = serial.PlaceTrusting(w.p.Mem, w.p.Model, reg, arena.Base, msg)
		}
	default:
		_, err = serial.PlaceTrusting(w.p.Mem, w.p.Model, reg, arena.Base, msg)
	}
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		if o.Prevented && cfg.RuntimeGuard && o.PreventedBy == "checked-placement" {
			o.PreventedBy = "runtime-guard"
		}
		return o, nil
	}
	got, err := w.p.Mem.ReadU32(victim.Addr)
	if err != nil {
		return nil, err
	}
	if got == 0x42424242 {
		o.Succeeded = true
		o.note("deserialized object overflowed arena; adjacent global = %#x", got)
	}
	return o, nil
}

// runIndirectOverflow reproduces §3.3 Listings 8–9: the placement itself
// fits, but a deep-copy constructor then copies a larger source image into
// the arena.
func runIndirectOverflow(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("indirect-overflow", cfg)
	if _, err := w.p.DefineGlobal("stud", w.student, false); err != nil {
		return nil, err
	}
	victim, err := w.p.DefineGlobal("victim", layout.UInt, false)
	if err != nil {
		return nil, err
	}
	arena, err := w.globalArena("stud")
	if err != nil {
		return nil, err
	}

	// obj2: a heap object whose size was grown under remote influence.
	_, gSize := w.sizes()
	hp, err := w.p.Heap.Alloc(gSize)
	if err != nil {
		return nil, err
	}
	src, err := w.p.Construct(w.grad, hp)
	if err != nil {
		return nil, err
	}
	if err := src.SetIndex("ssn", 0, 0x43434343); err != nil {
		return nil, err
	}

	// Step 1: place a Student — fits, so even checked placement passes.
	st, err := cfg.Place(w.p, arena, w.student)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// Step 2: the copy constructor deep-copies obj2. Correct coding
	// (§5.1) checks the source size against the arena; the runtime guard
	// interposes on placement new only, so the raw copy sails past it.
	if cfg.CheckedPlacement && src.Size() > arena.Size {
		o.Prevented = true
		o.PreventedBy = "checked-placement"
		o.note("copy-constructor size check: source %d > arena %d", src.Size(), arena.Size)
		return o, nil
	}
	dstAsGrad, err := st.ViewAs(w.grad)
	if err != nil {
		return nil, err
	}
	if err := dstAsGrad.CopyFrom(src); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	got, err := w.p.Mem.ReadU32(victim.Addr)
	if err != nil {
		return nil, err
	}
	if got == 0x43434343 {
		o.Succeeded = true
		o.note("deep copy of %d-byte source overflowed %d-byte arena", src.Size(), arena.Size)
	}
	return o, nil
}

// runInternalOverflow reproduces §3.4 Listing 10: placing a GradStudent
// over one member of an enclosing object rewrites the object's *own*
// internal state (the sibling member).
func runInternalOverflow(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("internal-overflow", cfg)
	player := layout.NewClass("MobilePlayer").
		AddField("stud1", w.student).
		AddField("stud2", w.student).
		AddField("n", layout.Int)
	g, err := w.p.DefineGlobal("player", player, false)
	if err != nil {
		return nil, err
	}
	pobj, err := object.View(w.p.Mem, player, w.p.Model, g.Addr)
	if err != nil {
		return nil, err
	}
	if err := pobj.Zero(); err != nil {
		return nil, err
	}
	if err := pobj.SetInt("n", 2); err != nil {
		return nil, err
	}
	stud1Addr, err := pobj.FieldAddr("stud1")
	if err != nil {
		return nil, err
	}
	sSize, _ := w.sizes()
	// The declared arena is the member, which the programmer can name;
	// the runtime guard can only see the enclosing global, so its
	// inference is too coarse to stop an internal overflow.
	arena := core.Arena{Base: stud1Addr, Size: sSize, Label: "player.stud1"}
	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// Overwrite stud2.gpa (the first 8 bytes of the sibling member) with
	// the bit pattern of 4.0.
	stud2Addr, err := pobj.FieldAddr("stud2")
	if err != nil {
		return nil, err
	}
	idx, err := ssnIndexFor(gs, uint64(stud2Addr))
	if err != nil {
		return nil, err
	}
	bits := math.Float64bits(4.0)
	if err := gs.SetIndex("ssn", idx, int64(int32(uint32(bits)))); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	if err := gs.SetIndex("ssn", idx+1, int64(int32(uint32(bits>>32)))); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	stud2, err := pobj.FieldAddr("stud2")
	if err != nil {
		return nil, err
	}
	gpa, err := w.p.Mem.ReadF64(stud2)
	if err != nil {
		return nil, err
	}
	o.Metrics["stud2_gpa_after"] = gpa
	if gpa == 4.0 {
		o.Succeeded = true
		o.note("internal state of MobilePlayer modified: stud2.gpa = %.1f", gpa)
	}
	return o, nil
}
