package attack

import (
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
)

// runBssOverflow reproduces §3.5 Listing 11: two Students in bss;
// addStudent(true) places a GradStudent over stud1 and the user-supplied
// ssn[] rewrites stud2.gpa.
func runBssOverflow(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("bss-overflow", cfg)
	if _, err := w.p.DefineGlobal("stud1", w.student, false); err != nil {
		return nil, err
	}
	g2, err := w.p.DefineGlobal("stud2", w.student, false)
	if err != nil {
		return nil, err
	}

	// addStudent(false): the legitimate path places a Student at stud2.
	arena2, err := w.globalArena("stud2")
	if err != nil {
		return nil, err
	}
	st2, err := cfg.Place(w.p, arena2, w.student)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	if err := st2.SetFloat("gpa", 3.0); err != nil {
		return nil, err
	}

	// addStudent(true): the attack path. ssn words carry the bit pattern
	// of gpa = 9.9, which lands exactly on stud2.gpa.
	arena1, err := w.globalArena("stud1")
	if err != nil {
		return nil, err
	}
	gs, err := cfg.Place(w.p, arena1, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	idx, err := ssnIndexFor(gs, uint64(g2.Addr))
	if err != nil {
		return nil, err
	}
	o.Metrics["ssn_index"] = float64(idx)
	bits := math.Float64bits(9.9)
	w.p.SetInput(int64(int32(uint32(bits))), int64(int32(uint32(bits>>32))))
	if err := gs.SetIndex("ssn", idx, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	if err := gs.SetIndex("ssn", idx+1, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}

	gpa, err := st2.Float("gpa")
	if err != nil {
		return nil, err
	}
	o.Metrics["stud2_gpa_after"] = gpa
	if gpa == 9.9 {
		o.Succeeded = true
		o.note("stud2.gpa overwritten: 3.0 -> %.1f", gpa)
	}
	return o, nil
}

// runHeapOverflow reproduces §3.5.1 Listing 12: a GradStudent placed over
// a heap-allocated Student tramples the adjacent name buffer; the paper's
// demo prints the name before and after.
func runHeapOverflow(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("heap-overflow", cfg)
	sSize, _ := w.sizes()

	studBlk, err := w.p.Heap.AllocTagged(sSize, "stud")
	if err != nil {
		return nil, err
	}
	nameBlk, err := w.p.Heap.AllocTagged(16, "name")
	if err != nil {
		return nil, err
	}
	if err := w.p.Mem.StrNCpy(nameBlk, "abcdefghijklmno", 16); err != nil {
		return nil, err
	}
	before, _, err := w.p.Mem.ReadCString(nameBlk, 16)
	if err != nil {
		return nil, err
	}
	w.p.Printf("Before Attack: Name:%s", before)

	arena := core.Arena{Base: studBlk, Size: sSize, Label: "heap stud"}
	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// cin >> st->ssn[0..2]
	w.p.SetInput(0x58585858, 0x58585858, 0x58585858) // "XXXX"
	for i := int64(0); i < 3; i++ {
		if err := gs.SetIndex("ssn", i, w.p.Cin()); err != nil {
			if !o.classify(err) {
				return nil, err
			}
			return o, nil
		}
	}
	after, _, err := w.p.Mem.ReadCString(nameBlk, 16)
	if err != nil {
		return nil, err
	}
	w.p.Printf("After Attack: Name:%s", after)

	// The program eventually releases the record; a hardened allocator
	// (red zones) notices the trampled guard here and aborts.
	if ferr := w.p.Heap.Free(studBlk); ferr != nil {
		if !o.classify(ferr) {
			return nil, ferr
		}
		if o.Detected {
			return o, nil
		}
	}
	if string(after) != string(before) && strings.Contains(string(after), "X") {
		o.Succeeded = true
		o.note("heap neighbour rewritten: %q -> %q", before, after)
	}
	if err := w.p.Heap.CheckIntegrity(); err != nil {
		o.Metrics["heap_metadata_corrupt"] = 1
		o.note("allocator metadata trampled: %v", err)
	}
	return o, nil
}

// runVarBss reproduces §3.7.1 Listing 14: the global counter declared
// after stud1 is rewritten by the overflowing ssn[].
func runVarBss(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("var-bss", cfg)
	if _, err := w.p.DefineGlobal("stud1", w.student, false); err != nil {
		return nil, err
	}
	noOf, err := w.p.DefineGlobal("noOfStudents", layout.Int, false)
	if err != nil {
		return nil, err
	}
	arena, err := w.globalArena("stud1")
	if err != nil {
		return nil, err
	}
	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	idx, err := ssnIndexFor(gs, uint64(noOf.Addr))
	if err != nil {
		return nil, err
	}
	o.Metrics["ssn_index"] = float64(idx)
	w.p.SetInput(1 << 20)
	if err := gs.SetIndex("ssn", idx, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	got, err := w.p.Mem.ReadInt(noOf.Addr, 4)
	if err != nil {
		return nil, err
	}
	o.Metrics["noOfStudents_after"] = float64(got)
	if got == 1<<20 {
		o.Succeeded = true
		o.note("noOfStudents overwritten: 0 -> %d", got)
	}
	return o, nil
}
