package attack

// Methodology returns the attack methodology notes for a scenario id —
// the "how and why" the paper walks through in prose, used by
// `pnattack -explain`. Unknown ids return the empty string.
func Methodology(id string) string {
	return methodologies[id]
}

var methodologies = map[string]string{
	"construct-overflow": `The program constructs a GradStudent with placement new in the memory
arena of a Student "but does not check the size of *st against the size
of stud" (§3.1). sizeof(GradStudent) exceeds sizeof(Student) by the
ssn[3] array, so setting ssn[] writes past the arena into whatever the
linker placed next.`,

	"remote-overflow": `A serialized object arrives from an untrusted peer (web service, AJAX,
JSON — §3.2) and is deserialized straight into a pre-allocated arena:
"the programmer may not include any code to check the size because of
the trust on the protocol". The wire names a larger subclass, so the
decode itself performs the overflow.`,

	"remote-array": `Listing 5/6: the receiving loop copies as many array elements as the
remote object claims (*(st->courseid + i) for i < remoteobj->n). The
element count never passes a bounds check, so excess elements walk past
the declared member into adjacent memory.`,

	"indirect-overflow": `§3.3: the placement itself is innocent — a Student into a Student-sized
arena. The overflow happens one step later, when a deep-copy
constructor copies a larger object (grown under remote influence,
possibly inter-procedurally) into that arena. Defenses that only
intercept placement new never see the copy.`,

	"internal-overflow": `§3.4: the arena is one member of an enclosing object (MobilePlayer's
stud1), so the overflow rewrites the object's *own* sibling members —
"internal overflows have the capability to modify internal states of an
object". Allocation-granular runtime inference cannot distinguish the
member from the whole object, so it misses this.`,

	"bss-overflow": `Listing 11: stud1 and stud2 are uninitialised globals, adjacent in bss.
Placing a GradStudent over stud1 puts ssn[] exactly on stud2, so
attacker-chosen ssn values become stud2.gpa — a grade-change attack with
two inputs.`,

	"heap-overflow": `Listing 12: the Student lives in a heap block with the name buffer
allocated right after it. The overflowing ssn[] crosses the allocator's
metadata into name — the paper's before/after printout. On a modern
allocator the trampled header/red zone is detectable at free time.`,

	"stack-ret": `Listing 13: stud is the function's local, so the 12-byte GradStudent
overhang walks up the frame. The paper's index arithmetic: ssn[0] hits
the return address bare, ssn[1] with a saved frame pointer, ssn[2] with
a canary — reproduced exactly by E3.`,

	"canary-skip": `§5.2: the victim loop writes ssn[i] only when the input is positive, so
the attacker supplies non-positive values for the words covering the
canary and saved FP and the real target only for the return-address
word. StackGuard's canary is untouched and verification passes; only a
return-address shadow stack notices.`,

	"arc-injection": `§3.6.2: the corrupted return address is pointed at "a method that makes
a system call in a privileged mode" already present in the text segment
(ret2libc). No new code is injected, so NX does not help.`,

	"code-injection": `§3.6.2: the attacker's shellcode arrives through ordinary input into a
local buffer, and the corrupted return address points at it. Succeeds
exactly when the stack is executable; an NX stack faults at the jump.`,

	"var-bss": `Listing 14: the global noOfStudents sits right after stud1, so one
overflowing ssn word replaces the program's accounting — the stepping
stone for the §4 two-step attacks and the §4.4 DoS.`,

	"var-stack": `Listing 15: the loop bound n is declared before stud, so it sits just
above it in the frame; which ssn index hits n depends on padding, the
paper's "Alignment Issues" note. E6 prints the measured index.`,

	"member-var": `Listing 16: the adjacent local object first has its gpa member — the
first 8 bytes — rewritten with an attacker-chosen double bit pattern
delivered through two ssn writes.`,

	"vptr-bss": `§3.8.2: with virtual functions, "the first entry in the object stud2 is
not gpa, but *__vptr". The overflow replaces it with the address of an
attacker-prepared table whose slot holds a privileged function, so the
next virtual call dispatches wherever the attacker chose.`,

	"vptr-stack": `§3.8.2 "Via Stack Overflow": the adjacent local polymorphic object's
vptr is rewritten through the overflow and the in-function virtual call
dispatches through the fake table.`,

	"vptr-crash": `§3.8.2's crash variant: "or even crash the program by supplying an
invalid address as the value of *__vptr". The next virtual dispatch
reads an unmapped table and the victim dies — denial of service with a
single corrupted word.`,

	"vptr-multi": `§3.8.2 notes that multiple inheritance yields "more than one vtable
pointers in a given instance". Rewriting only the secondary vptr leaves
the primary interface working — every defense that validates only
offset 0 stays silent while the secondary interface is hijacked.`,

	"type-confusion": `§2.5(3): placement new "does not carry out any type-checking". The
placed class here is the same size as the arena's class, so the §5.1
bounds check passes; but its int member aliases the arena class's
function pointer, and an innocent-looking member write becomes pointer
subterfuge. Only class-compatibility enforcement catches it.`,

	"funcptr": `Listing 17: the function pointer is NULL and guarded by an if — it can
never fire legitimately. The overflow gives it a value, enabling
"invocation of a method that was not supposed to be called in a given
context".`,

	"varptr": `Listing 18: the overflow redirects the char* name, so the program's own
subsequent write through it lands at an attacker-chosen address — a
write-what-where primitive built from one corrupted word.`,

	"array-2step-stack": `§4.1: step one corrupts n_unames through the object overflow, bypassing
the program's earlier bounds check. Step two is a strncpy that is
"perfectly secure when we ignore the object overflow scenario" — it now
copies four pools' worth of attacker bytes over the frame, including
the return address.`,

	"array-2step-bss": `§4.2: the same two-step with a global memory pool; the oversized copy
tramples the globals declared after the pool.`,

	"infoleak-array": `Listing 21: the pool held the password file; the user's short string is
placed over it and store() ships MAX_USERDATA bytes. Placement new
sanitizes nothing, so everything past the NUL is the old file — §5.1's
case for memset-before-reuse.`,

	"infoleak-object": `Listing 22: a Student is placed over a dead GradStudent. Construction
initialises only the Student members, so the SSN words survive in the
arena and leave with the stored object.`,

	"dos-loop": `§4.4: the overwritten loop bound makes the service loop "iterated for a
long time" (amplification) or "never taken" — skipping the validation
the loop performs, which is how "authentication mechanisms can also be
bypassed".`,

	"dos-exhaust": `§4.4's resource variant: with allocations inside the hijacked loop, the
attacker "may crash the whole software stack ... by using up all the
memory" — the allocator is exhausted and every later request fails.`,

	"memleak": `Listing 23: each pass allocates a GradStudent arena but releases it
through a Student-typed pointer; "the amount of memory leaked per
iteration is the difference in the size". C++ has no placement delete,
so the fix is writing one (§5.1).`,

	"dangling-write": `The write-side twin of Listing 23's lifecycle bug: the GradStudent is
released through a Student-typed pointer, but a stale view of the dead
object survives and one more ssn store goes through it before the arena
is reused. The store lands in the released tail — outside the
replacement Student's extent — so construction never wipes it. Only a
quarantined shadow plane faults the store itself; §5.1 sanitization
merely scrubs the planted word afterwards.`,
}
