package attack

import (
	"strings"
	"testing"
)

func TestMethodologyCoversEveryScenario(t *testing.T) {
	for _, s := range Catalog() {
		m := Methodology(s.ID)
		if m == "" {
			t.Errorf("scenario %s has no methodology notes", s.ID)
			continue
		}
		if !strings.Contains(m, "§") && !strings.Contains(m, "Listing") {
			t.Errorf("scenario %s methodology lacks a paper citation: %q", s.ID, m)
		}
	}
	if Methodology("no-such-scenario") != "" {
		t.Error("unknown scenario has methodology")
	}
	// No orphaned notes for scenarios that no longer exist.
	known := map[string]bool{}
	for _, s := range Catalog() {
		known[s.ID] = true
	}
	for id := range methodologies {
		if !known[id] {
			t.Errorf("methodology for unknown scenario %q", id)
		}
	}
}
