package attack

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/serial"
)

// runVptrCrash reproduces the §3.8.2 crash variant: "or even crash the
// program by supplying an invalid address as the value of *__vptr". The
// attack's goal here is denial of service, so a segfault at the next
// virtual call IS success.
func runVptrCrash(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("vptr-crash", cfg)
	if _, err := w.p.DefineGlobal("stud1", w.vstudent, false); err != nil {
		return nil, err
	}
	g2, err := w.p.DefineGlobal("stud2", w.vstudent, false)
	if err != nil {
		return nil, err
	}
	stud2, err := w.p.Construct(w.vstudent, g2.Addr)
	if err != nil {
		return nil, err
	}
	arena, err := w.globalArena("stud1")
	if err != nil {
		return nil, err
	}
	gs, err := cfg.Place(w.p, arena, w.vgrad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		if cerr := w.p.VirtualCall(stud2, "getInfo"); cerr != nil && !o.classify(cerr) {
			return nil, cerr
		}
		return o, nil
	}
	idx, err := ssnIndexFor(gs, uint64(g2.Addr))
	if err != nil {
		return nil, err
	}
	// An invalid (unmapped) vtable address.
	w.p.SetInput(0x41414141)
	if err := gs.SetIndex("ssn", idx, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	cerr := w.p.VirtualCall(stud2, "getInfo")
	var ab *machine.AbortError
	if errors.As(cerr, &ab) && ab.Kind == machine.EvSegfault {
		o.Succeeded = true
		o.note("virtual dispatch through invalid vptr crashed the victim (DoS)")
		return o, nil
	}
	if cerr != nil && !o.classify(cerr) {
		return nil, cerr
	}
	return o, nil
}

// runVptrMulti exploits the §3.8.2 note that "in case of multiple
// inheritance, there are more than one vtable pointers in a given
// instance": the overflow rewrites only the *secondary* vptr, so calls
// through the primary interface stay legitimate while the secondary
// interface is hijacked — a blind spot for any defense that validates
// only the pointer at offset 0.
func runVptrMulti(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("vptr-multi", cfg)
	printable := layout.NewClass("Printable").AddVirtual("print")
	serializable := layout.NewClass("Serializable").AddVirtual("serialize")
	record := layout.NewClass("Record", printable, serializable).AddField("payload", layout.Int)

	if _, err := w.p.DefineGlobal("stud", w.student, false); err != nil {
		return nil, err
	}
	grec, err := w.p.DefineGlobal("rec", record, false)
	if err != nil {
		return nil, err
	}
	fake, err := w.p.DefineGlobal("fake_table", layout.ArrayOf(layout.UInt, 2), false)
	if err != nil {
		return nil, err
	}
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	if err := w.p.Mem.WriteUint(fake.Addr, uint64(shell.Addr), int(w.p.Model.PtrSize)); err != nil {
		return nil, err
	}
	rec, err := w.p.Construct(record, grec.Addr)
	if err != nil {
		return nil, err
	}
	rl := rec.Layout()
	if len(rl.VPtrOffsets) != 2 {
		return nil, fmt.Errorf("attack: Record has %d vptrs, want 2", len(rl.VPtrOffsets))
	}
	o.Metrics["secondary_vptr_offset"] = float64(rl.VPtrOffsets[1])

	arena, err := w.globalArena("stud")
	if err != nil {
		return nil, err
	}
	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// Hit ONLY the secondary vptr; the primary stays intact.
	secondary := grec.Addr.Add(int64(rl.VPtrOffsets[1]))
	idx, err := ssnIndexFor(gs, uint64(secondary))
	if err != nil {
		return nil, err
	}
	o.Metrics["ssn_index"] = float64(idx)
	w.p.SetInput(int64(fake.Addr))
	if err := gs.SetIndex("ssn", idx, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}

	// The primary interface still dispatches legitimately...
	if err := w.p.VirtualCall(rec, "print"); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	hijackBeforeSerialize := w.p.HasEvent(machine.EvVTableHijack)
	// ...while the secondary interface is hijacked.
	if err := w.p.VirtualCall(rec, "serialize"); err != nil && !o.classify(err) {
		return nil, err
	}
	if !hijackBeforeSerialize && w.p.HasEvent(machine.EvVTableHijack) && w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("secondary vptr (offset %d) redirected; print() stayed legitimate, serialize() ran system_shell",
			int64(o.Metrics["secondary_vptr_offset"]))
	}
	return o, nil
}

// runTypeConfusion exercises §2.5(3): "Invocation of placement new does
// not carry out any type-checking. If memory is allocated to an instance
// of type T1, then placing an instance of type T2 at that memory succeeds
// even if T2 is not a compatible type of T1." The placed class here has
// the SAME size as the arena's class, so the §5.1 bounds check passes and
// only class-compatibility enforcement catches the confusion — through
// which a double member's bit pattern lands on a function pointer.
func runTypeConfusion(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("type-confusion", cfg)
	// Callback and Student are both 16 bytes under the i386 model.
	callback := layout.NewClass("Callback").
		AddField("id", layout.Int).
		AddField("flags", layout.Int).
		AddField("fn", layout.PtrTo(nil)).
		AddField("pad", layout.Int)
	g, err := w.p.DefineGlobal("cb", callback, false)
	if err != nil {
		return nil, err
	}
	legit, err := w.p.DefineFunc("logEvent", nil, nil)
	if err != nil {
		return nil, err
	}
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	cb, err := w.p.Construct(callback, g.Addr)
	if err != nil {
		return nil, err
	}
	if err := cb.SetPtr("fn", legit.Addr); err != nil {
		return nil, err
	}

	arena := core.Arena{Base: g.Addr, Size: callback.Size(w.p.Model), Label: "cb"}
	o.Metrics["sizeof_arena"] = float64(arena.Size)
	o.Metrics["sizeof_placed"] = float64(w.student.Size(w.p.Model))

	// Same-size placement of an unrelated class: the bounds check has
	// nothing to object to.
	st, err := cfg.PlaceTyped(w.p, arena, callback, w.student)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// Student.year (offset 8) aliases Callback.fn (offset 8): an innocent
	// integer member write through the confused view rewrites the
	// function pointer.
	fnAddr, err := cb.FieldAddr("fn")
	if err != nil {
		return nil, err
	}
	yearAddr, err := st.FieldAddr("year")
	if err != nil {
		return nil, err
	}
	if fnAddr != yearAddr {
		o.note("field aliasing differs under %s: year@%#x fn@%#x", w.p.Model.Name,
			uint64(yearAddr), uint64(fnAddr))
	}
	w.p.SetInput(int64(shell.Addr))
	if err := st.SetInt("year", w.p.Cin()); err != nil {
		return nil, err
	}
	// The program later invokes the callback.
	fn, err := cb.Ptr("fn")
	if err != nil {
		return nil, err
	}
	if cerr := w.p.ExecAddr(fn, "cb.fn"); cerr != nil && !o.classify(cerr) {
		return nil, cerr
	}
	if w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("same-size type confusion (%d == %d bytes): year member write rewrote cb.fn; bounds checking alone cannot see it",
			int(o.Metrics["sizeof_placed"]), int(o.Metrics["sizeof_arena"]))
	}
	return o, nil
}

// runRemoteArray reproduces Listings 5–6 (§3.2): the element count of a
// received array is attacker-chosen, and the population loop
// (`*(st->courseid + i) = *(remoteobj->courseid + i)`) walks past the
// declared member.
func runRemoteArray(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("remote-array", cfg)
	if _, err := w.p.DefineGlobal("stud", w.grad, false); err != nil {
		return nil, err
	}
	victim, err := w.p.DefineGlobal("victim", layout.UInt, false)
	if err != nil {
		return nil, err
	}
	arena, err := w.globalArena("stud")
	if err != nil {
		return nil, err
	}
	reg := serial.NewRegistry(w.student, w.grad)

	// The wire message claims more ssn elements than the class declares;
	// the trusting decoder writes them all (Listing 6's copy loop).
	extra := int64(int32(0x44444444))
	msg := serial.NewMessage("GradStudent").Set("ssn", serial.ArrayValue(1, 2, 3, extra, extra))
	o.note("received array of %d elements for int ssn[3]", 5)

	// An instrumented build wraps the deserializer's placement too.
	cfg.GuardArena(w.p, arena)
	cfg.ShadowArena(w.p, arena)

	var placeErr error
	if cfg.CheckedPlacement {
		_, placeErr = serial.PlaceChecked(w.p.Mem, w.p.Model, reg, arena, msg)
	} else if cfg.RuntimeGuard {
		if inferred, ok := w.p.InferArena(arena.Base); ok {
			_, placeErr = serial.PlaceChecked(w.p.Mem, w.p.Model, reg, inferred, msg)
		} else {
			_, placeErr = serial.PlaceTrusting(w.p.Mem, w.p.Model, reg, arena.Base, msg)
		}
	} else {
		_, placeErr = serial.PlaceTrusting(w.p.Mem, w.p.Model, reg, arena.Base, msg)
	}
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		if o.Prevented && cfg.RuntimeGuard {
			o.PreventedBy = "runtime-guard"
		}
		return o, nil
	}
	got, err := w.p.Mem.ReadU32(victim.Addr)
	if err != nil {
		return nil, err
	}
	if got == 0x44444444 {
		o.Succeeded = true
		o.note("excess array elements written past the object into adjacent global")
	}
	return o, nil
}
