package attack

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/stackm"
)

// passwd is the sensitive pool content of Listing 21's "read a password
// file to mem_pool".
const passwd = "root:x:0:0:root:/root:/bin/bash\ndaemon:x:1:1:/usr/sbin\n"

// runInfoLeakArray reproduces §4.3 Listing 21: a short user string is
// placed over a pool still holding the password file; storing
// MAX_USERDATA bytes from the buffer ships the remnants out.
func runInfoLeakArray(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("infoleak-array", cfg)
	const poolSize, maxUserdata = 64, 48
	if _, err := w.p.DefineGlobal("mem_pool", layout.ArrayOf(layout.Char, poolSize), false); err != nil {
		return nil, err
	}
	arena, err := w.globalArena("mem_pool")
	if err != nil {
		return nil, err
	}
	pool, err := core.NewPool(w.p.Mem, w.p.Model, arena.Base, arena.Size, "mem_pool")
	if err != nil {
		return nil, err
	}
	cfg.ApplyToPool(pool)

	// mmap/read a password file to mem_pool.
	if err := pool.LoadBytes([]byte(passwd)); err != nil {
		return nil, err
	}
	// userdata = new (mem_pool) char[MAX_USERDATA]; MAX_USERDATA <= SIZE,
	// so even a checked placement passes — the leak is not a bounds bug.
	userdata, err := pool.PlaceArray(layout.Char, maxUserdata)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// The attacker supplies a deliberately short string.
	w.p.SetStringInput("bob")
	user := w.p.CinString()
	if err := userdata.StrNCpy(user, uint64(len(user)+1)); err != nil {
		return nil, err
	}
	// store(userdata): ships MAX_USERDATA bytes starting at userdata.
	stored, err := w.p.Mem.Read(userdata.Addr, maxUserdata)
	if err != nil {
		return nil, err
	}
	remnant := stored[len(user)+1:]
	leaked := 0
	for _, b := range remnant {
		if b != 0 {
			leaked++
		}
	}
	o.Metrics["leaked_bytes"] = float64(leaked)
	if leaked > 0 && bytes.Contains(remnant, []byte("/bin/bash")) {
		o.Succeeded = true
		o.note("%d bytes of the password file leaked past the %d-byte user string", leaked, len(user))
	}
	return o, nil
}

// runInfoLeakObject reproduces §4.3 Listing 22: a Student placed over a
// dead GradStudent does not clean its SSN, so storing the object's memory
// arena discloses it.
func runInfoLeakObject(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("infoleak-object", cfg)
	secret := []int64{111223333, 444556666, 777889999}

	_, gSize := w.sizes()
	blk, err := w.p.Heap.Alloc(gSize)
	if err != nil {
		return nil, err
	}
	gst, err := w.p.Construct(w.grad, blk)
	if err != nil {
		return nil, err
	}
	for i, s := range secret {
		if err := gst.SetIndex("ssn", int64(i), s); err != nil {
			return nil, err
		}
	}

	// Later: the arena is reused for a plain Student.
	arena := core.Arena{Base: blk, Size: gSize, Label: "gst arena"}
	if cfg.SanitizePools {
		if err := core.Sanitize(w.p.Mem, arena); err != nil {
			return nil, err
		}
	}
	if _, err := cfg.Place(w.p, arena, w.student); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// store(st): the stored region is the old arena; read the ssn words
	// back through a GradStudent-shaped view of the same bytes.
	leakView, err := gst.ViewAs(w.grad)
	if err != nil {
		return nil, err
	}
	recovered := 0
	for i, s := range secret {
		v, err := leakView.Index("ssn", int64(i))
		if err != nil {
			return nil, err
		}
		if v == s {
			recovered++
		}
	}
	o.Metrics["ssn_recovered"] = float64(recovered)
	if recovered == len(secret) {
		o.Succeeded = true
		o.note("all %d SSN words recovered from the reused arena", recovered)
	}
	return o, nil
}

// runDoSLoop reproduces §4.4: modifying the loop bound makes the service
// loop "iterated for a long time" (amplification) or "never taken"
// (bypassing the validation the loop performs).
func runDoSLoop(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("dos-loop", cfg)
	const baseline = 5

	serve := func(name string, attackN int64) (iters int64, validated bool, placeErr error, callErr error) {
		validated = false
		_, err := w.p.DefineFunc(name, []stackm.LocalSpec{
			{Name: "n", Type: layout.Int},
			{Name: "stud", Type: w.student},
		}, func(p *machine.Process, f *stackm.Frame) error {
			n, err := f.Local("n")
			if err != nil {
				return err
			}
			if err := p.Mem.WriteU32(n.Addr, baseline); err != nil {
				return err
			}
			arena, err := w.localArena(f, "stud")
			if err != nil {
				return err
			}
			gs, err := w.cfg.Place(p, arena, w.grad)
			if err != nil {
				placeErr = err
			} else {
				idx, err := ssnIndexFor(gs, uint64(n.Addr))
				if err != nil {
					return err
				}
				p.SetInput(attackN)
				if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
					return err
				}
			}
			nv, err := p.Mem.ReadInt(n.Addr, 4)
			if err != nil {
				return err
			}
			for i := int64(0); i < nv; i++ {
				iters++
				if i == baseline-1 {
					validated = true // the request is validated on the last legit pass
				}
			}
			return nil
		})
		if err != nil {
			callErr = err
			return
		}
		callErr = w.p.Call(name)
		return
	}

	// Amplification: n -> 2^22.
	iters, _, placeErr, callErr := serve("serveAmplified", 1<<22)
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	o.Metrics["loop_iterations"] = float64(iters)
	o.Metrics["amplification"] = float64(iters) / baseline

	// Starvation: n -> 0 skips the loop entirely, so validation never runs
	// — "authentication mechanisms can also be bypassed".
	_, validated, placeErr, callErr := serve("serveStarved", -1)
	if placeErr != nil && !o.classify(placeErr) {
		return nil, placeErr
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	// An abort (canary, shadow violation, ...) means the service died
	// before serving, not that the attacker slipped past validation.
	bypass := placeErr == nil && callErr == nil && !validated
	if bypass {
		o.Metrics["validation_bypassed"] = 1
	}

	if o.Metrics["amplification"] >= 1000 || bypass {
		o.Succeeded = true
		o.note("loop control seized: %.0fx amplification, validation bypassed=%v",
			o.Metrics["amplification"], bypass)
	}
	return o, nil
}

// runDoSExhaust reproduces the §4.4 resource-exhaustion variant: "if the
// resources are allocated/locked inside the loop, the attacker may crash
// the program ... or might crash the whole software stack ... by using up
// all the memory". The hijacked loop bound drives per-request allocations
// until the allocator is exhausted.
func runDoSExhaust(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("dos-exhaust", cfg)
	const baseline = 5
	const perRequest = 1024

	var placeErr error
	if _, err := w.p.DefineFunc("serveRequests", []stackm.LocalSpec{
		{Name: "n", Type: layout.Int},
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		n, err := f.Local("n")
		if err != nil {
			return err
		}
		if err := p.Mem.WriteU32(n.Addr, baseline); err != nil {
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
		} else {
			idx, err := ssnIndexFor(gs, uint64(n.Addr))
			if err != nil {
				return err
			}
			p.SetInput(1 << 20)
			if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
				return err
			}
		}
		nv, err := p.Mem.ReadInt(n.Addr, 4)
		if err != nil {
			return err
		}
		// Each loop pass allocates (and "locks") a per-request buffer.
		allocs := 0
		for i := int64(0); i < nv; i++ {
			if _, err := p.Heap.Alloc(perRequest); err != nil {
				o.Metrics["allocations_before_oom"] = float64(allocs)
				o.note("allocator exhausted after %d requests: %v", allocs, err)
				return nil // the service is dead in the water
			}
			allocs++
		}
		o.Metrics["allocations_before_oom"] = float64(allocs)
		return nil
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("serveRequests")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	stats := w.p.Heap.Stats()
	o.Metrics["heap_in_use"] = float64(stats.InUse)
	// Success: the attacker drove allocation far past the legitimate
	// baseline and pinned essentially the whole heap.
	if o.Metrics["allocations_before_oom"] > baseline*10 &&
		stats.InUse > w.p.Img.Heap.Size()*9/10 {
		o.Succeeded = true
		o.note("heap exhausted: %d bytes pinned (%.0f%% of the arena)",
			stats.InUse, 100*float64(stats.InUse)/float64(w.p.Img.Heap.Size()))
	}
	return o, nil
}

// runDanglingWrite models the write-side twin of the §4.5 lifecycle
// bug: a placement is released through an undersized pointer
// (Listing 23's pattern) but a stale view of the dead object survives,
// and the attacker drives one more store through it between release and
// arena reuse. The store lands outside the next tenant's extent, so
// zero-initialising the replacement Student never wipes it — only
// quarantine (shadow) faults the store itself, and only arena
// sanitization (§5.1) scrubs the planted word before reuse.
func runDanglingWrite(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("dangling-write", cfg)
	if _, err := w.p.DefineGlobal("pool", w.grad, false); err != nil {
		return nil, err
	}
	arena, err := w.globalArena("pool")
	if err != nil {
		return nil, err
	}
	sSize, gSize := w.sizes()
	o.Metrics["stale_window"] = float64(gSize - sSize)

	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	ssnAddr, err := gs.FieldAddr("ssn")
	if err != nil {
		return nil, err
	}
	// The program releases the record through a Student-typed pointer
	// (Listing 23) but a stale GradStudent* survives in the attacker's
	// reach.
	if err := cfg.Release(w.p, arena.Base, sSize); err != nil {
		return nil, err
	}
	// One more store through the dead placement.
	if err := gs.SetIndex("ssn", 0, 0x5A5A5A5A); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	// Later, the arena is reused for a fresh Student. A sanitizing
	// program (§5.1) scrubs the arena first.
	if cfg.SanitizePools {
		if err := core.Sanitize(w.p.Mem, arena); err != nil {
			return nil, err
		}
	}
	if _, err := cfg.Place(w.p, arena, w.student); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	got, err := w.p.Mem.ReadU32(ssnAddr)
	if err != nil {
		return nil, err
	}
	if got == 0x5A5A5A5A {
		o.Succeeded = true
		o.note("stale store through released placement persisted past reuse: [%#x] = %#x",
			uint64(ssnAddr), got)
	}
	return o, nil
}

// runMemLeak reproduces §4.5 Listing 23: each iteration allocates a
// GradStudent arena but releases it through a Student-typed pointer,
// leaking the size difference every pass.
func runMemLeak(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("memleak", cfg)
	sSize, gSize := w.sizes()
	const iters = 50
	for i := 0; i < iters; i++ {
		blk, err := w.p.Heap.Alloc(gSize)
		if err != nil {
			o.note("allocator exhausted after %d iterations", i)
			break
		}
		if _, err := w.p.Construct(w.grad, blk); err != nil {
			return nil, err
		}
		// Student st = new (stud) Student(); ... stud = null; // "free"
		if _, err := core.PlacementNew(w.p.Mem, w.p.Model, blk, w.student); err != nil {
			return nil, err
		}
		if err := cfg.Release(w.p, blk, sSize); err != nil {
			return nil, err
		}
	}
	leaked := w.p.Tracker.Leaked()
	o.Metrics["leaked_bytes"] = float64(leaked)
	o.Metrics["leak_per_iteration"] = float64(leaked) / iters
	o.Metrics["expected_per_iteration"] = float64(gSize - sSize)
	if leaked > 0 {
		o.Succeeded = true
		o.note("%d bytes leaked over %d iterations (%d per pass = sizeof(GradStudent)-sizeof(Student))",
			leaked, iters, gSize-sSize)
	}
	return o, nil
}
