package attack

import (
	"testing"

	"repro/internal/defense"
	"repro/internal/layout"
)

// TestAttacksGeneraliseAcrossDataModels runs the whole catalogue on the
// natural-alignment 32-bit model and on LP64: the paper's attacks are not
// artifacts of the i386 layout — every one still succeeds undefended, and
// checked placement still stops the overflow class. (The paper only
// evaluated 32-bit Ubuntu; this is the generality ablation DESIGN.md
// calls out.)
func TestAttacksGeneraliseAcrossDataModels(t *testing.T) {
	models := []layout.Model{layout.ILP32, layout.LP64}
	for _, m := range models {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			none := defense.Config{Name: "none-" + m.Name, Model: m}
			for _, s := range Catalog() {
				s := s
				t.Run(s.ID, func(t *testing.T) {
					o, err := s.Run(none)
					if err != nil {
						t.Fatal(err)
					}
					if !o.Succeeded {
						t.Errorf("attack failed on %s: %s %v", m.Name, o.Status(), o.Details)
					}
				})
			}
		})
	}
}

// TestCheckedPlacementGeneralisesToLP64: the §5.1 discipline is equally
// effective on the 64-bit layout.
func TestCheckedPlacementGeneralisesToLP64(t *testing.T) {
	checked := defense.Config{Name: "checked-lp64", Model: layout.LP64, CheckedPlacement: true}
	for _, id := range []string{"construct-overflow", "stack-ret", "vptr-bss", "array-2step-stack"} {
		t.Run(id, func(t *testing.T) {
			o := runScenario(t, id, checked)
			if !o.Prevented {
				t.Errorf("status = %s, want prevented; %v", o.Status(), o.Details)
			}
		})
	}
}

// TestStackGuardGeneralisesToLP64: the canary and its §5.2 bypass behave
// identically on 64-bit frames (8-byte canary/FP/return words).
func TestStackGuardGeneralisesToLP64(t *testing.T) {
	sg := defense.Config{Name: "stackguard-lp64", Model: layout.LP64, StackGuard: true}
	o := runScenario(t, "stack-ret", sg)
	if !o.Detected {
		t.Errorf("linear smash not detected on LP64: %s %v", o.Status(), o.Details)
	}
	o = runScenario(t, "canary-skip", sg)
	if !o.Succeeded {
		t.Errorf("canary skip failed on LP64: %s %v", o.Status(), o.Details)
	}
}
