package attack

import (
	"math"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/object"
	"repro/internal/stackm"
)

// localArena builds the checked-placement arena for a frame local.
func (w *world) localArena(f *stackm.Frame, name string) (core.Arena, error) {
	l, err := f.Local(name)
	if err != nil {
		return core.Arena{}, err
	}
	return core.Arena{Base: l.Addr, Size: l.Type.Size(w.p.Model), Label: "local " + name}, nil
}

// stackRetAttack is the shared §3.6 skeleton: addStudent() places a
// GradStudent over its local stud and feeds attacker words into ssn[].
// The write strategy receives the placed object and the frame so it can
// perform either the spray (Listing 13) or the §5.2 canary-skip.
func (w *world) stackRetAttack(o *Outcome, write func(gs *object.Object, f *stackm.Frame) error) error {
	var placeErr error
	if _, err := w.p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err // the program takes its error path and returns
			return nil
		}
		ssnBase, err := gs.FieldAddr("ssn")
		if err != nil {
			return err
		}
		o.Metrics["ret_ssn_index"] = float64(f.RetSlot.Diff(ssnBase) / 4)
		return write(gs, f)
	}); err != nil {
		return err
	}
	callErr := w.p.Call("addStudent")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return placeErr
		}
		return nil
	}
	if callErr != nil && !o.classify(callErr) {
		return callErr
	}
	return nil
}

// runStackRet reproduces §3.6.1 Listing 13: the while loop sprays every
// positive dssn into ssn[i], walking over (canary,) saved FP and the
// return address.
func runStackRet(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("stack-ret", cfg)
	logf, err := w.p.DefineFunc("logStudent", nil, nil)
	if err != nil {
		return nil, err
	}
	w.p.SetInput(int64(logf.Addr), int64(logf.Addr), int64(logf.Addr))
	if err := w.stackRetAttack(o, func(gs *object.Object, _ *stackm.Frame) error {
		for i := int64(0); i < 3; i++ {
			if dssn := w.p.Cin(); dssn > 0 {
				if err := gs.SetIndex("ssn", i, dssn); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if w.p.HasEvent(machine.EvArcInjection) {
		o.Succeeded = true
		o.note("return address redirected to logStudent() at %#x", uint64(logf.Addr))
	}
	return o, nil
}

// runCanarySkip reproduces the §5.2 experiment: supply non-positive values
// for the words covering the canary (and saved FP) so only the
// return-address word is written; StackGuard verifies an intact canary
// and the hijack proceeds — unless a shadow stack is present.
func runCanarySkip(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("canary-skip", cfg)
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	w.p.SetInput(int64(shell.Addr))
	if err := w.stackRetAttack(o, func(gs *object.Object, f *stackm.Frame) error {
		ssnBase, err := gs.FieldAddr("ssn")
		if err != nil {
			return err
		}
		k := f.RetSlot.Diff(ssnBase) / 4
		o.Metrics["written_index"] = float64(k)
		// The two earlier loop iterations receive dssn <= 0 and skip the
		// canary/FP words entirely.
		return gs.SetIndex("ssn", k, w.p.Cin())
	}); err != nil {
		return nil, err
	}
	if w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("StackGuard bypassed: canary untouched, return hijacked")
	}
	return o, nil
}

// runArcInjection reproduces §3.6.2's arc injection: the corrupted return
// address names "the address of a method that makes a system call in a
// privileged mode".
func runArcInjection(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("arc-injection", cfg)
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	w.p.SetInput(int64(shell.Addr), int64(shell.Addr), int64(shell.Addr))
	if err := w.stackRetAttack(o, func(gs *object.Object, _ *stackm.Frame) error {
		for i := int64(0); i < 3; i++ {
			if dssn := w.p.Cin(); dssn > 0 {
				if err := gs.SetIndex("ssn", i, dssn); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("privileged function executed via corrupted return address")
	}
	return o, nil
}

// runCodeInjection reproduces §3.6.2's code injection: shellcode goes into
// a lower local buffer and the return address is pointed at it. The stud
// local is declared first so its overflow reaches the return address.
func runCodeInjection(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("code-injection", cfg)
	var placeErr error
	if _, err := w.p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "stud", Type: w.student},
		{Name: "buf", Type: layout.ArrayOf(layout.Char, 64)},
	}, func(p *machine.Process, f *stackm.Frame) error {
		buf, err := f.Local("buf")
		if err != nil {
			return err
		}
		// "the size of all local variables ... is enough to inject shell
		// code": the payload arrives through ordinary input handling.
		if err := p.WriteShellcode(buf.Addr); err != nil {
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
			return nil
		}
		for i := int64(0); i < 3; i++ {
			if err := gs.SetIndex("ssn", i, int64(buf.Addr)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("addStudent")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	if w.p.HasEvent(machine.EvCodeInjection) {
		o.Succeeded = true
		o.note("shellcode executed from the stack: shell spawned")
	}
	return o, nil
}

// runVarStack reproduces §3.7.2 Listing 15: the loop bound n, declared
// before stud, is rewritten by the overflowing ssn[]; the experiment also
// reports which ssn index the padding arithmetic selects.
func runVarStack(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("var-stack", cfg)
	const attackN = 1 << 20
	var placeErr error
	if _, err := w.p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "n", Type: layout.Int},
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		n, err := f.Local("n")
		if err != nil {
			return err
		}
		if err := p.Mem.WriteU32(n.Addr, 5); err != nil {
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
		} else {
			idx, err := ssnIndexFor(gs, uint64(n.Addr))
			if err != nil {
				return err
			}
			o.Metrics["n_ssn_index"] = float64(idx)
			p.SetInput(attackN)
			if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
				return err
			}
		}
		// for (int i = 0; i < n; i++) { ... }
		nv, err := p.Mem.ReadInt(n.Addr, 4)
		if err != nil {
			return err
		}
		iters := 0
		for i := int64(0); i < nv; i++ {
			iters++
		}
		o.Metrics["loop_iterations"] = float64(iters)
		o.Metrics["n_after"] = float64(nv)
		return nil
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("addStudent")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	if o.Metrics["n_after"] == attackN {
		o.Succeeded = true
		o.note("local n overwritten 5 -> %d via ssn[%d]; loop amplified %.0fx",
			attackN, int64(o.Metrics["n_ssn_index"]), o.Metrics["loop_iterations"]/5)
	}
	return o, nil
}

// runMemberVar reproduces §3.8.1 Listing 16: the adjacent object `first`
// has its gpa member rewritten by the overflow of stud.
func runMemberVar(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("member-var", cfg)
	var placeErr error
	if _, err := w.p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "first", Type: w.student},
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		fl, err := f.Local("first")
		if err != nil {
			return err
		}
		first, err := object.View(p.Mem, w.student, p.Model, fl.Addr)
		if err != nil {
			return err
		}
		if err := first.Zero(); err != nil {
			return err
		}
		if err := first.SetFloat("gpa", 3.9); err != nil {
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
			return nil
		}
		idx, err := ssnIndexFor(gs, uint64(fl.Addr))
		if err != nil {
			return err
		}
		bits := math.Float64bits(4.0)
		p.SetInput(int64(int32(uint32(bits))), int64(int32(uint32(bits>>32))))
		if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
			return err
		}
		if err := gs.SetIndex("ssn", idx+1, p.Cin()); err != nil {
			return err
		}
		gpa, err := first.Float("gpa")
		if err != nil {
			return err
		}
		o.Metrics["first_gpa_after"] = gpa
		return nil
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("addStudent")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	if o.Metrics["first_gpa_after"] == 4.0 {
		o.Succeeded = true
		o.note("first.gpa overwritten 3.9 -> 4.0 through object overflow")
	}
	return o, nil
}
