package attack

import (
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stackm"
)

// runVptrBss reproduces §3.8.2 "Via Data/bss Overflow": stud1's overflow
// rewrites stud2's vtable pointer ("the first entry in the object stud2 is
// not gpa, but *__vptr") with the address of an attacker-prepared table,
// so the next virtual call runs an arbitrary method.
func runVptrBss(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("vptr-bss", cfg)
	if _, err := w.p.DefineGlobal("stud1", w.vstudent, false); err != nil {
		return nil, err
	}
	g2, err := w.p.DefineGlobal("stud2", w.vstudent, false)
	if err != nil {
		return nil, err
	}
	// Attacker-reachable fake vtable: an int array in bss whose slot 0
	// holds the privileged function's address.
	fake, err := w.p.DefineGlobal("names", layout.ArrayOf(layout.UInt, 2), false)
	if err != nil {
		return nil, err
	}
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	if err := w.p.Mem.WriteUint(fake.Addr, uint64(shell.Addr), int(w.p.Model.PtrSize)); err != nil {
		return nil, err
	}

	// Legitimate construction of stud2 installs its real vptr.
	stud2, err := w.p.Construct(w.vstudent, g2.Addr)
	if err != nil {
		return nil, err
	}

	// Attack: place a VGradStudent over stud1.
	arena, err := w.globalArena("stud1")
	if err != nil {
		return nil, err
	}
	gs, err := cfg.Place(w.p, arena, w.vgrad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		// The program still makes its virtual call, legitimately.
		if cerr := w.p.VirtualCall(stud2, "getInfo"); cerr != nil && !o.classify(cerr) {
			return nil, cerr
		}
		return o, nil
	}
	// stud2's vptr is its first word; find the ssn index that lands on it.
	idx, err := ssnIndexFor(gs, uint64(g2.Addr))
	if err != nil {
		return nil, err
	}
	o.Metrics["ssn_index"] = float64(idx)
	w.p.SetInput(int64(fake.Addr))
	if err := gs.SetIndex("ssn", idx, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}

	if cerr := w.p.VirtualCall(stud2, "getInfo"); cerr != nil && !o.classify(cerr) {
		return nil, cerr
	}
	if w.p.HasEvent(machine.EvVTableHijack) && w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("stud2.__vptr redirected to attacker table; system_shell invoked via getInfo()")
	}
	return o, nil
}

// runVptrStack reproduces §3.8.2 "Via Stack Overflow": the vptr of the
// adjacent local object `first` is rewritten, as in Listing 16 but with
// polymorphic classes.
func runVptrStack(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("vptr-stack", cfg)
	fake, err := w.p.DefineGlobal("fake_table", layout.ArrayOf(layout.UInt, 2), false)
	if err != nil {
		return nil, err
	}
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	if err := w.p.Mem.WriteUint(fake.Addr, uint64(shell.Addr), int(w.p.Model.PtrSize)); err != nil {
		return nil, err
	}

	var placeErr error
	if _, err := w.p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "first", Type: w.vstudent},
		{Name: "stud", Type: w.vstudent},
	}, func(p *machine.Process, f *stackm.Frame) error {
		fl, err := f.Local("first")
		if err != nil {
			return err
		}
		first, err := p.Construct(w.vstudent, fl.Addr)
		if err != nil {
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.vgrad)
		if err != nil {
			placeErr = err
		} else {
			idx, err := ssnIndexFor(gs, uint64(fl.Addr))
			if err != nil {
				return err
			}
			o.Metrics["ssn_index"] = float64(idx)
			p.SetInput(int64(fake.Addr))
			if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
				return err
			}
		}
		return p.VirtualCall(first, "getInfo")
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("addStudent")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	if w.p.HasEvent(machine.EvVTableHijack) && w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("first.__vptr redirected on the stack; privileged method invoked")
	}
	return o, nil
}

// runFuncPtr reproduces §3.9 Listing 17: the NULL createStudentAccount
// function pointer above stud is given an attacker value, and the guarded
// call site — which would never have fired — invokes it.
func runFuncPtr(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("funcptr", cfg)
	shell, err := w.p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		return nil, err
	}
	var placeErr error
	if _, err := w.p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "createStudentAccount", Type: layout.PtrTo(nil)},
		{Name: "stud", Type: w.student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		fp, err := f.Local("createStudentAccount")
		if err != nil {
			return err
		}
		if err := p.Mem.WriteUint(fp.Addr, 0, int(p.Model.PtrSize)); err != nil { // = NULL
			return err
		}
		arena, err := w.localArena(f, "stud")
		if err != nil {
			return err
		}
		gs, err := w.cfg.Place(p, arena, w.grad)
		if err != nil {
			placeErr = err
		} else {
			idx, err := ssnIndexFor(gs, uint64(fp.Addr))
			if err != nil {
				return err
			}
			o.Metrics["ssn_index"] = float64(idx)
			p.SetInput(int64(shell.Addr))
			if err := gs.SetIndex("ssn", idx, p.Cin()); err != nil {
				return err
			}
		}
		// if (createStudentAccount != NULL) createStudentAccount(...);
		v, err := p.Mem.ReadUint(fp.Addr, int(p.Model.PtrSize))
		if err != nil {
			return err
		}
		if v != 0 {
			return p.ExecAddr(machineAddr(v), "createStudentAccount")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	callErr := w.p.Call("addStudent")
	if placeErr != nil {
		if !o.classify(placeErr) {
			return nil, placeErr
		}
		return o, nil
	}
	if callErr != nil && !o.classify(callErr) {
		return nil, callErr
	}
	if w.p.HasEvent(machine.EvPrivilegedCall) {
		o.Succeeded = true
		o.note("null function pointer redirected; method invoked that was never supposed to run")
	}
	return o, nil
}

// runVarPtr reproduces §3.10 Listing 18: the char* name is redirected so
// the program's subsequent write through it lands at an attacker-chosen
// location.
func runVarPtr(cfg defense.Config) (*Outcome, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	o := newOutcome("varptr", cfg)
	if _, err := w.p.DefineGlobal("stud", w.student, false); err != nil {
		return nil, err
	}
	namePtr, err := w.p.DefineGlobal("name", layout.PtrTo(layout.Char), false)
	if err != nil {
		return nil, err
	}
	adminFlag, err := w.p.DefineGlobal("adminFlag", layout.UInt, false)
	if err != nil {
		return nil, err
	}
	// name = new char[16];
	nameBuf, err := w.p.Heap.Alloc(16)
	if err != nil {
		return nil, err
	}
	if err := w.p.Mem.WriteUint(namePtr.Addr, uint64(nameBuf), int(w.p.Model.PtrSize)); err != nil {
		return nil, err
	}

	arena, err := w.globalArena("stud")
	if err != nil {
		return nil, err
	}
	gs, err := cfg.Place(w.p, arena, w.grad)
	if err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}
	idx, err := ssnIndexFor(gs, uint64(namePtr.Addr))
	if err != nil {
		return nil, err
	}
	o.Metrics["ssn_index"] = float64(idx)
	w.p.SetInput(int64(adminFlag.Addr))
	if err := gs.SetIndex("ssn", idx, w.p.Cin()); err != nil {
		if !o.classify(err) {
			return nil, err
		}
		return o, nil
	}

	// The program later writes user data "into name".
	ptr, err := w.p.Mem.ReadUint(namePtr.Addr, int(w.p.Model.PtrSize))
	if err != nil {
		return nil, err
	}
	if err := w.p.Mem.StrNCpy(machineAddr(ptr), "YES!", 4); err != nil {
		return nil, err
	}
	got, err := w.p.Mem.Read(adminFlag.Addr, 4)
	if err != nil {
		return nil, err
	}
	if string(got) == "YES!" {
		o.Succeeded = true
		o.note("name pointer redirected %#x -> %#x; user data written over adminFlag",
			uint64(nameBuf), uint64(adminFlag.Addr))
	}
	return o, nil
}

// machineAddr converts a raw pointer word read out of simulated memory
// back to an address.
func machineAddr(v uint64) mem.Addr { return mem.Addr(v) }
