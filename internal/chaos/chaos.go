// Package chaos implements a deterministic, seed-driven fault injector
// for the simulated address space. It hooks into mem.Memory's checked
// read/write path via the mem.AccessHook seam and perturbs otherwise
// healthy accesses with the transient faults a real machine suffers
// under adversity: flipped bits, dropped stores, torn (partial) writes,
// spurious permission faults, and pages that vanish mid-run.
//
// Determinism is the contract that makes chaos usable as an experiment
// rather than a fuzzer: an Injector built from the same Config observes
// the same access sequence (the simulated process is single-threaded)
// and therefore injects byte-identical faults at the same access
// numbers. Campaigns derive per-job seeds with DeriveSeed so every
// (run, scenario, defense) cell gets an independent but reproducible
// fault schedule.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/mem"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Injectable fault kinds.
const (
	// KindBitFlip flips one random bit of the access payload: on a
	// write the corrupted bytes are stored; on a read the program sees
	// corrupted bytes while memory is untouched.
	KindBitFlip Kind = iota + 1
	// KindDropWrite silently discards a store while reporting success.
	KindDropWrite
	// KindTornWrite commits only a prefix of a multi-byte store — the
	// classic partial write of an interrupted instruction sequence.
	// Single-byte stores cannot tear and degrade to a dropped write.
	KindTornWrite
	// KindPermFault raises a one-shot spurious permission fault; the
	// access, if retried, goes through.
	KindPermFault
	// KindUnmapPage unmaps the page containing the access on demand:
	// this access and every later access touching the page fault with
	// mem.FaultUnmapped until the injector is reset.
	KindUnmapPage
)

var kindNames = map[Kind]string{
	KindBitFlip:   "bitflip",
	KindDropWrite: "dropwrite",
	KindTornWrite: "tornwrite",
	KindPermFault: "permfault",
	KindUnmapPage: "unmap",
}

// String returns the kind's short name, which ParseKinds accepts back.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds returns every injectable kind in declaration order.
func AllKinds() []Kind {
	return []Kind{KindBitFlip, KindDropWrite, KindTornWrite, KindPermFault, KindUnmapPage}
}

// ParseKinds parses a comma-separated fault-kind list ("bitflip,unmap");
// "all" or "" selects every kind. Duplicates are collapsed; order is
// normalised to declaration order so the same selection always produces
// the same injector behaviour regardless of how it was spelled.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	byName := map[string]Kind{}
	for k, n := range kindNames {
		byName[n] = k
	}
	// Accept a few natural aliases.
	byName["drop"] = KindDropWrite
	byName["torn"] = KindTornWrite
	byName["perm"] = KindPermFault
	byName["flip"] = KindBitFlip
	seen := map[Kind]bool{}
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		k, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(kindNames))
			for _, n := range kindNames {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("chaos: unknown fault kind %q (known: %s, or all)", name, strings.Join(known, ","))
		}
		seen[k] = true
	}
	var out []Kind
	for _, k := range AllKinds() {
		if seen[k] {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty fault kind list %q", s)
	}
	return out, nil
}

// KindNames renders a kind slice as its canonical comma-separated form.
func KindNames(kinds []Kind) string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

// Config parameterises an Injector. The zero value is usable: it
// injects every kind with the default probability from seed 0.
type Config struct {
	// Seed drives the fault schedule; equal seeds yield equal schedules.
	Seed int64
	// Prob is the per-access injection probability in (0,1]; zero
	// selects the default of 0.02.
	Prob float64
	// Kinds restricts the injectable kinds; empty selects all.
	Kinds []Kind
	// MaxFaults bounds the number of injected faults (0 = unlimited).
	// A bounded budget is what lets supervised retries converge: once
	// the budget is spent the injector becomes a pure observer.
	MaxFaults int
	// PanicOnFault delivers injected permission/unmap faults by
	// panicking with the *mem.Fault instead of returning it through the
	// access's error path — the synchronous-signal model: a SIGSEGV
	// does not politely come back as a return value. The supervisor's
	// panic recovery turns it into a structured crash record.
	PanicOnFault bool
	// PageSize is the unmap granularity; zero selects 4096.
	PageSize uint64
	// OnInject, when non-nil, observes every injection as it is
	// recorded — the observability seam through which the obs layer
	// counts faults by kind and emits chaos trace events. The callback
	// is passive: it must not touch the injector or the memory it is
	// armed on, and it does not perturb the deterministic schedule
	// (the RNG is never consulted on its behalf).
	OnInject func(Injection)
}

func (c Config) prob() float64 {
	if c.Prob <= 0 {
		return 0.02
	}
	return c.Prob
}

func (c Config) pageSize() uint64 {
	if c.PageSize == 0 {
		return 4096
	}
	return c.PageSize
}

func (c Config) kinds() []Kind {
	if len(c.Kinds) == 0 {
		return AllKinds()
	}
	return c.Kinds
}

// Injection records one injected fault for the campaign transcript.
// Every field is deterministic under a fixed seed.
type Injection struct {
	// Seq is the injection's ordinal (0-based).
	Seq int `json:"seq"`
	// Access is the 1-based access number at which the fault landed.
	Access int `json:"access"`
	// Op is "read" or "write".
	Op string `json:"op"`
	// Kind is the fault kind's short name.
	Kind string `json:"kind"`
	// Addr is the access address.
	Addr uint64 `json:"addr"`
	// Detail carries kind-specific data (flipped bit, torn length, ...).
	Detail string `json:"detail,omitempty"`
}

// Injector is a deterministic fault injector. It is not safe for
// concurrent use — arm it on one simulated process at a time, which is
// also what keeps the access sequence (and thus the schedule)
// reproducible.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	accesses int
	injected []Injection
	unmapped map[mem.Addr]bool // page-base set
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		unmapped: make(map[mem.Addr]bool),
	}
}

// Arm installs the injector's hook on m. Several memories may be armed
// in sequence (e.g. one per supervised retry); the fault schedule
// continues across them, so a retry does not replay the first attempt's
// faults — it lives in the same adverse world, further along.
func (in *Injector) Arm(m *mem.Memory) { m.SetAccessHook(in.Hook()) }

// Disarm removes the injector's hook from m.
func (in *Injector) Disarm(m *mem.Memory) { m.SetAccessHook(nil) }

// Accesses returns how many checked accesses the injector has observed.
func (in *Injector) Accesses() int { return in.accesses }

// Count returns how many faults have been injected.
func (in *Injector) Count() int { return len(in.injected) }

// Injections returns the injected-fault transcript in order.
func (in *Injector) Injections() []Injection {
	out := make([]Injection, len(in.injected))
	copy(out, in.injected)
	return out
}

// UnmapPage unmaps the page containing addr on demand, independent of
// the probabilistic schedule. Subsequent accesses to the page fault.
func (in *Injector) UnmapPage(addr mem.Addr) {
	in.unmapped[in.pageOf(addr)] = true
}

// Reset forgets unmapped pages and restarts the schedule from the seed.
// The injected-fault transcript and access counter are cleared too, so
// a reset injector is indistinguishable from a freshly built one.
func (in *Injector) Reset() {
	in.rng = rand.New(rand.NewSource(in.cfg.Seed))
	in.accesses = 0
	in.injected = nil
	in.unmapped = make(map[mem.Addr]bool)
}

func (in *Injector) pageOf(addr mem.Addr) mem.Addr {
	ps := in.cfg.pageSize()
	return mem.Addr(uint64(addr) / ps * ps)
}

func (in *Injector) touchesUnmapped(addr mem.Addr, n int) bool {
	if len(in.unmapped) == 0 {
		return false
	}
	ps := in.cfg.pageSize()
	first := in.pageOf(addr)
	last := in.pageOf(addr.Add(int64(maxInt(n, 1) - 1)))
	for p := first; ; p = p.Add(int64(ps)) {
		if in.unmapped[p] {
			return true
		}
		if p == last {
			return false
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// applicable returns the enabled kinds that make sense for the op.
// Reads can suffer bit flips, permission faults, and unmapped pages;
// writes additionally drop and tear.
func (in *Injector) applicable(op mem.AccessKind, n int) []Kind {
	var out []Kind
	for _, k := range in.cfg.kinds() {
		switch k {
		case KindDropWrite, KindTornWrite:
			if op != mem.AccessWrite {
				continue
			}
		}
		out = append(out, k)
	}
	return out
}

// deliver records the injection and returns (or panics with) the fault.
func (in *Injector) deliver(rec Injection, f *mem.Fault) mem.HookDecision {
	in.record(rec)
	if in.cfg.PanicOnFault {
		panic(f)
	}
	return mem.HookDecision{Fault: f}
}

func (in *Injector) record(rec Injection) {
	rec.Seq = len(in.injected)
	rec.Access = in.accesses
	in.injected = append(in.injected, rec)
	if in.cfg.OnInject != nil {
		in.cfg.OnInject(rec)
	}
}

// Hook returns the mem.AccessHook implementing the injector's schedule.
func (in *Injector) Hook() mem.AccessHook {
	return func(op mem.AccessKind, addr mem.Addr, data []byte) mem.HookDecision {
		in.accesses++
		// Pages already unmapped fault on every touch; only the unmap
		// itself was the injection, so consequences are not recorded.
		if in.touchesUnmapped(addr, len(data)) {
			f := &mem.Fault{Kind: mem.FaultUnmapped, Addr: addr, Size: uint64(len(data))}
			if in.cfg.PanicOnFault {
				panic(f)
			}
			return mem.HookDecision{Fault: f}
		}
		if in.cfg.MaxFaults > 0 && len(in.injected) >= in.cfg.MaxFaults {
			return mem.HookDecision{}
		}
		if in.rng.Float64() >= in.cfg.prob() {
			return mem.HookDecision{}
		}
		kinds := in.applicable(op, len(data))
		if len(kinds) == 0 {
			return mem.HookDecision{}
		}
		kind := kinds[in.rng.Intn(len(kinds))]
		rec := Injection{Op: op.String(), Kind: kind.String(), Addr: uint64(addr)}

		switch kind {
		case KindBitFlip:
			if len(data) == 0 {
				return mem.HookDecision{}
			}
			bit := in.rng.Intn(len(data) * 8)
			flipped := append([]byte(nil), data...)
			flipped[bit/8] ^= 1 << (bit % 8)
			rec.Detail = fmt.Sprintf("bit %d", bit)
			in.record(rec)
			return mem.HookDecision{Replace: flipped}

		case KindDropWrite:
			in.record(rec)
			return mem.HookDecision{Drop: true}

		case KindTornWrite:
			if len(data) < 2 {
				// A one-byte store cannot tear; it drops instead.
				rec.Kind = KindDropWrite.String()
				rec.Detail = "degenerate tear"
				in.record(rec)
				return mem.HookDecision{Drop: true}
			}
			cut := 1 + in.rng.Intn(len(data)-1)
			rec.Detail = fmt.Sprintf("%d/%d bytes", cut, len(data))
			in.record(rec)
			return mem.HookDecision{Replace: append([]byte(nil), data[:cut]...)}

		case KindPermFault:
			want := mem.PermRead
			if op == mem.AccessWrite {
				want = mem.PermWrite
			}
			rec.Detail = "transient"
			return in.deliver(rec, &mem.Fault{
				Kind: mem.FaultPerm, Addr: addr, Size: uint64(len(data)), Want: want,
			})

		case KindUnmapPage:
			page := in.pageOf(addr)
			in.unmapped[page] = true
			rec.Detail = fmt.Sprintf("page %#x", uint64(page))
			return in.deliver(rec, &mem.Fault{
				Kind: mem.FaultUnmapped, Addr: addr, Size: uint64(len(data)),
			})
		}
		return mem.HookDecision{}
	}
}

// DeriveSeed maps a base seed plus a label path to an independent,
// reproducible sub-seed via FNV-1a — how campaigns give every
// (run, scenario, defense) job its own schedule.
func DeriveSeed(base int64, labels ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}
