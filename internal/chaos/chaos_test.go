package chaos

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

func newImage(t *testing.T) *mem.Image {
	t.Helper()
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// hammer performs a fixed deterministic access pattern, ignoring faults.
func hammer(img *mem.Image, n int) {
	base := img.Data.Base
	for i := 0; i < n; i++ {
		_ = img.Mem.WriteU32(base.Add(int64(i%1024)*4), uint32(i))
		_, _ = img.Mem.ReadU32(base.Add(int64(i%1024) * 4))
	}
}

func TestInjectorDeterminism(t *testing.T) {
	transcript := func() []Injection {
		img := newImage(t)
		in := New(Config{Seed: 42, Prob: 0.05})
		in.Arm(img.Mem)
		hammer(img, 2000)
		return in.Injections()
	}
	a, b := transcript(), transcript()
	if len(a) == 0 {
		t.Fatal("no faults injected at prob 0.05 over 4000 accesses")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\nvs\n%v", a, b)
	}
	// A different seed must produce a different schedule.
	img := newImage(t)
	in := New(Config{Seed: 43, Prob: 0.05})
	in.Arm(img.Mem)
	hammer(img, 2000)
	if reflect.DeepEqual(a, in.Injections()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestInjectorBudget(t *testing.T) {
	img := newImage(t)
	in := New(Config{Seed: 7, Prob: 1.0, MaxFaults: 3, Kinds: []Kind{KindDropWrite}})
	in.Arm(img.Mem)
	hammer(img, 100)
	if got := in.Count(); got != 3 {
		t.Fatalf("injected %d faults, budget was 3", got)
	}
	if in.Accesses() < 100 {
		t.Fatalf("accesses = %d, hook stopped observing after budget", in.Accesses())
	}
}

func TestBitFlipCorruptsExactlyOneBit(t *testing.T) {
	img := newImage(t)
	in := New(Config{Seed: 1, Prob: 1.0, MaxFaults: 1, Kinds: []Kind{KindBitFlip}})
	in.Arm(img.Mem)
	if err := img.Mem.WriteU32(img.Data.Base, 0); err != nil {
		t.Fatal(err)
	}
	in.Disarm(img.Mem)
	v, err := img.Mem.ReadU32(img.Data.Base)
	if err != nil {
		t.Fatal(err)
	}
	if popcount32(v) != 1 {
		t.Fatalf("stored %#x, want exactly one flipped bit", v)
	}
}

func popcount32(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestTornWriteIsPrefix(t *testing.T) {
	img := newImage(t)
	in := New(Config{Seed: 3, Prob: 1.0, MaxFaults: 1, Kinds: []Kind{KindTornWrite}})
	in.Arm(img.Mem)
	if err := img.Mem.Write(img.Data.Base, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	in.Disarm(img.Mem)
	got, err := img.Mem.Read(img.Data.Base, 8)
	if err != nil {
		t.Fatal(err)
	}
	cut := 0
	for cut < 8 && got[cut] == byte(cut+1) {
		cut++
	}
	if cut == 0 || cut == 8 {
		t.Fatalf("torn write stored % x, want a strict prefix", got)
	}
	for i := cut; i < 8; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x past the tear, want 0", i, got[i])
		}
	}
}

func TestPermFaultIsTransient(t *testing.T) {
	img := newImage(t)
	in := New(Config{Seed: 5, Prob: 1.0, MaxFaults: 1, Kinds: []Kind{KindPermFault}})
	in.Arm(img.Mem)
	err := img.Mem.WriteU8(img.Data.Base, 1)
	f, ok := mem.IsFault(err)
	if !ok || f.Kind != mem.FaultPerm {
		t.Fatalf("first access error = %v, want transient permission fault", err)
	}
	// Budget spent: the retry goes through.
	if err := img.Mem.WriteU8(img.Data.Base, 1); err != nil {
		t.Fatalf("retry after transient fault failed: %v", err)
	}
}

func TestUnmapPageIsPersistent(t *testing.T) {
	img := newImage(t)
	in := New(Config{Seed: 9, Prob: 1.0, MaxFaults: 1, Kinds: []Kind{KindUnmapPage}})
	in.Arm(img.Mem)
	err := img.Mem.WriteU8(img.Data.Base, 1)
	f, ok := mem.IsFault(err)
	if !ok || f.Kind != mem.FaultUnmapped {
		t.Fatalf("unmap injection error = %v", err)
	}
	// Budget is spent, but the page stays gone.
	if _, err := img.Mem.ReadU8(img.Data.Base.Add(17)); err == nil {
		t.Fatal("read of unmapped page succeeded")
	}
	// An address on a different page is untouched.
	if err := img.Mem.WriteU8(img.Data.Base.Add(8192), 1); err != nil {
		t.Fatalf("write to a live page failed: %v", err)
	}
	// Reset restores the world and the schedule.
	in.Reset()
	if err := img.Mem.WriteU8(img.Data.Base, 1); err == nil {
		_ = err
	}
	if in.Accesses() != 1 {
		t.Fatalf("accesses after reset = %d, want 1", in.Accesses())
	}
}

func TestPanicOnFaultPanicsWithFault(t *testing.T) {
	img := newImage(t)
	in := New(Config{Seed: 11, Prob: 1.0, MaxFaults: 1, Kinds: []Kind{KindUnmapPage}, PanicOnFault: true})
	in.Arm(img.Mem)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic delivered")
		}
		f, ok := r.(*mem.Fault)
		if !ok || f.Kind != mem.FaultUnmapped {
			t.Fatalf("panic value = %v (%T)", r, r)
		}
	}()
	_ = img.Mem.WriteU8(img.Data.Base, 1)
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("all")
	if err != nil || len(all) != len(AllKinds()) {
		t.Fatalf("ParseKinds(all) = %v, %v", all, err)
	}
	got, err := ParseKinds("unmap, bitflip")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Kind{KindBitFlip, KindUnmapPage}) {
		t.Fatalf("ParseKinds normalisation = %v", got)
	}
	// Aliases and canonical names agree.
	a, _ := ParseKinds("drop,torn,perm")
	b, _ := ParseKinds("dropwrite,tornwrite,permfault")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("alias parse %v != canonical parse %v", a, b)
	}
	if _, err := ParseKinds("quantum"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if KindNames(got) != "bitflip,unmap" {
		t.Fatalf("KindNames = %q", KindNames(got))
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	a := DeriveSeed(42, "0", "stack-ret", "none")
	b := DeriveSeed(42, "0", "stack-ret", "nx")
	c := DeriveSeed(42, "1", "stack-ret", "none")
	d := DeriveSeed(42, "0", "stack-ret", "none")
	if a == b || a == c || b == c {
		t.Fatalf("derived seeds collide: %d %d %d", a, b, c)
	}
	if a != d {
		t.Fatal("DeriveSeed is not deterministic")
	}
	// Label boundaries matter: ("ab","c") != ("a","bc").
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Fatal("label concatenation ambiguity")
	}
}
