package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/service"
)

func testFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f := NewFleet(n, serve.Config{
		Workers: 4, Queue: 32, CacheSize: 64, CacheTTL: time.Minute,
		Deadline: 10 * time.Second, MaxDeadline: 30 * time.Second,
	}, RouterConfig{Seed: 1})
	t.Cleanup(f.Close)
	return f
}

// runJSON issues one request through the router and decodes the body.
func runJSON(t *testing.T, f *Fleet, req service.Request, headers map[string]string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, f.URL()+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST /run: invalid JSON: %v", err)
	}
	return resp.StatusCode, out
}

// workerIndex maps a worker base URL back to its fleet slot.
func workerIndex(t *testing.T, f *Fleet, url string) int {
	t.Helper()
	for i := 0; i < f.Size(); i++ {
		if f.WorkerURL(i) == url {
			return i
		}
	}
	t.Fatalf("no fleet worker with URL %s", url)
	return -1
}

// diverseRequest builds the i-th of a family of requests with distinct
// cache keys that still succeed deterministically: repeat > 1 is part
// of the key (a seed without chaos is normalized out, and chaos runs
// can legitimately die).
func diverseRequest(seed int64) service.Request {
	return service.Request{Scenario: "stack-ret", Repeat: int(seed%255) + 2}
}

// requestOwnedBy searches seeded requests for one whose
// content-addressed key lands on worker i's shard.
func requestOwnedBy(t *testing.T, f *Fleet, i int) (service.Request, string) {
	t.Helper()
	ring := f.Router().Membership().Ring()
	for seed := int64(1); seed < 200; seed++ {
		req := diverseRequest(seed)
		key, err := service.Key(req)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == f.WorkerURL(i) {
			return req, key
		}
	}
	t.Fatalf("no stack-ret seed in 1..200 owned by worker %d", i)
	return service.Request{}, ""
}

func TestRouterForwardsAndCaches(t *testing.T) {
	f := testFleet(t, 3)

	code, first := runJSON(t, f, service.Request{Experiment: "E1"}, nil)
	if code != http.StatusOK || first["cache"] != "miss" || first["id"] != "E1" {
		t.Fatalf("first = %d %v", code, first)
	}
	code, second := runJSON(t, f, service.Request{Experiment: "E1"}, nil)
	if code != http.StatusOK || second["cache"] != "hit" {
		t.Fatalf("second = %d cache=%v, want 200 hit (same ring owner)", code, second["cache"])
	}
	if first["key"] != second["key"] {
		t.Fatalf("keys differ: %v vs %v", first["key"], second["key"])
	}

	// Exactly one worker executed and cached it: the ring maps one key
	// to one shard.
	holders := 0
	key := first["key"].(string)
	for i := 0; i < f.Size(); i++ {
		if _, ok := f.Worker(i).Service().Cache().Get(key); ok {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d workers hold key %s, want exactly 1", holders, key)
	}
}

func TestRouterSingleflightCollapsesSameKey(t *testing.T) {
	f := testFleet(t, 2)

	const n = 8
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, out := runJSON(t, f, service.Request{Experiment: "E8"}, nil)
			if code == http.StatusOK {
				results[i], _ = out["cache"].(string)
			}
		}(i)
	}
	wg.Wait()

	counts := map[string]int{}
	for _, c := range results {
		counts[c]++
	}
	if counts["miss"] != 1 {
		t.Fatalf("cache tokens %v: want exactly one miss fleet-wide", counts)
	}
	// Everyone else joined the leader's forward or hit the cache it
	// filled; nothing executed twice.
	if counts["miss"]+counts["coalesced"]+counts["hit"] != n {
		t.Fatalf("cache tokens %v: unexpected token mix", counts)
	}
}

func TestDrainMigratesShardByCloning(t *testing.T) {
	f := testFleet(t, 3)

	// Find a key owned by worker 0 and warm its cache.
	req, key := requestOwnedBy(t, f, 0)
	code, first := runJSON(t, f, req, nil)
	if code != http.StatusOK || first["cache"] != "miss" {
		t.Fatalf("warmup = %d %v", code, first)
	}

	// Drain the owner. The router notices on the next probe, ejects it,
	// and the ring re-resolves; the drained listener stays up.
	f.DrainWorker(0)
	f.Router().Membership().ProbeAll()
	if got := f.Router().Membership().HealthyCount(); got != 2 {
		t.Fatalf("healthy after drain = %d, want 2", got)
	}
	newOwner := f.Router().Membership().Ring().Owner(key)
	if newOwner == f.WorkerURL(0) {
		t.Fatal("drained worker still owns the key")
	}

	// The same request now routes to the successor, which clones the
	// drained worker's warm entry instead of recomputing.
	code, second := runJSON(t, f, req, nil)
	if code != http.StatusOK {
		t.Fatalf("post-drain = %d %v", code, second)
	}
	if second["cache"] != "cloned" {
		t.Fatalf("post-drain cache = %v, want cloned (fill-from migration)", second["cache"])
	}
	if _, ok := f.Worker(workerIndex(t, f, newOwner)).Service().Cache().Get(key); !ok {
		t.Fatal("successor did not retain the cloned entry")
	}

	// Third time is a plain local hit on the new owner.
	code, third := runJSON(t, f, req, nil)
	if code != http.StatusOK || third["cache"] != "hit" {
		t.Fatalf("third = %d cache=%v, want 200 hit", code, third["cache"])
	}
}

func TestKilledWorkerLosesNoAdmittedRequests(t *testing.T) {
	f := testFleet(t, 3)

	// Concurrent distinct-key traffic while one worker dies mid-stream:
	// forwards to the dead worker must eject it and re-route, so every
	// admitted request still answers 200.
	const n = 40
	var failures atomic.Int32
	var wg sync.WaitGroup
	var once sync.Once
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == n/2 {
				once.Do(func() { f.KillWorker(1) })
			}
			code, out := runJSON(t, f, diverseRequest(int64(1000+i)), nil)
			if code != http.StatusOK {
				failures.Add(1)
				t.Logf("request %d: %d %v", i, code, out)
			}
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d admitted requests failed across the kill", failures.Load())
	}
	mems := f.Router().Membership().Members()
	for _, m := range mems {
		if m.ID == f.WorkerURL(1) && m.State == StateHealthy {
			t.Fatalf("killed worker still healthy: %+v", mems)
		}
	}
}

func TestMembershipProbeTransitions(t *testing.T) {
	// A worker whose /readyz answer is scripted, plus a real one.
	var mode atomic.Value // "ok", "draining", "saturated", "down"
	mode.Store("ok")
	scripted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case "draining":
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"status":"draining","draining":true,"saturated":false}`)
		case "saturated":
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"status":"saturated","draining":false,"saturated":true}`)
		case "down":
			panic(http.ErrAbortHandler)
		default:
			io.WriteString(w, `{"status":"ready"}`)
		}
	}))
	defer scripted.Close()

	m := NewMembership(MembershipConfig{Seed: 1, FailThreshold: 2, Registry: obs.NewRegistry()},
		[]string{scripted.URL})
	defer m.Close()
	if m.HealthyCount() != 1 {
		t.Fatalf("initial healthy = %d", m.HealthyCount())
	}

	// Saturated: alive but shedding — stays on the ring.
	mode.Store("saturated")
	m.ProbeAll()
	if m.HealthyCount() != 1 {
		t.Fatal("saturated worker was ejected; it should keep its shard")
	}

	// Draining: ejected immediately.
	mode.Store("draining")
	m.ProbeAll()
	if m.HealthyCount() != 0 {
		t.Fatal("draining worker stayed on the ring")
	}
	if st := m.Members()[0].State; st != StateDraining {
		t.Fatalf("state = %s, want draining", st)
	}

	// Recovery: one clean probe re-admits.
	mode.Store("ok")
	m.ProbeAll()
	if m.HealthyCount() != 1 {
		t.Fatal("recovered worker was not re-admitted")
	}

	// Crash: ejection needs FailThreshold consecutive misses.
	mode.Store("down")
	m.ProbeAll()
	if m.HealthyCount() != 1 {
		t.Fatal("one missed probe ejected below threshold")
	}
	m.ProbeAll()
	if m.HealthyCount() != 0 {
		t.Fatal("threshold missed probes did not eject")
	}
	if st := m.Members()[0].State; st != StateUnhealthy {
		t.Fatalf("state = %s, want unhealthy", st)
	}

	// Push heartbeat re-admits without waiting for a probe.
	m.Join(scripted.URL)
	if m.HealthyCount() != 1 {
		t.Fatal("join did not re-admit")
	}
}

func TestJoinEndpointAdmitsNewWorker(t *testing.T) {
	f := testFleet(t, 2)

	// A third worker appears and push-heartbeats the router.
	w := serve.NewServer(serve.Config{Workers: 2, Queue: 8, CacheSize: 16, TrustAdmitted: true})
	ts := httptest.NewServer(w.Handler())
	defer func() { ts.Close(); w.Service().Drain() }()

	resp, err := http.Post(f.URL()+"/cluster/join", "application/json",
		strings.NewReader(fmt.Sprintf("{\"id\":%q}", ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d", resp.StatusCode)
	}
	if got := f.Router().Membership().HealthyCount(); got != 3 {
		t.Fatalf("healthy after join = %d, want 3", got)
	}

	var members membersResponse
	mresp, err := http.Get(f.URL() + "/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&members); err != nil {
		t.Fatal(err)
	}
	if len(members.Ring.Nodes) != 3 || len(members.Members) != 3 {
		t.Fatalf("members body = %+v", members)
	}
}

func TestRouterAdmissionQuota(t *testing.T) {
	f := NewFleet(1, serve.Config{Workers: 2, Queue: 8, CacheSize: 16},
		RouterConfig{Seed: 1, TenantRate: 0.001, TenantBurst: 2})
	t.Cleanup(f.Close)

	codes := map[int]int{}
	var sawReason string
	for i := 0; i < 4; i++ {
		code, out := runJSON(t, f, service.Request{Scenario: "stack-ret", Seed: int64(i), NoCache: true}, nil)
		codes[code]++
		if code == http.StatusTooManyRequests {
			rej, _ := out["reject"].(map[string]any)
			sawReason, _ = rej["reason"].(string)
		}
	}
	if codes[http.StatusTooManyRequests] != 2 || codes[http.StatusOK] != 2 {
		t.Fatalf("codes = %v, want 2x200 then 2x429 (burst 2)", codes)
	}
	if sawReason != service.ReasonQuota {
		t.Fatalf("shed reason = %q, want %q", sawReason, service.ReasonQuota)
	}
}

func TestTracePropagatesAcrossTheHop(t *testing.T) {
	f := testFleet(t, 3)

	code, out := runJSON(t, f, service.Request{Experiment: "E3"},
		map[string]string{serve.TraceHeader: "t-cluster-1", serve.TenantHeader: "acme"})
	if code != http.StatusOK {
		t.Fatalf("run = %d %v", code, out)
	}
	if out["trace_id"] != "t-cluster-1" {
		t.Fatalf("trace_id = %v, want the client-supplied id", out["trace_id"])
	}

	resp, err := http.Get(f.URL() + "/trace/t-cluster-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", resp.StatusCode)
	}
	var tr service.RequestTrace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "t-cluster-1" || tr.Tenant != "acme" {
		t.Fatalf("grafted trace identity = %s/%s", tr.TraceID, tr.Tenant)
	}
	if tr.Root == nil || tr.Root.Name != "router" {
		t.Fatalf("root span = %+v, want router", tr.Root)
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Name != "forward" {
		t.Fatalf("router children = %+v, want one forward span", tr.Root.Children)
	}
	fwd := tr.Root.Children[0]
	if fwd.Attrs["worker"] == "" {
		t.Fatal("forward span missing worker attr")
	}
	if len(fwd.Children) == 0 {
		t.Fatal("forward span has no worker subtree")
	}
	if _, ok := tr.StageMS["forward"]; !ok {
		t.Fatalf("stage map %v missing forward", tr.StageMS)
	}
	if _, ok := tr.StageMS["execute"]; !ok {
		t.Fatalf("stage map %v missing the worker's execute stage", tr.StageMS)
	}
}

func TestWatchFansInWorkerStreams(t *testing.T) {
	f := testFleet(t, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.URL()+"/watch?trace=t-watch-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch = %d", resp.StatusCode)
	}

	events := make(chan obs.BusEvent, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev obs.BusEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				events <- ev
			}
		}
		close(events)
	}()

	hello := <-events
	if hello.Kind != obs.KindHello || hello.Data["cluster"] != "router" || hello.Data["workers"] != "2" {
		t.Fatalf("hello = %+v", hello)
	}

	// The subscription reaches each worker asynchronously; give the
	// relays a moment before generating the traffic they should see.
	time.Sleep(200 * time.Millisecond)
	code, _ := runJSON(t, f, service.Request{Experiment: "E2"},
		map[string]string{serve.TraceHeader: "t-watch-1"})
	if code != http.StatusOK {
		t.Fatalf("run = %d", code)
	}

	sawEnd := false
	for !sawEnd {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed before trace-end")
			}
			if ev.Trace != "" && ev.Trace != "t-watch-1" {
				t.Fatalf("filter leaked foreign trace %q", ev.Trace)
			}
			if ev.Data["worker"] == "" {
				t.Fatalf("event %+v missing worker origin tag", ev)
			}
			if ev.Kind == obs.KindTraceEnd {
				sawEnd = true
			}
		case <-ctx.Done():
			t.Fatal("no trace-end before timeout")
		}
	}
	cancel()
}

func TestRunBatchRoutesPerItem(t *testing.T) {
	f := testFleet(t, 3)

	body := `{"requests":[{"experiment":"E1"},{"experiment":"E99"},{"scenario":"stack-ret","seed":42}]}`
	resp, err := http.Post(f.URL()+"/runbatch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runbatch = %d", resp.StatusCode)
	}
	var out serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.OK != 2 || out.Failed != 1 || len(out.Results) != 3 {
		t.Fatalf("batch = ok %d failed %d (%d items)", out.OK, out.Failed, len(out.Results))
	}
	if out.Results[1].Code != http.StatusBadRequest {
		t.Fatalf("bad item code = %d, want 400", out.Results[1].Code)
	}
	if out.Results[0].Code != http.StatusOK || out.Results[2].Code != http.StatusOK {
		t.Fatalf("good items = %d/%d", out.Results[0].Code, out.Results[2].Code)
	}
}

// TestRebalanceDuringTrafficIsRaceFree hammers membership changes
// against in-flight routing; run under -race it pins the immutable-ring
// contract (routing never sees a half-built ring).
func TestRebalanceDuringTrafficIsRaceFree(t *testing.T) {
	f := testFleet(t, 3)
	mem := f.Router().Membership()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := f.WorkerURL(i % f.Size())
			if i%2 == 0 {
				mem.MarkFailed(id)
			} else {
				mem.Join(id)
			}
			mem.Ring().Owner(fmt.Sprintf("churn-%d", i))
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				runJSON(t, f, diverseRequest(int64(i*100+j)), nil)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	// Converge: every worker re-joins, traffic flows.
	for i := 0; i < f.Size(); i++ {
		mem.Join(f.WorkerURL(i))
	}
	code, out := runJSON(t, f, service.Request{Experiment: "E1"}, nil)
	if code != http.StatusOK {
		t.Fatalf("post-churn run = %d %v", code, out)
	}
}

func TestReadyzReportsNoWorkers(t *testing.T) {
	f := testFleet(t, 1)
	f.Router().Membership().MarkFailed(f.WorkerURL(0))

	resp, err := http.Get(f.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", resp.StatusCode)
	}
	var body serve.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "no-workers" || body.Draining || body.Saturated {
		t.Fatalf("readyz body = %+v", body)
	}
}
