package cluster

import (
	"net/http/httptest"

	"repro/internal/serve"
)

// Fleet is an in-process cluster: n real serve.Server workers behind
// real HTTP listeners and one Router in front. Tests and the pnload
// -cluster sweep use it to exercise the exact production handlers —
// ring routing, hop headers, cross-node fill, drain migration —
// without spawning processes; the CI smoke job runs the same topology
// as separate processes.
type Fleet struct {
	workers    []*serve.Server
	workerSrvs []*httptest.Server
	router     *Router
	routerSrv  *httptest.Server
}

// NewFleet starts n workers with cfg (TrustAdmitted is forced on:
// fleet workers sit behind the router's admission) and a router with
// rcfg (Workers is filled in). The router's heartbeat prober is NOT
// started — call Router().StartHeartbeat() or drive
// Membership().ProbeAll() manually for determinism.
func NewFleet(n int, cfg serve.Config, rcfg RouterConfig) *Fleet {
	f := &Fleet{}
	cfg.TrustAdmitted = true
	for i := 0; i < n; i++ {
		w := serve.NewServer(cfg)
		ts := httptest.NewServer(w.Handler())
		f.workers = append(f.workers, w)
		f.workerSrvs = append(f.workerSrvs, ts)
		rcfg.Workers = append(rcfg.Workers, ts.URL)
	}
	f.router = NewRouter(rcfg)
	f.routerSrv = httptest.NewServer(f.router.Handler())
	return f
}

// URL returns the router's base URL.
func (f *Fleet) URL() string { return f.routerSrv.URL }

// Router returns the front end.
func (f *Fleet) Router() *Router { return f.router }

// Size returns the worker count (stopped workers included).
func (f *Fleet) Size() int { return len(f.workers) }

// Worker returns worker i's server (for cache and trace inspection).
func (f *Fleet) Worker(i int) *serve.Server { return f.workers[i] }

// WorkerURL returns worker i's base URL.
func (f *Fleet) WorkerURL(i int) string { return f.workerSrvs[i].URL }

// KillWorker hard-stops worker i's listener — the crash case. The
// router discovers it on the next forward or probe and re-routes.
func (f *Fleet) KillWorker(i int) {
	f.workerSrvs[i].CloseClientConnections()
	f.workerSrvs[i].Close()
}

// DrainWorker gracefully drains worker i: its HTTP layer 503s new
// work (structured draining rejection, failing readiness) while
// queued work completes; the listener stays up so the router can
// clone its warm cache and its in-flight responses land.
func (f *Fleet) DrainWorker(i int) { f.workers[i].BeginDrain() }

// Close shuts the fleet down: router first (stop routing), then the
// workers.
func (f *Fleet) Close() {
	f.routerSrv.Close()
	f.router.Close()
	for i, ts := range f.workerSrvs {
		ts.Close()
		f.workers[i].Service().Drain()
	}
}
