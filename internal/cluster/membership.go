package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// MemberState is one worker's health classification.
type MemberState string

// Member states. Only healthy members are on the ring.
const (
	// StateHealthy: serving; on the ring.
	StateHealthy MemberState = "healthy"
	// StateUnhealthy: ejected after missed heartbeats or a forward
	// failure; probed for re-admission.
	StateUnhealthy MemberState = "unhealthy"
	// StateDraining: announced a graceful drain via /readyz; ejected so
	// new work routes to its successors, but still answers /cache/{key}
	// reads, so its shard migrates by cloning instead of recomputing.
	StateDraining MemberState = "draining"
)

// Member is one worker's membership record.
type Member struct {
	ID    string      `json:"id"` // base URL, e.g. http://127.0.0.1:8101
	State MemberState `json:"state"`
	// Fails counts consecutive failed probes (reset on success).
	Fails int `json:"fails,omitempty"`
}

// MembershipConfig tunes health-gated membership.
type MembershipConfig struct {
	// Seed and VNodes parameterize the ring (see NewRing).
	Seed   uint64
	VNodes int
	// FailThreshold is how many consecutive failed /readyz probes eject
	// a healthy member (default 2).
	FailThreshold int
	// Interval is the heartbeat probe period (default 500ms).
	Interval time.Duration
	// Client issues the probes (default: 2s-timeout client).
	Client *http.Client
	// Registry, when non-nil, receives the ring/member gauges and the
	// rebalance counter.
	Registry *obs.Registry
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	return c
}

// Membership is the health-gated member table behind the router: a
// background prober pulls every member's /readyz, push heartbeats
// (POST /cluster/join) fast-join new workers, and every state change
// rebuilds the consistent-hash ring. The current and previous rings
// are immutable values behind atomic pointers, so routing never takes
// the membership lock.
type Membership struct {
	cfg MembershipConfig

	mu      sync.Mutex
	members map[string]*Member

	ring atomic.Pointer[Ring]
	// prevRing is the ring before the latest rebalance: the source of
	// fill-from hints, so a key that moved shards is cloned from the
	// node that cached it instead of recomputed.
	prevRing atomic.Pointer[Ring]

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewMembership builds the table with every initial worker healthy.
// Call Start to arm the background prober.
func NewMembership(cfg MembershipConfig, workers []string) *Membership {
	m := &Membership{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*Member),
		stop:    make(chan struct{}),
	}
	for _, w := range workers {
		m.members[w] = &Member{ID: w, State: StateHealthy}
	}
	m.mu.Lock()
	m.rebalanceLocked("init")
	m.mu.Unlock()
	return m
}

// Ring returns the current ring (never nil).
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// FillFrom returns the peer that owned key before the latest
// rebalance, when it differs from owner — the donor for a cross-node
// cache fill. Empty when the key never moved.
func (m *Membership) FillFrom(key, owner string) string {
	prev := m.prevRing.Load()
	if prev == nil {
		return ""
	}
	p := prev.Owner(key)
	if p == "" || p == owner {
		return ""
	}
	return p
}

// Members returns a sorted snapshot of the table.
func (m *Membership) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, *mem)
	}
	// Sorted by ID for stable /cluster/members output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// HealthyCount returns how many members are on the ring.
func (m *Membership) HealthyCount() int { return m.Ring().Len() }

// Join upserts a worker (push heartbeat: POST /cluster/join). A new or
// previously ejected worker is admitted immediately and the ring
// rebalances; a known healthy worker just resets its failure count.
func (m *Membership) Join(id string) {
	if id == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok {
		m.members[id] = &Member{ID: id, State: StateHealthy}
		m.rebalanceLocked("join")
		return
	}
	mem.Fails = 0
	if mem.State != StateHealthy {
		mem.State = StateHealthy
		m.rebalanceLocked("readmit")
	}
}

// MarkFailed ejects a worker after a forward-level connection failure
// — stronger evidence than a missed probe, so it does not wait for
// FailThreshold. The prober re-admits it when /readyz recovers.
func (m *Membership) MarkFailed(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok || mem.State == StateUnhealthy {
		return
	}
	mem.State = StateUnhealthy
	mem.Fails = m.cfg.FailThreshold
	m.rebalanceLocked("fail")
}

// MarkDraining ejects a worker that answered "draining": new work
// routes to its ring successors while its queued work completes, and
// fill-from hints point back at it so its warm cache migrates.
func (m *Membership) MarkDraining(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok || mem.State == StateDraining {
		return
	}
	mem.State = StateDraining
	m.rebalanceLocked("drain")
}

// rebalanceLocked rebuilds the ring from the healthy members and
// retires the old ring into the fill-from slot.
func (m *Membership) rebalanceLocked(reason string) {
	healthy := make([]string, 0, len(m.members))
	counts := map[MemberState]int{}
	for _, mem := range m.members {
		counts[mem.State]++
		if mem.State == StateHealthy {
			healthy = append(healthy, mem.ID)
		}
	}
	old := m.ring.Load()
	next := NewRing(m.cfg.Seed, m.cfg.VNodes, healthy)
	m.ring.Store(next)
	if old != nil {
		m.prevRing.Store(old)
	}
	reg := m.cfg.Registry
	reg.Set(obs.MetricClusterRingNodes, float64(len(healthy)))
	for _, st := range []MemberState{StateHealthy, StateUnhealthy, StateDraining} {
		reg.Set(obs.MetricClusterMembers, float64(counts[st]), obs.L("state", string(st)))
	}
	if reason != "init" {
		reg.Inc(obs.MetricClusterRebalances, obs.L("reason", reason))
	}
}

// readyBody is the slice of serve.ReadyResponse the prober reads: the
// two boolean causes distinguish "draining — eject now, clone its
// shard" from "saturated — alive, keep routing" without string
// matching.
type readyBody struct {
	Draining  bool `json:"draining"`
	Saturated bool `json:"saturated"`
}

// ProbeAll pulls every member's /readyz once and applies the state
// transitions. Exported so tests drive membership deterministically
// without the background loop.
func (m *Membership) ProbeAll() {
	for _, mem := range m.Members() {
		m.probe(mem.ID)
	}
}

func (m *Membership) probe(id string) {
	resp, err := m.cfg.Client.Get(id + "/readyz")
	if err != nil {
		m.probeFailed(id)
		return
	}
	var body readyBody
	json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		m.Join(id)
	case body.Draining:
		m.MarkDraining(id)
	default:
		// Saturated (or any other refusal): alive but shedding. The
		// worker stays on the ring — its own admission control sheds with
		// honest Retry-After hints, and ejecting it would dogpile its
		// shard onto neighbours.
	}
}

// probeFailed counts one missed heartbeat and ejects at the threshold.
func (m *Membership) probeFailed(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok {
		return
	}
	mem.Fails++
	if mem.State == StateHealthy && mem.Fails >= m.cfg.FailThreshold {
		mem.State = StateUnhealthy
		m.rebalanceLocked("fail")
	}
}

// Start arms the background heartbeat prober.
func (m *Membership) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeAll()
			}
		}
	}()
}

// Close stops the prober.
func (m *Membership) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}
