// Package cluster is the sharded multi-node serving tier: a
// consistent-hash ring keyed on the content-addressed cache key, a
// router front end that forwards /run and /runbatch to a fleet of
// worker pnserve backends, health-gated membership with heartbeat
// ejection and ring rebalance, and graceful shard drain that re-routes
// work off a departing worker without losing an admitted request.
//
// The design goal is the ROADMAP's "millions of users" story: the
// single-process serving layer (internal/service, cmd/pnserve) already
// makes one node fast; this package makes throughput scale with node
// count while the content-addressed cache stays effective, because the
// ring sends every key to one owner and a miss is cloned from the
// previous owner after a rebalance instead of being recomputed.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: enough that the
// max/min shard-load ratio over realistic key populations stays small
// (see TestRingBalance), small enough that rebuilding the ring on a
// membership change is trivially cheap.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring: node placement is
// derived from a seed so a fleet of routers (or a test re-running a
// scenario) computes byte-identical placements. Lookups are pure
// reads; membership changes build a new Ring (see Membership), so
// concurrent routing never takes a lock.
type Ring struct {
	seed   uint64
	vnodes int
	nodes  []string // sorted member IDs
	points []point  // sorted by hash
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node string
}

// NewRing places each node on the circle vnodes times, mixing seed
// into every placement hash. vnodes <= 0 selects DefaultVNodes.
func NewRing(seed uint64, vnodes int, nodes []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{seed: seed, vnodes: vnodes}
	r.nodes = append(r.nodes, nodes...)
	sort.Strings(r.nodes)
	r.points = make([]point, 0, len(nodes)*vnodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: placeHash(seed, n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break on node ID so placement stays
		// deterministic regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// fnv64 constants — the placement and key hash is FNV-1a over the
// seeded input, which is cheap, allocation-free, and deterministic
// across processes (no map-iteration or runtime hash randomness).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvMixByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

// finalize is a splitmix64-style avalanche pass. Raw FNV-1a clusters
// badly over short structured suffixes ("#0".."#63"), which skews arc
// lengths on the circle; the finalizer spreads placements uniformly.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// placeHash positions one virtual node: hash(seed || node || vnode).
func placeHash(seed uint64, node string, vnode int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h = fnvMixByte(h, byte(seed>>(8*i)))
	}
	h = fnvMix(h, node)
	h = fnvMix(h, "#"+strconv.Itoa(vnode))
	return finalize(h)
}

// keyHash positions a cache key on the circle.
func (r *Ring) keyHash(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h = fnvMixByte(h, byte(r.seed>>(8*i)))
	}
	return finalize(fnvMix(h, key))
}

// Len returns the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.nodes)
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.nodes...)
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash. Empty string when the ring is empty.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct nodes clockwise from key — the
// owner first, then its replica successors (the nodes a key would
// fall to if owners ahead of them left).
func (r *Ring) Owners(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := r.keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// WithNode returns a new ring with node added (r unchanged). Adding a
// present node returns r itself.
func (r *Ring) WithNode(node string) *Ring {
	if r.Has(node) {
		return r
	}
	return NewRing(r.seed, r.vnodes, append(r.Nodes(), node))
}

// WithoutNode returns a new ring with node removed (r unchanged).
func (r *Ring) WithoutNode(node string) *Ring {
	if !r.Has(node) {
		return r
	}
	nodes := make([]string, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	return NewRing(r.seed, r.vnodes, nodes)
}
