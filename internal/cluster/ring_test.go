package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8099", i)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like the real routing keys: hex content addresses.
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

// TestRingSeededDeterminism: equal seeds and members yield identical
// placement regardless of member order; different seeds move keys.
func TestRingSeededDeterminism(t *testing.T) {
	nodes := ringNodes(5)
	reversed := make([]string, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	a := NewRing(42, 64, nodes)
	b := NewRing(42, 64, reversed)
	c := NewRing(43, 64, nodes)
	moved := 0
	for _, k := range ringKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("same seed, same members, different owner for %s", k)
		}
		if a.Owner(k) != c.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys; the seed is not mixed into placement")
	}
}

// TestRingBalance: with DefaultVNodes virtual nodes the shard-load
// spread over a realistic key population stays bounded — no shard
// carries more than twice the load of the lightest shard.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(4000)
	for _, nodes := range []int{2, 4, 8} {
		r := NewRing(42, DefaultVNodes, ringNodes(nodes))
		load := make(map[string]int)
		for _, k := range keys {
			load[r.Owner(k)]++
		}
		if len(load) != nodes {
			t.Fatalf("%d nodes: only %d shards received keys", nodes, len(load))
		}
		min, max := len(keys), 0
		for _, c := range load {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		if ratio > 2.0 {
			t.Fatalf("%d nodes: max/min shard load %d/%d = %.2f exceeds 2.0 (load %v)",
				nodes, max, min, ratio, load)
		}
		t.Logf("%d nodes: max/min = %d/%d = %.2f", nodes, max, min, ratio)
	}
}

// TestRingMinimalMovementOnLeave: removing a node reassigns only the
// keys that node owned; every other key keeps its owner.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	nodes := ringNodes(6)
	before := NewRing(7, DefaultVNodes, nodes)
	victim := nodes[2]
	after := before.WithoutNode(victim)
	for _, k := range ringKeys(2000) {
		was, is := before.Owner(k), after.Owner(k)
		if was == victim {
			if is == victim {
				t.Fatalf("key %s still owned by removed node", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, was, is)
		}
	}
}

// TestRingMinimalMovementOnJoin: adding a node only moves keys onto
// the new node, and roughly its fair share of them.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	nodes := ringNodes(5)
	before := NewRing(7, DefaultVNodes, nodes)
	joined := "http://worker-new:8099"
	after := before.WithNode(joined)
	keys := ringKeys(3000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		if is != joined {
			t.Fatalf("key %s moved %s -> %s, not to the joining node", k, was, is)
		}
		moved++
	}
	fair := len(keys) / after.Len()
	if moved == 0 || moved > 2*fair {
		t.Fatalf("join moved %d of %d keys; want (0, %d]", moved, len(keys), 2*fair)
	}
	// Leaving again restores the original placement exactly.
	restored := after.WithoutNode(joined)
	for _, k := range keys {
		if before.Owner(k) != restored.Owner(k) {
			t.Fatalf("key %s did not return to its pre-join owner", k)
		}
	}
}

// TestRingOwners: replica successors are distinct, start at the owner,
// and are capped at the member count.
func TestRingOwners(t *testing.T) {
	r := NewRing(1, 16, ringNodes(3))
	for _, k := range ringKeys(100) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 5) = %v, want all 3 distinct members", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] %s != Owner %s", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %s in %v", o, owners)
			}
			seen[o] = true
		}
	}
	if got := (*Ring)(nil).Owner("k"); got != "" {
		t.Fatalf("nil ring owner = %q, want empty", got)
	}
	if NewRing(1, 4, nil).Owner("k") != "" {
		t.Fatal("empty ring must return no owner")
	}
}
