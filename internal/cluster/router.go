package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/service"
)

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Workers are the initial backend base URLs; more can join via
	// POST /cluster/join.
	Workers []string
	// Seed and VNodes parameterize the ring.
	Seed   uint64
	VNodes int
	// HeartbeatInterval is the membership probe period (default 500ms);
	// FailThreshold the consecutive misses that eject (default 2).
	HeartbeatInterval time.Duration
	FailThreshold     int
	// ForwardTimeout bounds one forwarded request (default 30s).
	ForwardTimeout time.Duration
	// ForwardRetries is how many extra attempts a failed forward gets
	// after re-resolving the ring (default 2) — the kill-a-worker path:
	// attempt, eject, re-route to the successor.
	ForwardRetries int
	// Router-level admission: tenant quotas and the adaptive limiter run
	// HERE and only here — workers behind the router trust the
	// X-PN-Admitted hop header, so fleet accounting never double-counts.
	TenantRate  float64
	TenantBurst float64
	P99Target   time.Duration
	// RetryAfter is the fallback backoff hint on shed responses
	// (default 250ms).
	RetryAfter time.Duration
	// TraceIndexCap bounds the trace-to-worker index behind /trace/{id}
	// (default 512).
	TraceIndexCap int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.ForwardRetries <= 0 {
		c.ForwardRetries = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.TraceIndexCap <= 0 {
		c.TraceIndexCap = 512
	}
	return c
}

// rflight is one in-flight forward other same-key requests join: the
// router-level singleflight. Combined with each worker's own cache
// singleflight and the fill-from clone path, an admitted key is
// computed at most once fleet-wide.
type rflight struct {
	done   chan struct{}
	status int
	header http.Header
	body   []byte
	err    error
}

// traceEntry records where a trace executed and what the hop cost, for
// the /trace/{id} graft.
type traceEntry struct {
	id      string
	worker  string
	durMS   float64
	retries int
}

// Router is the sharded serving tier's front end: it owns admission
// (tenant quotas + adaptive limiter), routes every request to the ring
// owner of its content-addressed cache key, retries around dead or
// draining workers after a ring rebalance, and collapses concurrent
// same-key requests into one forward.
type Router struct {
	cfg     RouterConfig
	mem     *Membership
	reg     *obs.Registry
	client  *http.Client
	quotas  *service.TenantQuotas
	limiter *service.Limiter

	draining atomic.Bool
	started  time.Time

	fmu     sync.Mutex
	flights map[string]*rflight

	tmu        sync.Mutex
	traceIndex map[string]*traceEntry
	traceOrder []string // FIFO eviction
}

// NewRouter builds a router over the initial workers. Call
// StartHeartbeat to arm membership probing; Close to stop it.
func NewRouter(cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	describeRouterMetrics(reg)
	r := &Router{
		cfg:     cfg,
		reg:     reg,
		client:  &http.Client{Timeout: cfg.ForwardTimeout},
		quotas:  service.NewTenantQuotas(service.QuotaConfig{Rate: cfg.TenantRate, Burst: cfg.TenantBurst}, time.Now),
		limiter: service.NewLimiter(service.LimiterConfig{TargetP99: cfg.P99Target}),
		started: time.Now(),
		flights: make(map[string]*rflight),

		traceIndex: make(map[string]*traceEntry),
	}
	r.mem = NewMembership(MembershipConfig{
		Seed: cfg.Seed, VNodes: cfg.VNodes,
		FailThreshold: cfg.FailThreshold,
		Interval:      cfg.HeartbeatInterval,
		Registry:      reg,
	}, cfg.Workers)
	return r
}

func describeRouterMetrics(reg *obs.Registry) {
	reg.Describe(obs.MetricClusterRingNodes, "healthy workers on the consistent-hash ring", obs.TypeGauge)
	reg.Describe(obs.MetricClusterMembers, "cluster members, by state", obs.TypeGauge)
	reg.Describe(obs.MetricClusterForwards, "forwarded requests, by worker and outcome", obs.TypeCounter)
	reg.Describe(obs.MetricClusterForwardRetries, "forward attempts repeated after a failed or draining worker", obs.TypeCounter)
	reg.Describe(obs.MetricClusterForwardLatency, "forward round-trip in milliseconds",
		obs.TypeHistogram, 0.25, 1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000)
	reg.Describe(obs.MetricClusterRebalances, "ring rebalances, by reason", obs.TypeCounter)
	reg.Describe(obs.MetricClusterCoalesced, "same-key requests that joined an in-flight forward", obs.TypeCounter)
	reg.Describe(obs.MetricClusterShed, "requests shed at the router, by reason", obs.TypeCounter)
	reg.Describe(obs.MetricBuildInfo, "build identity: constant 1 with version labels", obs.TypeGauge)
}

// Membership exposes the member table (for /cluster endpoints, the
// fleet harness, and tests).
func (rt *Router) Membership() *Membership { return rt.mem }

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// StartHeartbeat arms background membership probing.
func (rt *Router) StartHeartbeat() { rt.mem.Start() }

// Close stops membership probing.
func (rt *Router) Close() { rt.mem.Close() }

// SetDraining flips the router's draining flag.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Handler returns the router's endpoint mux. /run and /runbatch
// forward to ring owners; the catalogue, health, metrics, and cluster
// introspection are served locally; /watch fans in every worker's
// stream and /trace/{id} grafts the worker trace under a router span.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", rt.handleRun)
	mux.HandleFunc("/runbatch", rt.handleRunBatch)
	mux.HandleFunc("/experiments", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, serve.BuildCatalog())
	})
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/readyz", rt.handleReady)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/cluster/members", rt.handleMembers)
	mux.HandleFunc("/cluster/join", rt.handleJoin)
	mux.HandleFunc("/watch", rt.handleWatch)
	mux.HandleFunc("/trace/", rt.handleTrace)
	return mux
}

// routed is one request's final wire answer, whoever produced it.
type routed struct {
	status int
	header http.Header // Retry-After, X-PN-Retry-After-MS, X-PN-Trace-Id
	body   []byte
}

func routedError(code int, msg string, rej *service.Rejection) *routed {
	b, _ := json.MarshalIndent(serve.ErrorResponse{Error: msg, Code: code, Reject: rej}, "", "  ")
	h := http.Header{}
	if rej != nil {
		h.Set("Retry-After", strconv.FormatInt((rej.RetryAfterMS+999)/1000, 10))
		h.Set("X-PN-Retry-After-MS", strconv.FormatInt(rej.RetryAfterMS, 10))
	}
	return &routed{status: code, header: h, body: b}
}

func (rt *Router) shed(reason string, tenant string, lane string, retryAfter time.Duration) *routed {
	rt.reg.Inc(obs.MetricClusterShed, obs.L("reason", reason))
	ms := retryAfter.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	code := http.StatusTooManyRequests
	if reason == service.ReasonDraining {
		code = http.StatusServiceUnavailable
	}
	rej := &service.Rejection{Code: code, Reason: reason, Tenant: tenant, Lane: lane, RetryAfterMS: ms}
	return routedError(code, "router: "+reason, rej)
}

// routeRun is the single-request pipeline both /run and /runbatch
// items go through: validate and key the request at the edge, admit it
// (quota, limiter — the only admission in the fleet), then either join
// an in-flight forward for the same key or lead one to the ring owner.
func (rt *Router) routeRun(ctx context.Context, req service.Request, tenant, clientTrace string) *routed {
	key, err := service.Key(req)
	if err != nil {
		return routedError(http.StatusBadRequest, err.Error(), nil)
	}
	tenant = service.NormalizeTenant(tenant)
	lane := req.Priority
	if lane == "" {
		lane = "normal"
	}

	if ok, wait := rt.quotas.TryTake(tenant); !ok {
		return rt.shed(service.ReasonQuota, tenant, lane, wait)
	}
	now := time.Now()
	if !rt.limiter.TryAcquire() {
		rt.quotas.Refund(tenant)
		return rt.shed(service.ReasonLimiter, tenant, lane, rt.limiter.RetryAfter(now, rt.cfg.RetryAfter))
	}

	var out *routed
	if req.NoCache {
		// Bypass requests always execute; collapsing them would change
		// semantics, so they skip the singleflight.
		out = rt.forwardRun(ctx, req, key, tenant, clientTrace)
	} else {
		out = rt.singleflightRun(ctx, req, key, tenant, clientTrace)
	}

	end := time.Now()
	if out.status < http.StatusInternalServerError {
		rt.limiter.Release(end.Sub(now), end)
	} else {
		rt.limiter.Cancel()
	}
	return out
}

// singleflightRun collapses concurrent same-key forwards: the first
// request leads; followers wait and re-label the leader's answer as
// "coalesced". Workers dedupe too (cache singleflight), but collapsing
// at the router also saves the duplicate hops.
func (rt *Router) singleflightRun(ctx context.Context, req service.Request, key, tenant, clientTrace string) *routed {
	rt.fmu.Lock()
	if f, ok := rt.flights[key]; ok {
		rt.fmu.Unlock()
		rt.reg.Inc(obs.MetricClusterCoalesced)
		select {
		case <-f.done:
			return followerCopy(f)
		case <-ctx.Done():
			return routedError(499, ctx.Err().Error(), nil)
		}
	}
	f := &rflight{done: make(chan struct{})}
	rt.flights[key] = f
	rt.fmu.Unlock()

	out := rt.forwardRun(ctx, req, key, tenant, clientTrace)
	f.status, f.header, f.body = out.status, out.header, out.body

	rt.fmu.Lock()
	delete(rt.flights, key)
	rt.fmu.Unlock()
	close(f.done)
	return out
}

// followerCopy re-labels a finished flight for a joining request: a
// 200's cache token becomes "coalesced" (the follower's work was
// collapsed into the leader's forward); errors pass through as-is.
func followerCopy(f *rflight) *routed {
	out := &routed{status: f.status, header: f.header, body: f.body}
	if f.status != http.StatusOK {
		return out
	}
	var env serve.RunResponse
	if err := json.Unmarshal(f.body, &env); err != nil {
		return out
	}
	env.Cache = service.CacheCoalesced
	if b, err := json.MarshalIndent(env, "", "  "); err == nil {
		out.body = b
	}
	return out
}

// forwardRun sends one admitted request to the ring owner of its key,
// retrying through membership changes: a connection failure ejects the
// worker and re-resolves the ring (the kill-mid-sweep path); a
// draining 503 ejects it and re-routes the same way. The hop carries
// X-PN-Admitted (skip worker admission), the tenant and trace
// identities, and — when the key just moved shards — an X-PN-Fill-From
// hint naming the previous owner so the new owner clones instead of
// recomputing.
func (rt *Router) forwardRun(ctx context.Context, req service.Request, key, tenant, clientTrace string) *routed {
	body, err := json.Marshal(req)
	if err != nil {
		return routedError(http.StatusInternalServerError, err.Error(), nil)
	}
	attempts := rt.cfg.ForwardRetries + 1
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			rt.reg.Inc(obs.MetricClusterForwardRetries)
		}
		owner := rt.mem.Ring().Owner(key)
		if owner == "" {
			return routedError(http.StatusServiceUnavailable, "router: no healthy workers",
				&service.Rejection{Code: 503, Reason: service.ReasonDraining, Tenant: tenant,
					RetryAfterMS: rt.cfg.RetryAfter.Milliseconds()})
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/run", bytes.NewReader(body))
		if err != nil {
			return routedError(http.StatusInternalServerError, err.Error(), nil)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(serve.AdmittedHeader, "1")
		hreq.Header.Set(serve.TenantHeader, tenant)
		if clientTrace != "" {
			hreq.Header.Set(serve.TraceHeader, clientTrace)
		}
		if fill := rt.mem.FillFrom(key, owner); fill != "" {
			hreq.Header.Set(serve.FillFromHeader, fill)
		}
		resp, err := rt.client.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return routedError(499, ctx.Err().Error(), nil)
			}
			// The worker is unreachable: eject it so the ring re-resolves
			// to its successor, and try again.
			rt.mem.MarkFailed(owner)
			rt.reg.Inc(obs.MetricClusterForwards, obs.L("worker", owner), obs.L("outcome", "error"))
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			rt.mem.MarkFailed(owner)
			rt.reg.Inc(obs.MetricClusterForwards, obs.L("worker", owner), obs.L("outcome", "error"))
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && isDraining(respBody) {
			// Graceful drain: the worker finishes its queued work but takes
			// no more. Eject it (new owner inherits the shard, fill-from
			// points back at the drainer) and re-route this request.
			rt.mem.MarkDraining(owner)
			rt.reg.Inc(obs.MetricClusterForwards, obs.L("worker", owner), obs.L("outcome", "draining"))
			lastErr = fmt.Errorf("worker %s draining", owner)
			continue
		}

		outcome := "ok"
		if resp.StatusCode >= 400 {
			outcome = strconv.Itoa(resp.StatusCode)
		}
		durMS := float64(time.Since(start).Microseconds()) / 1000
		rt.reg.Inc(obs.MetricClusterForwards, obs.L("worker", owner), obs.L("outcome", outcome))
		rt.reg.Observe(obs.MetricClusterForwardLatency, durMS)

		h := http.Header{}
		for _, k := range []string{serve.TraceHeader, "Retry-After", "X-PN-Retry-After-MS"} {
			if v := resp.Header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		if tid := resp.Header.Get(serve.TraceHeader); tid != "" {
			rt.recordTrace(&traceEntry{id: tid, worker: owner, durMS: durMS, retries: attempt})
		}
		return &routed{status: resp.StatusCode, header: h, body: respBody}
	}
	return routedError(http.StatusBadGateway,
		fmt.Sprintf("router: forward failed after %d attempts: %v", attempts, lastErr), nil)
}

// isDraining reports whether an error body carries the structured
// draining rejection.
func isDraining(body []byte) bool {
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return false
	}
	return er.Reject != nil && er.Reject.Reason == service.ReasonDraining
}

func (rt *Router) recordTrace(e *traceEntry) {
	rt.tmu.Lock()
	defer rt.tmu.Unlock()
	if _, ok := rt.traceIndex[e.id]; !ok {
		rt.traceOrder = append(rt.traceOrder, e.id)
		for len(rt.traceOrder) > rt.cfg.TraceIndexCap {
			delete(rt.traceIndex, rt.traceOrder[0])
			rt.traceOrder = rt.traceOrder[1:]
		}
	}
	rt.traceIndex[e.id] = e
}

func (rt *Router) lookupTrace(id string) (*traceEntry, bool) {
	rt.tmu.Lock()
	defer rt.tmu.Unlock()
	e, ok := rt.traceIndex[id]
	return e, ok
}

func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		serve.WriteJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
			Error: "router draining", Code: http.StatusServiceUnavailable,
			Reject: &service.Rejection{Code: 503, Reason: service.ReasonDraining,
				Tenant: service.NormalizeTenant(r.Header.Get(serve.TenantHeader))},
		})
		return
	}
	req, err := serve.ParseRequest(r)
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error(), Code: http.StatusBadRequest})
		return
	}
	out := rt.routeRun(r.Context(), req, r.Header.Get(serve.TenantHeader), r.Header.Get(serve.TraceHeader))
	writeRouted(w, out)
}

func writeRouted(w http.ResponseWriter, out *routed) {
	for k, vs := range out.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// handleRunBatch fans a batch out item-by-item: every item is admitted
// and routed independently (its own key, owner, singleflight), then
// the answers reassemble in request order — the batch contract
// (per-item status, one bad item never fails its siblings) holds
// across the fleet.
func (rt *Router) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		serve.WriteJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
			Error: "router draining", Code: http.StatusServiceUnavailable,
			Reject: &service.Rejection{Code: 503, Reason: service.ReasonDraining,
				Tenant: service.NormalizeTenant(r.Header.Get(serve.TenantHeader))},
		})
		return
	}
	if r.Method != http.MethodPost {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: fmt.Sprintf("method %s not allowed on /runbatch (POST a JSON body)", r.Method),
			Code:  http.StatusBadRequest})
		return
	}
	var breq serve.BatchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "invalid JSON body: " + err.Error(), Code: http.StatusBadRequest})
		return
	}
	if len(breq.Requests) == 0 {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "empty batch", Code: http.StatusBadRequest})
		return
	}
	if len(breq.Requests) > service.MaxBatchSize {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: fmt.Sprintf("batch of %d exceeds limit %d", len(breq.Requests), service.MaxBatchSize),
			Code:  http.StatusBadRequest})
		return
	}

	tenant := r.Header.Get(serve.TenantHeader)
	clientTrace := r.Header.Get(serve.TraceHeader)
	start := time.Now()
	items := make([]serve.BatchItem, len(breq.Requests))
	var wg sync.WaitGroup
	for i := range breq.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := rt.routeRun(r.Context(), breq.Requests[i], tenant, clientTrace)
			items[i] = toBatchItem(out)
		}(i)
	}
	wg.Wait()

	resp := serve.BatchResponse{Results: items}
	for _, it := range items {
		if it.Code == http.StatusOK {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	resp.ServeNS = time.Since(start).Nanoseconds()
	serve.WriteJSON(w, http.StatusOK, resp)
}

// toBatchItem converts one routed answer into the batch item shape.
func toBatchItem(out *routed) serve.BatchItem {
	if out.status == http.StatusOK {
		var env serve.RunResponse
		if err := json.Unmarshal(out.body, &env); err == nil {
			return serve.BatchItem{Result: env.Result, Cache: env.Cache, Code: http.StatusOK}
		}
		return serve.BatchItem{Error: "router: unparseable worker response", Code: http.StatusBadGateway}
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(out.body, &er); err != nil {
		return serve.BatchItem{Error: "router: unparseable worker error", Code: out.status}
	}
	return serve.BatchItem{Error: er.Error, Code: out.status, Reject: er.Reject}
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if rt.draining.Load() {
		status = "draining"
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"role":      "router",
		"workers":   rt.mem.HealthyCount(),
		"uptime_ms": time.Since(rt.started).Milliseconds(),
	})
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := serve.ReadyResponse{
		Status:    "ready",
		Draining:  rt.draining.Load(),
		Saturated: rt.limiter.Saturated(),
		UptimeMS:  time.Since(rt.started).Milliseconds(),
	}
	code := http.StatusOK
	switch {
	case resp.Draining:
		resp.Status, code = "draining", http.StatusServiceUnavailable
	case resp.Saturated:
		resp.Status, code = "saturated", http.StatusServiceUnavailable
	case rt.mem.HealthyCount() == 0:
		resp.Status, code = "no-workers", http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, code, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, rt.reg.Exposition())
}

// membersResponse is the GET /cluster/members body.
type membersResponse struct {
	Members []Member `json:"members"`
	Ring    struct {
		Seed   uint64   `json:"seed"`
		VNodes int      `json:"vnodes"`
		Nodes  []string `json:"nodes"`
	} `json:"ring"`
}

func (rt *Router) handleMembers(w http.ResponseWriter, r *http.Request) {
	var resp membersResponse
	resp.Members = rt.mem.Members()
	ring := rt.mem.Ring()
	resp.Ring.Seed = rt.cfg.Seed
	resp.Ring.VNodes = rt.cfg.VNodes
	if resp.Ring.VNodes <= 0 {
		resp.Ring.VNodes = DefaultVNodes
	}
	resp.Ring.Nodes = ring.Nodes()
	serve.WriteJSON(w, http.StatusOK, resp)
}

// joinRequest is the POST /cluster/join body: a worker's push
// heartbeat, carrying the base URL it serves on.
type joinRequest struct {
	ID string `json:"id"`
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: "POST {\"id\":\"http://worker:port\"} to join", Code: http.StatusBadRequest})
		return
	}
	var jr joinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&jr); err != nil || jr.ID == "" {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: "invalid join body (want {\"id\":\"http://worker:port\"})", Code: http.StatusBadRequest})
		return
	}
	rt.mem.Join(jr.ID)
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "members": rt.mem.HealthyCount()})
}

// handleTrace serves GET /trace/{id} fleet-wide: the router remembers
// which worker served each trace, fetches the worker's span tree, and
// grafts it under a router root span whose "forward" child carries the
// hop cost — so one trace shows the whole path: router admission,
// forward, then the worker's queue/cache/execute stages.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Path[len("/trace/"):]
	if id == "" {
		serve.WriteJSON(w, http.StatusBadRequest, serve.ErrorResponse{
			Error: "want /trace/{id}", Code: http.StatusBadRequest})
		return
	}
	entry, ok := rt.lookupTrace(id)
	var workers []string
	if ok {
		workers = []string{entry.worker}
	} else {
		// Not in the index (evicted, or another router forwarded it):
		// ask every healthy worker.
		workers = rt.mem.Ring().Nodes()
	}
	for _, worker := range workers {
		wt, err := rt.fetchTrace(r.Context(), worker, id)
		if err != nil || wt == nil {
			continue
		}
		serve.WriteJSON(w, http.StatusOK, graftTrace(wt, worker, entry))
		return
	}
	serve.WriteJSON(w, http.StatusNotFound, serve.ErrorResponse{
		Error: fmt.Sprintf("no finished trace %q on any worker", id), Code: http.StatusNotFound})
}

func (rt *Router) fetchTrace(ctx context.Context, worker, id string) (*service.RequestTrace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/trace/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	var wt service.RequestTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&wt); err != nil {
		return nil, err
	}
	return &wt, nil
}

// graftTrace parents the worker's span tree under the router: the
// returned trace keeps the worker's identity and stage breakdown but
// its root is a "router" span whose "forward" child (hop latency,
// retry count, worker) holds the worker's original root.
func graftTrace(wt *service.RequestTrace, worker string, entry *traceEntry) *service.RequestTrace {
	attrs := map[string]string{"worker": worker}
	forward := &service.TraceSpan{Name: "forward", Attrs: attrs}
	if entry != nil {
		forward.DurMS = entry.durMS
		if entry.retries > 0 {
			attrs["retries"] = strconv.Itoa(entry.retries)
		}
	}
	if wt.Root != nil {
		forward.Children = []*service.TraceSpan{wt.Root}
		if entry == nil {
			forward.DurMS = wt.Root.DurMS
		}
	}
	// Field-by-field copy: RequestTrace carries an internal mutex, so
	// the grafted value is rebuilt from the exported (wire) fields only.
	out := &service.RequestTrace{
		Schema: wt.Schema, TraceID: wt.TraceID, Tenant: wt.Tenant,
		Kind: wt.Kind, ID: wt.ID, Status: wt.Status, Cache: wt.Cache,
		Error: wt.Error, StageMS: wt.StageMS,
	}
	if wt.StageMS != nil {
		stages := make(map[string]float64, len(wt.StageMS)+1)
		for k, v := range wt.StageMS {
			stages[k] = v
		}
		stages["forward"] = forward.DurMS
		out.StageMS = stages
	}
	out.Root = &service.TraceSpan{Name: "router", DurMS: forward.DurMS, Children: []*service.TraceSpan{forward}}
	return out
}
