package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/serve"
)

// handleWatch fans in every healthy worker's /watch stream: the
// router subscribes upstream (NDJSON), strips each worker's hello,
// stamps events with the worker that produced them, and relays the
// merged stream — so ?trace= and ?tenant= filters keep working across
// the router hop (filters are passed through upstream, where the
// events originate). SSE by default, NDJSON via Accept, like the
// single-node endpoint. Cross-worker ordering is arrival order; per
// worker, order is preserved.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		serve.WriteJSON(w, http.StatusInternalServerError, serve.ErrorResponse{
			Error: "streaming unsupported by connection", Code: http.StatusInternalServerError})
		return
	}
	workers := rt.mem.Ring().Nodes()
	if len(workers) == 0 {
		serve.WriteJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
			Error: "no healthy workers", Code: http.StatusServiceUnavailable})
		return
	}

	// Pass the event filters upstream verbatim; resume cursors are
	// per-worker sequences and do not compose across a fan-in, so they
	// stop at the router.
	q := r.URL.Query()
	params := ""
	for _, k := range []string{"trace", "tenant", "kind"} {
		if v := q.Get(k); v != "" {
			if params == "" {
				params = "?"
			} else {
				params += "&"
			}
			params += k + "=" + v
		}
	}

	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	writeEvent := func(ev obs.BusEvent) error {
		if ndjson {
			return enc.Encode(ev)
		}
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, raw)
		return err
	}

	// One hello for the whole fan-in (the upstream hellos are
	// swallowed): same schema, plus the fleet size.
	hello := obs.BusEvent{Kind: obs.KindHello, Data: map[string]string{
		"schema":  obs.WatchSchema,
		"cluster": "router",
		"workers": strconv.Itoa(len(workers)),
	}}
	if err := writeEvent(hello); err != nil {
		return
	}
	flusher.Flush()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	events := make(chan obs.BusEvent, 256)
	var wg sync.WaitGroup
	for _, worker := range workers {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			rt.relayWatch(ctx, worker, params, events)
		}(worker)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	for {
		select {
		case ev := <-events:
			if err := writeEvent(ev); err != nil {
				return
			}
			flusher.Flush()
		case <-done:
			return
		case <-ctx.Done():
			return
		}
	}
}

// relayWatch streams one worker's NDJSON /watch into events, tagging
// each event with its origin and dropping the upstream hello.
func (rt *Router) relayWatch(ctx context.Context, worker, params string, events chan<- obs.BusEvent) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/watch"+params, nil)
	if err != nil {
		return
	}
	req.Header.Set("Accept", "application/x-ndjson")
	// Streams outlive the forward timeout: use the bare transport with
	// the subscriber's context as the only bound.
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev obs.BusEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		if ev.Kind == obs.KindHello {
			continue
		}
		if ev.Data == nil {
			ev.Data = map[string]string{}
		}
		ev.Data["worker"] = worker
		select {
		case events <- ev:
		case <-ctx.Done():
			return
		}
	}
}
