package compile

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/attack"
	"repro/internal/defense"
)

// Cache is the compiled-program cache: one ScenarioProgram per
// (scenario, defense, model) specialization, keyed by Key. It
// singleflights compilation (concurrent requests for one key share one
// recording run), bounds residency with LRU eviction, and negatively
// caches ErrNotCompilable so uncompilable keys are probed once, not
// per request.
//
// Eviction is safe against in-flight executions: Programs are
// immutable and executions hold their own references, so an entry can
// be evicted (or the cache rebalanced) while its program is mid-replay
// elsewhere.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*centry
	lru       *list.List // of *centry, front = most recent
	hits      uint64
	misses    uint64
	evictions uint64
}

type centry struct {
	key   string
	ready chan struct{}
	sp    *ScenarioProgram
	err   error
	elem  *list.Element
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Len       int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*centry),
		lru:      list.New(),
	}
}

// Get returns the compiled program for the scenario under cfg,
// compiling (once, however many callers race) on first use. It
// propagates ErrNotCompilable from cached negative entries.
func (c *Cache) Get(s attack.Scenario, cfg defense.Config) (*ScenarioProgram, error) {
	key := Key(s.ID, cfg)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.sp, e.err
	}
	e := &centry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: the ready channel is the singleflight
	// barrier for everyone who found the entry above.
	e.sp, e.err = CompileScenario(s, cfg)
	close(e.ready)

	c.mu.Lock()
	if e.err != nil && !errors.Is(e.err, ErrNotCompilable) {
		// Infrastructure failures are not worth pinning: drop the
		// entry so a later request retries. Not-compilable stays as a
		// negative entry — it is a property of the key.
		c.remove(e)
	}
	for c.lru.Len() > c.capacity {
		c.remove(c.lru.Back().Value.(*centry))
		c.evictions++
	}
	c.mu.Unlock()
	return e.sp, e.err
}

// remove drops an entry; callers hold c.mu. Removing an entry that was
// already removed (error-drop racing eviction) is a no-op.
func (c *Cache) remove(e *centry) {
	if _, ok := c.entries[e.key]; !ok {
		return
	}
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}

// Evict drops up to n least-recently-used entries and reports how many
// were dropped — the rebalance hook the serving tier calls when a
// worker's shard assignment shrinks.
func (c *Cache) Evict(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for dropped < n && c.lru.Len() > 0 {
		c.remove(c.lru.Back().Value.(*centry))
		c.evictions++
		dropped++
	}
	return dropped
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Len: c.lru.Len(), Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
