package compile

import (
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/machine"
)

func TestCacheSingleflightAndLRU(t *testing.T) {
	cat := attack.Catalog()
	c := NewCache(4)

	// Concurrent first-use of one key compiles once.
	var wg sync.WaitGroup
	progs := make([]*ScenarioProgram, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp, err := c.Get(cat[0], defense.None)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			progs[i] = sp
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("singleflight broken: distinct programs for one key")
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 7 {
		t.Fatalf("stats after singleflight: %+v, want 1 miss / 7 hits", st)
	}

	// Filling past capacity evicts the least-recently-used key.
	for _, s := range cat[1:5] {
		if _, err := c.Get(s, defense.None); err != nil {
			t.Fatalf("Get %s: %v", s.ID, err)
		}
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len after overfill: %d, want 4", got)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("expected evictions after overfill, got %+v", st)
	}

	// A recompile of the evicted key still replays correctly even if
	// an older handle is mid-use (programs are immutable).
	sp, err := c.Get(cat[0], defense.None)
	if err != nil {
		t.Fatalf("re-Get evicted key: %v", err)
	}
	if _, _, err := sp.Run(nil); err != nil {
		t.Fatalf("replay after re-Get: %v", err)
	}
	if _, _, err := progs[0].Run(nil); err != nil {
		t.Fatalf("replay of evicted handle: %v", err)
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	c := NewCache(4)
	s := attack.Catalog()[0]
	cfg := defense.None
	cfg.OnProcess = func(*machine.Process) {} // forces ErrNotCompilable
	for i := 0; i < 3; i++ {
		if _, err := c.Get(s, cfg); err != ErrNotCompilable {
			t.Fatalf("Get %d: %v, want ErrNotCompilable", i, err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("negative entry recompiled: %+v", st)
	}
}

func TestCacheEvict(t *testing.T) {
	c := NewCache(8)
	for _, s := range attack.Catalog()[:6] {
		if _, err := c.Get(s, defense.None); err != nil {
			t.Fatalf("Get %s: %v", s.ID, err)
		}
	}
	if n := c.Evict(4); n != 4 {
		t.Fatalf("Evict(4) = %d", n)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len after Evict: %d, want 2", got)
	}
	if n := c.Evict(10); n != 2 {
		t.Fatalf("Evict(10) on 2 entries = %d", n)
	}
}
