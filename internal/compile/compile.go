// Package compile lowers attack scenarios into straight-line op
// programs and replays them through a flat dispatch loop, bypassing the
// interpreted machinery (layout resolution, placement checking, guard
// evaluation, shadow validation, call dispatch) whose outcomes are
// already known.
//
// The compiler is a trace specializer: Record runs the scenario once
// through the ordinary interpreted path under three recording seams —
// mem.Memory.SetMutObserver for the byte-exact write set,
// core.LeakTracker.SetJournal for the placement ledger, and the
// machine's event/output logs — and lowers the observations into a
// Program specialized to one (scenario, defense.Config, data model)
// triple. Replay (see exec.go) acquires a pristine image, streams the
// recorded write runs through Segment.WriteRun, and re-emits the
// recorded events, ledger mutations, output, and shadow state.
//
// The contract, enforced by the differential harness in
// differential_test.go across the full scenario × defense matrix, is
// byte identity: a replayed run produces the same events, the same
// final segment bytes, the same dirty-page bitmaps, the same shadow
// sanitizer state, and the same placement ledger as the interpreted
// run it was recorded from.
//
// Not everything compiles. Runs that roll memory back (EvRestore),
// configs carrying foreign instrumentation (OnProcess/OnImage already
// set — chaos injection, tracing), or scenarios that build processes
// outside the defense seam all fail with ErrNotCompilable, and callers
// fall back to interpretation.
package compile

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
)

// ErrNotCompilable reports that a run cannot be lowered to a
// straight-line program. It is a clean "use the interpreter" signal,
// not a failure: callers fall back to the interpreted path.
var ErrNotCompilable = errors.New("compile: run is not compilable")

// OpCode enumerates the compiled ISA. Five opcodes cover everything a
// recorded run did to observable state.
type OpCode uint8

const (
	// OpPlace replays one successful placement-ledger insertion.
	OpPlace OpCode = iota + 1
	// OpWriteRun stores a contiguous run of recorded bytes into a
	// segment, bypassing the access pipeline (the checks already ran
	// at record time).
	OpWriteRun
	// OpCall re-emits one control-flow or program event (calls,
	// returns, hijacks, dispatches, output, ...).
	OpCall
	// OpCheck re-emits one defense-verdict event (canary, shadow
	// stack, guard, NX, sanitizer, segfault, vtable hijack) — the
	// moments a defense took credit or the process died.
	OpCheck
	// OpRelease replays one successful placement-ledger release.
	OpRelease
)

var opNames = map[OpCode]string{
	OpPlace: "place", OpWriteRun: "write-run", OpCall: "call",
	OpCheck: "check", OpRelease: "release",
}

// String returns the opcode mnemonic.
func (c OpCode) String() string {
	if s, ok := opNames[c]; ok {
		return s
	}
	return fmt.Sprintf("OpCode(%d)", int(c))
}

// Op is one instruction of a compiled program. Exactly one payload is
// live, selected by Code: Seg/Off/Data for OpWriteRun, Ev for
// OpCall/OpCheck, Led for OpPlace/OpRelease.
type Op struct {
	Code OpCode
	// Seg indexes the image's segments in ascending base order
	// (mem.Memory.Segments); Off is the byte offset within it.
	Seg  int
	Off  uint64
	Data []byte
	Ev   machine.Event
	Led  core.LedgerOp
}

// String renders the op deterministically: write-run payloads are
// summarized by length and digest so dumps stay diffable (and small)
// regardless of payload size.
func (op Op) String() string {
	switch op.Code {
	case OpWriteRun:
		sum := sha256.Sum256(op.Data)
		return fmt.Sprintf("write-run seg=%d off=%#x len=%d sha=%x",
			op.Seg, op.Off, len(op.Data), sum[:8])
	case OpCall, OpCheck:
		return fmt.Sprintf("%s %s addr=%#x detail=%q",
			op.Code, op.Ev.Kind, uint64(op.Ev.Addr), op.Ev.Detail)
	case OpPlace:
		return fmt.Sprintf("place addr=%#x what=%q size=%d",
			uint64(op.Led.Addr), op.Led.What, op.Led.Size)
	case OpRelease:
		return fmt.Sprintf("release addr=%#x size=%d",
			uint64(op.Led.Addr), op.Led.Size)
	}
	return op.Code.String()
}

// ProcProgram is the compiled form of one process the recorded run
// constructed: the image configuration to acquire, the op stream to
// dispatch, and the terminal output and shadow-sanitizer state to
// install.
type ProcProgram struct {
	// Img sizes the address space exactly as the interpreted
	// construction did (including stack executability).
	Img mem.ImageConfig
	// Ops is the straight-line instruction stream: write runs in
	// ascending address order, then the ledger mutations and events in
	// their original chronological order.
	Ops []Op
	// Output is the program's printed lines.
	Output []string
	// Shadow is the end-of-run sanitizer snapshot
	// (shadow.Sanitizer.Snapshot), nil when the config ran
	// unsanitized.
	Shadow any

	nEvents int
}

// Program is a compiled scenario: one ProcProgram per process the run
// constructed, in construction order. Programs are immutable after
// Record returns and safe for concurrent Execute.
type Program struct {
	// ID, Defense, and Model name the specialization triple.
	ID      string
	Defense string
	Model   string
	Procs   []*ProcProgram
}

// NumOps returns the total instruction count across all processes.
func (p *Program) NumOps() int {
	n := 0
	for _, pp := range p.Procs {
		n += len(pp.Ops)
	}
	return n
}

// Dump renders the whole program deterministically, one op per line —
// the artifact the CI determinism check byte-compares across
// independent compiles.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s|%s|%s procs=%d ops=%d\n",
		p.ID, p.Defense, p.Model, len(p.Procs), p.NumOps())
	for i, pp := range p.Procs {
		fmt.Fprintf(&sb, "proc %d ops=%d output=%d shadow=%v\n",
			i, len(pp.Ops), len(pp.Output), pp.Shadow != nil)
		for _, op := range pp.Ops {
			sb.WriteString("  ")
			sb.WriteString(op.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// modelName resolves the model the machine layer will actually use: a
// zero model selects the paper's ILP32 i386 testbed.
func modelName(m layout.Model) string {
	if m.PtrSize == 0 {
		return layout.ILP32i386.Name
	}
	return m.Name
}

// Key is the compiled-program cache key for a scenario under a config:
// id|defense|model, the same triple a Program is specialized to. It
// lives alongside (not inside) the serving tier's content-addressed
// result key — results are cached per request, programs per
// specialization.
func Key(id string, cfg defense.Config) string {
	return id + "|" + cfg.Name + "|" + modelName(cfg.Model)
}

// span is one raw recorded write: addr..addr+n at mutation time.
type span struct {
	addr mem.Addr
	n    uint64
}

type imgRec struct {
	img   *mem.Image
	spans []span
}

type procRec struct {
	p      *machine.Process
	img    *imgRec
	ledger []core.LedgerOp
}

// recorder observes one instrumented interpreted run through the
// OnImage/OnProcess seams.
type recorder struct {
	imgs    []*imgRec
	procs   []*procRec
	badPair bool
}

func (r *recorder) onImage(img *mem.Image) {
	ir := &imgRec{img: img}
	img.Mem.SetMutObserver(func(a mem.Addr, n uint64) {
		ir.spans = append(ir.spans, span{a, n})
	})
	r.imgs = append(r.imgs, ir)
}

func (r *recorder) onProcess(p *machine.Process) {
	// machine.New fires OnImage, then (construction done) the defense
	// layer fires OnProcess, so process i pairs with image i. Verify
	// rather than trust: a process whose memory is not the image we
	// instrumented means the pairing assumption broke, and the program
	// would replay the wrong write set.
	i := len(r.procs)
	if i >= len(r.imgs) || r.imgs[i].img.Mem != p.Mem {
		r.badPair = true
		return
	}
	pr := &procRec{p: p, img: r.imgs[i]}
	p.Tracker.SetJournal(func(op core.LedgerOp) {
		pr.ledger = append(pr.ledger, op)
	})
	r.procs = append(r.procs, pr)
}

// Record runs the scenario once through the interpreted path under
// recording instrumentation and lowers the observed run into a
// Program. The run function receives an instrumented copy of cfg and
// must construct every process through it (cfg.NewProcess), as all
// catalogue scenarios and foundry programs do.
//
// Record returns ErrNotCompilable when the run cannot be faithfully
// replayed: cfg already carries OnProcess/OnImage instrumentation, the
// run restored a checkpoint (EvRestore), or a constructed process did
// not come through the recording seams. Any other error is the run's
// own infrastructure error, propagated unchanged.
func Record(id string, cfg defense.Config, run func(defense.Config) error) (*Program, error) {
	if cfg.OnProcess != nil || cfg.OnImage != nil {
		// Foreign instrumentation (chaos, tracing) changes run
		// behaviour in ways a replay cannot reproduce — and chaining
		// around it would record the instrumented semantics under a
		// key that promises the plain ones.
		return nil, ErrNotCompilable
	}
	rec := &recorder{}
	rcfg := cfg
	rcfg.OnImage = rec.onImage
	rcfg.OnProcess = rec.onProcess
	if err := run(rcfg); err != nil {
		rec.detach()
		return nil, err
	}
	rec.detach()
	if rec.badPair || len(rec.procs) != len(rec.imgs) {
		return nil, ErrNotCompilable
	}

	opts := cfg.MachineOptions()
	imgCfg := opts.Image
	imgCfg.ExecStack = opts.ExecStack

	prog := &Program{ID: id, Defense: cfg.Name, Model: modelName(cfg.Model)}
	for _, pr := range rec.procs {
		pp, err := lowerProc(pr, imgCfg)
		if err != nil {
			return nil, err
		}
		prog.Procs = append(prog.Procs, pp)
	}
	return prog, nil
}

// detach disarms the recording seams so the instrumented processes can
// be used (e.g. as a differential reference) without feeding the
// recorder further.
func (r *recorder) detach() {
	for _, ir := range r.imgs {
		ir.img.Mem.SetMutObserver(nil)
	}
	for _, pr := range r.procs {
		pr.p.Tracker.SetJournal(nil)
	}
}

// lowerProc converts one recorded process into its compiled form.
func lowerProc(pr *procRec, imgCfg mem.ImageConfig) (*ProcProgram, error) {
	events := pr.p.Events()
	for _, e := range events {
		if e.Kind == machine.EvRestore {
			// A rollback un-writes earlier stores; the straight-line
			// write set cannot express that ordering against the
			// event stream.
			return nil, ErrNotCompilable
		}
	}

	pp := &ProcProgram{
		Img:     imgCfg,
		Output:  pr.p.OutputLines(),
		nEvents: len(events),
	}
	if san := pr.p.Sanitizer(); san != nil {
		pp.Shadow = san.Snapshot()
	}

	// Lower the write set: sort, merge overlapping/adjacent spans
	// (byte union — and therefore dirty-page union — is preserved
	// exactly), split at segment boundaries, and read the final bytes.
	// Reading finals rather than replaying every historical store
	// collapses N overlapping writes into one run per byte range.
	m := pr.img.img.Mem
	segs := m.Segments()
	for _, iv := range mergeSpans(pr.img.spans) {
		runs, err := splitRuns(segs, iv)
		if err != nil {
			return nil, err
		}
		for _, r := range runs {
			data, err := m.Read(segs[r.Seg].Base.Add(int64(r.Off)), uint64(r.n))
			if err != nil {
				return nil, fmt.Errorf("compile: reading recorded run: %w", err)
			}
			pp.Ops = append(pp.Ops, Op{Code: OpWriteRun, Seg: r.Seg, Off: r.Off, Data: data})
		}
	}

	// Ledger mutations in chronological order. Places and releases
	// interleave (re-place after release at the same address is a
	// catalogue pattern), so the stream must not be reordered.
	for _, lop := range pr.ledger {
		code := OpPlace
		if lop.Release {
			code = OpRelease
		}
		pp.Ops = append(pp.Ops, Op{Code: code, Led: lop})
	}

	// Events in chronological order, classified: defense verdicts and
	// process deaths are checks, everything else is a call.
	for _, e := range events {
		pp.Ops = append(pp.Ops, Op{Code: opForEvent(e), Ev: e})
	}
	return pp, nil
}

// opForEvent classifies an event into the compiled ISA.
func opForEvent(e machine.Event) OpCode {
	switch e.Kind {
	case machine.EvCanaryAbort, machine.EvShadowAbort, machine.EvGuardAbort,
		machine.EvNXViolation, machine.EvSegfault, machine.EvShadowViolation,
		machine.EvVTableHijack:
		return OpCheck
	}
	return OpCall
}

// mergeSpans returns the sorted union of the recorded spans as
// disjoint intervals, merging overlapping and adjacent spans. Adjacent
// merging is safe for dirty-page fidelity: the byte union is unchanged,
// so the page union is too.
func mergeSpans(spans []span) []span {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].addr < sorted[j].addr })
	out := sorted[:1]
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.addr <= last.addr.Add(int64(last.n)) {
			if end := s.addr.Add(int64(s.n)); end > last.addr.Add(int64(last.n)) {
				last.n = uint64(end.Diff(last.addr))
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

type runRef struct {
	Seg int
	Off uint64
	n   uint64
}

// splitRuns maps one merged interval onto segment-relative runs. A
// single mem.Write never crosses segments, but merged intervals can
// when segments are contiguous (data|bss in the canonical image).
func splitRuns(segs []*mem.Segment, iv span) ([]runRef, error) {
	var out []runRef
	addr, left := iv.addr, iv.n
	for left > 0 {
		si := -1
		for i, s := range segs {
			if s.Contains(addr) {
				si = i
				break
			}
		}
		if si < 0 {
			return nil, fmt.Errorf("compile: recorded write at %#x outside any segment", uint64(addr))
		}
		s := segs[si]
		off := uint64(addr.Diff(s.Base))
		n := s.Size() - off
		if left < n {
			n = left
		}
		out = append(out, runRef{Seg: si, Off: off, n: n})
		addr = addr.Add(int64(n))
		left -= n
	}
	return out, nil
}
