package compile

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/shadow"
)

// Reference collects the processes of an interpreted run so its
// terminal state can be diffed against a compiled replay. Attach it to
// a config, run the scenario interpreted, then Diff.
type Reference struct {
	procs []*machine.Process
}

// Observe chains the reference's collector onto cfg.OnProcess
// (preserving any existing hook).
func (r *Reference) Observe(cfg *defense.Config) {
	prev := cfg.OnProcess
	cfg.OnProcess = func(p *machine.Process) {
		if prev != nil {
			prev(p)
		}
		r.procs = append(r.procs, p)
	}
}

// Procs returns the collected processes in construction order.
func (r *Reference) Procs() []*machine.Process { return r.procs }

// Diff compares an interpreted run's terminal state against a compiled
// replay's, plane by plane, and returns one human-readable line per
// divergence (empty means byte-identical). The compared planes are the
// equivalence contract: process count, event streams, program output,
// full segment bytes, dirty-page bitmaps, shadow sanitizer state, and
// the placement ledger.
func Diff(ref []*machine.Process, res *Result) []string {
	var diffs []string
	if len(ref) != len(res.Procs) {
		return []string{fmt.Sprintf("proc count: interpreted=%d compiled=%d", len(ref), len(res.Procs))}
	}
	for i, ip := range ref {
		for _, d := range DiffProc(ip, res.Procs[i]) {
			diffs = append(diffs, fmt.Sprintf("proc %d: %s", i, d))
		}
	}
	return diffs
}

// DiffProc compares one interpreted process against one replayed
// process across every equivalence plane.
func DiffProc(ip *machine.Process, cp *ProcResult) []string {
	var diffs []string

	diffs = append(diffs, diffEvents(ip.Events(), cp.Events)...)
	diffs = append(diffs, diffLines("output", ip.OutputLines(), cp.Output)...)
	diffs = append(diffs, diffMemory(ip.Mem, cp.Mem)...)
	diffs = append(diffs, diffShadow(ip.Sanitizer(), cp.Sanitizer)...)
	diffs = append(diffs, diffLedger(ip.Tracker, cp.Tracker)...)
	return diffs
}

func diffEvents(want, got []machine.Event) []string {
	if len(want) != len(got) {
		return []string{fmt.Sprintf("events: count interpreted=%d compiled=%d", len(want), len(got))}
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			return []string{fmt.Sprintf("events[%d]: interpreted=%+v compiled=%+v", i, want[i], got[i])}
		}
	}
	return nil
}

func diffLines(what string, want, got []string) []string {
	if len(want) != len(got) {
		return []string{fmt.Sprintf("%s: count interpreted=%d compiled=%d", what, len(want), len(got))}
	}
	for i := range want {
		if want[i] != got[i] {
			return []string{fmt.Sprintf("%s[%d]: interpreted=%q compiled=%q", what, i, want[i], got[i])}
		}
	}
	return nil
}

func diffMemory(want, got *mem.Memory) []string {
	ws, gs := want.Segments(), got.Segments()
	if len(ws) != len(gs) {
		return []string{fmt.Sprintf("segments: count interpreted=%d compiled=%d", len(ws), len(gs))}
	}
	var diffs []string
	for i := range ws {
		w, g := ws[i], gs[i]
		if w.Kind != g.Kind || w.Base != g.Base || w.Size() != g.Size() {
			diffs = append(diffs, fmt.Sprintf("segment %d: shape interpreted=%v@%#x+%d compiled=%v@%#x+%d",
				i, w.Kind, uint64(w.Base), w.Size(), g.Kind, uint64(g.Base), g.Size()))
			continue
		}
		wb, werr := want.Read(w.Base, w.Size())
		gb, gerr := got.Read(g.Base, g.Size())
		if werr != nil || gerr != nil {
			diffs = append(diffs, fmt.Sprintf("segment %v: read failed: %v / %v", w.Kind, werr, gerr))
			continue
		}
		if off := firstDiff(wb, gb); off >= 0 {
			diffs = append(diffs, fmt.Sprintf("segment %v: bytes differ first at +%#x: interpreted=%#02x compiled=%#02x",
				w.Kind, off, wb[off], gb[off]))
		}
		wd := want.Dirty().DirtyPages(w.Kind)
		gd := got.Dirty().DirtyPages(g.Kind)
		if !reflect.DeepEqual(wd, gd) {
			diffs = append(diffs, fmt.Sprintf("segment %v: dirty pages interpreted=%v compiled=%v", w.Kind, wd, gd))
		}
	}
	return diffs
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

func diffShadow(want, got *shadow.Sanitizer) []string {
	switch {
	case want == nil && got == nil:
		return nil
	case want == nil || got == nil:
		return []string{fmt.Sprintf("shadow: presence interpreted=%v compiled=%v", want != nil, got != nil)}
	}
	ws, gs := want.StateString(), got.StateString()
	if ws != gs {
		return []string{fmt.Sprintf("shadow: state interpreted=%q compiled=%q", ws, gs)}
	}
	return nil
}

func diffLedger(want, got *core.LeakTracker) []string {
	var diffs []string
	if want.AllocatedBytes != got.AllocatedBytes || want.ReleasedBytes != got.ReleasedBytes {
		diffs = append(diffs, fmt.Sprintf("ledger: totals interpreted=%d/%d compiled=%d/%d",
			want.AllocatedBytes, want.ReleasedBytes, got.AllocatedBytes, got.ReleasedBytes))
	}
	if !reflect.DeepEqual(want.Live(), got.Live()) {
		diffs = append(diffs, fmt.Sprintf("ledger: live placements interpreted=%v compiled=%v",
			want.Live(), got.Live()))
	}
	return diffs
}
