package compile

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/shrink"
)

// TestDifferentialEquivalence is the equivalence harness: every
// catalogue scenario crossed with every catalogue defense runs once
// interpreted (the reference) and once compiled-and-replayed, and the
// two terminal states must be byte-identical on every plane — events,
// output, full segment bytes, dirty-page bitmaps, shadow sanitizer
// state, and the placement ledger. A mismatch is minimized with
// shrink.Greedy to the smallest op subsequence that still diverges
// before the test reports it.
func TestDifferentialEquivalence(t *testing.T) {
	for _, s := range attack.Catalog() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range defense.Catalog() {
				checkEquivalence(t, s, cfg)
			}
		})
	}
}

// checkEquivalence runs one (scenario, defense) cell through both
// paths and fails with a minimized trace on divergence.
func checkEquivalence(t *testing.T, s attack.Scenario, cfg defense.Config) {
	t.Helper()

	// Interpreted reference run.
	var ref Reference
	rcfg := cfg
	ref.Observe(&rcfg)
	refOut, err := s.Run(rcfg)
	if err != nil {
		t.Fatalf("%s/%s: interpreted run: %v", s.ID, cfg.Name, err)
	}

	// Record (a second interpreted run) and compile.
	sp, err := CompileScenario(s, cfg)
	if err != nil {
		t.Fatalf("%s/%s: compile: %v", s.ID, cfg.Name, err)
	}

	// The recording run doubles as a determinism check: its outcome
	// must match the reference run's.
	recOut := sp.Outcome()
	if got, want := recOut.Status(), refOut.Status(); got != want {
		t.Fatalf("%s/%s: outcome drift between interpreted runs: %s vs %s",
			s.ID, cfg.Name, got, want)
	}

	// Replay and diff every plane.
	res, err := sp.Prog.Execute(nil)
	if err != nil {
		t.Fatalf("%s/%s: execute: %v", s.ID, cfg.Name, err)
	}
	diffs := Diff(ref.Procs(), res)
	if len(diffs) == 0 {
		return
	}
	for _, d := range diffs {
		t.Errorf("%s/%s: divergence: %s", s.ID, cfg.Name, d)
	}
	reportMinimized(t, s, cfg, ref.Procs(), sp.Prog, res)
}

// reportMinimized locates the first diverging process and uses
// shrink.Greedy to find a 1-minimal subsequence of its ops that still
// diverges from the interpreted reference, logging the trace.
func reportMinimized(t *testing.T, s attack.Scenario, cfg defense.Config,
	ref []*machine.Process, prog *Program, res *Result) {
	t.Helper()
	if len(ref) != len(res.Procs) {
		return // count mismatch: nothing op-level to minimize
	}
	for i := range ref {
		if len(DiffProc(ref[i], res.Procs[i])) == 0 {
			continue
		}
		pp := prog.Procs[i]
		ip := ref[i]
		failing := shrink.Predicate[Op](func(cand []Op) bool {
			trial := &ProcProgram{Img: pp.Img, Ops: cand, Output: pp.Output, Shadow: pp.Shadow}
			prc, err := trial.execute(nil)
			if err != nil {
				return false
			}
			return len(DiffProc(ip, prc)) > 0
		})
		minOps := shrink.Greedy(pp.Ops, failing)
		t.Logf("%s/%s proc %d: minimized diverging trace (%d of %d ops):",
			s.ID, cfg.Name, i, len(minOps), len(pp.Ops))
		for _, op := range minOps {
			t.Logf("  %s", op.String())
		}
		return
	}
}

// TestDifferentialWithPool re-runs a representative slice of the
// matrix with replay images sourced from a shared pool, proving the
// copy-on-write clone path replays identically to fresh mapping.
func TestDifferentialWithPool(t *testing.T) {
	pool := mem.NewImagePool()
	cfgs := []defense.Config{defense.None, defense.Hardened, defense.ShadowOnly}
	for _, s := range attack.Catalog()[:6] {
		for _, cfg := range cfgs {
			var ref Reference
			rcfg := cfg
			ref.Observe(&rcfg)
			if _, err := s.Run(rcfg); err != nil {
				t.Fatalf("%s/%s: interpreted: %v", s.ID, cfg.Name, err)
			}
			sp, err := CompileScenario(s, cfg)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", s.ID, cfg.Name, err)
			}
			_, res, err := sp.Run(pool)
			if err != nil {
				t.Fatalf("%s/%s: pooled execute: %v", s.ID, cfg.Name, err)
			}
			if diffs := Diff(ref.Procs(), res); len(diffs) > 0 {
				t.Errorf("%s/%s: pooled replay diverged: %v", s.ID, cfg.Name, diffs)
			}
		}
	}
}

// TestDumpDeterminism compiles the same cells twice and requires
// byte-identical program dumps — the in-process version of the CI
// double-run cmp check.
func TestDumpDeterminism(t *testing.T) {
	for _, s := range attack.Catalog()[:8] {
		for _, cfg := range []defense.Config{defense.None, defense.Hardened} {
			a, err := CompileScenario(s, cfg)
			if err != nil {
				t.Fatalf("%s/%s: compile 1: %v", s.ID, cfg.Name, err)
			}
			b, err := CompileScenario(s, cfg)
			if err != nil {
				t.Fatalf("%s/%s: compile 2: %v", s.ID, cfg.Name, err)
			}
			if a.Prog.Dump() != b.Prog.Dump() {
				t.Errorf("%s/%s: dumps differ across independent compiles", s.ID, cfg.Name)
			}
		}
	}
}

// TestNotCompilableSignals covers the bailout contract.
func TestNotCompilableSignals(t *testing.T) {
	s := attack.Catalog()[0]

	cfg := defense.None
	cfg.OnProcess = func(*machine.Process) {}
	if _, err := CompileScenario(s, cfg); err != ErrNotCompilable {
		t.Errorf("foreign OnProcess: got %v, want ErrNotCompilable", err)
	}

	cfg = defense.None
	cfg.OnImage = func(*mem.Image) {}
	if _, err := CompileScenario(s, cfg); err != ErrNotCompilable {
		t.Errorf("foreign OnImage: got %v, want ErrNotCompilable", err)
	}

	// A run that restores a checkpoint is not straight-line.
	_, err := Record("restorer", defense.None, func(c defense.Config) error {
		p, err := c.NewProcess()
		if err != nil {
			return err
		}
		cp := p.CowCheckpoint()
		if err := p.Mem.WriteU32(p.Img.Data.Base, 0xdeadbeef); err != nil {
			return err
		}
		return p.RestoreCheckpoint(cp)
	})
	if err != ErrNotCompilable {
		t.Errorf("restore run: got %v, want ErrNotCompilable", err)
	}
}
