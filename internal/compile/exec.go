package compile

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/shadow"
)

// ProcResult is the replayed terminal state of one process: the same
// observable planes the interpreted path exposes, reconstructed by the
// dispatch loop.
type ProcResult struct {
	Img       *mem.Image
	Mem       *mem.Memory
	Events    []machine.Event
	Output    []string
	Sanitizer *shadow.Sanitizer
	Tracker   *core.LeakTracker
}

// Result is the replayed terminal state of a whole program, one entry
// per recorded process in construction order.
type Result struct {
	Procs []*ProcResult
}

// Execute replays the program onto fresh address spaces and returns
// the terminal state. When pool is non-nil images are cloned from its
// pristine templates (copy-on-write), exactly as interpreted
// construction under defense.Config.Pool would; otherwise fresh images
// are mapped.
//
// The core is a flat dispatch loop over the op stream: write runs go
// through Segment.WriteRun (one bounds check, shared COW and dirty
// accounting), ledger ops through LeakTracker.Apply, events into the
// log. No layout resolution, placement validation, guard evaluation,
// or shadow checking happens here — the recorded run already paid for
// all of it. Programs are immutable, so concurrent Execute calls on
// one Program are safe.
func (p *Program) Execute(pool *mem.ImagePool) (*Result, error) {
	res := &Result{Procs: make([]*ProcResult, 0, len(p.Procs))}
	for i, pp := range p.Procs {
		prc, err := pp.execute(pool)
		if err != nil {
			return nil, fmt.Errorf("compile: %s|%s proc %d: %w", p.ID, p.Defense, i, err)
		}
		res.Procs = append(res.Procs, prc)
	}
	return res, nil
}

// execute replays one process program.
func (pp *ProcProgram) execute(pool *mem.ImagePool) (*ProcResult, error) {
	var img *mem.Image
	var err error
	if pool != nil {
		img, _, err = pool.Acquire(pp.Img)
	} else {
		img, err = mem.NewProcessImage(pp.Img)
	}
	if err != nil {
		return nil, err
	}
	segs := img.Mem.Segments()
	prc := &ProcResult{
		Img:     img,
		Mem:     img.Mem,
		Events:  make([]machine.Event, 0, pp.nEvents),
		Output:  append([]string(nil), pp.Output...),
		Tracker: core.NewLeakTracker(),
	}
	for i := range pp.Ops {
		op := &pp.Ops[i]
		switch op.Code {
		case OpWriteRun:
			if op.Seg < 0 || op.Seg >= len(segs) {
				return nil, fmt.Errorf("op %d: segment index %d out of range", i, op.Seg)
			}
			if err := segs[op.Seg].WriteRun(op.Off, op.Data); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case OpPlace, OpRelease:
			prc.Tracker.Apply(op.Led)
		case OpCall, OpCheck:
			prc.Events = append(prc.Events, op.Ev)
		default:
			return nil, fmt.Errorf("op %d: unknown opcode %d", i, op.Code)
		}
	}
	if pp.Shadow != nil {
		san := shadow.New()
		san.Restore(pp.Shadow)
		prc.Sanitizer = san
		// Attach for fidelity with the interpreted process, whose
		// memory carries its sanitizer; execution is over, so nothing
		// further is checked.
		prc.Mem.SetShadow(san)
	}
	return prc, nil
}
