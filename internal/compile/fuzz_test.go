package compile

import (
	"testing"

	"repro/internal/defense"
	"repro/internal/foundry"
)

// FuzzCompiledEquivalence feeds generated foundry programs — arbitrary
// placement/overflow specs, not the hand-written catalogue — through
// the record→lower→replay pipeline and requires the compiled terminal
// state to match the interpreted one on every plane, under a defense
// config chosen by the fuzzer. It is the adversarial counterpart of
// the fixed differential matrix: the fuzzer hunts for a generated
// program whose write pattern, ledger churn, or abort path the
// compiler mis-lowers.
func FuzzCompiledEquivalence(f *testing.F) {
	f.Add(int64(1), 0, uint8(0))
	f.Add(int64(42), 3, uint8(3))
	f.Add(int64(7), 11, uint8(7))
	f.Add(int64(-9), 5, uint8(13))
	f.Fuzz(func(t *testing.T, seed int64, index int, cfgSel uint8) {
		if index < 0 {
			index = -index
		}
		gen, err := foundry.Generate(seed, index%64)
		if err != nil {
			t.Skip()
		}
		cfgs := defense.Catalog()
		cfg := cfgs[int(cfgSel)%len(cfgs)]
		cfg.Model = foundry.Model

		run := func(c defense.Config) error {
			_, err := foundry.Execute(gen.Spec, c)
			return err
		}

		var ref Reference
		rcfg := cfg
		ref.Observe(&rcfg)
		if err := run(rcfg); err != nil {
			t.Skip() // spec the harness itself rejects: nothing to compare
		}

		prog, err := Record(gen.Spec.Name, cfg, run)
		if err == ErrNotCompilable {
			t.Skip()
		}
		if err != nil {
			t.Fatalf("seed=%d index=%d cfg=%s: interpreted run succeeded but recording failed: %v",
				seed, index, cfg.Name, err)
		}
		res, err := prog.Execute(nil)
		if err != nil {
			t.Fatalf("seed=%d index=%d cfg=%s: execute: %v", seed, index, cfg.Name, err)
		}
		for _, d := range Diff(ref.Procs(), res) {
			t.Errorf("seed=%d index=%d cfg=%s: divergence: %s", seed, index, cfg.Name, d)
		}
	})
}
