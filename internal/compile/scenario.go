package compile

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/mem"
)

// ScenarioProgram pairs a compiled program with the structured outcome
// its recording run produced. Scenario runs are deterministic, so the
// recorded outcome IS the outcome of every replay; Run returns a
// defensive clone per call.
type ScenarioProgram struct {
	Prog    *Program
	outcome *attack.Outcome
}

// CompileScenario records one interpreted run of the scenario under
// cfg and lowers it. It returns ErrNotCompilable (wrapped) for runs
// the compiler cannot express; callers fall back to interpretation.
func CompileScenario(s attack.Scenario, cfg defense.Config) (*ScenarioProgram, error) {
	var out *attack.Outcome
	prog, err := Record(s.ID, cfg, func(c defense.Config) error {
		o, err := s.Run(c)
		out = o
		return err
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("compile: scenario %s returned no outcome", s.ID)
	}
	return &ScenarioProgram{Prog: prog, outcome: out}, nil
}

// Outcome returns a defensive clone of the recorded outcome.
func (sp *ScenarioProgram) Outcome() *attack.Outcome { return cloneOutcome(sp.outcome) }

// Run replays the program (optionally pooling images) and returns the
// recorded outcome plus the replayed terminal state. The outcome is a
// fresh clone each call, safe for the serving layer to hand out.
func (sp *ScenarioProgram) Run(pool *mem.ImagePool) (*attack.Outcome, *Result, error) {
	res, err := sp.Prog.Execute(pool)
	if err != nil {
		return nil, nil, err
	}
	return cloneOutcome(sp.outcome), res, nil
}

func cloneOutcome(o *attack.Outcome) *attack.Outcome {
	c := *o
	c.Details = append([]string(nil), o.Details...)
	if o.Metrics != nil {
		c.Metrics = make(map[string]float64, len(o.Metrics))
		for k, v := range o.Metrics {
			c.Metrics[k] = v
		}
	}
	return &c
}
