// Package core implements the paper's subject: the C++ "placement new"
// expression and its secured counterparts.
//
//	void *operator new (size_t, void *p) throw() { return p; }
//
// PlacementNew and PlacementNewArray reproduce the standard semantics
// (§2.5): any non-null address already mapped into the process is
// accepted; no bounds, type, or alignment checking of any kind is
// performed. Object construction writes sizeof(T) bytes starting at the
// given address — when the arena is smaller than T, those writes are the
// object overflow every attack in §3 builds on.
//
// CheckedPlacementNew and CheckedPlacementNewArray implement the §5.1
// "correct coding" discipline: the placement fails with a *BoundsError or
// *AlignError instead of overflowing. Pool, LeakTracker and Sanitize cover
// the §2.1/§4.5/§5.1 memory-pool, placement-delete and sanitization
// practices.
package core

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/object"
)

// Arena describes a bounded destination region for a checked placement:
// the information the unchecked expression throws away.
type Arena struct {
	Base  mem.Addr
	Size  uint64
	Label string
}

// End returns the first address past the arena.
func (a Arena) End() mem.Addr { return a.Base.Add(int64(a.Size)) }

// Contains reports whether [addr, addr+n) fits inside the arena.
func (a Arena) Contains(addr mem.Addr, n uint64) bool {
	return addr >= a.Base && addr.Add(int64(n)) <= a.End()
}

// ArenaOf builds the arena covering an existing object — the common
// "place a subclass instance over a superclass instance" pattern (§2.2).
func ArenaOf(o *object.Object) Arena {
	return Arena{Base: o.Addr(), Size: o.Size(), Label: o.Class().Name()}
}

// BoundsError reports a checked placement rejected for size.
type BoundsError struct {
	What  string // type being placed
	Need  uint64
	Have  uint64
	At    mem.Addr
	Label string // arena label, when known
	// Overflowed reports that the size computation n*sizeof(elem)
	// itself wrapped uint64 — the classic `new (p) T[n]` n-underflow
	// trap where a negative count becomes enormous. Need is
	// meaningless in that case; Count and ElemSize carry the request.
	Overflowed bool
	Count      uint64 // requested element count
	ElemSize   uint64 // sizeof(elem) under the model
}

// Error implements the error interface.
func (e *BoundsError) Error() string {
	where := e.Label
	if where == "" {
		where = fmt.Sprintf("arena at %#x", uint64(e.At))
	}
	if e.Overflowed {
		return fmt.Sprintf("core: placement of %s rejected: element count %d x %d-byte elements overflows size arithmetic (%s is %d bytes)",
			e.What, e.Count, e.ElemSize, where, e.Have)
	}
	return fmt.Sprintf("core: placement of %s (%d bytes) exceeds %s (%d bytes)", e.What, e.Need, where, e.Have)
}

// AlignError reports a checked placement rejected for misalignment.
type AlignError struct {
	What  string
	Align uint64
	At    mem.Addr
}

// Error implements the error interface.
func (e *AlignError) Error() string {
	return fmt.Sprintf("core: placement of %s at %#x violates %d-byte alignment", e.What, uint64(e.At), e.Align)
}

// TypeError reports a checked placement rejected for type incompatibility.
type TypeError struct {
	Placed *layout.Class
	Arena  *layout.Class
}

// Error implements the error interface.
func (e *TypeError) Error() string {
	return fmt.Sprintf("core: placing %s in an arena typed %s: incompatible classes", e.Placed.Name(), e.Arena.Name())
}

// PlacementNew is `new (addr) T()`: binds T at addr and runs the default
// constructor. Matching the paper's listing classes, construction
// zero-initialises scalar and pointer members (Student() sets gpa, year
// and semester) while array members such as ssn[] are left indeterminate
// — the attacker sets them afterwards through ordinary input handling.
// Mirroring §2.5, the only requirements are a non-null address and
// writable mapped pages for the members actually written; there is no
// notion of an arena, so members of a larger T land past a smaller
// destination object.
func PlacementNew(m *mem.Memory, model layout.Model, addr mem.Addr, cls *layout.Class) (*object.Object, error) {
	o, err := object.View(m, cls, model, addr)
	if err != nil {
		return nil, err
	}
	if err := o.ZeroScalars(); err != nil {
		return nil, fmt.Errorf("core: constructing %s at %#x: %w", cls.Name(), uint64(addr), err)
	}
	return o, nil
}

// Buffer is the result of a placement array-new: a raw typed buffer.
type Buffer struct {
	m     *mem.Memory
	model layout.Model
	Addr  mem.Addr
	Elem  layout.Type
	Len   uint64
}

// Size returns the buffer footprint in bytes.
func (b *Buffer) Size() uint64 { return b.Elem.Size(b.model) * b.Len }

// End returns the first address past the buffer.
func (b *Buffer) End() mem.Addr { return b.Addr.Add(int64(b.Size())) }

// StrNCpy copies src into the buffer with strncpy semantics against n
// bytes — n is the caller's claim, not the buffer's real length, exactly
// as in Listing 19.
func (b *Buffer) StrNCpy(src string, n uint64) error {
	return b.m.StrNCpy(b.Addr, src, n)
}

// ReadCString reads the buffer as a NUL-terminated string of at most max
// bytes. Reads past Len are permitted (they fault only at the MMU) — the
// §4.3 information-leak primitive.
func (b *Buffer) ReadCString(max uint64) ([]byte, bool, error) {
	return b.m.ReadCString(b.Addr, max)
}

// PlacementNewArray is `new (addr) T[n]`: binds an n-element buffer at
// addr with no checks at all (§2.3). Unlike object placement it does not
// zero the memory — C++ array-new of scalars performs no initialisation,
// which is precisely why stale secrets survive into the new buffer in the
// Listing 21 information leak.
func PlacementNewArray(m *mem.Memory, model layout.Model, addr mem.Addr, elem layout.Type, n uint64) (*Buffer, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil memory")
	}
	if addr == mem.NullAddr {
		return nil, fmt.Errorf("core: placement array-new at null address")
	}
	if elem == nil {
		return nil, fmt.Errorf("core: placement array-new with nil element type")
	}
	return &Buffer{m: m, model: model, Addr: addr, Elem: elem, Len: n}, nil
}

// CheckedPlacementNew is the §5.1 discipline for objects: verify
// sizeof(T) against the arena and the address alignment before placing.
// On success it behaves exactly like PlacementNew.
func CheckedPlacementNew(m *mem.Memory, model layout.Model, arena Arena, cls *layout.Class) (*object.Object, error) {
	l, err := layout.Of(cls, model)
	if err != nil {
		return nil, err
	}
	if l.Size > arena.Size {
		return nil, &BoundsError{What: cls.Name(), Need: l.Size, Have: arena.Size, At: arena.Base, Label: arena.Label}
	}
	if uint64(arena.Base)%l.Align != 0 {
		return nil, &AlignError{What: cls.Name(), Align: l.Align, At: arena.Base}
	}
	return PlacementNew(m, model, arena.Base, cls)
}

// CheckedPlacementNewTyped additionally enforces the type compatibility
// §2.5(3) notes is absent from the language: the placed class must be the
// arena's class or derive from it.
func CheckedPlacementNewTyped(m *mem.Memory, model layout.Model, arena Arena, arenaCls, cls *layout.Class) (*object.Object, error) {
	if !cls.SameOrDerivesFrom(arenaCls) {
		return nil, &TypeError{Placed: cls, Arena: arenaCls}
	}
	return CheckedPlacementNew(m, model, arena, cls)
}

// CheckedPlacementNewArray verifies n*sizeof(elem) against the arena
// before binding the buffer.
func CheckedPlacementNewArray(m *mem.Memory, model layout.Model, arena Arena, elem layout.Type, n uint64) (*Buffer, error) {
	if elem == nil {
		return nil, fmt.Errorf("core: placement array-new with nil element type")
	}
	es := elem.Size(model)
	need := es * n
	if es != 0 && need/es != n { // multiplication overflow: the classic n underflow trap
		return nil, &BoundsError{
			What: fmt.Sprintf("%s[%d]", elem, n), Have: arena.Size, At: arena.Base, Label: arena.Label,
			Overflowed: true, Count: n, ElemSize: es,
		}
	}
	if need > arena.Size {
		return nil, &BoundsError{What: fmt.Sprintf("%s[%d]", elem, n), Need: need, Have: arena.Size, At: arena.Base, Label: arena.Label}
	}
	if align := elem.Align(model); uint64(arena.Base)%align != 0 {
		return nil, &AlignError{What: elem.String(), Align: align, At: arena.Base}
	}
	return PlacementNewArray(m, model, arena.Base, elem, n)
}

// Sanitize overwrites the arena with zero bytes — the §5.1 remedy for
// information leaks: "memory needs to be sanitized" before reuse.
func Sanitize(m *mem.Memory, arena Arena) error {
	return m.Memset(arena.Base, 0, arena.Size)
}
