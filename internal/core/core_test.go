package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/object"
)

func paperClasses() (student, grad *layout.Class) {
	student = layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad = layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return student, grad
}

func newTestMem(t *testing.T) *mem.Memory {
	t.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlacementNewBasics(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	o, err := PlacementNew(m, layout.ILP32i386, 0x1100, student)
	if err != nil {
		t.Fatal(err)
	}
	if o.Addr() != 0x1100 || o.Size() != 16 {
		t.Errorf("object = %v", o)
	}
	// Construction zero-initialised the footprint.
	if v, _ := o.Float("gpa"); v != 0 {
		t.Errorf("gpa = %v", v)
	}
}

func TestPlacementNewRejectsNullAndUnmapped(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	if _, err := PlacementNew(m, layout.ILP32, mem.NullAddr, student); err == nil {
		t.Error("null placement succeeded")
	}
	if _, err := PlacementNew(m, layout.ILP32, 0x9000, student); err == nil {
		t.Error("unmapped placement succeeded")
	}
}

// TestPlacementNewOverflowsSmallerArena is the core fault of the paper:
// constructing a GradStudent over a Student arena writes 28 bytes into 16.
func TestPlacementNewOverflowsSmallerArena(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	// Student at 0x1100, sentinel word right behind it.
	if _, err := PlacementNew(m, layout.ILP32i386, 0x1100, student); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteU32(0x1110, 0x5a5a5a5a); err != nil {
		t.Fatal(err)
	}
	gs, err := PlacementNew(m, layout.ILP32i386, 0x1100, grad)
	if err != nil {
		t.Fatalf("unchecked placement of larger class failed: %v", err)
	}
	// Construction initialises only scalar members (all inside the first
	// 16 bytes); ssn[] is left indeterminate, so the sentinel survives —
	// which is exactly what lets the §5.2 canary-skip work.
	v, _ := m.ReadU32(0x1110)
	if v != 0x5a5a5a5a {
		t.Errorf("sentinel = %#x, want untouched by construction", v)
	}
	// Attacker-controlled member writes then land there.
	if err := gs.SetIndex("ssn", 0, 0x41414141); err != nil {
		t.Fatal(err)
	}
	v, _ = m.ReadU32(0x1110)
	if v != 0x41414141 {
		t.Errorf("sentinel = %#x, want attacker value", v)
	}
}

func TestCheckedPlacementNewAcceptsFit(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	arena := Arena{Base: 0x1100, Size: 32, Label: "pool"}
	o, err := CheckedPlacementNew(m, layout.ILP32i386, arena, grad)
	if err != nil {
		t.Fatalf("fitting placement rejected: %v", err)
	}
	if o.Class() != grad {
		t.Error("wrong class")
	}
	if _, err := CheckedPlacementNew(m, layout.ILP32i386, Arena{Base: 0x1100, Size: 16}, student); err != nil {
		t.Errorf("exact-fit placement rejected: %v", err)
	}
}

func TestCheckedPlacementNewRejectsOverflow(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	_ = student
	arena := Arena{Base: 0x1100, Size: 16, Label: "stud"}
	_, err := CheckedPlacementNew(m, layout.ILP32i386, arena, grad)
	var be *BoundsError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BoundsError", err)
	}
	if be.Need != 28 || be.Have != 16 {
		t.Errorf("bounds = %d/%d, want 28/16", be.Need, be.Have)
	}
	if !strings.Contains(be.Error(), "stud") {
		t.Errorf("message lacks arena label: %q", be.Error())
	}
}

func TestCheckedPlacementNewRejectsMisalignment(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	// Student requires 4-byte alignment under i386 rules.
	_, err := CheckedPlacementNew(m, layout.ILP32i386, Arena{Base: 0x1102, Size: 64}, student)
	var ae *AlignError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *AlignError", err)
	}
	if ae.Align != 4 {
		t.Errorf("align = %d", ae.Align)
	}
}

func TestCheckedPlacementNewTyped(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	other := layout.NewClass("Other").AddField("x", layout.Int)
	arena := Arena{Base: 0x1100, Size: 64}
	// Derived into base arena: type-compatible.
	if _, err := CheckedPlacementNewTyped(m, layout.ILP32i386, arena, student, grad); err != nil {
		t.Errorf("derived placement rejected: %v", err)
	}
	// Same class: compatible.
	if _, err := CheckedPlacementNewTyped(m, layout.ILP32i386, arena, student, student); err != nil {
		t.Errorf("same-class placement rejected: %v", err)
	}
	// Unrelated class: the §2.5(3) hole, closed.
	_, err := CheckedPlacementNewTyped(m, layout.ILP32i386, arena, student, other)
	var te *TypeError
	if !errors.As(err, &te) {
		t.Errorf("err = %v, want *TypeError", err)
	}
}

func TestPlacementNewArrayUnchecked(t *testing.T) {
	m := newTestMem(t)
	b, err := PlacementNewArray(m, layout.ILP32, 0x1100, layout.Char, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 16 || b.End() != 0x1110 {
		t.Errorf("buffer = %+v", b)
	}
	// No bounds discipline: a claimed length beyond Len writes past the
	// buffer (Listing 19's strncpy after the two-step attack).
	if err := b.StrNCpy(strings.Repeat("A", 32), 32); err != nil {
		t.Fatal(err)
	}
	v, _ := m.ReadU8(0x111f)
	if v != 'A' {
		t.Errorf("byte past buffer = %#x, want 'A'", v)
	}
}

func TestPlacementNewArrayDoesNotZero(t *testing.T) {
	// §4.3: array placement leaves stale bytes readable in the new buffer.
	m := newTestMem(t)
	if err := m.WriteCString(0x1100, "secret"); err != nil {
		t.Fatal(err)
	}
	b, err := PlacementNewArray(m, layout.ILP32, 0x1100, layout.Char, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.ReadCString(32)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if string(got) != "secret" {
		t.Errorf("stale contents = %q, want old secret", got)
	}
}

func TestPlacementNewArrayValidation(t *testing.T) {
	m := newTestMem(t)
	if _, err := PlacementNewArray(nil, layout.ILP32, 0x1100, layout.Char, 4); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := PlacementNewArray(m, layout.ILP32, mem.NullAddr, layout.Char, 4); err == nil {
		t.Error("null address accepted")
	}
	if _, err := PlacementNewArray(m, layout.ILP32, 0x1100, nil, 4); err == nil {
		t.Error("nil element type accepted")
	}
}

func TestCheckedPlacementNewArray(t *testing.T) {
	m := newTestMem(t)
	arena := Arena{Base: 0x1100, Size: 64, Label: "mem_pool"}
	if _, err := CheckedPlacementNewArray(m, layout.ILP32, arena, layout.Char, 64); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
	_, err := CheckedPlacementNewArray(m, layout.ILP32, arena, layout.Char, 65)
	var be *BoundsError
	if !errors.As(err, &be) {
		t.Errorf("overflow err = %v, want *BoundsError", err)
	}
	// Misaligned base for int elements.
	_, err = CheckedPlacementNewArray(m, layout.ILP32, Arena{Base: 0x1101, Size: 63}, layout.Int, 4)
	var ae *AlignError
	if !errors.As(err, &ae) {
		t.Errorf("misaligned err = %v, want *AlignError", err)
	}
	if _, err := CheckedPlacementNewArray(m, layout.ILP32, arena, nil, 1); err == nil {
		t.Error("nil element accepted")
	}
}

func TestCheckedPlacementNewArrayMulOverflow(t *testing.T) {
	// The introduction's unsigned-underflow trap: n = (unsigned)-1 makes
	// n*sizeof(elem) wrap; the checked form must still reject it.
	m := newTestMem(t)
	arena := Arena{Base: 0x1100, Size: 64}
	huge := ^uint64(0)/4 + 2 // wraps when multiplied by sizeof(int)==4
	_, err := CheckedPlacementNewArray(m, layout.ILP32, arena, layout.Int, huge)
	var be *BoundsError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BoundsError on multiplication overflow", err)
	}
	if !be.Overflowed {
		t.Errorf("Overflowed not set: %+v", be)
	}
	if be.Count != huge || be.ElemSize != 4 {
		t.Errorf("overflow error carries count=%d elemSize=%d, want %d/4", be.Count, be.ElemSize, huge)
	}
	// The message must describe the arithmetic overflow, not claim a
	// bogus 18-quintillion-byte "need".
	msg := be.Error()
	if !strings.Contains(msg, "overflows size arithmetic") {
		t.Errorf("overflow message lacks diagnosis: %q", msg)
	}
	if strings.Contains(msg, "18446744073709551615 bytes") {
		t.Errorf("overflow message still reports a bogus need: %q", msg)
	}
}

func TestCheckedPlacementNewArrayNUnderflowTrap(t *testing.T) {
	// The paper's introduction trap in its purest form: the program
	// computes n-1 elements from attacker input n=0, and the unsigned
	// subtraction underflows to (unsigned)-1.
	m := newTestMem(t)
	arena := Arena{Base: 0x1100, Size: 64}
	var n uint64 // attacker sends 0
	underflowed := n - 1
	_, err := CheckedPlacementNewArray(m, layout.ILP32, arena, layout.Int, underflowed)
	var be *BoundsError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BoundsError", err)
	}
	if !be.Overflowed || be.Count != ^uint64(0) {
		t.Errorf("underflow trap not diagnosed: %+v", be)
	}
	if be.Need != 0 {
		t.Errorf("Need = %d for an overflowed computation, want 0", be.Need)
	}
}

func TestArenaOfAndContains(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	o, err := object.View(m, student, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	a := ArenaOf(o)
	if a.Base != 0x1100 || a.Size != 16 || a.Label != "Student" {
		t.Errorf("arena = %+v", a)
	}
	if !a.Contains(0x1100, 16) || a.Contains(0x1100, 17) || a.Contains(0x10ff, 1) {
		t.Error("Contains wrong")
	}
	if a.End() != 0x1110 {
		t.Errorf("End = %#x", uint64(a.End()))
	}
}

func TestSanitize(t *testing.T) {
	m := newTestMem(t)
	if err := m.WriteCString(0x1100, "password-file-contents"); err != nil {
		t.Fatal(err)
	}
	if err := Sanitize(m, Arena{Base: 0x1100, Size: 32}); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Read(0x1100, 32)
	if !bytes.Equal(b, make([]byte, 32)) {
		t.Error("arena not zeroed")
	}
}

func TestPoolPlaceArrayUncheckedVsChecked(t *testing.T) {
	m := newTestMem(t)
	p, err := NewPool(m, layout.ILP32, 0x1100, 64, "mem_pool")
	if err != nil {
		t.Fatal(err)
	}
	// Unchecked pool: oversize placement succeeds (Listing 19).
	if _, err := p.PlaceArray(layout.Char, 128); err != nil {
		t.Errorf("unchecked oversize placement failed: %v", err)
	}
	p.Checked = true
	if _, err := p.PlaceArray(layout.Char, 128); err == nil {
		t.Error("checked oversize placement succeeded")
	}
	if _, err := p.PlaceArray(layout.Char, 64); err != nil {
		t.Errorf("checked fitting placement failed: %v", err)
	}
}

func TestPoolPlaceObject(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	p, err := NewPool(m, layout.ILP32i386, 0x1100, 16, "stud")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PlaceObject(student); err != nil {
		t.Fatal(err)
	}
	// Unchecked: GradStudent into 16-byte pool succeeds and overflows.
	if _, err := p.PlaceObject(grad); err != nil {
		t.Errorf("unchecked object placement failed: %v", err)
	}
	p.Checked = true
	if _, err := p.PlaceObject(grad); err == nil {
		t.Error("checked oversize object placement succeeded")
	}
}

func TestPoolSanitizeOnPlace(t *testing.T) {
	m := newTestMem(t)
	p, err := NewPool(m, layout.ILP32, 0x1100, 32, "pool")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadBytes([]byte("root:x:0:0:hash")); err != nil {
		t.Fatal(err)
	}
	p.SanitizeOnPlace = true
	b, err := p.PlaceArray(layout.Char, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := b.ReadCString(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("stale bytes survived sanitize-on-place: %q", got)
	}
}

func TestPoolLoadBytesTruncates(t *testing.T) {
	m := newTestMem(t)
	p, err := NewPool(m, layout.ILP32, 0x1100, 4, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadBytes([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	v, _ := m.ReadU8(0x1104)
	if v != 0 {
		t.Error("LoadBytes wrote past pool")
	}
}

func TestNewPoolValidation(t *testing.T) {
	m := newTestMem(t)
	if _, err := NewPool(nil, layout.ILP32, 0x1100, 16, ""); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := NewPool(m, layout.ILP32, 0x9000, 16, ""); err == nil {
		t.Error("unmapped pool accepted")
	}
	p, err := NewPool(m, layout.ILP32, 0x1100, 16, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arena().Label != "pool" {
		t.Errorf("default label = %q", p.Arena().Label)
	}
}

func TestLeakTrackerPaperArithmetic(t *testing.T) {
	// Listing 23: each iteration places a GradStudent (28 bytes under
	// i386 layout) and releases it through a Student-typed pointer (16
	// bytes). Leak per iteration = 12.
	tr := NewLeakTracker()
	const sizeGrad, sizeStudent = 28, 16
	iters := uint64(10)
	for i := uint64(0); i < iters; i++ {
		addr := mem.Addr(0x1000 + i*64)
		tr.RecordPlacement(addr, "GradStudent", sizeGrad)
		if err := tr.ReleaseSized(addr, sizeStudent); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Leaked(); got != iters*(sizeGrad-sizeStudent) {
		t.Errorf("leaked = %d, want %d", got, iters*(sizeGrad-sizeStudent))
	}
}

func TestLeakTrackerPlacementDelete(t *testing.T) {
	tr := NewLeakTracker()
	tr.RecordPlacement(0x1000, "GradStudent", 28)
	if err := tr.PlacementDelete(0x1000); err != nil {
		t.Fatal(err)
	}
	if tr.Leaked() != 0 {
		t.Errorf("leaked = %d after proper placement delete", tr.Leaked())
	}
	if err := tr.PlacementDelete(0x1000); err == nil {
		t.Error("double placement delete succeeded")
	}
	if err := tr.ReleaseSized(0x2000, 4); err == nil {
		t.Error("release of unknown placement succeeded")
	}
}

func TestLeakTrackerLostPointer(t *testing.T) {
	tr := NewLeakTracker()
	tr.RecordPlacement(0x1000, "GradStudent", 28)
	// Re-placement at the same address forgets the old object entirely.
	tr.RecordPlacement(0x1000, "Student", 16)
	if err := tr.PlacementDelete(0x1000); err != nil {
		t.Fatal(err)
	}
	if got := tr.Leaked(); got != 28 {
		t.Errorf("leaked = %d, want 28 (lost GradStudent)", got)
	}
}

func TestLeakTrackerReleaseClamped(t *testing.T) {
	tr := NewLeakTracker()
	tr.RecordPlacement(0x1000, "Student", 16)
	if err := tr.ReleaseSized(0x1000, 100); err != nil {
		t.Fatal(err)
	}
	if tr.ReleasedBytes != 16 {
		t.Errorf("released = %d, want clamped 16", tr.ReleasedBytes)
	}
}

func TestLeakTrackerLive(t *testing.T) {
	tr := NewLeakTracker()
	tr.RecordPlacement(0x2000, "B", 8)
	tr.RecordPlacement(0x1000, "A", 4)
	live := tr.Live()
	if len(live) != 2 || live[0].Addr != 0x1000 || live[1].What != "B" {
		t.Errorf("live = %+v", live)
	}
}
