package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mem"
)

// The paper's central fault: placement new performs no bounds checking,
// so constructing a larger subclass over a smaller object's arena writes
// past it (§2.5, §3.1).
func ExamplePlacementNew() {
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		fmt.Println(err)
		return
	}
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	// A 16-byte Student arena with a neighbour right behind it.
	if err := m.WriteU32(0x1010, 0xcafe); err != nil {
		fmt.Println(err)
		return
	}
	gs, err := core.PlacementNew(m, layout.ILP32i386, 0x1000, grad) // unchecked!
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := gs.SetIndex("ssn", 0, 0x41414141); err != nil {
		fmt.Println(err)
		return
	}
	v, _ := m.ReadU32(0x1010)
	fmt.Printf("neighbour after attack: %#x\n", v)
	// Output:
	// neighbour after attack: 0x41414141
}

// The §5.1 "correct coding" remedy rejects the same placement.
func ExampleCheckedPlacementNew() {
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		fmt.Println(err)
		return
	}
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	arena := core.Arena{Base: 0x1000, Size: student.Size(layout.ILP32i386), Label: "stud"}
	_, err := core.CheckedPlacementNew(m, layout.ILP32i386, arena, grad)
	fmt.Println(err)
	// Output:
	// core: placement of GradStudent (28 bytes) exceeds stud (16 bytes)
}

// Pools with sanitize-on-place close the §4.3 information leak.
func ExamplePool() {
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		fmt.Println(err)
		return
	}
	pool, err := core.NewPool(m, layout.ILP32i386, 0x1000, 64, "mem_pool")
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := pool.LoadBytes([]byte("root:x:0:0:secret")); err != nil {
		fmt.Println(err)
		return
	}
	pool.SanitizeOnPlace = true
	buf, err := pool.PlaceArray(layout.Char, 32)
	if err != nil {
		fmt.Println(err)
		return
	}
	remnant, _, err := buf.ReadCString(32)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("leaked bytes: %d\n", len(remnant))
	// Output:
	// leaked bytes: 0
}

// The §4.5 leak arithmetic: releasing a GradStudent arena through a
// Student-typed pointer leaks the size difference every iteration.
func ExampleLeakTracker() {
	tr := core.NewLeakTracker()
	for i := 0; i < 10; i++ {
		addr := mem.Addr(0x1000 + i*32)
		tr.RecordPlacement(addr, "GradStudent", 28)
		if err := tr.ReleaseSized(addr, 16); err != nil { // released as Student
			fmt.Println(err)
			return
		}
	}
	fmt.Printf("leaked: %d bytes (%d per iteration)\n", tr.Leaked(), tr.Leaked()/10)
	// Output:
	// leaked: 120 bytes (12 per iteration)
}
