package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// LeakTracker is the allocation ledger for placement-new lifecycles. C++
// "does not support a placement delete while it supports placement new"
// (§4.5); when a program releases a placed region through a pointer of a
// smaller type, the difference goes unreclaimed each iteration. The
// tracker makes that arithmetic observable and provides the disciplined
// PlacementDelete the paper recommends programmers write.
type LeakTracker struct {
	placed map[mem.Addr]placement
	// AllocatedBytes and ReleasedBytes accumulate over the tracker's life.
	AllocatedBytes uint64
	ReleasedBytes  uint64
	// journal, when non-nil, observes every successful ledger mutation
	// (the recording seam, see internal/compile). Failed releases are
	// not journalled: they change nothing, so replaying only the
	// successful ops reproduces the final ledger exactly.
	journal func(LedgerOp)
}

// LedgerOp is one successful placement-ledger mutation, in replayable
// form: a place records the full placement, a release records the
// bytes actually reclaimed (after any clamping the original call
// applied).
type LedgerOp struct {
	Release bool
	Addr    mem.Addr
	What    string
	Size    uint64
}

// SetJournal installs fn to observe every successful ledger mutation
// as it happens. Pass nil to disarm.
func (t *LeakTracker) SetJournal(fn func(LedgerOp)) { t.journal = fn }

// Apply replays a journalled op onto the ledger without re-validation:
// the op was journalled from a successful mutation, so it applies
// unconditionally.
func (t *LeakTracker) Apply(op LedgerOp) {
	if op.Release {
		delete(t.placed, op.Addr)
		t.ReleasedBytes += op.Size
		return
	}
	t.placed[op.Addr] = placement{what: op.What, size: op.Size}
	t.AllocatedBytes += op.Size
}

type placement struct {
	what string
	size uint64
}

// NewLeakTracker returns an empty ledger.
func NewLeakTracker() *LeakTracker {
	return &LeakTracker{placed: make(map[mem.Addr]placement)}
}

// RecordPlacement notes that `what` of size bytes was placed at addr.
// Re-placing at the same address releases nothing: the old placement is
// simply forgotten, leaking its full size — the lost-pointer case.
func (t *LeakTracker) RecordPlacement(addr mem.Addr, what string, size uint64) {
	t.placed[addr] = placement{what: what, size: size}
	t.AllocatedBytes += size
	if t.journal != nil {
		t.journal(LedgerOp{Addr: addr, What: what, Size: size})
	}
}

// PlacementDelete releases the placement at addr using its recorded size —
// the correct custom "placement delete" of §5.1.
func (t *LeakTracker) PlacementDelete(addr mem.Addr) error {
	p, ok := t.placed[addr]
	if !ok {
		return fmt.Errorf("core: placement delete of %#x: no live placement", uint64(addr))
	}
	delete(t.placed, addr)
	t.ReleasedBytes += p.size
	if t.journal != nil {
		t.journal(LedgerOp{Release: true, Addr: addr, Size: p.size})
	}
	return nil
}

// ReleaseSized releases the placement at addr claiming only `size` bytes —
// the buggy pattern of Listing 23, where memory allocated for a
// GradStudent is released through a Student-typed pointer. Claiming more
// than was placed is clamped to the placement size.
func (t *LeakTracker) ReleaseSized(addr mem.Addr, size uint64) error {
	p, ok := t.placed[addr]
	if !ok {
		return fmt.Errorf("core: release of %#x: no live placement", uint64(addr))
	}
	if size > p.size {
		size = p.size
	}
	delete(t.placed, addr)
	t.ReleasedBytes += size
	if t.journal != nil {
		t.journal(LedgerOp{Release: true, Addr: addr, Size: size})
	}
	return nil
}

// PlacementSize returns the recorded size of the live placement at
// addr, if one exists. Defense wiring uses it to quarantine the full
// placed extent on release, regardless of how many bytes the (possibly
// buggy) release path claimed.
func (t *LeakTracker) PlacementSize(addr mem.Addr) (uint64, bool) {
	p, ok := t.placed[addr]
	return p.size, ok
}

// Leaked returns bytes allocated but never released.
func (t *LeakTracker) Leaked() uint64 {
	return t.AllocatedBytes - t.ReleasedBytes
}

// LivePlacement describes one tracked live placement.
type LivePlacement struct {
	Addr mem.Addr
	What string
	Size uint64
}

// Live returns the outstanding placements in address order.
func (t *LeakTracker) Live() []LivePlacement {
	out := make([]LivePlacement, 0, len(t.placed))
	for a, p := range t.placed {
		out = append(out, LivePlacement{Addr: a, What: p.what, Size: p.size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
