package core

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/object"
)

// Pool is an application-managed memory pool (§2.1 use 3, §4): a fixed
// arena out of which buffers and objects are carved with placement new.
// "The constraint is that the size of the buffer is never greater than the
// size of the memory pool" — a constraint the pool only enforces when
// created with Checked, mirroring the programs of Listings 19–21 that rely
// on an (attackable) size variable instead.
type Pool struct {
	m     *mem.Memory
	model layout.Model
	arena Arena
	// Checked makes every placement go through the §5.1 bounds/align
	// verification.
	Checked bool
	// SanitizeOnPlace zeroes the whole pool before each placement — the
	// §5.1 information-leak remedy.
	SanitizeOnPlace bool
}

// NewPool creates a pool over [base, base+size). The region must already
// be mapped read-write.
func NewPool(m *mem.Memory, model layout.Model, base mem.Addr, size uint64, label string) (*Pool, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil memory")
	}
	if err := m.CheckRange(base, size, mem.PermRW); err != nil {
		return nil, fmt.Errorf("core: pool %q: %w", label, err)
	}
	if label == "" {
		label = "pool"
	}
	return &Pool{m: m, model: model, arena: Arena{Base: base, Size: size, Label: label}}, nil
}

// Arena returns the pool's bounds.
func (p *Pool) Arena() Arena { return p.arena }

// Base returns the pool's starting address.
func (p *Pool) Base() mem.Addr { return p.arena.Base }

// Size returns the pool's capacity in bytes.
func (p *Pool) Size() uint64 { return p.arena.Size }

// arenaShadow is the optional fine-grained interface the memory's
// attached shadow checker may implement (internal/shadow.Sanitizer
// does). Pools consult it so that re-placement over a reused arena —
// the paper's legitimate pool lifecycle — first clears stale
// quarantine or slot poison over the pool's own extent; without this,
// the §5.1 sanitization pass itself would trip the sanitizer.
type arenaShadow interface {
	Unpoison(mem.Addr, uint64)
}

// unpoisonArena clears shadow poison over the pool's extent before a
// placement writes it. Trailing red zones live *after* the arena and
// are untouched.
func (p *Pool) unpoisonArena() {
	if sh, ok := p.m.Shadow().(arenaShadow); ok {
		sh.Unpoison(p.arena.Base, p.arena.Size)
	}
}

// PlaceArray carves `new (pool) elem[n]` at the pool base. With Checked
// unset this is the raw Listing 19 expression: n may exceed the pool.
func (p *Pool) PlaceArray(elem layout.Type, n uint64) (*Buffer, error) {
	p.unpoisonArena()
	if p.SanitizeOnPlace {
		if err := Sanitize(p.m, p.arena); err != nil {
			return nil, err
		}
	}
	if p.Checked {
		return CheckedPlacementNewArray(p.m, p.model, p.arena, elem, n)
	}
	return PlacementNewArray(p.m, p.model, p.arena.Base, elem, n)
}

// PlaceObject places `new (pool) T()` at the pool base.
func (p *Pool) PlaceObject(cls *layout.Class) (*object.Object, error) {
	p.unpoisonArena()
	if p.SanitizeOnPlace {
		if err := Sanitize(p.m, p.arena); err != nil {
			return nil, err
		}
	}
	if p.Checked {
		return CheckedPlacementNew(p.m, p.model, p.arena, cls)
	}
	return PlacementNew(p.m, p.model, p.arena.Base, cls)
}

// LoadBytes copies raw data into the pool (e.g. Listing 21's "read a
// password file to mem_pool"), truncating at capacity.
func (p *Pool) LoadBytes(b []byte) error {
	if uint64(len(b)) > p.arena.Size {
		b = b[:p.arena.Size]
	}
	return p.m.Write(p.arena.Base, b)
}

// Sanitize zeroes the entire pool.
func (p *Pool) Sanitize() error { return Sanitize(p.m, p.arena) }
