package core

import (
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/mem"
)

// Property: CheckedPlacementNew is sound — it never constructs an object
// whose footprint exceeds the arena, and whenever it rejects a placement,
// the arena's contents are untouched.
func TestQuickCheckedPlacementSoundness(t *testing.T) {
	scalars := []layout.Type{layout.Char, layout.Int, layout.Double, layout.PtrTo(nil)}
	f := func(picks []uint8, arenaSize uint16, arrLen uint8) bool {
		if len(picks) > 10 {
			picks = picks[:10]
		}
		m := &mem.Memory{}
		if _, err := m.Map(mem.SegBSS, 0x1000, 0x2000, mem.PermRW); err != nil {
			return false
		}
		cls := layout.NewClass("Q")
		for i, p := range picks {
			ty := scalars[int(p)%len(scalars)]
			if p%5 == 0 {
				ty = layout.ArrayOf(ty, uint64(arrLen%6)+1)
			}
			cls.AddField("f"+string(rune('a'+i)), ty)
		}
		size := uint64(arenaSize%512) + 1
		arena := Arena{Base: 0x1400, Size: size, Label: "q"}
		// Sentinel byte just past the arena.
		if err := m.WriteU8(arena.End(), 0x5a); err != nil {
			return false
		}
		l, err := layout.Of(cls, layout.ILP32i386)
		if err != nil {
			return false
		}
		o, err := CheckedPlacementNew(m, layout.ILP32i386, arena, cls)
		if err != nil {
			// Rejection must be for a real reason...
			fits := l.Size <= size && uint64(arena.Base)%l.Align == 0
			if fits {
				return false
			}
			// ...and must not have written anything.
			v, rerr := m.ReadU8(arena.End())
			return rerr == nil && v == 0x5a
		}
		// Acceptance implies the object fits entirely inside the arena.
		if o.Size() > size {
			return false
		}
		v, rerr := m.ReadU8(arena.End())
		return rerr == nil && v == 0x5a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the leak ledger balances — Leaked() always equals the sum of
// sizes of live placements after any sequence of placements and releases.
func TestQuickLeakTrackerBalance(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := NewLeakTracker()
		expect := make(map[mem.Addr]uint64)
		var lost uint64 // bytes leaked via forgotten or undersized releases
		for _, op := range ops {
			addr := mem.Addr(0x1000 + uint64(op%16)*64)
			size := uint64(op%48) + 1
			switch op % 3 {
			case 0: // placement (forgetting any previous one at addr)
				if old, ok := expect[addr]; ok {
					lost += old
				}
				tr.RecordPlacement(addr, "T", size)
				expect[addr] = size
			case 1: // proper placement delete
				err := tr.PlacementDelete(addr)
				if _, ok := expect[addr]; ok {
					if err != nil {
						return false
					}
					delete(expect, addr)
				} else if err == nil {
					return false
				}
			case 2: // undersized release
				claimed := size / 2
				err := tr.ReleaseSized(addr, claimed)
				if real, ok := expect[addr]; ok {
					if err != nil {
						return false
					}
					rel := claimed
					if rel > real {
						rel = real
					}
					lost += real - rel
					delete(expect, addr)
				} else if err == nil {
					return false
				}
			}
		}
		var live uint64
		for _, s := range expect {
			live += s
		}
		return tr.Leaked() == live+lost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
