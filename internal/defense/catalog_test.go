package defense

import (
	"testing"
)

// TestCatalogRoundTripsMachineOptions is the drift guard for the
// config → machine seam: every catalogue entry's knobs must survive
// MachineOptions() and come out armed on the process NewProcess()
// builds. A knob added to Config but forgotten in MachineOptions (or
// in machine.New) silently runs the "defended" configuration
// undefended — exactly the failure this test turns into a red bar.
func TestCatalogRoundTripsMachineOptions(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Catalog() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if c.Name == "" {
				t.Fatal("catalogue entry without a name")
			}
			if seen[c.Name] {
				t.Fatalf("duplicate catalogue name %q", c.Name)
			}
			seen[c.Name] = true

			opts := c.MachineOptions()
			if opts.StackGuard != c.StackGuard {
				t.Errorf("MachineOptions dropped StackGuard: %v != %v", opts.StackGuard, c.StackGuard)
			}
			if opts.ShadowStack != c.ShadowStack {
				t.Errorf("MachineOptions dropped ShadowStack: %v != %v", opts.ShadowStack, c.ShadowStack)
			}
			if opts.ExecStack != !c.NXStack {
				t.Errorf("MachineOptions NXStack inversion broken: ExecStack=%v, NXStack=%v", opts.ExecStack, c.NXStack)
			}
			if opts.Shadow != c.Shadow {
				t.Errorf("MachineOptions dropped Shadow: %v != %v", opts.Shadow, c.Shadow)
			}

			p, err := c.NewProcess()
			if err != nil {
				t.Fatalf("NewProcess: %v", err)
			}
			got := p.Options()
			if got.StackGuard != c.StackGuard || got.ShadowStack != c.ShadowStack ||
				got.ExecStack != !c.NXStack || got.Shadow != c.Shadow {
				t.Errorf("process options drifted from config: %+v vs %+v", got, c)
			}
			// The knobs must be armed, not just recorded.
			if c.Shadow {
				if p.Sanitizer() == nil {
					t.Error("Shadow config built a process without a sanitizer")
				}
				if p.Mem.Shadow() == nil {
					t.Error("Shadow config left the memory write path unchecked")
				}
			} else {
				if p.Sanitizer() != nil || p.Mem.Shadow() != nil {
					t.Error("non-Shadow config armed a sanitizer")
				}
			}
			if c.HeapGuard != p.Heap.RedZonesEnabled() {
				t.Errorf("HeapGuard=%v but allocator red zones enabled=%v", c.HeapGuard, p.Heap.RedZonesEnabled())
			}
		})
	}
}
