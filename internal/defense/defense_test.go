package defense

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/machine"
)

func paperClasses() (student, grad *layout.Class) {
	student = layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad = layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return student, grad
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Catalog() {
		if c.Name == "" {
			t.Error("config with empty name")
		}
		if seen[c.Name] {
			t.Errorf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(Catalog()) < 8 {
		t.Errorf("catalog has %d configs", len(Catalog()))
	}
}

func TestMachineOptionsMapping(t *testing.T) {
	tests := []struct {
		cfg  Config
		want machine.Options
	}{
		{None, machine.Options{ExecStack: true}},
		{StackGuardOnly, machine.Options{StackGuard: true, ExecStack: true}},
		{NXOnly, machine.Options{ExecStack: false}},
		{ShadowOnly, machine.Options{ShadowStack: true, ExecStack: true}},
	}
	for _, tt := range tests {
		t.Run(tt.cfg.Name, func(t *testing.T) {
			// Options carries func-typed seams (OnImage), so the struct is
			// no longer ==-comparable; DeepEqual treats the nil funcs here
			// as equal.
			if got := tt.cfg.MachineOptions(); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("options = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestPlaceDisciplines(t *testing.T) {
	student, grad := paperClasses()
	for _, tc := range []struct {
		cfg        Config
		wantPlaced bool
	}{
		{None, true},
		{StackGuardOnly, true}, // canary doesn't stop the placement itself
		{CheckedOnly, false},
		{GuardOnly, false},
		{Hardened, false},
	} {
		t.Run(tc.cfg.Name, func(t *testing.T) {
			p, err := tc.cfg.NewProcess()
			if err != nil {
				t.Fatal(err)
			}
			g, err := p.DefineGlobal("stud", student, false)
			if err != nil {
				t.Fatal(err)
			}
			arena := core.Arena{Base: g.Addr, Size: 16, Label: "stud"}
			_, err = tc.cfg.Place(p, arena, grad)
			if placed := err == nil; placed != tc.wantPlaced {
				t.Errorf("placed = %v (err=%v), want %v", placed, err, tc.wantPlaced)
			}
		})
	}
}

func TestPlaceCheckedAcceptsFit(t *testing.T) {
	student, _ := paperClasses()
	p, err := CheckedOnly.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.DefineGlobal("stud", student, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckedOnly.Place(p, core.Arena{Base: g.Addr, Size: 16}, student); err != nil {
		t.Errorf("fitting placement rejected: %v", err)
	}
}

func TestPlaceAtGuardInference(t *testing.T) {
	student, grad := paperClasses()
	p, err := GuardOnly.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.DefineGlobal("stud", student, false)
	if err != nil {
		t.Fatal(err)
	}
	// Guard infers the 16-byte global and rejects the 28-byte placement.
	_, err = GuardOnly.PlaceAt(p, g.Addr, grad)
	var ge *machine.GuardError
	if !errors.As(err, &ge) {
		t.Errorf("err = %v, want *GuardError", err)
	}
	// Without the guard the same site places fine.
	if _, err := None.PlaceAt(p, g.Addr, grad); err != nil {
		t.Errorf("undefended PlaceAt failed: %v", err)
	}
}

func TestGuardUnknownAddressPolicy(t *testing.T) {
	student, _ := paperClasses()
	strict := GuardOnly
	lax := Config{Name: "lax-guard", RuntimeGuard: true, GuardDenyUnknown: false}

	p, err := strict.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	// An address in bss that belongs to no defined global: uninferable.
	addr := p.Img.BSS.Base.Add(0x800)
	_, err = strict.PlaceAt(p, addr, student)
	var ge *machine.GuardError
	if !errors.As(err, &ge) || !ge.Unknown {
		t.Errorf("strict: err = %v, want unknown-arena guard error", err)
	}
	if _, err := lax.PlaceAt(p, addr, student); err != nil {
		t.Errorf("lax: %v", err)
	}
}

func TestApplyToPool(t *testing.T) {
	p, err := Hardened.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := core.NewPool(p.Mem, p.Model, p.Img.BSS.Base, 64, "mem_pool")
	if err != nil {
		t.Fatal(err)
	}
	Hardened.ApplyToPool(pool)
	if !pool.Checked || !pool.SanitizeOnPlace {
		t.Error("hardened pool not configured")
	}
	None.ApplyToPool(pool)
	if pool.Checked || pool.SanitizeOnPlace {
		t.Error("undefended pool still configured")
	}
}

func TestPlaceTypedDiscipline(t *testing.T) {
	student, grad := paperClasses()
	unrelated := layout.NewClass("Unrelated").
		AddField("a", layout.Double).
		AddField("b", layout.Int).
		AddField("c", layout.Int) // same 16-byte footprint as Student

	t.Run("typed rejects unrelated same-size class", func(t *testing.T) {
		p, err := TypedOnly.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		g, err := p.DefineGlobal("stud", student, false)
		if err != nil {
			t.Fatal(err)
		}
		arena := core.Arena{Base: g.Addr, Size: 16, Label: "stud"}
		if _, err := TypedOnly.PlaceTyped(p, arena, student, unrelated); err == nil {
			t.Error("unrelated class accepted")
		}
		// Same class and derived-into-larger-arena remain fine.
		if _, err := TypedOnly.PlaceTyped(p, arena, student, student); err != nil {
			t.Errorf("same-class placement rejected: %v", err)
		}
		big := core.Arena{Base: g.Addr, Size: 64, Label: "pool"}
		if _, err := TypedOnly.PlaceTyped(p, big, student, grad); err != nil {
			t.Errorf("derived placement rejected: %v", err)
		}
	})
	t.Run("untyped config falls back to Place", func(t *testing.T) {
		p, err := None.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		g, err := p.DefineGlobal("stud", student, false)
		if err != nil {
			t.Fatal(err)
		}
		arena := core.Arena{Base: g.Addr, Size: 16}
		if _, err := None.PlaceTyped(p, arena, student, unrelated); err != nil {
			t.Errorf("undefended typed placement failed: %v", err)
		}
	})
}

func TestGuardArenaScope(t *testing.T) {
	student, _ := paperClasses()
	p, err := MemGuardOnly.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.DefineGlobal("stud", student, false)
	if err != nil {
		t.Fatal(err)
	}
	// bss arena: guarded — a write just past it faults.
	arena := core.Arena{Base: g.Addr, Size: 16, Label: "stud"}
	if _, err := MemGuardOnly.Place(p, arena, student); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.WriteU8(arena.End(), 1); err == nil {
		t.Error("write past guarded bss arena succeeded")
	}
	// Heap arena: not guarded (that is heapguard's job).
	blk, err := p.Heap.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	ha := core.Arena{Base: blk, Size: 16, Label: "heap"}
	if _, err := MemGuardOnly.Place(p, ha, student); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.WriteU8(ha.End(), 1); err != nil {
		t.Errorf("heap arena unexpectedly guarded: %v", err)
	}
	// Disabled config installs nothing.
	None.GuardArena(p, core.Arena{Base: g.Addr.Add(32), Size: 8})
	if err := p.Mem.WriteU8(g.Addr.Add(40), 1); err != nil {
		t.Errorf("guard installed by disabled config: %v", err)
	}
}

func TestReleaseLeakSemantics(t *testing.T) {
	student, grad := paperClasses()
	_ = student
	gradSize := grad.Size(layout.ILP32i386)

	for _, tc := range []struct {
		cfg      Config
		wantLeak uint64
	}{
		{None, gradSize - 16}, // releases only sizeof(Student)
		{DeleteOnly, 0},       // full placement delete
		{Hardened, 0},         // includes placement delete
	} {
		t.Run(tc.cfg.Name, func(t *testing.T) {
			p, err := tc.cfg.NewProcess()
			if err != nil {
				t.Fatal(err)
			}
			hp, err := p.Heap.Alloc(gradSize)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Construct(grad, hp); err != nil {
				t.Fatal(err)
			}
			if err := tc.cfg.Release(p, hp, 16); err != nil {
				t.Fatal(err)
			}
			if got := p.Tracker.Leaked(); got != tc.wantLeak {
				t.Errorf("leaked = %d, want %d", got, tc.wantLeak)
			}
		})
	}
}
