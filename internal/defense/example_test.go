package defense_test

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/defense"
)

// Cross one attack with three §5 protections: StackGuard detects the
// linear smash, the §5.2 selective write bypasses it, and correct coding
// prevents the placement outright.
func Example() {
	scenario, err := attack.ByID("canary-skip")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, cfg := range []defense.Config{defense.StackGuardOnly, defense.ShadowOnly, defense.CheckedOnly} {
		o, err := scenario.Run(cfg)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%-12s -> %s\n", cfg.Name, o.Status())
	}
	// Output:
	// stackguard   -> SUCCESS
	// shadowstack  -> detected
	// checked-pnew -> prevented
}
