package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/stackm"
)

// runE16 compares the placement-new analyzer against the traditional
// baseline scanner over the listing corpus — reproducing the paper's §1
// claim that existing tools detect none of these vulnerabilities.
func runE16() (*report.Table, error) {
	t := report.NewTable("E16 — §1/§5.1/§7: static analyzer vs traditional scanner on the listing corpus",
		"program (paper ref)", "vulnerable", "analyzer findings", "baseline findings")
	var vulnTotal, analyzerHits, baselineHits int
	for _, e := range analyzer.Corpus() {
		r, err := analyzer.Analyze(e.Src, analyzer.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus %s: %w", e.Name, err)
		}
		bf, err := analyzer.Baseline(e.Src)
		if err != nil {
			return nil, err
		}
		codes := strings.Join(r.Codes(), " ")
		if codes == "" {
			codes = "-"
		}
		// The corpus entry expectations define what counts as a
		// placement-new vulnerability; the strcpy control is classic.
		placementVuln := e.Vulnerable && len(e.WantCodes) > 0
		if placementVuln {
			vulnTotal++
			hit := true
			for _, c := range e.WantCodes {
				if !r.HasCode(c) {
					hit = false
				}
			}
			if hit {
				analyzerHits++
			}
			if len(bf) > 0 {
				baselineHits++
			}
		}
		t.AddRow(e.Name+" ("+e.Ref+")", yesNo(e.Vulnerable), codes, strconv.Itoa(len(bf)))
	}
	t.AddRow("TOTAL placement-new vulns detected",
		strconv.Itoa(vulnTotal)+" programs",
		fmt.Sprintf("%d/%d", analyzerHits, vulnTotal),
		fmt.Sprintf("%d/%d", baselineHits, vulnTotal))
	return t, nil
}

// runE17 measures per-operation overhead of the §5.1/§5.2 defenses with
// wall-clock loops (bench_test.go provides the testing.B versions).
func runE17() (*report.Table, error) {
	t := report.NewTable("E17 — §5.1: defense overhead microbenchmarks",
		"operation", "ns/op", "relative")

	timeOp := func(iters int, f func() error) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
	}

	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		return nil, err
	}
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	arena := core.Arena{Base: img.BSS.Base, Size: 64, Label: "pool"}

	const iters = 20000
	unchecked, err := timeOp(iters, func() error {
		_, err := core.PlacementNew(img.Mem, layout.ILP32i386, arena.Base, student)
		return err
	})
	if err != nil {
		return nil, err
	}
	checked, err := timeOp(iters, func() error {
		_, err := core.CheckedPlacementNew(img.Mem, layout.ILP32i386, arena, student)
		return err
	})
	if err != nil {
		return nil, err
	}
	sanitize, err := timeOp(iters, func() error {
		return core.Sanitize(img.Mem, core.Arena{Base: img.BSS.Base, Size: 1024})
	})
	if err != nil {
		return nil, err
	}

	callCost := func(opts machine.Options) (float64, error) {
		p, err := machine.New(opts)
		if err != nil {
			return 0, err
		}
		if _, err := p.DefineFunc("f", []stackm.LocalSpec{{Name: "x", Type: layout.Int}},
			func(*machine.Process, *stackm.Frame) error { return nil }); err != nil {
			return 0, err
		}
		return timeOp(iters, func() error { return p.Call("f") })
	}
	plain, err := callCost(machine.Options{})
	if err != nil {
		return nil, err
	}
	canary, err := callCost(machine.Options{StackGuard: true})
	if err != nil {
		return nil, err
	}
	shadow, err := callCost(machine.Options{ShadowStack: true})
	if err != nil {
		return nil, err
	}

	rel := func(v, base float64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", v/base)
	}
	t.AddRow("placement new (unchecked)", fmt.Sprintf("%.0f", unchecked), "1.00x")
	t.AddRow("placement new (checked, §5.1)", fmt.Sprintf("%.0f", checked), rel(checked, unchecked))
	t.AddRow("sanitize 1 KiB (§5.1)", fmt.Sprintf("%.0f", sanitize), rel(sanitize, unchecked))
	t.AddRow("call+return (plain)", fmt.Sprintf("%.0f", plain), "1.00x")
	t.AddRow("call+return (StackGuard)", fmt.Sprintf("%.0f", canary), rel(canary, plain))
	t.AddRow("call+return (shadow stack)", fmt.Sprintf("%.0f", shadow), rel(shadow, plain))
	return t, nil
}
