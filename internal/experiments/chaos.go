package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/defense"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/resilience"
)

// ChaosConfig parameterises a chaos campaign: the attack x defense
// matrix replayed N seeded times under injected faults, with every job
// supervised, deadline-bounded, and restartable.
type ChaosConfig struct {
	// Seed drives every derived per-job fault schedule.
	Seed int64
	// Runs is the number of seeded replays of the matrix (default 3).
	Runs int
	// Prob is the per-access injection probability (default 0.005).
	Prob float64
	// Kinds restricts the injected fault kinds (default all).
	Kinds []chaos.Kind
	// MaxFaultsPerJob bounds each job's fault budget so bounded retry
	// can converge (default 3; 0 keeps the default — use a negative
	// value for a genuinely unlimited budget).
	MaxFaultsPerJob int
	// MaxAttempts is the per-job retry bound (default 4).
	MaxAttempts int
	// Timeout is the per-attempt deadline (default 10s).
	Timeout time.Duration
	// BreakerThreshold opens the crash-loop breaker after that many
	// consecutive dead jobs (default 8).
	BreakerThreshold int
	// Scenarios/Defenses restrict the matrix; empty selects the full
	// attack.Catalog() x defense.Catalog() cross.
	Scenarios []string
	Defenses  []string
	// SkipReplayCheck disables the internal determinism self-check
	// (replaying run 0 and comparing digests). The check doubles one
	// run's cost; campaigns embedded in other experiments may skip it.
	SkipReplayCheck bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	out := c
	if out.Runs <= 0 {
		out.Runs = 3
	}
	if out.Prob <= 0 {
		out.Prob = 0.005
	}
	if len(out.Kinds) == 0 {
		out.Kinds = chaos.AllKinds()
	}
	switch {
	case out.MaxFaultsPerJob == 0:
		out.MaxFaultsPerJob = 3
	case out.MaxFaultsPerJob < 0:
		out.MaxFaultsPerJob = 0 // unlimited
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 4
	}
	if out.Timeout <= 0 {
		out.Timeout = 10 * time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 8
	}
	return out
}

// ChaosCell is the outcome of one (scenario, defense) job within one
// chaos run. Every field is deterministic under a fixed campaign seed.
type ChaosCell struct {
	Scenario string `json:"scenario"`
	Defense  string `json:"defense"`
	// Status is the attack outcome's one-word status when the job
	// survived, or "dead" when the supervisor gave up on it.
	Status string `json:"status"`
	// Supervisor is the job's supervised state (ok/failed/timeout/
	// breaker-skipped).
	Supervisor string `json:"supervisor"`
	Attempts   int    `json:"attempts"`
	// Accesses and InjectedFaults summarise the injector transcript.
	Accesses       int `json:"accesses"`
	InjectedFaults int `json:"injected_faults"`
	// Crashes are the structured records of every recovered crash.
	Crashes []resilience.CrashRecord `json:"crashes,omitempty"`
}

// ChaosRunReport is one seeded replay of the matrix.
type ChaosRunReport struct {
	Run   int         `json:"run"`
	Cells []ChaosCell `json:"cells"`
	// Digest is the SHA-256 of the run's canonical JSON cells — the
	// byte-identity token the determinism contract is stated in.
	Digest string `json:"digest"`
	// Recovered counts crashes that were recovered by retry (the job
	// finished ok after at least one crash); Dead counts jobs the
	// supervisor gave up on.
	Recovered int `json:"recovered"`
	Dead      int `json:"dead"`
}

// ChaosReport is the whole campaign.
type ChaosReport struct {
	Seed      int64    `json:"seed"`
	Runs      int      `json:"runs"`
	Prob      float64  `json:"prob"`
	Kinds     string   `json:"kinds"`
	Scenarios []string `json:"scenarios"`
	Defenses  []string `json:"defenses"`

	RunReports []ChaosRunReport `json:"run_reports"`
	// Digest hashes all run digests: the campaign's identity.
	Digest string `json:"digest"`
	// Deterministic reports the internal replay self-check: run 0
	// executed twice produced byte-identical cells. Always true unless
	// SkipReplayCheck was set (then it is vacuously true).
	Deterministic bool `json:"deterministic"`
	// TotalCrashes / RecoveredJobs / DeadJobs aggregate the runs.
	TotalCrashes  int `json:"total_crashes"`
	RecoveredJobs int `json:"recovered_jobs"`
	DeadJobs      int `json:"dead_jobs"`
	// Partial, when some jobs died, is the degraded partial table of
	// the last run — the graceful-degradation artifact.
	Partial *report.TableData `json:"partial,omitempty"`
}

// resolveScenarios maps ids to scenarios, defaulting to the catalogue.
func resolveScenarios(ids []string) ([]attack.Scenario, error) {
	if len(ids) == 0 {
		return attack.Catalog(), nil
	}
	var out []attack.Scenario
	for _, id := range ids {
		s, err := attack.ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// resolveDefenses maps names to configs, defaulting to the catalogue.
func resolveDefenses(names []string) ([]defense.Config, error) {
	if len(names) == 0 {
		return defense.Catalog(), nil
	}
	byName := map[string]defense.Config{}
	for _, c := range defense.Catalog() {
		byName[c.Name] = c
	}
	var out []defense.Config
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown defense %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// RunChaosCampaign executes the campaign: for each of cfg.Runs seeded
// replays, every (scenario, defense) cell runs as a supervised job with
// a derived deterministic fault schedule. Crashed attempts are rolled
// back to the pre-run checkpoint (and the rollback verified against the
// whole-image diff) before retrying; jobs that exhaust their retries
// degrade to "dead" cells rather than failing the campaign.
func RunChaosCampaign(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	scenarios, err := resolveScenarios(cfg.Scenarios)
	if err != nil {
		return nil, err
	}
	defenses, err := resolveDefenses(cfg.Defenses)
	if err != nil {
		return nil, err
	}

	rep := &ChaosReport{
		Seed: cfg.Seed, Runs: cfg.Runs, Prob: cfg.Prob,
		Kinds:         chaos.KindNames(cfg.Kinds),
		Deterministic: true,
	}
	for _, s := range scenarios {
		rep.Scenarios = append(rep.Scenarios, s.ID)
	}
	for _, d := range defenses {
		rep.Defenses = append(rep.Defenses, d.Name)
	}

	var lastResults []*resilience.Result
	for r := 0; r < cfg.Runs; r++ {
		runRep, results, err := executeChaosRun(cfg, r, scenarios, defenses)
		if err != nil {
			return nil, err
		}
		rep.RunReports = append(rep.RunReports, runRep)
		rep.RecoveredJobs += runRep.Recovered
		rep.DeadJobs += runRep.Dead
		for _, c := range runRep.Cells {
			rep.TotalCrashes += len(c.Crashes)
		}
		lastResults = results
	}

	if !cfg.SkipReplayCheck && len(rep.RunReports) > 0 {
		replay, _, err := executeChaosRun(cfg, 0, scenarios, defenses)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos replay check: %w", err)
		}
		rep.Deterministic = replay.Digest == rep.RunReports[0].Digest
	}

	h := sha256.New()
	for _, rr := range rep.RunReports {
		h.Write([]byte(rr.Digest))
	}
	rep.Digest = hex.EncodeToString(h.Sum(nil))

	if rep.DeadJobs > 0 && lastResults != nil {
		data := resilience.PartialTable("chaos campaign — degraded partial results (last run)", lastResults).Data()
		rep.Partial = &data
	}
	return rep, nil
}

// executeChaosRun replays the matrix once under run index r's derived
// schedules and returns the run report plus the raw supervised results
// (for the degraded partial table).
func executeChaosRun(cfg ChaosConfig, r int, scenarios []attack.Scenario, defenses []defense.Config) (ChaosRunReport, []*resilience.Result, error) {
	pol := resilience.Policy{
		Timeout:          cfg.Timeout,
		MaxAttempts:      cfg.MaxAttempts,
		BreakerThreshold: cfg.BreakerThreshold,
		// Chaos jobs are microseconds long; backoff would only slow
		// the campaign without changing its deterministic outcome.
		Backoff: 0,
	}
	// When a collector is active (pntrace), supervised attempts become
	// retry spans and crash counters. Observation is passive: it does
	// not perturb the campaign's deterministic schedule or digests.
	if col := activeCollector; col != nil {
		pol.Observer = col
	}
	sup := resilience.NewSupervisor(pol)
	runRep := ChaosRunReport{Run: r}

	for _, s := range scenarios {
		for _, d := range defenses {
			cell, err := runChaosCell(cfg, sup, r, s, d)
			if err != nil {
				return ChaosRunReport{}, nil, err
			}
			runRep.Cells = append(runRep.Cells, cell)
			switch {
			case cell.Supervisor == string(resilience.StatusOK) && len(cell.Crashes) > 0:
				runRep.Recovered++
			case cell.Supervisor != string(resilience.StatusOK):
				runRep.Dead++
			}
		}
	}

	blob, err := json.Marshal(runRep.Cells)
	if err != nil {
		return ChaosRunReport{}, nil, fmt.Errorf("experiments: chaos digest: %w", err)
	}
	sum := sha256.Sum256(blob)
	runRep.Digest = hex.EncodeToString(sum[:])
	return runRep, sup.Results(), nil
}

// runChaosCell executes one supervised (scenario, defense) job.
func runChaosCell(cfg ChaosConfig, sup *resilience.Supervisor, r int, s attack.Scenario, d defense.Config) (ChaosCell, error) {
	jobID := s.ID + "/" + d.Name
	ccfg := chaos.Config{
		Seed:      chaos.DeriveSeed(cfg.Seed, strconv.Itoa(r), s.ID, d.Name),
		Prob:      cfg.Prob,
		Kinds:     cfg.Kinds,
		MaxFaults: cfg.MaxFaultsPerJob,
		// Injected permission/unmap faults arrive as synchronous
		// signals (panics): the supervisor, not the scenario, must
		// catch them — exactly the SIGSEGV -> core dump path.
		PanicOnFault: true,
	}
	if col := activeCollector; col != nil {
		ccfg.OnInject = col.ChaosHook()
	}
	inj := chaos.New(ccfg)

	// The scenario builds its own process(es); the OnProcess seam
	// captures each one, arms the injector on it, and checkpoints the
	// pristine pre-run image for crash rollback. The checkpoint is
	// copy-on-write: capture costs O(pages) pointer operations, and a
	// crashed attempt rolls back (and byte-verifies) in O(dirty pages)
	// instead of re-copying the whole address space per trial. mu
	// guards the captured state against the (timeout-only) case where
	// an abandoned attempt races the next one.
	var mu sync.Mutex
	var curP *machine.Process
	var curCP *mem.Checkpoint
	dcfg := d // copy; the catalogue config stays pristine
	dcfg.OnProcess = func(p *machine.Process) {
		cp := p.CowCheckpoint()
		mu.Lock()
		curP, curCP = p, cp
		mu.Unlock()
		inj.Arm(p.Mem)
	}

	job := resilience.Job{
		ID: jobID,
		Run: func(ctx context.Context, attempt int) (any, error) {
			return s.Run(dcfg)
		},
		OnCrash: func(rec *resilience.CrashRecord) {
			mu.Lock()
			p, cp := curP, curCP
			mu.Unlock()
			if p == nil || cp == nil {
				return
			}
			// Roll the crashed image back to its pre-run state and
			// verify the rollback. Both legs use the dirty-page API:
			// restore swaps back only the pages the attempt dirtied,
			// and the verification diff skips every page still shared
			// with the checkpoint — it must come back empty.
			if err := p.RestoreCheckpoint(cp); err != nil {
				return
			}
			rec.Restored = true
			if diff, err := p.Mem.DiffDirty(cp); err == nil && len(diff) == 0 {
				rec.RestoreClean = true
			}
		},
	}

	res := sup.Run(job)
	cell := ChaosCell{
		Scenario:       s.ID,
		Defense:        d.Name,
		Supervisor:     string(res.Status),
		Attempts:       res.Attempts,
		Accesses:       inj.Accesses(),
		InjectedFaults: inj.Count(),
		Crashes:        res.Crashes,
	}
	if res.Status == resilience.StatusOK {
		o, ok := res.Value.(*attack.Outcome)
		if !ok {
			return ChaosCell{}, fmt.Errorf("experiments: job %s returned %T, want *attack.Outcome", jobID, res.Value)
		}
		cell.Status = o.Status()
	} else {
		cell.Status = "dead"
	}
	return cell, nil
}

// --- E19: the chaos campaign as an indexed experiment --------------------

// e19Scenarios is the representative subset E19 runs: attacks covering
// the stack, data/bss, heap, pointer-subterfuge, and leak families, so
// the campaign exercises every recovery path without E15's full cost.
var e19Scenarios = []string{
	"bss-overflow", "heap-overflow", "stack-ret", "vptr-bss",
	"array-2step-stack", "infoleak-array", "memleak",
}

func runE19() (*report.Table, error) {
	rep, err := RunChaosCampaign(ChaosConfig{
		Seed: 42, Runs: 2, Prob: 0.004,
		Scenarios: e19Scenarios,
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E19 — chaos campaign: fault injection + supervised crash recovery",
		"quantity", "value")
	t.AddRow("matrix", fmt.Sprintf("%d scenarios x %d defenses x %d runs",
		len(rep.Scenarios), len(rep.Defenses), rep.Runs))
	t.AddRow("fault kinds", rep.Kinds)
	t.AddRow("injected-fault crashes", strconv.Itoa(rep.TotalCrashes))
	t.AddRow("jobs recovered by retry", strconv.Itoa(rep.RecoveredJobs))
	t.AddRow("jobs dead after retries", strconv.Itoa(rep.DeadJobs))
	t.AddRow("deterministic (replay check)", yesNo(rep.Deterministic))
	for _, rr := range rep.RunReports {
		t.AddRow(fmt.Sprintf("run %d digest", rr.Run), rr.Digest[:16]+"…")
	}
	return t, nil
}
