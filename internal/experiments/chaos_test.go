package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/resilience"
)

// quickChaos is a small but representative campaign config for tests.
func quickChaos() ChaosConfig {
	return ChaosConfig{
		Seed: 42, Runs: 2, Prob: 0.01,
		Scenarios: []string{"bss-overflow", "stack-ret", "heap-overflow", "memleak"},
		Defenses:  []string{"none", "stackguard", "hardened"},
	}
}

func TestChaosCampaignDeterministic(t *testing.T) {
	a, err := RunChaosCampaign(quickChaos())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosCampaign(quickChaos())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Deterministic || !b.Deterministic {
		t.Fatalf("internal replay check failed: a=%v b=%v", a.Deterministic, b.Deterministic)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("same seed produced different campaign JSON:\n%s\nvs\n%s", ja, jb)
	}
	// A different seed must actually change the campaign.
	cfg := quickChaos()
	cfg.Seed = 43
	c, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced identical campaign digests")
	}
}

func TestChaosCampaignInjectsAndRecovers(t *testing.T) {
	cfg := quickChaos()
	cfg.Prob = 0.02 // enough pressure to guarantee crashes
	rep, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var injected, crashes int
	for _, rr := range rep.RunReports {
		for _, c := range rr.Cells {
			injected += c.InjectedFaults
			crashes += len(c.Crashes)
			// Every recovered crash that rolled back must have
			// verified the rollback as clean.
			for _, cr := range c.Crashes {
				if cr.Restored && !cr.RestoreClean {
					t.Errorf("%s/%s attempt %d: restore ran but diff was not empty",
						c.Scenario, c.Defense, cr.Attempt)
				}
			}
			if c.Supervisor == string(resilience.StatusOK) && c.Status == "dead" {
				t.Errorf("%s/%s: ok job reported dead", c.Scenario, c.Defense)
			}
		}
	}
	if injected == 0 {
		t.Fatal("campaign injected no faults — chaos layer not armed")
	}
	if crashes == 0 {
		t.Fatal("no crashes recorded despite injected faults")
	}
	// The restore path must actually have been exercised somewhere.
	restored := 0
	for _, rr := range rep.RunReports {
		for _, c := range rr.Cells {
			for _, cr := range c.Crashes {
				if cr.Restored {
					restored++
				}
			}
		}
	}
	if restored == 0 {
		t.Fatal("no crash triggered a checkpoint restore")
	}
}

func TestChaosCampaignGracefulDegradation(t *testing.T) {
	// A single attempt and an unlimited fault budget make convergence
	// impossible for fault-heavy cells: some jobs must die, and the
	// campaign must degrade to a partial table instead of erroring.
	cfg := quickChaos()
	cfg.Prob = 0.05
	cfg.MaxAttempts = 1
	cfg.MaxFaultsPerJob = -1 // unlimited
	cfg.BreakerThreshold = 1000
	cfg.SkipReplayCheck = true
	rep, err := RunChaosCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadJobs == 0 {
		t.Skip("no job died under heavy chaos; cannot exercise degradation")
	}
	if rep.Partial == nil {
		t.Fatal("dead jobs but no degraded partial table")
	}
	if len(rep.Partial.Rows) == 0 {
		t.Fatal("partial table is empty")
	}
}

func TestChaosCampaignBreaker(t *testing.T) {
	// With a tiny breaker threshold and guaranteed-fatal injection,
	// the breaker must open and skip later jobs rather than grinding
	// through a crash loop.
	rep, err := RunChaosCampaign(ChaosConfig{
		Seed: 7, Runs: 1, Prob: 1.0,
		Kinds:            []chaos.Kind{chaos.KindUnmapPage},
		MaxAttempts:      1,
		MaxFaultsPerJob:  -1,
		BreakerThreshold: 2,
		SkipReplayCheck:  true,
		Scenarios:        []string{"bss-overflow", "stack-ret", "heap-overflow", "funcptr"},
		Defenses:         []string{"none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, c := range rep.RunReports[0].Cells {
		if c.Supervisor == string(resilience.StatusSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("crash-loop breaker never opened")
	}
}

func TestChaosCampaignUnknownInputs(t *testing.T) {
	if _, err := RunChaosCampaign(ChaosConfig{Scenarios: []string{"no-such"}}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := RunChaosCampaign(ChaosConfig{Defenses: []string{"no-such"}}); err == nil {
		t.Error("unknown defense accepted")
	}
}

func TestE19Table(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow in -short mode")
	}
	tb, err := runE19()
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	if !strings.Contains(s, "E19") || !strings.Contains(s, "deterministic (replay check)") {
		t.Fatalf("E19 table malformed:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "deterministic (replay check)") && !strings.Contains(line, "yes") {
			t.Fatalf("E19 campaign not deterministic:\n%s", s)
		}
	}
}
