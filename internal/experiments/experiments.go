// Package experiments regenerates every experiment indexed in
// EXPERIMENTS.md (E1–E18). Each experiment runs the relevant attack
// scenarios/analyzer passes and renders a table whose rows are the ones
// the paper reports informally in prose; cmd/pnbench prints them and the
// root bench_test.go times them.
package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/report"
)

// Experiment is one reproducible evaluation unit.
type Experiment struct {
	ID    string
	Ref   string
	Title string
	Run   func() (*report.Table, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "§3.5 L11", "data/bss overflow rewrites sibling object", runE1},
		{"E2", "§3.5.1 L12", "heap overflow rewrites adjacent buffer", runE2},
		{"E3", "§3.6.1 L13 + §5.2", "return-address indexing and canary bypass", runE3},
		{"E4", "§3.6.2", "arc injection vs code injection vs NX", runE4},
		{"E5", "§3.7.1 L14", "global variable overwrite", runE5},
		{"E6", "§3.7.2 L15", "local variable overwrite and padding index", runE6},
		{"E7", "§3.8.1 L16", "adjacent object member overwrite", runE7},
		{"E8", "§3.8.2", "vtable pointer subterfuge (bss and stack)", runE8},
		{"E9", "§3.9 L17", "function pointer subterfuge", runE9},
		{"E10", "§3.10 L18", "variable pointer subterfuge", runE10},
		{"E11", "§4.1–4.2 L19–20", "two-step array overflow (stack and bss)", runE11},
		{"E12", "§4.3 L21–22", "information leakage and sanitization", runE12},
		{"E13", "§4.4", "denial of service via loop-bound modification", runE13},
		{"E14", "§4.5 L23", "memory leak per iteration", runE14},
		{"E15", "§5", "attack x defense outcome matrix", runE15},
		{"E16", "§1/§5.1/§7", "static analyzer vs traditional baseline", runE16},
		{"E17", "§5.1", "defense overhead microbenchmarks", runE17},
		{"E18", "extension", "data-model generality (i386 / ILP32 / LP64)", runE18},
		{"E19", "extension", "chaos campaign: fault injection + supervised crash recovery", runE19},
	}
}

// runE18 is the generality ablation DESIGN.md calls out: the paper only
// evaluated a 32-bit gcc testbed; here key attacks run unchanged across
// three data models, with the leak arithmetic shifting exactly as the
// layouts do.
func runE18() (*report.Table, error) {
	models := []layout.Model{layout.ILP32i386, layout.ILP32, layout.LP64}
	headers := []string{"scenario"}
	for _, m := range models {
		headers = append(headers, m.Name)
	}
	t := report.NewTable("E18 — data-model generality (beyond the paper's 32-bit testbed)", headers...)

	for _, id := range []string{"bss-overflow", "stack-ret", "canary-skip", "vptr-bss", "array-2step-stack", "memleak"} {
		row := []string{id}
		for _, m := range models {
			cfg := defense.Config{Name: "none-" + m.Name, Model: m}
			o, err := run(id, cfg)
			if err != nil {
				return nil, err
			}
			cell := o.Status()
			if id == "memleak" {
				cell += " (" + fmtMetric(o, "leak_per_iteration") + "B/iter)"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}

	// The size arithmetic underlying all of the above.
	student := layout.NewClass("E18Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("E18GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	sizes := func(cls *layout.Class) []string {
		row := []string{"sizeof(" + cls.Name()[3:] + ")"}
		for _, m := range models {
			l, err := layout.Of(cls, m)
			if err != nil {
				row = append(row, "?")
				continue
			}
			row = append(row, strconv.FormatUint(l.Size, 10))
		}
		return row
	}
	t.AddRow(sizes(student)...)
	t.AddRow(sizes(grad)...)
	return t, nil
}

// ByID resolves an experiment. It is the single lookup path every
// entry point (pnbench, pntrace, pnscan, pnserve) uses, so the
// unknown-ID error text is consistent across all cmds.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ListTable renders the catalogue as the standard listing table the
// cmds print for -list, so every entry point shows the same columns.
func ListTable() *report.Table {
	t := report.NewTable("Experiments", "id", "paper ref", "title")
	for _, e := range All() {
		t.AddRow(e.ID, e.Ref, e.Title)
	}
	return t
}

func run(id string, cfg defense.Config) (*attack.Outcome, error) {
	s, err := attack.ByID(id)
	if err != nil {
		return nil, err
	}
	done := scenarioSpan(id, cfg)
	defer done()
	return s.Run(cfg)
}

func fmtMetric(o *attack.Outcome, key string) string {
	v, ok := o.Metrics[key]
	if !ok {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func runE1() (*report.Table, error) {
	o, err := run("bss-overflow", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E1 — §3.5 Listing 11: bss overflow (stud1 -> stud2.gpa)",
		"quantity", "paper", "measured")
	t.AddRow("attack succeeds", "yes", yesNo(o.Succeeded))
	t.AddRow("stud2.gpa after attack", "attacker value", fmtMetric(o, "stud2_gpa_after"))
	t.AddRow("ssn word hitting stud2.gpa", "ssn[0] (adjacent)", "ssn["+fmtMetric(o, "ssn_index")+"]")
	return t, nil
}

func runE2() (*report.Table, error) {
	o, err := run("heap-overflow", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E2 — §3.5.1 Listing 12: heap overflow (ssn[] -> name)",
		"quantity", "paper", "measured")
	t.AddRow("name buffer rewritten", "yes (before/after demo)", yesNo(o.Succeeded))
	t.AddRow("allocator metadata corrupted", "n/a (libc-dependent)", yesNo(o.Metrics["heap_metadata_corrupt"] == 1))
	return t, nil
}

func runE3() (*report.Table, error) {
	t := report.NewTable("E3 — §3.6.1 Listing 13: which ssn[i] hits the return address",
		"frame configuration", "paper index", "measured index", "outcome")
	cases := []struct {
		name  string
		cfg   defense.Config
		paper string
	}{
		{"no saved FP, no canary", defense.Config{Name: "plain", NoSaveFP: true}, "ssn[0]"},
		{"saved FP", defense.None, "ssn[1]"},
		{"saved FP + canary", defense.StackGuardOnly, "ssn[2]"},
	}
	for _, c := range cases {
		o, err := run("stack-ret", c.cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.paper, "ssn["+fmtMetric(o, "ret_ssn_index")+"]", o.Status())
	}
	o, err := run("canary-skip", defense.StackGuardOnly)
	if err != nil {
		return nil, err
	}
	t.AddRow("canary skip (§5.2)", "bypasses StackGuard", "writes only ssn["+fmtMetric(o, "written_index")+"]", o.Status())
	return t, nil
}

func runE4() (*report.Table, error) {
	t := report.NewTable("E4 — §3.6.2: arc injection and code injection",
		"attack", "stack", "paper", "measured")
	o, err := run("arc-injection", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("arc injection (ret2libc)", "any", "privileged call", o.Status())
	o, err = run("code-injection", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("code injection", "executable", "shell spawned", o.Status())
	o, err = run("code-injection", defense.NXOnly)
	if err != nil {
		return nil, err
	}
	t.AddRow("code injection", "NX", "blocked", o.Status())
	o, err = run("arc-injection", defense.NXOnly)
	if err != nil {
		return nil, err
	}
	t.AddRow("arc injection (ret2libc)", "NX", "still succeeds", o.Status())
	return t, nil
}

func runE5() (*report.Table, error) {
	o, err := run("var-bss", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E5 — §3.7.1 Listing 14: global noOfStudents overwrite",
		"quantity", "paper", "measured")
	t.AddRow("attack succeeds", "yes", yesNo(o.Succeeded))
	t.AddRow("noOfStudents after", "attacker value", fmtMetric(o, "noOfStudents_after"))
	return t, nil
}

func runE6() (*report.Table, error) {
	o, err := run("var-stack", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E6 — §3.7.2 Listing 15: local n overwrite (padding arithmetic)",
		"quantity", "paper", "measured")
	t.AddRow("attack succeeds", "yes", yesNo(o.Succeeded))
	t.AddRow("ssn word hitting n", "ssn[1] (8-aligned double) / ssn[0] (i386)", "ssn["+fmtMetric(o, "n_ssn_index")+"]")
	t.AddRow("n after attack", "attacker value", fmtMetric(o, "n_after"))
	return t, nil
}

func runE7() (*report.Table, error) {
	o, err := run("member-var", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E7 — §3.8.1 Listing 16: first.gpa overwrite",
		"quantity", "paper", "measured")
	t.AddRow("attack succeeds", "yes", yesNo(o.Succeeded))
	t.AddRow("first.gpa after", "attacker value (4.0)", fmtMetric(o, "first_gpa_after"))
	return t, nil
}

func runE8() (*report.Table, error) {
	t := report.NewTable("E8 — §3.8.2: vtable pointer subterfuge",
		"variant", "paper", "measured")
	o, err := run("vptr-bss", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("via data/bss overflow", "arbitrary method invoked", o.Status())
	o, err = run("vptr-stack", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("via stack overflow", "arbitrary method invoked", o.Status())
	return t, nil
}

func runE9() (*report.Table, error) {
	o, err := run("funcptr", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E9 — §3.9 Listing 17: function pointer subterfuge",
		"quantity", "paper", "measured")
	t.AddRow("never-invoked pointer called", "yes", yesNo(o.Succeeded))
	return t, nil
}

func runE10() (*report.Table, error) {
	o, err := run("varptr", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E10 — §3.10 Listing 18: variable pointer subterfuge",
		"quantity", "paper", "measured")
	t.AddRow("write redirected to attacker address", "yes", yesNo(o.Succeeded))
	return t, nil
}

func runE11() (*report.Table, error) {
	t := report.NewTable("E11 — §4.1–4.2 Listings 19–20: two-step array overflow",
		"variant", "paper", "measured", "n_unames after")
	o, err := run("array-2step-stack", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("stack pool", "return address smashed", o.Status(), fmtMetric(o, "n_unames_after"))
	o, err = run("array-2step-bss", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("global pool", "globals beyond pool smashed", o.Status(), fmtMetric(o, "n_unames_after"))
	return t, nil
}

func runE12() (*report.Table, error) {
	t := report.NewTable("E12 — §4.3 Listings 21–22: information leakage",
		"variant", "defense", "paper", "leaked")
	o, err := run("infoleak-array", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("password file via array", "none", "remnants disclosed", fmtMetric(o, "leaked_bytes")+" bytes")
	o, err = run("infoleak-array", defense.SanitizeOnly)
	if err != nil {
		return nil, err
	}
	t.AddRow("password file via array", "sanitize (§5.1)", "0", fmtMetric(o, "leaked_bytes")+" bytes")
	o, err = run("infoleak-object", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("SSN via object reuse", "none", "SSN disclosed", fmtMetric(o, "ssn_recovered")+"/3 words")
	o, err = run("infoleak-object", defense.SanitizeOnly)
	if err != nil {
		return nil, err
	}
	t.AddRow("SSN via object reuse", "sanitize (§5.1)", "0", fmtMetric(o, "ssn_recovered")+"/3 words")
	return t, nil
}

func runE13() (*report.Table, error) {
	o, err := run("dos-loop", defense.None)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E13 — §4.4: DoS via loop-bound modification",
		"quantity", "paper", "measured")
	t.AddRow("loop amplification", "\"iterated for a long time\"", fmtMetric(o, "amplification")+"x")
	t.AddRow("validation bypass (n -> 0)", "\"never taken\"", yesNo(o.Metrics["validation_bypassed"] == 1))
	return t, nil
}

func runE14() (*report.Table, error) {
	t := report.NewTable("E14 — §4.5 Listing 23: memory leak per iteration",
		"defense", "paper", "measured leak/iteration")
	o, err := run("memleak", defense.None)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "sizeof(GradStudent)-sizeof(Student) = "+fmtMetric(o, "expected_per_iteration"),
		fmtMetric(o, "leak_per_iteration"))
	o, err = run("memleak", defense.DeleteOnly)
	if err != nil {
		return nil, err
	}
	t.AddRow("placement delete (§5.1)", "0", fmtMetric(o, "leak_per_iteration"))
	return t, nil
}

func runE15() (*report.Table, error) {
	configs := defense.Catalog()
	matrix, err := attack.RunMatrix(configs)
	if err != nil {
		return nil, err
	}
	headers := []string{"scenario (paper ref)"}
	for _, c := range configs {
		headers = append(headers, c.Name)
	}
	t := report.NewTable("E15 — §5: attack x defense outcome matrix", headers...)
	for _, s := range attack.Catalog() {
		row := []string{s.ID + " (" + s.Ref + ")"}
		for _, c := range configs {
			row = append(row, matrix[s.ID][c.Name].Status())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// MatrixSummary counts outcomes per defense across the full matrix — the
// aggregate EXPERIMENTS.md reports next to the E15 table.
func MatrixSummary(matrix map[string]map[string]*attack.Outcome, configs []defense.Config) *report.Table {
	t := report.NewTable("E15 summary — successful attacks per defense",
		"defense", "SUCCESS", "prevented", "detected", "crashed", "no-effect")
	for _, c := range configs {
		counts := map[string]int{}
		var ids []string
		for id := range matrix {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			counts[matrix[id][c.Name].Status()]++
		}
		t.AddRow(c.Name,
			strconv.Itoa(counts["SUCCESS"]), strconv.Itoa(counts["prevented"]),
			strconv.Itoa(counts["detected"]), strconv.Itoa(counts["crashed"]),
			strconv.Itoa(counts["no-effect"]))
	}
	return t
}
