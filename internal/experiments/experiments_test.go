package experiments

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/defense"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "E15" && testing.Short() {
				t.Skip("matrix is slow in -short mode")
			}
			tb, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tb.NumRows() == 0 {
				t.Errorf("%s produced an empty table", e.ID)
			}
			if !strings.Contains(tb.Title, e.ID) {
				t.Errorf("%s table title %q lacks the experiment id", e.ID, tb.Title)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E3")
	if err != nil || e.ID != "E3" {
		t.Fatalf("ByID(E3) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestE3TableShape(t *testing.T) {
	tb, err := runE3()
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	// The paper's indexing claims must appear with matching measurements.
	for _, want := range []string{"ssn[0]", "ssn[1]", "ssn[2]", "canary skip"} {
		if !strings.Contains(s, want) {
			t.Errorf("E3 table missing %q:\n%s", want, s)
		}
	}
	// The measured indexes match the paper's: rows pair paper/measured.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "no saved FP") && strings.Count(line, "ssn[0]") != 2 {
			t.Errorf("plain row should measure ssn[0]: %q", line)
		}
		if strings.HasPrefix(line, "saved FP") && !strings.Contains(line, "canary") && strings.Count(line, "ssn[1]") != 2 {
			t.Errorf("saved-FP row should measure ssn[1]: %q", line)
		}
	}
}

func TestE15MatrixAndSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow in -short mode")
	}
	tb, err := runE15()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != len(attack.Catalog()) {
		t.Errorf("matrix rows = %d, want %d", tb.NumRows(), len(attack.Catalog()))
	}
	s := tb.String()
	if !strings.Contains(s, "hardened") || !strings.Contains(s, "none") {
		t.Errorf("matrix missing defense columns:\n%s", s)
	}

	configs := defense.Catalog()
	matrix, err := attack.RunMatrix(configs)
	if err != nil {
		t.Fatal(err)
	}
	sum := MatrixSummary(matrix, configs)
	if sum.NumRows() != len(configs) {
		t.Errorf("summary rows = %d", sum.NumRows())
	}
	ss := sum.String()
	// The undefended row shows a clean sweep; hardened shows zero.
	for _, line := range strings.Split(ss, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "none":
			if fields[1] != "29" {
				t.Errorf("undefended successes = %s, want 29: %q", fields[1], line)
			}
		case "hardened":
			if fields[1] != "0" {
				t.Errorf("hardened successes = %s, want 0: %q", fields[1], line)
			}
		}
	}
}

func TestE16Totals(t *testing.T) {
	tb, err := runE16()
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	if !strings.Contains(s, "TOTAL") {
		t.Fatalf("no totals row:\n%s", s)
	}
	// Baseline detects zero placement-new vulnerabilities.
	var totalLine string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "TOTAL") {
			totalLine = line
		}
	}
	fields := strings.Fields(totalLine)
	if len(fields) < 2 {
		t.Fatalf("totals line = %q", totalLine)
	}
	baseline := fields[len(fields)-1]
	if !strings.HasPrefix(baseline, "0/") {
		t.Errorf("baseline total = %s, want 0/N", baseline)
	}
	analyzerTotal := fields[len(fields)-2]
	if strings.HasPrefix(analyzerTotal, "0/") {
		t.Errorf("analyzer total = %s, want full detection", analyzerTotal)
	}
	if analyzerTotal != strings.Replace(analyzerTotal, "/", "/", 1) {
		t.Errorf("unexpected analyzer total %q", analyzerTotal)
	}
	parts := strings.Split(analyzerTotal, "/")
	if len(parts) == 2 && parts[0] != parts[1] {
		t.Errorf("analyzer detected %s of %s placement-new vulns", parts[0], parts[1])
	}
}

func TestE17ProducesPositiveTimings(t *testing.T) {
	tb, err := runE17()
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	for _, want := range []string{"unchecked", "checked", "StackGuard", "shadow stack", "sanitize"} {
		if !strings.Contains(s, want) {
			t.Errorf("E17 missing row %q:\n%s", want, s)
		}
	}
}
