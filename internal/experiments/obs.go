package experiments

import (
	"repro/internal/defense"
	"repro/internal/obs"
	"repro/internal/report"
)

// activeCollector is the package's observability seam: when set, every
// scenario run through run() opens a scenario span, and chaos campaigns
// wire their injectors and supervisors into it. It is package-global
// state for the same reason machine.OnNewProcess is — scenarios are
// constructed deep inside experiment runners with no parameter path —
// and carries the same rule: set it only from single-threaded drivers
// (cmd/pntrace, cmd/pnbench, dedicated tests), never from parallel
// tests.
var activeCollector *obs.Collector

// SetCollector installs (or, with nil, removes) the collector that
// instruments subsequent experiment runs. It returns a restore
// function for the previous value, so drivers can scope
// instrumentation to one run.
func SetCollector(c *obs.Collector) (restore func()) {
	prev := activeCollector
	activeCollector = c
	return func() { activeCollector = prev }
}

// ActiveCollector returns the installed collector, or nil.
func ActiveCollector() *obs.Collector { return activeCollector }

// scenarioSpan opens a scenario span when a collector is active; the
// returned close function is a no-op otherwise.
func scenarioSpan(id string, cfg defense.Config) func() {
	col := activeCollector
	if col == nil {
		return func() {}
	}
	sp := col.Tracer.Start(obs.CatScenario, id, obs.A("defense", cfg.Name))
	return sp.Close
}

// RunInstrumented runs one experiment under a fresh collector: it
// installs the machine seam and the experiments seam, opens the
// experiment root span, runs, finalizes, and returns the collector
// alongside the experiment's table. It is the programmatic face of
// cmd/pntrace.
func RunInstrumented(e Experiment, attrs ...obs.Attr) (*obs.Collector, *report.Table, error) {
	col := obs.NewCollector()
	restoreMachine := col.Install()
	defer restoreMachine()
	restoreExp := SetCollector(col)
	defer restoreExp()

	root := col.Tracer.Start(obs.CatExperiment, e.ID,
		append([]obs.Attr{obs.A("ref", e.Ref), obs.A("title", e.Title)}, attrs...)...)
	t, err := e.Run()
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.Close()
	col.Finalize()
	return col, t, err
}
