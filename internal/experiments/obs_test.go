package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/defense"
	"repro/internal/obs"
)

// renderAll runs e instrumented and renders every deterministic
// artifact the obs layer exports.
func renderAll(t *testing.T, e Experiment) (trace, ndjson, heatJSON []byte, metrics, heat string) {
	t.Helper()
	col, _, err := RunInstrumented(e)
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	trace, err = obs.ChromeTrace(col.Tracer)
	if err != nil {
		t.Fatal(err)
	}
	ndjson, err = obs.NDJSON(col.Tracer, col.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	heatJSON, err = obs.HeatmapJSON(col.Heat)
	if err != nil {
		t.Fatal(err)
	}
	return trace, ndjson, heatJSON, col.Metrics.Exposition(), col.Heat.Render()
}

// TestInstrumentedRunDeterministic is the obs counterpart of
// TestChaosCampaignDeterministic: two instrumented runs of the same
// experiment render byte-identical artifacts. It must not run in
// parallel — RunInstrumented owns the machine.OnNewProcess seam.
func TestInstrumentedRunDeterministic(t *testing.T) {
	e, err := ByID("E8")
	if err != nil {
		t.Fatal(err)
	}
	t1, n1, h1, m1, a1 := renderAll(t, e)
	t2, n2, h2, m2, a2 := renderAll(t, e)
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs between identical runs")
	}
	if !bytes.Equal(n1, n2) {
		t.Error("NDJSON differs between identical runs")
	}
	if !bytes.Equal(h1, h2) {
		t.Error("heatmap JSON differs between identical runs")
	}
	if m1 != m2 {
		t.Error("metrics exposition differs between identical runs")
	}
	if a1 != a2 {
		t.Error("heatmap render differs between identical runs")
	}
}

func TestInstrumentedRunObservesScenarios(t *testing.T) {
	e, err := ByID("E8")
	if err != nil {
		t.Fatal(err)
	}
	col, table, err := RunInstrumented(e)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || table.NumRows() == 0 {
		t.Fatal("experiment table missing")
	}
	// The experiment root span exists and scenario spans nest under it.
	spans := col.Tracer.Spans()
	if len(spans) == 0 || spans[0].Name != "E8" || spans[0].Category != obs.CatExperiment {
		t.Fatalf("root span = %+v", spans)
	}
	var scenarios int
	for _, s := range spans[1:] {
		if s.Category == obs.CatScenario {
			scenarios++
			if s.Parent != spans[0].ID {
				t.Errorf("scenario %q parented to %d, want root %d", s.Name, s.Parent, spans[0].ID)
			}
		}
	}
	if scenarios == 0 {
		t.Error("no scenario spans recorded")
	}
	// The vptr-clobber run writes through the bss segment and its
	// globals land in the heatmap as annotated regions.
	if col.Metrics.Value(obs.MetricWrites, obs.L("segment", "bss")) == 0 {
		t.Error("no bss writes observed")
	}
	heat := col.Heat.Render()
	if !strings.Contains(heat, "__vptr") {
		t.Errorf("heatmap lacks vptr annotation:\n%s", heat)
	}
	// Seams are restored: no collector or process hook left behind.
	if ActiveCollector() != nil {
		t.Error("RunInstrumented left the experiments collector installed")
	}
}

func TestScenarioSpanNoCollector(t *testing.T) {
	// With no collector installed, scenarioSpan degrades to a no-op.
	done := scenarioSpan("x", defense.None)
	done()
}
