package experiments

import (
	"testing"
)

// TestAllExperimentsInParallel runs every experiment in the catalogue
// concurrently. Experiments are supposed to be pure functions of their
// inputs — each builds its own simulated process — so nothing here may
// share mutable state. Run under -race this test is the regression gate
// for that property: any hidden global (package-level RNG, shared table,
// cached process) shows up as a data race or a flaky table.
func TestAllExperimentsInParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue is slow in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if tb == nil || len(tb.String()) == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
		})
	}
}

// TestExperimentRerunStable runs a fast subset twice back to back and
// demands identical tables — the concurrency-safety claim above is only
// meaningful if each experiment is also deterministic in isolation.
func TestExperimentRerunStable(t *testing.T) {
	stable := map[string]bool{"E1": true, "E5": true, "E9": true, "E14": true}
	for _, e := range All() {
		if !stable[e.ID] {
			continue
		}
		a, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s is not deterministic across reruns", e.ID)
		}
	}
}
