package foundry

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/object"
	"repro/internal/stackm"
)

// ExecReport is what one concrete run of a spec observed. The escape
// analysis is deliberately independent of the generator's layout
// arithmetic: it watches the writes the machine actually performs
// (via the memory write logger) and flags any byte that lands outside
// the arena the write was semantically aimed at. A disagreement with
// the labels therefore blames real code, not the harness.
type ExecReport struct {
	Config string `json:"config"`
	// Escaped: at least one attributed write landed outside its arena.
	Escaped      bool   `json:"escaped"`
	EscapedBytes uint64 `json:"escapedBytes,omitempty"`
	// Corrupted lists the other globals the escaped bytes reached.
	Corrupted []string `json:"corrupted,omitempty"`
	// Abort is the machine abort kind ("" for a clean run).
	Abort string `json:"abort,omitempty"`
	// AbortAttributed: the abort happened while executing a statement
	// that writes through the placement (vs. e.g. frame teardown).
	AbortAttributed bool     `json:"abortAttributed,omitempty"`
	Events          []string `json:"events,omitempty"`
}

type byteRange struct{ lo, hi mem.Addr }

// Execute runs the spec on a fresh simulated process under cfg and
// reports what happened. Statements whose referents were removed (by
// the shrinker) are skipped, so every subsequence of a valid spec
// executes without harness errors.
func Execute(sp *Spec, cfg defense.Config) (*ExecReport, error) {
	rep := &ExecReport{Config: cfg.Name}
	classes, err := buildClasses(sp)
	if err != nil {
		return nil, err
	}
	p, err := cfg.NewProcess()
	if err != nil {
		return nil, err
	}
	for _, g := range sp.Globals {
		t, err := globalType(g, classes)
		if err != nil {
			return nil, err
		}
		if _, err := p.DefineGlobal(g.Name, t, false); err != nil {
			return nil, err
		}
	}
	p.SetInput(sp.Input...)

	var locals []stackm.LocalSpec
	if sp.LocalArena {
		cls, ok := classes[sp.ArenaClass]
		if !ok {
			return nil, fmt.Errorf("foundry: unknown arena class %s", sp.ArenaClass)
		}
		locals = append(locals, stackm.LocalSpec{Name: sp.ArenaVar, Type: cls})
	}

	// Attribution: while target is set, the write logger checks every
	// write against it and accounts the bytes that escape.
	var target *core.Arena
	var escaped []byteRange
	p.Mem.SetWriteLogger(func(r mem.WriteRecord) {
		if target == nil {
			return
		}
		lo, hi := r.Addr, r.Addr.Add(int64(len(r.New)))
		if lo < target.Base {
			cut := hi
			if cut > target.Base {
				cut = target.Base
			}
			escaped = append(escaped, byteRange{lo, cut})
		}
		if hi > target.End() {
			cut := lo
			if cut < target.End() {
				cut = target.End()
			}
			escaped = append(escaped, byteRange{cut, hi})
		}
	})
	defer p.Mem.SetWriteLogger(nil)

	arenaOf := func(f *stackm.Frame, name string) (core.Arena, error) {
		if sp.LocalArena && name == sp.ArenaVar {
			l, err := f.Local(name)
			if err != nil {
				return core.Arena{}, err
			}
			cls := classes[sp.ArenaClass]
			return core.Arena{Base: l.Addr, Size: cls.Size(Model), Label: name}, nil
		}
		g, err := p.GlobalVar(name)
		if err != nil {
			return core.Arena{}, err
		}
		var size uint64
		for _, gs := range sp.Globals {
			if gs.Name != name {
				continue
			}
			switch {
			case gs.Class != "":
				size = classes[gs.Class].Size(Model)
			case gs.CharLen > 0:
				size = uint64(gs.CharLen)
			default:
				size = layout.Int.Size(Model)
			}
		}
		return core.Arena{Base: g.Addr, Size: size, Label: name}, nil
	}

	type placedBuf struct {
		arena core.Arena
		n     int64
	}
	if _, err := p.DefineFunc("trigger", locals, func(p *machine.Process, f *stackm.Frame) error {
		// Arm the sanitizer's trailing red zone on the declared arena up
		// front, the way a compiler instrumentation pass would annotate
		// every allocation — so even a program whose *first* placement
		// overflows is caught at the construction store. No-op unless
		// the config carries the sanitizer.
		if ar, err := arenaOf(f, sp.ArenaVar); err == nil {
			cfg.ShadowArena(p, ar)
		}
		vars := map[string]int64{}
		ptrs := map[string]core.Arena{}
		bufs := map[string]placedBuf{}
		// Field names are unique across the hierarchy by construction.
		fields := map[string]FieldSpec{}
		for _, cs := range sp.Classes {
			for _, fd := range cs.Fields {
				fields[fd.Name] = fd
			}
		}
		resolve := func(st Stmt) int64 {
			if st.Len >= 0 {
				return st.Len
			}
			return vars[st.LenVar]
		}
		fail := func(err error) error {
			rep.AbortAttributed = true
			target = nil
			return err
		}
		for _, st := range sp.Stmts {
			switch st.Op {
			case OpDecl:
				vars[st.Var] = st.Value
			case OpAssign:
				vars[st.Var] += st.Value
			case OpCin:
				vars[st.Var] = p.Cin()
			case OpHop:
				vars[st.Var] = vars[st.LenVar] + st.Value
			case OpPlace:
				cls, ok := classes[st.Class]
				if !ok {
					continue
				}
				ar, err := arenaOf(f, st.Arena)
				if err != nil {
					continue
				}
				target = &ar
				if _, err := cfg.Place(p, ar, cls); err != nil {
					return fail(err)
				}
				target = nil
				ptrs[st.Var] = ar
			case OpField:
				ar, ok := ptrs[st.Ptr]
				if !ok {
					continue
				}
				fd, ok := fields[st.Field]
				if !ok {
					continue
				}
				// Re-view the arena base as the placed class to get the
				// machine's own field-offset arithmetic.
				cls := classes[placedClassOf(sp, st.Ptr)]
				if cls == nil {
					continue
				}
				o, err := object.View(p.Mem, cls, Model, ar.Base)
				if err != nil {
					continue
				}
				target = &ar
				switch {
				case st.Index >= 0:
					err = o.SetIndex(st.Field, int64(st.Index), st.Value)
				case fd.Type == "double":
					err = o.SetFloat(st.Field, float64(st.Value))
				default:
					err = o.SetInt(st.Field, st.Value)
				}
				if err != nil {
					return fail(err)
				}
				target = nil
			case OpArrayNew:
				ar, err := arenaOf(f, st.Arena)
				if err != nil {
					continue
				}
				cfg.ShadowArena(p, ar)
				bufs[st.Var] = placedBuf{arena: ar, n: resolve(st)}
			case OpFill:
				b, ok := bufs[st.Ptr]
				if !ok {
					continue
				}
				n := resolve(st)
				ar := b.arena
				target = &ar
				for i := int64(0); i < n; i++ {
					if err := p.Mem.WriteU8(ar.Base.Add(i), uint8(st.Value)); err != nil {
						return fail(err)
					}
				}
				target = nil
			case OpStrcpy:
				ar, err := arenaOf(f, st.Arena)
				if err != nil {
					continue
				}
				cfg.ShadowArena(p, ar)
				target = &ar
				if err := p.Mem.WriteCString(ar.Base, st.Str); err != nil {
					return fail(err)
				}
				target = nil
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	callErr := p.Call("trigger")
	target = nil
	if callErr != nil {
		var ab *machine.AbortError
		if errors.As(callErr, &ab) {
			rep.Abort = ab.Kind.String()
		} else {
			return nil, callErr
		}
	}

	// Summarise the escapes.
	for _, r := range escaped {
		rep.EscapedBytes += uint64(r.hi.Diff(r.lo))
	}
	rep.Escaped = len(escaped) > 0
	corrupted := map[string]bool{}
	for _, g := range p.Globals() {
		if g.Name == sp.ArenaVar {
			continue
		}
		for _, r := range escaped {
			if r.lo < g.End(Model) && g.Addr < r.hi {
				corrupted[g.Name] = true
			}
		}
	}
	for name := range corrupted {
		rep.Corrupted = append(rep.Corrupted, name)
	}
	sort.Strings(rep.Corrupted)
	for _, e := range p.Events() {
		rep.Events = append(rep.Events, e.Kind.String())
	}
	return rep, nil
}

// placedClassOf returns the class a pointer variable was placed with.
func placedClassOf(sp *Spec, ptr string) string {
	for _, st := range sp.Stmts {
		if st.Op == OpPlace && st.Var == ptr {
			return st.Class
		}
	}
	return ""
}

// Detected reports the plane verdicts one run supports.
func (r *ExecReport) overflowObserved() bool {
	return r.Escaped || (r.Abort != "" && r.AbortAttributed)
}

func (r *ExecReport) shadowViolation() bool {
	for _, e := range r.Events {
		if e == "shadow-violation" {
			return true
		}
	}
	return false
}
