package foundry

import (
	"encoding/json"
	"testing"

	"repro/internal/analyzer"
)

// The corpus gate the CI smoke job re-runs at scale: every program of
// the seeded corpus triages with zero divergences across all four
// planes, and every plane catches everything inside its own scope.
func TestCorpusTriagesClean(t *testing.T) {
	rep, err := TriageCorpus(42, 500, TriageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != 0 {
		for _, p := range rep.Programs {
			if p.Verdict == VerdictDivergence {
				t.Errorf("%s (%s): %v", p.Name, p.Kind, p.Divergences)
			}
		}
		t.Fatalf("%d divergent programs", rep.Divergent)
	}
	if !rep.GateOK {
		t.Fatalf("gate failed: %v", rep.GateDetails)
	}
	for _, kind := range []string{KindObject, KindArrayConst, KindArrayTainted, KindTwoHop, KindClassic} {
		if rep.Kinds[kind] == 0 {
			t.Errorf("corpus has no %s programs", kind)
		}
	}
	if rep.Vulnerable == 0 || rep.Vulnerable == rep.Count {
		t.Errorf("vulnerable = %d of %d, want a mix", rep.Vulnerable, rep.Count)
	}
	// Scoped recall is the hard gate; the raw numbers must also show
	// the paper's asymmetry: the baseline is blind to placement
	// overflows (low raw recall), the static pass is not.
	for name, st := range rep.Planes {
		if st.ScopedRecall != 1.0 {
			t.Errorf("plane %s scoped recall = %.3f, want 1.0", name, st.ScopedRecall)
		}
	}
	if b, s := rep.Planes[PlaneBaseline].Recall, rep.Planes[PlaneStatic].Recall; b >= s {
		t.Errorf("baseline raw recall %.3f >= static %.3f; corpus lost the paper's asymmetry", b, s)
	}
}

// Same (seed, index) must give byte-identical programs — the property
// the CI double-run cmp gate depends on.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		a, err := Generate(7, i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(7, i)
		if err != nil {
			t.Fatal(err)
		}
		if a.Src != b.Src {
			t.Fatalf("index %d: source differs across generations", i)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("index %d: labels/spec differ across generations", i)
		}
	}
}

func TestTriageReportDeterministic(t *testing.T) {
	a, err := TriageCorpus(11, 60, TriageOptions{Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TriageCorpus(11, 60, TriageOptions{Shrink: true})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("triage JSON differs across runs of the same corpus")
	}
}

// Label invariants the generator promises per kind.
func TestLabelInvariants(t *testing.T) {
	for i := 0; i < 300; i++ {
		g, err := Generate(3, i)
		if err != nil {
			t.Fatal(err)
		}
		lb := g.Labels
		switch lb.Kind {
		case KindArrayTainted, KindTwoHop:
			if !lb.Vulnerable {
				t.Errorf("%s: tainted program not marked vulnerable", lb.Name)
			}
			if len(lb.WantCodes) != 1 || lb.WantCodes[0] != "PN002" {
				t.Errorf("%s: tainted WantCodes = %v, want [PN002]", lb.Name, lb.WantCodes)
			}
		case KindObject, KindArrayConst:
			if lb.Vulnerable && (len(lb.WantCodes) != 1 || lb.WantCodes[0] != "PN001") {
				t.Errorf("%s: overflowing %s WantCodes = %v, want [PN001]", lb.Name, lb.Kind, lb.WantCodes)
			}
			if !lb.Vulnerable && len(lb.WantCodes) != 0 {
				t.Errorf("%s: safe %s WantCodes = %v, want none", lb.Name, lb.Kind, lb.WantCodes)
			}
		case KindClassic:
			if !lb.ExpectBaseline {
				t.Errorf("%s: classic program without baseline expectation", lb.Name)
			}
			if lb.ExpectStatic {
				t.Errorf("%s: classic program expects static detection", lb.Name)
			}
		}
		if lb.RunOverflows {
			if lb.OverflowBy == 0 {
				t.Errorf("%s: overflows with OverflowBy = 0", lb.Name)
			}
			if lb.Corrupts == "" {
				t.Errorf("%s: overflows with empty Corrupts", lb.Name)
			}
		} else if lb.OverflowBy != 0 || lb.Corrupts != "" {
			t.Errorf("%s: safe run with OverflowBy=%d Corrupts=%q", lb.Name, lb.OverflowBy, lb.Corrupts)
		}
		if lb.RunOverflows && !lb.Vulnerable {
			t.Errorf("%s: run overflows but program not vulnerable", lb.Name)
		}
	}
}

// craftedDivergent is a hand-built program with a real analyzer gap:
// the placement array-new requests 4 bytes (in bounds, so the static
// pass sees nothing), but the fill loop writes 12 — the runtime
// overflow the labels predict and the static plane misses.
func craftedDivergent() *Spec {
	return &Spec{
		Name: "crafted-divergent", Kind: KindArrayConst,
		ArenaVar: "pool0",
		Globals:  []GlobalSpec{{Name: "pool0", CharLen: 8}, {Name: "sent0", IsInt: true}},
		Stmts: []Stmt{
			{Op: OpDecl, Var: "t0", Value: 1, Index: -1},
			{Op: OpAssign, Var: "t0", Value: 2, Index: -1},
			{Op: OpArrayNew, Var: "b0", Arena: "pool0", Len: 4, Index: -1},
			{Op: OpFill, Ptr: "b0", Len: 12, Value: 65, Index: -1},
			{Op: OpDecl, Var: "t1", Value: 3, Index: -1},
		},
	}
}

func TestShrinkDivergence(t *testing.T) {
	sp := craftedDivergent()
	lb, err := computeLabels(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Vulnerable || !lb.RunOverflows {
		t.Fatalf("crafted spec labels = %+v, want vulnerable overflow", lb)
	}
	g := &Generated{Spec: sp, Labels: lb, Src: Render(sp)}
	tr, err := TriageProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Verdict != VerdictDivergence {
		t.Fatalf("crafted spec verdict = %s, want divergence (planes: %+v)", tr.Verdict, tr.Planes)
	}

	rep := shrinkDivergence(sp)
	if len(rep.Divergences) == 0 {
		t.Fatal("shrunk repro lost the divergence")
	}
	if rep.StmtsAfter >= rep.StmtsBefore {
		t.Fatalf("shrink removed nothing: %d -> %d", rep.StmtsBefore, rep.StmtsAfter)
	}
	// The minimal repro is exactly the arraynew + the fill: dropping
	// either loses the divergence (a dangling fill is skipped by both
	// the labels and the machine).
	if rep.StmtsAfter != 2 {
		t.Errorf("shrunk to %d statements, want 2:\n%s", rep.StmtsAfter, rep.Src)
	}
}

// Every rendered program must be accepted by the analyzer's
// lexer/parser — the contract the fuzz target hammers with arbitrary
// seeds.
func TestRenderedSourceParses(t *testing.T) {
	for i := 0; i < 200; i++ {
		g, err := Generate(99, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := analyzer.Analyze(g.Src, analyzer.Options{Model: Model}); err != nil {
			t.Fatalf("index %d: analyzer rejected generated source: %v\n%s", i, err, g.Src)
		}
	}
}
