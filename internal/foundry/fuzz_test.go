package foundry

import (
	"encoding/binary"
	"encoding/json"
	"testing"

	"repro/internal/analyzer"
)

// FuzzFoundryRoundTrip drives the generator with arbitrary seed bytes
// and checks the two contracts every downstream consumer relies on:
// the rendered source always lexes and parses in the analyzer's
// dialect, and generation is a pure function of (seed, index) — the
// same pair yields byte-identical source and labels.
func FuzzFoundryRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add(binary.LittleEndian.AppendUint64(nil, 42))
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf [9]byte
		copy(buf[:], data)
		seed := int64(binary.LittleEndian.Uint64(buf[:8]))
		index := int(buf[8])

		a, err := Generate(seed, index)
		if err != nil {
			t.Fatalf("generate(%d, %d): %v", seed, index, err)
		}
		if _, err := analyzer.Analyze(a.Src, analyzer.Options{Model: Model}); err != nil {
			t.Fatalf("analyzer rejected generated source: %v\n%s", err, a.Src)
		}
		b, err := Generate(seed, index)
		if err != nil {
			t.Fatalf("second generate(%d, %d): %v", seed, index, err)
		}
		if a.Src != b.Src {
			t.Fatalf("source differs across double generation of (%d, %d)", seed, index)
		}
		aj, _ := json.Marshal(a.Labels)
		bj, _ := json.Marshal(b.Labels)
		if string(aj) != string(bj) {
			t.Fatalf("labels differ across double generation of (%d, %d)", seed, index)
		}
	})
}
