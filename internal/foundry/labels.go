package foundry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/layout"
)

// scalarOf maps a source type name to its layout scalar.
func scalarOf(name string) (layout.Scalar, error) {
	switch name {
	case "int":
		return layout.Int, nil
	case "char":
		return layout.Char, nil
	case "short":
		return layout.Short, nil
	case "double":
		return layout.Double, nil
	}
	return layout.Scalar{}, fmt.Errorf("foundry: unknown field type %q", name)
}

func fieldType(f FieldSpec) (layout.Type, error) {
	s, err := scalarOf(f.Type)
	if err != nil {
		return nil, err
	}
	if f.Len > 0 {
		return layout.ArrayOf(s, uint64(f.Len)), nil
	}
	return s, nil
}

// buildClasses realises the spec's class hierarchy as layout classes —
// the same representation the machine constructs from, so generator
// arithmetic and runtime layout share one source of truth for class
// *shape* while still exercising two independent size computations
// (layout.Of here vs. object/field offsets in the machine).
func buildClasses(sp *Spec) (map[string]*layout.Class, error) {
	out := map[string]*layout.Class{}
	for _, cs := range sp.Classes {
		var cls *layout.Class
		if cs.Base != "" {
			base, ok := out[cs.Base]
			if !ok {
				return nil, fmt.Errorf("foundry: class %s: unknown base %s", cs.Name, cs.Base)
			}
			cls = layout.NewClass(cs.Name, base)
		} else {
			cls = layout.NewClass(cs.Name)
		}
		for _, v := range cs.Virtuals {
			cls.AddVirtual(v)
		}
		for _, f := range cs.Fields {
			t, err := fieldType(f)
			if err != nil {
				return nil, err
			}
			cls.AddField(f.Name, t)
		}
		out[cs.Name] = cls
	}
	return out, nil
}

// globalType returns the layout type of one global.
func globalType(g GlobalSpec, classes map[string]*layout.Class) (layout.Type, error) {
	switch {
	case g.Class != "":
		cls, ok := classes[g.Class]
		if !ok {
			return nil, fmt.Errorf("foundry: global %s: unknown class %s", g.Name, g.Class)
		}
		return cls, nil
	case g.CharLen > 0:
		return layout.ArrayOf(layout.Char, uint64(g.CharLen)), nil
	case g.IsInt:
		return layout.Int, nil
	}
	return nil, fmt.Errorf("foundry: global %s has no type", g.Name)
}

func alignUp(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	if rem := v % a; rem != 0 {
		return v + a - rem
	}
	return v
}

// globalExtents replicates the machine's bss packing (successive
// definitions adjacent modulo alignment) as relative offsets.
type extent struct {
	name     string
	off, end uint64
}

func globalExtents(sp *Spec, classes map[string]*layout.Class) ([]extent, error) {
	var out []extent
	off := uint64(0)
	for _, g := range sp.Globals {
		t, err := globalType(g, classes)
		if err != nil {
			return nil, err
		}
		off = alignUp(off, t.Align(Model))
		out = append(out, extent{name: g.Name, off: off, end: off + t.Size(Model)})
		off += t.Size(Model)
	}
	return out, nil
}

// span is a half-open arena-relative byte range.
type span struct{ lo, hi uint64 }

// touchedSpans models the exact bytes the concrete run writes through
// the arena, arena-relative. This is where the labels must mirror the
// paper's constructor semantics precisely: placement-new zero-
// initialises every *scalar* member (including base subobjects) and
// installs vptr slots, but leaves array members indeterminate — a
// GradStudent's ssn[] holds whatever bytes were there until the
// attacker writes it. The touched set is therefore the union of vptr
// slots, scalar-field extents of every placed class, explicitly
// written field/element extents, and the contiguous fill/strcpy
// prefixes — not the contiguous [0, sizeof) block a naive model would
// predict.
func touchedSpans(sp *Spec, classes map[string]*layout.Class) ([]span, error) {
	var out []span
	vars := map[string]int64{}
	in := append([]int64(nil), sp.Input...)
	fields := map[string]FieldSpec{}
	for _, cs := range sp.Classes {
		for _, fd := range cs.Fields {
			fields[fd.Name] = fd
		}
	}
	placed := map[string]string{} // ptr var -> class
	bufs := map[string]bool{}     // arraynew'd vars
	layoutOf := func(name string) (*layout.ClassLayout, error) {
		cls, ok := classes[name]
		if !ok {
			return nil, fmt.Errorf("foundry: unknown class %s", name)
		}
		return layout.Of(cls, Model)
	}
	fieldOffset := func(l *layout.ClassLayout, name string) (uint64, bool) {
		all, err := l.AllFields()
		if err != nil {
			return 0, false
		}
		for _, f := range all {
			if f.Name == name {
				return f.Offset, true
			}
		}
		return 0, false
	}
	for _, st := range sp.Stmts {
		switch st.Op {
		case OpDecl:
			vars[st.Var] = st.Value
		case OpAssign:
			vars[st.Var] += st.Value
		case OpCin:
			if len(in) > 0 {
				vars[st.Var], in = in[0], in[1:]
			} else {
				vars[st.Var] = 0
			}
		case OpHop:
			vars[st.Var] = vars[st.LenVar] + st.Value
		case OpPlace:
			l, err := layoutOf(st.Class)
			if err != nil {
				return nil, err
			}
			for _, vo := range l.VPtrOffsets {
				out = append(out, span{vo, vo + Model.PtrSize})
			}
			all, err := l.AllFields()
			if err != nil {
				return nil, err
			}
			for _, f := range all {
				fd, ok := fields[f.Name]
				if ok && fd.Len > 0 {
					continue // array member: constructor leaves it alone
				}
				out = append(out, span{f.Offset, f.Offset + f.Type.Size(Model)})
			}
			placed[st.Var] = st.Class
		case OpField:
			cname, ok := placed[st.Ptr]
			if !ok {
				continue // dangling after shrink: the machine skips it too
			}
			l, err := layoutOf(cname)
			if err != nil {
				return nil, err
			}
			off, ok := fieldOffset(l, st.Field)
			if !ok {
				continue
			}
			fd := fields[st.Field]
			sc, err := scalarOf(fd.Type)
			if err != nil {
				return nil, err
			}
			sz := sc.Size(Model)
			if st.Index >= 0 {
				off += uint64(st.Index) * sz
			}
			out = append(out, span{off, off + sz})
		case OpArrayNew:
			bufs[st.Var] = true
		case OpFill:
			if !bufs[st.Ptr] {
				continue // dangling after shrink: the machine skips it too
			}
			n := st.Len
			if n < 0 {
				n = vars[st.LenVar]
			}
			if n > 0 {
				out = append(out, span{0, uint64(n)})
			}
		case OpStrcpy:
			out = append(out, span{0, uint64(len(st.Str)) + 1})
		}
	}
	return out, nil
}

// runLength resolves the concrete byte count the run pushes through the
// placement: the placed class size for object programs, the (possibly
// hop-adjusted) array length otherwise.
func runLength(sp *Spec, classes map[string]*layout.Class) (uint64, error) {
	vars := map[string]int64{}
	bufs := map[string]bool{}
	in := append([]int64(nil), sp.Input...)
	var n int64
	seen := false
	for _, st := range sp.Stmts {
		switch st.Op {
		case OpDecl:
			vars[st.Var] = st.Value
		case OpAssign:
			vars[st.Var] += st.Value
		case OpCin:
			if len(in) > 0 {
				vars[st.Var], in = in[0], in[1:]
			} else {
				vars[st.Var] = 0
			}
		case OpHop:
			vars[st.Var] = vars[st.LenVar] + st.Value
		case OpPlace:
			cls, ok := classes[st.Class]
			if !ok {
				return 0, fmt.Errorf("foundry: place of unknown class %s", st.Class)
			}
			sz := cls.Size(Model)
			if sz > uint64(n) || !seen {
				n, seen = int64(sz), true
			}
		case OpArrayNew, OpFill:
			if st.Op == OpArrayNew {
				bufs[st.Var] = true
			} else if !bufs[st.Ptr] {
				continue // dangling after shrink: the machine skips it too
			}
			l := st.Len
			if l < 0 {
				l = vars[st.LenVar]
			}
			if l > n {
				n = l
			}
			seen = true
		case OpStrcpy:
			l := int64(len(st.Str)) + 1 // strcpy copies the NUL
			if l > n {
				n = l
			}
			seen = true
		}
	}
	if n < 0 {
		n = 0
	}
	return uint64(n), nil
}

// computeLabels derives the ground truth for a spec from layout
// arithmetic alone.
func computeLabels(sp *Spec) (Labels, error) {
	classes, err := buildClasses(sp)
	if err != nil {
		return Labels{}, err
	}
	lb := Labels{Name: sp.Name, Kind: sp.Kind, Arena: sp.ArenaVar, Input: append([]int64(nil), sp.Input...)}

	// Arena capacity.
	switch {
	case sp.ArenaClass != "":
		cls, ok := classes[sp.ArenaClass]
		if !ok {
			return Labels{}, fmt.Errorf("foundry: unknown arena class %s", sp.ArenaClass)
		}
		lb.ArenaSize = cls.Size(Model)
	default:
		for _, g := range sp.Globals {
			if g.Name == sp.ArenaVar {
				lb.ArenaSize = uint64(g.CharLen)
			}
		}
	}
	if lb.ArenaSize == 0 {
		return Labels{}, fmt.Errorf("foundry: %s: arena %q has zero size", sp.Name, sp.ArenaVar)
	}

	run, err := runLength(sp, classes)
	if err != nil {
		return Labels{}, err
	}
	lb.PlacedSize = run

	// The concrete run's truth comes from the touched-byte model, not
	// from sizeof: a placement of an oversized class only *writes* past
	// the arena where a scalar member, vptr slot, or explicit field
	// write lands — array members the constructor never touches don't
	// overflow anything until written.
	touched, err := touchedSpans(sp, classes)
	if err != nil {
		return Labels{}, err
	}
	var escapes []span
	for _, s := range touched {
		if s.hi <= lb.ArenaSize {
			continue
		}
		lo := s.lo
		if lo < lb.ArenaSize {
			lo = lb.ArenaSize
		}
		escapes = append(escapes, span{lo, s.hi})
		if by := s.hi - lb.ArenaSize; by > lb.OverflowBy {
			lb.OverflowBy = by
		}
	}
	lb.RunOverflows = len(escapes) > 0

	// Static truth: tainted programs admit an overflow regardless of
	// the concrete input; object and const-array programs are
	// vulnerable when the requested allocation outgrows the arena —
	// sizeof truth, which the concrete run realises because the
	// generator always writes the derived-added fields.
	switch sp.Kind {
	case KindArrayTainted, KindTwoHop:
		lb.Vulnerable = true
	case KindObject, KindArrayConst:
		lb.Vulnerable = run > lb.ArenaSize
	default:
		lb.Vulnerable = lb.RunOverflows
	}

	// What the overflow reaches.
	if lb.RunOverflows {
		if sp.LocalArena {
			lb.Corrupts = "frame"
		} else {
			exts, err := globalExtents(sp, classes)
			if err != nil {
				return Labels{}, err
			}
			var arena extent
			for _, e := range exts {
				if e.name == sp.ArenaVar {
					arena = e
				}
			}
			var hit []string
			for _, e := range exts {
				if e.name == sp.ArenaVar {
					continue
				}
				for _, s := range escapes {
					if e.off < arena.off+s.hi && arena.off+s.lo < e.end {
						hit = append(hit, e.name)
						break
					}
				}
			}
			sort.Strings(hit)
			if len(hit) == 0 {
				lb.Corrupts = "padding"
			} else {
				lb.Corrupts = strings.Join(hit, ",")
			}
		}
	}

	// Expected analyzer diagnostics.
	switch sp.Kind {
	case KindObject, KindArrayConst:
		if lb.Vulnerable {
			lb.WantCodes = []string{"PN001"}
		}
	case KindArrayTainted, KindTwoHop:
		lb.WantCodes = []string{"PN002"}
	case KindClassic:
		// The placement analyzer is out of scope on lexical strcpy
		// overflows — that is the baseline scanner's job.
	}
	for _, c := range lb.WantCodes {
		if c == "PN001" || c == "PN002" {
			lb.ExpectStatic = true
		}
	}
	lb.ExpectBaseline = sp.Kind == KindClassic
	return lb, nil
}
