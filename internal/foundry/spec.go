// Package foundry generates labeled mini-C++ programs and triages them
// through every detection plane the repo carries.
//
// The paper demonstrated its attack class on a handful of hand-crafted
// programs, and the repo's 29 scenarios inherit that limitation: every
// detection-matrix claim is measured against a fixed, author-biased
// corpus. The foundry removes the bias by construction: a seeded
// property-based generator emits programs — class hierarchies with
// virtual methods, placement-new sites, array news, tainted size
// expressions, field writes past bounds — in the exact dialect
// internal/analyzer parses, together with ground-truth labels computed
// from layout arithmetic (which allocation overflows, by how many
// bytes, what it corrupts). A differential triage pipeline then runs
// each program through the interprocedural static pass, the baseline
// lexical scanner, the runtime machine, and the shadow-memory plane;
// any disagreement with the labels or between planes is a finding,
// shrunk to a minimal repro with internal/shrink.
//
// Everything is deterministic per seed: generation, rendering, labels,
// execution, and triage JSON are byte-identical across runs, which is
// what the CI double-run gate checks.
package foundry

import (
	"fmt"
	"math/rand"

	"repro/internal/layout"
)

// Program kinds. The kind names the generation template; the labels
// carry the vulnerability axis (a kind can have safe and overflowing
// instances).
const (
	KindObject       = "object-placement" // derived-over-base placement new
	KindArrayConst   = "array-const"      // placement array-new, constant length
	KindArrayTainted = "array-tainted"    // placement array-new, cin-tainted length
	KindTwoHop       = "two-hop-tainted"  // tainted length through two call hops
	KindClassic      = "classic-strcpy"   // the pre-paper overflow the baseline sees
)

// FieldSpec is one declared class field.
type FieldSpec struct {
	Name string `json:"name"`
	Type string `json:"type"`          // int, char, short, double
	Len  int    `json:"len,omitempty"` // >0: array field of Len elements
}

// ClassSpec is one class declaration.
type ClassSpec struct {
	Name     string      `json:"name"`
	Base     string      `json:"base,omitempty"`
	Virtuals []string    `json:"virtuals,omitempty"`
	Fields   []FieldSpec `json:"fields,omitempty"`
}

// GlobalSpec is one global declaration, in order: order is load-bearing
// because successive globals are adjacent modulo alignment, which is
// exactly what makes an overflow corrupt its neighbour.
type GlobalSpec struct {
	Name    string `json:"name"`
	Class   string `json:"class,omitempty"`   // class-typed object
	CharLen int    `json:"charLen,omitempty"` // char[CharLen] pool
	IsInt   bool   `json:"isInt,omitempty"`   // plain int sentinel
}

// Statement ops.
const (
	OpDecl     = "decl"     // int Var = Value;
	OpAssign   = "assign"   // Var = Var + Value;
	OpCin      = "cin"      // cin >> Var;
	OpPlace    = "place"    // Class *Var = new (&Arena) Class();
	OpField    = "field"    // Ptr->Field = Value;  (Index >= 0: Ptr->Field[Index] = Value;)
	OpHop      = "hop"      // Var = LenVar + Value, routed through middle/inner
	OpArrayNew = "arraynew" // char *Var = new (Arena) char[Len|LenVar];
	OpFill     = "fill"     // while-loop writing Value into Ptr[0..len)
	OpStrcpy   = "strcpy"   // strcpy(Arena, "Str");
)

// Stmt is one flat program statement. A single struct (rather than an
// interface) keeps specs trivially JSON-serialisable and shrinkable.
type Stmt struct {
	Op     string `json:"op"`
	Var    string `json:"var,omitempty"`
	Class  string `json:"class,omitempty"`
	Arena  string `json:"arena,omitempty"`
	Local  bool   `json:"local,omitempty"` // arena is a trigger() local
	Ptr    string `json:"ptr,omitempty"`
	Field  string `json:"field,omitempty"`
	Index  int    `json:"index,omitempty"` // -1: scalar field
	Value  int64  `json:"value,omitempty"`
	Len    int64  `json:"len,omitempty"` // -1: use LenVar
	LenVar string `json:"lenVar,omitempty"`
	Str    string `json:"str,omitempty"`
}

// Spec is one generated program: the structured form from which both
// the rendered source and the runtime execution derive, so the static
// and runtime planes see the same program through independent paths.
type Spec struct {
	Name       string       `json:"name"`
	Kind       string       `json:"kind"`
	Classes    []ClassSpec  `json:"classes,omitempty"`
	Globals    []GlobalSpec `json:"globals,omitempty"`
	ArenaVar   string       `json:"arenaVar"`             // name of the arena global/local
	ArenaClass string       `json:"arenaClass,omitempty"` // class of an object arena ("" for char pools)
	LocalArena bool         `json:"localArena,omitempty"` // arena is a trigger() local
	HopDelta   int64        `json:"hopDelta,omitempty"`   // two-hop: added in middle's call
	Input      []int64      `json:"input,omitempty"`      // cin values for the concrete run
	Stmts      []Stmt       `json:"stmts"`
}

// Labels is the generator-side ground truth for one program, computed
// from layout arithmetic — deliberately independent of the machine's
// object/field execution path, so a disagreement between the two is a
// real differential finding.
type Labels struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Vulnerable: the program admits an overflow (static truth: for
	// tainted programs this is true even when the concrete input is
	// benign).
	Vulnerable bool `json:"vulnerable"`
	// RunOverflows: the concrete run with Input writes past the arena.
	RunOverflows bool   `json:"runOverflows"`
	Arena        string `json:"arena"`
	ArenaSize    uint64 `json:"arenaSize"`
	PlacedSize   uint64 `json:"placedSize"` // bytes the run writes through the placement
	OverflowBy   uint64 `json:"overflowBy"`
	// Corrupts names the globals the overflow reaches ("padding" when
	// it dies in alignment padding, "frame" for stack arenas, "" when
	// the run does not overflow).
	Corrupts string  `json:"corrupts,omitempty"`
	Input    []int64 `json:"input,omitempty"`
	// WantCodes are the analyzer diagnostics the program must draw.
	WantCodes []string `json:"wantCodes,omitempty"`
	// Per-plane expected detections. Where an expectation differs from
	// the ground truth (baseline blind to placement overflows, static
	// pass out of scope on classic strcpy) the gap is a *known* gap and
	// triage accounts it as such rather than as a divergence.
	ExpectStatic   bool `json:"expectStatic"`
	ExpectBaseline bool `json:"expectBaseline"`
}

// Generated is one program with its labels.
type Generated struct {
	Spec   *Spec  `json:"spec"`
	Labels Labels `json:"labels"`
	Src    string `json:"src"`
}

// Model is the data model all foundry arithmetic uses — the analyzer's
// default, so static sizeof math and ground-truth math agree by
// construction.
var Model = layout.ILP32i386

// Generate builds program index of the corpus rooted at seed. The same
// (seed, index) pair always yields the identical program, labels, and
// source bytes.
func Generate(seed int64, index int) (*Generated, error) {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(index)))
	sp := &Spec{Name: fmt.Sprintf("prog-%d-%04d", seed, index)}
	switch pick := rng.Intn(13); {
	case pick < 4:
		genObject(rng, sp)
	case pick < 7:
		genArrayConst(rng, sp)
	case pick < 9:
		genArrayTainted(rng, sp, false)
	case pick < 11:
		genArrayTainted(rng, sp, true)
	default:
		genClassic(rng, sp)
	}
	lb, err := computeLabels(sp)
	if err != nil {
		return nil, fmt.Errorf("foundry: %s: %w", sp.Name, err)
	}
	return &Generated{Spec: sp, Labels: lb, Src: Render(sp)}, nil
}

var fieldTypes = []string{"int", "char", "short", "double"}

func genFields(rng *rand.Rand, prefix string, n int) []FieldSpec {
	out := make([]FieldSpec, 0, n)
	for i := 0; i < n; i++ {
		f := FieldSpec{Name: fmt.Sprintf("%s%d", prefix, i), Type: fieldTypes[rng.Intn(len(fieldTypes))]}
		if f.Type == "char" && rng.Intn(2) == 0 {
			f.Len = 4 + rng.Intn(9) // char fN[4..12]
		}
		out = append(out, f)
	}
	return out
}

// genObject emits a derived-over-base placement program — the paper's
// §3 shape. A coin decides whether the derived class outgrows the
// arena (overflow) or matches it exactly (safe), another whether the
// arena is a global (bss adjacency) or a trigger() local (frame).
func genObject(rng *rand.Rand, sp *Spec) {
	sp.Kind = KindObject
	overflow := rng.Intn(3) > 0 // 2/3 of object programs overflow
	base := ClassSpec{Name: "C0", Fields: genFields(rng, "f", 1+rng.Intn(3))}
	if rng.Intn(2) == 0 {
		base.Virtuals = []string{"m0"}
	}
	derived := ClassSpec{Name: "C1", Base: "C0"}
	if overflow {
		derived.Fields = genFields(rng, "g", 1+rng.Intn(2))
		if rng.Intn(3) == 0 {
			derived.Virtuals = []string{"m1"}
		}
	} else if len(base.Virtuals) > 0 {
		// Overriding an existing virtual adds a vtable slot, not size.
		derived.Virtuals = []string{"m1"}
	}
	sp.Classes = []ClassSpec{base, derived}
	sp.ArenaVar = "arena0"
	sp.ArenaClass = "C0"
	sp.LocalArena = rng.Intn(4) == 0
	if !sp.LocalArena {
		sp.Globals = append(sp.Globals, GlobalSpec{Name: "arena0", Class: "C0"})
		if rng.Intn(2) == 0 {
			sp.Globals = append(sp.Globals, GlobalSpec{Name: "sent0", Class: "C0"})
		} else {
			sp.Globals = append(sp.Globals, GlobalSpec{Name: "sent0", IsInt: true})
		}
	}

	addFiller(rng, sp, 0)
	if rng.Intn(2) == 0 {
		// Legitimate lifecycle first: place the base class, write a
		// base field in bounds. Keeps the arena "dirty" the way §2.5
		// reuse does without changing the overflow arithmetic.
		sp.Stmts = append(sp.Stmts, Stmt{Op: OpPlace, Var: "p0", Class: "C0", Arena: sp.ArenaVar, Local: sp.LocalArena, Index: -1})
		sp.Stmts = append(sp.Stmts, fieldWrite(rng, "p0", base.Fields[rng.Intn(len(base.Fields))]))
	}
	sp.Stmts = append(sp.Stmts, Stmt{Op: OpPlace, Var: "p1", Class: "C1", Arena: sp.ArenaVar, Local: sp.LocalArena, Index: -1})
	// Write every derived-added field — for overflow programs these are
	// the §3 "field writes past bounds". Array fields are written
	// element by element (the paper's memcpy-into-ssn[] shape), which
	// keeps the escaping byte set gap-free: together with the scalar
	// zero-init the overflow always touches the bytes right past the
	// arena, so the sanitizer's trailing red zone is guaranteed to see
	// any overflowing run.
	for _, f := range derived.Fields {
		if f.Len > 0 {
			for i := 0; i < f.Len; i++ {
				sp.Stmts = append(sp.Stmts, Stmt{Op: OpField, Ptr: "p1", Field: f.Name, Index: i, Value: int64(1 + rng.Intn(100))})
			}
		} else {
			sp.Stmts = append(sp.Stmts, fieldWrite(rng, "p1", f))
		}
	}
	if len(derived.Fields) == 0 {
		sp.Stmts = append(sp.Stmts, fieldWrite(rng, "p1", base.Fields[0]))
	}
	addFiller(rng, sp, 1)
}

func fieldWrite(rng *rand.Rand, ptr string, f FieldSpec) Stmt {
	st := Stmt{Op: OpField, Ptr: ptr, Field: f.Name, Index: -1, Value: int64(1 + rng.Intn(100))}
	if f.Len > 0 {
		st.Index = rng.Intn(f.Len)
	}
	return st
}

// genArrayConst emits a constant-length placement array-new over a
// char pool, overflowing or not by a coin.
func genArrayConst(rng *rand.Rand, sp *Spec) {
	sp.Kind = KindArrayConst
	pool := 8 + rng.Intn(33) // char pool0[8..40]
	var n int
	if overflow := rng.Intn(2) == 0; overflow {
		n = pool + 1 + rng.Intn(8)
	} else {
		n = 1 + rng.Intn(pool)
	}
	sp.ArenaVar = "pool0"
	sp.Globals = []GlobalSpec{{Name: "pool0", CharLen: pool}, {Name: "sent0", IsInt: true}}
	addFiller(rng, sp, 0)
	sp.Stmts = append(sp.Stmts,
		Stmt{Op: OpArrayNew, Var: "b0", Arena: "pool0", Len: int64(n), Index: -1},
		Stmt{Op: OpFill, Ptr: "b0", Len: int64(n), Value: int64(65 + rng.Intn(26)), Index: -1})
	addFiller(rng, sp, 1)
}

// genArrayTainted emits the paper's Listing-9 shape: a cin-tainted
// length reaches a placement array-new unchecked. With twoHop the
// length flows trigger → middle → inner first (the interprocedural
// case). The concrete input is an attack value 3 runs out of 4 and
// benign otherwise — statically vulnerable either way.
func genArrayTainted(rng *rand.Rand, sp *Spec, twoHop bool) {
	sp.Kind = KindArrayTainted
	if twoHop {
		sp.Kind = KindTwoHop
	}
	pool := 8 + rng.Intn(33)
	sp.ArenaVar = "pool0"
	sp.Globals = []GlobalSpec{{Name: "pool0", CharLen: pool}, {Name: "sent0", IsInt: true}}
	delta := int64(0)
	if twoHop {
		delta = int64(1 + rng.Intn(4))
		sp.HopDelta = delta
	}
	var input int64
	if rng.Intn(4) > 0 {
		input = int64(pool) + 1 + int64(rng.Intn(10)) - delta
	} else {
		input = 1 + int64(rng.Intn(pool/2+1)) - delta
		if input < 0 {
			input = 0
		}
	}
	sp.Input = []int64{input}
	lenVar := "n0"
	addFiller(rng, sp, 0)
	sp.Stmts = append(sp.Stmts,
		Stmt{Op: OpDecl, Var: "n0", Value: 0, Index: -1},
		Stmt{Op: OpCin, Var: "n0", Index: -1})
	if twoHop {
		sp.Stmts = append(sp.Stmts, Stmt{Op: OpHop, Var: "k0", LenVar: "n0", Value: delta, Index: -1})
		lenVar = "k0"
	}
	sp.Stmts = append(sp.Stmts,
		Stmt{Op: OpArrayNew, Var: "b0", Arena: "pool0", Len: -1, LenVar: lenVar, Index: -1},
		Stmt{Op: OpFill, Ptr: "b0", Len: -1, LenVar: lenVar, Value: int64(97 + rng.Intn(26)), Index: -1})
	addFiller(rng, sp, 1)
}

// genClassic emits the pre-paper overflow the baseline scanner exists
// for: strcpy into a fixed buffer, overflowing or not by a coin.
func genClassic(rng *rand.Rand, sp *Spec) {
	sp.Kind = KindClassic
	buf := 8 + rng.Intn(17) // char dst0[8..24]
	var l int
	if overflow := rng.Intn(2) == 0; overflow {
		l = buf + rng.Intn(8) // l+1 > buf
	} else {
		l = rng.Intn(buf - 1) // l+1 <= buf-? keep strictly inside
	}
	src := make([]byte, l)
	for i := range src {
		src[i] = byte('A' + rng.Intn(26))
	}
	sp.ArenaVar = "dst0"
	sp.Globals = []GlobalSpec{{Name: "dst0", CharLen: buf}, {Name: "sent0", IsInt: true}}
	addFiller(rng, sp, 0)
	sp.Stmts = append(sp.Stmts, Stmt{Op: OpStrcpy, Arena: "dst0", Str: string(src), Index: -1})
	addFiller(rng, sp, 1)
}

// addFiller appends 0–2 inert local-scalar statements: shrink fodder
// that also stresses the analyzer's statement walk.
func addFiller(rng *rand.Rand, sp *Spec, phase int) {
	for i, n := 0, rng.Intn(3); i < n; i++ {
		v := fmt.Sprintf("t%d_%d", phase, i)
		sp.Stmts = append(sp.Stmts, Stmt{Op: OpDecl, Var: v, Value: int64(rng.Intn(50)), Index: -1})
		if rng.Intn(2) == 0 {
			sp.Stmts = append(sp.Stmts, Stmt{Op: OpAssign, Var: v, Value: int64(1 + rng.Intn(9)), Index: -1})
		}
	}
}
