package foundry

import (
	"fmt"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/defense"
	"repro/internal/shrink"
)

// Plane names, in report order.
const (
	PlaneStatic   = "static"   // internal/analyzer interprocedural pass
	PlaneBaseline = "baseline" // lexical pre-paper scanner
	PlaneRuntime  = "runtime"  // machine execution, write-escape analysis
	PlaneShadow   = "shadow"   // shadow-memory sanitizer plane
)

// Verdict taxonomy: every plane verdict is one of TP/FP/FN/TN against
// its ground truth; a program-level verdict is "agree" when every plane
// matched its *expected* detection, "known-gap" when the only
// mismatches against ground truth are expected ones (the labels carry
// the expectation), and "divergence" otherwise. Divergences gate CI at
// zero.
const (
	VerdictAgree      = "agree"
	VerdictKnownGap   = "known-gap"
	VerdictDivergence = "divergence"
)

// PlaneResult is one plane's view of one program.
type PlaneResult struct {
	// Detected: the plane flagged the program.
	Detected bool `json:"detected"`
	// Truth is the plane's ground truth: Labels.Vulnerable for the
	// static planes (they judge the program), Labels.RunOverflows for
	// the runtime planes (they judge the run).
	Truth bool `json:"truth"`
	// Expected is what the plane *should* report given its known
	// limitations; Expected != Truth is a known gap, Detected !=
	// Expected is a divergence.
	Expected bool   `json:"expected"`
	Verdict  string `json:"verdict"` // TP/FP/FN/TN (Detected vs Truth)
	Gap      string `json:"gap,omitempty"`
}

// ProgramTriage is the full cross-plane result for one program.
type ProgramTriage struct {
	Name         string                 `json:"name"`
	Kind         string                 `json:"kind"`
	Vulnerable   bool                   `json:"vulnerable"`
	RunOverflows bool                   `json:"runOverflows"`
	Codes        []string               `json:"codes,omitempty"` // analyzer diagnostics observed
	Planes       map[string]PlaneResult `json:"planes"`
	// Corrupts cross-check: generator prediction vs. runtime observation.
	CorruptsWant string   `json:"corruptsWant,omitempty"`
	CorruptsGot  string   `json:"corruptsGot,omitempty"`
	Verdict      string   `json:"verdict"`
	Divergences  []string `json:"divergences,omitempty"`
}

// ShrunkRepro is a minimised divergent program.
type ShrunkRepro struct {
	Name        string   `json:"name"`
	Divergences []string `json:"divergences"`
	StmtsBefore int      `json:"stmtsBefore"`
	StmtsAfter  int      `json:"stmtsAfter"`
	Src         string   `json:"src"`
}

// PlaneStats aggregates one plane over the corpus.
type PlaneStats struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`
	TN int `json:"tn"`
	// Raw precision/recall/F1 against ground truth: the honest numbers
	// (the baseline's raw recall over placement programs is the
	// paper's headline).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// Scoped recall counts only programs the plane is expected to
	// catch — the CI gate: anything under 1.0 means the plane missed
	// something inside its own scope.
	ScopedRecall float64 `json:"scopedRecall"`
	ScopedDen    int     `json:"scopedDen"`
}

// TriageReport is the corpus-level result. It contains no wall-clock
// fields: the same seed and count produce byte-identical JSON.
type TriageReport struct {
	Schema      string                `json:"schema"`
	Seed        int64                 `json:"seed"`
	Count       int                   `json:"count"`
	Kinds       map[string]int        `json:"kinds"`
	Vulnerable  int                   `json:"vulnerable"`
	Planes      map[string]PlaneStats `json:"planes"`
	KnownGaps   map[string]int        `json:"knownGaps"`
	Divergent   int                   `json:"divergent"`
	Programs    []ProgramTriage       `json:"programs"`
	Shrunk      []ShrunkRepro         `json:"shrunk,omitempty"`
	GateOK      bool                  `json:"gateOK"`
	GateDetails []string              `json:"gateDetails,omitempty"`
}

// TriageSchema versions the triage JSON artifact.
const TriageSchema = "pnfoundry-triage/v1"

func verdictOf(detected, truth bool) string {
	switch {
	case detected && truth:
		return "TP"
	case detected && !truth:
		return "FP"
	case !detected && truth:
		return "FN"
	default:
		return "TN"
	}
}

// gapTag names the known gap when a plane's expectation departs from
// its ground truth.
func gapTag(plane string, lb Labels) string {
	switch plane {
	case PlaneStatic:
		if lb.Vulnerable && !lb.ExpectStatic {
			return "static-out-of-scope" // lexical overflow, not a placement site
		}
	case PlaneBaseline:
		if lb.Vulnerable && !lb.ExpectBaseline {
			return "baseline-blind" // the paper's point: no unsafe libc call to see
		}
		if !lb.Vulnerable && lb.ExpectBaseline {
			return "baseline-lexical-fp" // strcpy flagged regardless of bounds
		}
	}
	return ""
}

// TriageProgram runs one generated program through all four planes.
func TriageProgram(g *Generated) (*ProgramTriage, error) {
	lb := g.Labels
	tr := &ProgramTriage{
		Name: lb.Name, Kind: lb.Kind,
		Vulnerable: lb.Vulnerable, RunOverflows: lb.RunOverflows,
		Planes: map[string]PlaneResult{},
	}
	diverge := func(format string, args ...any) {
		tr.Divergences = append(tr.Divergences, fmt.Sprintf(format, args...))
	}

	// Static plane.
	var staticDet bool
	res, err := analyzer.Analyze(g.Src, analyzer.Options{Model: Model})
	if err != nil {
		diverge("static: analyze failed: %v", err)
	} else {
		tr.Codes = res.Codes()
		staticDet = res.HasCode("PN001") || res.HasCode("PN002")
		for _, want := range lb.WantCodes {
			if !res.HasCode(want) {
				diverge("static: expected diagnostic %s missing", want)
			}
		}
		for _, c := range tr.Codes {
			if c == "PN001" || c == "PN002" {
				found := false
				for _, want := range lb.WantCodes {
					if c == want {
						found = true
					}
				}
				if !found {
					diverge("static: unexpected overflow diagnostic %s", c)
				}
			}
		}
	}

	// Baseline plane.
	var baseDet bool
	bf, err := analyzer.Baseline(g.Src)
	if err != nil {
		diverge("baseline: scan failed: %v", err)
	} else {
		baseDet = len(bf) > 0
	}

	// Runtime plane: undefended run, write-escape analysis.
	var runDet bool
	runRep, err := Execute(g.Spec, defense.None)
	if err != nil {
		diverge("runtime: harness error: %v", err)
	} else {
		runDet = runRep.overflowObserved()
		tr.CorruptsGot = joinCorrupted(runRep)
		tr.CorruptsWant = lb.Corrupts
		// Cross-check what the overflow reached, where the prediction
		// is well-defined: a global arena and a run that neither plane
		// aborted.
		if !g.Spec.LocalArena && runRep.Abort == "" {
			want := lb.Corrupts
			if want == "padding" || want == "frame" {
				want = ""
			}
			if want != tr.CorruptsGot {
				diverge("runtime: overflow reached %q, labels predicted %q", tr.CorruptsGot, lb.Corrupts)
			}
		}
	}

	// Shadow plane: same run under the sanitizer.
	var shadowDet bool
	shRep, err := Execute(g.Spec, defense.ShadowMemOnly)
	if err != nil {
		diverge("shadow: harness error: %v", err)
	} else {
		shadowDet = shRep.shadowViolation()
	}

	planes := []struct {
		name     string
		detected bool
		truth    bool
		expected bool
	}{
		{PlaneStatic, staticDet, lb.Vulnerable, lb.ExpectStatic},
		{PlaneBaseline, baseDet, lb.Vulnerable, lb.ExpectBaseline},
		{PlaneRuntime, runDet, lb.RunOverflows, lb.RunOverflows},
		{PlaneShadow, shadowDet, lb.RunOverflows, lb.RunOverflows},
	}
	for _, pl := range planes {
		pr := PlaneResult{
			Detected: pl.detected, Truth: pl.truth, Expected: pl.expected,
			Verdict: verdictOf(pl.detected, pl.truth),
		}
		if pl.expected != pl.truth {
			pr.Gap = gapTag(pl.name, lb)
		}
		if pl.detected != pl.expected {
			diverge("%s: detected=%v, expected=%v", pl.name, pl.detected, pl.expected)
		}
		tr.Planes[pl.name] = pr
	}
	if runDet != shadowDet {
		diverge("cross-plane: runtime=%v shadow=%v on the same run", runDet, shadowDet)
	}

	switch {
	case len(tr.Divergences) > 0:
		tr.Verdict = VerdictDivergence
	case hasGap(tr):
		tr.Verdict = VerdictKnownGap
	default:
		tr.Verdict = VerdictAgree
	}
	return tr, nil
}

func hasGap(tr *ProgramTriage) bool {
	for _, pr := range tr.Planes {
		if pr.Gap != "" {
			return true
		}
	}
	return false
}

func joinCorrupted(r *ExecReport) string {
	out := ""
	for i, c := range r.Corrupted {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// Shrink minimises a divergent spec to a minimal repro: greedily drop
// statements while a re-render + full re-triage still reports any
// divergence.
func Shrink(sp *Spec) *ShrunkRepro { return shrinkDivergence(sp) }

// shrinkDivergence minimises a divergent spec: greedily drop statements
// while a re-render + full re-triage still reports any divergence.
func shrinkDivergence(sp *Spec) *ShrunkRepro {
	failing := func(stmts []Stmt) bool {
		cand := *sp
		cand.Stmts = stmts
		g := &Generated{Spec: &cand}
		lb, err := computeLabels(&cand)
		if err != nil {
			return false
		}
		g.Labels = lb
		g.Src = Render(&cand)
		tr, err := TriageProgram(g)
		if err != nil {
			return false
		}
		return len(tr.Divergences) > 0
	}
	min := shrink.Greedy(sp.Stmts, failing)
	cand := *sp
	cand.Stmts = min
	g := &Generated{Spec: &cand}
	if lb, err := computeLabels(&cand); err == nil {
		g.Labels = lb
	}
	g.Src = Render(&cand)
	var divs []string
	if tr, err := TriageProgram(g); err == nil {
		divs = tr.Divergences
	}
	return &ShrunkRepro{
		Name:        sp.Name,
		Divergences: divs,
		StmtsBefore: len(sp.Stmts),
		StmtsAfter:  len(min),
		Src:         g.Src,
	}
}

// TriageOptions configure a corpus triage.
type TriageOptions struct {
	// Shrink divergent programs to minimal repros (quadratic in
	// statement count; cheap at foundry statement counts).
	Shrink bool
	// MinScopedRecall is the per-plane gate (default 1.0: a plane must
	// catch everything inside its own scope).
	MinScopedRecall float64
	// MaxDivergent gates the number of divergent programs (default 0).
	MaxDivergent int
}

// TriageCorpus generates and triages programs [0, count) of the seed's
// corpus and aggregates per-plane precision/recall.
func TriageCorpus(seed int64, count int, opts TriageOptions) (*TriageReport, error) {
	if opts.MinScopedRecall == 0 {
		opts.MinScopedRecall = 1.0
	}
	rep := &TriageReport{
		Schema: TriageSchema, Seed: seed, Count: count,
		Kinds:     map[string]int{},
		Planes:    map[string]PlaneStats{},
		KnownGaps: map[string]int{},
	}
	type agg struct{ tp, fp, fn, tn, scopedHit, scopedDen int }
	aggs := map[string]*agg{
		PlaneStatic: {}, PlaneBaseline: {}, PlaneRuntime: {}, PlaneShadow: {},
	}
	for i := 0; i < count; i++ {
		g, err := Generate(seed, i)
		if err != nil {
			return nil, err
		}
		tr, err := TriageProgram(g)
		if err != nil {
			return nil, err
		}
		rep.Kinds[g.Labels.Kind]++
		if g.Labels.Vulnerable {
			rep.Vulnerable++
		}
		for name, pr := range tr.Planes {
			a := aggs[name]
			switch pr.Verdict {
			case "TP":
				a.tp++
			case "FP":
				a.fp++
			case "FN":
				a.fn++
			case "TN":
				a.tn++
			}
			if pr.Truth && pr.Expected {
				a.scopedDen++
				if pr.Detected {
					a.scopedHit++
				}
			}
			if pr.Gap != "" {
				rep.KnownGaps[pr.Gap]++
			}
		}
		if tr.Verdict == VerdictDivergence {
			rep.Divergent++
			if opts.Shrink {
				rep.Shrunk = append(rep.Shrunk, *shrinkDivergence(g.Spec))
			}
		}
		rep.Programs = append(rep.Programs, *tr)
	}
	ratio := func(num, den int) float64 {
		if den == 0 {
			return 1.0
		}
		return float64(num) / float64(den)
	}
	for name, a := range aggs {
		st := PlaneStats{TP: a.tp, FP: a.fp, FN: a.fn, TN: a.tn}
		st.Precision = ratio(a.tp, a.tp+a.fp)
		st.Recall = ratio(a.tp, a.tp+a.fn)
		if st.Precision+st.Recall > 0 {
			st.F1 = 2 * st.Precision * st.Recall / (st.Precision + st.Recall)
		}
		st.ScopedRecall = ratio(a.scopedHit, a.scopedDen)
		st.ScopedDen = a.scopedDen
		rep.Planes[name] = st
	}

	rep.GateOK = true
	if rep.Divergent > opts.MaxDivergent {
		rep.GateOK = false
		rep.GateDetails = append(rep.GateDetails,
			fmt.Sprintf("divergent programs: %d > %d allowed", rep.Divergent, opts.MaxDivergent))
	}
	var names []string
	for name := range rep.Planes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if st := rep.Planes[name]; st.ScopedRecall < opts.MinScopedRecall {
			rep.GateOK = false
			rep.GateDetails = append(rep.GateDetails,
				fmt.Sprintf("plane %s: scoped recall %.3f < %.3f", name, st.ScopedRecall, opts.MinScopedRecall))
		}
	}
	return rep, nil
}
