// Package heap implements a first-fit free-list allocator over the
// simulated heap segment. Block headers are stored inside simulated memory
// itself, so a heap overflow can corrupt allocator metadata exactly as it
// does on a real libc heap (§3.5.1); CheckIntegrity exposes that damage.
//
// The allocator also keeps the ledger the §4.5 memory-leak experiment
// needs: bytes allocated versus freed, live blocks, and per-tag
// attribution.
package heap

import (
	"fmt"

	"repro/internal/mem"
)

const (
	headerSize = 8
	// Payloads and block sizes are multiples of this; payload addresses
	// are 8-aligned so any simulated type can live in any block.
	blockAlign = 8
	minPayload = 8

	magicAlloc uint16 = 0xA110
	magicFree  uint16 = 0xF4EE
)

// Stats is the allocator ledger.
type Stats struct {
	Allocs         uint64
	Frees          uint64
	BytesAllocated uint64
	BytesFreed     uint64
	// InUse is BytesAllocated - BytesFreed: the §4.5 leak metric.
	InUse      uint64
	LiveBlocks uint64
}

// Block describes one live allocation.
type Block struct {
	Payload mem.Addr
	Size    uint64
	Tag     string
}

// Allocator is a first-fit free-list allocator. It is not safe for
// concurrent use; simulated processes are single-threaded.
type Allocator struct {
	m     *mem.Memory
	base  mem.Addr // first header
	limit mem.Addr // first address past the arena
	stats Stats
	tags  map[mem.Addr]string

	redZone bool
	// zones maps live payloads to the caller-requested size, locating the
	// red-zone bytes at payload+requested.
	zones map[mem.Addr]uint64

	// sh, when non-nil, is the shadow-memory sanitizer's view of the
	// heap (see SetShadow).
	sh Shadow
}

// Shadow is the seam through which a byte-granular shadow-memory
// sanitizer (see internal/shadow) cooperates with the allocator. The
// allocator's own metadata writes run under Exempt (they are the
// allocator's business, not the program's), every header is re-poisoned
// after it is written so a program write that tramples it faults at the
// offending store (§3.5.1 at detection time), allocated payloads are
// unpoisoned (address reuse after a free must not inherit quarantine),
// and freed payloads are quarantined (use-after-free writes fault).
type Shadow interface {
	// Exempt runs f with shadow write-checking suspended.
	Exempt(f func() error) error
	// OnAlloc reports that [payload, payload+n) was handed to the
	// program; the sanitizer makes it addressable.
	OnAlloc(payload mem.Addr, n uint64)
	// OnFree reports that [payload, payload+n) was released; the
	// sanitizer quarantines it.
	OnFree(payload mem.Addr, n uint64)
	// PoisonHeader marks [h, h+n) as allocator metadata.
	PoisonHeader(h mem.Addr, n uint64)
}

// SetShadow attaches the sanitizer seam and poisons every block header
// already present (the heap is formatted before a sanitizer can be
// attached). Pass nil to detach.
func (a *Allocator) SetShadow(sh Shadow) error {
	a.sh = sh
	if sh == nil {
		return nil
	}
	for h := a.base; h < a.limit; {
		payload, magic, err := a.readHeader(h)
		if err != nil {
			return err
		}
		if magic != magicAlloc && magic != magicFree {
			return &CorruptError{At: h}
		}
		sh.PoisonHeader(h, headerSize)
		h = h.Add(int64(headerSize + payload))
	}
	return nil
}

const redZoneSize = 4

var redZonePattern = [redZoneSize]byte{0xFD, 0xFD, 0xFD, 0xFD}

// EnableRedZones makes subsequent allocations carry a guard pattern
// immediately after the requested bytes, verified on Free and by
// CheckRedZones — the hardened-allocator defense a modern malloc
// implements, which the §3.5.1 heap overflow tramples.
func (a *Allocator) EnableRedZones() { a.redZone = true }

// RedZonesEnabled reports whether allocations carry guard patterns —
// the observable half of the heapguard defense knob, so configuration
// tests can assert the catalog actually arms what it names.
func (a *Allocator) RedZonesEnabled() bool { return a.redZone }

// RedZoneError reports a trampled allocation guard.
type RedZoneError struct {
	Payload mem.Addr
	Found   [redZoneSize]byte
}

// Error implements the error interface.
func (e *RedZoneError) Error() string {
	return fmt.Sprintf("heap: red zone after block %#x trampled (found % x)", uint64(e.Payload), e.Found)
}

// New formats [base, base+size) as a single free block and returns the
// allocator. size must hold at least one minimal block.
func New(m *mem.Memory, base mem.Addr, size uint64) (*Allocator, error) {
	if m == nil {
		return nil, fmt.Errorf("heap: nil memory")
	}
	size -= size % blockAlign
	if size < headerSize+minPayload {
		return nil, fmt.Errorf("heap: arena size %d too small", size)
	}
	if err := m.CheckRange(base, size, mem.PermRW); err != nil {
		return nil, fmt.Errorf("heap: arena not mapped read-write: %w", err)
	}
	a := &Allocator{
		m: m, base: base, limit: base.Add(int64(size)),
		tags:  make(map[mem.Addr]string),
		zones: make(map[mem.Addr]uint64),
	}
	if err := a.writeHeader(base, size-headerSize, magicFree); err != nil {
		return nil, err
	}
	return a, nil
}

// NewOnImage formats the entire heap segment of img.
func NewOnImage(img *mem.Image) (*Allocator, error) {
	return New(img.Mem, img.Heap.Base, img.Heap.Size())
}

// header encoding: [payloadSize uint32][magic uint16][reserved uint16]
func (a *Allocator) writeHeader(h mem.Addr, payload uint64, magic uint16) error {
	w := func() error {
		if err := a.m.WriteU32(h, uint32(payload)); err != nil {
			return err
		}
		return a.m.WriteU16(h.Add(4), magic)
	}
	if a.sh != nil {
		// The allocator's own metadata stores are exempt from shadow
		// checking; the header is re-poisoned immediately after, so the
		// next *program* write into it faults.
		if err := a.sh.Exempt(w); err != nil {
			return err
		}
		a.sh.PoisonHeader(h, headerSize)
		return nil
	}
	return w()
}

func (a *Allocator) readHeader(h mem.Addr) (payload uint64, magic uint16, err error) {
	p, err := a.m.ReadU32(h)
	if err != nil {
		return 0, 0, err
	}
	mg, err := a.m.ReadU16(h.Add(4))
	if err != nil {
		return 0, 0, err
	}
	return uint64(p), mg, nil
}

// roundPayload rounds a request up to the block granularity.
func roundPayload(n uint64) uint64 {
	if n < minPayload {
		n = minPayload
	}
	return (n + blockAlign - 1) &^ (blockAlign - 1)
}

// Alloc returns the address of a payload of at least n bytes.
func (a *Allocator) Alloc(n uint64) (mem.Addr, error) {
	return a.AllocTagged(n, "")
}

// AllocTagged is Alloc with a tag recorded for leak attribution.
func (a *Allocator) AllocTagged(n uint64, tag string) (mem.Addr, error) {
	want := roundPayload(n)
	if a.redZone {
		want = roundPayload(n + redZoneSize)
	}
	for h := a.base; h < a.limit; {
		payload, magic, err := a.readHeader(h)
		if err != nil {
			return 0, fmt.Errorf("heap: walking free list: %w", err)
		}
		if magic != magicAlloc && magic != magicFree {
			return 0, &CorruptError{At: h}
		}
		if magic == magicFree && payload >= want {
			// Split if the remainder can hold another block.
			rest := payload - want
			if rest >= headerSize+minPayload {
				if err := a.writeHeader(h, want, magicAlloc); err != nil {
					return 0, err
				}
				next := h.Add(int64(headerSize + want))
				if err := a.writeHeader(next, rest-headerSize, magicFree); err != nil {
					return 0, err
				}
			} else {
				want = payload
				if err := a.writeHeader(h, payload, magicAlloc); err != nil {
					return 0, err
				}
			}
			p := h.Add(headerSize)
			a.stats.Allocs++
			a.stats.BytesAllocated += want
			a.stats.InUse += want
			a.stats.LiveBlocks++
			if tag != "" {
				a.tags[p] = tag
			}
			if a.sh != nil {
				a.sh.OnAlloc(p, want)
			}
			if a.redZone {
				if err := a.m.Write(p.Add(int64(n)), redZonePattern[:]); err != nil {
					return 0, err
				}
				a.zones[p] = n
			}
			return p, nil
		}
		h = h.Add(int64(headerSize + payload))
	}
	return 0, &OOMError{Requested: n}
}

// Calloc allocates n zeroed bytes — unlike placement new over a reused
// arena, freshly calloc'd memory cannot leak previous contents (the §4.3
// contrast).
func (a *Allocator) Calloc(n uint64) (mem.Addr, error) {
	p, err := a.Alloc(n)
	if err != nil {
		return 0, err
	}
	if err := a.m.Memset(p, 0, n); err != nil {
		return 0, err
	}
	return p, nil
}

// Realloc resizes the allocation at p to n bytes, moving it if necessary
// and copying min(old, new) payload bytes. Realloc(0, n) allocates;
// growth into a fresh block leaves the tail uninitialised, like libc.
func (a *Allocator) Realloc(p mem.Addr, n uint64) (mem.Addr, error) {
	if p == 0 {
		return a.Alloc(n)
	}
	oldSize, err := a.SizeOf(p)
	if err != nil {
		return 0, err
	}
	want := roundPayload(n)
	if want <= oldSize {
		return p, nil // shrink in place (block granularity)
	}
	np, err := a.Alloc(n)
	if err != nil {
		return 0, err
	}
	data, err := a.m.Read(p, oldSize)
	if err != nil {
		return 0, err
	}
	if err := a.m.Write(np, data); err != nil {
		return 0, err
	}
	if err := a.Free(p); err != nil {
		return 0, err
	}
	return np, nil
}

// Free releases the block whose payload starts at p. It detects invalid
// pointers, double frees, and header corruption, and coalesces the block
// with free neighbours.
func (a *Allocator) Free(p mem.Addr) error {
	h := p.Add(-headerSize)
	if h < a.base || h >= a.limit {
		return fmt.Errorf("heap: free of %#x: outside arena", uint64(p))
	}
	payload, magic, err := a.readHeader(h)
	if err != nil {
		return err
	}
	switch magic {
	case magicFree:
		return fmt.Errorf("heap: double free of %#x", uint64(p))
	case magicAlloc:
	default:
		return &CorruptError{At: h}
	}
	if err := a.checkZone(p); err != nil {
		return err // hardened free refuses; the process would abort
	}
	delete(a.zones, p)
	if err := a.writeHeader(h, payload, magicFree); err != nil {
		return err
	}
	a.stats.Frees++
	a.stats.BytesFreed += payload
	a.stats.InUse -= payload
	a.stats.LiveBlocks--
	delete(a.tags, p)
	if a.sh != nil {
		a.sh.OnFree(p, payload)
	}
	return a.coalesce()
}

// coalesce merges adjacent free blocks across the whole arena. Like an
// unhardened libc it does not *validate* the heap on this path: an
// unrecognisable header (e.g. trampled by the §3.5.1 overflow) simply
// stops the merge walk — strict validation is CheckIntegrity's job, and
// red zones are the hardened allocator's detection point.
func (a *Allocator) coalesce() error {
	h := a.base
	for h < a.limit {
		payload, magic, err := a.readHeader(h)
		if err != nil {
			return err
		}
		if magic != magicAlloc && magic != magicFree {
			return nil // corrupted region: cannot walk further safely
		}
		next := h.Add(int64(headerSize + payload))
		if magic == magicFree && next < a.limit {
			npayload, nmagic, err := a.readHeader(next)
			if err != nil {
				return nil // ran off the walkable region
			}
			if nmagic == magicFree {
				if err := a.writeHeader(h, payload+headerSize+npayload, magicFree); err != nil {
					return err
				}
				continue // re-examine h: further merging possible
			}
		}
		h = next
	}
	return nil
}

// SizeOf returns the payload size of the allocated block at p.
func (a *Allocator) SizeOf(p mem.Addr) (uint64, error) {
	h := p.Add(-headerSize)
	if h < a.base || h >= a.limit {
		return 0, fmt.Errorf("heap: %#x outside arena", uint64(p))
	}
	payload, magic, err := a.readHeader(h)
	if err != nil {
		return 0, err
	}
	if magic != magicAlloc {
		return 0, fmt.Errorf("heap: %#x is not an allocated block", uint64(p))
	}
	return payload, nil
}

// BlockAt finds the live allocation containing addr, if any. This is the
// arena-inference primitive the RuntimeGuard defense (§5.2 libsafe
// discussion) uses to bound a placement at a heap address.
func (a *Allocator) BlockAt(addr mem.Addr) (Block, bool) {
	for h := a.base; h < a.limit; {
		payload, magic, err := a.readHeader(h)
		if err != nil || (magic != magicAlloc && magic != magicFree) {
			return Block{}, false // corrupt heap: refuse to infer
		}
		p := h.Add(headerSize)
		end := p.Add(int64(payload))
		if magic == magicAlloc && addr >= p && addr < end {
			return Block{Payload: p, Size: payload, Tag: a.tags[p]}, true
		}
		h = end
	}
	return Block{}, false
}

// Stats returns the current ledger.
func (a *Allocator) Stats() Stats { return a.stats }

// LiveBlocks enumerates all currently allocated blocks in address order.
func (a *Allocator) LiveBlocks() ([]Block, error) {
	var out []Block
	for h := a.base; h < a.limit; {
		payload, magic, err := a.readHeader(h)
		if err != nil {
			return nil, err
		}
		if magic != magicAlloc && magic != magicFree {
			return nil, &CorruptError{At: h}
		}
		if magic == magicAlloc {
			p := h.Add(headerSize)
			out = append(out, Block{Payload: p, Size: payload, Tag: a.tags[p]})
		}
		h = h.Add(int64(headerSize + payload))
	}
	return out, nil
}

// CheckIntegrity walks every block header and reports corruption — the
// detection a hardened allocator would perform after a heap overflow has
// trampled metadata.
func (a *Allocator) CheckIntegrity() error {
	h := a.base
	for h < a.limit {
		payload, magic, err := a.readHeader(h)
		if err != nil {
			return err
		}
		if magic != magicAlloc && magic != magicFree {
			return &CorruptError{At: h}
		}
		next := h.Add(int64(headerSize + payload))
		if next <= h || next > a.limit {
			return &CorruptError{At: h}
		}
		h = next
	}
	return nil
}

// checkZone verifies the red zone of one live payload, when present.
func (a *Allocator) checkZone(p mem.Addr) error {
	n, ok := a.zones[p]
	if !ok {
		return nil
	}
	b, err := a.m.Read(p.Add(int64(n)), redZoneSize)
	if err != nil {
		return err
	}
	var found [redZoneSize]byte
	copy(found[:], b)
	if found != redZonePattern {
		return &RedZoneError{Payload: p, Found: found}
	}
	return nil
}

// CheckRedZones verifies the guard pattern of every live allocation.
func (a *Allocator) CheckRedZones() error {
	for p := range a.zones {
		if err := a.checkZone(p); err != nil {
			return err
		}
	}
	return nil
}

// OOMError reports arena exhaustion.
type OOMError struct{ Requested uint64 }

// Error implements the error interface.
func (e *OOMError) Error() string {
	return fmt.Sprintf("heap: out of memory allocating %d bytes", e.Requested)
}

// CorruptError reports a trampled block header.
type CorruptError struct{ At mem.Addr }

// Error implements the error interface.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("heap: corrupt block header at %#x", uint64(e.At))
}
