package heap

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newTestHeap(t *testing.T, size uint64) (*Allocator, *mem.Memory) {
	t.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegHeap, 0x10000, size, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	a, err := New(m, 0x10000, size)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestAllocAlignmentAndBounds(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p1, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p1)%8 != 0 {
		t.Errorf("payload %#x not 8-aligned", uint64(p1))
	}
	p2, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= p1 {
		t.Errorf("second alloc %#x not after first %#x", uint64(p2), uint64(p1))
	}
	// 10 rounds to 16, plus 8 header.
	if p2.Diff(p1) != 24 {
		t.Errorf("gap = %d, want 24", p2.Diff(p1))
	}
}

func TestSizeOf(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.SizeOf(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 104 { // rounded to 8
		t.Errorf("SizeOf = %d, want 104", n)
	}
	if _, err := a.SizeOf(p.Add(8)); err == nil {
		t.Error("SizeOf of interior pointer succeeded")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p1, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p3, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Errorf("first-fit did not reuse freed block: %#x vs %#x", uint64(p3), uint64(p1))
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free not detected")
	}
}

func TestFreeInvalidPointer(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	if err := a.Free(0x50); err == nil {
		t.Error("free outside arena succeeded")
	}
	p, err := a.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p.Add(8)); err == nil {
		t.Error("free of interior pointer succeeded")
	}
}

func TestOOM(t *testing.T) {
	a, _ := newTestHeap(t, 128)
	if _, err := a.Alloc(1024); err == nil {
		t.Fatal("oversized alloc succeeded")
	} else {
		var oom *OOMError
		if !errors.As(err, &oom) {
			t.Errorf("err = %T, want *OOMError", err)
		}
	}
	// Exhaust with small blocks, then fail.
	for {
		if _, err := a.Alloc(8); err != nil {
			break
		}
	}
	if _, err := a.Alloc(8); err == nil {
		t.Error("alloc after exhaustion succeeded")
	}
}

func TestCoalescingRestoresArena(t *testing.T) {
	a, _ := newTestHeap(t, 1024)
	var ps []mem.Addr
	for i := 0; i < 4; i++ {
		p, err := a.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	// Free out of order; coalescing must merge everything back.
	for _, i := range []int{2, 0, 3, 1} {
		if err := a.Free(ps[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A full-arena allocation must now succeed (1024 - 8 header).
	if _, err := a.Alloc(1024 - 8); err != nil {
		t.Errorf("arena not fully coalesced: %v", err)
	}
}

func TestStatsLedger(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p1, _ := a.Alloc(16)
	p2, _ := a.Alloc(24)
	s := a.Stats()
	if s.Allocs != 2 || s.LiveBlocks != 2 || s.InUse != 40 {
		t.Errorf("after allocs: %+v", s)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	s = a.Stats()
	if s.Frees != 1 || s.LiveBlocks != 1 || s.InUse != 24 || s.BytesFreed != 16 {
		t.Errorf("after free: %+v", s)
	}
	_ = p2
}

func TestLeakAccountingMatchesPaperArithmetic(t *testing.T) {
	// §4.5: allocate GradStudent-sized blocks, "free" only Student-sized
	// reuse; leak per iteration = sizeGrad - sizeStudent. Here we model it
	// as the ledger difference after alloc-without-free iterations.
	a, _ := newTestHeap(t, 64<<10)
	const sizeGrad, sizeStudent = 32, 16
	iters := 10
	for i := 0; i < iters; i++ {
		p, err := a.Alloc(sizeGrad)
		if err != nil {
			t.Fatal(err)
		}
		// The program frees only a Student-worth by reallocating in place;
		// the simplest ledger model: nothing freed, Student bytes reused.
		_ = p
	}
	if got := a.Stats().InUse; got != uint64(iters*sizeGrad) {
		t.Errorf("InUse = %d, want %d", got, iters*sizeGrad)
	}
}

func TestLiveBlocksAndTags(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p1, _ := a.AllocTagged(16, "name")
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	blocks, err := a.LiveBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("live = %d", len(blocks))
	}
	if blocks[0].Payload != p1 || blocks[0].Tag != "name" {
		t.Errorf("block0 = %+v", blocks[0])
	}
	if blocks[1].Tag != "" {
		t.Errorf("block1 tag = %q", blocks[1].Tag)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	blocks, err = a.LiveBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Errorf("live after free = %d", len(blocks))
	}
}

func TestBlockAt(t *testing.T) {
	a, _ := newTestHeap(t, 4096)
	p, _ := a.Alloc(32)
	b, ok := a.BlockAt(p.Add(10))
	if !ok || b.Payload != p || b.Size != 32 {
		t.Errorf("BlockAt interior = %+v ok=%v", b, ok)
	}
	if _, ok := a.BlockAt(p.Add(32)); ok {
		t.Error("BlockAt past end matched")
	}
	if _, ok := a.BlockAt(0x100); ok {
		t.Error("BlockAt outside arena matched")
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.BlockAt(p); ok {
		t.Error("BlockAt matched freed block")
	}
}

func TestOverflowCorruptsNextHeaderAndIsDetected(t *testing.T) {
	// The §3.5.1 shape at allocator level: writing past block p1's payload
	// tramples p2's header; integrity checking notices.
	a, m := newTestHeap(t, 4096)
	p1, _ := a.Alloc(16)
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckIntegrity(); err != nil {
		t.Fatalf("pristine heap reported corrupt: %v", err)
	}
	// Overflow p1 by 8 bytes: exactly the next header.
	if err := m.Write(p1.Add(16), []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	err := a.CheckIntegrity()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Errorf("CheckIntegrity = %v, want *CorruptError", err)
	}
}

func TestRedZoneDetectsOverflowOnFree(t *testing.T) {
	a, m := newTestHeap(t, 4096)
	a.EnableRedZones()
	p1, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	// Clean free passes.
	if err := a.CheckRedZones(); err != nil {
		t.Fatalf("pristine zones reported bad: %v", err)
	}
	// One byte past the requested size hits the guard.
	if err := m.WriteU8(p1.Add(16), 0x58); err != nil {
		t.Fatal(err)
	}
	var rz *RedZoneError
	if err := a.CheckRedZones(); !errors.As(err, &rz) {
		t.Errorf("CheckRedZones = %v, want *RedZoneError", err)
	}
	if err := a.Free(p1); !errors.As(err, &rz) {
		t.Errorf("Free = %v, want *RedZoneError", err)
	}
	if rz.Payload != p1 {
		t.Errorf("payload = %#x, want %#x", uint64(rz.Payload), uint64(p1))
	}
}

func TestRedZoneCleanLifecycle(t *testing.T) {
	a, m := newTestHeap(t, 4096)
	a.EnableRedZones()
	p, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	// Writing exactly the requested bytes is fine.
	if err := m.Memset(p, 0xaa, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatalf("clean free: %v", err)
	}
	// Zone bookkeeping is released with the block.
	if err := a.CheckRedZones(); err != nil {
		t.Errorf("zones after free: %v", err)
	}
}

func TestRedZoneOnlyAffectsNewAllocations(t *testing.T) {
	a, m := newTestHeap(t, 4096)
	old, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	a.EnableRedZones()
	// Pre-hardening blocks carry no zone: trampling past them is not
	// detected through the zone machinery.
	if err := m.WriteU8(old.Add(16), 0x58); err == nil {
		if err := a.CheckRedZones(); err != nil {
			t.Errorf("zone reported for unguarded block: %v", err)
		}
	}
}

func TestCoalesceToleratesCorruptRegion(t *testing.T) {
	// An unhardened free must not fail just because a *later* header was
	// trampled — strict validation is CheckIntegrity's job.
	a, m := newTestHeap(t, 4096)
	p1, _ := a.Alloc(16)
	p2, _ := a.Alloc(16)
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	// Trample p2's header (as the §3.5.1 overflow does).
	if err := m.Write(p2.Add(-8), []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err != nil {
		t.Errorf("free with downstream corruption failed: %v", err)
	}
	if err := a.CheckIntegrity(); err == nil {
		t.Error("strict integrity check missed the corruption")
	}
}

func TestNewErrors(t *testing.T) {
	m := &mem.Memory{}
	if _, err := New(m, 0x1000, 64); err == nil {
		t.Error("unmapped arena accepted")
	}
	if _, err := m.Map(mem.SegHeap, 0x1000, 4096, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, 0x1000, 8); err == nil {
		t.Error("tiny arena accepted")
	}
	if _, err := New(nil, 0x1000, 4096); err == nil {
		t.Error("nil memory accepted")
	}
}

func TestNewOnImage(t *testing.T) {
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewOnImage(img)
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Heap.Contains(p) {
		t.Errorf("allocation %#x outside heap segment", uint64(p))
	}
}

// Property: random alloc/free sequences never hand out overlapping live
// blocks, never corrupt the arena, and keep the ledger consistent.
func TestQuickAllocFreeInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		a, _ := newTestHeapQuick(8192)
		if a == nil {
			return false
		}
		live := make(map[mem.Addr]uint64)
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				n := uint64(op%200) + 1
				p, err := a.Alloc(n)
				if err != nil {
					continue // OOM is acceptable
				}
				// No overlap with any live block.
				for q, qs := range live {
					if p < q.Add(int64(qs)) && q < p.Add(int64(n)) {
						return false
					}
				}
				// A block that couldn't be split may be larger than the
				// rounded request; account the real payload size.
				got, err := a.SizeOf(p)
				if err != nil {
					return false
				}
				live[p] = got
			} else {
				for p := range live {
					if err := a.Free(p); err != nil {
						return false
					}
					delete(live, p)
					break
				}
			}
		}
		if err := a.CheckIntegrity(); err != nil {
			return false
		}
		var inUse uint64
		for _, s := range live {
			inUse += s
		}
		return a.Stats().InUse == inUse && a.Stats().LiveBlocks == uint64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTestHeapQuick(size uint64) (*Allocator, *mem.Memory) {
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegHeap, 0x10000, size, mem.PermRW); err != nil {
		return nil, nil
	}
	a, err := New(m, 0x10000, size)
	if err != nil {
		return nil, nil
	}
	return a, m
}

func TestCallocZeroes(t *testing.T) {
	a, m := newTestHeap(t, 4096)
	// Dirty a region, free it, then calloc over it.
	p, err := a.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Memset(p, 0xee, 32); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	cp, err := a.Calloc(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Read(cp, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want zero", i, v)
		}
	}
}

func TestReallocSemantics(t *testing.T) {
	a, m := newTestHeap(t, 4096)
	// Realloc(0, n) allocates.
	p, err := a.Realloc(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCString(p, "hello"); err != nil {
		t.Fatal(err)
	}
	// Shrink stays in place at block granularity.
	sp, err := a.Realloc(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp != p {
		t.Errorf("shrink moved the block: %#x -> %#x", uint64(p), uint64(sp))
	}
	// Block the adjacent space so growth must move.
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	np, err := a.Realloc(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	if np == p {
		t.Error("grow did not move despite blocked neighbour")
	}
	s, ok, err := m.ReadCString(np, 16)
	if err != nil || !ok || string(s) != "hello" {
		t.Errorf("payload not copied: %q ok=%v err=%v", s, ok, err)
	}
	// The old block was freed.
	if _, err := a.SizeOf(p); err == nil {
		t.Error("old block still allocated after realloc move")
	}
	// Invalid pointer errors.
	if _, err := a.Realloc(0x30, 8); err == nil {
		t.Error("realloc of junk pointer succeeded")
	}
}

// Property: realloc preserves the payload prefix and the ledger stays
// consistent across random grow/shrink sequences.
func TestQuickReallocPreservesPrefix(t *testing.T) {
	f := func(sizes []uint16) bool {
		a, m := newTestHeapQuick(32 << 10)
		if a == nil {
			return false
		}
		p, err := a.Alloc(8)
		if err != nil {
			return false
		}
		if err := m.Memset(p, 0xab, 8); err != nil {
			return false
		}
		cur := uint64(8)
		for _, sz := range sizes {
			n := uint64(sz%512) + 1
			np, err := a.Realloc(p, n)
			if err != nil {
				return true // OOM under fragmentation is acceptable
			}
			keep := cur
			if n < keep {
				keep = n
			}
			if keep > 8 {
				keep = 8
			}
			b, err := m.Read(np, keep)
			if err != nil {
				return false
			}
			for _, v := range b {
				if v != 0xab {
					return false
				}
			}
			p = np
			if rounded := roundPayload(n); rounded > cur {
				cur = rounded
			}
			if err := a.CheckIntegrity(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
