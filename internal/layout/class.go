package layout

import (
	"errors"
	"fmt"
)

// Field is a named data member of a class.
type Field struct {
	Name string
	Type Type
}

// Class describes a C++-style class: ordered non-virtual bases, ordered
// data members, and declared virtual methods. Build a class with NewClass
// followed by AddField/AddVirtual; definition errors (duplicate members,
// inheritance cycles, mutation after layout) are accumulated and reported
// by Of/Validate, so builder chains stay readable.
//
// Class implements Type so class types compose with arrays and pointers.
type Class struct {
	name     string
	bases    []*Class
	fields   []Field
	virtuals []string

	defErrs []error
	frozen  bool
	layouts map[string]*ClassLayout
}

// NewClass creates a class with the given direct bases, in inheritance
// declaration order.
func NewClass(name string, bases ...*Class) *Class {
	c := &Class{name: name, layouts: make(map[string]*ClassLayout)}
	for _, b := range bases {
		if b == nil {
			c.defErrs = append(c.defErrs, fmt.Errorf("layout: class %s: nil base", name))
			continue
		}
		c.bases = append(c.bases, b)
	}
	return c
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Bases returns the direct bases in declaration order.
func (c *Class) Bases() []*Class {
	out := make([]*Class, len(c.bases))
	copy(out, c.bases)
	return out
}

// Fields returns this class's own data members in declaration order.
func (c *Class) Fields() []Field {
	out := make([]Field, len(c.fields))
	copy(out, c.fields)
	return out
}

// Virtuals returns the virtual methods declared (or overridden) by this
// class, in declaration order.
func (c *Class) Virtuals() []string {
	out := make([]string, len(c.virtuals))
	copy(out, c.virtuals)
	return out
}

// AddField appends a data member. It returns c for chaining; errors
// (duplicate name, nil type, frozen class) surface from Of/Validate.
func (c *Class) AddField(name string, t Type) *Class {
	if c.frozen {
		c.defErrs = append(c.defErrs, fmt.Errorf("layout: class %s: AddField(%s) after layout", c.name, name))
		return c
	}
	if t == nil {
		c.defErrs = append(c.defErrs, fmt.Errorf("layout: class %s: field %s has nil type", c.name, name))
		return c
	}
	for _, f := range c.fields {
		if f.Name == name {
			c.defErrs = append(c.defErrs, fmt.Errorf("layout: class %s: duplicate field %s", c.name, name))
			return c
		}
	}
	c.fields = append(c.fields, Field{Name: name, Type: t})
	return c
}

// AddVirtual declares (or overrides) a virtual method. Declaring a virtual
// makes the class polymorphic, injecting a vtable pointer into its layout
// exactly as the paper describes in §3.8.2.
func (c *Class) AddVirtual(name string) *Class {
	if c.frozen {
		c.defErrs = append(c.defErrs, fmt.Errorf("layout: class %s: AddVirtual(%s) after layout", c.name, name))
		return c
	}
	for _, v := range c.virtuals {
		if v == name {
			c.defErrs = append(c.defErrs, fmt.Errorf("layout: class %s: duplicate virtual %s", c.name, name))
			return c
		}
	}
	c.virtuals = append(c.virtuals, name)
	return c
}

// IsPolymorphic reports whether the class (or any base) declares a virtual
// method, i.e. whether instances carry at least one vtable pointer.
func (c *Class) IsPolymorphic() bool {
	if len(c.virtuals) > 0 {
		return true
	}
	for _, b := range c.bases {
		if b.IsPolymorphic() {
			return true
		}
	}
	return false
}

// DerivesFrom reports whether base appears (transitively) among c's bases.
// It is not reflexive.
func (c *Class) DerivesFrom(base *Class) bool {
	for _, b := range c.bases {
		if b == base || b.DerivesFrom(base) {
			return true
		}
	}
	return false
}

// SameOrDerivesFrom reports whether c is base or derives from it — the
// compatibility relation a checked placement new enforces.
func (c *Class) SameOrDerivesFrom(base *Class) bool {
	return c == base || c.DerivesFrom(base)
}

// Validate reports accumulated definition errors for c and its bases,
// including inheritance cycles, without computing a layout.
func (c *Class) Validate() error {
	return c.validate(make(map[*Class]bool))
}

func (c *Class) validate(visiting map[*Class]bool) error {
	if visiting[c] {
		return fmt.Errorf("layout: inheritance cycle through class %s", c.name)
	}
	if len(c.defErrs) > 0 {
		return errors.Join(c.defErrs...)
	}
	visiting[c] = true
	defer delete(visiting, c)
	for _, b := range c.bases {
		if err := b.validate(visiting); err != nil {
			return fmt.Errorf("layout: class %s: %w", c.name, err)
		}
	}
	return nil
}

// Kind implements Type.
func (c *Class) Kind() Kind { return KindClass }

// Size implements Type. It panics if the class definition is invalid; use
// Of to obtain the error form.
func (c *Class) Size(m Model) uint64 {
	l, err := Of(c, m)
	if err != nil {
		panic(fmt.Sprintf("layout: Size(%s): %v", c.name, err))
	}
	return l.Size
}

// Align implements Type. It panics if the class definition is invalid; use
// Of to obtain the error form.
func (c *Class) Align(m Model) uint64 {
	l, err := Of(c, m)
	if err != nil {
		panic(fmt.Sprintf("layout: Align(%s): %v", c.name, err))
	}
	return l.Align
}

// String implements Type.
func (c *Class) String() string { return c.name }
