package layout_test

import (
	"fmt"

	"repro/internal/layout"
)

// The paper's running example (Listing 1) under the i386 data model: the
// overflow premise is sizeof(GradStudent) > sizeof(Student), with the
// overhang starting exactly at sizeof(Student).
func ExampleOf() {
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	sl, err := layout.Of(student, layout.ILP32i386)
	if err != nil {
		fmt.Println(err)
		return
	}
	gl, err := layout.Of(grad, layout.ILP32i386)
	if err != nil {
		fmt.Println(err)
		return
	}
	ssn, err := gl.FieldOffset("ssn")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sizeof(Student)=%d sizeof(GradStudent)=%d ssn at +%d overhang=%d\n",
		sl.Size, gl.Size, ssn.Offset, gl.Size-sl.Size)
	// Output:
	// sizeof(Student)=16 sizeof(GradStudent)=28 ssn at +16 overhang=12
}

// §3.8.2: declaring a virtual function injects the vtable pointer as "the
// first entry" of every instance, shifting every member down.
func ExampleClassLayout_Describe() {
	student := layout.NewClass("Student").
		AddVirtual("getInfo").
		AddField("gpa", layout.Double)
	l, err := layout.Of(student, layout.ILP32i386)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(l.Describe())
	// Output:
	// class Student: size=12 align=4 (ILP32-i386)
	//   +0    4    __vptr
	//   +4    8    double gpa (from Student)
}
