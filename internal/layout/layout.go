package layout

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// resolutions counts every from-scratch layout computation (cache
// misses of Of). It is the setup-cost sentinel: benchmark harnesses
// read it around a timed region to prove the region performs no layout
// resolution — e.g. the compiled dispatch loop, whose programs carry
// preresolved offsets, must leave the counter untouched.
var resolutions atomic.Uint64

// Resolutions returns the process-wide count of from-scratch layout
// computations. Memoized lookups (repeat Of calls on the same class
// and model) do not advance it.
func Resolutions() uint64 { return resolutions.Load() }

// BasePlacement records where a direct base subobject begins.
type BasePlacement struct {
	Class  *Class
	Offset uint64
}

// ResolvedField is a data member with its final offset from the start of
// the complete object, and the class that declared it.
type ResolvedField struct {
	Name     string
	Type     Type
	Offset   uint64
	Declared *Class
}

// ClassLayout is the computed object layout of a class under a data model.
type ClassLayout struct {
	Class *Class
	Model Model
	// Size is sizeof(T): member extent rounded up to Align (minimum 1).
	Size uint64
	// Align is alignof(T).
	Align uint64
	// VPtrOffsets are the offsets of vtable pointers within the object,
	// ascending. A single-inheritance polymorphic class has exactly one, at
	// offset 0 ("the first entry", §3.8.2); multiple inheritance can
	// produce several, matching the paper's note that "in case of multiple
	// inheritance, there are more than one vtable pointers".
	VPtrOffsets []uint64
	// Bases places each direct base subobject.
	Bases []BasePlacement
	// OwnFields places this class's own members (base members excluded).
	OwnFields []ResolvedField
}

// Of computes (and caches) the layout of c under model m.
func Of(c *Class, m Model) (*ClassLayout, error) {
	if c == nil {
		return nil, fmt.Errorf("layout: Of(nil class)")
	}
	if l, ok := c.layouts[m.Name]; ok {
		return l, nil
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	l, err := compute(c, m)
	if err != nil {
		return nil, err
	}
	resolutions.Add(1)
	c.frozen = true
	c.layouts[m.Name] = l
	return l, nil
}

// compute performs the simplified-Itanium layout described in the package
// documentation. Validation has already run, so base recursion terminates.
func compute(c *Class, m Model) (*ClassLayout, error) {
	l := &ClassLayout{Class: c, Model: m, Align: 1}
	var offset uint64

	// Inject an own vptr only when this class declares virtuals and no
	// direct base already carries one; otherwise the first polymorphic
	// base's vptr (at its subobject offset) is shared.
	basePoly := false
	for _, b := range c.bases {
		if b.IsPolymorphic() {
			basePoly = true
			break
		}
	}
	if len(c.virtuals) > 0 && !basePoly {
		l.VPtrOffsets = append(l.VPtrOffsets, 0)
		offset = m.PtrSize
		if m.PtrSize > l.Align {
			l.Align = m.PtrSize
		}
	}

	for _, b := range c.bases {
		bl, err := Of(b, m)
		if err != nil {
			return nil, fmt.Errorf("layout: class %s: base %s: %w", c.name, b.name, err)
		}
		offset = alignUp(offset, bl.Align)
		l.Bases = append(l.Bases, BasePlacement{Class: b, Offset: offset})
		for _, vo := range bl.VPtrOffsets {
			l.VPtrOffsets = append(l.VPtrOffsets, offset+vo)
		}
		if bl.Align > l.Align {
			l.Align = bl.Align
		}
		offset += bl.Size
	}

	for _, f := range c.fields {
		fa := f.Type.Align(m)
		fs := f.Type.Size(m)
		offset = alignUp(offset, fa)
		l.OwnFields = append(l.OwnFields, ResolvedField{
			Name: f.Name, Type: f.Type, Offset: offset, Declared: c,
		})
		if fa > l.Align {
			l.Align = fa
		}
		offset += fs
	}

	l.Size = alignUp(offset, l.Align)
	if l.Size == 0 {
		l.Size = 1 // empty classes occupy one byte, as in C++
	}
	sort.Slice(l.VPtrOffsets, func(i, j int) bool { return l.VPtrOffsets[i] < l.VPtrOffsets[j] })
	return l, nil
}

// HasVPtr reports whether instances carry at least one vtable pointer.
func (l *ClassLayout) HasVPtr() bool { return len(l.VPtrOffsets) > 0 }

// FieldOffset resolves a member by name, searching this class's own fields
// first and then base subobjects depth-first in declaration order. An
// unambiguous match in a base is returned with the base offset folded in.
// Two matches at the same depth are an ambiguity error, as in C++.
func (l *ClassLayout) FieldOffset(name string) (ResolvedField, error) {
	matches, err := l.findField(name)
	if err != nil {
		return ResolvedField{}, err
	}
	switch len(matches) {
	case 0:
		return ResolvedField{}, fmt.Errorf("layout: class %s has no member %q", l.Class.name, name)
	case 1:
		return matches[0], nil
	default:
		return ResolvedField{}, fmt.Errorf("layout: member %q is ambiguous in class %s", name, l.Class.name)
	}
}

// findField collects all candidate resolutions for name. A member declared
// by the class itself hides same-named base members, as in C++.
func (l *ClassLayout) findField(name string) ([]ResolvedField, error) {
	var matches []ResolvedField
	for _, f := range l.OwnFields {
		if f.Name == name {
			matches = append(matches, f)
		}
	}
	if len(matches) > 0 {
		return matches, nil
	}
	for _, bp := range l.Bases {
		bl, err := Of(bp.Class, l.Model)
		if err != nil {
			return nil, err
		}
		bms, err := bl.findField(name)
		if err != nil {
			return nil, err
		}
		for _, f := range bms {
			f.Offset += bp.Offset
			matches = append(matches, f)
		}
	}
	return matches, nil
}

// AllFields returns every data member of the complete object — base
// members first (recursively, in base declaration order), then own members
// — each with its offset from the start of the object.
func (l *ClassLayout) AllFields() ([]ResolvedField, error) {
	var out []ResolvedField
	for _, bp := range l.Bases {
		bl, err := Of(bp.Class, l.Model)
		if err != nil {
			return nil, err
		}
		bf, err := bl.AllFields()
		if err != nil {
			return nil, err
		}
		for _, f := range bf {
			f.Offset += bp.Offset
			out = append(out, f)
		}
	}
	out = append(out, l.OwnFields...)
	return out, nil
}

// BaseOffset returns the offset of the subobject for the given (possibly
// transitive) base class. It returns an error if base is not a base of the
// laid-out class or appears more than once (ambiguous).
func (l *ClassLayout) BaseOffset(base *Class) (uint64, error) {
	var offs []uint64
	var walk func(cl *ClassLayout, at uint64) error
	walk = func(cl *ClassLayout, at uint64) error {
		for _, bp := range cl.Bases {
			if bp.Class == base {
				offs = append(offs, at+bp.Offset)
			}
			bl, err := Of(bp.Class, cl.Model)
			if err != nil {
				return err
			}
			if err := walk(bl, at+bp.Offset); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(l, 0); err != nil {
		return 0, err
	}
	switch len(offs) {
	case 0:
		return 0, fmt.Errorf("layout: %s is not a base of %s", base.name, l.Class.name)
	case 1:
		return offs[0], nil
	default:
		return 0, fmt.Errorf("layout: base %s is ambiguous in %s", base.name, l.Class.name)
	}
}

// Describe renders a human-readable layout map, one line per vptr/field,
// used by the CLI tools to explain overflow geometry.
func (l *ClassLayout) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class %s: size=%d align=%d (%s)\n", l.Class.name, l.Size, l.Align, l.Model.Name)
	type row struct {
		off  uint64
		size uint64
		desc string
	}
	var rows []row
	for _, vo := range l.VPtrOffsets {
		rows = append(rows, row{vo, l.Model.PtrSize, "__vptr"})
	}
	fields, err := l.AllFields()
	if err == nil {
		for _, f := range fields {
			rows = append(rows, row{f.Offset, f.Type.Size(l.Model),
				fmt.Sprintf("%s %s (from %s)", f.Type, f.Name, f.Declared.name)})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].off < rows[j].off })
	for _, r := range rows {
		fmt.Fprintf(&sb, "  +%-4d %-4d %s\n", r.off, r.size, r.desc)
	}
	return sb.String()
}
