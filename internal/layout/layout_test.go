package layout

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperClasses builds the running example of the paper (Listing 1):
//
//	class Student { double gpa; int year, semester; };
//	class GradStudent : Student { int ssn[3]; };
func paperClasses() (student, grad *Class) {
	student = NewClass("Student").
		AddField("gpa", Double).
		AddField("year", Int).
		AddField("semester", Int)
	grad = NewClass("GradStudent", student).
		AddField("ssn", ArrayOf(Int, 3))
	return student, grad
}

func TestScalarSizes(t *testing.T) {
	tests := []struct {
		t         Type
		size32    uint64
		size64    uint64
		align32   uint64
		alignI386 uint64
	}{
		{Bool, 1, 1, 1, 1},
		{Char, 1, 1, 1, 1},
		{UChar, 1, 1, 1, 1},
		{Short, 2, 2, 2, 2},
		{UShort, 2, 2, 2, 2},
		{Int, 4, 4, 4, 4},
		{UInt, 4, 4, 4, 4},
		{Long, 4, 8, 4, 4},
		{ULong, 4, 8, 4, 4},
		{Float, 4, 4, 4, 4},
		{Double, 8, 8, 8, 4},
		{PtrTo(Int), 4, 8, 4, 4},
		{PtrTo(nil), 4, 8, 4, 4},
	}
	for _, tt := range tests {
		t.Run(tt.t.String(), func(t *testing.T) {
			if got := tt.t.Size(ILP32); got != tt.size32 {
				t.Errorf("ILP32 size = %d, want %d", got, tt.size32)
			}
			if got := tt.t.Size(LP64); got != tt.size64 {
				t.Errorf("LP64 size = %d, want %d", got, tt.size64)
			}
			if got := tt.t.Align(ILP32); got != tt.align32 {
				t.Errorf("ILP32 align = %d, want %d", got, tt.align32)
			}
			if got := tt.t.Align(ILP32i386); got != tt.alignI386 {
				t.Errorf("i386 align = %d, want %d", got, tt.alignI386)
			}
		})
	}
}

func TestArrayType(t *testing.T) {
	a := ArrayOf(Int, 3)
	if a.Size(ILP32) != 12 || a.Align(ILP32) != 4 {
		t.Errorf("int[3]: size=%d align=%d", a.Size(ILP32), a.Align(ILP32))
	}
	if a.String() != "int[3]" {
		t.Errorf("String = %q", a.String())
	}
	d := ArrayOf(Double, 2)
	if d.Align(ILP32) != 8 || d.Align(ILP32i386) != 4 {
		t.Errorf("double[2] align: natural=%d i386=%d", d.Align(ILP32), d.Align(ILP32i386))
	}
}

func TestScalarPredicates(t *testing.T) {
	if !Int.IsSigned() || UInt.IsSigned() || Double.IsSigned() {
		t.Error("IsSigned misclassified")
	}
	if !Char.IsInteger() || Float.IsInteger() || !Bool.IsInteger() {
		t.Error("IsInteger misclassified")
	}
}

func TestPaperStudentLayoutILP32(t *testing.T) {
	student, grad := paperClasses()
	sl, err := Of(student, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	// double at 0, year at 8, semester at 12, size 16, align 8.
	if sl.Size != 16 || sl.Align != 8 {
		t.Fatalf("Student: size=%d align=%d, want 16/8", sl.Size, sl.Align)
	}
	wantOffsets := map[string]uint64{"gpa": 0, "year": 8, "semester": 12}
	for name, want := range wantOffsets {
		f, err := sl.FieldOffset(name)
		if err != nil {
			t.Fatalf("FieldOffset(%s): %v", name, err)
		}
		if f.Offset != want {
			t.Errorf("%s offset = %d, want %d", name, f.Offset, want)
		}
	}

	gl, err := Of(grad, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	// Student subobject at 0 (16 bytes), ssn[3] at 16..28, tail pad to 32.
	if gl.Size != 32 || gl.Align != 8 {
		t.Fatalf("GradStudent: size=%d align=%d, want 32/8", gl.Size, gl.Align)
	}
	ssn, err := gl.FieldOffset("ssn")
	if err != nil {
		t.Fatal(err)
	}
	if ssn.Offset != 16 {
		t.Errorf("ssn offset = %d, want 16", ssn.Offset)
	}
	// The overflow premise of the whole paper: sizeof(GradStudent) >
	// sizeof(Student), and the overhang starts exactly at sizeof(Student).
	if gl.Size <= sl.Size {
		t.Error("GradStudent does not overhang Student")
	}
	gpa, err := gl.FieldOffset("gpa") // inherited member resolves through base
	if err != nil {
		t.Fatal(err)
	}
	if gpa.Offset != 0 || gpa.Declared != student {
		t.Errorf("inherited gpa: offset=%d declared=%v", gpa.Offset, gpa.Declared)
	}
}

func TestPaperStudentLayoutI386(t *testing.T) {
	student, grad := paperClasses()
	sl, err := Of(student, ILP32i386)
	if err != nil {
		t.Fatal(err)
	}
	// alignof(double)==4: still 16 bytes but align 4.
	if sl.Size != 16 || sl.Align != 4 {
		t.Errorf("Student i386: size=%d align=%d, want 16/4", sl.Size, sl.Align)
	}
	gl, err := Of(grad, ILP32i386)
	if err != nil {
		t.Fatal(err)
	}
	if gl.Size != 28 { // no tail padding under align 4
		t.Errorf("GradStudent i386: size=%d, want 28", gl.Size)
	}
}

func TestPolymorphicVPtrAtOffsetZero(t *testing.T) {
	// §3.8.2: adding virtual getInfo() to both classes puts *__vptr at
	// offset 0 of every instance, shifting gpa to offset 8 (ILP32, double
	// aligned 8: vptr 0..4, pad 4..8, gpa 8..16).
	student := NewClass("Student").
		AddVirtual("getInfo").
		AddField("gpa", Double).
		AddField("year", Int).
		AddField("semester", Int)
	grad := NewClass("GradStudent", student).
		AddVirtual("getInfo"). // override
		AddField("ssn", ArrayOf(Int, 3))

	sl, err := Of(student, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.HasVPtr() || len(sl.VPtrOffsets) != 1 || sl.VPtrOffsets[0] != 0 {
		t.Fatalf("Student vptrs = %v, want [0]", sl.VPtrOffsets)
	}
	gpa, err := sl.FieldOffset("gpa")
	if err != nil {
		t.Fatal(err)
	}
	if gpa.Offset != 8 {
		t.Errorf("gpa offset = %d, want 8 (after vptr+pad)", gpa.Offset)
	}
	if sl.Size != 24 {
		t.Errorf("Student size = %d, want 24", sl.Size)
	}

	gl, err := Of(grad, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	// Derived shares the base vptr: still exactly one, at 0.
	if len(gl.VPtrOffsets) != 1 || gl.VPtrOffsets[0] != 0 {
		t.Fatalf("GradStudent vptrs = %v, want [0]", gl.VPtrOffsets)
	}
	if gl.Size != 40 { // 24 base + 12 ssn -> 36, pad to 40
		t.Errorf("GradStudent size = %d, want 40", gl.Size)
	}
}

func TestMultipleInheritanceTwoVPtrs(t *testing.T) {
	// Two polymorphic bases produce two vptrs, as §3.8.2 notes.
	a := NewClass("A").AddVirtual("fa").AddField("x", Int)
	b := NewClass("B").AddVirtual("fb").AddField("y", Int)
	c := NewClass("C", a, b).AddField("z", Int)

	cl, err := Of(c, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.VPtrOffsets) != 2 {
		t.Fatalf("vptrs = %v, want two", cl.VPtrOffsets)
	}
	// A at 0 (vptr 0, x 4, size 8); B at 8 (vptr 8, y 12); z at 16.
	if cl.VPtrOffsets[0] != 0 || cl.VPtrOffsets[1] != 8 {
		t.Errorf("vptr offsets = %v, want [0 8]", cl.VPtrOffsets)
	}
	z, err := cl.FieldOffset("z")
	if err != nil {
		t.Fatal(err)
	}
	if z.Offset != 16 {
		t.Errorf("z offset = %d, want 16", z.Offset)
	}
	boff, err := cl.BaseOffset(b)
	if err != nil {
		t.Fatal(err)
	}
	if boff != 8 {
		t.Errorf("B offset = %d, want 8", boff)
	}
}

func TestMultipleInheritanceFieldResolution(t *testing.T) {
	a := NewClass("A").AddField("x", Int)
	b := NewClass("B").AddField("x", Int)
	c := NewClass("C", a, b)
	cl, err := Of(c, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FieldOffset("x"); err == nil {
		t.Error("ambiguous member lookup succeeded")
	}
	// Own member hides the base members.
	d := NewClass("D", a, b).AddField("x", Long)
	dl, err := Of(d, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	f, err := dl.FieldOffset("x")
	if err != nil {
		t.Fatal(err)
	}
	if f.Declared != d {
		t.Errorf("own member did not hide base members: declared by %v", f.Declared)
	}
}

func TestEmptyClassOccupiesOneByte(t *testing.T) {
	e := NewClass("Empty")
	l, err := Of(e, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 1 || l.Align != 1 {
		t.Errorf("empty class: size=%d align=%d, want 1/1", l.Size, l.Align)
	}
}

func TestLP64Layout(t *testing.T) {
	student, grad := paperClasses()
	sl, err := Of(student, LP64)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Size != 16 {
		t.Errorf("Student LP64 size = %d, want 16", sl.Size)
	}
	gl, err := Of(grad, LP64)
	if err != nil {
		t.Fatal(err)
	}
	if gl.Size != 32 {
		t.Errorf("GradStudent LP64 size = %d, want 32", gl.Size)
	}
	poly := NewClass("P").AddVirtual("f").AddField("c", Char)
	pl, err := Of(poly, LP64)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Size != 16 { // 8 vptr + 1 char -> pad to 16
		t.Errorf("P LP64 size = %d, want 16", pl.Size)
	}
}

func TestDefinitionErrors(t *testing.T) {
	t.Run("duplicate field", func(t *testing.T) {
		c := NewClass("C").AddField("x", Int).AddField("x", Int)
		if _, err := Of(c, ILP32); err == nil {
			t.Error("want error")
		}
	})
	t.Run("nil field type", func(t *testing.T) {
		c := NewClass("C").AddField("x", nil)
		if _, err := Of(c, ILP32); err == nil {
			t.Error("want error")
		}
	})
	t.Run("nil base", func(t *testing.T) {
		c := NewClass("C", nil)
		if _, err := Of(c, ILP32); err == nil {
			t.Error("want error")
		}
	})
	t.Run("duplicate virtual", func(t *testing.T) {
		c := NewClass("C").AddVirtual("f").AddVirtual("f")
		if _, err := Of(c, ILP32); err == nil {
			t.Error("want error")
		}
	})
	t.Run("base definition error propagates", func(t *testing.T) {
		b := NewClass("B").AddField("x", nil)
		c := NewClass("C", b)
		if _, err := Of(c, ILP32); err == nil {
			t.Error("want error")
		}
	})
}

func TestMutationAfterLayoutFails(t *testing.T) {
	c := NewClass("C").AddField("x", Int)
	if _, err := Of(c, ILP32); err != nil {
		t.Fatal(err)
	}
	c.AddField("y", Int)
	if err := c.Validate(); err == nil {
		t.Error("mutation after layout not reported")
	}
}

func TestInheritanceCycleDetected(t *testing.T) {
	a := NewClass("A")
	b := NewClass("B", a)
	// Force a cycle through the unexported field (simulating a buggy
	// construction path).
	a.bases = append(a.bases, b)
	if err := a.Validate(); err == nil {
		t.Error("cycle not detected")
	}
	if _, err := Of(a, ILP32); err == nil {
		t.Error("Of succeeded on cyclic class")
	}
}

func TestDerivesFrom(t *testing.T) {
	a := NewClass("A")
	b := NewClass("B", a)
	c := NewClass("C", b)
	x := NewClass("X")
	if !c.DerivesFrom(a) || !c.DerivesFrom(b) || !b.DerivesFrom(a) {
		t.Error("transitive derivation not detected")
	}
	if a.DerivesFrom(c) || c.DerivesFrom(x) || a.DerivesFrom(a) {
		t.Error("false derivation")
	}
	if !a.SameOrDerivesFrom(a) || !c.SameOrDerivesFrom(a) || a.SameOrDerivesFrom(c) {
		t.Error("SameOrDerivesFrom wrong")
	}
}

func TestAllFieldsOrderAndOffsets(t *testing.T) {
	student, grad := paperClasses()
	_ = student
	gl, err := Of(grad, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	fields, err := gl.AllFields()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name
	}
	want := []string{"gpa", "year", "semester", "ssn"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("field order = %v, want %v", names, want)
	}
	// Offsets strictly ascending and non-overlapping.
	for i := 1; i < len(fields); i++ {
		prevEnd := fields[i-1].Offset + fields[i-1].Type.Size(ILP32)
		if fields[i].Offset < prevEnd {
			t.Errorf("field %s overlaps %s", fields[i].Name, fields[i-1].Name)
		}
	}
}

func TestBaseOffsetErrors(t *testing.T) {
	a := NewClass("A").AddField("x", Int)
	c := NewClass("C", a, a) // diamond-ish: same base twice -> ambiguous
	cl, err := Of(c, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.BaseOffset(a); err == nil {
		t.Error("ambiguous base lookup succeeded")
	}
	x := NewClass("X")
	if _, err := cl.BaseOffset(x); err == nil {
		t.Error("non-base lookup succeeded")
	}
}

func TestDescribe(t *testing.T) {
	student := NewClass("Student").
		AddVirtual("getInfo").
		AddField("gpa", Double)
	l, err := Of(student, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Describe()
	for _, want := range []string{"class Student", "__vptr", "double gpa"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q:\n%s", want, s)
		}
	}
}

func TestLayoutCached(t *testing.T) {
	c := NewClass("C").AddField("x", Int)
	l1, err := Of(c, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Of(c, ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("layout not cached")
	}
	l3, err := Of(c, LP64)
	if err != nil {
		t.Fatal(err)
	}
	if l3 == l1 {
		t.Error("distinct models share a layout")
	}
}

// Property: for randomly composed classes, layout invariants hold:
// align divides size (or size==1 for empty), every field fits inside the
// object, fields don't overlap, and field offsets are aligned.
func TestQuickLayoutInvariants(t *testing.T) {
	scalars := []Type{Bool, Char, Short, Int, UInt, Long, Float, Double, PtrTo(Int)}
	f := func(picks []uint8, arrLen uint8, inherit bool, virtual bool) bool {
		if len(picks) > 12 {
			picks = picks[:12]
		}
		base := NewClass("Qbase").AddField("b0", Int)
		var cls *Class
		if inherit {
			cls = NewClass("Q", base)
		} else {
			cls = NewClass("Q")
		}
		if virtual {
			cls.AddVirtual("vf")
		}
		for i, p := range picks {
			ty := scalars[int(p)%len(scalars)]
			if p%7 == 0 {
				ty = ArrayOf(ty, uint64(arrLen%5)+1)
			}
			cls.AddField(fieldName(i), ty)
		}
		for _, m := range []Model{ILP32, ILP32i386, LP64} {
			l, err := Of(cls, m)
			if err != nil {
				return false
			}
			if l.Size == 0 || l.Align == 0 {
				return false
			}
			if l.Size != 1 && l.Size%l.Align != 0 {
				return false
			}
			fields, err := l.AllFields()
			if err != nil {
				return false
			}
			var prevEnd uint64
			for _, fd := range fields {
				if fd.Offset%fd.Type.Align(m) != 0 {
					return false
				}
				if fd.Offset < prevEnd {
					return false
				}
				prevEnd = fd.Offset + fd.Type.Size(m)
				if prevEnd > l.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func fieldName(i int) string { return "f" + string(rune('a'+i)) }

// Property: a derived class is always at least as large as each of its
// bases — the premise of every object-overflow attack in the paper.
func TestQuickDerivedNeverSmallerThanBase(t *testing.T) {
	scalars := []Type{Char, Int, Double, PtrTo(nil)}
	f := func(basePicks, derivedPicks []uint8) bool {
		if len(basePicks) > 8 {
			basePicks = basePicks[:8]
		}
		if len(derivedPicks) > 8 {
			derivedPicks = derivedPicks[:8]
		}
		base := NewClass("B")
		for i, p := range basePicks {
			base.AddField(fieldName(i), scalars[int(p)%len(scalars)])
		}
		derived := NewClass("D", base)
		for i, p := range derivedPicks {
			derived.AddField(fieldName(i), scalars[int(p)%len(scalars)])
		}
		for _, m := range []Model{ILP32, LP64} {
			bl, err := Of(base, m)
			if err != nil {
				return false
			}
			dl, err := Of(derived, m)
			if err != nil {
				return false
			}
			if dl.Size < bl.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
