// Package layout implements a C++-style type system and object layout
// engine: scalar types, pointers, arrays, and classes with single and
// multiple inheritance, virtual-table pointers, natural alignment and
// padding. It computes the sizeof/offset arithmetic that every attack in
// the paper depends on — e.g. that sizeof(GradStudent) exceeds
// sizeof(Student) by exactly the ssn[3] array plus padding, and that the
// vtable pointer occupies offset 0 of a polymorphic object (§3.8.2).
//
// The layout algorithm is a simplified Itanium C++ ABI: non-virtual bases
// laid out in declaration order, a vptr injected at offset 0 of the
// primary polymorphic path, fields at naturally aligned offsets, and tail
// padding to the class alignment. Empty classes occupy one byte.
package layout

// Model is a data model: the widths and alignments of fundamental types.
// The paper's testbed is 32-bit Ubuntu 10.04 ("the size of each of the
// addresses ... is same as the size of an int (4 bytes)"), modelled by
// ILP32. LP64 is provided to show the same attacks on a 64-bit layout.
type Model struct {
	Name     string
	PtrSize  uint64
	IntSize  uint64
	LongSize uint64
	// DoubleAlign is alignof(double). Natural alignment is 8; strict i386
	// gcc historically used 4 inside structs. Both are supported so the
	// §3.7.2 padding discussion can be explored under either rule.
	DoubleAlign uint64
}

// ILP32 models the paper's 32-bit testbed with natural double alignment.
var ILP32 = Model{Name: "ILP32", PtrSize: 4, IntSize: 4, LongSize: 4, DoubleAlign: 8}

// ILP32i386 models strict gcc/i386 struct layout (alignof(double)==4).
var ILP32i386 = Model{Name: "ILP32-i386", PtrSize: 4, IntSize: 4, LongSize: 4, DoubleAlign: 4}

// LP64 models a 64-bit Linux data model.
var LP64 = Model{Name: "LP64", PtrSize: 8, IntSize: 4, LongSize: 8, DoubleAlign: 8}

// align rounds v up to the next multiple of a (a must be a power of two or
// any positive value; generic round-up is used).
func alignUp(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	rem := v % a
	if rem == 0 {
		return v
	}
	return v + a - rem
}
