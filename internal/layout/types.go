package layout

import "fmt"

// Kind discriminates the categories of types.
type Kind int

// Type kinds.
const (
	KindBool Kind = iota + 1
	KindChar
	KindUChar
	KindShort
	KindUShort
	KindInt
	KindUInt
	KindLong
	KindULong
	KindFloat
	KindDouble
	KindPtr
	KindArray
	KindClass
)

var kindNames = map[Kind]string{
	KindBool: "bool", KindChar: "char", KindUChar: "unsigned char",
	KindShort: "short", KindUShort: "unsigned short",
	KindInt: "int", KindUInt: "unsigned int",
	KindLong: "long", KindULong: "unsigned long",
	KindFloat: "float", KindDouble: "double",
	KindPtr: "ptr", KindArray: "array", KindClass: "class",
}

// String returns the C++ spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Type is a C++-style type with model-dependent size and alignment.
type Type interface {
	Kind() Kind
	Size(m Model) uint64
	Align(m Model) uint64
	String() string
}

// Scalar is a fundamental type.
type Scalar struct{ kind Kind }

// The fundamental types.
var (
	Bool   = Scalar{KindBool}
	Char   = Scalar{KindChar}
	UChar  = Scalar{KindUChar}
	Short  = Scalar{KindShort}
	UShort = Scalar{KindUShort}
	Int    = Scalar{KindInt}
	UInt   = Scalar{KindUInt}
	Long   = Scalar{KindLong}
	ULong  = Scalar{KindULong}
	Float  = Scalar{KindFloat}
	Double = Scalar{KindDouble}
)

// Kind implements Type.
func (s Scalar) Kind() Kind { return s.kind }

// Size implements Type.
func (s Scalar) Size(m Model) uint64 {
	switch s.kind {
	case KindBool, KindChar, KindUChar:
		return 1
	case KindShort, KindUShort:
		return 2
	case KindInt, KindUInt, KindFloat:
		return m.IntSize
	case KindLong, KindULong:
		return m.LongSize
	case KindDouble:
		return 8
	default:
		panic(fmt.Sprintf("layout: Scalar with non-scalar kind %v", s.kind))
	}
}

// Align implements Type. Scalars are naturally aligned except double,
// whose alignment is model-dependent (see Model.DoubleAlign).
func (s Scalar) Align(m Model) uint64 {
	if s.kind == KindDouble {
		return m.DoubleAlign
	}
	return s.Size(m)
}

// String implements Type.
func (s Scalar) String() string { return s.kind.String() }

// IsSigned reports whether the scalar is a signed integer type.
func (s Scalar) IsSigned() bool {
	switch s.kind {
	case KindChar, KindShort, KindInt, KindLong:
		return true
	default:
		return false
	}
}

// IsInteger reports whether the scalar is an integer (or bool/char) type.
func (s Scalar) IsInteger() bool {
	switch s.kind {
	case KindFloat, KindDouble:
		return false
	default:
		return true
	}
}

// Ptr is a pointer type.
type Ptr struct{ Elem Type }

// PtrTo returns a pointer type to elem. elem may be nil for void*.
func PtrTo(elem Type) Ptr { return Ptr{Elem: elem} }

// Kind implements Type.
func (p Ptr) Kind() Kind { return KindPtr }

// Size implements Type.
func (p Ptr) Size(m Model) uint64 { return m.PtrSize }

// Align implements Type.
func (p Ptr) Align(m Model) uint64 { return m.PtrSize }

// String implements Type.
func (p Ptr) String() string {
	if p.Elem == nil {
		return "void*"
	}
	return p.Elem.String() + "*"
}

// Array is a fixed-length array type.
type Array struct {
	Elem Type
	Len  uint64
}

// ArrayOf returns the type elem[n].
func ArrayOf(elem Type, n uint64) Array { return Array{Elem: elem, Len: n} }

// Kind implements Type.
func (a Array) Kind() Kind { return KindArray }

// Size implements Type.
func (a Array) Size(m Model) uint64 { return a.Elem.Size(m) * a.Len }

// Align implements Type.
func (a Array) Align(m Model) uint64 { return a.Elem.Align(m) }

// String implements Type.
func (a Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
