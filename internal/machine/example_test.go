package machine_test

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/stackm"
)

// A complete §3.6.1-style attack against a simulated process: the
// GradStudent placed over the local stud reaches the frame's return
// address, and the epilogue dispatches the hijacked return onto a
// privileged function.
func Example() {
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	p, err := machine.New(machine.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	shell, err := p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "stud", Type: student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		l, err := f.Local("stud")
		if err != nil {
			return err
		}
		gs, err := p.Construct(grad, l.Addr) // new (&stud) GradStudent()
		if err != nil {
			return err
		}
		ssnBase, err := gs.FieldAddr("ssn")
		if err != nil {
			return err
		}
		k := f.RetSlot.Diff(ssnBase) / 4 // the §3.6.1 index arithmetic
		return gs.SetIndex("ssn", k, int64(shell.Addr))
	}); err != nil {
		fmt.Println(err)
		return
	}
	if err := p.Call("addStudent"); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("privileged call:", p.HasEvent(machine.EvPrivilegedCall))
	// Output:
	// privileged call: true
}

// StackGuard detects the linear smash and aborts the process.
func Example_stackGuard() {
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))

	p, err := machine.New(machine.Options{StackGuard: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := p.DefineFunc("addStudent", []stackm.LocalSpec{
		{Name: "stud", Type: student},
	}, func(p *machine.Process, f *stackm.Frame) error {
		l, err := f.Local("stud")
		if err != nil {
			return err
		}
		gs, err := p.Construct(grad, l.Addr)
		if err != nil {
			return err
		}
		for i := int64(0); i < 3; i++ { // spray: tramples the canary
			if err := gs.SetIndex("ssn", i, 0x41414141); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		fmt.Println(err)
		return
	}
	err = p.Call("addStudent")
	fmt.Println(err)
	// Output:
	// machine: process aborted (canary-abort): *** stack smashing detected ***
}
