package machine

import (
	"bytes"
	"fmt"

	"repro/internal/mem"
	"repro/internal/stackm"
)

// Body is the native implementation of a simulated function. It receives
// the process and its own activation frame.
type Body func(p *Process, f *stackm.Frame) error

// Func is a function in the simulated text segment.
type Func struct {
	Name string
	Addr mem.Addr
	// Privileged marks attack-worthy targets (the "method that makes a
	// system call in privileged mode" of §3.6.2).
	Privileged bool
	// Locals declares the frame layout of the function.
	Locals []stackm.LocalSpec
	Body   Body
}

const funcSpacing = 16

// DefineFunc registers a function, assigning it a text address.
func (p *Process) DefineFunc(name string, locals []stackm.LocalSpec, body Body) (*Func, error) {
	return p.defineFunc(name, locals, body, false)
}

// DefinePrivilegedFunc registers a privileged function — an arc-injection
// target whose invocation the experiments treat as full compromise.
func (p *Process) DefinePrivilegedFunc(name string, locals []stackm.LocalSpec, body Body) (*Func, error) {
	return p.defineFunc(name, locals, body, true)
}

func (p *Process) defineFunc(name string, locals []stackm.LocalSpec, body Body, priv bool) (*Func, error) {
	if name == "" {
		return nil, fmt.Errorf("machine: empty function name")
	}
	if _, ok := p.funcs[name]; ok {
		return nil, fmt.Errorf("machine: function %q already defined", name)
	}
	if p.textCur.Add(funcSpacing) > p.Img.Text.End() {
		return nil, fmt.Errorf("machine: text segment full defining %q", name)
	}
	f := &Func{Name: name, Addr: p.textCur, Privileged: priv, Locals: locals, Body: body}
	p.textCur = p.textCur.Add(funcSpacing)
	p.funcs[name] = f
	p.funcAt[f.Addr] = f
	return f, nil
}

// FuncAddr returns the text address of a defined function.
func (p *Process) FuncAddr(name string) (mem.Addr, error) {
	f, ok := p.funcs[name]
	if !ok {
		return 0, fmt.Errorf("machine: function %q not defined", name)
	}
	return f.Addr, nil
}

// FuncAt returns the function at a text address, if any.
func (p *Process) FuncAt(addr mem.Addr) (*Func, bool) {
	f, ok := p.funcAt[addr]
	return f, ok
}

// retSite is the synthetic return address stored for top-level calls; it
// sits at the very start of the text cursor range and is never a function.
func (p *Process) retSite() mem.Addr { return p.Img.Text.Base.Add(0x40) }

// Call invokes a defined function: push a frame (return address, optional
// saved FP and canary, locals), run the body, then execute the epilogue.
//
// The epilogue is where every §3.6 stack attack culminates:
//
//  1. StackGuard verifies the canary and aborts on mismatch.
//  2. The shadow stack (if enabled) compares the on-stack return address
//     with the protected copy and aborts on mismatch.
//  3. A modified return address is dispatched: registered function → arc
//     injection; attacker bytes on an executable page → code injection;
//     non-executable page → NX fault; anything else → segfault.
func (p *Process) Call(name string) error {
	f, ok := p.funcs[name]
	if !ok {
		return fmt.Errorf("machine: call to undefined function %q", name)
	}
	if f.Body == nil {
		return fmt.Errorf("machine: function %q has no body", name)
	}
	ret := p.retSite()
	frame, err := p.Stack.Push(f.Name, ret, f.Locals)
	if err != nil {
		return fmt.Errorf("machine: calling %s: %w", name, err)
	}
	if p.opts.ShadowStack {
		p.shadow = append(p.shadow, ret)
	}
	p.record(EvCall, f.Addr, "%s()", f.Name)
	p.poisonFrameControl(frame)

	if err := f.Body(p, frame); err != nil {
		// The body crashed (e.g. a wild dereference): surface the fault
		// without running the epilogue, like a mid-function SIGSEGV. A
		// guard fault is the red-zone instrumentation catching an
		// overflow at the offending write; a shadow fault is the
		// byte-granular sanitizer rejecting a store before it landed.
		if flt, isFault := mem.IsFault(err); isFault {
			switch flt.Kind {
			case mem.FaultGuard:
				p.record(EvGuardAbort, flt.Addr, "%s: %v", f.Name, err)
				return &AbortError{Kind: EvGuardAbort, Reason: err.Error()}
			case mem.FaultShadow:
				p.record(EvShadowViolation, flt.Addr, "%s: %v", f.Name, err)
				return &AbortError{Kind: EvShadowViolation, Reason: err.Error()}
			}
			p.record(EvSegfault, 0, "%s: %v", f.Name, err)
			return &AbortError{Kind: EvSegfault, Reason: err.Error()}
		}
		return err
	}
	return p.returnFrom(f)
}

func (p *Process) returnFrom(f *Func) error {
	frame := p.Stack.Current()
	res, err := p.Stack.Pop()
	if err != nil {
		return fmt.Errorf("machine: returning from %s: %w", f.Name, err)
	}
	// The frame's storage is dead after the pop: clear any shadow
	// poison over it so the next frame starts clean.
	p.unpoisonFrame(frame)
	if p.opts.StackGuard && !res.CanaryOK {
		p.record(EvCanaryAbort, res.Ret, "%s: stack smashing detected (canary %#x)", f.Name, res.CanaryFound)
		return &AbortError{Kind: EvCanaryAbort, Reason: "*** stack smashing detected ***"}
	}
	var shadowRet mem.Addr
	if p.opts.ShadowStack {
		if len(p.shadow) == 0 {
			return fmt.Errorf("machine: shadow stack underflow in %s", f.Name)
		}
		shadowRet = p.shadow[len(p.shadow)-1]
		p.shadow = p.shadow[:len(p.shadow)-1]
		if res.Ret != shadowRet {
			p.record(EvShadowAbort, res.Ret, "%s: return address %#x != shadow copy %#x",
				f.Name, uint64(res.Ret), uint64(shadowRet))
			return &AbortError{Kind: EvShadowAbort, Reason: "return address mismatch with shadow stack"}
		}
	}
	if res.RetModified {
		p.record(EvHijackedReturn, res.Ret, "%s returns to %#x", f.Name, uint64(res.Ret))
		return p.execAddr(res.Ret, "hijacked return from "+f.Name)
	}
	p.record(EvReturn, res.Ret, "%s", f.Name)
	return nil
}

// Shellcode is the attacker payload pattern recognised by the dispatcher.
// (The classic setuid+execve stub begins 0x31 0xc0; the tail marks the
// simulated "spawn a shell" semantic.)
var Shellcode = []byte{0x31, 0xc0, 0x50, 0x68, '/', '/', 's', 'h', 0x68, '/', 'b', 'i', 'n'}

// WriteShellcode deposits the payload at addr (typically inside a stack
// local, as in §3.6.2).
func (p *Process) WriteShellcode(addr mem.Addr) error {
	return p.Mem.Write(addr, Shellcode)
}

// execAddr models a control transfer to an arbitrary address.
func (p *Process) execAddr(addr mem.Addr, why string) error {
	if f, ok := p.funcAt[addr]; ok {
		p.record(EvArcInjection, addr, "%s lands on %s()", why, f.Name)
		if f.Privileged {
			p.record(EvPrivilegedCall, addr, "%s() executes in privileged mode", f.Name)
		}
		// The landed-on function "runs"; its body is not re-entered with a
		// frame (there was no call), matching a bare jmp.
		return nil
	}
	seg := p.Mem.FindSegment(addr)
	if seg == nil {
		p.record(EvSegfault, addr, "%s jumps to unmapped %#x", why, uint64(addr))
		return &AbortError{Kind: EvSegfault, Reason: fmt.Sprintf("jump to unmapped address %#x", uint64(addr))}
	}
	if seg.Perm&mem.PermExec == 0 {
		p.record(EvNXViolation, addr, "%s jumps into non-executable %s segment", why, seg.Kind)
		return &AbortError{Kind: EvNXViolation, Reason: fmt.Sprintf("NX violation executing %s at %#x", seg.Kind, uint64(addr))}
	}
	b, err := p.Mem.Read(addr, uint64(len(Shellcode)))
	if err == nil && bytes.Equal(b, Shellcode) {
		p.record(EvCodeInjection, addr, "%s executes injected shellcode: shell spawned", why)
		return nil
	}
	p.record(EvSegfault, addr, "%s executes garbage at %#x (illegal instruction)", why, uint64(addr))
	return &AbortError{Kind: EvSegfault, Reason: fmt.Sprintf("illegal instruction at %#x", uint64(addr))}
}

// ExecAddr exposes control transfer for function-pointer scenarios
// (§3.9): calling through a corrupted pointer is the same dispatch as a
// corrupted return.
func (p *Process) ExecAddr(addr mem.Addr, why string) error {
	if addr == mem.NullAddr {
		p.record(EvSegfault, addr, "%s calls null pointer", why)
		return &AbortError{Kind: EvSegfault, Reason: "call through null pointer"}
	}
	return p.execAddr(addr, why)
}
