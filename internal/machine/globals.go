package machine

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/object"
)

// Global is a variable in the data or bss segment.
type Global struct {
	Name string
	Type layout.Type
	Addr mem.Addr
}

// End returns the first address past the global.
func (g *Global) End(m layout.Model) mem.Addr { return g.Addr.Add(int64(g.Type.Size(m))) }

// DefineGlobal allocates a global of the given type. Initialised globals
// go to .data, uninitialised to .bss, exactly as the paper notes for
// Listing 11 ("precisely in the bss area as they are not initialized").
// Successive definitions are adjacent modulo alignment, which is what
// makes stud1 overflow into stud2.
func (p *Process) DefineGlobal(name string, t layout.Type, initialised bool) (*Global, error) {
	if name == "" {
		return nil, fmt.Errorf("machine: empty global name")
	}
	if t == nil {
		return nil, fmt.Errorf("machine: global %q has nil type", name)
	}
	if _, ok := p.globalBy[name]; ok {
		return nil, fmt.Errorf("machine: global %q already defined", name)
	}
	cur, seg := &p.bssCur, p.Img.BSS
	if initialised {
		cur, seg = &p.dataCur, p.Img.Data
	}
	align := t.Align(p.Model)
	size := t.Size(p.Model)
	addr := mem.Addr(alignUp(uint64(*cur), align))
	if addr.Add(int64(size)) > seg.End() {
		return nil, fmt.Errorf("machine: %s segment full defining %q", seg.Kind, name)
	}
	*cur = addr.Add(int64(size))
	g := &Global{Name: name, Type: t, Addr: addr}
	p.globals = append(p.globals, g)
	p.globalBy[name] = g
	return g, nil
}

func alignUp(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	rem := v % a
	if rem == 0 {
		return v
	}
	return v + a - rem
}

// GlobalVar returns a previously defined global.
func (p *Process) GlobalVar(name string) (*Global, error) {
	g, ok := p.globalBy[name]
	if !ok {
		return nil, fmt.Errorf("machine: global %q not defined", name)
	}
	return g, nil
}

// GlobalObject returns an object view of a class-typed global.
func (p *Process) GlobalObject(name string) (*object.Object, error) {
	g, err := p.GlobalVar(name)
	if err != nil {
		return nil, err
	}
	cls, ok := g.Type.(*layout.Class)
	if !ok {
		return nil, fmt.Errorf("machine: global %q is %s, not a class", name, g.Type)
	}
	return object.View(p.Mem, cls, p.Model, g.Addr)
}

// Globals returns every defined global in definition order. The slice
// is a copy; the globals themselves are shared. The obs layer uses this
// to annotate address-space heatmaps with object extents and vptr slots.
func (p *Process) Globals() []*Global {
	out := make([]*Global, len(p.globals))
	copy(out, p.globals)
	return out
}

// GlobalAt finds the global whose storage contains addr.
func (p *Process) GlobalAt(addr mem.Addr) (*Global, bool) {
	for _, g := range p.globals {
		if addr >= g.Addr && addr < g.End(p.Model) {
			return g, true
		}
	}
	return nil, false
}
