// Package machine composes the substrates (mem, heap, stackm, layout,
// vtab, core) into a simulated victim process. A Process owns a mapped
// address space, a formatted heap, a call stack with optional StackGuard
// canaries, a registry of "text" functions, emitted vtables in rodata, and
// global variables in data/bss.
//
// Crucially, it models what happens when control flow is hijacked: a
// corrupted return address or vtable pointer is *dispatched* — onto a
// registered function (arc injection, §3.6.2), onto attacker bytes in a
// writable segment (code injection, subject to NX), or into garbage (a
// crash). Every step is recorded as an Event so experiments can assert on
// outcomes rather than on incidental state.
package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/stackm"
)

// Options configures a Process. The zero value models the paper's
// testbed defaults: ILP32 i386 layout, saved frame pointers, no canary,
// non-executable stack, no shadow stack.
type Options struct {
	// Model is the data model; zero selects layout.ILP32i386 (the paper's
	// 32-bit gcc testbed).
	Model layout.Model
	// NoSaveFP omits the saved-frame-pointer slot (the paper's "if the
	// frame pointer is saved" variant is the default, as with gcc -O0).
	NoSaveFP bool
	// StackGuard enables the gcc ProPolice/StackGuard canary (§3.6.1).
	StackGuard bool
	// CanaryValue overrides the canary; zero selects the terminator canary.
	CanaryValue uint64
	// ExecStack maps the stack executable, enabling classic code injection.
	ExecStack bool
	// ShadowStack enables the §5.2 return-address-stack defense: return
	// addresses are duplicated in protected storage and verified before
	// any transfer.
	ShadowStack bool
	// Shadow arms the byte-granular shadow-memory sanitizer (see
	// internal/shadow): trailing red zones around placement arenas,
	// poisoned vtable-pointer slots, stack control words, and heap
	// metadata, plus quarantine of freed/released memory. Every
	// program write is validated before it lands; a violation aborts
	// the simulated process with EvShadowViolation.
	Shadow bool
	// Image overrides segment sizes.
	Image mem.ImageConfig
	// Pool, when non-nil, sources the process's address space from the
	// image template pool: the first construction for a given image
	// configuration registers a pristine template, and later
	// constructions clone it via copy-on-write page sharing instead of
	// allocating and zeroing fresh segments. Cloned processes are fully
	// isolated — their writes copy shared pages before mutating them.
	Pool *mem.ImagePool
	// OnImage, when non-nil, observes the process's address-space image
	// immediately after acquisition and before any construction write
	// (heap formatting, stack setup, canary install). It is the seam
	// the scenario compiler's recorder (internal/compile) uses to
	// attach write instrumentation early enough to capture the full
	// from-pristine write set; OnNewProcess and defense.Config.OnProcess
	// fire too late for that, after construction has already stored.
	OnImage func(*mem.Image)
}

func (o Options) model() layout.Model {
	if o.Model.PtrSize == 0 {
		return layout.ILP32i386
	}
	return o.Model
}

// Process is a simulated victim process.
type Process struct {
	Model layout.Model
	Img   *mem.Image
	Mem   *mem.Memory
	Heap  *heap.Allocator
	Stack *stackm.Stack
	// Tracker is the placement-new ledger used by leak experiments.
	Tracker *core.LeakTracker

	opts Options

	funcs    map[string]*Func
	funcAt   map[mem.Addr]*Func
	textCur  mem.Addr
	roCur    mem.Addr
	dataCur  mem.Addr
	bssCur   mem.Addr
	globals  []*Global
	globalBy map[string]*Global
	vtables  map[*layout.Class][]mem.Addr
	vtAddrs  map[mem.Addr]bool // every emitted table address
	shadow   []mem.Addr        // the §5.2 return-address shadow *stack*
	// san is the byte-granular shadow-memory *sanitizer*, non-nil only
	// when Options.Shadow is set (distinct from the shadow stack above).
	san *shadow.Sanitizer

	events []Event
	input  *Input
	output []string

	// onEvent, when non-nil, observes every recorded event as it
	// happens (the observability seam; see SetEventObserver).
	onEvent func(Event)
}

// OnNewProcess, when non-nil, is invoked on every Process immediately
// after construction, before any program activity. It is the seam
// through which full-run instrumentation (cmd/pntrace's obs.Collector)
// reaches processes built deep inside attack scenarios without
// threading a parameter through every layer. It is package-global
// state: set it only from single-threaded drivers (CLIs, dedicated
// tests), never from parallel tests.
var OnNewProcess func(*Process)

// New creates a process with a formatted heap and an empty call stack.
func New(opts Options) (*Process, error) {
	model := opts.model()
	cfg := opts.Image
	cfg.ExecStack = opts.ExecStack
	var img *mem.Image
	var err error
	if opts.Pool != nil {
		img, _, err = opts.Pool.Acquire(cfg)
	} else {
		img, err = mem.NewProcessImage(cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	if opts.OnImage != nil {
		opts.OnImage(img)
	}
	h, err := heap.NewOnImage(img)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	st, err := stackm.NewOnImage(img, stackm.Options{
		Model:       model,
		SaveFP:      !opts.NoSaveFP,
		Canary:      opts.StackGuard,
		CanaryValue: opts.CanaryValue,
	})
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	// Keep argv/environment headroom above the outermost frame, as a real
	// process image does: overflows of the first frame's locals land in
	// mapped memory rather than off the end of the stack segment.
	if err := st.Reserve(256); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	p := &Process{
		Model:    model,
		Img:      img,
		Mem:      img.Mem,
		Heap:     h,
		Stack:    st,
		Tracker:  core.NewLeakTracker(),
		opts:     opts,
		funcs:    make(map[string]*Func),
		funcAt:   make(map[mem.Addr]*Func),
		textCur:  img.Text.Base.Add(0x100),
		roCur:    img.ROData.Base,
		dataCur:  img.Data.Base,
		bssCur:   img.BSS.Base,
		globalBy: make(map[string]*Global),
		vtables:  make(map[*layout.Class][]mem.Addr),
		vtAddrs:  make(map[mem.Addr]bool),
		input:    &Input{},
	}
	if opts.Shadow {
		p.san = shadow.New()
		p.Mem.SetShadow(p.san)
		// The heap was formatted before the sanitizer existed; SetShadow
		// walks the existing headers and poisons them as metadata.
		if err := h.SetShadow(heapShadow{p.san}); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
	}
	if OnNewProcess != nil {
		OnNewProcess(p)
	}
	return p, nil
}

// Sanitizer returns the shadow-memory sanitizer, or nil when the
// process was built without Options.Shadow.
func (p *Process) Sanitizer() *shadow.Sanitizer { return p.san }

// Options returns the options the process was built with.
func (p *Process) Options() Options { return p.opts }

// Checkpoint captures the process's full address-space image — segment
// bytes and permissions — by deep copy. Prefer CowCheckpoint on hot
// paths; this remains for callers that want capture cost paid eagerly.
func (p *Process) Checkpoint() *mem.Checkpoint { return p.Mem.Checkpoint() }

// CowCheckpoint captures the process's full address-space image by
// copy-on-write page sharing: O(pages) pointer operations at capture,
// with copies deferred to the pages the run actually dirties. The
// supervisor layer checkpoints a process right after construction so a
// chaos-faulted run can be rolled back to its pristine pre-run state in
// O(dirty pages).
func (p *Process) CowCheckpoint() *mem.Checkpoint { return p.Mem.CowCheckpoint() }

// RestoreCheckpoint rolls the address space back to cp and records an
// EvRestore event. Only the pages that differ from the checkpoint are
// touched (O(dirty), not O(address space)). Only memory is rolled back:
// the event log, program output, and pending input survive, the same
// way a core-dump-and-restart preserves the testbed's logs while
// resetting the process.
func (p *Process) RestoreCheckpoint(cp *mem.Checkpoint) error {
	if _, err := p.Mem.RestoreDirty(cp); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	p.record(EvRestore, 0, "address space restored from checkpoint (%d segments, %d bytes)",
		cp.NumSegments(), cp.Bytes())
	return nil
}

// --- Events --------------------------------------------------------------

// EventKind classifies process events.
type EventKind int

// Event kinds recorded during simulation.
const (
	EvCall EventKind = iota + 1
	EvReturn
	EvHijackedReturn
	EvArcInjection
	EvPrivilegedCall
	EvCodeInjection
	EvSegfault
	EvNXViolation
	EvCanaryAbort
	EvShadowAbort
	EvVirtualCall
	EvVTableHijack
	EvMethodCall
	EvGuardAbort
	EvOutput
	EvRestore
	EvShadowViolation
)

var eventNames = map[EventKind]string{
	EvCall: "call", EvReturn: "return", EvHijackedReturn: "hijacked-return",
	EvArcInjection: "arc-injection", EvPrivilegedCall: "privileged-call",
	EvCodeInjection: "code-injection", EvSegfault: "segfault",
	EvNXViolation: "nx-violation", EvCanaryAbort: "canary-abort",
	EvShadowAbort: "shadow-abort", EvVirtualCall: "virtual-call",
	EvVTableHijack: "vtable-hijack", EvMethodCall: "method-call",
	EvGuardAbort: "guard-abort", EvOutput: "output", EvRestore: "restore",
	EvShadowViolation: "shadow-violation",
}

// String returns the event kind name.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one recorded process event.
type Event struct {
	Kind   EventKind
	Detail string
	Addr   mem.Addr
}

func (p *Process) record(k EventKind, addr mem.Addr, format string, args ...any) {
	e := Event{Kind: k, Detail: fmt.Sprintf(format, args...), Addr: addr}
	p.events = append(p.events, e)
	if p.onEvent != nil {
		p.onEvent(e)
	}
}

// SetEventObserver installs fn to observe every event as it is
// recorded — the live counterpart of the Events() post-mortem log,
// used by the obs layer to convert hijacks, aborts, and dispatches
// into trace events and defense-verdict metrics as they happen. Pass
// nil to disarm. A nil observer costs one pointer check per event.
func (p *Process) SetEventObserver(fn func(Event)) { p.onEvent = fn }

// Events returns all recorded events in order.
func (p *Process) Events() []Event {
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// EventsOf returns the recorded events of one kind, in order.
func (p *Process) EventsOf(k EventKind) []Event {
	var out []Event
	for _, e := range p.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// HasEvent reports whether an event of kind k was recorded.
func (p *Process) HasEvent(k EventKind) bool { return len(p.EventsOf(k)) > 0 }

// AbortError reports that the simulated process terminated abnormally —
// the analogue of SIGSEGV/SIGABRT on the paper's testbed.
type AbortError struct {
	Kind   EventKind
	Reason string
}

// Error implements the error interface.
func (e *AbortError) Error() string {
	return fmt.Sprintf("machine: process aborted (%s): %s", e.Kind, e.Reason)
}

// --- Program I/O ----------------------------------------------------------

// Input is the attacker-controlled input stream (cin in the listings).
type Input struct {
	ints []int64
	strs []string
}

// SetInput replaces the pending integer inputs.
func (p *Process) SetInput(vals ...int64) { p.input.ints = append([]int64(nil), vals...) }

// SetStringInput replaces the pending string inputs.
func (p *Process) SetStringInput(vals ...string) { p.input.strs = append([]string(nil), vals...) }

// Cin pops the next integer input, like `cin >> x`. Exhausted input reads
// zero, as a failed istream extraction leaves a value-initialised target.
func (p *Process) Cin() int64 {
	if len(p.input.ints) == 0 {
		return 0
	}
	v := p.input.ints[0]
	p.input.ints = p.input.ints[1:]
	return v
}

// CinString pops the next string input.
func (p *Process) CinString() string {
	if len(p.input.strs) == 0 {
		return ""
	}
	v := p.input.strs[0]
	p.input.strs = p.input.strs[1:]
	return v
}

// Printf records program output (cout in the listings).
func (p *Process) Printf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	p.output = append(p.output, line)
	p.record(EvOutput, 0, "%s", line)
}

// OutputLines returns everything the program printed.
func (p *Process) OutputLines() []string {
	out := make([]string, len(p.output))
	copy(out, p.output)
	return out
}
