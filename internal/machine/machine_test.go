package machine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/stackm"
)

func paperClasses() (student, grad *layout.Class) {
	student = layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad = layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return student, grad
}

func newProc(t *testing.T, opts Options) *Process {
	t.Helper()
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewDefaults(t *testing.T) {
	p := newProc(t, Options{})
	if p.Model.Name != layout.ILP32i386.Name {
		t.Errorf("model = %s", p.Model.Name)
	}
	if p.Img.Stack.Perm&mem.PermExec != 0 {
		t.Error("stack executable by default")
	}
	if !p.Stack.Options().SaveFP {
		t.Error("frame pointer not saved by default")
	}
	if p.Stack.Options().Canary {
		t.Error("canary on by default")
	}
}

func TestDefineFuncAndAddr(t *testing.T) {
	p := newProc(t, Options{})
	f, err := p.DefineFunc("main", nil, func(*Process, *stackm.Frame) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !p.Img.Text.Contains(f.Addr) {
		t.Errorf("func addr %#x outside text", uint64(f.Addr))
	}
	a, err := p.FuncAddr("main")
	if err != nil || a != f.Addr {
		t.Errorf("FuncAddr = %#x, %v", uint64(a), err)
	}
	if _, err := p.DefineFunc("main", nil, nil); err == nil {
		t.Error("duplicate function accepted")
	}
	if _, err := p.DefineFunc("", nil, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := p.FuncAddr("nope"); err == nil {
		t.Error("undefined lookup succeeded")
	}
	if got, ok := p.FuncAt(f.Addr); !ok || got != f {
		t.Error("FuncAt failed")
	}
}

func TestCallRunsBodyWithFrame(t *testing.T) {
	p := newProc(t, Options{})
	var sawLocal mem.Addr
	_, err := p.DefineFunc("f", []stackm.LocalSpec{{Name: "x", Type: layout.Int}},
		func(p *Process, f *stackm.Frame) error {
			l, err := f.Local("x")
			if err != nil {
				return err
			}
			sawLocal = l.Addr
			return p.Mem.WriteU32(l.Addr, 42)
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Call("f"); err != nil {
		t.Fatal(err)
	}
	if sawLocal == 0 || !p.Img.Stack.Contains(sawLocal) {
		t.Errorf("local at %#x", uint64(sawLocal))
	}
	if !p.HasEvent(EvCall) || !p.HasEvent(EvReturn) {
		t.Error("call/return events missing")
	}
	if p.HasEvent(EvHijackedReturn) {
		t.Error("clean return reported hijacked")
	}
}

func TestCallErrors(t *testing.T) {
	p := newProc(t, Options{})
	if err := p.Call("missing"); err == nil {
		t.Error("call to undefined function succeeded")
	}
	if _, err := p.DefineFunc("nobody", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("nobody"); err == nil {
		t.Error("call to bodyless function succeeded")
	}
}

func TestNestedCalls(t *testing.T) {
	p := newProc(t, Options{StackGuard: true, ShadowStack: true})
	depth := 0
	if _, err := p.DefineFunc("inner", nil, func(p *Process, _ *stackm.Frame) error {
		depth = p.Stack.Depth()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineFunc("outer", nil, func(p *Process, _ *stackm.Frame) error {
		return p.Call("inner")
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("outer"); err != nil {
		t.Fatal(err)
	}
	if depth != 2 {
		t.Errorf("depth inside inner = %d", depth)
	}
	if p.Stack.Depth() != 0 {
		t.Error("stack not unwound")
	}
}

// TestHijackedReturnToPrivilegedFunc is the §3.6.2 arc-injection skeleton.
func TestHijackedReturnToPrivilegedFunc(t *testing.T) {
	p := newProc(t, Options{NoSaveFP: true})
	if _, err := p.DefinePrivilegedFunc("system_shell", nil, nil); err != nil {
		t.Fatal(err)
	}
	target, err := p.FuncAddr("system_shell")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineFunc("victim", nil, func(p *Process, f *stackm.Frame) error {
		// Overwrite our own return address, as the object overflow does.
		return p.Mem.WriteU32(f.RetSlot, uint32(target))
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("victim"); err != nil {
		t.Fatalf("arc injection aborted: %v", err)
	}
	if !p.HasEvent(EvHijackedReturn) || !p.HasEvent(EvArcInjection) || !p.HasEvent(EvPrivilegedCall) {
		t.Errorf("events = %+v", p.Events())
	}
}

func TestHijackedReturnToGarbageSegfaults(t *testing.T) {
	p := newProc(t, Options{})
	if _, err := p.DefineFunc("victim", nil, func(p *Process, f *stackm.Frame) error {
		return p.Mem.WriteU32(f.RetSlot, 0x41414141)
	}); err != nil {
		t.Fatal(err)
	}
	err := p.Call("victim")
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Kind != EvSegfault {
		t.Errorf("err = %v, want segfault abort", err)
	}
}

func TestCodeInjectionNeedsExecStack(t *testing.T) {
	run := func(execStack bool) (*Process, error) {
		p := newProc(t, Options{ExecStack: execStack})
		buf := layout.ArrayOf(layout.Char, 64)
		if _, err := p.DefineFunc("victim", []stackm.LocalSpec{{Name: "buf", Type: buf}},
			func(p *Process, f *stackm.Frame) error {
				l, err := f.Local("buf")
				if err != nil {
					return err
				}
				if err := p.WriteShellcode(l.Addr); err != nil {
					return err
				}
				return p.Mem.WriteU32(f.RetSlot, uint32(l.Addr))
			}); err != nil {
			t.Fatal(err)
		}
		return p, p.Call("victim")
	}

	p, err := run(true)
	if err != nil {
		t.Errorf("exec stack: %v", err)
	}
	if !p.HasEvent(EvCodeInjection) {
		t.Error("shellcode not executed on executable stack")
	}

	p, err = run(false)
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Kind != EvNXViolation {
		t.Errorf("NX stack: err = %v, want NX abort", err)
	}
	if p.HasEvent(EvCodeInjection) {
		t.Error("shellcode executed on NX stack")
	}
}

func TestStackGuardAbortsOnSmashedCanary(t *testing.T) {
	p := newProc(t, Options{StackGuard: true})
	if _, err := p.DefineFunc("victim", []stackm.LocalSpec{{Name: "x", Type: layout.Int}},
		func(p *Process, f *stackm.Frame) error {
			// Linear overflow from the local through canary, FP, ret.
			l, _ := f.Local("x")
			b := make([]byte, f.Top.Diff(l.Addr))
			for i := range b {
				b[i] = 0x41
			}
			return p.Mem.Write(l.Addr, b)
		}); err != nil {
		t.Fatal(err)
	}
	err := p.Call("victim")
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Kind != EvCanaryAbort {
		t.Errorf("err = %v, want canary abort", err)
	}
	if p.HasEvent(EvHijackedReturn) {
		t.Error("hijack dispatched despite canary abort")
	}
}

func TestShadowStackCatchesCanarySkip(t *testing.T) {
	// Selective write that skips the canary defeats StackGuard (§5.2) but
	// not the shadow stack.
	for _, shadow := range []bool{false, true} {
		p := newProc(t, Options{StackGuard: true, ShadowStack: shadow})
		if _, err := p.DefinePrivilegedFunc("system_shell", nil, nil); err != nil {
			t.Fatal(err)
		}
		target, _ := p.FuncAddr("system_shell")
		if _, err := p.DefineFunc("victim", nil, func(p *Process, f *stackm.Frame) error {
			return p.Mem.WriteU32(f.RetSlot, uint32(target)) // canary untouched
		}); err != nil {
			t.Fatal(err)
		}
		err := p.Call("victim")
		if shadow {
			var ab *AbortError
			if !errors.As(err, &ab) || ab.Kind != EvShadowAbort {
				t.Errorf("shadow: err = %v, want shadow abort", err)
			}
			if p.HasEvent(EvArcInjection) {
				t.Error("shadow: arc injection still dispatched")
			}
		} else {
			if err != nil {
				t.Errorf("canary skip aborted without shadow stack: %v", err)
			}
			if !p.HasEvent(EvArcInjection) {
				t.Error("canary skip did not reach target")
			}
		}
	}
}

func TestBodyFaultAbortsWithoutEpilogue(t *testing.T) {
	p := newProc(t, Options{})
	if _, err := p.DefineFunc("victim", nil, func(p *Process, _ *stackm.Frame) error {
		return p.Mem.WriteU32(0x10, 1) // null-page write
	}); err != nil {
		t.Fatal(err)
	}
	err := p.Call("victim")
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Kind != EvSegfault {
		t.Errorf("err = %v, want segfault abort", err)
	}
}

func TestGlobalsAdjacencyAndSegments(t *testing.T) {
	p := newProc(t, Options{})
	student, _ := paperClasses()
	g1, err := p.DefineGlobal("stud1", student, false)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p.DefineGlobal("stud2", student, false)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Img.BSS.Contains(g1.Addr) || !p.Img.BSS.Contains(g2.Addr) {
		t.Error("uninitialised globals not in bss")
	}
	if g2.Addr != g1.End(p.Model) {
		t.Errorf("globals not adjacent: %#x then %#x", uint64(g1.End(p.Model)), uint64(g2.Addr))
	}
	d, err := p.DefineGlobal("counter", layout.Int, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Img.Data.Contains(d.Addr) {
		t.Error("initialised global not in data")
	}
	if _, err := p.DefineGlobal("stud1", student, false); err == nil {
		t.Error("duplicate global accepted")
	}
	if _, err := p.DefineGlobal("", layout.Int, false); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := p.DefineGlobal("nil", nil, false); err == nil {
		t.Error("nil type accepted")
	}
	got, ok := p.GlobalAt(g1.Addr.Add(3))
	if !ok || got != g1 {
		t.Error("GlobalAt failed")
	}
	if _, ok := p.GlobalAt(0x100); ok {
		t.Error("GlobalAt matched unmapped address")
	}
}

func TestGlobalObject(t *testing.T) {
	p := newProc(t, Options{})
	student, _ := paperClasses()
	if _, err := p.DefineGlobal("stud", student, false); err != nil {
		t.Fatal(err)
	}
	o, err := p.GlobalObject("stud")
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetFloat("gpa", 3.5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineGlobal("n", layout.Int, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.GlobalObject("n"); err == nil {
		t.Error("GlobalObject on scalar succeeded")
	}
	if _, err := p.GlobalObject("missing"); err == nil {
		t.Error("GlobalObject on missing global succeeded")
	}
}

func TestConstructInstallsVPtrAndDispatches(t *testing.T) {
	p := newProc(t, Options{})
	student := layout.NewClass("Student").AddVirtual("getInfo").AddField("gpa", layout.Double)
	grad := layout.NewClass("GradStudent", student).AddVirtual("getInfo")

	var called []string
	if _, err := p.DefineMethod(student, "getInfo", func(*Process, *stackm.Frame) error {
		called = append(called, "Student")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineMethod(grad, "getInfo", func(*Process, *stackm.Frame) error {
		called = append(called, "GradStudent")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	g, err := p.DefineGlobal("stud", grad, false)
	if err != nil {
		t.Fatal(err)
	}
	o, err := p.Construct(grad, g.Addr)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := o.VPtr(0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Img.ROData.Contains(vp) {
		t.Errorf("vptr %#x not in rodata", uint64(vp))
	}
	// Dynamic dispatch through the base-typed view still reaches the
	// derived override — the vptr decides.
	baseView, err := o.ViewAs(student)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VirtualCall(baseView, "getInfo"); err != nil {
		t.Fatal(err)
	}
	if len(called) != 1 || called[0] != "GradStudent" {
		t.Errorf("called = %v, want GradStudent override", called)
	}
	if p.HasEvent(EvVTableHijack) {
		t.Error("legitimate dispatch flagged as hijack")
	}
}

func TestVirtualCallThroughCorruptedVPtr(t *testing.T) {
	p := newProc(t, Options{})
	cls := layout.NewClass("Poly").AddVirtual("f").AddField("x", layout.Int)
	g, err := p.DefineGlobal("obj", cls, false)
	if err != nil {
		t.Fatal(err)
	}
	o, err := p.Construct(cls, g.Addr)
	if err != nil {
		t.Fatal(err)
	}

	// Build a fake vtable in bss whose slot 0 points at a privileged
	// function, then swing the vptr to it — §3.8.2's "invoke arbitrary
	// methods".
	priv, err := p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fake, err := p.DefineGlobal("fake_vtable", layout.ArrayOf(layout.UInt, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.WriteU32(fake.Addr, uint32(priv.Addr)); err != nil {
		t.Fatal(err)
	}
	if err := o.SetVPtr(0, fake.Addr); err != nil {
		t.Fatal(err)
	}
	if err := p.VirtualCall(o, "f"); err != nil {
		t.Fatalf("hijacked dispatch: %v", err)
	}
	if !p.HasEvent(EvVTableHijack) || !p.HasEvent(EvPrivilegedCall) {
		t.Errorf("events = %+v", p.Events())
	}
}

func TestVirtualCallInvalidVPtrCrashes(t *testing.T) {
	p := newProc(t, Options{})
	cls := layout.NewClass("Poly2").AddVirtual("f")
	g, err := p.DefineGlobal("obj", cls, false)
	if err != nil {
		t.Fatal(err)
	}
	o, err := p.Construct(cls, g.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetVPtr(0, 0x41414141); err != nil {
		t.Fatal(err)
	}
	err = p.VirtualCall(o, "f")
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Kind != EvSegfault {
		t.Errorf("err = %v, want segfault", err)
	}
	if err := o.SetVPtr(0, g.Addr); err != nil { // mapped but garbage slot
		t.Fatal(err)
	}
	if err := p.VirtualCall(o, "f"); err == nil {
		t.Error("dispatch through garbage table succeeded")
	}
	if err := p.VirtualCall(o, "missing"); err == nil {
		t.Error("dispatch of unknown method succeeded")
	}
}

func TestExecAddrNullPointer(t *testing.T) {
	p := newProc(t, Options{})
	err := p.ExecAddr(mem.NullAddr, "funcptr")
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Kind != EvSegfault {
		t.Errorf("err = %v", err)
	}
}

func TestInputStream(t *testing.T) {
	p := newProc(t, Options{})
	p.SetInput(7, -3)
	if v := p.Cin(); v != 7 {
		t.Errorf("cin 1 = %d", v)
	}
	if v := p.Cin(); v != -3 {
		t.Errorf("cin 2 = %d", v)
	}
	if v := p.Cin(); v != 0 {
		t.Errorf("exhausted cin = %d, want 0", v)
	}
	p.SetStringInput("alice")
	if s := p.CinString(); s != "alice" {
		t.Errorf("cin string = %q", s)
	}
	if s := p.CinString(); s != "" {
		t.Errorf("exhausted cin string = %q", s)
	}
}

func TestOutputAndEvents(t *testing.T) {
	p := newProc(t, Options{})
	p.Printf("Before Attack: Name:%s", "abcdefghijklmno")
	lines := p.OutputLines()
	if len(lines) != 1 || !strings.Contains(lines[0], "Before Attack") {
		t.Errorf("output = %v", lines)
	}
	evs := p.EventsOf(EvOutput)
	if len(evs) != 1 {
		t.Errorf("output events = %d", len(evs))
	}
}

func TestInferArena(t *testing.T) {
	p := newProc(t, Options{})
	student, _ := paperClasses()

	// Heap block.
	hp, err := p.Heap.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := p.InferArena(hp.Add(5))
	if !ok || a.Base != hp || a.Size != 40 {
		t.Errorf("heap arena = %+v ok=%v", a, ok)
	}

	// Global.
	g, err := p.DefineGlobal("stud", student, false)
	if err != nil {
		t.Fatal(err)
	}
	a, ok = p.InferArena(g.Addr)
	if !ok || a.Size != 16 || !strings.Contains(a.Label, "stud") {
		t.Errorf("global arena = %+v ok=%v", a, ok)
	}

	// Stack local, observed from inside a call.
	var localArena bool
	if _, err := p.DefineFunc("f", []stackm.LocalSpec{{Name: "stud", Type: student}},
		func(p *Process, f *stackm.Frame) error {
			l, _ := f.Local("stud")
			ar, ok := p.InferArena(l.Addr.Add(8))
			localArena = ok && ar.Base == l.Addr && ar.Size == 16
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("f"); err != nil {
		t.Fatal(err)
	}
	if !localArena {
		t.Error("stack local arena not inferred")
	}

	// Unknown address: the undecidable case.
	if _, ok := p.InferArena(p.Img.BSS.End().Add(-1)); ok {
		t.Error("arena inferred for address in no known allocation")
	}
}

func TestEmitVTablesIdempotentAndErrors(t *testing.T) {
	p := newProc(t, Options{})
	cls := layout.NewClass("Poly3").AddVirtual("f")
	if err := p.EmitVTables(cls); err != nil {
		t.Fatal(err)
	}
	a1, err := p.VTableAddrs(cls)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EmitVTables(cls); err != nil {
		t.Fatal(err)
	}
	a2, _ := p.VTableAddrs(cls)
	if a1[0] != a2[0] {
		t.Error("re-emission moved the table")
	}
	other := layout.NewClass("NotEmitted").AddVirtual("g")
	if _, err := p.VTableAddrs(other); err == nil {
		t.Error("addresses of unemitted class returned")
	}
}

func TestConstructTracksPlacement(t *testing.T) {
	p := newProc(t, Options{})
	student, _ := paperClasses()
	g, err := p.DefineGlobal("stud", student, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Construct(student, g.Addr); err != nil {
		t.Fatal(err)
	}
	live := p.Tracker.Live()
	if len(live) != 1 || live[0].What != "Student" || live[0].Size != 16 {
		t.Errorf("tracked = %+v", live)
	}
}
