package machine

import (
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/stackm"
)

// heapShadow adapts the sanitizer onto the heap allocator's Shadow
// seam: block headers are poisoned as metadata, allocated payloads
// become addressable (address reuse after a free must not inherit
// quarantine), freed payloads are quarantined.
type heapShadow struct{ san *shadow.Sanitizer }

var _ heap.Shadow = heapShadow{}

func (h heapShadow) Exempt(f func() error) error { return h.san.Exempt(f) }

func (h heapShadow) OnAlloc(p mem.Addr, n uint64) { h.san.Unpoison(p, n) }

func (h heapShadow) OnFree(p mem.Addr, n uint64) {
	h.san.Quarantine(p, n, "freed heap block")
}

func (h heapShadow) PoisonHeader(a mem.Addr, n uint64) {
	h.san.Poison(shadow.KindHeapMeta, a, n, "heap block header")
}

// poisonFrameControl poisons the control words of a freshly pushed
// frame — return address, saved frame pointer, canary — so the §3.6
// stack overflows fault at the first control byte they would trample,
// before the epilogue ever runs. Push has already stored the
// legitimate values; the poison arms afterwards, so only *subsequent*
// program stores (the attack) are rejected.
func (p *Process) poisonFrameControl(f *stackm.Frame) {
	if p.san == nil || f == nil {
		return
	}
	ptr := uint64(p.Model.PtrSize)
	p.san.Poison(shadow.KindStackCtl, f.RetSlot, ptr, "return address of "+f.Func)
	if f.FPSlot != 0 {
		p.san.Poison(shadow.KindStackCtl, f.FPSlot, ptr, "saved frame pointer of "+f.Func)
	}
	if f.CanarySlot != 0 {
		p.san.Poison(shadow.KindStackCtl, f.CanarySlot, ptr, "canary of "+f.Func)
	}
}

// unpoisonFrame clears all shadow state over a popped frame's extent.
// The frame's addresses are dead storage after return; leaving control
// poison (or red zones over stack arenas) behind would fault the next
// frame pushed over the same bytes.
func (p *Process) unpoisonFrame(f *stackm.Frame) {
	if p.san == nil || f == nil {
		return
	}
	if n := f.Top.Diff(f.SP); n > 0 {
		p.san.Unpoison(f.SP, uint64(n))
	}
}
