package machine

import (
	"fmt"
	"strings"
)

// TraceString renders the recorded event log, one line per event, in the
// style of an strace/ltrace transcript. Experiments and the CLI use it to
// show exactly how an attack unfolded inside the simulated process.
func (p *Process) TraceString() string {
	var sb strings.Builder
	for i, e := range p.events {
		fmt.Fprintf(&sb, "%3d  %-16s %s", i, e.Kind, e.Detail)
		if e.Addr != 0 {
			fmt.Fprintf(&sb, "  @%#x", uint64(e.Addr))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary counts events by kind, for compact assertions and reports.
func (p *Process) Summary() map[EventKind]int {
	out := make(map[EventKind]int)
	for _, e := range p.events {
		out[e.Kind]++
	}
	return out
}
