package machine

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/stackm"
)

func TestTraceStringAndSummary(t *testing.T) {
	p := newProc(t, Options{})
	shell, err := p.DefinePrivilegedFunc("system_shell", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineFunc("victim", nil, func(p *Process, f *stackm.Frame) error {
		return p.Mem.WriteU32(f.RetSlot, uint32(shell.Addr))
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("victim"); err != nil {
		t.Fatal(err)
	}
	tr := p.TraceString()
	for _, want := range []string{"call", "hijacked-return", "arc-injection", "privileged-call", "system_shell"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace missing %q:\n%s", want, tr)
		}
	}
	// Lines are numbered in order.
	lines := strings.Split(strings.TrimRight(tr, "\n"), "\n")
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "0") {
		t.Errorf("first trace line = %q", lines[0])
	}
	sum := p.Summary()
	if sum[EvCall] != 1 || sum[EvPrivilegedCall] != 1 || sum[EvHijackedReturn] != 1 {
		t.Errorf("summary = %v", sum)
	}
}

func TestTextSegmentExhaustion(t *testing.T) {
	opts := Options{}
	opts.Image.TextSize = 4096
	p := newProc(t, opts)
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = p.DefineFunc(funcName(i), nil, nil); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("text segment never filled")
	}
}

func funcName(i int) string {
	return "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestBssSegmentExhaustion(t *testing.T) {
	p := newProc(t, Options{})
	big := layout.ArrayOf(layout.Char, 60<<10)
	if _, err := p.DefineGlobal("big", big, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineGlobal("big2", big, false); err == nil {
		t.Error("bss exhaustion not reported")
	}
	// Data segment is independent.
	if _, err := p.DefineGlobal("d", layout.Int, true); err != nil {
		t.Errorf("data segment allocation failed: %v", err)
	}
}

func TestRODataExhaustionOnVTables(t *testing.T) {
	cfg := Options{}
	cfg.Image.RODataSize = 4096
	p := newProc(t, cfg)
	var err error
	for i := 0; i < 5000; i++ {
		cls := layout.NewClass("VT" + funcName(i))
		for j := 0; j < 8; j++ {
			cls.AddVirtual("m" + funcName(j))
		}
		if err = p.EmitVTables(cls); err != nil {
			break
		}
	}
	// Either rodata or text (method stubs) fills up; both are resource
	// exhaustion surfaced as errors, never as silent corruption.
	if err == nil {
		t.Error("vtable emission never exhausted a segment")
	}
}

func TestDeepHierarchyVirtualDispatch(t *testing.T) {
	p := newProc(t, Options{})
	a := layout.NewClass("A").AddVirtual("f").AddVirtual("g")
	b := layout.NewClass("B", a).AddVirtual("f") // overrides f, inherits g
	c := layout.NewClass("C", b).AddVirtual("g") // overrides g, inherits B::f

	var calls []string
	mark := func(name string) Body {
		return func(*Process, *stackm.Frame) error {
			calls = append(calls, name)
			return nil
		}
	}
	for _, def := range []struct {
		cls    *layout.Class
		method string
	}{
		{a, "f"}, {a, "g"}, {b, "f"}, {c, "g"},
	} {
		if _, err := p.DefineMethod(def.cls, def.method, mark(def.cls.Name()+"::"+def.method)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := p.DefineGlobal("obj", c, false)
	if err != nil {
		t.Fatal(err)
	}
	o, err := p.Construct(c, g.Addr)
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch through the base-typed view: the most-derived overrides win.
	baseView, err := o.ViewAs(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VirtualCall(baseView, "f"); err != nil {
		t.Fatal(err)
	}
	if err := p.VirtualCall(baseView, "g"); err != nil {
		t.Fatal(err)
	}
	want := "B::f,C::g"
	if got := strings.Join(calls, ","); got != want {
		t.Errorf("dispatch order = %q, want %q", got, want)
	}
	if p.HasEvent(EvVTableHijack) {
		t.Error("legitimate deep dispatch flagged as hijack")
	}
}
