package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/object"
	"repro/internal/shadow"
	"repro/internal/stackm"
	"repro/internal/vtab"
)

// DefineMethod registers the implementation of Class::method. The body may
// be nil, in which case invocation just records an EvMethodCall event.
func (p *Process) DefineMethod(cls *layout.Class, method string, body Body) (*Func, error) {
	key := vtab.MethodKey(cls, method)
	if body == nil {
		body = func(p *Process, _ *stackm.Frame) error {
			return nil
		}
	}
	return p.defineFunc(key, nil, body, false)
}

// EmitVTables lays the virtual tables of cls (and implicitly its bases'
// subobject tables) into the rodata segment. Slot entries are the text
// addresses of the resolved implementations; any implementation not yet
// defined via DefineMethod is auto-registered with a default body.
func (p *Process) EmitVTables(cls *layout.Class) error {
	if _, done := p.vtables[cls]; done {
		return nil
	}
	tables, err := vtab.TablesOf(cls, p.Model)
	if err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	ptr := int64(p.Model.PtrSize)
	var addrs []mem.Addr
	for _, t := range tables {
		need := int64(len(t.Slots)) * ptr
		base := mem.Addr(alignUp(uint64(p.roCur), p.Model.PtrSize))
		if base.Add(need) > p.Img.ROData.End() {
			return fmt.Errorf("machine: rodata full emitting vtable of %s", cls.Name())
		}
		for i, s := range t.Slots {
			impl, ok := p.funcs[s.Key()]
			if !ok {
				var err error
				impl, err = p.DefineMethod(s.Impl, s.Name, nil)
				if err != nil {
					return err
				}
			}
			entry := base.Add(int64(i) * ptr)
			b := make([]byte, ptr)
			for j := int64(0); j < ptr; j++ {
				b[j] = byte(uint64(impl.Addr) >> (8 * j))
			}
			// Poke: rodata is not writable by simulated code; the loader
			// writes it.
			if err := p.Mem.Poke(entry, b); err != nil {
				return err
			}
		}
		p.roCur = base.Add(need)
		addrs = append(addrs, base)
		p.vtAddrs[base] = true
	}
	p.vtables[cls] = addrs
	return nil
}

// VTableAddrs returns the emitted table addresses of cls (one per vptr).
func (p *Process) VTableAddrs(cls *layout.Class) ([]mem.Addr, error) {
	a, ok := p.vtables[cls]
	if !ok {
		return nil, fmt.Errorf("machine: vtables of %s not emitted", cls.Name())
	}
	out := make([]mem.Addr, len(a))
	copy(out, a)
	return out, nil
}

// Construct runs `new (addr) cls()` with full C++ semantics: placement
// (unchecked, per §2.5), zero-initialisation, and vtable-pointer
// installation for polymorphic classes. Tables are emitted on demand.
func (p *Process) Construct(cls *layout.Class, addr mem.Addr) (*object.Object, error) {
	if p.san != nil {
		// Placement over a reused arena is the paper's legitimate
		// lifecycle: clear stale quarantine / vptr poison over the
		// object's own extent before construction writes it. Structural
		// poison (red zones, heap metadata, stack control words) stays
		// armed — an oversized construction that reaches it is the
		// overflow itself, and the zero-initialising store faults before
		// a single byte lands.
		if l, err := layout.Of(cls, p.Model); err == nil {
			p.san.PrepareReuse(addr, l.Size)
		}
	}
	o, err := core.PlacementNew(p.Mem, p.Model, addr, cls)
	if err != nil {
		return nil, err
	}
	if err := p.installVPtrs(o); err != nil {
		return nil, err
	}
	if p.san != nil {
		l := o.Layout()
		p.san.RecordObject(addr, l)
		// The program never stores to its own vtable pointers after
		// construction; any write there is a hijack. Poison the slots.
		for _, vo := range l.VPtrOffsets {
			p.san.Poison(shadow.KindVPtr, addr.Add(int64(vo)), p.Model.PtrSize,
				cls.Name()+" vtable pointer")
		}
	}
	p.Tracker.RecordPlacement(addr, cls.Name(), o.Size())
	return o, nil
}

func (p *Process) installVPtrs(o *object.Object) error {
	if !o.Layout().HasVPtr() {
		return nil
	}
	cls := o.Class()
	if err := p.EmitVTables(cls); err != nil {
		return err
	}
	for i, ta := range p.vtables[cls] {
		if err := o.SetVPtr(i, ta); err != nil {
			return err
		}
	}
	return nil
}

// ConstructChecked is Construct behind the §5.1 bounds/alignment check
// against a declared arena.
func (p *Process) ConstructChecked(cls *layout.Class, arena core.Arena) (*object.Object, error) {
	l, err := layout.Of(cls, p.Model)
	if err != nil {
		return nil, err
	}
	if l.Size > arena.Size {
		return nil, &core.BoundsError{What: cls.Name(), Need: l.Size, Have: arena.Size, At: arena.Base, Label: arena.Label}
	}
	if uint64(arena.Base)%l.Align != 0 {
		return nil, &core.AlignError{What: cls.Name(), Align: l.Align, At: arena.Base}
	}
	return p.Construct(cls, arena.Base)
}

// GuardError reports a placement rejected (or unverifiable) by the
// runtime guard.
type GuardError struct {
	At      mem.Addr
	What    string
	Reason  string
	Unknown bool // true when no arena could be inferred
}

// Error implements the error interface.
func (e *GuardError) Error() string {
	return fmt.Sprintf("machine: runtime guard rejected placement of %s at %#x: %s", e.What, uint64(e.At), e.Reason)
}

// ConstructGuarded is Construct behind the §5.2 libsafe-style runtime
// interposition: the arena containing addr is inferred from allocator,
// frame, and symbol metadata. denyUnknown selects the policy for the
// paper's undecidable case (an address inside no known allocation).
func (p *Process) ConstructGuarded(cls *layout.Class, addr mem.Addr, denyUnknown bool) (*object.Object, error) {
	arena, ok := p.InferArena(addr)
	if !ok {
		if denyUnknown {
			return nil, &GuardError{At: addr, What: cls.Name(), Reason: "address is in no inferable arena", Unknown: true}
		}
		return p.Construct(cls, addr)
	}
	l, err := layout.Of(cls, p.Model)
	if err != nil {
		return nil, err
	}
	// The placement may start mid-arena; what matters is the room left.
	room := uint64(0)
	if arena.Contains(addr, 0) || addr == arena.Base {
		room = uint64(arena.End().Diff(addr))
	}
	if l.Size > room {
		return nil, &GuardError{At: addr, What: cls.Name(),
			Reason: fmt.Sprintf("needs %d bytes, %s has %d remaining", l.Size, arena.Label, room)}
	}
	return p.Construct(cls, addr)
}

// VirtualCall dispatches obj->method() through the object's in-memory
// vtable pointer, exactly as compiled code would: read the vptr, index
// the table, jump. A corrupted vptr therefore redirects the call —
// EvVTableHijack is recorded when the pointer no longer names any emitted
// table — and an unmapped vptr or slot crashes the process (§3.8.2:
// "or even crash the program by supplying an invalid address").
func (p *Process) VirtualCall(o *object.Object, method string) error {
	tables, err := vtab.TablesOf(o.Class(), p.Model)
	if err != nil {
		return err
	}
	ti, si, err := vtab.SlotOf(tables, method)
	if err != nil {
		return err
	}
	vptr, err := o.VPtr(ti)
	if err != nil {
		return err
	}
	p.record(EvVirtualCall, vptr, "%s@%#x->%s() via vtable %#x",
		o.Class().Name(), uint64(o.Addr()), method, uint64(vptr))
	if !p.vtAddrs[vptr] {
		p.record(EvVTableHijack, vptr, "vptr of %s@%#x redirected to %#x",
			o.Class().Name(), uint64(o.Addr()), uint64(vptr))
	}
	entry := vptr.Add(int64(si) * int64(p.Model.PtrSize))
	target, err := p.Mem.ReadUint(entry, int(p.Model.PtrSize))
	if err != nil {
		p.record(EvSegfault, entry, "virtual dispatch reads unmapped vtable at %#x", uint64(entry))
		return &AbortError{Kind: EvSegfault, Reason: fmt.Sprintf("vtable read at %#x faulted", uint64(entry))}
	}
	if f, ok := p.funcAt[mem.Addr(target)]; ok {
		p.record(EvMethodCall, f.Addr, "%s()", f.Name)
		if f.Privileged {
			p.record(EvPrivilegedCall, f.Addr, "%s() executes in privileged mode", f.Name)
		}
		if f.Body != nil {
			return f.Body(p, nil)
		}
		return nil
	}
	return p.execAddr(mem.Addr(target), fmt.Sprintf("virtual call %s()", method))
}

// InferArena attempts to bound the allocation containing addr using
// allocator, stack-frame, and symbol metadata — the §5.2 libsafe-style
// runtime inference. It fails exactly where the paper says it must:
// "placement new just operates on an address, not on a lexically declared
// array", so an address in no known arena cannot be bounded.
func (p *Process) InferArena(addr mem.Addr) (core.Arena, bool) {
	if b, ok := p.Heap.BlockAt(addr); ok {
		return core.Arena{Base: b.Payload, Size: b.Size, Label: "heap block"}, true
	}
	if l, _, ok := p.Stack.LocalAt(addr); ok {
		return core.Arena{Base: l.Addr, Size: l.Type.Size(p.Model), Label: "local " + l.Name}, true
	}
	if g, ok := p.GlobalAt(addr); ok {
		return core.Arena{Base: g.Addr, Size: g.Type.Size(p.Model), Label: "global " + g.Name}, true
	}
	return core.Arena{}, false
}
