package mem

import "fmt"

// segState is one segment's saved contents and permissions inside a
// Checkpoint.
type segState struct {
	kind SegKind
	base Addr
	perm Perm
	data []byte
}

// Checkpoint is a whole-address-space snapshot: every mapped segment's
// bytes and permissions at the moment of capture. It extends the
// range-level Snapshot/Diff machinery in dump.go to the full process
// image, which is what supervised crash recovery needs — after a faulted
// run the image is rolled back wholesale, not range by range.
//
// A Checkpoint is immutable once taken and independent of the Memory it
// came from; it remains valid across arbitrary program writes and
// Protect calls.
type Checkpoint struct {
	segs []segState
}

// NumSegments returns the number of segments captured.
func (cp *Checkpoint) NumSegments() int { return len(cp.segs) }

// Bytes returns the total number of data bytes held by the checkpoint.
func (cp *Checkpoint) Bytes() uint64 {
	var n uint64
	for _, s := range cp.segs {
		n += uint64(len(s.data))
	}
	return n
}

// Checkpoint captures every mapped segment. Like Snapshot it reads the
// raw segment bytes directly — access hooks, permissions, and guards do
// not apply: checkpointing is harness machinery, not program behaviour.
func (m *Memory) Checkpoint() *Checkpoint {
	cp := &Checkpoint{segs: make([]segState, 0, len(m.segs))}
	for _, s := range m.segs {
		data := make([]byte, len(s.data))
		copy(data, s.data)
		cp.segs = append(cp.segs, segState{kind: s.Kind, base: s.Base, perm: s.Perm, data: data})
	}
	return cp
}

// verifyLayout checks that the checkpoint's segment layout matches the
// memory's current layout (same count, kinds, bases, and sizes).
func (m *Memory) verifyLayout(cp *Checkpoint, op string) error {
	if cp == nil {
		return fmt.Errorf("mem: %s: nil checkpoint", op)
	}
	if len(cp.segs) != len(m.segs) {
		return fmt.Errorf("mem: %s: checkpoint has %d segments, memory has %d",
			op, len(cp.segs), len(m.segs))
	}
	for i, st := range cp.segs {
		s := m.segs[i]
		if s.Kind != st.kind || s.Base != st.base || uint64(len(s.data)) != uint64(len(st.data)) {
			return fmt.Errorf("mem: %s: segment %d mismatch: checkpoint %s [%#x,+%d), memory %s [%#x,+%d)",
				op, i, st.kind, uint64(st.base), len(st.data), s.Kind, uint64(s.Base), len(s.data))
		}
	}
	return nil
}

// Restore rolls every segment's bytes and permissions back to the
// checkpointed state. The segment layout must match the checkpoint's
// (restore does not remap segments); watchpoints, guards, the write
// logger, and any access hook are left installed and do not observe the
// restore. After a successful Restore, DiffCheckpoint against the same
// checkpoint reports no differences.
func (m *Memory) Restore(cp *Checkpoint) error {
	if err := m.verifyLayout(cp, "restore"); err != nil {
		return err
	}
	for i, st := range cp.segs {
		s := m.segs[i]
		copy(s.data, st.data)
		s.Perm = st.perm
	}
	return nil
}

// DiffCheckpoint compares current memory against a checkpoint and
// returns every changed run across all segments in ascending address
// order — the whole-image analogue of Diff.
func (m *Memory) DiffCheckpoint(cp *Checkpoint) ([]DiffRegion, error) {
	if err := m.verifyLayout(cp, "diff checkpoint"); err != nil {
		return nil, err
	}
	var out []DiffRegion
	for i, st := range cp.segs {
		out = append(out, diffBytes(st.base, st.data, m.segs[i].data)...)
	}
	return out, nil
}

// Checkpoint captures the image's full address space.
func (img *Image) Checkpoint() *Checkpoint { return img.Mem.Checkpoint() }

// Restore rolls the image's address space back to cp.
func (img *Image) Restore(cp *Checkpoint) error { return img.Mem.Restore(cp) }
