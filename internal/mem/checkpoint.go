package mem

import (
	"fmt"
	"sort"
)

// segState is one segment's saved contents and permissions inside a
// Checkpoint. The contents are held as reference-counted pages shared
// with whoever else holds them (see paging.go); a deep checkpoint simply
// owns fresh copies of every page.
type segState struct {
	kind  SegKind
	base  Addr
	perm  Perm
	size  uint64
	pages []*page
}

// Checkpoint is a whole-address-space snapshot: every mapped segment's
// bytes and permissions at the moment of capture. It extends the
// range-level Snapshot/Diff machinery in dump.go to the full process
// image, which is what supervised crash recovery needs — after a faulted
// run the image is rolled back wholesale, not range by range.
//
// A Checkpoint is immutable once taken and independent of the Memory it
// came from; it remains valid across arbitrary program writes and
// Protect calls. Two capture flavours exist:
//
//   - Checkpoint copies every byte up front — O(address space), always.
//   - CowCheckpoint shares the segments' pages by reference — O(pages)
//     pointer operations. The copy is deferred to the writes that
//     actually happen afterwards (copy-on-write), so a run that dirties
//     k pages pays for k page copies, not for the whole image.
//
// Both flavours observe byte-identical semantics through Restore,
// RestoreDirty, DiffCheckpoint, and DiffDirty.
type Checkpoint struct {
	segs []segState
	cow  bool
	// shadow is the attached ShadowChecker's opaque snapshot, captured
	// when a checker was installed at checkpoint time. Restore hands
	// it back so shadow state (red zones, quarantine) rolls back in
	// lockstep with the data pages it describes.
	shadow any
}

// NumSegments returns the number of segments captured.
func (cp *Checkpoint) NumSegments() int { return len(cp.segs) }

// Bytes returns the total number of logical data bytes held by the
// checkpoint (the mapped sizes, regardless of page sharing).
func (cp *Checkpoint) Bytes() uint64 {
	var n uint64
	for _, s := range cp.segs {
		n += s.size
	}
	return n
}

// COW reports whether the checkpoint was captured by CowCheckpoint.
func (cp *Checkpoint) COW() bool { return cp.cow }

// Checkpoint captures every mapped segment by deep copy. Like Snapshot
// it reads the raw segment bytes directly — access hooks, permissions,
// and guards do not apply: checkpointing is harness machinery, not
// program behaviour. Prefer CowCheckpoint on hot paths; the deep copy
// remains for callers that want capture cost paid eagerly (and as the
// baseline the BENCH_MEM.json benchmarks compare against).
func (m *Memory) Checkpoint() *Checkpoint {
	cp := &Checkpoint{segs: make([]segState, 0, len(m.segs))}
	for _, s := range m.segs {
		ps := make([]*page, len(s.pages))
		for i, p := range s.pages {
			np := newPage()
			np.data = p.data
			ps[i] = np
		}
		cp.segs = append(cp.segs, segState{kind: s.Kind, base: s.Base, perm: s.Perm, size: s.size, pages: ps})
	}
	if m.shadow != nil {
		cp.shadow = m.shadow.Snapshot()
	}
	return cp
}

// CowCheckpoint captures every mapped segment by sharing its pages —
// O(pages) pointer operations instead of O(bytes) copying. After the
// capture the memory's own pages are shared, so the next write to each
// page copies it first; a run that dirties few pages therefore pays a
// total copy cost proportional to what it dirtied. Semantics are
// byte-for-byte those of Checkpoint.
func (m *Memory) CowCheckpoint() *Checkpoint {
	cp := &Checkpoint{cow: true, segs: make([]segState, 0, len(m.segs))}
	for _, s := range m.segs {
		ps := make([]*page, len(s.pages))
		for i, p := range s.pages {
			ps[i] = p.get()
		}
		cp.segs = append(cp.segs, segState{kind: s.Kind, base: s.Base, perm: s.Perm, size: s.size, pages: ps})
	}
	if m.shadow != nil {
		cp.shadow = m.shadow.Snapshot()
	}
	return cp
}

// verifyLayout checks that the checkpoint's segment layout matches the
// memory's current layout (same count, kinds, bases, and sizes).
func (m *Memory) verifyLayout(cp *Checkpoint, op string) error {
	if cp == nil {
		return fmt.Errorf("mem: %s: nil checkpoint", op)
	}
	if len(cp.segs) != len(m.segs) {
		return fmt.Errorf("mem: %s: checkpoint has %d segments, memory has %d",
			op, len(cp.segs), len(m.segs))
	}
	for i, st := range cp.segs {
		s := m.segs[i]
		if s.Kind != st.kind || s.Base != st.base || s.size != st.size {
			return fmt.Errorf("mem: %s: segment %d mismatch: checkpoint %s [%#x,+%d), memory %s [%#x,+%d)",
				op, i, st.kind, uint64(st.base), st.size, s.Kind, uint64(s.Base), s.size)
		}
	}
	return nil
}

// Restore rolls every segment's bytes and permissions back to the
// checkpointed state. The segment layout must match the checkpoint's
// (restore does not remap segments); watchpoints, guards, the write
// logger, and any access hook are left installed and do not observe the
// restore. After a successful Restore, DiffCheckpoint against the same
// checkpoint reports no differences.
func (m *Memory) Restore(cp *Checkpoint) error {
	_, err := m.RestoreDirty(cp)
	return err
}

// RestoreDirty is Restore with its work surface exposed: it rolls the
// address space back to cp touching only the pages that differ from the
// checkpoint, and reports how many pages that was. Pages are compared by
// identity — a page still shared with the checkpoint cannot have changed
// (writers copy-on-write shared pages), so an attempt that dirtied k
// pages restores in O(k) pointer swaps, not O(address space). Restored
// pages are marked in the dirty tracker (their bytes changed).
func (m *Memory) RestoreDirty(cp *Checkpoint) (restored int, err error) {
	if err := m.verifyLayout(cp, "restore"); err != nil {
		return 0, err
	}
	for i, st := range cp.segs {
		s := m.segs[i]
		for j, cpg := range st.pages {
			if s.pages[j] == cpg {
				continue
			}
			s.pages[j].put()
			s.pages[j] = cpg.get()
			s.markDirtyRange(j, j)
			restored++
		}
		s.Perm = st.perm
	}
	if m.shadow != nil && cp.shadow != nil {
		m.shadow.Restore(cp.shadow)
	}
	return restored, nil
}

// DiffCheckpoint compares current memory against a checkpoint and
// returns every changed run across all segments in ascending address
// order — the whole-image analogue of Diff.
func (m *Memory) DiffCheckpoint(cp *Checkpoint) ([]DiffRegion, error) {
	return m.DiffDirty(cp)
}

// DiffDirty is DiffCheckpoint implemented over the page structure: a
// page still shared with the checkpoint is skipped in O(1) (identity
// implies equality), and only pages that were copied-on-write since the
// capture are byte-compared. The output is byte-identical to a full
// DiffCheckpoint scan, changed runs merging across page boundaries as
// they always did.
func (m *Memory) DiffDirty(cp *Checkpoint) ([]DiffRegion, error) {
	if err := m.verifyLayout(cp, "diff checkpoint"); err != nil {
		return nil, err
	}
	var out []DiffRegion
	for i, st := range cp.segs {
		out = append(out, diffPages(st.base, st.pages, m.segs[i].pages, st.size)...)
	}
	return out, nil
}

// diffPages computes the changed runs between two page arrays of the
// same logical size starting at base. Runs merge across page boundaries
// so the output matches a flat byte-wise diff exactly.
func diffPages(base Addr, old, cur []*page, size uint64) []DiffRegion {
	var out []DiffRegion
	var run *DiffRegion
	flush := func() {
		if run != nil {
			out = append(out, *run)
			run = nil
		}
	}
	for pi := range old {
		if old[pi] == cur[pi] {
			// Identical page pointer: bytes are equal; any open run ends
			// at this page's first byte.
			flush()
			continue
		}
		lo := uint64(pi) << PageShift
		hi := lo + PageSize
		if hi > size {
			hi = size
		}
		ob, cb := &old[pi].data, &cur[pi].data
		for off := lo; off < hi; off++ {
			po := off & (PageSize - 1)
			if ob[po] == cb[po] {
				flush()
				continue
			}
			if run == nil {
				run = &DiffRegion{Addr: base.Add(int64(off))}
			}
			run.Old = append(run.Old, ob[po])
			run.New = append(run.New, cb[po])
		}
		// A run touching the last byte of this page may continue into
		// the next page: leave it open.
	}
	flush()
	return out
}

// NewImage clones the checkpoint into a fresh address space: every
// segment is rebuilt sharing the checkpoint's pages by reference, so the
// clone costs O(pages) pointer operations and zero byte copies. Writes
// to the clone copy-on-write away from the checkpoint; the checkpoint
// (and anything else cloned from it) never observes them. The image's
// canonical segment fields (Text, Heap, Stack, …) are resolved by kind
// where present and left nil otherwise.
//
// This is the mechanism underneath the serving layer's image template
// pool: construct once, CowCheckpoint once, clone per request.
func (cp *Checkpoint) NewImage() (*Image, error) {
	if cp == nil {
		return nil, fmt.Errorf("mem: new image: nil checkpoint")
	}
	m := &Memory{segs: make([]*Segment, 0, len(cp.segs))}
	img := &Image{Mem: m}
	for _, st := range cp.segs {
		seg := &Segment{
			Kind: st.kind, Base: st.base, Perm: st.perm,
			size:  st.size,
			pages: make([]*page, len(st.pages)),
			dirty: make([]uint64, (len(st.pages)+63)/64),
		}
		for j, p := range st.pages {
			seg.pages[j] = p.get()
		}
		m.segs = append(m.segs, seg)
		out := img.slotFor(st.kind)
		if out != nil && *out == nil {
			*out = seg
		}
	}
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
	return img, nil
}

// slotFor returns the image's canonical field for a segment kind, or
// nil for kinds outside the canonical six.
func (img *Image) slotFor(kind SegKind) **Segment {
	switch kind {
	case SegText:
		return &img.Text
	case SegROData:
		return &img.ROData
	case SegData:
		return &img.Data
	case SegBSS:
		return &img.BSS
	case SegHeap:
		return &img.Heap
	case SegStack:
		return &img.Stack
	}
	return nil
}

// Checkpoint captures the image's full address space by deep copy.
func (img *Image) Checkpoint() *Checkpoint { return img.Mem.Checkpoint() }

// CowCheckpoint captures the image's full address space by page sharing.
func (img *Image) CowCheckpoint() *Checkpoint { return img.Mem.CowCheckpoint() }

// Restore rolls the image's address space back to cp.
func (img *Image) Restore(cp *Checkpoint) error { return img.Mem.Restore(cp) }
