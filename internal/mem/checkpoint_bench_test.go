package mem

import "testing"

// The checkpoint benchmarks compare the two rollback strategies on the
// canonical process image under the two workload shapes that matter:
//
//   - sparse: a handful of scattered single-word writes — the footprint
//     of one chaos cell or one scenario run. This is the case the COW
//     path is built for: restore cost proportional to dirty pages, not
//     address-space size.
//   - dense: every data/heap/stack byte rewritten — the worst case for
//     COW (every touched page was copied anyway), where it should still
//     be no slower than the deep copy by more than a small constant.
//
// benchstat over `go test -bench 'Checkpoint(Deep|COW)' ./internal/mem`
// gives the comparison; cmd/pnbench -mem emits the same cycle into
// BENCH_MEM.json for the CI trajectory.

// benchImage builds the default canonical process image.
func benchImage(b *testing.B) *Image {
	b.Helper()
	img, err := NewProcessImage(ImageConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// sparseWrites dirties a few pages across three segments, the shape of
// one simulated run's write set.
func sparseWrites(b *testing.B, img *Image) {
	b.Helper()
	for _, w := range []struct {
		addr Addr
		val  byte
	}{
		{img.Data.Base.Add(8), 0x11},
		{img.Data.Base.Add(int64(PageSize * 3)), 0x22},
		{img.BSS.Base.Add(64), 0x33},
		{img.Heap.Base.Add(128), 0x44},
		{img.Stack.End().Add(-16), 0x55},
	} {
		if err := img.Mem.Poke(w.addr, []byte{w.val, w.val ^ 0xFF}); err != nil {
			b.Fatal(err)
		}
	}
}

// denseWrites rewrites data, heap, and stack wholesale.
func denseWrites(b *testing.B, img *Image) {
	b.Helper()
	for _, s := range []*Segment{img.Data, img.Heap, img.Stack} {
		if err := img.Mem.Memset(s.Base, 0xA5, s.Size()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCycle(b *testing.B, dirty func(*testing.B, *Image), cow bool) {
	img := benchImage(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cp *Checkpoint
		if cow {
			cp = img.Mem.CowCheckpoint()
		} else {
			cp = img.Mem.Checkpoint()
		}
		dirty(b, img)
		if cow {
			if _, err := img.Mem.RestoreDirty(cp); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := img.Mem.Restore(cp); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCheckpointDeep(b *testing.B) {
	b.Run("sparse", func(b *testing.B) { benchCycle(b, sparseWrites, false) })
	b.Run("dense", func(b *testing.B) { benchCycle(b, denseWrites, false) })
}

func BenchmarkCheckpointCOW(b *testing.B) {
	b.Run("sparse", func(b *testing.B) { benchCycle(b, sparseWrites, true) })
	b.Run("dense", func(b *testing.B) { benchCycle(b, denseWrites, true) })
}

// BenchmarkImageConstruct pins what the template pool saves: a cold
// NewProcessImage allocates and zeroes every segment, a pool clone is
// O(pages) pointer bumps.
func BenchmarkImageConstruct(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewProcessImage(ImageConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pool-clone", func(b *testing.B) {
		p := NewImagePool()
		if err := p.Prewarm(ImageConfig{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Acquire(ImageConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
