package mem

import "testing"

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	img, err := NewProcessImage(ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := img.Mem
	if err := m.WriteU64(img.Data.Base, 0x1111111111111111); err != nil {
		t.Fatal(err)
	}
	cp := img.Checkpoint()
	if cp.NumSegments() != len(m.Segments()) {
		t.Fatalf("checkpoint captured %d segments, want %d", cp.NumSegments(), len(m.Segments()))
	}
	if cp.Bytes() == 0 {
		t.Fatal("checkpoint holds no bytes")
	}

	// Corrupt memory across several segments, and flip stack perms.
	if err := m.WriteU64(img.Data.Base, 0xdeadbeefdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := m.Memset(img.BSS.Base, 0xff, 128); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteU32(img.Heap.Base.Add(64), 42); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(SegStack, PermRWX); err != nil {
		t.Fatal(err)
	}

	diff, err := m.DiffCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) == 0 {
		t.Fatal("corruption not visible in checkpoint diff")
	}

	if err := img.Restore(cp); err != nil {
		t.Fatal(err)
	}
	diff, err = m.DiffCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("post-restore diff not empty: %d regions, first at %#x", len(diff), uint64(diff[0].Addr))
	}
	if v, err := m.ReadU64(img.Data.Base); err != nil || v != 0x1111111111111111 {
		t.Fatalf("restored data word = %#x, %v", v, err)
	}
	if img.Stack.Perm != PermRW {
		t.Fatalf("stack perm not restored: %s", img.Stack.Perm)
	}
}

func TestCheckpointIndependentOfLaterWrites(t *testing.T) {
	img, err := NewProcessImage(ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cp := img.Mem.Checkpoint()
	if err := img.Mem.Memset(img.Data.Base, 0xaa, 64); err != nil {
		t.Fatal(err)
	}
	// Restore must bring back the pre-write zeroes, proving the
	// checkpoint copied rather than aliased segment data.
	if err := img.Mem.Restore(cp); err != nil {
		t.Fatal(err)
	}
	b, err := img.Mem.Read(img.Data.Base, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x after restore", i, v)
		}
	}
}

func TestRestoreLayoutMismatch(t *testing.T) {
	imgA, err := NewProcessImage(ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := NewProcessImage(ImageConfig{HeapSize: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cp := imgA.Checkpoint()
	if err := imgB.Restore(cp); err == nil {
		t.Fatal("restore across mismatched layouts succeeded")
	}
	if _, err := imgB.Mem.DiffCheckpoint(cp); err == nil {
		t.Fatal("diff across mismatched layouts succeeded")
	}
	if err := imgA.Restore(nil); err == nil {
		t.Fatal("restore of nil checkpoint succeeded")
	}
}
