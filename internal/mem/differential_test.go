package mem

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/shrink"
)

// This file is the differential harness for the copy-on-write
// checkpoint implementation: two "twin" address spaces with an
// identical random segment layout execute an identical random sequence
// of mutating operations. One twin checkpoints with the deep-copy
// Checkpoint(), the other with CowCheckpoint(). After every step the
// twins must agree byte-for-byte — segment contents, diff output
// against every live checkpoint, restore results, and errors. Any
// divergence is shrunk to a minimal op sequence before reporting.

// dsShadow is a minimal reference ShadowChecker used to test that
// checkpoints carry shadow state in lockstep with data pages: a plain
// per-byte poison set whose Snapshot deep-copies the map. The real
// sanitizer (internal/shadow) runs the same lockstep contract in its
// own checkpoint tests; here the stub keeps the differential harness
// free of the compressed encoding so a divergence unambiguously blames
// the checkpoint plumbing.
type dsShadow struct{ poison map[Addr]bool }

func newDSShadow() *dsShadow { return &dsShadow{poison: map[Addr]bool{}} }

func (s *dsShadow) CheckWrite(addr Addr, n uint64) *Fault {
	for i := uint64(0); i < n; i++ {
		if b := addr.Add(int64(i)); s.poison[b] {
			return &Fault{Kind: FaultShadow, Addr: b, Size: n, Shadow: "test-poison"}
		}
	}
	return nil
}

func (s *dsShadow) Snapshot() any {
	cp := make(map[Addr]bool, len(s.poison))
	for k := range s.poison {
		cp[k] = true
	}
	return cp
}

func (s *dsShadow) Restore(v any) {
	m, ok := v.(map[Addr]bool)
	if !ok {
		return
	}
	s.poison = make(map[Addr]bool, len(m))
	for k := range m {
		s.poison[k] = true
	}
}

// state renders the poison set deterministically for twin comparison.
func (s *dsShadow) state() string {
	var addrs []uint64
	for a := range s.poison {
		addrs = append(addrs, uint64(a))
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var sb strings.Builder
	for _, a := range addrs {
		fmt.Fprintf(&sb, "%#x ", a)
	}
	return sb.String()
}

// dsOp is one step of a differential scenario, applied identically to
// both twins. Fields are interpreted per Kind; unused fields are zero.
type dsOp struct {
	Kind string // write poke memset strncpy wcstring protect shpoison shunpoison checkpoint restore diff
	Seg  int    // index into the scenario's segment layout
	Off  uint64 // offset within the segment (may run past the end: faults must match)
	Len  uint64 // length for memset/strncpy
	Fill byte   // memset fill byte
	Data []byte // write/poke payload
	Str  string // strncpy/wcstring source
	Perm Perm   // protect target permissions
}

func (o dsOp) String() string {
	switch o.Kind {
	case "write", "poke":
		return fmt.Sprintf("%s seg=%d off=%#x len=%d", o.Kind, o.Seg, o.Off, len(o.Data))
	case "memset":
		return fmt.Sprintf("memset seg=%d off=%#x len=%d fill=%#x", o.Seg, o.Off, o.Len, o.Fill)
	case "strncpy":
		return fmt.Sprintf("strncpy seg=%d off=%#x n=%d src=%d bytes", o.Seg, o.Off, o.Len, len(o.Str))
	case "wcstring":
		return fmt.Sprintf("wcstring seg=%d off=%#x src=%d bytes", o.Seg, o.Off, len(o.Str))
	case "protect":
		return fmt.Sprintf("protect seg=%d perm=%s", o.Seg, o.Perm)
	case "shpoison", "shunpoison":
		return fmt.Sprintf("%s seg=%d off=%#x len=%d", o.Kind, o.Seg, o.Off, o.Len)
	default:
		return o.Kind
	}
}

// dsLayout is one randomly drawn segment map, shared by both twins.
type dsLayout struct {
	kinds []SegKind
	bases []Addr
	sizes []uint64
}

// randLayout draws 1..4 disjoint RW segments with sizes from a single
// byte to several pages, deliberately misaligned so writes straddle
// page boundaries and tail pages are partial.
func randLayout(rng *rand.Rand) dsLayout {
	n := 1 + rng.Intn(4)
	var l dsLayout
	base := Addr(0x1000 + rng.Intn(4096))
	kinds := []SegKind{SegData, SegBSS, SegHeap, SegStack}
	for i := 0; i < n; i++ {
		size := uint64(1 + rng.Intn(3*PageSize+511))
		l.kinds = append(l.kinds, kinds[i])
		l.bases = append(l.bases, base)
		l.sizes = append(l.sizes, size)
		base = base.Add(int64(size) + int64(1+rng.Intn(2*PageSize)))
	}
	return l
}

func (l dsLayout) build(t *testing.T) *Memory {
	t.Helper()
	m := &Memory{}
	for i := range l.kinds {
		if _, err := m.Map(l.kinds[i], l.bases[i], l.sizes[i], PermRW); err != nil {
			t.Fatalf("map twin segment: %v", err)
		}
	}
	return m
}

// randOps draws a random op sequence against layout l. Offsets are
// usually in range but occasionally run past a segment end so fault
// behaviour is exercised too.
func randOps(rng *rand.Rand, l dsLayout) []dsOp {
	kinds := []string{
		"write", "write", "write", "poke", "memset", "strncpy", "wcstring",
		"protect", "shpoison", "shpoison", "shunpoison",
		"checkpoint", "checkpoint", "restore", "diff",
	}
	n := 8 + rng.Intn(56)
	ops := make([]dsOp, 0, n)
	for i := 0; i < n; i++ {
		seg := rng.Intn(len(l.kinds))
		size := l.sizes[seg]
		off := uint64(rng.Int63n(int64(size + 1))) // may equal size: zero room
		if rng.Intn(8) == 0 {
			off = size + uint64(rng.Intn(64)) // deliberate out-of-range
		}
		op := dsOp{Kind: kinds[rng.Intn(len(kinds))], Seg: seg, Off: off}
		switch op.Kind {
		case "write", "poke":
			ln := rng.Intn(2*PageSize + 3)
			op.Data = make([]byte, ln)
			rng.Read(op.Data)
		case "memset":
			op.Len = uint64(rng.Intn(int(size) + PageSize))
			op.Fill = byte(rng.Intn(256))
		case "strncpy":
			op.Len = uint64(rng.Intn(512))
			op.Str = strings.Repeat("x", rng.Intn(int(op.Len)+1))
		case "wcstring":
			op.Str = strings.Repeat("y", rng.Intn(256))
		case "protect":
			perms := []Perm{PermRead, PermRW, PermRWX}
			op.Perm = perms[rng.Intn(len(perms))]
		case "shpoison", "shunpoison":
			op.Len = uint64(1 + rng.Intn(96))
		}
		ops = append(ops, op)
	}
	// Always end with a restore and a diff when any checkpoint exists,
	// so every scenario exercises the interesting paths at least once —
	// including a shadow snapshot taken at checkpoint time, cleared
	// afterwards, and reinstated by the restore.
	ops = append(ops,
		dsOp{Kind: "shpoison", Seg: 0, Off: 1, Len: 2},
		dsOp{Kind: "checkpoint"}, dsOp{Kind: "write", Seg: 0, Data: []byte{0xAA}},
		dsOp{Kind: "shunpoison", Seg: 0, Off: 1, Len: 2},
		dsOp{Kind: "diff"}, dsOp{Kind: "restore"})
	return ops
}

// dsTwins holds the paired state: the deep twin checkpoints with
// Checkpoint(), the cow twin with CowCheckpoint().
type dsTwins struct {
	l       dsLayout
	deep    *Memory
	cow     *Memory
	deepSh  *dsShadow
	cowSh   *dsShadow
	deepCPs []*Checkpoint
	cowCPs  []*Checkpoint
	// cpShadow records the shadow plane's rendered state at each
	// checkpoint: an absolute oracle for restores, since a
	// forgotten-shadow bug would hit both twins symmetrically and
	// never diverge on its own.
	cpShadow []string
	restores int
}

func newTwins(t *testing.T, l dsLayout) *dsTwins {
	tw := &dsTwins{l: l, deep: l.build(t), cow: l.build(t),
		deepSh: newDSShadow(), cowSh: newDSShadow()}
	tw.deep.SetShadow(tw.deepSh)
	tw.cow.SetShadow(tw.cowSh)
	return tw
}

// step applies op to both twins and returns a description of the first
// divergence, or "" when they still agree.
func (tw *dsTwins) step(op dsOp) string {
	addr := func() Addr { return tw.l.bases[op.Seg].Add(int64(op.Off)) }
	apply := func(m *Memory) error {
		switch op.Kind {
		case "write":
			return m.Write(addr(), op.Data)
		case "poke":
			return m.Poke(addr(), op.Data)
		case "memset":
			return m.Memset(addr(), op.Fill, op.Len)
		case "strncpy":
			return m.StrNCpy(addr(), op.Str, op.Len)
		case "wcstring":
			return m.WriteCString(addr(), op.Str)
		case "protect":
			return m.Protect(tw.l.kinds[op.Seg], op.Perm)
		}
		return nil
	}
	switch op.Kind {
	case "shpoison":
		for _, sh := range []*dsShadow{tw.deepSh, tw.cowSh} {
			for i := uint64(0); i < op.Len; i++ {
				sh.poison[addr().Add(int64(i))] = true
			}
		}
	case "shunpoison":
		for _, sh := range []*dsShadow{tw.deepSh, tw.cowSh} {
			for i := uint64(0); i < op.Len; i++ {
				delete(sh.poison, addr().Add(int64(i)))
			}
		}
	case "checkpoint":
		tw.deepCPs = append(tw.deepCPs, tw.deep.Checkpoint())
		tw.cowCPs = append(tw.cowCPs, tw.cow.CowCheckpoint())
		tw.cpShadow = append(tw.cpShadow, tw.deepSh.state())
	case "restore":
		if len(tw.deepCPs) == 0 {
			return ""
		}
		i := len(tw.deepCPs) - 1
		errD := tw.deep.Restore(tw.deepCPs[i])
		_, errC := tw.cow.RestoreDirty(tw.cowCPs[i])
		if d := matchErr("restore", errD, errC); d != "" {
			return d
		}
		if got := tw.deepSh.state(); got != tw.cpShadow[i] {
			return fmt.Sprintf("restore lost shadow lockstep: got [%s], checkpointed [%s]", got, tw.cpShadow[i])
		}
		tw.restores++
	case "diff":
		for i := range tw.deepCPs {
			dd, errD := tw.deep.DiffCheckpoint(tw.deepCPs[i])
			dc, errC := tw.cow.DiffCheckpoint(tw.cowCPs[i])
			if d := matchErr("diff", errD, errC); d != "" {
				return d
			}
			if d := matchDiffs(dd, dc); d != "" {
				return fmt.Sprintf("diff vs checkpoint %d: %s", i, d)
			}
		}
	default:
		errD := apply(tw.deep)
		errC := apply(tw.cow)
		if d := matchErr(op.Kind, errD, errC); d != "" {
			return d
		}
	}
	return tw.compare()
}

// compare checks that the twins' full images are byte-identical.
func (tw *dsTwins) compare() string {
	for i := range tw.l.kinds {
		sd, errD := tw.deep.Snapshot(tw.l.bases[i], tw.l.sizes[i])
		sc, errC := tw.cow.Snapshot(tw.l.bases[i], tw.l.sizes[i])
		if d := matchErr("snapshot", errD, errC); d != "" {
			return d
		}
		if !bytes.Equal(sd.Data, sc.Data) {
			off := 0
			for off < len(sd.Data) && sd.Data[off] == sc.Data[off] {
				off++
			}
			return fmt.Sprintf("%s segment diverges at +%#x: deep=%#x cow=%#x",
				tw.l.kinds[i], off, sd.Data[off], sc.Data[off])
		}
		pd := tw.deep.Segment(tw.l.kinds[i]).Perm
		pc := tw.cow.Segment(tw.l.kinds[i]).Perm
		if pd != pc {
			return fmt.Sprintf("%s perms diverge: deep=%s cow=%s", tw.l.kinds[i], pd, pc)
		}
	}
	// The shadow planes must stay in lockstep with the data pages: a
	// restore that rolled bytes back without the matching poison state
	// (or vice versa) diverges here.
	if sd, sc := tw.deepSh.state(), tw.cowSh.state(); sd != sc {
		return fmt.Sprintf("shadow planes diverge: deep=[%s] cow=[%s]", sd, sc)
	}
	return ""
}

func matchErr(what string, a, b error) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return fmt.Sprintf("%s: deep err=%v, cow err=%v", what, a, b)
	case a.Error() != b.Error():
		return fmt.Sprintf("%s: error text diverges: deep=%q cow=%q", what, a, b)
	}
	return ""
}

func matchDiffs(a, b []DiffRegion) string {
	if len(a) != len(b) {
		return fmt.Sprintf("region count: deep=%d cow=%d (deep=%v cow=%v)", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || !bytes.Equal(a[i].Old, b[i].Old) || !bytes.Equal(a[i].New, b[i].New) {
			return fmt.Sprintf("region %d: deep=%+v cow=%+v", i, a[i], b[i])
		}
	}
	return ""
}

// runScenario replays ops from scratch and returns the first
// divergence message (with the failing op index), or "".
func runScenario(t *testing.T, l dsLayout, ops []dsOp) string {
	tw := newTwins(t, l)
	for i, op := range ops {
		if d := tw.step(op); d != "" {
			return fmt.Sprintf("op %d (%s): %s", i, op, d)
		}
	}
	return ""
}

// shrinkOps greedily removes ops while the divergence persists,
// returning a (locally) minimal failing sequence. The greedy pass
// itself lives in internal/shrink so the foundry triage pipeline can
// reuse it.
func shrinkOps(t *testing.T, l dsLayout, ops []dsOp) []dsOp {
	return shrink.Greedy(ops, func(cand []dsOp) bool {
		return runScenario(t, l, cand) != ""
	})
}

func TestDifferentialDeepVsCow(t *testing.T) {
	const iterations = 150
	for seed := int64(0); seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := randLayout(rng)
		ops := randOps(rng, l)
		if d := runScenario(t, l, ops); d != "" {
			minOps := shrinkOps(t, l, ops)
			var sb strings.Builder
			for i, op := range minOps {
				fmt.Fprintf(&sb, "  %2d: %s\n", i, op)
			}
			t.Fatalf("seed %d diverges: %s\nshrunk to %d ops (from %d):\n%s\nfinal divergence: %s",
				seed, d, len(minOps), len(ops), sb.String(), runScenario(t, l, minOps))
		}
	}
}

// TestDifferentialRestoreEquivalence pins the core contract directly:
// after interleaved writes and restores, RestoreDirty must produce the
// exact bytes a deep-copy Restore produces, and its restored-page count
// must be bounded by the pages actually touched.
func TestDifferentialRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randLayout(rng)
	tw := newTwins(t, l)

	// Dirty both twins identically, checkpoint, dirty again, restore.
	for i := 0; i < 20; i++ {
		seg := rng.Intn(len(l.kinds))
		off := uint64(rng.Int63n(int64(l.sizes[seg])))
		b := make([]byte, 1+rng.Intn(128))
		rng.Read(b)
		op := dsOp{Kind: "poke", Seg: seg, Off: off, Data: b}
		if d := tw.step(op); d != "" {
			t.Fatalf("setup op %d: %s", i, d)
		}
	}
	if d := tw.step(dsOp{Kind: "checkpoint"}); d != "" {
		t.Fatal(d)
	}
	for i := 0; i < 20; i++ {
		seg := rng.Intn(len(l.kinds))
		off := uint64(rng.Int63n(int64(l.sizes[seg])))
		b := make([]byte, 1+rng.Intn(128))
		rng.Read(b)
		if d := tw.step(dsOp{Kind: "poke", Seg: seg, Off: off, Data: b}); d != "" {
			t.Fatalf("dirty op %d: %s", i, d)
		}
	}
	if d := tw.step(dsOp{Kind: "restore"}); d != "" {
		t.Fatal(d)
	}
	if tw.restores != 1 {
		t.Fatalf("restores = %d, want 1", tw.restores)
	}

	// After restore both twins must still diff clean against the
	// checkpoint they restored from.
	if d := tw.step(dsOp{Kind: "diff"}); d != "" {
		t.Fatal(d)
	}
	dd, err := tw.cow.DiffCheckpoint(tw.cowCPs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(dd) != 0 {
		t.Fatalf("cow twin diff after restore = %v, want clean", dd)
	}
}
