package mem

import "math/bits"

// DirtyTracker is the page-granular write ledger of a Memory. Every
// mutating path — Write (and everything layered on it: Memset, StrNCpy,
// WriteCString, the scalar writers), Poke, and checkpoint restores —
// marks the pages it touches; the tracker answers "which pages may
// differ from their state at the last Reset" without scanning any
// bytes.
//
// The tracker is an over-approximation by design: a write that stores
// the bytes already present still dirties its pages (no byte comparison
// happens on the write path), and a restore marks every page whose
// backing pointer it swapped. It is the cheap signal; the exact answer
// is DiffDirty against a checkpoint.
//
// The tracker is distinct from the copy-on-write machinery: COW state
// (page reference counts) is relative to the checkpoints currently
// alive, while dirty bits are relative to the caller's last Reset. The
// dirty bitmap is what the serving layer's template-pool assertions and
// the chaos campaign's write-density accounting consume.
type DirtyTracker struct {
	m *Memory
}

// Dirty returns the memory's dirty tracker view. The view is a handle;
// it stays valid as segments are mapped.
func (m *Memory) Dirty() DirtyTracker { return DirtyTracker{m: m} }

// PageSize returns the tracking granularity in bytes.
func (DirtyTracker) PageSize() uint64 { return PageSize }

// Reset clears every dirty bit. Typically called right after a
// checkpoint so subsequent queries describe one run's write footprint.
func (t DirtyTracker) Reset() {
	for _, s := range t.m.segs {
		for i := range s.dirty {
			s.dirty[i] = 0
		}
		s.ndirty = 0
	}
}

// PageCount returns the total number of mapped pages.
func (t DirtyTracker) PageCount() int {
	var n int
	for _, s := range t.m.segs {
		n += len(s.pages)
	}
	return n
}

// DirtyPageCount returns the number of pages written since the last
// Reset, across all segments.
func (t DirtyTracker) DirtyPageCount() int {
	var n int
	for _, s := range t.m.segs {
		n += s.ndirty
	}
	return n
}

// DirtyBytes returns the number of mapped bytes covered by dirty pages
// (the final partial page of a segment counts only its mapped tail).
func (t DirtyTracker) DirtyBytes() uint64 {
	var n uint64
	for _, s := range t.m.segs {
		for _, i := range s.dirtyPages() {
			lo := uint64(i) << PageShift
			hi := lo + PageSize
			if hi > s.size {
				hi = s.size
			}
			n += hi - lo
		}
	}
	return n
}

// DirtyPages returns the dirty page indices of the (lowest-based)
// segment of the given kind, ascending. A nil result means the segment
// is clean or not mapped.
func (t DirtyTracker) DirtyPages(kind SegKind) []int {
	s := t.m.Segment(kind)
	if s == nil {
		return nil
	}
	return s.dirtyPages()
}

// SegmentDirtyCount returns the dirty page count of the (lowest-based)
// segment of the given kind, or 0 if not mapped.
func (t DirtyTracker) SegmentDirtyCount(kind SegKind) int {
	s := t.m.Segment(kind)
	if s == nil {
		return 0
	}
	return s.ndirty
}

// dirtyPages decodes the segment's bitmap into ascending page indices.
func (s *Segment) dirtyPages() []int {
	if s.ndirty == 0 {
		return nil
	}
	out := make([]int, 0, s.ndirty)
	for w, word := range s.dirty {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			out = append(out, i)
			word &= word - 1
		}
	}
	return out
}
