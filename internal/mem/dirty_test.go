package mem

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The dirty tracker's contract is page-granular over-approximation:
// every mutating path marks exactly the pages its byte range covers,
// relative to the last Reset. These tests pin the edge cases — writes
// straddling page boundaries, zero-length writes, Poke vs Write parity,
// whole-segment Memset, restore-after-restore, and checkpoint layout
// mismatch errors.

// dirtyFixture maps one 3-page data segment (last page partial) and one
// single-page heap segment, dirty bits cleared.
func dirtyFixture(t *testing.T) (*Memory, DirtyTracker) {
	t.Helper()
	m := &Memory{}
	if _, err := m.Map(SegData, 0x1000, 2*PageSize+100, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map(SegHeap, 0x100000, 512, PermRW); err != nil {
		t.Fatal(err)
	}
	d := m.Dirty()
	d.Reset()
	return m, d
}

func TestDirtyTrackerWritePaths(t *testing.T) {
	tests := []struct {
		name      string
		mutate    func(t *testing.T, m *Memory)
		wantData  []int // dirty page indices of the data segment
		wantHeap  []int
		wantBytes uint64 // DirtyBytes over both segments
	}{
		{
			name:   "no writes",
			mutate: func(t *testing.T, m *Memory) {},
		},
		{
			name: "single byte marks one page",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Write(0x1000, []byte{1}); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0},
			wantBytes: PageSize,
		},
		{
			name: "write straddling a page boundary marks both pages",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Write(Addr(0x1000+PageSize-1), []byte{1, 2}); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0, 1},
			wantBytes: 2 * PageSize,
		},
		{
			name: "write spanning three pages",
			mutate: func(t *testing.T, m *Memory) {
				b := make([]byte, PageSize+2)
				if err := m.Write(Addr(0x1000+PageSize-1), b); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0, 1, 2},
			wantBytes: 2*PageSize + 100, // page 2 is the 100-byte tail
		},
		{
			name: "zero-length write marks nothing",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Write(0x1000, nil); err != nil {
					t.Fatal(err)
				}
				if err := m.Write(Addr(0x1000+PageSize), []byte{}); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "zero-length memset marks nothing",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Memset(0x1000, 0xFF, 0); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "failed write marks nothing",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Write(Addr(0x1000+2*PageSize+99), []byte{1, 2}); err == nil {
					t.Fatal("overrunning write must fault")
				}
			},
		},
		{
			name: "poke marks like write",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Poke(Addr(0x1000+PageSize-1), []byte{1, 2}); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0, 1},
			wantBytes: 2 * PageSize,
		},
		{
			name: "poke ignores write perm but still marks",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Protect(SegData, PermRead); err != nil {
					t.Fatal(err)
				}
				if err := m.Poke(0x1000, []byte{7}); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0},
			wantBytes: PageSize,
		},
		{
			name: "memset spanning the whole segment marks every page",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Memset(0x1000, 0xAB, 2*PageSize+100); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0, 1, 2},
			wantBytes: 2*PageSize + 100,
		},
		{
			name: "strncpy pads into the second page",
			mutate: func(t *testing.T, m *Memory) {
				// 8 source bytes but n = PageSize+8: the NUL padding is
				// writes too, so both pages dirty.
				if err := m.StrNCpy(0x1000, "overflow", PageSize+8); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{0, 1},
			wantBytes: 2 * PageSize,
		},
		{
			name: "writes to both segments tracked per segment",
			mutate: func(t *testing.T, m *Memory) {
				if err := m.Write(Addr(0x1000+2*PageSize), []byte{1}); err != nil {
					t.Fatal(err)
				}
				if err := m.Write(0x100000, []byte{2}); err != nil {
					t.Fatal(err)
				}
			},
			wantData:  []int{2},
			wantHeap:  []int{0},
			wantBytes: 100 + 512, // both are partial tail pages
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, d := dirtyFixture(t)
			tc.mutate(t, m)
			if got := d.DirtyPages(SegData); !reflect.DeepEqual(got, tc.wantData) {
				t.Errorf("data dirty pages = %v, want %v", got, tc.wantData)
			}
			if got := d.DirtyPages(SegHeap); !reflect.DeepEqual(got, tc.wantHeap) {
				t.Errorf("heap dirty pages = %v, want %v", got, tc.wantHeap)
			}
			if got := d.DirtyPageCount(); got != len(tc.wantData)+len(tc.wantHeap) {
				t.Errorf("DirtyPageCount = %d, want %d", got, len(tc.wantData)+len(tc.wantHeap))
			}
			if got := d.DirtyBytes(); got != tc.wantBytes {
				t.Errorf("DirtyBytes = %d, want %d", got, tc.wantBytes)
			}
			if got := d.SegmentDirtyCount(SegData); got != len(tc.wantData) {
				t.Errorf("SegmentDirtyCount(data) = %d, want %d", got, len(tc.wantData))
			}
			// Reset always returns to a clean slate.
			d.Reset()
			if got := d.DirtyPageCount(); got != 0 {
				t.Errorf("DirtyPageCount after Reset = %d, want 0", got)
			}
		})
	}
}

func TestDirtyTrackerCounts(t *testing.T) {
	m, d := dirtyFixture(t)
	if got, want := d.PageCount(), 3+1; got != want {
		t.Fatalf("PageCount = %d, want %d", got, want)
	}
	if got := d.PageSize(); got != PageSize {
		t.Fatalf("PageSize = %d, want %d", got, PageSize)
	}
	if got := d.DirtyPages(SegStack); got != nil {
		t.Fatalf("DirtyPages(unmapped) = %v, want nil", got)
	}
	if got := d.SegmentDirtyCount(SegStack); got != 0 {
		t.Fatalf("SegmentDirtyCount(unmapped) = %d, want 0", got)
	}
	// Re-dirtying the same page does not double count.
	if err := m.Write(0x1000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1001, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got := d.DirtyPageCount(); got != 1 {
		t.Fatalf("DirtyPageCount after two same-page writes = %d, want 1", got)
	}
}

func TestDirtyTrackerRestoreMarksSwappedPages(t *testing.T) {
	m, d := dirtyFixture(t)
	cp := m.CowCheckpoint()

	// Dirty one page, reset the tracker, then restore: the restore
	// swaps exactly that page back, so it must be the only dirty page.
	if err := m.Write(Addr(0x1000+PageSize), []byte{9}); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	restored, err := m.RestoreDirty(cp)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("RestoreDirty restored %d pages, want 1", restored)
	}
	if got := d.DirtyPages(SegData); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("dirty pages after restore = %v, want [1]", got)
	}

	// Restore-after-restore: the image already matches the checkpoint,
	// so the second restore swaps nothing and marks nothing.
	d.Reset()
	restored, err = m.RestoreDirty(cp)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("second RestoreDirty restored %d pages, want 0", restored)
	}
	if got := d.DirtyPageCount(); got != 0 {
		t.Fatalf("dirty pages after idempotent restore = %d, want 0", got)
	}
}

func TestRestoreAfterRestoreBytes(t *testing.T) {
	m, _ := dirtyFixture(t)
	if err := m.Memset(0x1000, 0x11, 300); err != nil {
		t.Fatal(err)
	}
	cp := m.CowCheckpoint()
	want, err := m.Snapshot(0x1000, 2*PageSize+100)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := m.Memset(0x1000, byte(0x20+round), 2*PageSize+100); err != nil {
			t.Fatal(err)
		}
		if _, err := m.RestoreDirty(cp); err != nil {
			t.Fatalf("restore round %d: %v", round, err)
		}
		got, err := m.Snapshot(0x1000, 2*PageSize+100)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("round %d: restored bytes diverge from checkpoint", round)
		}
	}
}

func TestCheckpointLayoutMismatchErrors(t *testing.T) {
	build := func(mapSpec ...[3]uint64) *Memory { // kind, base, size
		m := &Memory{}
		for _, s := range mapSpec {
			if _, err := m.Map(SegKind(s[0]), Addr(s[1]), s[2], PermRW); err != nil {
				panic(err)
			}
		}
		return m
	}
	base := [3]uint64{uint64(SegData), 0x1000, 256}
	tests := []struct {
		name    string
		other   *Memory
		wantSub string
	}{
		{"segment count", build(base, [3]uint64{uint64(SegHeap), 0x10000, 64}), "checkpoint has 1 segments"},
		{"kind mismatch", build([3]uint64{uint64(SegBSS), 0x1000, 256}), "segment 0"},
		{"base mismatch", build([3]uint64{uint64(SegData), 0x2000, 256}), "segment 0"},
		{"size mismatch", build([3]uint64{uint64(SegData), 0x1000, 512}), "segment 0"},
	}
	cp := build(base).Checkpoint()
	cowCP := build(base).CowCheckpoint()
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			for _, c := range []*Checkpoint{cp, cowCP} {
				if err := tc.other.Restore(c); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
					t.Errorf("Restore(cow=%v) err = %v, want substring %q", c.COW(), err, tc.wantSub)
				}
				if _, err := tc.other.RestoreDirty(c); err == nil {
					t.Errorf("RestoreDirty(cow=%v) must reject layout mismatch", c.COW())
				}
				if _, err := tc.other.DiffCheckpoint(c); err == nil {
					t.Errorf("DiffCheckpoint(cow=%v) must reject layout mismatch", c.COW())
				}
			}
		})
	}
}
