package mem

import (
	"fmt"
	"strings"
)

// Snapshot captures the contents of a byte range for later comparison.
type Snapshot struct {
	Start Addr
	Data  []byte
}

// Snapshot copies [start, start+n) for later diffing. Unlike Read it
// ignores read permission so rodata and guard regions can be captured.
func (m *Memory) Snapshot(start Addr, n uint64) (*Snapshot, error) {
	s, f := m.seg(start, n)
	if f != nil {
		return nil, f
	}
	data := make([]byte, n)
	s.readRaw(uint64(start.Diff(s.Base)), data)
	return &Snapshot{Start: start, Data: data}, nil
}

// DiffRegion is a contiguous run of bytes that changed between a snapshot
// and the current memory contents.
type DiffRegion struct {
	Addr Addr
	Old  []byte
	New  []byte
}

// Diff compares the snapshot against current memory and returns the changed
// runs in ascending address order. Experiments use it to report exactly
// which victim bytes an overflow clobbered.
func (m *Memory) Diff(snap *Snapshot) ([]DiffRegion, error) {
	cur, err := m.Snapshot(snap.Start, uint64(len(snap.Data)))
	if err != nil {
		return nil, err
	}
	return diffBytes(snap.Start, snap.Data, cur.Data), nil
}

// diffBytes computes the changed runs between two equal-length byte
// images starting at base. Shared by Diff and DiffCheckpoint.
func diffBytes(base Addr, old, cur []byte) []DiffRegion {
	var out []DiffRegion
	i := 0
	for i < len(old) {
		if old[i] == cur[i] {
			i++
			continue
		}
		j := i
		for j < len(old) && old[j] != cur[j] {
			j++
		}
		out = append(out, DiffRegion{
			Addr: base.Add(int64(i)),
			Old:  append([]byte(nil), old[i:j]...),
			New:  append([]byte(nil), cur[i:j]...),
		})
		i = j
	}
	return out
}

// Hexdump renders [start, start+n) in the classic 16-bytes-per-line format
// with a printable-ASCII gutter. Unreadable ranges yield an error.
func (m *Memory) Hexdump(start Addr, n uint64) (string, error) {
	snap, err := m.Snapshot(start, n)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for off := 0; off < len(snap.Data); off += 16 {
		end := off + 16
		if end > len(snap.Data) {
			end = len(snap.Data)
		}
		line := snap.Data[off:end]
		fmt.Fprintf(&sb, "%08x  ", uint64(start.Add(int64(off))))
		for i := 0; i < 16; i++ {
			if i == 8 {
				sb.WriteByte(' ')
			}
			if i < len(line) {
				fmt.Fprintf(&sb, "%02x ", line[i])
			} else {
				sb.WriteString("   ")
			}
		}
		sb.WriteString(" |")
		for _, b := range line {
			if b >= 0x20 && b < 0x7f {
				sb.WriteByte(b)
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String(), nil
}
