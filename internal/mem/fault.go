package mem

import (
	"errors"
	"fmt"
)

// FaultKind classifies a memory access violation.
type FaultKind int

// Fault kinds. FaultUnmapped corresponds to a SIGSEGV on an unmapped page;
// FaultPerm to a permission violation (write to rodata, execute with NX);
// FaultGuard to a write into a poisoned guard region (the ASan-style
// red-zone instrumentation of the memguard defense); FaultShadow to a
// write rejected by the byte-granular shadow-memory sanitizer (see
// internal/shadow).
const (
	FaultUnmapped FaultKind = iota + 1
	FaultPerm
	FaultGuard
	FaultShadow
)

// String returns a short human-readable name.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultPerm:
		return "permission"
	case FaultGuard:
		return "guard"
	case FaultShadow:
		return "shadow"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is a memory access violation. It is the simulated analogue of a
// hardware fault: scenarios that dereference a corrupted pointer observe a
// Fault exactly where the paper's victim programs crashed.
type Fault struct {
	Kind FaultKind
	Addr Addr
	Size uint64
	// Want and Have are set for permission faults.
	Want Perm
	Have Perm
	// Guard names the violated red zone for guard faults, and carries
	// the poisoned-region label (with class/field attribution) for
	// shadow faults.
	Guard string
	// Shadow names the poison kind ("redzone", "quarantine", ...) for
	// shadow faults. For shadow faults Addr is the first poisoned byte
	// the rejected write would have corrupted; no byte was written.
	Shadow string
}

// Error implements the error interface.
func (f *Fault) Error() string {
	switch f.Kind {
	case FaultPerm:
		return fmt.Sprintf("mem: permission fault at %#x (size %d): need %s, segment is %s",
			uint64(f.Addr), f.Size, f.Want, f.Have)
	case FaultGuard:
		return fmt.Sprintf("mem: guard violation: write of %d bytes at %#x enters red zone %q",
			f.Size, uint64(f.Addr), f.Guard)
	case FaultShadow:
		return fmt.Sprintf("mem: shadow violation: write of %d bytes hits %s byte at %#x (%s)",
			f.Size, f.Shadow, uint64(f.Addr), f.Guard)
	default:
		return fmt.Sprintf("mem: segmentation fault at %#x (size %d)", uint64(f.Addr), f.Size)
	}
}

// IsFault reports whether err is (or wraps) a *Fault, returning it if
// so. It traverses the wrapped-error tree exactly the way errors.As
// does: through single Unwrap() error chains and through multi-error
// Unwrap() []error nodes such as those produced by errors.Join, in
// which case the first fault in depth-first order is returned.
func IsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}
