package mem

import (
	"errors"
	"fmt"
	"testing"
)

func TestIsFaultDirect(t *testing.T) {
	f := &Fault{Kind: FaultUnmapped, Addr: 0x1000, Size: 4}
	got, ok := IsFault(f)
	if !ok || got != f {
		t.Fatalf("IsFault(direct) = %v, %v", got, ok)
	}
}

func TestIsFaultSingleWrap(t *testing.T) {
	f := &Fault{Kind: FaultPerm, Addr: 0x2000, Size: 1, Want: PermWrite, Have: PermRead}
	err := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", f))
	got, ok := IsFault(err)
	if !ok || got != f {
		t.Fatalf("IsFault(wrapped) = %v, %v", got, ok)
	}
}

func TestIsFaultJoined(t *testing.T) {
	f := &Fault{Kind: FaultGuard, Addr: 0x3000, Size: 8, Guard: "rz"}
	err := errors.Join(errors.New("unrelated"), f, errors.New("also unrelated"))
	got, ok := IsFault(err)
	if !ok || got != f {
		t.Fatalf("IsFault(joined) = %v, %v: join unwrapping broken", got, ok)
	}
}

func TestIsFaultDeepJoinedAndWrapped(t *testing.T) {
	f := &Fault{Kind: FaultUnmapped, Addr: 0x4000, Size: 2}
	// A join nested inside fmt wrapping, with the fault itself wrapped
	// one level deeper inside the join — the shape errors.As handles.
	inner := errors.Join(
		errors.New("first branch"),
		fmt.Errorf("second branch: %w", f),
	)
	err := fmt.Errorf("campaign: %w", inner)
	got, ok := IsFault(err)
	if !ok || got != f {
		t.Fatalf("IsFault(deep joined) = %v, %v", got, ok)
	}
}

func TestIsFaultNegative(t *testing.T) {
	if _, ok := IsFault(nil); ok {
		t.Error("IsFault(nil) = true")
	}
	if _, ok := IsFault(errors.New("plain")); ok {
		t.Error("IsFault(plain) = true")
	}
	if _, ok := IsFault(errors.Join(errors.New("a"), errors.New("b"))); ok {
		t.Error("IsFault(join of plain errors) = true")
	}
}
