package mem

import (
	"encoding/binary"
	"testing"
)

// FuzzCowRestore feeds an op byte-string through the differential twin
// interpreter (see differential_test.go): the same decoded op sequence
// runs against a deep-copy-checkpointing twin and a COW-checkpointing
// twin, and any observable divergence — bytes, diffs, errors, perms —
// fails the target. The byte decoding is total: every input is a valid
// program, so the fuzzer spends its budget on semantics, not parsing.

// fuzzLayout is the fixed two-segment map fuzz programs run against:
// sizes chosen so one segment has a partial tail page and the other
// fits in a single page.
var fuzzLayout = dsLayout{
	kinds: []SegKind{SegData, SegHeap},
	bases: []Addr{0x1000, 0x100000},
	sizes: []uint64{PageSize + PageSize/2, PageSize / 2},
}

// decodeFuzzOps interprets data as an op program. Layout: repeated
// records of [opcode u8][seg u8][off u16][aux u16][fill u8]; truncated
// tails decode as zeroes. Offsets reach one page past a segment end so
// fault parity is fuzzed too.
func decodeFuzzOps(data []byte) []dsOp {
	const rec = 7
	var ops []dsOp
	for i := 0; i+1 <= len(data) && len(ops) < 64; i += rec {
		chunk := make([]byte, rec)
		copy(chunk, data[i:min(i+rec, len(data))])
		seg := int(chunk[1]) % len(fuzzLayout.kinds)
		size := fuzzLayout.sizes[seg]
		off := uint64(binary.LittleEndian.Uint16(chunk[2:4])) % (size + PageSize)
		aux := uint64(binary.LittleEndian.Uint16(chunk[4:6]))
		fill := chunk[6]
		op := dsOp{Seg: seg, Off: off, Fill: fill}
		switch chunk[0] % 9 {
		case 0:
			op.Kind = "write"
			op.Data = fuzzPayload(fill, aux%(PageSize+3))
		case 1:
			op.Kind = "poke"
			op.Data = fuzzPayload(fill, aux%(PageSize+3))
		case 2:
			op.Kind = "memset"
			op.Len = aux % (2 * PageSize)
		case 3:
			op.Kind = "strncpy"
			op.Len = aux % 512
			n := op.Len
			if n > 64 {
				n = 64
			}
			op.Str = string(fuzzPayload(fill|1, n)) // |1: never NUL source bytes
		case 4:
			op.Kind = "wcstring"
			op.Str = string(fuzzPayload(fill|1, aux%128))
		case 5:
			op.Kind = "protect"
			op.Perm = []Perm{PermRead, PermRW, PermRWX}[int(fill)%3]
		case 6:
			op.Kind = "checkpoint"
		case 7:
			op.Kind = "restore"
		case 8:
			op.Kind = "diff"
		}
		ops = append(ops, op)
	}
	// Force the interesting tail every run: snapshot state, dirty it,
	// compare, roll back.
	return append(ops,
		dsOp{Kind: "checkpoint"},
		dsOp{Kind: "memset", Seg: 0, Off: 0, Len: PageSize, Fill: 0x5A},
		dsOp{Kind: "diff"},
		dsOp{Kind: "restore"},
		dsOp{Kind: "diff"},
	)
}

func fuzzPayload(seed byte, n uint64) []byte {
	b := make([]byte, n)
	x := uint32(seed)*2654435761 + 1
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

func FuzzCowRestore(f *testing.F) {
	// Seed corpus: empty program (tail ops only), a page-straddling
	// write + restore, a checkpoint tower with interleaved memsets, and
	// out-of-range + perm-revoked writes.
	f.Add([]byte{})
	f.Add([]byte{
		0, 0, 0xFF, 0x0F, 16, 0, 0xAB, // write data +0xFFF len 16 (straddles)
		6, 0, 0, 0, 0, 0, 0, // checkpoint
		2, 1, 0, 0, 0xFF, 0x01, 0x11, // memset heap
		7, 0, 0, 0, 0, 0, 0, // restore
	})
	f.Add([]byte{
		6, 0, 0, 0, 0, 0, 0,
		2, 0, 0, 0, 0x00, 0x10, 0x22,
		6, 0, 0, 0, 0, 0, 0,
		2, 0, 0, 8, 0x00, 0x08, 0x33,
		8, 0, 0, 0, 0, 0, 0,
		7, 0, 0, 0, 0, 0, 0,
		7, 0, 0, 0, 0, 0, 0, // restore-after-restore
	})
	f.Add([]byte{
		5, 0, 0, 0, 0, 0, 0, // protect data r--
		0, 0, 5, 0, 8, 0, 0x44, // write into read-only: must fault on both
		1, 0, 5, 0, 8, 0, 0x55, // poke bypasses perm on both
		0, 1, 0xFF, 0xFF, 4, 0, 0x66, // far out of range: fault parity
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzOps(data)
		if d := runScenario(t, fuzzLayout, ops); d != "" {
			t.Fatalf("deep/cow divergence: %s", d)
		}
	})
}
