package mem

// AccessKind distinguishes the two permission-checked access paths an
// AccessHook can observe.
type AccessKind int

// Access kinds delivered to an AccessHook.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "access"
	}
}

// HookDecision tells Memory what to do with an access the hook observed.
// The zero value lets the access proceed unchanged.
type HookDecision struct {
	// Fault, when non-nil, is raised instead of performing the access —
	// the injected analogue of a transient hardware fault.
	Fault *Fault
	// Drop, for writes, silently discards the write while reporting
	// success to the program: a dropped store.
	Drop bool
	// Replace, when non-nil, substitutes the access payload. For writes
	// the replacement bytes are stored instead of the program's bytes; a
	// replacement shorter than the original models a torn (partial)
	// write. For reads the replacement is returned to the program without
	// modifying memory: transient read corruption.
	Replace []byte
}

// AccessHook observes every permission-checked Read and Write after the
// mapping, permission, and guard checks have passed, and may alter the
// access via the returned decision. It is the seam the chaos layer uses
// to inject deterministic faults into an otherwise-healthy run.
//
// For writes, data is the program's outgoing bytes; for reads it is a
// copy of the bytes about to be returned. Hooks must not mutate data in
// place — use Replace. Loader pokes, snapshots, checkpoints, and
// restores bypass the hook: chaos applies to the simulated program's own
// accesses, not to the harness's inspection machinery.
type AccessHook func(kind AccessKind, addr Addr, data []byte) HookDecision

// SetAccessHook installs hook on the read/write path. Pass nil to
// disarm. Only one hook is active at a time; installing a hook replaces
// the previous one.
func (m *Memory) SetAccessHook(hook AccessHook) { m.hook = hook }

// AccessObserver passively observes every attempted access that passed
// the mapping and permission checks. Unlike an AccessHook it cannot
// alter the access, and it runs *before* the hook, so it sees the
// access exactly as the program issued it — including writes a chaos
// hook later drops or tears, and writes a guard region faults: the
// observer records intent, which is what the write-density heatmaps
// and per-segment volume metrics want ("where did the attack aim").
//
// The observer seam is independent of the hook seam: the obs layer
// observes while the chaos layer perturbs, on the same Memory, without
// either knowing about the other. A nil observer costs one pointer
// check per access.
type AccessObserver func(kind AccessKind, addr Addr, n uint64)

// SetAccessObserver installs fn as the passive access observer. Pass
// nil to disarm. Only one observer is active at a time.
func (m *Memory) SetAccessObserver(fn AccessObserver) { m.obs = fn }
