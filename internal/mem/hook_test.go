package mem

import (
	"bytes"
	"testing"
)

func hookImage(t *testing.T) *Image {
	t.Helper()
	img, err := NewProcessImage(ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestAccessHookObservesReadsAndWrites(t *testing.T) {
	img := hookImage(t)
	m := img.Mem
	var kinds []AccessKind
	m.SetAccessHook(func(k AccessKind, addr Addr, data []byte) HookDecision {
		kinds = append(kinds, k)
		return HookDecision{}
	})
	addr := img.Data.Base
	if err := m.WriteU32(addr, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v, err := m.ReadU32(addr); err != nil || v != 0xdeadbeef {
		t.Fatalf("read back %#x, %v", v, err)
	}
	if len(kinds) != 2 || kinds[0] != AccessWrite || kinds[1] != AccessRead {
		t.Fatalf("hook saw %v, want [write read]", kinds)
	}
}

func TestAccessHookInjectsFault(t *testing.T) {
	img := hookImage(t)
	m := img.Mem
	inject := &Fault{Kind: FaultPerm, Addr: img.Data.Base, Size: 4, Want: PermWrite}
	m.SetAccessHook(func(k AccessKind, addr Addr, data []byte) HookDecision {
		return HookDecision{Fault: inject}
	})
	err := m.WriteU32(img.Data.Base, 1)
	f, ok := IsFault(err)
	if !ok || f != inject {
		t.Fatalf("injected fault not raised: %v", err)
	}
	// Memory must be untouched by the faulted write.
	m.SetAccessHook(nil)
	if v, _ := m.ReadU32(img.Data.Base); v != 0 {
		t.Fatalf("faulted write still stored %#x", v)
	}
}

func TestAccessHookDropsWrite(t *testing.T) {
	img := hookImage(t)
	m := img.Mem
	w := m.Watch("victim", img.Data.Base, 8, nil)
	m.SetAccessHook(func(k AccessKind, addr Addr, data []byte) HookDecision {
		if k == AccessWrite {
			return HookDecision{Drop: true}
		}
		return HookDecision{}
	})
	if err := m.WriteU64(img.Data.Base, 0x1122334455667788); err != nil {
		t.Fatalf("dropped write reported failure: %v", err)
	}
	m.SetAccessHook(nil)
	if v, _ := m.ReadU64(img.Data.Base); v != 0 {
		t.Fatalf("dropped write stored %#x", v)
	}
	if w.Hits != 0 {
		t.Errorf("dropped write fired watchpoint %d times", w.Hits)
	}
}

func TestAccessHookTornWrite(t *testing.T) {
	img := hookImage(t)
	m := img.Mem
	m.SetAccessHook(func(k AccessKind, addr Addr, data []byte) HookDecision {
		if k == AccessWrite && len(data) == 4 {
			// Tear the store: only the first two bytes land.
			return HookDecision{Replace: append([]byte(nil), data[:2]...)}
		}
		return HookDecision{}
	})
	if err := m.WriteU32(img.Data.Base, 0xaabbccdd); err != nil {
		t.Fatal(err)
	}
	m.SetAccessHook(nil)
	got, err := m.Read(img.Data.Base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xdd, 0xcc, 0x00, 0x00}) {
		t.Fatalf("torn write stored % x", got)
	}
}

func TestAccessHookCorruptsRead(t *testing.T) {
	img := hookImage(t)
	m := img.Mem
	if err := m.WriteU8(img.Data.Base, 0x01); err != nil {
		t.Fatal(err)
	}
	m.SetAccessHook(func(k AccessKind, addr Addr, data []byte) HookDecision {
		if k == AccessRead {
			flipped := append([]byte(nil), data...)
			flipped[0] ^= 0x80 // single bit flip on the read path
			return HookDecision{Replace: flipped}
		}
		return HookDecision{}
	})
	v, err := m.ReadU8(img.Data.Base)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x81 {
		t.Fatalf("corrupted read = %#x, want 0x81", v)
	}
	m.SetAccessHook(nil)
	if v, _ := m.ReadU8(img.Data.Base); v != 0x01 {
		t.Fatalf("memory mutated by read corruption: %#x", v)
	}
}

func TestHookBypassedByHarnessPaths(t *testing.T) {
	img := hookImage(t)
	m := img.Mem
	calls := 0
	m.SetAccessHook(func(k AccessKind, addr Addr, data []byte) HookDecision {
		calls++
		return HookDecision{Drop: true}
	})
	// Poke (loader), Snapshot, Checkpoint and Restore are harness
	// machinery and must not be chaos targets.
	if err := m.Poke(img.Data.Base, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(img.Data.Base, 3); err != nil {
		t.Fatal(err)
	}
	cp := m.Checkpoint()
	if err := m.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("harness paths hit the hook %d times", calls)
	}
}
