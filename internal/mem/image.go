package mem

import "fmt"

// ImageConfig sizes the canonical process image. The zero value selects the
// defaults below, which mirror a small i386 ELF process like the paper's
// victim programs.
type ImageConfig struct {
	TextSize   uint64 // default 64 KiB
	RODataSize uint64 // default 64 KiB
	DataSize   uint64 // default 64 KiB
	BSSSize    uint64 // default 64 KiB
	HeapSize   uint64 // default 256 KiB
	StackSize  uint64 // default 64 KiB

	// ExecStack maps the stack rwx instead of rw-. The paper's testbed
	// (Ubuntu 10.04, gcc 4.4.3) had NX stacks by default; the §3.6.2 code
	// injection experiment flips this to show both outcomes.
	ExecStack bool
}

// Default process-image base addresses, modelled on the classic i386 ELF
// layout the paper references (text low, stack high, heap in between).
const (
	TextBase   Addr = 0x08048000
	RODataBase Addr = 0x08060000
	DataBase   Addr = 0x08080000
	BSSBase    Addr = 0x08090000
	HeapBase   Addr = 0x080a0000
	StackTop   Addr = 0xbffff000 // first address above the stack
)

func (c *ImageConfig) withDefaults() ImageConfig {
	out := *c
	def := func(v *uint64, d uint64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&out.TextSize, 64<<10)
	def(&out.RODataSize, 64<<10)
	def(&out.DataSize, 64<<10)
	def(&out.BSSSize, 64<<10)
	def(&out.HeapSize, 256<<10)
	def(&out.StackSize, 64<<10)
	return out
}

// Image is a fully mapped process address space with the conventional
// segments resolved.
type Image struct {
	Mem    *Memory
	Text   *Segment
	ROData *Segment
	Data   *Segment
	BSS    *Segment
	Heap   *Segment
	Stack  *Segment
}

// NewProcessImage maps the canonical segment layout and returns the image.
func NewProcessImage(cfg ImageConfig) (*Image, error) {
	c := cfg.withDefaults()
	m := &Memory{}
	img := &Image{Mem: m}

	stackPerm := PermRW
	if c.ExecStack {
		stackPerm = PermRWX
	}
	maps := []struct {
		kind SegKind
		base Addr
		size uint64
		perm Perm
		out  **Segment
	}{
		{SegText, TextBase, c.TextSize, PermRX, &img.Text},
		{SegROData, RODataBase, c.RODataSize, PermRead, &img.ROData},
		{SegData, DataBase, c.DataSize, PermRW, &img.Data},
		{SegBSS, BSSBase, c.BSSSize, PermRW, &img.BSS},
		{SegHeap, HeapBase, c.HeapSize, PermRW, &img.Heap},
		{SegStack, StackTop.Add(-int64(c.StackSize)), c.StackSize, stackPerm, &img.Stack},
	}
	for _, mp := range maps {
		seg, err := m.Map(mp.kind, mp.base, mp.size, mp.perm)
		if err != nil {
			return nil, fmt.Errorf("mem: building process image: %w", err)
		}
		*mp.out = seg
	}
	return img, nil
}
