// Package mem implements the byte-addressable virtual address space that
// underlies the simulated process. It is the substrate on which every
// attack in the paper is reproduced: an overflow is nothing more than a
// sequence of byte writes that walk past the end of one arena into the
// bytes of another, and this package makes those writes observable.
//
// The address space is a set of non-overlapping mapped segments (text,
// rodata, data, bss, heap, stack), each with R/W/X permissions. Accesses
// outside mapped segments or against permissions raise a *Fault, mirroring
// a SIGSEGV in the paper's Ubuntu testbed. Watchpoints allow experiments to
// observe writes to victim locations without altering the attack path.
package mem

import (
	"fmt"
	"math"
	"sort"
)

// Addr is a virtual address in the simulated process. The data model
// (ILP32 vs LP64) constrains pointer width at the layout level; mem itself
// is width-agnostic.
type Addr uint64

// NullAddr is the null pointer. Segment layouts never map page zero so a
// null dereference always faults, as on the paper's testbed.
const NullAddr Addr = 0

// Add returns a+off. It is a convenience for pointer arithmetic in
// scenarios and allocators.
func (a Addr) Add(off int64) Addr { return Addr(int64(a) + off) }

// Diff returns a-b as a signed offset.
func (a Addr) Diff(b Addr) int64 { return int64(a) - int64(b) }

// Perm is a bitmask of segment permissions.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Common permission combinations.
const (
	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// String returns the permissions in ls -l style, e.g. "rw-".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// SegKind identifies the role of a segment in the simulated process image.
type SegKind int

// Segment kinds, in ascending address order of the default process image.
const (
	SegText SegKind = iota + 1
	SegROData
	SegData
	SegBSS
	SegHeap
	SegStack
)

var segKindNames = map[SegKind]string{
	SegText:   "text",
	SegROData: "rodata",
	SegData:   "data",
	SegBSS:    "bss",
	SegHeap:   "heap",
	SegStack:  "stack",
}

// String returns the conventional ELF-style segment name.
func (k SegKind) String() string {
	if s, ok := segKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("SegKind(%d)", int(k))
}

// Segment is one mapped region of the address space. Its backing store
// is an array of reference-counted fixed-size pages (see paging.go):
// pages may be shared with checkpoints or with other segments cloned
// from the same image template, and every write path copy-on-writes a
// shared page before mutating it. A per-segment dirty bitmap records
// which pages have been written since the last DirtyTracker reset.
type Segment struct {
	Kind SegKind
	Base Addr
	Perm Perm

	size   uint64
	pages  []*page
	dirty  []uint64 // dirty-page bitmap, one bit per page
	ndirty int      // population count of dirty
}

// Size returns the segment length in bytes.
func (s *Segment) Size() uint64 { return s.size }

// End returns the first address past the segment.
func (s *Segment) End() Addr { return s.Base.Add(int64(s.size)) }

// Contains reports whether addr lies inside the segment.
func (s *Segment) Contains(addr Addr) bool {
	return addr >= s.Base && addr < s.End()
}

// containsRange reports whether [addr, addr+n) lies inside the segment.
func (s *Segment) containsRange(addr Addr, n uint64) bool {
	if n == 0 {
		return s.Contains(addr) || addr == s.End()
	}
	return addr >= s.Base && addr.Add(int64(n)) <= s.End() && addr.Add(int64(n)) > addr
}

// Memory is a simulated flat address space composed of mapped segments.
// The zero value is an empty address space; use Map to add segments or
// NewProcessImage for the canonical process layout.
//
// Memory is not safe for concurrent use; a simulated process is
// single-threaded, as are all of the paper's victim programs.
type Memory struct {
	segs   []*Segment // sorted by Base
	watch  []*Watchpoint
	guards []*GuardRegion
	// writeLog, when non-nil, receives a record for every successful write.
	writeLog func(WriteRecord)
	// hook, when non-nil, observes (and may alter) every checked access.
	hook AccessHook
	// obs, when non-nil, passively observes every attempted checked
	// access before the hook runs (the observability seam).
	obs AccessObserver
	// shadow, when non-nil, validates every checked write against the
	// byte-granular shadow encoding before it lands (the sanitizer
	// seam, see internal/shadow).
	shadow ShadowChecker
	// mut, when non-nil, observes every byte range a store actually
	// mutated — program Writes after every check and hook has passed,
	// and loader Pokes (the recording seam, see internal/compile).
	mut func(addr Addr, n uint64)
}

// WriteRecord describes one completed write, for tracing.
type WriteRecord struct {
	Addr Addr
	Old  []byte
	New  []byte
}

// SetWriteLogger installs fn to observe every successful write. Pass nil to
// disable. Used by the experiment harness to build memory diffs.
func (m *Memory) SetWriteLogger(fn func(WriteRecord)) { m.writeLog = fn }

// SetMutObserver installs fn to observe every byte range a store
// mutates, after it lands. Unlike the AccessObserver (which sees
// *attempted* accesses before any check) and the write logger (which
// sees Writes only), the mutation observer fires exactly when backing
// bytes changed hands: after a Write clears permissions, guards,
// shadow, and hooks — with the hook-replaced length, if any — and
// after every loader Poke. It is the seam the scenario compiler's
// recorder uses to capture a run's precise write set, so dirty-page
// accounting can be reproduced by replaying exactly the recorded
// ranges. Pass nil to disarm; a nil observer costs one pointer check.
func (m *Memory) SetMutObserver(fn func(addr Addr, n uint64)) { m.mut = fn }

// Map adds a segment of n bytes at base with the given permissions.
// It returns an error if the range overlaps an existing segment or wraps.
func (m *Memory) Map(kind SegKind, base Addr, n uint64, perm Perm) (*Segment, error) {
	if n == 0 {
		return nil, fmt.Errorf("mem: map %s at %#x: zero size", kind, uint64(base))
	}
	end := base.Add(int64(n))
	if end <= base {
		return nil, fmt.Errorf("mem: map %s at %#x size %d: address wrap", kind, uint64(base), n)
	}
	for _, s := range m.segs {
		if base < s.End() && s.Base < end {
			return nil, fmt.Errorf("mem: map %s [%#x,%#x) overlaps %s [%#x,%#x)",
				kind, uint64(base), uint64(end), s.Kind, uint64(s.Base), uint64(s.End()))
		}
	}
	seg := &Segment{
		Kind: kind, Base: base, Perm: perm,
		size:  n,
		pages: newPages(n),
		dirty: make([]uint64, (pagesFor(n)+63)/64),
	}
	m.segs = append(m.segs, seg)
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
	return seg, nil
}

// Segments returns the mapped segments in ascending base order. The
// returned slice is a copy; the segments themselves are shared.
func (m *Memory) Segments() []*Segment {
	out := make([]*Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// Segment returns the segment of the given kind, or nil if not mapped.
// If several segments share a kind the lowest-based one is returned.
func (m *Memory) Segment(kind SegKind) *Segment {
	for _, s := range m.segs {
		if s.Kind == kind {
			return s
		}
	}
	return nil
}

// Protect changes a mapped segment's permissions at runtime — the
// simulated mprotect(2), used to model defenses deployed after process
// start (e.g. marking a stack non-executable).
func (m *Memory) Protect(kind SegKind, perm Perm) error {
	s := m.Segment(kind)
	if s == nil {
		return fmt.Errorf("mem: protect: no %s segment mapped", kind)
	}
	s.Perm = perm
	return nil
}

// FindSegment returns the segment containing addr, or nil.
func (m *Memory) FindSegment(addr Addr) *Segment {
	// Binary search over sorted bases.
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].End() > addr })
	if i < len(m.segs) && m.segs[i].Contains(addr) {
		return m.segs[i]
	}
	return nil
}

// seg returns the segment covering [addr, addr+n) or a fault.
func (m *Memory) seg(addr Addr, n uint64) (*Segment, *Fault) {
	s := m.FindSegment(addr)
	if s == nil || !s.containsRange(addr, n) {
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr, Size: n}
	}
	return s, nil
}

// CheckRange verifies that [addr, addr+n) is mapped with all bits in perm.
// It returns nil on success and a *Fault describing the violation otherwise.
func (m *Memory) CheckRange(addr Addr, n uint64, perm Perm) error {
	s, f := m.seg(addr, n)
	if f != nil {
		return f
	}
	if s.Perm&perm != perm {
		return &Fault{Kind: FaultPerm, Addr: addr, Size: n, Want: perm, Have: s.Perm}
	}
	return nil
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr Addr, n uint64) ([]byte, error) {
	s, f := m.seg(addr, n)
	if f != nil {
		return nil, f
	}
	if s.Perm&PermRead == 0 {
		return nil, &Fault{Kind: FaultPerm, Addr: addr, Size: n, Want: PermRead, Have: s.Perm}
	}
	if m.obs != nil {
		m.obs(AccessRead, addr, n)
	}
	out := make([]byte, n)
	s.readRaw(uint64(addr.Diff(s.Base)), out)
	if m.hook != nil {
		switch d := m.hook(AccessRead, addr, out); {
		case d.Fault != nil:
			return nil, d.Fault
		case d.Replace != nil:
			return d.Replace, nil
		}
	}
	return out, nil
}

// Write copies b into memory at addr, honouring permissions and firing
// watchpoints. The old bytes are captured before the write for tracing.
func (m *Memory) Write(addr Addr, b []byte) error {
	n := uint64(len(b))
	s, f := m.seg(addr, n)
	if f != nil {
		return f
	}
	if s.Perm&PermWrite == 0 {
		return &Fault{Kind: FaultPerm, Addr: addr, Size: n, Want: PermWrite, Have: s.Perm}
	}
	if m.obs != nil {
		m.obs(AccessWrite, addr, n)
	}
	if m.shadow != nil {
		// The sanitizer runs before the guard check so the
		// byte-granular diagnosis wins attribution, and before any
		// byte is stored: a rejected write corrupts nothing.
		if f := m.shadow.CheckWrite(addr, n); f != nil {
			return f
		}
	}
	if f := m.checkGuards(addr, n); f != nil {
		return f
	}
	if m.hook != nil {
		switch d := m.hook(AccessWrite, addr, b); {
		case d.Fault != nil:
			return d.Fault
		case d.Drop:
			return nil
		case d.Replace != nil:
			b = d.Replace
			n = uint64(len(b))
			if n == 0 {
				return nil
			}
		}
	}
	off := uint64(addr.Diff(s.Base))
	var old []byte
	if m.writeLog != nil || len(m.watch) > 0 {
		old = make([]byte, n)
		s.readRaw(off, old)
	}
	s.writeRaw(off, b)
	if m.mut != nil && n > 0 {
		m.mut(addr, n)
	}
	if m.writeLog != nil {
		nb := make([]byte, n)
		copy(nb, b)
		m.writeLog(WriteRecord{Addr: addr, Old: old, New: nb})
	}
	m.fireWatch(addr, old, b)
	return nil
}

// Poke writes bytes ignoring write permission (but still requiring the
// range to be mapped). It is used by the loader to populate text/rodata and
// never by simulated program code.
func (m *Memory) Poke(addr Addr, b []byte) error {
	s, f := m.seg(addr, uint64(len(b)))
	if f != nil {
		return f
	}
	s.writeRaw(uint64(addr.Diff(s.Base)), b)
	if m.mut != nil && len(b) > 0 {
		m.mut(addr, uint64(len(b)))
	}
	return nil
}

// Memset fills [addr, addr+n) with v. It is the simulated counterpart of
// the paper's §5.1 sanitization primitive.
func (m *Memory) Memset(addr Addr, v byte, n uint64) error {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	if v != 0 {
		for i := range b {
			b[i] = v
		}
	}
	return m.Write(addr, b)
}

// --- Fixed-width scalar accessors (little-endian, as on the paper's i386
// testbed). -------------------------------------------------------------

// ReadU8 reads one byte.
func (m *Memory) ReadU8(addr Addr) (uint8, error) {
	b, err := m.Read(addr, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU8 writes one byte.
func (m *Memory) WriteU8(addr Addr, v uint8) error { return m.Write(addr, []byte{v}) }

// ReadU16 reads a little-endian uint16.
func (m *Memory) ReadU16(addr Addr) (uint16, error) {
	b, err := m.Read(addr, 2)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

// WriteU16 writes a little-endian uint16.
func (m *Memory) WriteU16(addr Addr, v uint16) error {
	return m.Write(addr, []byte{byte(v), byte(v >> 8)})
}

// ReadU32 reads a little-endian uint32.
func (m *Memory) ReadU32(addr Addr) (uint32, error) {
	b, err := m.Read(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteU32 writes a little-endian uint32.
func (m *Memory) WriteU32(addr Addr, v uint32) error {
	return m.Write(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// ReadU64 reads a little-endian uint64.
func (m *Memory) ReadU64(addr Addr) (uint64, error) {
	b, err := m.Read(addr, 8)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU64 writes a little-endian uint64.
func (m *Memory) WriteU64(addr Addr, v uint64) error {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, b)
}

// ReadUint reads an unsigned integer of the given byte width (1, 2, 4, 8).
func (m *Memory) ReadUint(addr Addr, width int) (uint64, error) {
	switch width {
	case 1:
		v, err := m.ReadU8(addr)
		return uint64(v), err
	case 2:
		v, err := m.ReadU16(addr)
		return uint64(v), err
	case 4:
		v, err := m.ReadU32(addr)
		return uint64(v), err
	case 8:
		return m.ReadU64(addr)
	default:
		return 0, fmt.Errorf("mem: read uint width %d at %#x: unsupported width", width, uint64(addr))
	}
}

// WriteUint writes an unsigned integer of the given byte width (1, 2, 4, 8).
// Values are truncated to the width, as a store instruction would.
func (m *Memory) WriteUint(addr Addr, v uint64, width int) error {
	switch width {
	case 1:
		return m.WriteU8(addr, uint8(v))
	case 2:
		return m.WriteU16(addr, uint16(v))
	case 4:
		return m.WriteU32(addr, uint32(v))
	case 8:
		return m.WriteU64(addr, v)
	default:
		return fmt.Errorf("mem: write uint width %d at %#x: unsupported width", width, uint64(addr))
	}
}

// ReadInt reads a signed integer of the given byte width, sign-extended.
func (m *Memory) ReadInt(addr Addr, width int) (int64, error) {
	u, err := m.ReadUint(addr, width)
	if err != nil {
		return 0, err
	}
	shift := uint(64 - 8*width)
	return int64(u<<shift) >> shift, nil
}

// WriteInt writes a signed integer of the given byte width.
func (m *Memory) WriteInt(addr Addr, v int64, width int) error {
	return m.WriteUint(addr, uint64(v), width)
}

// ReadF64 reads a little-endian IEEE-754 double.
func (m *Memory) ReadF64(addr Addr) (float64, error) {
	u, err := m.ReadU64(addr)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// WriteF64 writes a little-endian IEEE-754 double.
func (m *Memory) WriteF64(addr Addr, v float64) error {
	return m.WriteU64(addr, math.Float64bits(v))
}

// ReadF32 reads a little-endian IEEE-754 float.
func (m *Memory) ReadF32(addr Addr) (float32, error) {
	u, err := m.ReadU32(addr)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(u), nil
}

// WriteF32 writes a little-endian IEEE-754 float.
func (m *Memory) WriteF32(addr Addr, v float32) error {
	return m.WriteU32(addr, math.Float32bits(v))
}

// ReadCString reads a NUL-terminated byte string starting at addr, up to
// max bytes (not counting the terminator). If no NUL is found within max
// bytes the first max bytes are returned with ok=false — exactly the
// over-read behaviour the §4.3 information-leak experiments rely on.
func (m *Memory) ReadCString(addr Addr, max uint64) (s []byte, ok bool, err error) {
	for i := uint64(0); i < max; i++ {
		b, err := m.ReadU8(addr.Add(int64(i)))
		if err != nil {
			return nil, false, err
		}
		if b == 0 {
			return s, true, nil
		}
		s = append(s, b)
	}
	return s, false, nil
}

// WriteCString writes s followed by a NUL terminator.
func (m *Memory) WriteCString(addr Addr, s string) error {
	b := make([]byte, len(s)+1)
	copy(b, s)
	return m.Write(addr, b)
}

// StrNCpy emulates C strncpy(dst, src, n): copies at most n bytes from the
// Go string src, NUL-padding to exactly n bytes if src is shorter. Like the
// real function it performs no bounds checking against dst's arena — the
// bounds discipline (or lack of it) is the caller's, which is the crux of
// the §4 two-step array attacks.
func (m *Memory) StrNCpy(dst Addr, src string, n uint64) error {
	b := make([]byte, n)
	copy(b, src)
	return m.Write(dst, b)
}
