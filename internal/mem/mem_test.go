package mem

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func newTestMem(t *testing.T) (*Memory, *Segment) {
	t.Helper()
	m := &Memory{}
	seg, err := m.Map(SegData, 0x1000, 0x1000, PermRW)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return m, seg
}

func TestMapRejectsOverlap(t *testing.T) {
	m := &Memory{}
	if _, err := m.Map(SegData, 0x1000, 0x1000, PermRW); err != nil {
		t.Fatalf("first map: %v", err)
	}
	tests := []struct {
		name string
		base Addr
		size uint64
	}{
		{"identical", 0x1000, 0x1000},
		{"head overlap", 0x0f00, 0x200},
		{"tail overlap", 0x1f00, 0x200},
		{"contained", 0x1100, 0x100},
		{"containing", 0x0800, 0x4000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := m.Map(SegBSS, tt.base, tt.size, PermRW); err == nil {
				t.Errorf("Map(%#x, %#x) succeeded, want overlap error", uint64(tt.base), tt.size)
			}
		})
	}
}

func TestMapRejectsZeroSizeAndWrap(t *testing.T) {
	m := &Memory{}
	if _, err := m.Map(SegData, 0x1000, 0, PermRW); err == nil {
		t.Error("zero-size map succeeded")
	}
	if _, err := m.Map(SegData, ^Addr(0)-10, 100, PermRW); err == nil {
		t.Error("wrapping map succeeded")
	}
}

func TestAdjacentSegmentsAllowed(t *testing.T) {
	m := &Memory{}
	if _, err := m.Map(SegData, 0x1000, 0x1000, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map(SegBSS, 0x2000, 0x1000, PermRW); err != nil {
		t.Errorf("adjacent map failed: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m, _ := newTestMem(t)
	want := []byte{1, 2, 3, 4, 5}
	if err := m.Write(0x1100, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := m.Read(0x1100, 5)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Read = %v, want %v", got, want)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	m, _ := newTestMem(t)
	tests := []struct {
		name string
		fn   func() error
	}{
		{"read below", func() error { _, err := m.Read(0x0fff, 1); return err }},
		{"read above", func() error { _, err := m.Read(0x2000, 1); return err }},
		{"read straddle", func() error { _, err := m.Read(0x1ffe, 4); return err }},
		{"write straddle", func() error { return m.Write(0x1fff, []byte{1, 2}) }},
		{"write null", func() error { return m.Write(NullAddr, []byte{1}) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.fn()
			f, ok := IsFault(err)
			if !ok {
				t.Fatalf("err = %v, want *Fault", err)
			}
			if f.Kind != FaultUnmapped {
				t.Errorf("fault kind = %v, want unmapped", f.Kind)
			}
		})
	}
}

func TestPermissionFaults(t *testing.T) {
	m := &Memory{}
	ro, err := m.Map(SegROData, 0x4000, 0x100, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ro.Base, []byte{1}); err == nil {
		t.Error("write to rodata succeeded")
	} else if f, ok := IsFault(err); !ok || f.Kind != FaultPerm {
		t.Errorf("write to rodata: err = %v, want permission fault", err)
	}
	if err := m.CheckRange(ro.Base, 4, PermExec); err == nil {
		t.Error("exec check on rodata succeeded")
	}
	if err := m.CheckRange(ro.Base, 4, PermRead); err != nil {
		t.Errorf("read check on rodata failed: %v", err)
	}
}

func TestPokeIgnoresWritePerm(t *testing.T) {
	m := &Memory{}
	ro, err := m.Map(SegText, 0x4000, 0x100, PermRX)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Poke(ro.Base, []byte{0xcc}); err != nil {
		t.Fatalf("Poke: %v", err)
	}
	got, err := m.Read(ro.Base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xcc {
		t.Errorf("byte = %#x, want 0xcc", got[0])
	}
}

func TestScalarAccessorsRoundTrip(t *testing.T) {
	m, _ := newTestMem(t)
	a := Addr(0x1200)

	if err := m.WriteU8(a, 0xab); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU8(a); v != 0xab {
		t.Errorf("u8 = %#x", v)
	}
	if err := m.WriteU16(a, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU16(a); v != 0xbeef {
		t.Errorf("u16 = %#x", v)
	}
	if err := m.WriteU32(a, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU32(a); v != 0xdeadbeef {
		t.Errorf("u32 = %#x", v)
	}
	if err := m.WriteU64(a, 0x0123456789abcdef); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU64(a); v != 0x0123456789abcdef {
		t.Errorf("u64 = %#x", v)
	}
	if err := m.WriteF64(a, -2.5); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadF64(a); v != -2.5 {
		t.Errorf("f64 = %v", v)
	}
	if err := m.WriteF32(a, 1.5); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadF32(a); v != 1.5 {
		t.Errorf("f32 = %v", v)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.WriteU32(0x1300, 0x04030201); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0x1300, 4)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("bytes = %v, want little-endian [1 2 3 4]", got)
	}
}

func TestSignedReadSignExtends(t *testing.T) {
	m, _ := newTestMem(t)
	tests := []struct {
		width int
		write int64
		want  int64
	}{
		{1, -1, -1},
		{2, -300, -300},
		{4, -70000, -70000},
		{8, math.MinInt64, math.MinInt64},
		{4, int64(math.MaxInt32), int64(math.MaxInt32)},
	}
	for _, tt := range tests {
		if err := m.WriteInt(0x1400, tt.write, tt.width); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadInt(0x1400, tt.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("width %d: ReadInt = %d, want %d", tt.width, got, tt.want)
		}
	}
}

func TestUnsupportedWidth(t *testing.T) {
	m, _ := newTestMem(t)
	if _, err := m.ReadUint(0x1400, 3); err == nil {
		t.Error("ReadUint width 3 succeeded")
	}
	if err := m.WriteUint(0x1400, 0, 5); err == nil {
		t.Error("WriteUint width 5 succeeded")
	}
}

func TestQuickUintRoundTrip(t *testing.T) {
	m, _ := newTestMem(t)
	widths := []int{1, 2, 4, 8}
	f := func(v uint64, wi uint8, off uint16) bool {
		w := widths[int(wi)%len(widths)]
		a := Addr(0x1000 + uint64(off)%(0x1000-8))
		if err := m.WriteUint(a, v, w); err != nil {
			return false
		}
		got, err := m.ReadUint(a, w)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if w < 8 {
			mask = (1 << (8 * uint(w))) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCStringReadWrite(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.WriteCString(0x1500, "hello"); err != nil {
		t.Fatal(err)
	}
	s, ok, err := m.ReadCString(0x1500, 16)
	if err != nil || !ok {
		t.Fatalf("ReadCString: %v ok=%v", err, ok)
	}
	if string(s) != "hello" {
		t.Errorf("s = %q", s)
	}
	// Unterminated read returns max bytes with ok=false (over-read shape
	// used by the info-leak experiments).
	if err := m.Write(0x1600, []byte{'a', 'b', 'c'}); err != nil {
		t.Fatal(err)
	}
	s, ok, err = m.ReadCString(0x1600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok || string(s) != "abc" {
		t.Errorf("unterminated: s=%q ok=%v, want abc/false", s, ok)
	}
}

func TestStrNCpyPadsWithNUL(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.Memset(0x1700, 0xff, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.StrNCpy(0x1700, "ab", 6); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0x1700, 8)
	want := []byte{'a', 'b', 0, 0, 0, 0, 0xff, 0xff}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestStrNCpyTruncates(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.StrNCpy(0x1700, "abcdef", 3); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0x1700, 3)
	if !bytes.Equal(got, []byte("abc")) {
		t.Errorf("got %q", got)
	}
}

func TestMemset(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.Memset(0x1800, 0xaa, 16); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0x1800, 16)
	for i, b := range got {
		if b != 0xaa {
			t.Fatalf("byte %d = %#x", i, b)
		}
	}
	if err := m.Memset(0x1800, 0, 0); err != nil {
		t.Errorf("zero-length memset: %v", err)
	}
}

func TestFindSegment(t *testing.T) {
	m := &Memory{}
	a, _ := m.Map(SegData, 0x1000, 0x100, PermRW)
	b, _ := m.Map(SegBSS, 0x3000, 0x100, PermRW)
	tests := []struct {
		addr Addr
		want *Segment
	}{
		{0x1000, a}, {0x10ff, a}, {0x1100, nil},
		{0x3000, b}, {0x2fff, nil}, {0x30ff, b}, {0x3100, nil},
	}
	for _, tt := range tests {
		if got := m.FindSegment(tt.addr); got != tt.want {
			t.Errorf("FindSegment(%#x) = %v, want %v", uint64(tt.addr), got, tt.want)
		}
	}
}

func TestWatchpointFiresOnIntersection(t *testing.T) {
	m, _ := newTestMem(t)
	var fired int
	var gotOld, gotNew []byte
	w := m.Watch("victim", 0x1104, 4, func(_ *Watchpoint, _ Addr, old, new []byte) {
		fired++
		gotOld, gotNew = old, new
	})
	// Write below the range: no fire.
	if err := m.Write(0x1100, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("fired on non-intersecting write")
	}
	// Straddling write: fires.
	if err := m.Write(0x1102, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || w.Hits != 1 {
		t.Fatalf("fired=%d hits=%d, want 1/1", fired, w.Hits)
	}
	if !bytes.Equal(gotOld, []byte{3, 4, 0, 0}) || !bytes.Equal(gotNew, []byte{9, 9, 9, 9}) {
		t.Errorf("old=%v new=%v", gotOld, gotNew)
	}
	m.Unwatch(w)
	if err := m.Write(0x1104, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Error("fired after Unwatch")
	}
	m.Unwatch(w) // double-remove is a no-op
}

func TestWatchpointNilCallbackCountsHits(t *testing.T) {
	m, _ := newTestMem(t)
	w := m.Watch("count", 0x1100, 8, nil)
	for i := 0; i < 3; i++ {
		if err := m.WriteU8(0x1100, byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Hits != 3 {
		t.Errorf("Hits = %d, want 3", w.Hits)
	}
}

func TestGuardRegionBlocksWrites(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.WriteU32(0x1104, 0x11111111); err != nil {
		t.Fatal(err)
	}
	g := m.Guard("victim red zone", 0x1104, 4)

	// Write outside: fine.
	if err := m.WriteU32(0x1100, 1); err != nil {
		t.Fatalf("write below guard: %v", err)
	}
	if err := m.WriteU32(0x1108, 1); err != nil {
		t.Fatalf("write above guard: %v", err)
	}
	// Write inside or straddling: faults BEFORE modifying memory.
	for _, addr := range []Addr{0x1104, 0x1106, 0x1102} {
		err := m.Write(addr, []byte{9, 9, 9, 9})
		f, ok := IsFault(err)
		if !ok || f.Kind != FaultGuard {
			t.Fatalf("write at %#x: err = %v, want guard fault", uint64(addr), err)
		}
		if f.Guard != "victim red zone" {
			t.Errorf("guard name = %q", f.Guard)
		}
	}
	v, _ := m.ReadU32(0x1104)
	if v != 0x11111111 {
		t.Errorf("guarded bytes modified: %#x", v)
	}
	// Reads are unaffected; Poke (loader) bypasses.
	if _, err := m.Read(0x1104, 4); err != nil {
		t.Errorf("read in guard: %v", err)
	}
	if err := m.Poke(0x1104, []byte{1}); err != nil {
		t.Errorf("poke in guard: %v", err)
	}
	// Unguard restores writability; double-unguard is a no-op.
	m.Unguard(g)
	m.Unguard(g)
	if err := m.WriteU32(0x1104, 2); err != nil {
		t.Errorf("write after unguard: %v", err)
	}
}

func TestGuardFaultMessage(t *testing.T) {
	f := &Fault{Kind: FaultGuard, Addr: 0x1234, Size: 4, Guard: "zone"}
	if !strings.Contains(f.Error(), "red zone") || !strings.Contains(f.Error(), "zone") {
		t.Errorf("message = %q", f.Error())
	}
}

func TestOverlappingGuards(t *testing.T) {
	m, _ := newTestMem(t)
	m.Guard("a", 0x1100, 8)
	m.Guard("b", 0x1104, 8)
	err := m.WriteU8(0x1106, 1)
	f, ok := IsFault(err)
	if !ok || f.Kind != FaultGuard {
		t.Fatalf("err = %v", err)
	}
	if f.Guard != "a" { // first installed reports
		t.Errorf("reporting guard = %q", f.Guard)
	}
}

func TestWriteLogger(t *testing.T) {
	m, _ := newTestMem(t)
	var recs []WriteRecord
	m.SetWriteLogger(func(r WriteRecord) { recs = append(recs, r) })
	if err := m.WriteU16(0x1100, 0x0102); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Addr != 0x1100 || !bytes.Equal(recs[0].New, []byte{2, 1}) {
		t.Errorf("record = %+v", recs[0])
	}
	m.SetWriteLogger(nil)
	if err := m.WriteU8(0x1100, 0); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Error("logged after disable")
	}
}

func TestSnapshotDiff(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.Write(0x1100, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot(0x1100, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Two separated changes.
	if err := m.WriteU8(0x1101, 0xaa); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0x1104, []byte{0xbb, 0xcc}); err != nil {
		t.Fatal(err)
	}
	diffs, err := m.Diff(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("diffs = %d, want 2: %+v", len(diffs), diffs)
	}
	if diffs[0].Addr != 0x1101 || !bytes.Equal(diffs[0].New, []byte{0xaa}) {
		t.Errorf("diff0 = %+v", diffs[0])
	}
	if diffs[1].Addr != 0x1104 || !bytes.Equal(diffs[1].Old, []byte{5, 6}) {
		t.Errorf("diff1 = %+v", diffs[1])
	}
}

func TestDiffNoChanges(t *testing.T) {
	m, _ := newTestMem(t)
	snap, err := m.Snapshot(0x1100, 16)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := m.Diff(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("diffs = %+v, want none", diffs)
	}
}

func TestHexdump(t *testing.T) {
	m, _ := newTestMem(t)
	if err := m.Write(0x1100, []byte("Hi\x00\x01")); err != nil {
		t.Fatal(err)
	}
	s, err := m.Hexdump(0x1100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "48 69 00 01") {
		t.Errorf("hexdump missing bytes:\n%s", s)
	}
	if !strings.Contains(s, "|Hi..") {
		t.Errorf("hexdump missing ascii gutter:\n%s", s)
	}
	if !strings.HasPrefix(s, "00001100") {
		t.Errorf("hexdump missing address column:\n%s", s)
	}
}

func TestProcessImageLayout(t *testing.T) {
	img, err := NewProcessImage(ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Text.Perm != PermRX {
		t.Errorf("text perm = %s", img.Text.Perm)
	}
	if img.Stack.Perm != PermRW {
		t.Errorf("stack perm = %s, want rw- (NX default)", img.Stack.Perm)
	}
	if img.Stack.End() != StackTop {
		t.Errorf("stack end = %#x, want %#x", uint64(img.Stack.End()), uint64(StackTop))
	}
	// Segments are strictly ordered text < rodata < data < bss < heap < stack.
	segs := img.Mem.Segments()
	if len(segs) != 6 {
		t.Fatalf("segments = %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i-1].End() > segs[i].Base {
			t.Errorf("segment %d overlaps %d", i-1, i)
		}
	}
	// Null page is unmapped.
	if _, err := img.Mem.Read(NullAddr, 1); err == nil {
		t.Error("null read succeeded")
	}
}

func TestProcessImageExecStack(t *testing.T) {
	img, err := NewProcessImage(ImageConfig{ExecStack: true})
	if err != nil {
		t.Fatal(err)
	}
	if img.Stack.Perm != PermRWX {
		t.Errorf("stack perm = %s, want rwx", img.Stack.Perm)
	}
}

func TestSegmentLookupByKind(t *testing.T) {
	img, err := NewProcessImage(ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []SegKind{SegText, SegROData, SegData, SegBSS, SegHeap, SegStack} {
		if img.Mem.Segment(k) == nil {
			t.Errorf("Segment(%v) = nil", k)
		}
	}
}

func TestFaultErrorMessages(t *testing.T) {
	f := &Fault{Kind: FaultUnmapped, Addr: 0xdead, Size: 4}
	if !strings.Contains(f.Error(), "segmentation fault") {
		t.Errorf("unmapped message = %q", f.Error())
	}
	p := &Fault{Kind: FaultPerm, Addr: 0x10, Size: 1, Want: PermExec, Have: PermRW}
	if !strings.Contains(p.Error(), "permission fault") {
		t.Errorf("perm message = %q", p.Error())
	}
}

func TestIsFaultUnwraps(t *testing.T) {
	base := &Fault{Kind: FaultUnmapped, Addr: 1, Size: 1}
	wrapped := errWrap{base}
	if f, ok := IsFault(wrapped); !ok || f != base {
		t.Error("IsFault failed to unwrap")
	}
	if _, ok := IsFault(errors.New("plain")); ok {
		t.Error("IsFault matched plain error")
	}
	if _, ok := IsFault(nil); ok {
		t.Error("IsFault matched nil")
	}
}

type errWrap struct{ e error }

func (w errWrap) Error() string { return "wrap: " + w.e.Error() }
func (w errWrap) Unwrap() error { return w.e }

func TestPermString(t *testing.T) {
	tests := []struct {
		p    Perm
		want string
	}{
		{0, "---"}, {PermRead, "r--"}, {PermRW, "rw-"}, {PermRWX, "rwx"}, {PermRX, "r-x"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestAddrArithmetic(t *testing.T) {
	a := Addr(0x1000)
	if a.Add(16) != 0x1010 {
		t.Error("Add positive")
	}
	if a.Add(-16) != 0xff0 {
		t.Error("Add negative")
	}
	if Addr(0x1010).Diff(a) != 16 {
		t.Error("Diff")
	}
	if a.Diff(0x1010) != -16 {
		t.Error("Diff negative")
	}
}

func TestProtectChangesPermissions(t *testing.T) {
	img, err := NewProcessImage(ImageConfig{ExecStack: true})
	if err != nil {
		t.Fatal(err)
	}
	if img.Stack.Perm&PermExec == 0 {
		t.Fatal("stack not executable before protect")
	}
	if err := img.Mem.Protect(SegStack, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := img.Mem.CheckRange(img.Stack.Base, 4, PermExec); err == nil {
		t.Error("exec check passed after protect")
	}
	if err := img.Mem.Protect(SegKind(99), PermRW); err == nil {
		t.Error("protect of unmapped kind succeeded")
	}
}

func TestWatchpointsAccessor(t *testing.T) {
	m, _ := newTestMem(t)
	if got := m.Watchpoints(); len(got) != 0 {
		t.Fatalf("fresh memory has %d watchpoints", len(got))
	}
	a := m.Watch("a", 0x1100, 4, nil)
	b := m.Watch("b", 0x1200, 4, nil)
	got := m.Watchpoints()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Watchpoints() = %v, want [a b] in installation order", got)
	}
	// The returned slice is a copy: mutating it must not affect the
	// installed set.
	got[0] = nil
	if ws := m.Watchpoints(); ws[0] != a {
		t.Error("Watchpoints() returned the internal slice, not a copy")
	}
	m.Unwatch(a)
	if ws := m.Watchpoints(); len(ws) != 1 || ws[0] != b {
		t.Errorf("after Unwatch(a): %v, want [b]", ws)
	}
}

func TestWatchpointOverlapBothHit(t *testing.T) {
	m, _ := newTestMem(t)
	a := m.Watch("a", 0x1100, 8, nil)
	b := m.Watch("b", 0x1104, 8, nil) // overlaps a on [0x1104,0x1108)
	if err := m.WriteU32(0x1104, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if a.Hits != 1 || b.Hits != 1 {
		t.Errorf("hits a=%d b=%d, want 1/1", a.Hits, b.Hits)
	}
	if err := m.WriteU32(0x1108, 1); err != nil { // only b
		t.Fatal(err)
	}
	if a.Hits != 1 || b.Hits != 2 {
		t.Errorf("hits a=%d b=%d, want 1/2", a.Hits, b.Hits)
	}
}

func TestWatchpointCallbackRemovesItself(t *testing.T) {
	m, _ := newTestMem(t)
	var w *Watchpoint
	w = m.Watch("once", 0x1100, 4, func(self *Watchpoint, addr Addr, old, new []byte) {
		m.Unwatch(self)
	})
	for i := 0; i < 3; i++ {
		if err := m.WriteU8(0x1100, byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (callback unwatched itself)", w.Hits)
	}
	if len(m.Watchpoints()) != 0 {
		t.Error("watchpoint still installed after self-removal")
	}
}
