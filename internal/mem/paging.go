package mem

import "sync/atomic"

// The address space is organised in fixed-size pages so that snapshots,
// rollback, and image cloning can work at page granularity instead of
// whole-address-space granularity. 4 KiB matches the paper's i386
// testbed page size; it is also the sweet spot measured in
// docs/perf.md — small enough that a sparse chaos trial dirties only a
// handful of pages, large enough that the per-page bookkeeping (one
// pointer + one dirty bit) stays negligible against segment sizes.
const (
	// PageShift is log2(PageSize).
	PageShift = 12
	// PageSize is the granularity of dirty tracking and copy-on-write
	// sharing, in bytes.
	PageSize = 1 << PageShift
)

// page is one reference-counted page of segment backing store. Pages are
// shared between a live Segment and any number of Checkpoints (and,
// through the ImagePool, between many live Segments cloned from the same
// template). The invariant that makes sharing safe:
//
//	a page with refs > 1 is immutable — every write path calls
//	ownPage first, which copies a shared page before mutating it
//	(copy-on-write).
//
// The reference count is atomic because checkpoints cross goroutines:
// two processes cloned from one template may copy-on-write (and thus
// release) the same shared page concurrently. Everything else about a
// Memory remains single-threaded, as documented on the type.
type page struct {
	refs atomic.Int32
	data [PageSize]byte
}

// newPage returns a fresh zeroed page owned by exactly one holder.
func newPage() *page {
	p := &page{}
	p.refs.Store(1)
	return p
}

// get acquires an additional reference and returns p.
func (p *page) get() *page {
	p.refs.Add(1)
	return p
}

// put releases one reference. Pages are garbage collected; a count of
// zero simply means no segment or checkpoint holds the page any more.
func (p *page) put() { p.refs.Add(-1) }

// shared reports whether any other holder references the page, in which
// case it must not be written in place.
func (p *page) shared() bool { return p.refs.Load() > 1 }

// pagesFor returns the number of pages backing n bytes.
func pagesFor(n uint64) int { return int((n + PageSize - 1) >> PageShift) }

// newPages allocates n bytes of fresh zeroed backing pages.
func newPages(n uint64) []*page {
	ps := make([]*page, pagesFor(n))
	for i := range ps {
		ps[i] = newPage()
	}
	return ps
}

// ownPage returns page i of the segment, copying it first if it is
// shared with a checkpoint or another segment — the copy-on-write step.
func (s *Segment) ownPage(i int) *page {
	p := s.pages[i]
	if !p.shared() {
		return p
	}
	np := newPage()
	np.data = p.data
	p.put()
	s.pages[i] = np
	return np
}

// markDirtyRange sets the dirty bits for pages [first, last].
func (s *Segment) markDirtyRange(first, last int) {
	for i := first; i <= last; i++ {
		w, b := i>>6, uint64(1)<<(uint(i)&63)
		if s.dirty[w]&b == 0 {
			s.dirty[w] |= b
			s.ndirty++
		}
	}
}

// writeRaw copies b into the segment at byte offset off, copy-on-writing
// shared pages and feeding the dirty tracker. Zero-length writes touch
// nothing and dirty nothing. Bounds are the caller's responsibility
// (every caller has already resolved the segment via seg()).
func (s *Segment) writeRaw(off uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	s.markDirtyRange(int(off>>PageShift), int((off+uint64(len(b))-1)>>PageShift))
	for len(b) > 0 {
		pi := int(off >> PageShift)
		po := off & (PageSize - 1)
		n := uint64(PageSize) - po
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		pg := s.ownPage(pi)
		copy(pg.data[po:po+n], b[:n])
		off += n
		b = b[n:]
	}
}

// WriteRun copies b into the segment at byte offset off, bypassing the
// access pipeline entirely — no permission check, no guards, no shadow
// validation, no hooks, no logging. It is the store primitive of the
// compiled dispatch loop (internal/compile): the recorded run already
// paid every check, so replay needs only the COW page copy and the
// dirty accounting, which WriteRun shares with the checked path. The
// single bounds check here is the whole per-op validation cost.
func (s *Segment) WriteRun(off uint64, b []byte) error {
	if off+uint64(len(b)) > s.size || off+uint64(len(b)) < off {
		return &Fault{Kind: FaultUnmapped, Addr: s.Base.Add(int64(off)), Size: uint64(len(b))}
	}
	s.writeRaw(off, b)
	return nil
}

// readRaw copies len(dst) bytes starting at byte offset off into dst.
func (s *Segment) readRaw(off uint64, dst []byte) {
	for len(dst) > 0 {
		pi := int(off >> PageShift)
		po := off & (PageSize - 1)
		n := uint64(PageSize) - po
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		copy(dst[:n], s.pages[pi].data[po:po+n])
		off += n
		dst = dst[n:]
	}
}

// bytes materialises the whole segment as one flat copy.
func (s *Segment) bytes() []byte {
	out := make([]byte, s.size)
	s.readRaw(0, out)
	return out
}
