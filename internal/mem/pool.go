package mem

import "sync"

// ImagePool is a pool of prewarmed process-image templates. The first
// request for a given ImageConfig builds the canonical image once and
// registers its pristine COW checkpoint as the template; every later
// request clones from the template in O(pages) pointer operations —
// no segment allocation, no zeroing, no byte copies. Clones never share
// mutable state: all sharing is through reference-counted immutable
// pages, and a clone's first write to any page copies it (see
// paging.go), so concurrent clones are isolated by construction.
//
// The pool is safe for concurrent use; it is the serving layer's
// cache-miss fast path (internal/service wires one pool per Service and
// arms it on every scenario request).
type ImagePool struct {
	// OnEvent, when non-nil, observes pool activity with one of the
	// event tokens "hit", "miss", or "prewarm" — the metrics seam. Set
	// it before the pool is used; it is called outside the pool lock.
	OnEvent func(event string)

	mu        sync.Mutex
	templates map[ImageConfig]*Checkpoint
	hits      uint64
	misses    uint64
}

// PoolStats summarises pool activity.
type PoolStats struct {
	// Hits counts acquisitions served by cloning a template; Misses
	// counts acquisitions that had to construct (and register) one.
	Hits, Misses uint64
	// Templates is the number of distinct image configurations pooled.
	Templates int
}

// NewImagePool returns an empty pool.
func NewImagePool() *ImagePool {
	return &ImagePool{templates: make(map[ImageConfig]*Checkpoint)}
}

// Acquire returns a canonical process image for cfg: a clone of the
// pooled template when one exists (hit=true), otherwise a freshly
// constructed image whose pristine state is registered as the template
// for subsequent calls. Either way the caller owns the returned image
// exclusively; its writes never reach the template or other clones.
func (p *ImagePool) Acquire(cfg ImageConfig) (img *Image, hit bool, err error) {
	key := cfg.withDefaults()
	p.mu.Lock()
	cp := p.templates[key]
	if cp != nil {
		p.hits++
	}
	p.mu.Unlock()

	if cp != nil {
		img, err := cp.NewImage()
		if err != nil {
			return nil, false, err
		}
		p.event("hit")
		return img, true, nil
	}

	// Miss: construct outside the lock (construction is the expensive
	// part), then publish. A racing miss for the same key just loses its
	// template to the winner; both callers still get isolated images.
	img, err = NewProcessImage(key)
	if err != nil {
		return nil, false, err
	}
	p.mu.Lock()
	if _, ok := p.templates[key]; !ok {
		// The returned image shares the new template's pages; its writes
		// COW away from them, leaving the template pristine.
		p.templates[key] = img.Mem.CowCheckpoint()
	}
	p.misses++
	p.mu.Unlock()
	p.event("miss")
	return img, false, nil
}

// Prewarm constructs and registers templates for each config that does
// not already have one, so the first real request is already a hit.
func (p *ImagePool) Prewarm(cfgs ...ImageConfig) error {
	for _, cfg := range cfgs {
		key := cfg.withDefaults()
		p.mu.Lock()
		_, ok := p.templates[key]
		p.mu.Unlock()
		if ok {
			continue
		}
		img, err := NewProcessImage(key)
		if err != nil {
			return err
		}
		cp := img.Mem.CowCheckpoint()
		p.mu.Lock()
		if _, ok := p.templates[key]; !ok {
			p.templates[key] = cp
		}
		p.mu.Unlock()
		p.event("prewarm")
	}
	return nil
}

// Template returns the pooled template checkpoint for cfg, or nil. The
// checkpoint is immutable; tests diff clones against it to assert that
// no run leaked writes into shared pages.
func (p *ImagePool) Template(cfg ImageConfig) *Checkpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.templates[cfg.withDefaults()]
}

// Stats returns a snapshot of pool activity.
func (p *ImagePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Templates: len(p.templates)}
}

func (p *ImagePool) event(name string) {
	if p.OnEvent != nil {
		p.OnEvent(name)
	}
}
