package mem

// ShadowChecker is the seam for a byte-granular shadow-memory
// sanitizer (see internal/shadow). When attached, every
// permission-checked Write is validated against it *before* any byte
// lands: a non-nil fault aborts the write with nothing stored, so an
// overflow is reported at the first poisoned byte it would have
// corrupted. Reads are deliberately unchecked — canary verification,
// the information-leak over-reads, and virtual dispatch all read
// poisoned bytes legitimately; the paper's attacks corrupt state by
// writing.
//
// Loader pokes, snapshots, checkpoints, and restores bypass the
// checker, mirroring the AccessHook contract: the sanitizer polices
// the simulated program's own stores, not the harness's machinery.
//
// Snapshot and Restore let checkpoints carry the shadow planes in
// lockstep with the data pages: Checkpoint/CowCheckpoint capture an
// opaque snapshot, Restore/RestoreDirty reinstate it, so a rollback
// never leaves quarantine or red-zone state disagreeing with the
// bytes it describes.
type ShadowChecker interface {
	// CheckWrite returns nil if the n-byte write at addr is fully
	// addressable, or a *Fault (Kind FaultShadow) naming the first
	// poisoned byte otherwise.
	CheckWrite(addr Addr, n uint64) *Fault
	// Snapshot captures the shadow state as an opaque value.
	Snapshot() any
	// Restore reinstates a state previously captured by Snapshot.
	Restore(any)
}

// SetShadow attaches a shadow checker to the write path. Pass nil to
// disarm. Only one checker is active at a time. A nil checker costs
// one pointer check per write — the same zero-cost-when-disabled
// contract as the observer and hook seams, enforced by
// BenchmarkWriteShadowDisabled.
func (m *Memory) SetShadow(s ShadowChecker) { m.shadow = s }

// Shadow returns the attached shadow checker, or nil.
func (m *Memory) Shadow() ShadowChecker { return m.shadow }
