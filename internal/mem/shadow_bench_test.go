package mem

import "testing"

// benchMemory maps one RW data segment for the write-path benchmarks.
func benchMemory(b *testing.B) *Memory {
	b.Helper()
	m := &Memory{}
	if _, err := m.Map(SegData, 0x1000, 1<<16, PermRW); err != nil {
		b.Fatal(err)
	}
	return m
}

// benchWrites drives the checked write path over rotating offsets.
func benchWrites(b *testing.B, m *Memory) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := Addr(0x1000 + (i%4096)*16)
		if err := m.Write(addr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteShadowDisabled pins the zero-cost-when-disabled
// contract of the ShadowChecker seam (see SetShadow): with no checker
// attached a write pays exactly one nil comparison. Compare against
// BenchmarkWriteShadowArmed to see the armed tax; pnbench -shadow
// turns the same comparison into a gated BENCH_SHADOW.json artifact.
func BenchmarkWriteShadowDisabled(b *testing.B) {
	benchWrites(b, benchMemory(b))
}

// shadowCheckerStub is an always-clean checker, standing in for the
// real sanitizer (internal/shadow, unimportable here) so the seam's
// call overhead is measurable in isolation.
type shadowCheckerStub struct{}

func (shadowCheckerStub) CheckWrite(Addr, uint64) *Fault { return nil }
func (shadowCheckerStub) Snapshot() any                  { return nil }
func (shadowCheckerStub) Restore(any)                    {}

// BenchmarkWriteShadowArmed measures the same write loop with a
// checker attached: the disabled/armed delta is the seam's dispatch
// cost, independent of the sanitizer's own lookup work.
func BenchmarkWriteShadowArmed(b *testing.B) {
	m := benchMemory(b)
	m.SetShadow(shadowCheckerStub{})
	benchWrites(b, m)
}
