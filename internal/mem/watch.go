package mem

// Watchpoint observes writes that touch a byte range. Experiments use
// watchpoints to detect victim-word overwrites (return addresses, globals,
// vtable pointers) without changing the attack's own code path.
type Watchpoint struct {
	Name  string
	Start Addr
	Size  uint64
	// OnWrite is invoked after a write that intersects the range. addr is
	// the start of the whole write; old and new are the full written span.
	OnWrite func(w *Watchpoint, addr Addr, old, new []byte)

	// Hits counts intersecting writes since installation.
	Hits int

	removed bool
}

// End returns the first address past the watched range.
func (w *Watchpoint) End() Addr { return w.Start.Add(int64(w.Size)) }

// Watch installs a watchpoint over [start, start+size). The callback may be
// nil, in which case only Hits is maintained.
func (m *Memory) Watch(name string, start Addr, size uint64, onWrite func(w *Watchpoint, addr Addr, old, new []byte)) *Watchpoint {
	w := &Watchpoint{Name: name, Start: start, Size: size, OnWrite: onWrite}
	m.watch = append(m.watch, w)
	return w
}

// Unwatch removes a previously installed watchpoint. Removing a watchpoint
// twice is a no-op.
func (m *Memory) Unwatch(w *Watchpoint) {
	if w == nil || w.removed {
		return
	}
	w.removed = true
	for i, x := range m.watch {
		if x == w {
			m.watch = append(m.watch[:i], m.watch[i+1:]...)
			return
		}
	}
}

// Watchpoints returns the currently installed watchpoints in
// installation order. The slice is a copy; the watchpoints themselves
// are shared, so callers can read Hits (the obs layer harvests them
// into pn_watchpoint_hits_total) but should install/remove only via
// Watch/Unwatch.
func (m *Memory) Watchpoints() []*Watchpoint {
	out := make([]*Watchpoint, len(m.watch))
	copy(out, m.watch)
	return out
}

// GuardRegion is a poisoned byte range: any simulated write that touches
// it faults *before* modifying memory — the ASan-style red-zone semantics
// the memguard defense installs after each placement. Loader writes
// (Poke) bypass guards, as compiler-emitted red zones would.
type GuardRegion struct {
	Name  string
	Start Addr
	Size  uint64

	removed bool
}

// End returns the first address past the guard.
func (g *GuardRegion) End() Addr { return g.Start.Add(int64(g.Size)) }

// Guard poisons [start, start+n). Overlapping guards are permitted; the
// first installed match reports the violation.
func (m *Memory) Guard(name string, start Addr, n uint64) *GuardRegion {
	g := &GuardRegion{Name: name, Start: start, Size: n}
	m.guards = append(m.guards, g)
	return g
}

// Unguard removes a guard region. Removing twice is a no-op.
func (m *Memory) Unguard(g *GuardRegion) {
	if g == nil || g.removed {
		return
	}
	g.removed = true
	for i, x := range m.guards {
		if x == g {
			m.guards = append(m.guards[:i], m.guards[i+1:]...)
			return
		}
	}
}

// checkGuards reports a fault if [addr, addr+n) enters any guard region.
func (m *Memory) checkGuards(addr Addr, n uint64) *Fault {
	if len(m.guards) == 0 {
		return nil
	}
	end := addr.Add(int64(n))
	for _, g := range m.guards {
		if g.removed || g.Size == 0 {
			continue
		}
		if addr < g.End() && g.Start < end {
			return &Fault{Kind: FaultGuard, Addr: addr, Size: n, Guard: g.Name}
		}
	}
	return nil
}

// fireWatch delivers a completed write to all intersecting watchpoints.
func (m *Memory) fireWatch(addr Addr, old, b []byte) {
	if len(m.watch) == 0 {
		return
	}
	end := addr.Add(int64(len(b)))
	// Copy the slice header: a callback may install/remove watchpoints.
	ws := m.watch
	for _, w := range ws {
		if w.removed || w.Size == 0 {
			continue
		}
		if addr < w.End() && w.Start < end {
			w.Hits++
			if w.OnWrite != nil {
				w.OnWrite(w, addr, old, b)
			}
		}
	}
}
