// Package object provides typed views of class instances living in
// simulated memory: construct an object at an address, read and write its
// members, follow its vtable pointers, and copy it.
//
// Faithful to C++, none of the accessors bounds-check against the arena
// the object was placed in, and array indexing does not bounds-check
// against the array length (cf. Listing 6's `*(st->courseid + i)` walk).
// The only hard stop is the simulated MMU: writes to unmapped or
// read-only pages fault. Safety, where the paper's §5.1 wants it, is
// layered on by internal/core's checked placement, not here.
package object

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/mem"
)

// Object is a typed view of a class instance at a memory address.
type Object struct {
	m    *mem.Memory
	lay  *layout.ClassLayout
	addr mem.Addr
}

// View binds a typed view of class cls (under model) at addr. It validates
// the class definition but performs no arena checks: "placement new allows
// any address allocated to the process" (§2.5).
func View(m *mem.Memory, cls *layout.Class, model layout.Model, addr mem.Addr) (*Object, error) {
	if m == nil {
		return nil, fmt.Errorf("object: nil memory")
	}
	if addr == mem.NullAddr {
		return nil, fmt.Errorf("object: view of class %s at null address", clsName(cls))
	}
	l, err := layout.Of(cls, model)
	if err != nil {
		return nil, fmt.Errorf("object: %w", err)
	}
	return &Object{m: m, lay: l, addr: addr}, nil
}

func clsName(c *layout.Class) string {
	if c == nil {
		return "<nil>"
	}
	return c.Name()
}

// Addr returns the object's starting address.
func (o *Object) Addr() mem.Addr { return o.addr }

// Class returns the object's class.
func (o *Object) Class() *layout.Class { return o.lay.Class }

// Layout returns the object's computed layout.
func (o *Object) Layout() *layout.ClassLayout { return o.lay }

// Size returns sizeof the object.
func (o *Object) Size() uint64 { return o.lay.Size }

// End returns the first address past the object.
func (o *Object) End() mem.Addr { return o.addr.Add(int64(o.lay.Size)) }

// Model returns the data model the view was bound under.
func (o *Object) Model() layout.Model { return o.lay.Model }

// Zero writes zero bytes over the whole object footprint — the effect of
// value-initialisation (`T()` for an aggregate without user constructors).
// It does not preserve vptr slots; construction code must (re)install
// them after.
func (o *Object) Zero() error {
	return o.m.Memset(o.addr, 0, o.lay.Size)
}

// ZeroScalars zero-initialises every scalar and pointer member, including
// those of base subobjects and nested class-typed members, but leaves
// array members untouched. This models the constructors of the paper's
// listings: Student() sets gpa/year/semester while GradStudent leaves
// ssn[] indeterminate — which is why placing a GradStudent writes only
// sizeof(Student) bytes until the attacker sets ssn[] explicitly.
func (o *Object) ZeroScalars() error {
	fields, err := o.lay.AllFields()
	if err != nil {
		return err
	}
	for _, f := range fields {
		addr := o.addr.Add(int64(f.Offset))
		switch t := f.Type.(type) {
		case layout.Scalar, layout.Ptr:
			if err := o.m.Memset(addr, 0, f.Type.Size(o.lay.Model)); err != nil {
				return err
			}
		case *layout.Class:
			nested, err := View(o.m, t, o.lay.Model, addr)
			if err != nil {
				return err
			}
			if err := nested.ZeroScalars(); err != nil {
				return err
			}
		case layout.Array:
			// left indeterminate, as a default constructor would
		}
	}
	return nil
}

// field resolves a member and its absolute address.
func (o *Object) field(name string) (layout.ResolvedField, mem.Addr, error) {
	f, err := o.lay.FieldOffset(name)
	if err != nil {
		return layout.ResolvedField{}, 0, err
	}
	return f, o.addr.Add(int64(f.Offset)), nil
}

// FieldAddr returns the absolute address of a member — the simulated
// equivalent of `&obj.field`.
func (o *Object) FieldAddr(name string) (mem.Addr, error) {
	_, a, err := o.field(name)
	return a, err
}

func scalarOf(t layout.Type) (layout.Scalar, bool) {
	s, ok := t.(layout.Scalar)
	return s, ok
}

// SetInt stores v into an integer-kind member (bool/char/short/int/long,
// signed or unsigned), truncating to the member width like a C++ store.
func (o *Object) SetInt(name string, v int64) error {
	f, a, err := o.field(name)
	if err != nil {
		return err
	}
	s, ok := scalarOf(f.Type)
	if !ok || !s.IsInteger() {
		return fmt.Errorf("object: %s.%s is %s, not an integer member", o.Class().Name(), name, f.Type)
	}
	return o.m.WriteInt(a, v, int(f.Type.Size(o.lay.Model)))
}

// Int loads an integer-kind member with sign extension for signed kinds.
func (o *Object) Int(name string) (int64, error) {
	f, a, err := o.field(name)
	if err != nil {
		return 0, err
	}
	s, ok := scalarOf(f.Type)
	if !ok || !s.IsInteger() {
		return 0, fmt.Errorf("object: %s.%s is %s, not an integer member", o.Class().Name(), name, f.Type)
	}
	w := int(f.Type.Size(o.lay.Model))
	if s.IsSigned() {
		return o.m.ReadInt(a, w)
	}
	u, err := o.m.ReadUint(a, w)
	return int64(u), err
}

// SetFloat stores v into a float or double member.
func (o *Object) SetFloat(name string, v float64) error {
	f, a, err := o.field(name)
	if err != nil {
		return err
	}
	switch f.Type.Kind() {
	case layout.KindDouble:
		return o.m.WriteF64(a, v)
	case layout.KindFloat:
		return o.m.WriteF32(a, float32(v))
	default:
		return fmt.Errorf("object: %s.%s is %s, not a floating member", o.Class().Name(), name, f.Type)
	}
}

// Float loads a float or double member.
func (o *Object) Float(name string) (float64, error) {
	f, a, err := o.field(name)
	if err != nil {
		return 0, err
	}
	switch f.Type.Kind() {
	case layout.KindDouble:
		return o.m.ReadF64(a)
	case layout.KindFloat:
		v, err := o.m.ReadF32(a)
		return float64(v), err
	default:
		return 0, fmt.Errorf("object: %s.%s is %s, not a floating member", o.Class().Name(), name, f.Type)
	}
}

// SetPtr stores an address into a pointer member.
func (o *Object) SetPtr(name string, v mem.Addr) error {
	f, a, err := o.field(name)
	if err != nil {
		return err
	}
	if f.Type.Kind() != layout.KindPtr {
		return fmt.Errorf("object: %s.%s is %s, not a pointer member", o.Class().Name(), name, f.Type)
	}
	return o.m.WriteUint(a, uint64(v), int(o.lay.Model.PtrSize))
}

// Ptr loads a pointer member.
func (o *Object) Ptr(name string) (mem.Addr, error) {
	f, a, err := o.field(name)
	if err != nil {
		return 0, err
	}
	if f.Type.Kind() != layout.KindPtr {
		return 0, fmt.Errorf("object: %s.%s is %s, not a pointer member", o.Class().Name(), name, f.Type)
	}
	u, err := o.m.ReadUint(a, int(o.lay.Model.PtrSize))
	return mem.Addr(u), err
}

// arrayElem resolves element i of an array member WITHOUT bounds checking
// the index — `*(arr + i)` semantics.
func (o *Object) arrayElem(name string, i int64) (layout.Scalar, mem.Addr, error) {
	f, a, err := o.field(name)
	if err != nil {
		return layout.Scalar{}, 0, err
	}
	arr, ok := f.Type.(layout.Array)
	if !ok {
		return layout.Scalar{}, 0, fmt.Errorf("object: %s.%s is %s, not an array member", o.Class().Name(), name, f.Type)
	}
	s, ok := scalarOf(arr.Elem)
	if !ok {
		return layout.Scalar{}, 0, fmt.Errorf("object: %s.%s has non-scalar elements", o.Class().Name(), name)
	}
	return s, a.Add(i * int64(arr.Elem.Size(o.lay.Model))), nil
}

// SetIndex stores v into element i of an integer array member. The index
// is deliberately unchecked against the array length; only the simulated
// MMU can stop the write.
func (o *Object) SetIndex(name string, i int64, v int64) error {
	s, a, err := o.arrayElem(name, i)
	if err != nil {
		return err
	}
	if !s.IsInteger() {
		return fmt.Errorf("object: %s.%s elements are %s, not integers", o.Class().Name(), name, s)
	}
	return o.m.WriteInt(a, v, int(s.Size(o.lay.Model)))
}

// Index loads element i of an integer array member (unchecked index).
func (o *Object) Index(name string, i int64) (int64, error) {
	s, a, err := o.arrayElem(name, i)
	if err != nil {
		return 0, err
	}
	if !s.IsInteger() {
		return 0, fmt.Errorf("object: %s.%s elements are %s, not integers", o.Class().Name(), name, s)
	}
	w := int(s.Size(o.lay.Model))
	if s.IsSigned() {
		return o.m.ReadInt(a, w)
	}
	u, err := o.m.ReadUint(a, w)
	return int64(u), err
}

// VPtr reads the i'th vtable pointer of the object.
func (o *Object) VPtr(i int) (mem.Addr, error) {
	offs := o.lay.VPtrOffsets
	if i < 0 || i >= len(offs) {
		return 0, fmt.Errorf("object: class %s has %d vptr(s), index %d", o.Class().Name(), len(offs), i)
	}
	u, err := o.m.ReadUint(o.addr.Add(int64(offs[i])), int(o.lay.Model.PtrSize))
	return mem.Addr(u), err
}

// SetVPtr writes the i'th vtable pointer. Construction code uses this to
// install tables; attacks reach the same bytes through plain overflows.
func (o *Object) SetVPtr(i int, v mem.Addr) error {
	offs := o.lay.VPtrOffsets
	if i < 0 || i >= len(offs) {
		return fmt.Errorf("object: class %s has %d vptr(s), index %d", o.Class().Name(), len(offs), i)
	}
	return o.m.WriteUint(o.addr.Add(int64(offs[i])), uint64(v), int(o.lay.Model.PtrSize))
}

// Bytes returns a copy of the object's raw image.
func (o *Object) Bytes() ([]byte, error) {
	return o.m.Read(o.addr, o.lay.Size)
}

// CopyFrom copies src's full image over this object's address — the
// memmove at the heart of a copy constructor. If src is larger than this
// object's class, the trailing bytes land past the destination footprint;
// nothing here stops that (§3.2's deep-copy overflow).
func (o *Object) CopyFrom(src *Object) error {
	b, err := src.Bytes()
	if err != nil {
		return err
	}
	return o.m.Write(o.addr, b)
}

// ViewAs rebinds the same address as a different class — the raw effect of
// `(T2*)&obj` or of placing a new type over an existing arena.
func (o *Object) ViewAs(cls *layout.Class) (*Object, error) {
	return View(o.m, cls, o.lay.Model, o.addr)
}

// String summarises the object for diagnostics.
func (o *Object) String() string {
	return fmt.Sprintf("%s@%#x[%d]", o.Class().Name(), uint64(o.addr), o.lay.Size)
}
