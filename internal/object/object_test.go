package object

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/mem"
)

func paperClasses() (student, grad *layout.Class) {
	student = layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad = layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return student, grad
}

func newTestMem(t *testing.T) *mem.Memory {
	t.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestViewValidation(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	if _, err := View(nil, student, layout.ILP32, 0x1000); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := View(m, student, layout.ILP32, mem.NullAddr); err == nil {
		t.Error("null address accepted")
	}
	bad := layout.NewClass("Bad").AddField("x", nil)
	if _, err := View(m, bad, layout.ILP32, 0x1000); err == nil {
		t.Error("invalid class accepted")
	}
}

func TestScalarMembers(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	o, err := View(m, student, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Zero(); err != nil {
		t.Fatal(err)
	}
	if err := o.SetFloat("gpa", 3.9); err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("year", 2008); err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("semester", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Float("gpa"); v != 3.9 {
		t.Errorf("gpa = %v", v)
	}
	if v, _ := o.Int("year"); v != 2008 {
		t.Errorf("year = %v", v)
	}
	if v, _ := o.Int("semester"); v != 2 {
		t.Errorf("semester = %v", v)
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	_ = grad
	o, err := View(m, student, layout.ILP32, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("gpa", 1); err == nil {
		t.Error("SetInt on double succeeded")
	}
	if _, err := o.Int("gpa"); err == nil {
		t.Error("Int on double succeeded")
	}
	if err := o.SetFloat("year", 1); err == nil {
		t.Error("SetFloat on int succeeded")
	}
	if _, err := o.Float("year"); err == nil {
		t.Error("Float on int succeeded")
	}
	if err := o.SetPtr("year", 0x10); err == nil {
		t.Error("SetPtr on int succeeded")
	}
	if _, err := o.Ptr("year"); err == nil {
		t.Error("Ptr on int succeeded")
	}
	if err := o.SetIndex("year", 0, 1); err == nil {
		t.Error("SetIndex on scalar succeeded")
	}
	if _, err := o.Int("nosuch"); err == nil {
		t.Error("missing member access succeeded")
	}
}

func TestInheritedMemberAccess(t *testing.T) {
	m := newTestMem(t)
	_, grad := paperClasses()
	o, err := View(m, grad, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetFloat("gpa", 4.0); err != nil {
		t.Fatalf("inherited member write: %v", err)
	}
	if v, _ := o.Float("gpa"); v != 4.0 {
		t.Errorf("gpa = %v", v)
	}
	a, err := o.FieldAddr("gpa")
	if err != nil {
		t.Fatal(err)
	}
	if a != o.Addr() {
		t.Errorf("gpa addr = %#x, want object start", uint64(a))
	}
}

func TestArrayIndexing(t *testing.T) {
	m := newTestMem(t)
	_, grad := paperClasses()
	o, err := View(m, grad, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := o.SetIndex("ssn", i, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 3; i++ {
		if v, _ := o.Index("ssn", i); v != 100+i {
			t.Errorf("ssn[%d] = %d", i, v)
		}
	}
}

// TestUncheckedArrayIndexWalksPastObject verifies the Listing 6 primitive:
// indexing past the declared length silently writes adjacent memory.
func TestUncheckedArrayIndexWalksPastObject(t *testing.T) {
	m := newTestMem(t)
	_, grad := paperClasses()
	o, err := View(m, grad, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	// ssn is int[3] at offset 16; index 3 is one past the object (size 28).
	if err := o.SetIndex("ssn", 3, 0x41414141); err != nil {
		t.Fatalf("out-of-bounds index faulted inside mapped memory: %v", err)
	}
	v, err := m.ReadU32(0x1100 + 28)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x41414141 {
		t.Errorf("adjacent word = %#x, want overflow value", v)
	}
	// Negative indexes walk backward, equally unchecked.
	if err := o.SetIndex("ssn", -1, 7); err != nil {
		t.Fatal(err)
	}
	if got, _ := o.Int("semester"); got != 7 {
		t.Errorf("semester = %d, want 7 (clobbered via ssn[-1])", got)
	}
}

func TestUncheckedIndexFaultsOnlyAtMMU(t *testing.T) {
	m := newTestMem(t)
	_, grad := paperClasses()
	o, err := View(m, grad, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	// Far past the segment end: the MMU finally stops it.
	err = o.SetIndex("ssn", 0x10000, 1)
	if _, ok := mem.IsFault(err); !ok {
		t.Errorf("far out-of-bounds write: err = %v, want fault", err)
	}
}

func TestPointerMembers(t *testing.T) {
	m := newTestMem(t)
	cls := layout.NewClass("Holder").AddField("name", layout.PtrTo(layout.Char))
	o, err := View(m, cls, layout.ILP32, 0x1200)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetPtr("name", 0x1300); err != nil {
		t.Fatal(err)
	}
	p, err := o.Ptr("name")
	if err != nil {
		t.Fatal(err)
	}
	if p != 0x1300 {
		t.Errorf("ptr = %#x", uint64(p))
	}
}

func TestVPtrAccess(t *testing.T) {
	m := newTestMem(t)
	cls := layout.NewClass("Poly").AddVirtual("f").AddField("x", layout.Int)
	o, err := View(m, cls, layout.ILP32, 0x1200)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetVPtr(0, 0x8060000); err != nil {
		t.Fatal(err)
	}
	v, err := o.VPtr(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x8060000 {
		t.Errorf("vptr = %#x", uint64(v))
	}
	if _, err := o.VPtr(1); err == nil {
		t.Error("vptr index 1 accepted on single-table class")
	}
	if err := o.SetVPtr(-1, 0); err == nil {
		t.Error("negative vptr index accepted")
	}
	plain := layout.NewClass("Plain").AddField("x", layout.Int)
	po, err := View(m, plain, layout.ILP32, 0x1300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := po.VPtr(0); err == nil {
		t.Error("vptr read on non-polymorphic class succeeded")
	}
}

// TestCopyFromLargerOverflows is the copy-constructor attack of §3.2 in
// miniature: deep-copying a GradStudent image into a Student-sized arena
// writes sizeof(GradStudent) bytes.
func TestCopyFromLargerOverflows(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()

	src, err := View(m, grad, layout.ILP32i386, 0x1800)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Zero(); err != nil {
		t.Fatal(err)
	}
	if err := src.SetIndex("ssn", 2, 0x61616161); err != nil {
		t.Fatal(err)
	}

	// Destination arena: a Student at 0x1100 followed by a sentinel word.
	sentinelAddr := mem.Addr(0x1100 + 16 + 8)
	if err := m.WriteU32(sentinelAddr, 0x11111111); err != nil {
		t.Fatal(err)
	}
	dst, err := View(m, student, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	// The "copy constructor" copies the *source* image: src is viewed as
	// GradStudent at the destination for the copy.
	dstAsGrad, err := dst.ViewAs(grad)
	if err != nil {
		t.Fatal(err)
	}
	if err := dstAsGrad.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadU32(sentinelAddr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x61616161 {
		t.Errorf("sentinel = %#x, want ssn[2] value (overflowed)", got)
	}
}

func TestBytesAndZero(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	o, err := View(m, student, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("year", 2009); err != nil {
		t.Fatal(err)
	}
	b, err := o.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(b)) != o.Size() {
		t.Errorf("image size = %d, want %d", len(b), o.Size())
	}
	if err := o.Zero(); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Int("year"); v != 0 {
		t.Errorf("year after Zero = %d", v)
	}
}

func TestUnsignedMemberRoundTrip(t *testing.T) {
	m := newTestMem(t)
	cls := layout.NewClass("U").AddField("u", layout.UInt).AddField("c", layout.Char)
	o, err := View(m, cls, layout.ILP32, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("u", -1); err != nil {
		t.Fatal(err)
	}
	// Unsigned read of stored -1 yields 2^32-1 — the integer-underflow
	// trap the paper's introduction describes for strncpy lengths.
	if v, _ := o.Int("u"); v != 0xffffffff {
		t.Errorf("u = %#x, want 0xffffffff", v)
	}
	if err := o.SetInt("c", -1); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Int("c"); v != -1 {
		t.Errorf("signed char = %d, want -1", v)
	}
}

func TestZeroScalarsLeavesArraysIndeterminate(t *testing.T) {
	m := newTestMem(t)
	_, grad := paperClasses()
	o, err := View(m, grad, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill everything with a sentinel pattern.
	if err := m.Memset(0x1100, 0xee, o.Size()); err != nil {
		t.Fatal(err)
	}
	if err := o.ZeroScalars(); err != nil {
		t.Fatal(err)
	}
	// Scalars (including inherited ones) are zeroed...
	if v, _ := o.Float("gpa"); v != 0 {
		t.Errorf("gpa = %v", v)
	}
	if v, _ := o.Int("year"); v != 0 {
		t.Errorf("year = %v", v)
	}
	// ...but the ssn array keeps its indeterminate contents.
	if v, _ := o.Index("ssn", 0); uint32(v) != 0xeeeeeeee {
		t.Errorf("ssn[0] = %#x, want untouched sentinel", uint32(v))
	}
}

func TestZeroScalarsRecursesIntoNestedClasses(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	holder := layout.NewClass("Holder").
		AddField("inner", student).
		AddField("p", layout.PtrTo(nil))
	o, err := View(m, holder, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Memset(0x1100, 0xee, o.Size()); err != nil {
		t.Fatal(err)
	}
	if err := o.ZeroScalars(); err != nil {
		t.Fatal(err)
	}
	innerAddr, err := o.FieldAddr("inner")
	if err != nil {
		t.Fatal(err)
	}
	gpa, err := m.ReadF64(innerAddr)
	if err != nil {
		t.Fatal(err)
	}
	if gpa != 0 {
		t.Errorf("nested gpa = %v", gpa)
	}
	if p, _ := o.Ptr("p"); p != 0 {
		t.Errorf("pointer member = %#x", uint64(p))
	}
}

func TestViewAccessors(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	o, err := View(m, student, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if o.End() != 0x1110 {
		t.Errorf("End = %#x", uint64(o.End()))
	}
	if o.Model().Name != layout.ILP32i386.Name {
		t.Errorf("Model = %s", o.Model().Name)
	}
	if o.Layout().Size != 16 {
		t.Errorf("Layout().Size = %d", o.Layout().Size)
	}
	if v, err := o.Float("gpa"); err != nil || v != 0 {
		// freshly mapped bss is zero
		t.Errorf("Float = %v, %v", v, err)
	}
}

func TestStringFormat(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	o, err := View(m, student, layout.ILP32i386, 0x1100)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.String(); got != "Student@0x1100[16]" {
		t.Errorf("String = %q", got)
	}
}
