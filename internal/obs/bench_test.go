package obs

import (
	"testing"

	"repro/internal/mem"
)

// The zero-cost-when-disabled contract: with no observer armed the
// checked write path pays exactly one nil check. Compare:
//
//	go test ./internal/obs -bench WriteObserver -benchmem
//
// BenchmarkWriteObserverOff must match the pre-obs write path;
// BenchmarkWriteObserverOn shows the (opt-in) instrumented cost.

func benchMemory(b *testing.B) *mem.Memory {
	b.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x10000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkWriteObserverOff(b *testing.B) {
	m := benchMemory(b)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(0x1000+mem.Addr(i%0x8000), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteObserverOn(b *testing.B) {
	m := benchMemory(b)
	col := NewCollector()
	m.SetAccessObserver(func(kind mem.AccessKind, addr mem.Addr, n uint64) {
		col.Tracer.Tick()
		col.Metrics.Inc(MetricWrites, L("segment", "bss"))
		col.Heat.RecordWrite(addr, n)
	})
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(0x1000+mem.Addr(i%0x8000), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// The same contract for the event bus: with no subscriber attached,
// the canonical call-site pattern (gate on Active before building a
// payload) is one atomic load and zero allocations. Compare:
//
//	go test ./internal/obs -bench BusPublish -benchmem

func BenchmarkBusPublishInactive(b *testing.B) {
	bus := NewBus(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.Active() {
			bus.Publish(KindEvent, "t-1", "default", map[string]string{"k": "v"})
		}
	}
}

func BenchmarkBusPublishActive(b *testing.B) {
	bus := NewBus(0)
	s := bus.Subscribe(0)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bus.Active() {
			bus.Publish(KindEvent, "t-1", "default", map[string]string{"k": "v"})
		}
	}
}
