package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
)

// WatchSchema versions the live event stream: every consumer of the
// /watch endpoint (pntrace -follow, the CI watch-smoke job, curl) keys
// its parsing on this string, carried by the per-connection hello
// event. Bump it when BusEvent's wire shape changes.
const WatchSchema = "pnwatch/v1"

// Bus event kinds. The serving layer publishes these; filters on the
// /watch endpoint match against them.
const (
	// KindHello is the per-connection stream header (not sequence
	// numbered; synthesized by the endpoint, never stored in the ring).
	KindHello = "hello"
	// KindSpanStart/KindSpanEnd bracket one request stage (request,
	// queue, execute, clone, ...).
	KindSpanStart = "span-start"
	KindSpanEnd   = "span-end"
	// KindEvent is an instantaneous observation: a machine event, a
	// chaos injection, a shadow violation.
	KindEvent = "event"
	// KindMetric is a metric delta: a counter increment described by
	// name and labels.
	KindMetric = "metric"
	// KindHeat is a coalesced heatmap tile delta: per-byte write counts
	// over one HeatRowBytes-aligned tile.
	KindHeat = "heat"
	// KindHeatSegments announces the observed process's segment
	// geometry, so stream consumers can rebuild an annotated heatmap.
	KindHeatSegments = "heat-segments"
	// KindAdmission is an admission-control transition: admitted, shed
	// (with reason), breaker and limiter state changes.
	KindAdmission = "admission"
	// KindTraceEnd is the terminal event of one request's stream: the
	// span tree is finished and queryable at /trace/{id}.
	KindTraceEnd = "trace-end"
	// KindGap is synthesized for a resuming subscriber whose cursor
	// fell off the ring: data carries the number of lost events.
	KindGap = "gap"
)

// BusEvent is one event on the live stream. Events are sequence
// numbered in publish order (Seq starts at 1) and stamped with the
// bus's logical tick — a counter, not wall time, so a deterministic
// run publishes a byte-identical stream.
type BusEvent struct {
	Seq  uint64 `json:"seq"`
	Tick uint64 `json:"tick"`
	Kind string `json:"kind"`
	// Trace/Tenant scope the event to one request, when it has one;
	// bus-global events (admission table state, gaps) leave them empty.
	Trace  string `json:"trace,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Data is the kind-specific payload. encoding/json marshals maps
	// with sorted keys, so rendering is deterministic.
	Data map[string]string `json:"data,omitempty"`
}

// Bus is a bounded ring-buffer event bus: the write side is
// non-blocking and effectively free when nobody is watching, the read
// side is per-subscriber cursors over the shared ring.
//
// The contract, in order of importance:
//
//   - Zero cost when idle. Publish first checks an atomic subscriber
//     count and returns before touching the ring, taking the lock, or
//     allocating. Callers building event payloads must gate on
//     Active() so the map literal itself is never constructed for an
//     unwatched run (TestBusInactivePublishAllocs pins this at zero
//     allocations).
//   - Never blocks the write path. Publish appends to the ring and
//     pokes each subscriber's 1-slot notify channel with a
//     non-blocking send. A slow subscriber is lapped: the ring
//     overwrites its unread events and its next read reports how many
//     were dropped — the writer never waits.
//   - Resumable. Events keep their sequence numbers while they remain
//     in the ring, so a reconnecting subscriber passes the last seq it
//     saw and replay continues from there (or a gap is reported if
//     the ring has moved on). Events published while no subscriber at
//     all was attached are not retained — that is the zero-cost
//     trade.
//
// All methods are nil-safe.
type Bus struct {
	mu     sync.Mutex
	ring   []BusEvent
	head   uint64 // seq of the next event to publish (== published count + 1... see below)
	tick   uint64 // logical clock, advanced per publish
	subs   map[int]*BusSubscriber
	nextID int

	active  atomic.Int32  // current subscriber count
	dropped atomic.Uint64 // events dropped across all subscribers, ever

	// OnSubscribers, when non-nil, receives the subscriber count after
	// every subscribe/unsubscribe (the pn_serve_watch_subscribers
	// gauge seam). OnDrop receives per-lap drop counts (the
	// pn_serve_watch_dropped_events_total counter seam). Both are
	// called outside the bus lock.
	OnSubscribers func(n int)
	OnDrop        func(n uint64)
}

// DefaultBusCapacity is the ring size when NewBus is given none: large
// enough to hold a full request's span/heat/event stream many times
// over, small enough to bound memory at a few MB.
const DefaultBusCapacity = 4096

// NewBus builds a bus with the given ring capacity (<= 0 selects
// DefaultBusCapacity).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{
		ring: make([]BusEvent, 0, capacity),
		subs: make(map[int]*BusSubscriber),
	}
}

// Active reports whether any subscriber is attached. It is a single
// atomic load — the zero-cost gate event producers check before
// building payloads.
func (b *Bus) Active() bool {
	return b != nil && b.active.Load() > 0
}

// Dropped returns the total number of events dropped on slow
// subscribers since the bus was built.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Publish appends one event to the ring and wakes subscribers. It is a
// no-op (one atomic load) when no subscriber is attached. The event's
// Seq and Tick are assigned here, in publish order.
func (b *Bus) Publish(kind, trace, tenant string, data map[string]string) {
	if b == nil || b.active.Load() == 0 {
		return
	}
	b.mu.Lock()
	b.head++
	b.tick++
	ev := BusEvent{Seq: b.head, Tick: b.tick, Kind: kind, Trace: trace, Tenant: tenant, Data: data}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[int((ev.Seq-1)%uint64(cap(b.ring)))] = ev
	}
	subs := make([]*BusSubscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		select {
		case s.notify <- struct{}{}:
		default: // already poked; it will drain the ring when it reads
		}
	}
}

// tailLocked returns the seq of the oldest event still in the ring
// (head - len + 1), or head+1 when the ring is empty.
func (b *Bus) tailLocked() uint64 {
	if len(b.ring) == 0 {
		return b.head + 1
	}
	return b.head - uint64(len(b.ring)) + 1
}

// BusSubscriber is one reader's cursor over the ring. Read events with
// Next; always Close when done.
type BusSubscriber struct {
	bus    *Bus
	id     int
	cursor uint64 // seq of the next event to deliver
	notify chan struct{}
	done   chan struct{}
	once   sync.Once

	dropped atomic.Uint64
}

// Subscribe attaches a reader. afterSeq is the last sequence number
// the reader has already seen: 0 starts at the next published event
// for a fresh reader, while a resuming reader passes its Last-Event-ID
// and replay continues from the ring. If the requested events have
// been overwritten, the first Next returns a synthetic KindGap event
// reporting the loss.
func (b *Bus) Subscribe(afterSeq uint64) *BusSubscriber {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	b.nextID++
	s := &BusSubscriber{
		bus:    b,
		id:     b.nextID,
		cursor: b.head + 1,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if afterSeq > 0 && afterSeq < b.head {
		s.cursor = afterSeq + 1 // replay what the ring still holds
	}
	b.subs[s.id] = s
	n := len(b.subs)
	b.mu.Unlock()
	b.active.Add(1)
	if b.OnSubscribers != nil {
		b.OnSubscribers(n)
	}
	return s
}

// Close detaches the subscriber. Idempotent; pending Next calls
// unblock and report closure.
func (s *BusSubscriber) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		b := s.bus
		b.mu.Lock()
		delete(b.subs, s.id)
		n := len(b.subs)
		b.mu.Unlock()
		b.active.Add(-1)
		close(s.done)
		if b.OnSubscribers != nil {
			b.OnSubscribers(n)
		}
	})
}

// Dropped returns how many events this subscriber has lost to ring
// laps so far.
func (s *BusSubscriber) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Next blocks until an event is available, the context ends, or the
// subscriber is closed. ok is false on context end / closure. When the
// producer has lapped this subscriber's cursor, Next first returns a
// synthetic KindGap event whose data reports the number of lost
// events, then resumes from the oldest event still held.
func (s *BusSubscriber) Next(ctx context.Context) (BusEvent, bool) {
	if s == nil {
		return BusEvent{}, false
	}
	for {
		b := s.bus
		b.mu.Lock()
		if tail := b.tailLocked(); s.cursor < tail {
			lost := tail - s.cursor
			s.cursor = tail
			tick := b.tick
			b.mu.Unlock()
			s.dropped.Add(lost)
			b.dropped.Add(lost)
			if b.OnDrop != nil {
				b.OnDrop(lost)
			}
			return BusEvent{Tick: tick, Kind: KindGap,
				Data: map[string]string{"lost": strconv.FormatUint(lost, 10)}}, true
		}
		if s.cursor <= b.head {
			ev := b.ring[int((s.cursor-1)%uint64(cap(b.ring)))]
			s.cursor++
			b.mu.Unlock()
			return ev, true
		}
		b.mu.Unlock()
		select {
		case <-s.notify:
		case <-ctx.Done():
			return BusEvent{}, false
		case <-s.done:
			return BusEvent{}, false
		}
	}
}
