package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// drainN reads n events with a deadline so a broken bus fails the test
// instead of hanging it.
func drainN(t *testing.T, s *BusSubscriber, n int) []BusEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out := make([]BusEvent, 0, n)
	for len(out) < n {
		ev, ok := s.Next(ctx)
		if !ok {
			t.Fatalf("subscriber closed after %d of %d events", len(out), n)
		}
		out = append(out, ev)
	}
	return out
}

func TestBusPublishSubscribeOrder(t *testing.T) {
	b := NewBus(16)
	s := b.Subscribe(0)
	defer s.Close()
	for i := 0; i < 5; i++ {
		b.Publish(KindEvent, "t-1", "default", map[string]string{"i": fmt.Sprint(i)})
	}
	evs := drainN(t, s, 5)
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Tick != uint64(i+1) {
			t.Errorf("event %d: tick = %d, want %d", i, ev.Tick, i+1)
		}
		if ev.Kind != KindEvent || ev.Trace != "t-1" || ev.Tenant != "default" {
			t.Errorf("event %d: unexpected envelope %+v", i, ev)
		}
		if ev.Data["i"] != fmt.Sprint(i) {
			t.Errorf("event %d: data = %v", i, ev.Data)
		}
	}
}

// TestBusDeterministicStream is the virtual-clock determinism
// contract: the bus's clock is its own logical tick, so two buses fed
// the same publish sequence render byte-identical NDJSON.
func TestBusDeterministicStream(t *testing.T) {
	render := func() []byte {
		b := NewBus(64)
		s := b.Subscribe(0)
		defer s.Close()
		rng := rand.New(rand.NewSource(7))
		kinds := []string{KindSpanStart, KindSpanEnd, KindEvent, KindHeat, KindAdmission}
		for i := 0; i < 40; i++ {
			k := kinds[rng.Intn(len(kinds))]
			b.Publish(k, fmt.Sprintf("t-%d", rng.Intn(3)), "default",
				map[string]string{"n": fmt.Sprint(rng.Intn(100)), "z": "zz", "a": "aa"})
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, ev := range drainN(t, s, 40) {
			if err := enc.Encode(ev); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same publish sequence rendered differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestBusSlowSubscriberDropNotBlock is the drop-not-block property: a
// subscriber that never reads cannot stall the writer, and once it
// does read, delivered + dropped accounts for every published event.
func TestBusSlowSubscriberDropNotBlock(t *testing.T) {
	const ringCap = 32
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 20; round++ {
		b := NewBus(ringCap)
		s := b.Subscribe(0)
		n := ringCap/2 + rng.Intn(4*ringCap) // sometimes laps, sometimes not
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < n; i++ {
				b.Publish(KindEvent, "", "", nil)
			}
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: publisher blocked on a slow subscriber", round)
		}
		delivered := 0
		var lostFromGaps uint64
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		for delivered+int(lostFromGaps) < n {
			ev, ok := s.Next(ctx)
			if !ok {
				t.Fatalf("round %d: stream ended after %d delivered + %d lost of %d",
					round, delivered, lostFromGaps, n)
			}
			if ev.Kind == KindGap {
				var lost uint64
				fmt.Sscan(ev.Data["lost"], &lost)
				lostFromGaps += lost
				continue
			}
			delivered++
		}
		cancel()
		if s.Dropped() != lostFromGaps {
			t.Errorf("round %d: Dropped() = %d, gap events reported %d", round, s.Dropped(), lostFromGaps)
		}
		if n > ringCap && lostFromGaps == 0 {
			t.Errorf("round %d: published %d into a %d ring without reading, expected drops", round, n, ringCap)
		}
		s.Close()
	}
}

// TestBusInactivePublishAllocs pins the zero-cost contract: the
// canonical call-site pattern (gate on Active before building the
// payload) performs zero allocations when nobody is watching.
func TestBusInactivePublishAllocs(t *testing.T) {
	b := NewBus(64)
	allocs := testing.AllocsPerRun(1000, func() {
		if b.Active() {
			b.Publish(KindEvent, "t-1", "default", map[string]string{"k": "v"})
		}
	})
	if allocs != 0 {
		t.Fatalf("inactive publish pattern allocates %.1f times per op, want 0", allocs)
	}
	var nilBus *Bus
	allocs = testing.AllocsPerRun(1000, func() {
		if nilBus.Active() {
			nilBus.Publish(KindEvent, "", "", nil)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-bus publish pattern allocates %.1f times per op, want 0", allocs)
	}
}

func TestBusInactiveEventsNotRetained(t *testing.T) {
	b := NewBus(8)
	b.Publish(KindEvent, "", "", nil) // nobody watching: dropped by contract
	s := b.Subscribe(0)
	defer s.Close()
	b.Publish(KindSpanStart, "", "", nil)
	ev := drainN(t, s, 1)[0]
	if ev.Seq != 1 || ev.Kind != KindSpanStart {
		t.Fatalf("first retained event = %+v, want seq 1 span-start", ev)
	}
}

func TestBusResume(t *testing.T) {
	b := NewBus(64)
	s := b.Subscribe(0)
	for i := 0; i < 6; i++ {
		b.Publish(KindEvent, "", "", map[string]string{"i": fmt.Sprint(i)})
	}
	evs := drainN(t, s, 3)
	last := evs[2].Seq
	s.Close()

	// Reconnect with Last-Event-ID: delivery resumes at last+1.
	s2 := b.Subscribe(last)
	defer s2.Close()
	evs = drainN(t, s2, 3)
	if evs[0].Seq != last+1 || evs[2].Seq != 6 {
		t.Fatalf("resume delivered seqs %d..%d, want %d..6", evs[0].Seq, evs[2].Seq, last+1)
	}

	// Resuming past the ring's tail reports a gap first.
	small := NewBus(4)
	s3 := small.Subscribe(0)
	for i := 0; i < 10; i++ {
		small.Publish(KindEvent, "", "", nil)
	}
	s3.Close()
	s4 := small.Subscribe(2) // seqs 3..6 have been overwritten
	defer s4.Close()
	ev := drainN(t, s4, 1)[0]
	if ev.Kind != KindGap || ev.Data["lost"] != "4" {
		t.Fatalf("lapped resume returned %+v, want gap with lost=4", ev)
	}
	next := drainN(t, s4, 1)[0]
	if next.Seq != 7 {
		t.Fatalf("after gap, seq = %d, want 7 (ring tail)", next.Seq)
	}
}

// TestBusConcurrentStress exercises the bus under the race detector:
// concurrent publishers and churning subscribers.
func TestBusConcurrentStress(t *testing.T) {
	b := NewBus(128)
	b.OnSubscribers = func(int) {}
	b.OnDrop = func(uint64) {}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Active() {
					b.Publish(KindEvent, fmt.Sprintf("t-%d", p), "default", map[string]string{"i": fmt.Sprint(i)})
				}
			}
		}(p)
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				s := b.Subscribe(0)
				for i := 0; i < 50; i++ {
					if _, ok := s.Next(ctx); !ok {
						break
					}
				}
				s.Close()
			}
		}()
	}
	wg.Wait()
}
