package obs

import (
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/resilience"
)

// Collector bundles a Tracer, a metrics Registry, and a Heatmap, and
// implements every observation seam the substrates expose:
//
//   - mem.AccessObserver: per-segment read/write counts and byte
//     volume, access-size histograms, write-density heat, one clock
//     tick per access.
//   - machine process construction (OnNewProcess) and event recording
//     (SetEventObserver): process counts, machine-event and
//     defense-verdict counters, instant trace events for hijacks and
//     aborts.
//   - chaos.Config.OnInject: fault counters by kind plus chaos trace
//     events.
//   - resilience.Observer: retry spans per supervised attempt, job /
//     retry / crash counters.
//
// A Collector observes; it never alters the run. Methods are safe for
// concurrent use (supervised attempts run on their own goroutines) and
// nil-safe, so `var c *Collector; c.ObserveProcess(p)` is a no-op.
type Collector struct {
	Tracer  *Tracer
	Metrics *Registry
	Heat    *Heatmap

	mu       sync.Mutex
	procs    []*machine.Process
	attempts map[string]*Span // job id -> open retry span
}

// NewCollector builds a collector with all three sinks armed and the
// standard metric families described.
func NewCollector() *Collector {
	c := &Collector{Tracer: NewTracer(), Metrics: NewRegistry(), Heat: NewHeatmap()}
	m := c.Metrics
	m.Describe(MetricReads, "checked reads observed, by segment", TypeCounter)
	m.Describe(MetricWrites, "checked writes observed, by segment", TypeCounter)
	m.Describe(MetricReadBytes, "bytes read through checked accesses, by segment", TypeCounter)
	m.Describe(MetricWriteBytes, "bytes written through checked accesses, by segment", TypeCounter)
	m.Describe(MetricAccessSize, "checked access sizes in bytes, by op", TypeHistogram)
	m.Describe(MetricWatchpointHits, "watchpoint hits harvested at finalize, by watchpoint", TypeCounter)
	m.Describe(MetricProcesses, "simulated processes constructed", TypeCounter)
	m.Describe(MetricMachineEvents, "machine events recorded, by kind", TypeCounter)
	m.Describe(MetricVerdicts, "defense verdicts observed, by verdict", TypeCounter)
	m.Describe(MetricChaosFaults, "chaos faults injected, by kind", TypeCounter)
	m.Describe(MetricJobs, "supervised jobs finished, by status", TypeCounter)
	m.Describe(MetricAttempts, "supervised attempts started", TypeCounter)
	m.Describe(MetricRetries, "supervised retries (attempts beyond the first)", TypeCounter)
	m.Describe(MetricCrashes, "supervised attempt crashes, by kind", TypeCounter)
	m.Describe(MetricShadowPoisonOps, "shadow poison operations, harvested at finalize", TypeCounter)
	m.Describe(MetricShadowUnpoisonOps, "shadow unpoison operations, harvested at finalize", TypeCounter)
	m.Describe(MetricShadowQuarantines, "shadow quarantine operations, harvested at finalize", TypeCounter)
	m.Describe(MetricShadowCheckedWrites, "writes validated against shadow memory, harvested at finalize", TypeCounter)
	m.Describe(MetricShadowViolations, "writes rejected by shadow memory, harvested at finalize", TypeCounter)
	m.Describe(MetricShadowPoisoned, "granules carrying shadow poison at finalize", TypeGauge)
	return c
}

// Install points machine.OnNewProcess at this collector so every
// process built anywhere in the program is observed, and returns a
// restore function for the previous seam value. Callers are expected
// to be single-threaded drivers (CLIs, dedicated tests).
func (c *Collector) Install() (restore func()) {
	prev := machine.OnNewProcess
	if c == nil {
		return func() {}
	}
	machine.OnNewProcess = c.ObserveProcess
	return func() { machine.OnNewProcess = prev }
}

// ObserveProcess instruments one simulated process: arms the passive
// access observer on its memory, subscribes to its event stream, and
// remembers it for the finalize-time harvest (watchpoint hits, global
// object layouts for heatmap annotation).
func (c *Collector) ObserveProcess(p *machine.Process) {
	if c == nil || p == nil {
		return
	}
	c.mu.Lock()
	c.procs = append(c.procs, p)
	c.mu.Unlock()

	c.Metrics.Inc(MetricProcesses)
	c.Heat.SetSegments(p.Mem.Segments())
	c.Tracer.Event(CatProcess, "new-process", A("model", p.Model.Name))

	memory := p.Mem
	memory.SetAccessObserver(func(kind mem.AccessKind, addr mem.Addr, n uint64) {
		c.Tracer.Tick()
		seg := "unmapped"
		if s := memory.FindSegment(addr); s != nil {
			seg = s.Kind.String()
		}
		segL := L("segment", seg)
		if kind == mem.AccessWrite {
			c.Metrics.Inc(MetricWrites, segL)
			c.Metrics.Add(MetricWriteBytes, float64(n), segL)
			c.Metrics.Observe(MetricAccessSize, float64(n), L("op", "write"))
			c.Heat.RecordWrite(addr, n)
		} else {
			c.Metrics.Inc(MetricReads, segL)
			c.Metrics.Add(MetricReadBytes, float64(n), segL)
			c.Metrics.Observe(MetricAccessSize, float64(n), L("op", "read"))
		}
	})

	p.SetEventObserver(func(e machine.Event) {
		kind := e.Kind.String()
		c.Metrics.Inc(MetricMachineEvents, L("kind", kind))
		if v, ok := verdictOf(e.Kind); ok {
			c.Metrics.Inc(MetricVerdicts, L("verdict", v))
		}
		// Output events are high-volume program chatter; everything
		// else (calls, hijacks, aborts, dispatches) becomes a trace
		// instant.
		if e.Kind != machine.EvOutput {
			c.Tracer.Event(CatMachine, kind, A("detail", e.Detail), AHex("addr", uint64(e.Addr)))
		}
	})
}

// verdictOf maps abort/violation events onto defense-verdict labels.
func verdictOf(k machine.EventKind) (string, bool) {
	switch k {
	case machine.EvCanaryAbort:
		return "canary-abort", true
	case machine.EvShadowAbort:
		return "shadow-abort", true
	case machine.EvNXViolation:
		return "nx-violation", true
	case machine.EvGuardAbort:
		return "guard-abort", true
	case machine.EvShadowViolation:
		return "shadow-violation", true
	case machine.EvSegfault:
		return "segfault", true
	default:
		return "", false
	}
}

// ChaosHook returns the chaos.Config.OnInject adapter: every injection
// becomes a pn_chaos_faults_total increment and a chaos trace event.
func (c *Collector) ChaosHook() func(chaos.Injection) {
	if c == nil {
		return nil
	}
	return func(i chaos.Injection) {
		c.Metrics.Inc(MetricChaosFaults, L("kind", i.Kind))
		c.Tracer.Event(CatChaos, i.Kind,
			A("op", i.Op), AHex("addr", i.Addr), AInt("access", int64(i.Access)), A("detail", i.Detail))
	}
}

// --- resilience.Observer --------------------------------------------------

var _ resilience.Observer = (*Collector)(nil)

// AttemptStarted implements resilience.Observer: each supervised
// attempt opens a retry span.
func (c *Collector) AttemptStarted(job string, attempt int) {
	if c == nil {
		return
	}
	c.Metrics.Inc(MetricAttempts)
	if attempt > 1 {
		c.Metrics.Inc(MetricRetries)
	}
	c.mu.Lock()
	if c.attempts == nil {
		c.attempts = make(map[string]*Span)
	}
	c.mu.Unlock()
	sp := c.Tracer.Start(CatRetry, fmt.Sprintf("%s#%d", job, attempt), A("job", job), AInt("attempt", int64(attempt)))
	c.mu.Lock()
	c.attempts[job] = sp
	c.mu.Unlock()
}

// AttemptCrashed implements resilience.Observer: counts the crash and
// closes the attempt's retry span with the crash annotation.
func (c *Collector) AttemptCrashed(job string, rec resilience.CrashRecord) {
	if c == nil {
		return
	}
	c.Metrics.Inc(MetricCrashes, L("kind", rec.Kind))
	c.mu.Lock()
	sp := c.attempts[job]
	delete(c.attempts, job)
	c.mu.Unlock()
	sp.SetAttr("crash", rec.Kind)
	if rec.FaultKind != "" {
		sp.SetAttr("fault", rec.FaultKind)
	}
	if rec.Restored {
		sp.SetAttr("restored", fmt.Sprintf("clean=%v", rec.RestoreClean))
	}
	sp.Close()
}

// JobFinished implements resilience.Observer: counts the job by final
// status and closes any still-open attempt span.
func (c *Collector) JobFinished(res *resilience.Result) {
	if c == nil || res == nil {
		return
	}
	c.Metrics.Inc(MetricJobs, L("status", string(res.Status)))
	c.mu.Lock()
	sp := c.attempts[res.Job]
	delete(c.attempts, res.Job)
	c.mu.Unlock()
	sp.SetAttr("status", string(res.Status))
	sp.Close()
}

// --- finalize -------------------------------------------------------------

// Finalize harvests post-run state — watchpoint hit counts and global
// object layouts (extents plus vptr slots) for heatmap annotation —
// then finishes the trace. Call it once, after the instrumented run.
func (c *Collector) Finalize() {
	if c == nil {
		return
	}
	c.mu.Lock()
	procs := append([]*machine.Process(nil), c.procs...)
	c.mu.Unlock()

	seenW := map[string]int{}
	var shadowPoisoned int
	for _, p := range procs {
		for _, w := range p.Mem.Watchpoints() {
			seenW[w.Name] += w.Hits
		}
		if san := p.Sanitizer(); san != nil {
			st := san.Stats()
			c.Metrics.Add(MetricShadowPoisonOps, float64(st.PoisonOps))
			c.Metrics.Add(MetricShadowUnpoisonOps, float64(st.UnpoisonOps))
			c.Metrics.Add(MetricShadowQuarantines, float64(st.QuarantineOps))
			c.Metrics.Add(MetricShadowCheckedWrites, float64(st.CheckedWrites))
			c.Metrics.Add(MetricShadowViolations, float64(st.Violations))
			shadowPoisoned += san.PoisonedGranules()
			for _, r := range san.Regions() {
				c.Heat.AddRegion(fmt.Sprintf("shadow:%s@%#x", r.Kind, uint64(r.Base)), r.Base, r.Size)
			}
		}
	}
	if shadowPoisoned > 0 {
		c.Metrics.Set(MetricShadowPoisoned, float64(shadowPoisoned))
	}
	for _, p := range procs {
		for _, g := range p.Globals() {
			c.Heat.AddRegion(g.Name, g.Addr, g.Type.Size(p.Model))
			if cls, ok := g.Type.(*layout.Class); ok {
				if l, err := layout.Of(cls, p.Model); err == nil {
					for i, off := range l.VPtrOffsets {
						name := g.Name + ".__vptr"
						if len(l.VPtrOffsets) > 1 {
							name = fmt.Sprintf("%s.__vptr[%d]", g.Name, i)
						}
						c.Heat.AddRegion(name, g.Addr.Add(int64(off)), uint64(p.Model.PtrSize))
					}
				}
			}
		}
	}
	// Deterministic order comes from the registry's own sorting.
	for name, hits := range seenW {
		if hits > 0 {
			c.Metrics.Add(MetricWatchpointHits, float64(hits), L("watchpoint", name))
		}
	}
	c.Tracer.Finish()
}
