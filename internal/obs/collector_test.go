package obs

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/machine"
	"repro/internal/resilience"
)

func TestCollectorObservesProcessAccesses(t *testing.T) {
	col := NewCollector()
	restore := col.Install()
	defer restore()

	p, err := machine.New(machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Metrics.Value(MetricProcesses); got != 1 {
		t.Errorf("processes = %g, want 1", got)
	}

	base := p.Img.BSS.Base
	if err := p.Mem.WriteU32(base, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mem.ReadU32(base); err != nil {
		t.Fatal(err)
	}

	if got := col.Metrics.Value(MetricWrites, L("segment", "bss")); got != 1 {
		t.Errorf("bss writes = %g, want 1", got)
	}
	if got := col.Metrics.Value(MetricWriteBytes, L("segment", "bss")); got != 4 {
		t.Errorf("bss write bytes = %g, want 4", got)
	}
	if got := col.Metrics.Value(MetricReads, L("segment", "bss")); got != 1 {
		t.Errorf("bss reads = %g, want 1", got)
	}
	if got := col.Heat.WrittenBytes(); got != 4 {
		t.Errorf("heat bytes = %g, want 4", float64(got))
	}
	if col.Tracer.Now() == 0 {
		t.Error("logical clock did not advance on accesses")
	}

	// Watchpoint hits are harvested at finalize.
	p.Mem.Watch("victim", base, 4, nil)
	if err := p.Mem.WriteU8(base, 1); err != nil {
		t.Fatal(err)
	}
	col.Finalize()
	if got := col.Metrics.Value(MetricWatchpointHits, L("watchpoint", "victim")); got != 1 {
		t.Errorf("watchpoint hits = %g, want 1", got)
	}
}

func TestCollectorSeamRestores(t *testing.T) {
	col := NewCollector()
	restore := col.Install()
	restore()
	if machine.OnNewProcess != nil {
		t.Error("Install restore left the seam set")
	}
}

func TestChaosHookCounts(t *testing.T) {
	col := NewCollector()
	hook := col.ChaosHook()
	hook(chaos.Injection{Kind: "bitflip", Op: "write", Addr: 0x1000, Access: 1})
	hook(chaos.Injection{Kind: "bitflip", Op: "write", Addr: 0x1004, Access: 2})
	hook(chaos.Injection{Kind: "drop", Op: "write", Addr: 0x2000, Access: 3})
	if got := col.Metrics.Value(MetricChaosFaults, L("kind", "bitflip")); got != 2 {
		t.Errorf("bitflip faults = %g, want 2", got)
	}
	evs := col.Tracer.Events()
	if len(evs) != 3 || evs[0].Category != CatChaos {
		t.Errorf("chaos events = %+v", evs)
	}
}

func TestCollectorResilienceObserver(t *testing.T) {
	col := NewCollector()
	var obsIface resilience.Observer = col // compile-time + runtime check
	obsIface.AttemptStarted("job", 1)
	obsIface.AttemptCrashed("job", resilience.CrashRecord{Kind: "fault", FaultKind: "bitflip", Restored: true, RestoreClean: true})
	obsIface.AttemptStarted("job", 2)
	obsIface.JobFinished(&resilience.Result{Job: "job", Status: resilience.StatusOK})

	m := col.Metrics
	if m.Value(MetricAttempts) != 2 || m.Value(MetricRetries) != 1 {
		t.Errorf("attempts=%g retries=%g, want 2/1", m.Value(MetricAttempts), m.Value(MetricRetries))
	}
	if m.Value(MetricCrashes, L("kind", "fault")) != 1 {
		t.Errorf("crashes = %g, want 1", m.Value(MetricCrashes, L("kind", "fault")))
	}
	if m.Value(MetricJobs, L("status", string(resilience.StatusOK))) != 1 {
		t.Error("job status counter missing")
	}

	col.Finalize()
	spans := col.Tracer.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d retry spans, want 2", len(spans))
	}
	var crashAttr, faultAttr bool
	for _, a := range spans[0].Attrs {
		if a.Key == "crash" && a.Value == "fault" {
			crashAttr = true
		}
		if a.Key == "fault" && a.Value == "bitflip" {
			faultAttr = true
		}
	}
	if !crashAttr || !faultAttr {
		t.Errorf("first attempt span attrs = %+v", spans[0].Attrs)
	}
	if !strings.HasPrefix(spans[0].Name, "job#1") || !strings.HasPrefix(spans[1].Name, "job#2") {
		t.Errorf("span names = %q, %q", spans[0].Name, spans[1].Name)
	}
}
