package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing / Perfetto "JSON Array" flavour). Field order is
// fixed by the struct, and args maps are marshalled with sorted keys
// by encoding/json, so the export is byte-deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   *uint64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

func attrsToArgs(attrs []Attr, extra ...Attr) map[string]string {
	if len(attrs)+len(extra) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs)+len(extra))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	for _, a := range extra {
		m[a.Key] = a.Value
	}
	return m
}

// ChromeTrace renders the tracer as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Spans become complete
// ("X") events with their logical-clock start as ts and duration in
// ticks; point events become thread-scoped instants ("i"). Open spans
// are finished first, so the export is self-contained.
func ChromeTrace(t *Tracer) ([]byte, error) {
	t.Finish()
	var evs []chromeEvent
	for _, s := range t.Spans() {
		dur := uint64(s.End - s.Start)
		evs = append(evs, chromeEvent{
			Name: s.Name, Cat: s.Category, Phase: "X",
			TS: uint64(s.Start), Dur: &dur, PID: 1, TID: 1,
			Args: attrsToArgs(s.Attrs, AInt("span_id", int64(s.ID)), AInt("parent", int64(s.Parent))),
		})
	}
	for _, e := range t.Events() {
		evs = append(evs, chromeEvent{
			Name: e.Name, Cat: e.Category, Phase: "i",
			TS: uint64(e.Time), PID: 1, TID: 1, Scope: "t",
			Args: attrsToArgs(e.Attrs),
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ns"}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("obs: chrome trace: %w", err)
	}
	return buf.Bytes(), nil
}

// ndjsonLine is one line of the structured event stream: a discriminated
// union over spans, point events, and metric points.
type ndjsonLine struct {
	Type   string       `json:"type"`
	Span   *Span        `json:"span,omitempty"`
	Event  *PointEvent  `json:"event,omitempty"`
	Metric *MetricPoint `json:"metric,omitempty"`
}

// NDJSON renders the collector's spans, events, and final metric values
// as a newline-delimited JSON stream: spans and events merged in
// timestamp order (spans keyed by start; spans before events on ties),
// followed by metric points. Every consumer that can read a line of
// JSON can tail the run.
func NDJSON(t *Tracer, r *Registry) ([]byte, error) {
	t.Finish()
	spans := t.Spans()
	events := t.Events()

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	write := func(l ndjsonLine) error { return enc.Encode(l) }

	i, j := 0, 0
	for i < len(spans) || j < len(events) {
		takeSpan := j >= len(events) || (i < len(spans) && spans[i].Start <= events[j].Time)
		var err error
		if takeSpan {
			err = write(ndjsonLine{Type: "span", Span: spans[i]})
			i++
		} else {
			err = write(ndjsonLine{Type: "event", Event: &events[j]})
			j++
		}
		if err != nil {
			return nil, fmt.Errorf("obs: ndjson: %w", err)
		}
	}
	for _, p := range r.Snapshot() {
		p := p
		if err := write(ndjsonLine{Type: "metric", Metric: &p}); err != nil {
			return nil, fmt.Errorf("obs: ndjson: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// HeatmapJSON renders the heatmap's plain-data form as indented JSON.
func HeatmapJSON(h *Heatmap) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.Data()); err != nil {
		return nil, fmt.Errorf("obs: heatmap json: %w", err)
	}
	return buf.Bytes(), nil
}
