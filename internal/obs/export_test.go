package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture builds a small, fully deterministic tracer + registry by
// hand: an experiment span with one scenario child, a machine instant
// inside it, and a handful of metric series including a histogram.
func fixture() (*Tracer, *Registry) {
	tr := NewTracer()
	root := tr.Start(CatExperiment, "E0", A("ref", "§0"), A("title", "fixture"))
	sc := tr.Start(CatScenario, "stack-ret", A("defense", "none"))
	tr.Event(CatMachine, "control-hijack", AHex("addr", 0x8048000), A("detail", "ret clobbered"))
	tr.Tick() // a lone observed access
	sc.Close()
	root.SetAttr("outcome", "SUCCESS")
	root.Close()

	r := NewRegistry()
	r.Describe(MetricWrites, "checked writes observed, by segment", TypeCounter)
	r.Describe(MetricAccessSize, "checked access sizes in bytes, by op", TypeHistogram, 1, 4, 16)
	r.Inc(MetricWrites, L("segment", "stack"))
	r.Inc(MetricWrites, L("segment", "stack"))
	r.Inc(MetricWrites, L("segment", "bss"))
	r.Observe(MetricAccessSize, 4, L("op", "write"))
	r.Observe(MetricAccessSize, 64, L("op", "write"))
	return tr, r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr, _ := fixture()
	got, err := ChromeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.json", got)

	// Independently of the golden bytes, the document must be valid
	// trace_event JSON with the phases chrome://tracing expects.
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Dur   *int   `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var xs, is int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "X":
			xs++
			if e.Dur == nil {
				t.Errorf("complete event %q lacks dur", e.Name)
			}
		case "i":
			is++
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if xs != 2 || is != 1 {
		t.Errorf("phases: %d X + %d i, want 2 + 1", xs, is)
	}
}

func TestExpositionGolden(t *testing.T) {
	_, r := fixture()
	checkGolden(t, "metrics.golden.prom", []byte(r.Exposition()))
}

func TestNDJSONGolden(t *testing.T) {
	tr, r := fixture()
	got, err := NDJSON(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.golden.ndjson", got)

	// Every line decodes on its own and carries a known type.
	for i, line := range bytes.Split(bytes.TrimSuffix(got, []byte("\n")), []byte("\n")) {
		var l struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &l); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		switch l.Type {
		case "span", "event", "metric":
		default:
			t.Errorf("line %d has type %q", i, l.Type)
		}
	}
}

func TestExportsDeterministic(t *testing.T) {
	render := func() ([]byte, string, []byte) {
		tr, r := fixture()
		ct, err := ChromeTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := NDJSON(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		return ct, r.Exposition(), nd
	}
	c1, e1, n1 := render()
	c2, e2, n2 := render()
	if !bytes.Equal(c1, c2) || e1 != e2 || !bytes.Equal(n1, n2) {
		t.Error("two renders of the same fixture differ")
	}
}
